# Developer entry points. `make check` is the tier-1 gate; `make race` runs
# the concurrency-sensitive packages under the race detector — the
# experiment engine's determinism tests and the full distributed suite
# (bundled leases, mid-bundle reassignment, TLS/token auth, quorum voting,
# chaos fault injection, fleet supervision) included, so coordinator and
# worker locking is exercised under contention on every run.
# `make fuzz` gives the wire codec a short coverage-guided beating.

GO ?= go

.PHONY: check fmt vet build test race fuzz bench bench-sweep

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exp/... ./internal/dist/... ./internal/chaos/... \
		./internal/fleet/... ./internal/core/... ./internal/timing/... \
		./internal/mem/... ./internal/stats/... ./cmd/...

# fuzz runs the journal/distributed-result codec fuzzer for a bounded time
# (FUZZTIME to taste); CI runs the same thing for 10s on every push.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzWireResult -fuzztime $(FUZZTIME) -run '^$$' ./internal/exp

# bench measures simulator throughput — the serial hot path (the PR 4
# metric), the CU-parallel loop (the PR 9 metric), and the stacked
# CU-parallel + banked-memory drain (the PR 10 metric), plus the
# memory-bound ArrayBW serial/parallel pair the banked drain targets — and
# archives all rows as JSON for cross-commit comparison. The parallel/serial
# siminsts/s ratios are the intra-simulation speedups; they only exceed 1 on
# a multi-core host.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput(Parallel|MemParallel|MemBound(Parallel)?)?$$' -benchtime 10x -benchmem . \
		| $(GO) run ./cmd/ilsim-benchjson -out BENCH_PR10.json
	@cat BENCH_PR10.json

# bench-sweep measures experiment-engine scheduling overhead.
bench-sweep:
	$(GO) test -bench 'BenchmarkSweep(Serial|Parallel)' -benchtime 3x .
