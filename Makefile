# Developer entry points. `make check` is the tier-1 gate; `make race` runs
# the concurrency-sensitive packages under the race detector, including the
# experiment engine's determinism tests.

GO ?= go

.PHONY: check fmt vet build test race bench bench-sweep

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exp/... ./internal/dist/... ./internal/core/... \
		./internal/timing/... ./internal/stats/... ./cmd/...

# bench measures simulator throughput (the PR 4 hot-path metric) and archives
# it as JSON for cross-commit comparison.
bench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatorThroughput -benchtime 10x -benchmem . \
		| $(GO) run ./cmd/ilsim-benchjson -out BENCH_PR4.json
	@cat BENCH_PR4.json

# bench-sweep measures experiment-engine scheduling overhead.
bench-sweep:
	$(GO) test -bench 'BenchmarkSweep(Serial|Parallel)' -benchtime 3x .
