# Developer entry points. `make check` is the tier-1 gate; `make race` runs
# the concurrency-sensitive packages under the race detector, including the
# experiment engine's determinism tests.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exp/... ./internal/dist/... ./internal/core/... ./cmd/...

bench:
	$(GO) test -bench 'BenchmarkSweep(Serial|Parallel)' -benchtime 3x .
