// Custom-kernel authoring: everything the builder API offers in one kernel —
// structured control flow (divergent if), LDS staging with barriers,
// per-lane atomics, and the dual disassembly that shows how the finalizer
// treats each construct.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

func main() {
	// Rotated histogram: each work-item stages its value in LDS, a
	// barrier publishes it, every lane then classifies its NEIGHBOR's
	// value (exercising LDS communication) and bumps a global histogram
	// bin with an atomic — except lanes whose value is below a threshold,
	// which take a divergent early-out (a structured if).
	const bins = 16
	b := kernel.NewBuilder("rotate_histogram")
	inArg := b.ArgPtr("in")
	histArg := b.ArgPtr("hist")
	b.SetGroupSize(64 * 4)

	lid := b.WorkItemID(isa.DimX)
	gid := b.WorkItemAbsID(isa.DimX)

	// Stage this lane's value into LDS and publish with a barrier.
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	x := b.Load(hsail.SegGlobal, isa.TypeU32, b.Add(isa.TypeU64, b.LoadArg(inArg), off), 0)
	ldsOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, lid), b.Int(isa.TypeU64, 2))
	b.Store(hsail.SegGroup, x, ldsOff, 0)
	b.Barrier()

	// Read the neighbor's value: lds[(lid+1) % 64].
	nb := b.And(isa.TypeU32, b.Add(isa.TypeU32, lid, b.Int(isa.TypeU32, 1)), b.Int(isa.TypeU32, 63))
	nbOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, nb), b.Int(isa.TypeU64, 2))
	y := b.Load(hsail.SegGroup, isa.TypeU32, nbOff, 0)

	// Divergent early-out: small values are not histogrammed.
	b.IfCmp(isa.CmpGe, isa.TypeU32, y, b.Int(isa.TypeU32, 1<<16), func() {
		bin := b.Shr(isa.TypeU32, y, b.Int(isa.TypeU32, 28))
		gOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, bin), b.Int(isa.TypeU64, 2))
		gAddr := b.Add(isa.TypeU64, b.LoadArg(histArg), gOff)
		b.AtomicAdd(hsail.SegGlobal, isa.TypeU32, b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 1)), gAddr, 0)
	}, nil)
	b.Ret()

	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HSAIL:\n%s\nGCN3:\n%s\n", ks.HSAIL.Disassemble(), ks.GCN3.Program.Disassemble())

	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	const n = 2048
	var inAddr, histAddr uint64
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i) * 2654435761
	}
	setup := func(m *core.Machine) error {
		inAddr = m.Ctx.AllocBuffer(4 * n)
		histAddr = m.Ctx.AllocBuffer(4 * bins)
		for i, v := range vals {
			m.Ctx.Mem.WriteU32(inAddr+uint64(4*i), v)
		}
		return m.Submit(core.Launch{Kernel: ks,
			Grid: [3]uint32{n, 1, 1}, WG: [3]uint16{64, 1, 1},
			Args: []uint64{inAddr, histAddr}})
	}
	want := make([]uint32, bins)
	for i := range vals {
		wg, lane := i/64, i%64
		y := vals[wg*64+(lane+1)%64]
		if y >= 1<<16 {
			want[y>>28]++
		}
	}
	for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		run, m, err := sim.Run(abs, "histogram", setup, core.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for bi := 0; bi < bins; bi++ {
			if got := m.Ctx.Mem.ReadU32(histAddr + uint64(4*bi)); got != want[bi] {
				log.Fatalf("%s: hist[%d] = %d, want %d", abs, bi, got, want[bi])
			}
		}
		fmt.Printf("%-5s: histogram correct; %d insts, %d cycles\n", abs, run.TotalInsts(), run.Cycles)
	}
}
