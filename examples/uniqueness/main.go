// Value-uniqueness case study: the paper's Figure 10 narrative. A streaming
// kernel (ArrayBW-like) UNDERestimates operand uniqueness under HSAIL, while
// a special-segment-heavy kernel (LULESH-like) OVERestimates it — the ISA,
// not the application, decides what a value-compression study would see.
//
//	go run ./examples/uniqueness
package main

import (
	"fmt"
	"log"

	"ilsim/internal/core"
	"ilsim/internal/workloads"
)

func main() {
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	opts := core.RunOptions{TrackValues: true, ValueSampleEvery: 1}

	fmt.Println("VRF lane-value uniqueness (unique values / active lanes, reads):")
	fmt.Println("workload        HSAIL     GCN3    direction")
	for _, name := range []string{"ArrayBW", "LULESH"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := w.Prepare(1)
		if err != nil {
			log.Fatal(err)
		}
		var u [2]float64
		for i, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			run, m, err := sim.Run(abs, name, inst.Setup, opts)
			if err != nil {
				log.Fatal(err)
			}
			if err := inst.Check(m); err != nil {
				log.Fatal(err)
			}
			u[i] = run.ReadUniqueness()
		}
		dir := "HSAIL underestimates"
		if u[0] > u[1] {
			dir = "HSAIL overestimates"
		}
		fmt.Printf("%-12s %7.1f%% %8.1f%%    %s\n", name, 100*u[0], 100*u[1], dir)
	}
	fmt.Println()
	fmt.Println("Why: GCN3 exposes base-address materialization and per-lane IDs to the")
	fmt.Println("VRF (raising streaming kernels' uniqueness), while moving uniform values")
	fmt.Println("to SGPRs; special-segment address arithmetic hidden by HSAIL's emulated")
	fmt.Println("ABI shows up as redundant lane values under GCN3 — paper §V.D.")
}
