// Divergence study: reproduces the narrative of the paper's Figure 3 —
// the same if-else-if kernel handled by a reconvergence stack (HSAIL) versus
// EXEC-mask predication (GCN3) — and shows the front-end consequences as the
// fraction of divergent lanes sweeps from none to all.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// buildFig3Kernel is the paper's Figure 3a source: each work-item writes 84
// or 90 depending on two data-dependent conditions.
func buildFig3Kernel() (*core.KernelSource, error) {
	b := kernel.NewBuilder("fig3_if_else_if")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	x := b.Load(hsail.SegGlobal, isa.TypeU32, b.Add(isa.TypeU64, b.LoadArg(inArg), off), 0)
	res := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.IfCmp(isa.CmpLt, isa.TypeU32, x, b.Int(isa.TypeU32, 100), func() {
		b.MovTo(res, b.Int(isa.TypeU32, 84))
	}, func() {
		b.IfCmp(isa.CmpGe, isa.TypeU32, x, b.Int(isa.TypeU32, 200), func() {
			b.MovTo(res, b.Int(isa.TypeU32, 90))
		}, func() {
			b.MovTo(res, b.Int(isa.TypeU32, 84))
		})
	})
	b.Store(hsail.SegGlobal, res, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
	b.Ret()
	return core.PrepareKernel(b.MustFinish(), finalizer.Options{})
}

func main() {
	ks, err := buildFig3Kernel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GCN3 finalization of the if-else-if (note: exec-mask flips, bypass branches only):")
	fmt.Println(ks.GCN3.Program.Disassemble())

	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	const n = 8192
	fmt.Println("divergent%   HSAIL flushes   GCN3 flushes   HSAIL cycles   GCN3 cycles")
	for _, pctDiv := range []int{0, 25, 50, 100} {
		var inAddr, outAddr uint64
		setup := func(m *core.Machine) error {
			inAddr = m.Ctx.AllocBuffer(4 * n)
			outAddr = m.Ctx.AllocBuffer(4 * n)
			for i := 0; i < n; i++ {
				// pctDiv% of lanes take the "else-if" path.
				v := uint32(10)
				if i%100 < pctDiv {
					v = 250
				}
				m.Ctx.Mem.WriteU32(inAddr+uint64(4*i), v)
			}
			return m.Submit(core.Launch{Kernel: ks,
				Grid: [3]uint32{n, 1, 1}, WG: [3]uint16{64, 1, 1},
				Args: []uint64{inAddr, outAddr}})
		}
		var flushes [2]uint64
		var cycles [2]uint64
		for i, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			run, _, err := sim.Run(abs, "divergence", setup, core.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			flushes[i] = run.IBFlushes
			cycles[i] = run.Cycles
		}
		fmt.Printf("%9d%%   %13d   %12d   %12d   %11d\n",
			pctDiv, flushes[0], flushes[1], cycles[0], cycles[1])
	}
	fmt.Println("\nDivergence costs the IL simulation reconvergence-stack jumps (IB flushes)")
	fmt.Println("that predicated machine code never takes — paper §III.C.1.")
}
