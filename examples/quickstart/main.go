// Quickstart: build a kernel, run it under BOTH ISA abstractions on the
// same timed GPU model, and compare what each abstraction reports — the
// paper's experiment in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

func main() {
	// 1. Write a kernel against the builder API (the "high-level
	//    compiler"): out[i] = a[i] * a[i] + 3.
	b := kernel.NewBuilder("square_plus3")
	aArg := b.ArgPtr("a")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	aAddr := b.Add(isa.TypeU64, b.LoadArg(aArg), off)
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg), off)
	v := b.Load(hsail.SegGlobal, isa.TypeU32, aAddr, 0)
	r := b.Mad(isa.TypeU32, v, v, b.Int(isa.TypeU32, 3))
	b.Store(hsail.SegGlobal, r, outAddr, 0)
	b.Ret()

	// 2. Run the toolchain: BRIG container, CFG analysis, finalization to
	//    GCN3 machine code.
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %q: %d HSAIL instructions -> %d GCN3 instructions\n\n",
		ks.HSAIL.Name, ks.HSAIL.NumInsts(), len(ks.GCN3.Program.Insts))

	// 3. Simulate the same launch under each abstraction on the Table 4
	//    machine.
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	const n = 4096
	var aAddrM, outAddrM uint64
	setup := func(m *core.Machine) error {
		aAddrM = m.Ctx.AllocBuffer(4 * n)
		outAddrM = m.Ctx.AllocBuffer(4 * n)
		for i := 0; i < n; i++ {
			m.Ctx.Mem.WriteU32(aAddrM+uint64(4*i), uint32(i))
		}
		return m.Submit(core.Launch{
			Kernel: ks,
			Grid:   [3]uint32{n, 1, 1},
			WG:     [3]uint16{64, 1, 1},
			Args:   []uint64{aAddrM, outAddrM},
		})
	}
	for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		run, m, err := sim.Run(abs, "quickstart", setup, core.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		// Verify the device actually computed the right answer.
		for i := 0; i < n; i++ {
			want := uint32(i)*uint32(i) + 3
			if got := m.Ctx.Mem.ReadU32(outAddrM + uint64(4*i)); got != want {
				log.Fatalf("%s: out[%d] = %d, want %d", abs, i, got, want)
			}
		}
		fmt.Printf("%-5s  %7d insts  %6d cycles  IPC %.3f  %4d bank conflicts  %3d IB flushes\n",
			abs, run.TotalInsts(), run.Cycles, run.IPC(), run.VRFBankConflicts, run.IBFlushes)
	}
	fmt.Println("\nSame source, same machine model — different ISA abstraction, different story.")
}
