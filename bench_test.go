// Package ilsim's top-level benchmarks regenerate every table and figure of
// the paper's evaluation section, reporting each experiment's headline
// numbers as benchmark metrics:
//
//	go test -bench=. -benchmem
//
// The per-figure geomean ratios (GCN3 relative to HSAIL, or the inverse
// where the paper reports it that way) are the quantities to compare with
// the paper; `go run ./cmd/ilsim-report` renders the full per-workload
// tables.
package ilsim

import (
	"runtime"
	"sync"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/exp"
	"ilsim/internal/isa"
	"ilsim/internal/report"
	"ilsim/internal/stats"
	"ilsim/internal/workloads"
)

// benchScale keeps benchmark iterations affordable; use ilsim-report for
// larger inputs.
const benchScale = 1

var (
	suiteOnce sync.Once
	suiteRes  *report.Results
	suiteErr  error
)

// suite runs the full dual-abstraction suite once (with the hardware oracle)
// on the parallel experiment engine and is shared by every figure benchmark;
// the first benchmark to run pays the cost, which `go test -bench` reports
// as its ns/op.
func suite(b *testing.B) *report.Results {
	b.Helper()
	suiteOnce.Do(func() {
		suiteRes, suiteErr = report.CollectParallel(exp.New(0), core.DefaultConfig(), benchScale, true)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteRes
}

// runPair executes one workload under both abstractions by submitting the
// job pair through the experiment engine.
func runPair(b *testing.B, name string, opts core.RunOptions) (*stats.Run, *stats.Run) {
	b.Helper()
	jobs := []exp.Job{
		{Workload: name, Scale: benchScale, Abs: core.AbsHSAIL, Config: core.DefaultConfig(), Opts: opts},
		{Workload: name, Scale: benchScale, Abs: core.AbsGCN3, Config: core.DefaultConfig(), Opts: opts},
	}
	eng := exp.New(0)
	eng.Mode = exp.FailFast
	results, _, err := eng.Run(jobs)
	if err != nil {
		b.Fatal(err)
	}
	return results[0].Run, results[1].Run
}

// BenchmarkFig1Summary regenerates the Figure 1 roll-up of dissimilar and
// similar statistics.
func BenchmarkFig1Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		insts := stats.Geomean(ratioOver(res, func(r *stats.Run) float64 { return float64(r.TotalInsts()) }))
		util := stats.Geomean(ratioOver(res, func(r *stats.Run) float64 { return r.SIMDUtilization() }))
		b.ReportMetric(insts, "GCN3/HSAIL-insts")
		b.ReportMetric(util, "GCN3/HSAIL-util")
	}
}

func ratioOver(res *report.Results, metric func(*stats.Run) float64) []float64 {
	var out []float64
	for _, name := range res.Order {
		p := res.Runs[name]
		if h := metric(p.HSAIL); h > 0 {
			out = append(out, metric(p.GCN3)/h)
		}
	}
	return out
}

// BenchmarkFig5DynamicInstructions regenerates the instruction-expansion
// figure over the whole suite.
func BenchmarkFig5DynamicInstructions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig5()
		b.ReportMetric(stats.Geomean(ratioOver(res, func(r *stats.Run) float64 {
			return float64(r.TotalInsts())
		})), "GCN3/HSAIL-insts")
	}
}

// BenchmarkFig6VRFBankConflicts regenerates the bank-conflict comparison.
func BenchmarkFig6VRFBankConflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig6()
		var hsailOverGCN3 []float64
		for _, name := range res.Order {
			p := res.Runs[name]
			if g := p.GCN3.ConflictsPerKiloInst(); g > 0 {
				hsailOverGCN3 = append(hsailOverGCN3, p.HSAIL.ConflictsPerKiloInst()/g)
			}
		}
		b.ReportMetric(stats.Geomean(hsailOverGCN3), "HSAIL/GCN3-conflicts")
	}
}

// BenchmarkFig7ReuseDistance regenerates the register reuse-distance figure.
func BenchmarkFig7ReuseDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig7()
		b.ReportMetric(stats.Geomean(ratioOver(res, func(r *stats.Run) float64 {
			return float64(r.Reuse.Median())
		})), "GCN3/HSAIL-reuse")
	}
}

// BenchmarkFig8InstructionFootprint regenerates the code-footprint figure.
func BenchmarkFig8InstructionFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig8()
		b.ReportMetric(stats.Geomean(ratioOver(res, func(r *stats.Run) float64 {
			return float64(r.CodeFootprintBytes)
		})), "GCN3/HSAIL-codebytes")
	}
}

// BenchmarkFig9IBFlushes regenerates the instruction-buffer flush figure.
func BenchmarkFig9IBFlushes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig9()
		var hsailOverGCN3 []float64
		for _, name := range res.Order {
			p := res.Runs[name]
			h := float64(p.HSAIL.IBFlushes) / float64(p.HSAIL.TotalInsts())
			g := float64(p.GCN3.IBFlushes) / float64(p.GCN3.TotalInsts())
			if g > 0 {
				hsailOverGCN3 = append(hsailOverGCN3, h/g)
			}
		}
		b.ReportMetric(stats.Geomean(hsailOverGCN3), "HSAIL/GCN3-flushes")
	}
}

// BenchmarkFig10ValueUniqueness regenerates the VRF lane-value uniqueness
// case study on the paper's two featured workloads.
func BenchmarkFig10ValueUniqueness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig10()
		ab := res.Runs["ArrayBW"]
		lu := res.Runs["LULESH"]
		b.ReportMetric(100*ab.HSAIL.ReadUniqueness(), "ArrayBW-HSAIL-%")
		b.ReportMetric(100*ab.GCN3.ReadUniqueness(), "ArrayBW-GCN3-%")
		b.ReportMetric(100*lu.HSAIL.ReadUniqueness(), "LULESH-HSAIL-%")
		b.ReportMetric(100*lu.GCN3.ReadUniqueness(), "LULESH-GCN3-%")
	}
}

// BenchmarkFig11IPC regenerates the IPC comparison.
func BenchmarkFig11IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig11()
		b.ReportMetric(stats.Geomean(ratioOver(res, func(r *stats.Run) float64 { return r.IPC() })), "GCN3/HSAIL-IPC")
	}
}

// BenchmarkFig12Runtime regenerates the runtime comparison, reporting the
// paper's two featured extremes.
func BenchmarkFig12Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Fig12()
		lu := res.Runs["LULESH"]
		xs := res.Runs["XSBench"]
		b.ReportMetric(float64(lu.GCN3.Cycles)/float64(lu.HSAIL.Cycles), "LULESH-GCN3/HSAIL-cycles")
		b.ReportMetric(float64(xs.HSAIL.Cycles)/float64(xs.GCN3.Cycles), "XSBench-HSAIL/GCN3-cycles")
	}
}

// BenchmarkTables123Expansion measures the headline static expansions of the
// paper's Tables 1-3 instruction sequences (work-item ID, kernarg access,
// f64 divide) via a kernel using all three.
func BenchmarkTables123Expansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, g := runPair(b, "LULESH", core.RunOptions{})
		b.ReportMetric(float64(g.TotalInsts())/float64(h.TotalInsts()), "GCN3/HSAIL-insts")
		b.ReportMetric(float64(g.InstsByCategory[isa.CatSALU]+g.InstsByCategory[isa.CatSMem])/
			float64(g.TotalInsts()), "GCN3-scalar-fraction")
	}
}

// BenchmarkTable6Similarities regenerates the similarity table's headline:
// SIMD utilization agreement and data-footprint agreement.
func BenchmarkTable6Similarities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Table6()
		util := stats.Geomean(ratioOver(res, func(r *stats.Run) float64 { return r.SIMDUtilization() }))
		foot := stats.Geomean(ratioOver(res, func(r *stats.Run) float64 { return float64(r.DataFootprintBytes) }))
		b.ReportMetric(util, "GCN3/HSAIL-util")
		b.ReportMetric(foot, "GCN3/HSAIL-datafootprint")
	}
}

// BenchmarkTable7HardwareCorrelation regenerates the hardware-correlation
// study against the silicon oracle.
func BenchmarkTable7HardwareCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := suite(b)
		_ = res.Table7()
		var hs, gs, hw []float64
		for _, name := range res.Order {
			p := res.Runs[name]
			w := res.HW[name]
			n := len(w)
			for k := 0; k < n && k < len(p.HSAIL.KernelCycles); k++ {
				hs = append(hs, float64(p.HSAIL.KernelCycles[k]))
				gs = append(gs, float64(p.GCN3.KernelCycles[k]))
				hw = append(hw, w[k])
			}
		}
		b.ReportMetric(stats.Pearson(hs, hw), "HSAIL-corr")
		b.ReportMetric(stats.Pearson(gs, hw), "GCN3-corr")
		b.ReportMetric(100*stats.MeanAbsError(hs, hw), "HSAIL-err-%")
		b.ReportMetric(100*stats.MeanAbsError(gs, hw), "GCN3-err-%")
	}
}

// sweepBenchJobs builds the 4-point VRF bank sweep (both abstractions per
// point, 8 jobs) used by the serial-vs-parallel engine benchmarks.
func sweepBenchJobs(b *testing.B) []exp.Job {
	b.Helper()
	pts, err := exp.SweepPoints("banks")
	if err != nil {
		b.Fatal(err)
	}
	return exp.PairJobs("ArrayBW", benchScale, pts[:4], core.RunOptions{})
}

// runSweepBench drives one engine configuration over the bank sweep with a
// fresh engine (and thus a cold instance cache) per iteration, so serial and
// parallel pay identical preparation costs.
func runSweepBench(b *testing.B, workers int) {
	b.Helper()
	jobs := sweepBenchJobs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := exp.New(workers)
		results, m, err := eng.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		b.ReportMetric(m.Speedup(), "speedup")
		b.ReportMetric(m.Throughput(), "jobs/s")
	}
}

// BenchmarkSweepSerial is the single-worker baseline for the 4-point bank
// sweep; compare with BenchmarkSweepParallel.
func BenchmarkSweepSerial(b *testing.B) {
	runSweepBench(b, 1)
}

// BenchmarkSweepParallel runs the same sweep with one worker per core. On a
// multi-core runner the wall-clock ratio to BenchmarkSweepSerial is the
// engine's parallel speedup (the `speedup` metric reports the engine's own
// per-run measurement of the same quantity).
func BenchmarkSweepParallel(b *testing.B) {
	runSweepBench(b, runtime.GOMAXPROCS(0))
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// dynamic instructions per wall-clock second under each abstraction, on the
// serial timing loop (cu-par=1, mem-par=1).
func BenchmarkSimulatorThroughput(b *testing.B) {
	benchThroughput(b, "MD", core.RunOptions{CUParallelism: 1, MemParallelism: 1})
}

// BenchmarkSimulatorThroughputParallel is the same measurement with the
// cycle's CU ticks sharded across one goroutine per compute unit (the
// statistics are byte-identical — TestParallelTimingDeterminism proves it;
// only wall-clock changes). The siminsts/s ratio to the serial benchmark is
// the intra-simulation speedup; it needs a multi-core host to exceed 1.
func BenchmarkSimulatorThroughputParallel(b *testing.B) {
	benchThroughput(b, "MD", core.RunOptions{
		CUParallelism: core.DefaultConfig().NumCUs, MemParallelism: 1})
}

// BenchmarkSimulatorThroughputMemParallel stacks both intra-simulation
// levels: CU ticks on one goroutine per compute unit plus the phase-2 drain
// sharded across the banked memory system's full width (L1 banks, L2 banks,
// DRAM channels as level waves; TestBankedMemoryDeterminism proves the
// statistics byte-identical). Compare to the two rows above on the same
// workload.
func BenchmarkSimulatorThroughputMemParallel(b *testing.B) {
	cfg := core.DefaultConfig()
	benchThroughput(b, "MD", core.RunOptions{
		CUParallelism: cfg.NumCUs, MemParallelism: cfg.DrainWidth()})
}

// BenchmarkSimulatorThroughputMemBound is the serial baseline on ArrayBW,
// the suite's memory-bound streaming workload — the case the banked drain
// targets, since nearly every cycle carries L1-missing traffic into the
// L2/DRAM waves.
func BenchmarkSimulatorThroughputMemBound(b *testing.B) {
	benchThroughput(b, "ArrayBW", core.RunOptions{CUParallelism: 1, MemParallelism: 1})
}

// BenchmarkSimulatorThroughputMemBoundParallel is ArrayBW with both
// parallelism levels at full width; the siminsts/s ratio to
// BenchmarkSimulatorThroughputMemBound is the banked drain's speedup on
// memory-bound work (needs a multi-core host to exceed 1).
func BenchmarkSimulatorThroughputMemBoundParallel(b *testing.B) {
	cfg := core.DefaultConfig()
	benchThroughput(b, "ArrayBW", core.RunOptions{
		CUParallelism: cfg.NumCUs, MemParallelism: cfg.DrainWidth()})
}

func benchThroughput(b *testing.B, workload string, opts core.RunOptions) {
	for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		abs := abs
		b.Run(abs.String(), func(b *testing.B) {
			w, err := workloads.ByName(workload)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := core.NewSimulator(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			var insts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := w.Prepare(benchScale)
				if err != nil {
					b.Fatal(err)
				}
				run, _, err := sim.Run(abs, workload, inst.Setup, opts)
				if err != nil {
					b.Fatal(err)
				}
				insts += run.TotalInsts()
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "siminsts/s")
		})
	}
}
