package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestAsmTablesSmoke renders the paper's Table 1/2/3 examples and asserts
// both sides of each dual disassembly are non-empty.
func TestAsmTablesSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables"}, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	text := out.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "HSAIL (", "GCN3 ("} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "v_") {
		t.Fatalf("no GCN3 vector instructions in the expansion examples:\n%s", text)
	}
}

// TestAsmWorkloadSmoke disassembles a suite workload's kernels.
func TestAsmWorkloadSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "ArrayBW"}, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	text := out.String()
	if !strings.Contains(text, "==== kernel ") {
		t.Fatalf("no kernels disassembled:\n%s", text)
	}
	if !strings.Contains(text, "HSAIL (") || !strings.Contains(text, "GCN3 (") {
		t.Fatalf("dual disassembly incomplete:\n%s", text)
	}
}

// TestAsmNoArgs asserts the no-op invocation errors instead of exiting.
func TestAsmNoArgs(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(nil, &out, &errw); err == nil {
		t.Fatal("argument-free invocation accepted")
	}
}
