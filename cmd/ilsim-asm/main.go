// Command ilsim-asm shows HSAIL kernels side by side with their finalized
// GCN3 code — the instruction-expansion story of the paper's Tables 1-3 —
// and can disassemble any kernel of the workload suite.
//
// Usage:
//
//	ilsim-asm -tables          # the paper's Table 1/2/3 examples
//	ilsim-asm -workload FFT    # dual disassembly of a suite workload
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-asm:", err)
		os.Exit(1)
	}
}

// run parses args and writes the requested disassembly to out; split from
// main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-asm", flag.ContinueOnError)
	fs.SetOutput(errw)
	tables := fs.Bool("tables", false, "show the paper's Table 1/2/3 expansion examples")
	workload := fs.String("workload", "", "disassemble a suite workload's kernels")
	scale := fs.Int("scale", 1, "input scale when preparing a workload")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *tables:
		return showTables(out)
	case *workload != "":
		w, err := workloads.ByName(*workload)
		if err != nil {
			return err
		}
		inst, err := w.Prepare(*scale)
		if err != nil {
			return err
		}
		for _, ks := range inst.Kernels {
			show(out, ks)
		}
		return nil
	default:
		fs.Usage()
		return errors.New("nothing to do: pass -tables or -workload")
	}
}

func show(out io.Writer, ks *core.KernelSource) {
	fmt.Fprintf(out, "==== kernel %s ====\n\n", ks.HSAIL.Name)
	fmt.Fprintf(out, "HSAIL (%d instructions, %d bytes loaded, %d bytes of BRIG):\n%s\n",
		ks.HSAIL.NumInsts(), ks.CodeBytesHSAIL(), ks.BRIGBytes, ks.HSAIL.Disassemble())
	fmt.Fprintf(out, "GCN3 (%d instructions, %d bytes encoded, %d VGPRs, %d SGPRs):\n%s\n",
		len(ks.GCN3.Program.Insts), ks.CodeBytesGCN3(), ks.GCN3.NumVGPRs, ks.GCN3.NumSGPRs,
		ks.GCN3.Program.Disassemble())
}

func showTables(out io.Writer) error {
	// Table 1: obtaining the absolute work-item ID.
	{
		b := kernel.NewBuilder("table1_workitemabsid")
		outArg := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		addr := b.Add(isa.TypeU64, b.LoadArg(outArg), b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
		b.Store(hsail.SegGlobal, gid, addr, 0)
		b.Ret()
		fmt.Fprintln(out, "############ Table 1: work-item ID requires the ABI ############")
		ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
		if err != nil {
			return err
		}
		show(out, ks)
	}
	// Table 2: kernarg access through vector moves and a flat load.
	{
		b := kernel.NewBuilder("table2_kernarg")
		arg := b.ArgPtr("arg1")
		ptr := b.LoadArg(arg)
		v := b.Load(hsail.SegGlobal, isa.TypeU32, ptr, 0)
		outArg := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		addr := b.Add(isa.TypeU64, b.LoadArg(outArg), b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
		b.Store(hsail.SegGlobal, v, addr, 0)
		b.Ret()
		fmt.Fprintln(out, "############ Table 2: kernarg address calculation (UseFlatKernarg) ############")
		ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{UseFlatKernarg: true})
		if err != nil {
			return err
		}
		show(out, ks)
	}
	// Table 3: 64-bit floating-point division.
	{
		b := kernel.NewBuilder("table3_fdiv64")
		aArg := b.ArgPtr("a")
		bArg := b.ArgPtr("b")
		oArg := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 3))
		num := b.Load(hsail.SegGlobal, isa.TypeF64, b.Add(isa.TypeU64, b.LoadArg(aArg), off), 0)
		den := b.Load(hsail.SegGlobal, isa.TypeF64, b.Add(isa.TypeU64, b.LoadArg(bArg), off), 0)
		q := b.Div(isa.TypeF64, num, den)
		b.Store(hsail.SegGlobal, q, b.Add(isa.TypeU64, b.LoadArg(oArg), off), 0)
		b.Ret()
		fmt.Fprintln(out, "############ Table 3: f64 division (Newton-Raphson expansion) ############")
		ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
		if err != nil {
			return err
		}
		show(out, ks)
	}
	return nil
}
