// Command ilsim-asm shows HSAIL kernels side by side with their finalized
// GCN3 code — the instruction-expansion story of the paper's Tables 1-3 —
// and can disassemble any kernel of the workload suite.
//
// Usage:
//
//	ilsim-asm -tables          # the paper's Table 1/2/3 examples
//	ilsim-asm -workload FFT    # dual disassembly of a suite workload
package main

import (
	"flag"
	"fmt"
	"os"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/workloads"
)

func main() {
	tables := flag.Bool("tables", false, "show the paper's Table 1/2/3 expansion examples")
	workload := flag.String("workload", "", "disassemble a suite workload's kernels")
	scale := flag.Int("scale", 1, "input scale when preparing a workload")
	flag.Parse()

	switch {
	case *tables:
		showTables()
	case *workload != "":
		w, err := workloads.ByName(*workload)
		if err != nil {
			fatal(err)
		}
		inst, err := w.Prepare(*scale)
		if err != nil {
			fatal(err)
		}
		for _, ks := range inst.Kernels {
			show(ks)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func show(ks *core.KernelSource) {
	fmt.Printf("==== kernel %s ====\n\n", ks.HSAIL.Name)
	fmt.Printf("HSAIL (%d instructions, %d bytes loaded, %d bytes of BRIG):\n%s\n",
		ks.HSAIL.NumInsts(), ks.CodeBytesHSAIL(), ks.BRIGBytes, ks.HSAIL.Disassemble())
	fmt.Printf("GCN3 (%d instructions, %d bytes encoded, %d VGPRs, %d SGPRs):\n%s\n",
		len(ks.GCN3.Program.Insts), ks.CodeBytesGCN3(), ks.GCN3.NumVGPRs, ks.GCN3.NumSGPRs,
		ks.GCN3.Program.Disassemble())
}

func prepare(k *hsail.Kernel, opts finalizer.Options) *core.KernelSource {
	ks, err := core.PrepareKernel(k, opts)
	if err != nil {
		fatal(err)
	}
	return ks
}

func showTables() {
	// Table 1: obtaining the absolute work-item ID.
	{
		b := kernel.NewBuilder("table1_workitemabsid")
		out := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		addr := b.Add(isa.TypeU64, b.LoadArg(out), b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
		b.Store(hsail.SegGlobal, gid, addr, 0)
		b.Ret()
		fmt.Println("############ Table 1: work-item ID requires the ABI ############")
		show(prepare(b.MustFinish(), finalizer.Options{}))
	}
	// Table 2: kernarg access through vector moves and a flat load.
	{
		b := kernel.NewBuilder("table2_kernarg")
		arg := b.ArgPtr("arg1")
		ptr := b.LoadArg(arg)
		v := b.Load(hsail.SegGlobal, isa.TypeU32, ptr, 0)
		out := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		addr := b.Add(isa.TypeU64, b.LoadArg(out), b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
		b.Store(hsail.SegGlobal, v, addr, 0)
		b.Ret()
		fmt.Println("############ Table 2: kernarg address calculation (UseFlatKernarg) ############")
		show(prepare(b.MustFinish(), finalizer.Options{UseFlatKernarg: true}))
	}
	// Table 3: 64-bit floating-point division.
	{
		b := kernel.NewBuilder("table3_fdiv64")
		aArg := b.ArgPtr("a")
		bArg := b.ArgPtr("b")
		oArg := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 3))
		num := b.Load(hsail.SegGlobal, isa.TypeF64, b.Add(isa.TypeU64, b.LoadArg(aArg), off), 0)
		den := b.Load(hsail.SegGlobal, isa.TypeF64, b.Add(isa.TypeU64, b.LoadArg(bArg), off), 0)
		q := b.Div(isa.TypeF64, num, den)
		b.Store(hsail.SegGlobal, q, b.Add(isa.TypeU64, b.LoadArg(oArg), off), 0)
		b.Ret()
		fmt.Println("############ Table 3: f64 division (Newton-Raphson expansion) ############")
		show(prepare(b.MustFinish(), finalizer.Options{}))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ilsim-asm:", err)
	os.Exit(1)
}
