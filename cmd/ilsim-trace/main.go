// Command ilsim-trace prints the dynamic instruction stream of one wavefront
// of a workload under either abstraction: program counter, active-lane count,
// reconvergence-stack depth (HSAIL), and disassembly — the view that makes
// the two abstractions' front-end behavior tangible.
//
// Usage:
//
//	ilsim-trace -workload SpMV -abs hsail [-wg 0] [-wave 0] [-max 200]
package main

import (
	"flag"
	"fmt"
	"os"

	"ilsim/internal/core"
	"ilsim/internal/emu"
	"ilsim/internal/workloads"
)

func main() {
	name := flag.String("workload", "ArrayBW", "workload name")
	abs := flag.String("abs", "gcn3", "abstraction: hsail or gcn3")
	wgIdx := flag.Int("wg", 0, "workgroup to trace")
	waveIdx := flag.Int("wave", 0, "wavefront within the workgroup")
	maxInsts := flag.Int("max", 200, "maximum instructions to print (0 = all)")
	launch := flag.Int("launch", 0, "which dynamic kernel launch to trace")
	flag.Parse()

	w, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		fatal(err)
	}
	a := core.AbsGCN3
	if *abs == "hsail" {
		a = core.AbsHSAIL
	}
	m := core.NewMachine(a, nil)
	if err := inst.Setup(m); err != nil {
		fatal(err)
	}

	// Drain launches up to the requested one (executing them fully so
	// memory state is right), then trace the chosen wavefront.
	for l := 0; ; l++ {
		d, eng, err := m.NextDispatch()
		if err != nil {
			fatal(err)
		}
		if d == nil {
			fatal(fmt.Errorf("launch %d not found (workload has %d)", *launch, l))
		}
		if l != *launch {
			if err := emu.RunFunctional(eng, d); err != nil {
				fatal(err)
			}
			continue
		}
		if *wgIdx >= len(d.Workgroups) {
			fatal(fmt.Errorf("workgroup %d out of range (%d)", *wgIdx, len(d.Workgroups)))
		}
		info := &d.Workgroups[*wgIdx]
		wg := emu.NewWGState(d, info, eng.LDSBytes())
		if *waveIdx >= info.NumWaves {
			fatal(fmt.Errorf("wave %d out of range (%d)", *waveIdx, info.NumWaves))
		}
		// Other waves of the group run untraced but interleaved enough
		// for barriers to release: round-robin stepping.
		waves := make([]*emu.Wave, info.NumWaves)
		for i := range waves {
			waves[i] = eng.NewWave(wg, i)
		}
		fmt.Printf("kernel %s, %s, workgroup %d, wave %d (%d lanes)\n\n",
			d.KernelName, a, *wgIdx, *waveIdx, waves[*waveIdx].NumLanes)
		fmt.Printf("%-6s %-10s %-5s %-4s %s\n", "#", "pc", "lanes", "rs", "instruction")
		printed := 0
		atBarrier := make([]bool, len(waves))
		for {
			allDone := true
			progressed := false
			for i, wv := range waves {
				if wv.Done {
					continue
				}
				allDone = false
				if atBarrier[i] {
					continue
				}
				pc := wv.PC
				r, err := eng.Execute(wv)
				if err != nil {
					fatal(err)
				}
				progressed = true
				if i == *waveIdx {
					printed++
					if *maxInsts == 0 || printed <= *maxInsts {
						mark := " "
						if r.Redirected {
							mark = ">" // front-end redirect (IB flush)
						}
						fmt.Printf("%-6d 0x%08x %-5d %-4d %s%s\n",
							printed, pc, r.ActiveLanes, len(wv.RS), mark, eng.InstString(pc))
					}
				}
				if r.IsBarrier {
					atBarrier[i] = true
				}
			}
			if allDone {
				break
			}
			if !progressed {
				for i := range atBarrier {
					atBarrier[i] = false
				}
			}
		}
		if *maxInsts != 0 && printed > *maxInsts {
			fmt.Printf("... (%d more instructions)\n", printed-*maxInsts)
		}
		fmt.Printf("\nwave executed %d instructions\n", printed)
		return
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ilsim-trace:", err)
	os.Exit(1)
}
