// Command ilsim-trace prints the dynamic instruction stream of one wavefront
// of a workload under either abstraction: program counter, active-lane count,
// reconvergence-stack depth (HSAIL), and disassembly — the view that makes
// the two abstractions' front-end behavior tangible.
//
// Usage:
//
//	ilsim-trace -workload SpMV -abs hsail [-wg 0] [-wave 0] [-max 200]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ilsim/internal/core"
	"ilsim/internal/emu"
	"ilsim/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-trace:", err)
		os.Exit(1)
	}
}

// run parses args and traces the chosen wavefront; split from main for the
// smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-trace", flag.ContinueOnError)
	fs.SetOutput(errw)
	name := fs.String("workload", "ArrayBW", "workload name")
	abs := fs.String("abs", "gcn3", "abstraction: hsail or gcn3")
	wgIdx := fs.Int("wg", 0, "workgroup to trace")
	waveIdx := fs.Int("wave", 0, "wavefront within the workgroup")
	maxInsts := fs.Int("max", 200, "maximum instructions to print (0 = all)")
	launch := fs.Int("launch", 0, "which dynamic kernel launch to trace")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := workloads.ByName(*name)
	if err != nil {
		return err
	}
	inst, err := w.Prepare(1)
	if err != nil {
		return err
	}
	var a core.Abstraction
	switch *abs {
	case "gcn3":
		a = core.AbsGCN3
	case "hsail":
		a = core.AbsHSAIL
	default:
		return fmt.Errorf("unknown abstraction %q (hsail or gcn3)", *abs)
	}
	m := core.NewMachine(a, nil)
	if err := inst.Setup(m); err != nil {
		return err
	}

	// Drain launches up to the requested one (executing them fully so
	// memory state is right), then trace the chosen wavefront.
	for l := 0; ; l++ {
		d, eng, err := m.NextDispatch()
		if err != nil {
			return err
		}
		if d == nil {
			return fmt.Errorf("launch %d not found (workload has %d)", *launch, l)
		}
		if l != *launch {
			if err := emu.RunFunctional(eng, d); err != nil {
				return err
			}
			continue
		}
		if *wgIdx >= len(d.Workgroups) {
			return fmt.Errorf("workgroup %d out of range (%d)", *wgIdx, len(d.Workgroups))
		}
		info := &d.Workgroups[*wgIdx]
		wg := emu.NewWGState(d, info, eng.LDSBytes())
		if *waveIdx >= info.NumWaves {
			return fmt.Errorf("wave %d out of range (%d)", *waveIdx, info.NumWaves)
		}
		// Other waves of the group run untraced but interleaved enough
		// for barriers to release: round-robin stepping.
		waves := make([]*emu.Wave, info.NumWaves)
		for i := range waves {
			waves[i] = eng.NewWave(wg, i)
		}
		fmt.Fprintf(out, "kernel %s, %s, workgroup %d, wave %d (%d lanes)\n\n",
			d.KernelName, a, *wgIdx, *waveIdx, waves[*waveIdx].NumLanes)
		fmt.Fprintf(out, "%-6s %-10s %-5s %-4s %s\n", "#", "pc", "lanes", "rs", "instruction")
		printed := 0
		atBarrier := make([]bool, len(waves))
		for {
			allDone := true
			progressed := false
			for i, wv := range waves {
				if wv.Done {
					continue
				}
				allDone = false
				if atBarrier[i] {
					continue
				}
				pc := wv.PC
				r, err := eng.Execute(wv)
				if err != nil {
					return err
				}
				progressed = true
				if i == *waveIdx {
					printed++
					if *maxInsts == 0 || printed <= *maxInsts {
						mark := " "
						if r.Redirected {
							mark = ">" // front-end redirect (IB flush)
						}
						fmt.Fprintf(out, "%-6d 0x%08x %-5d %-4d %s%s\n",
							printed, pc, r.ActiveLanes, len(wv.RS), mark, eng.InstString(pc))
					}
				}
				if r.IsBarrier {
					atBarrier[i] = true
				}
			}
			if allDone {
				break
			}
			if !progressed {
				for i := range atBarrier {
					atBarrier[i] = false
				}
			}
		}
		if *maxInsts != 0 && printed > *maxInsts {
			fmt.Fprintf(out, "... (%d more instructions)\n", printed-*maxInsts)
		}
		fmt.Fprintf(out, "\nwave executed %d instructions\n", printed)
		return nil
	}
}
