package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTraceSmoke traces one wavefront of a small workload under both
// abstractions and asserts the stream contains real disassembly.
func TestTraceSmoke(t *testing.T) {
	for _, abs := range []string{"hsail", "gcn3"} {
		t.Run(abs, func(t *testing.T) {
			var out, errw bytes.Buffer
			err := run([]string{"-workload", "ArrayBW", "-abs", abs, "-max", "50"}, &out, &errw)
			if err != nil {
				t.Fatalf("run: %v\nstderr: %s", err, errw.String())
			}
			text := out.String()
			if !strings.Contains(text, "workgroup 0, wave 0") {
				t.Fatalf("missing trace header:\n%s", text)
			}
			if !strings.Contains(text, "0x") || !strings.Contains(text, "wave executed") {
				t.Fatalf("trace has no instruction rows:\n%s", text)
			}
			// The two abstractions disassemble differently; check an
			// idiomatic mnemonic of each appears.
			want := "ld_"
			if abs == "gcn3" {
				want = "v_"
			}
			if !strings.Contains(text, want) {
				t.Fatalf("%s trace lacks %q mnemonics:\n%s", abs, want, text)
			}
		})
	}
}

// TestTraceBadWorkload asserts unknown workloads fail instead of exiting.
func TestTraceBadWorkload(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &out, &errw); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestTraceBadAbstraction asserts a bogus -abs errors instead of silently
// falling through to GCN3.
func TestTraceBadAbstraction(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-workload", "ArrayBW", "-abs", "ptx"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "unknown abstraction") {
		t.Fatalf("bad -abs: got %v, want unknown abstraction error", err)
	}
}
