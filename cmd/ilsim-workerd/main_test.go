package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

// TestWorkerdSmoke points the daemon's run() at an in-process coordinator
// and asserts it drains the campaign and exits cleanly.
func TestWorkerdSmoke(t *testing.T) {
	pts, err := exp.SweepPoints("banks")
	if err != nil {
		t.Fatal(err)
	}
	jobs := exp.PairJobs("ArrayBW", 1, pts[:1], core.RunOptions{})

	c := dist.NewCoordinator(dist.Options{Addr: "127.0.0.1:0", LongPoll: 100 * time.Millisecond})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, metrics, err := c.Run(jobs)
		if err == nil && metrics.Failed != 0 {
			t.Errorf("campaign failed jobs: %+v", metrics)
		}
		done <- err
	}()

	var out, errw bytes.Buffer
	if err := run([]string{"-connect", c.Addr(), "-j", "2", "-v"}, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "campaign complete") {
		t.Fatalf("missing completion line:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "joined") {
		t.Fatalf("-v produced no lifecycle log:\n%s", errw.String())
	}
}

// TestWorkerdStatusPoll runs the daemon with -status-poll against an
// in-process coordinator and asserts the autoscaling summary reaches the
// log — at minimum the final snapshot printed at campaign exit.
func TestWorkerdStatusPoll(t *testing.T) {
	pts, err := exp.SweepPoints("banks")
	if err != nil {
		t.Fatal(err)
	}
	jobs := exp.PairJobs("ArrayBW", 1, pts[:2], core.RunOptions{})

	c := dist.NewCoordinator(dist.Options{Addr: "127.0.0.1:0", LongPoll: 100 * time.Millisecond})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Run(jobs)
		done <- err
	}()

	var out, errw bytes.Buffer
	if err := run([]string{"-connect", c.Addr(), "-j", "1", "-status-poll", "5ms"}, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	log := errw.String()
	if !strings.Contains(log, "dist: ") || !strings.Contains(log, "done") {
		t.Fatalf("-status-poll logged no campaign summary:\n%s", log)
	}
}

// TestWorkerdRequiresConnect asserts the daemon refuses to start without a
// coordinator address.
func TestWorkerdRequiresConnect(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(nil, &out, &errw); err == nil {
		t.Fatal("started without -connect")
	}
}

// TestWorkerdUnreachableCoordinator bounds the give-up time with -window.
func TestWorkerdUnreachableCoordinator(t *testing.T) {
	var out, errw bytes.Buffer
	start := time.Now()
	err := run([]string{"-connect", "127.0.0.1:1", "-window", "300ms"}, &out, &errw)
	if err == nil {
		t.Fatal("connected to nothing")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("gave up after %s despite -window 300ms", time.Since(start))
	}
}
