package main

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

// syncBuffer is a bytes.Buffer safe for the daemon's signal goroutine and
// worker logger to write concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func campaignJobs(t *testing.T, points int) []exp.Job {
	t.Helper()
	pts, err := exp.SweepPoints("banks")
	if err != nil {
		t.Fatal(err)
	}
	return exp.PairJobs("ArrayBW", 1, pts[:points], core.RunOptions{})
}

// TestWorkerdChaosSmoke runs the daemon with -chaos against an in-process
// coordinator: the campaign must complete despite the injected faults, and
// the daemon must announce the chaos plan and report its fault stats.
func TestWorkerdChaosSmoke(t *testing.T) {
	jobs := campaignJobs(t, 2)
	c := dist.NewCoordinator(dist.Options{Addr: "127.0.0.1:0", LongPoll: 100 * time.Millisecond})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, metrics, err := c.Run(jobs)
		if err == nil && metrics.Failed != 0 {
			t.Errorf("campaign failed jobs under chaos: %+v", metrics)
		}
		done <- err
	}()

	var out, errw bytes.Buffer
	args := []string{"-connect", c.Addr(), "-j", "2",
		"-chaos", "seed=3,delay=1ms:0.5,dup=0.2", "-v"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "campaign complete") {
		t.Fatalf("missing completion line:\n%s", out.String())
	}
	log := errw.String()
	if !strings.Contains(log, "chaos: injecting faults") {
		t.Fatalf("-chaos did not announce the plan:\n%s", log)
	}
	if !strings.Contains(log, "requests:") || !strings.Contains(log, "delayed") {
		t.Fatalf("-chaos produced no fault stats:\n%s", log)
	}
}

// TestWorkerdChaosBadSpec rejects an unparsable -chaos plan before dialing
// anything.
func TestWorkerdChaosBadSpec(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-connect", "127.0.0.1:1", "-chaos", "bogus"}, &out, &errw); err == nil {
		t.Fatal("accepted a malformed -chaos spec")
	}
}

// TestWorkerdDrainOnSignal sends the process SIGTERM mid-campaign: the
// daemon must finish its in-flight job, hand back the unstarted remainder,
// and exit cleanly reporting a drain instead of a completion. A relief
// worker then finishes the campaign, proving the drained jobs were
// released rather than stranded behind the lease TTL.
func TestWorkerdDrainOnSignal(t *testing.T) {
	jobs := campaignJobs(t, 5) // 10 jobs, -j 1: plenty left when the signal lands
	var once sync.Once
	c := dist.NewCoordinator(dist.Options{
		Addr:     "127.0.0.1:0",
		LongPoll: 100 * time.Millisecond,
		LeaseTTL: 60 * time.Second, // only an explicit /release frees jobs in time
		OnProgress: func(p exp.Progress) {
			if p.Done >= 1 {
				once.Do(func() {
					syscall.Kill(os.Getpid(), syscall.SIGTERM)
				})
			}
		},
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, metrics, err := c.Run(jobs)
		if err == nil && metrics.Failed != 0 {
			t.Errorf("campaign failed jobs: %+v", metrics)
		}
		done <- err
	}()

	var out bytes.Buffer
	errw := &syncBuffer{}
	if err := run([]string{"-connect", c.Addr(), "-j", "1", "-v"}, &out, errw); err != nil {
		t.Fatalf("drained run exited non-zero: %v\nstderr: %s", err, errw.String())
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("daemon did not report a drain:\n%s\nstderr: %s", out.String(), errw.String())
	}
	if strings.Contains(out.String(), "campaign complete") {
		t.Fatalf("drained daemon claimed completion:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "draining:") {
		t.Fatalf("no drain announcement on stderr:\n%s", errw.String())
	}

	// The campaign is still open; a relief worker must be able to lease the
	// released jobs immediately (the TTL route would take 60 seconds).
	relief := &dist.Worker{Coordinator: c.Addr(), Name: "relief", Slots: 2}
	reliefDone := make(chan error, 1)
	go func() { reliefDone <- relief.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not finish: drained jobs were never released")
	}
	if err := <-reliefDone; err != nil {
		t.Fatalf("relief worker: %v", err)
	}
}
