// Command ilsim-workerd is the distributed-sweep worker daemon: it joins a
// coordinator (ilsim-sweep -serve, or any dist.Coordinator), long-polls
// for job leases, executes them on a local experiment engine — watchdog
// budgets, panic isolation and transient retries all apply per job, as
// they would locally — and streams integrity-hashed results back. It
// exits 0 when the coordinator reports the campaign complete.
//
// The join handshake refuses stale binaries: protocol versions must match
// and the worker must recompute the coordinator's job fingerprints
// identically, so a worker whose job encoding drifted can never taint a
// campaign.
//
// Leases arrive as bundles sized by this worker's observed throughput
// (-bundle caps the per-lease work target); each job's result streams back
// individually, so a kill mid-bundle forfeits only un-acked work. For
// hardened coordinators, -token sends the shared auth token and
// -tls-ca/-tls-insecure dial https. -status-poll logs the coordinator's
// campaign status — queue depth, fleet throughput, the WantWorkers
// autoscaling hint — at a fixed interval, giving supervisor scripts a
// scrapeable scaling signal.
//
// Usage:
//
//	ilsim-workerd -connect host:9666              # one execution slot
//	ilsim-workerd -connect host:9666 -j 8 -v      # 8 slots, lifecycle logs
//	ilsim-workerd -connect host:9666 -retries 2   # local transient retries
//	ilsim-workerd -connect host:9666 -bundle 2s -status-poll 10s
//	ilsim-workerd -connect host:9666 -token s3cret -tls-ca coord.pem
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-workerd:", err)
		os.Exit(1)
	}
}

// run parses args and executes leases until the campaign completes; split
// from main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-workerd", flag.ContinueOnError)
	fs.SetOutput(errw)
	connect := fs.String("connect", "", "coordinator address (host:port; required)")
	name := fs.String("name", "", "worker name in leases and logs (default hostname-pid)")
	slots := fs.Int("j", 0, "concurrent execution slots (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 0, "local retries per transiently failing job")
	window := fs.Duration("window", 2*time.Minute, "how long to retry an unreachable coordinator before giving up")
	bundle := fs.Duration("bundle", 0, "cap this worker's lease bundles at this much estimated work (0 = accept the coordinator's target)")
	token := fs.String("token", "", "shared auth token for a coordinator started with -token")
	tlsCA := fs.String("tls-ca", "", "trust this PEM certificate (e.g. a self-signed coordinator cert) and dial https")
	tlsInsecure := fs.Bool("tls-insecure", false, "dial https without verifying the coordinator certificate (lab use only)")
	statusPoll := fs.Duration("status-poll", 0, "log the coordinator's campaign status (queue depth, throughput, WantWorkers hint) to stderr at this interval (0 = off)")
	verbose := fs.Bool("v", false, "log lifecycle events to stderr")
	debugAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("pprof listen %s: %w", *debugAddr, err)
		}
		defer ln.Close()
		fmt.Fprintf(errw, "pprof: http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, dist.NewDebugMux("ilsim-workerd"))
	}
	if *connect == "" {
		return errors.New("-connect is required")
	}
	if *slots <= 0 {
		*slots = runtime.GOMAXPROCS(0)
	}

	clientOpts := dist.ClientOptions{AuthToken: *token, TLSCACert: *tlsCA, TLSSkipVerify: *tlsInsecure}
	eng := exp.New(0)
	eng.Retry = exp.RetryPolicy{MaxRetries: *retries}
	w := &dist.Worker{
		Coordinator:  *connect,
		Name:         *name,
		Slots:        *slots,
		Engine:       eng,
		BundleTarget: *bundle,
		Client:       clientOpts,
		RetryWindow:  *window,
	}
	if *verbose {
		w.Logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
	}

	// SIGINT/SIGTERM abandon held leases cleanly: in-flight jobs cancel,
	// nothing half-done is reported, and the coordinator re-leases after
	// the lease TTL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx) // also ends the status poller on return
	defer cancel()

	if *statusPoll > 0 {
		// The poller shares the worker's credentials, so a hardened
		// coordinator feeds the same autoscaling signal as an open one.
		go func() {
			t := time.NewTicker(*statusPoll)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if st, err := dist.FetchStatus(ctx, *connect, clientOpts); err == nil {
						fmt.Fprintln(errw, st.Summary())
					}
				}
			}
		}()
	}

	if err := w.Run(ctx); err != nil {
		return err
	}
	if *statusPoll > 0 {
		// One final snapshot so the log always ends with the campaign's
		// closing state, even when the run outpaces the poll interval.
		if st, err := dist.FetchStatus(ctx, *connect, clientOpts); err == nil {
			fmt.Fprintln(errw, st.Summary())
		}
	}
	fmt.Fprintln(out, "campaign complete")
	return nil
}
