// Command ilsim-workerd is the distributed-sweep worker daemon: it joins a
// coordinator (ilsim-sweep -serve, or any dist.Coordinator), long-polls
// for job leases, executes them on a local experiment engine — watchdog
// budgets, panic isolation and transient retries all apply per job, as
// they would locally — and streams integrity-hashed results back. It
// exits 0 when the coordinator reports the campaign complete.
//
// The join handshake refuses stale binaries: protocol versions must match
// and the worker must recompute the coordinator's job fingerprints
// identically, so a worker whose job encoding drifted can never taint a
// campaign.
//
// Usage:
//
//	ilsim-workerd -connect host:9666              # one execution slot
//	ilsim-workerd -connect host:9666 -j 8 -v      # 8 slots, lifecycle logs
//	ilsim-workerd -connect host:9666 -retries 2   # local transient retries
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-workerd:", err)
		os.Exit(1)
	}
}

// run parses args and executes leases until the campaign completes; split
// from main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-workerd", flag.ContinueOnError)
	fs.SetOutput(errw)
	connect := fs.String("connect", "", "coordinator address (host:port; required)")
	name := fs.String("name", "", "worker name in leases and logs (default hostname-pid)")
	slots := fs.Int("j", 0, "concurrent execution slots (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 0, "local retries per transiently failing job")
	window := fs.Duration("window", 2*time.Minute, "how long to retry an unreachable coordinator before giving up")
	verbose := fs.Bool("v", false, "log lifecycle events to stderr")
	debugAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("pprof listen %s: %w", *debugAddr, err)
		}
		defer ln.Close()
		fmt.Fprintf(errw, "pprof: http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, dist.NewDebugMux("ilsim-workerd"))
	}
	if *connect == "" {
		return errors.New("-connect is required")
	}
	if *slots <= 0 {
		*slots = runtime.GOMAXPROCS(0)
	}

	eng := exp.New(0)
	eng.Retry = exp.RetryPolicy{MaxRetries: *retries}
	w := &dist.Worker{
		Coordinator: *connect,
		Name:        *name,
		Slots:       *slots,
		Engine:      eng,
		RetryWindow: *window,
	}
	if *verbose {
		w.Logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
	}

	// SIGINT/SIGTERM abandon held leases cleanly: in-flight jobs cancel,
	// nothing half-done is reported, and the coordinator re-leases after
	// the lease TTL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "campaign complete")
	return nil
}
