// Command ilsim-workerd is the distributed-sweep worker daemon: it joins a
// coordinator (ilsim-sweep -serve, or any dist.Coordinator), long-polls
// for job leases, executes them on a local experiment engine — watchdog
// budgets, panic isolation and transient retries all apply per job, as
// they would locally — and streams integrity-hashed results back. It
// exits 0 when the coordinator reports the campaign complete.
//
// The join handshake refuses stale binaries: protocol versions must match
// and the worker must recompute the coordinator's job fingerprints
// identically, so a worker whose job encoding drifted can never taint a
// campaign.
//
// Leases arrive as bundles sized by this worker's observed throughput
// (-bundle caps the per-lease work target); each job's result streams back
// individually, so a kill mid-bundle forfeits only un-acked work. For
// hardened coordinators, -token sends the shared auth token,
// -tls-ca/-tls-insecure dial https, and -tls-cert/-tls-key present this
// worker's client certificate to a mutual-TLS coordinator. -status-poll
// logs the coordinator's campaign status — queue depth, fleet throughput,
// the WantWorkers autoscaling hint — at a fixed interval, giving
// supervisor scripts a scrapeable scaling signal. -fleet labels the
// worker as supervisor-managed (ilsim-fleetd sets it on the workers it
// launches); the label shows up in the coordinator's status table and
// steers scale-down victim selection.
//
// The first SIGINT/SIGTERM drains gracefully: in-flight jobs finish and
// report, the unstarted remainder of the current bundle is released back
// to the coordinator, and the process exits 0. A second signal aborts
// hard — work in flight cancels and held leases lapse via their TTL.
//
// -chaos injects deterministic, seeded network faults (drops, delays,
// duplicates, corrupted and truncated responses, timed partitions) into
// this worker's coordinator connection — a development harness for
// rehearsing the retry, integrity-hash and re-lease machinery against a
// reproducible hostile network. See package ilsim/internal/chaos for the
// spec syntax.
//
// Usage:
//
//	ilsim-workerd -connect host:9666              # one execution slot
//	ilsim-workerd -connect host:9666 -j 8 -v      # 8 slots, lifecycle logs
//	ilsim-workerd -connect host:9666 -retries 2   # local transient retries
//	ilsim-workerd -connect host:9666 -bundle 2s -status-poll 10s
//	ilsim-workerd -connect host:9666 -token s3cret -tls-ca coord.pem
//	ilsim-workerd -connect host:9666 -tls-ca ca.pem -tls-cert w.pem -tls-key w.key
//	ilsim-workerd -connect host:9666 -chaos 'seed=7,drop=0.05,delay=20ms:0.2'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"ilsim/internal/chaos"
	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-workerd:", err)
		os.Exit(1)
	}
}

// run parses args and executes leases until the campaign completes; split
// from main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-workerd", flag.ContinueOnError)
	fs.SetOutput(errw)
	connect := fs.String("connect", "", "coordinator address (host:port; required)")
	name := fs.String("name", "", "worker name in leases and logs (default hostname-pid)")
	fleetLabel := fs.String("fleet", "", "fleet label announced at join (set by ilsim-fleetd; empty = hand-launched)")
	slots := fs.Int("j", 0, "concurrent execution slots (0 = GOMAXPROCS)")
	cuPar := fs.Int("cu-par", 0, "goroutines per simulation for CU ticking (0 = auto: cores/-j, capped at NumCUs; 1 = serial; results identical)")
	memPar := fs.Int("mem-par", 0, "goroutines per simulation for the memory drain's bank waves (0 = auto: cores/-j, capped at the drain width; 1 = serial; results identical)")
	retries := fs.Int("retries", 0, "local retries per transiently failing job")
	window := fs.Duration("window", 2*time.Minute, "how long to retry an unreachable coordinator before giving up")
	bundle := fs.Duration("bundle", 0, "cap this worker's lease bundles at this much estimated work (0 = accept the coordinator's target)")
	token := fs.String("token", "", "shared auth token for a coordinator started with -token")
	tlsCA := fs.String("tls-ca", "", "trust this PEM certificate (e.g. a self-signed coordinator cert) and dial https")
	tlsInsecure := fs.Bool("tls-insecure", false, "dial https without verifying the coordinator certificate (lab use only)")
	tlsCert := fs.String("tls-cert", "", "present this PEM certificate as the worker's client certificate (mutual TLS; needs -tls-key)")
	tlsKey := fs.String("tls-key", "", "private key for -tls-cert")
	chaosSpec := fs.String("chaos", "", "inject deterministic seeded network faults into the coordinator connection, e.g. 'seed=7,drop=0.05,corrupt=0.02,delay=20ms:0.2' (dev/test harness)")
	statusPoll := fs.Duration("status-poll", 0, "log the coordinator's campaign status (queue depth, throughput, WantWorkers hint) to stderr at this interval (0 = off)")
	verbose := fs.Bool("v", false, "log lifecycle events to stderr")
	debugAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("pprof listen %s: %w", *debugAddr, err)
		}
		defer ln.Close()
		fmt.Fprintf(errw, "pprof: http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, dist.NewDebugMux("ilsim-workerd"))
	}
	if *connect == "" {
		return errors.New("-connect is required")
	}
	if *slots <= 0 {
		*slots = runtime.GOMAXPROCS(0)
	}

	clientOpts := dist.ClientOptions{
		AuthToken:     *token,
		TLSCACert:     *tlsCA,
		TLSSkipVerify: *tlsInsecure,
		TLSCert:       *tlsCert,
		TLSKey:        *tlsKey,
	}
	var chaosT *chaos.Transport
	if *chaosSpec != "" {
		plan, err := chaos.ParsePlan(*chaosSpec)
		if err != nil {
			return err
		}
		clientOpts.Wrap = func(inner http.RoundTripper) http.RoundTripper {
			t := plan.Transport(inner)
			chaosT = t
			return t
		}
		fmt.Fprintf(errw, "chaos: injecting faults (%s)\n", *chaosSpec)
	}
	eng := exp.New(0)
	eng.Retry = exp.RetryPolicy{MaxRetries: *retries}
	eng.CUParallelism = *cuPar
	eng.MemParallelism = *memPar
	if msg := core.OversubscriptionWarning(*slots, *cuPar, *memPar); msg != "" {
		fmt.Fprintln(errw, "ilsim-workerd:", msg)
	}
	w := &dist.Worker{
		Coordinator:  *connect,
		Name:         *name,
		Fleet:        *fleetLabel,
		Slots:        *slots,
		Engine:       eng,
		BundleTarget: *bundle,
		Client:       clientOpts,
		RetryWindow:  *window,
	}
	if *verbose {
		w.Logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
	}

	// Two-stage shutdown. The first SIGINT/SIGTERM drains: in-flight
	// jobs finish and report, the unstarted remainder of the bundle is
	// released back to the coordinator, and Run returns cleanly. A
	// second signal aborts hard — work cancels mid-flight and held
	// leases lapse via their TTL.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		select {
		case <-ctx.Done():
			return
		case <-sigs:
		}
		fmt.Fprintln(errw, "draining: finishing in-flight jobs, releasing the rest (signal again to abort)")
		w.Drain()
		select {
		case <-ctx.Done():
		case <-sigs:
			fmt.Fprintln(errw, "aborting: cancelling in-flight work")
			cancel()
		}
	}()

	stopPoll := func() {}
	if *statusPoll > 0 {
		// The poller shares the worker's credentials, so a hardened
		// coordinator feeds the same autoscaling signal as an open one. It
		// is stopped (and waited for) before the exit report so the two
		// never interleave on the log stream.
		pollStop := make(chan struct{})
		pollDone := make(chan struct{})
		var pollOnce sync.Once
		stopPoll = func() {
			pollOnce.Do(func() { close(pollStop) })
			<-pollDone
		}
		go func() {
			defer close(pollDone)
			t := time.NewTicker(*statusPoll)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-pollStop:
					return
				case <-t.C:
					if st, err := dist.FetchStatus(ctx, *connect, clientOpts); err == nil {
						fmt.Fprintln(errw, st.Summary())
					}
				}
			}
		}()
	}

	if err := w.Run(ctx); err != nil {
		stopPoll()
		return err
	}
	stopPoll()
	if *statusPoll > 0 && !w.Draining() {
		// One final snapshot so the log always ends with the campaign's
		// closing state, even when the run outpaces the poll interval.
		if st, err := dist.FetchStatus(ctx, *connect, clientOpts); err == nil {
			fmt.Fprintln(errw, st.Summary())
		}
	}
	if chaosT != nil {
		s := chaosT.Stats()
		fmt.Fprintf(errw, "chaos: %d requests: %d dropped, %d delayed, %d duplicated, %d truncated, %d corrupted, %d partitioned\n",
			s.Requests, s.Drops, s.Delays, s.Dups, s.Truncates, s.Corrupts, s.Partitioned)
	}
	if w.Draining() {
		fmt.Fprintln(out, "drained")
	} else {
		fmt.Fprintln(out, "campaign complete")
	}
	return nil
}
