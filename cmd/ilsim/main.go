// Command ilsim runs one workload of the Table 5 suite under one or both
// ISA abstractions on the timed GPU model and prints the statistics the
// paper compares.
//
// Usage:
//
//	ilsim [-workload LULESH] [-abs both|hsail|gcn3] [-scale N] [-values] [-reuse]
//	ilsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ilsim/internal/core"
	"ilsim/internal/isa"
	"ilsim/internal/stats"
	"ilsim/internal/workloads"
)

func main() {
	name := flag.String("workload", "ArrayBW", "workload name (see -list)")
	abs := flag.String("abs", "both", "abstraction: hsail, gcn3, or both")
	scale := flag.Int("scale", 2, "input scale")
	values := flag.Bool("values", false, "track VRF lane-value uniqueness (Fig 10)")
	reuse := flag.Bool("reuse", false, "track register reuse distance (Fig 7)")
	list := flag.Bool("list", false, "list workloads and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	cus := flag.Int("cus", 0, "override the number of compute units")
	banks := flag.Int("banks", 0, "override the VRF bank count")
	wfSlots := flag.Int("wfslots", 0, "override wavefront slots per CU")
	l1iKB := flag.Int("l1i", 0, "override the I-cache size in KB")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-12s %s\n", w.Name, w.Description)
		}
		return
	}

	w, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	inst, err := w.Prepare(*scale)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	if *cus > 0 {
		cfg.NumCUs = *cus
	}
	if *banks > 0 {
		cfg.VRFBanks = *banks
	}
	if *wfSlots > 0 {
		cfg.WFSlots = *wfSlots
	}
	if *l1iKB > 0 {
		cfg.L1ISize = *l1iKB << 10
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		fatal(err)
	}
	opts := core.RunOptions{TrackValues: *values, ValueSampleEvery: 4, TrackReuse: *reuse}

	var targets []core.Abstraction
	switch *abs {
	case "both":
		targets = []core.Abstraction{core.AbsHSAIL, core.AbsGCN3}
	case "hsail":
		targets = []core.Abstraction{core.AbsHSAIL}
	case "gcn3":
		targets = []core.Abstraction{core.AbsGCN3}
	default:
		fatal(fmt.Errorf("unknown abstraction %q", *abs))
	}

	if !*asJSON {
		fmt.Printf("workload %s (scale %d) on:\n%s\n\n", w.Name, *scale, cfg)
	}
	var runs []*stats.Run
	for _, a := range targets {
		run, m, err := sim.Run(a, w.Name, inst.Setup, opts)
		if err != nil {
			fatal(err)
		}
		if err := inst.Check(m); err != nil {
			fatal(fmt.Errorf("output check failed: %w", err))
		}
		runs = append(runs, run)
		if !*asJSON {
			printRun(run, *values, *reuse)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport(runs, *scale)); err != nil {
			fatal(err)
		}
		return
	}
	if len(runs) == 2 {
		h, g := runs[0], runs[1]
		fmt.Printf("GCN3/HSAIL: insts %.2fx, cycles %.2fx, footprint %.2fx, conflicts %.2fx, flushes %.2fx\n",
			float64(g.TotalInsts())/float64(h.TotalInsts()),
			float64(g.Cycles)/float64(h.Cycles),
			float64(g.CodeFootprintBytes)/float64(h.CodeFootprintBytes),
			ratio(g.VRFBankConflicts, h.VRFBankConflicts),
			ratio(g.IBFlushes, h.IBFlushes))
	}
}

// jsonRun is the machine-readable projection of one run.
type jsonRun struct {
	Abstraction      string            `json:"abstraction"`
	Workload         string            `json:"workload"`
	Cycles           uint64            `json:"cycles"`
	KernelLaunches   uint64            `json:"kernelLaunches"`
	Instructions     uint64            `json:"instructions"`
	IPC              float64           `json:"ipc"`
	Mix              map[string]uint64 `json:"mix"`
	CodeFootprint    uint64            `json:"codeFootprintBytes"`
	DataFootprint    uint64            `json:"dataFootprintBytes"`
	SIMDUtilization  float64           `json:"simdUtilization"`
	VRFBankConflicts uint64            `json:"vrfBankConflicts"`
	IBFlushes        uint64            `json:"ibFlushes"`
	Redirects        uint64            `json:"redirects"`
	FetchStallCycles uint64            `json:"fetchStallCycles"`
	L1DMisses        uint64            `json:"l1dMisses"`
	L1DAccesses      uint64            `json:"l1dAccesses"`
	L1IMisses        uint64            `json:"l1iMisses"`
	L1IAccesses      uint64            `json:"l1iAccesses"`
	L2Misses         uint64            `json:"l2Misses"`
	L2Accesses       uint64            `json:"l2Accesses"`
	ReuseMedian      uint32            `json:"reuseMedian,omitempty"`
	ReadUniqueness   float64           `json:"readUniqueness,omitempty"`
	WriteUniqueness  float64           `json:"writeUniqueness,omitempty"`
	PerKernelCycles  []uint64          `json:"perKernelCycles"`
}

func jsonReport(runs []*stats.Run, scale int) map[string]any {
	out := map[string]any{"scale": scale}
	for _, r := range runs {
		j := jsonRun{
			Abstraction: r.Abstraction, Workload: r.Workload,
			Cycles: r.Cycles, KernelLaunches: r.KernelLaunches,
			Instructions: r.TotalInsts(), IPC: r.IPC(),
			Mix:           map[string]uint64{},
			CodeFootprint: r.CodeFootprintBytes, DataFootprint: r.DataFootprintBytes,
			SIMDUtilization:  r.SIMDUtilization(),
			VRFBankConflicts: r.VRFBankConflicts, IBFlushes: r.IBFlushes,
			Redirects: r.Redirects, FetchStallCycles: r.FetchStallCycles,
			L1DMisses: r.L1DMisses, L1DAccesses: r.L1DAccesses,
			L1IMisses: r.L1IMisses, L1IAccesses: r.L1IAccesses,
			L2Misses: r.L2Misses, L2Accesses: r.L2Accesses,
			ReuseMedian:     r.Reuse.Median(),
			ReadUniqueness:  r.ReadUniqueness(),
			WriteUniqueness: r.WriteUniqueness(),
			PerKernelCycles: r.KernelCycles,
		}
		for c := 0; c < isa.NumCategories; c++ {
			if r.InstsByCategory[c] > 0 {
				j.Mix[isa.Category(c).String()] = r.InstsByCategory[c]
			}
		}
		out[r.Abstraction] = j
	}
	return out
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func printRun(r *stats.Run, values, reuse bool) {
	fmt.Printf("--- %s ---\n", r.Abstraction)
	fmt.Printf("  cycles            %12d   (%d kernel launches)\n", r.Cycles, r.KernelLaunches)
	fmt.Printf("  instructions      %12d   IPC %.3f\n", r.TotalInsts(), r.IPC())
	fmt.Print("  mix              ")
	for c := 0; c < isa.NumCategories; c++ {
		if r.InstsByCategory[c] > 0 {
			fmt.Printf(" %s=%d", isa.Category(c), r.InstsByCategory[c])
		}
	}
	fmt.Println()
	fmt.Printf("  code footprint    %12d bytes\n", r.CodeFootprintBytes)
	fmt.Printf("  data footprint    %12d bytes\n", r.DataFootprintBytes)
	fmt.Printf("  SIMD utilization  %11.1f%%\n", 100*r.SIMDUtilization())
	fmt.Printf("  VRF bank conflicts%12d   (%.2f per kilo-inst)\n", r.VRFBankConflicts, r.ConflictsPerKiloInst())
	fmt.Printf("  IB flushes        %12d   (redirects %d, fetch stalls %d)\n", r.IBFlushes, r.Redirects, r.FetchStallCycles)
	fmt.Printf("  L1D %d/%d  L1I %d/%d  sL1 %d/%d  L2 %d/%d (miss/access)\n",
		r.L1DMisses, r.L1DAccesses, r.L1IMisses, r.L1IAccesses,
		r.ScalarL1Misses, r.ScalarL1Accesses, r.L2Misses, r.L2Accesses)
	if reuse {
		fmt.Printf("  reuse distance    %12d median (%d samples)\n", r.Reuse.Median(), r.Reuse.N())
	}
	if values {
		fmt.Printf("  value uniqueness  %10.1f%% reads, %.1f%% writes\n",
			100*r.ReadUniqueness(), 100*r.WriteUniqueness())
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ilsim:", err)
	os.Exit(1)
}
