// Command ilsim runs workloads of the Table 5 suite under one or both
// ISA abstractions on the timed GPU model and prints the statistics the
// paper compares.
//
// With one workload it prints full per-run statistics; with several
// (comma-separated, or "all") it prints a comparison table, executing every
// (workload × abstraction) job in parallel on the experiment engine.
//
// Usage:
//
//	ilsim [-workload LULESH] [-abs both|hsail|gcn3] [-scale N] [-values] [-reuse]
//	ilsim -workload all -j 8            # whole suite, engine-parallel table
//	ilsim -workload MD,SpMV,XSBench     # subset table
//	ilsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ilsim/internal/core"
	"ilsim/internal/exp"
	"ilsim/internal/isa"
	"ilsim/internal/prof"
	"ilsim/internal/stats"
	"ilsim/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim:", err)
		os.Exit(1)
	}
}

// run parses args and executes; split from main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim", flag.ContinueOnError)
	fs.SetOutput(errw)
	name := fs.String("workload", "ArrayBW", `workload name (see -list), comma-separated list, or "all"`)
	abs := fs.String("abs", "both", "abstraction: hsail, gcn3, or both")
	scale := fs.Int("scale", 2, "input scale")
	values := fs.Bool("values", false, "track VRF lane-value uniqueness (Fig 10)")
	reuse := fs.Bool("reuse", false, "track register reuse distance (Fig 7)")
	list := fs.Bool("list", false, "list workloads and exit")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of text (single workload)")
	workers := fs.Int("j", 0, "max parallel jobs (0 = GOMAXPROCS)")
	verbose := fs.Bool("v", false, "print per-job progress with ETA to stderr")
	timeout := fs.Duration("timeout", 0, "per-job wall-clock timeout (0 = none)")
	maxCycles := fs.Uint64("maxcycles", 0, "per-job simulated-cycle budget (0 = unlimited)")
	cus := fs.Int("cus", 0, "override the number of compute units")
	banks := fs.Int("banks", 0, "override the VRF bank count")
	wfSlots := fs.Int("wfslots", 0, "override wavefront slots per CU")
	l1iKB := fs.Int("l1i", 0, "override the I-cache size in KB")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	blockProfile := fs.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	noSkip := fs.Bool("noskip", false, "disable cycle skipping (tick every cycle; identical results, for verification)")
	cuPar := fs.Int("cu-par", 0, "goroutines per simulation for CU ticking (0 = auto: cores/-j, capped at NumCUs; 1 = serial; results identical)")
	memPar := fs.Int("mem-par", 0, "goroutines per simulation for the memory drain's bank waves (0 = auto: cores/-j, capped at the drain width; 1 = serial; results identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.StartOptions(prof.Options{
		CPUPath: *cpuProfile, MemPath: *memProfile,
		BlockPath: *blockProfile, MutexPath: *mutexProfile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(errw, "ilsim:", perr)
		}
	}()

	if *list {
		for _, w := range workloads.All() {
			fmt.Fprintf(out, "%-12s %s\n", w.Name, w.Description)
		}
		return nil
	}

	names, err := workloadNames(*name)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	if *cus > 0 {
		cfg.NumCUs = *cus
	}
	if *banks > 0 {
		cfg.VRFBanks = *banks
	}
	if *wfSlots > 0 {
		cfg.WFSlots = *wfSlots
	}
	if *l1iKB > 0 {
		cfg.L1ISize = *l1iKB << 10
	}
	opts := core.RunOptions{TrackValues: *values, ValueSampleEvery: 4, TrackReuse: *reuse,
		MaxCycles: *maxCycles, DisableCycleSkipping: *noSkip,
		CUParallelism: *cuPar, MemParallelism: *memPar}
	warnOversubscription(errw, *workers, *cuPar, *memPar)

	var targets []core.Abstraction
	switch *abs {
	case "both":
		targets = []core.Abstraction{core.AbsHSAIL, core.AbsGCN3}
	case "hsail":
		targets = []core.Abstraction{core.AbsHSAIL}
	case "gcn3":
		targets = []core.Abstraction{core.AbsGCN3}
	default:
		return fmt.Errorf("unknown abstraction %q", *abs)
	}

	var jobs []exp.Job
	for _, n := range names {
		for _, a := range targets {
			jobs = append(jobs, exp.Job{Workload: n, Scale: *scale, Abs: a, Config: cfg,
				Opts: opts, Timeout: *timeout})
		}
	}
	eng := exp.New(*workers)
	eng.CUParallelism = *cuPar
	eng.MemParallelism = *memPar
	if *verbose {
		eng.OnProgress = func(p exp.Progress) { fmt.Fprintln(errw, p.Line()) }
	}
	if len(names) == 1 {
		// Single workload: the detailed view needs every run, so abort on
		// the first failure.
		eng.Mode = exp.FailFast
	}
	results, _, err := eng.Run(jobs)
	if err != nil {
		return err
	}

	if len(names) > 1 {
		// Suite table: collect-all, so one broken workload cannot take
		// down the comparison — but a run with failures must still be
		// loudly distinguishable from a clean one.
		printTable(out, names, targets, results)
		if failed := exp.WriteFailureSummary(errw, results); failed > 0 {
			return fmt.Errorf("%d of %d jobs failed", failed, len(jobs))
		}
		return nil
	}

	// Single workload: the classic detailed view.
	runs := make([]*stats.Run, len(results))
	for i, r := range results {
		runs[i] = r.Run
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonReport(runs, *scale))
	}
	fmt.Fprintf(out, "workload %s (scale %d) on:\n%s\n\n", names[0], *scale, cfg)
	for _, r := range runs {
		printRun(out, r, *values, *reuse)
	}
	if len(runs) == 2 {
		h, g := runs[0], runs[1]
		fmt.Fprintf(out, "GCN3/HSAIL: insts %.2fx, cycles %.2fx, footprint %.2fx, conflicts %.2fx, flushes %.2fx\n",
			float64(g.TotalInsts())/float64(h.TotalInsts()),
			float64(g.Cycles)/float64(h.Cycles),
			float64(g.CodeFootprintBytes)/float64(h.CodeFootprintBytes),
			ratio(g.VRFBankConflicts, h.VRFBankConflicts),
			ratio(g.IBFlushes, h.IBFlushes))
	}
	return nil
}

// workloadNames expands the -workload argument: one name, a comma list, or
// "all" (Table 5 order).
func workloadNames(arg string) ([]string, error) {
	if arg == "all" {
		var names []string
		for _, w := range workloads.All() {
			names = append(names, w.Name)
		}
		return names, nil
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := workloads.ByName(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no workloads in %q", arg)
	}
	return names, nil
}

// printTable renders the multi-workload comparison table: one row per
// workload, the headline cross-abstraction statistics as columns. Results
// arrive in (workload-major, abstraction-minor) job order.
func printTable(out io.Writer, names []string, targets []core.Abstraction, results []exp.Result) {
	if len(targets) == 2 {
		fmt.Fprintf(out, "%-12s %12s %12s %7s %10s %10s %7s %7s %7s\n",
			"workload", "HSAIL cyc", "GCN3 cyc", "H/G", "H insts", "G insts", "G/H", "H util", "G util")
		for i, n := range names {
			hr, gr := results[2*i], results[2*i+1]
			if hr.Err != nil || gr.Err != nil {
				err := hr.Err
				if err == nil {
					err = gr.Err
				}
				fmt.Fprintf(out, "%-12s error [%s]: %s\n", n, exp.Classify(err), err)
				continue
			}
			h, g := hr.Run, gr.Run
			fmt.Fprintf(out, "%-12s %12d %12d %7.2f %10d %10d %7.2f %6.0f%% %6.0f%%\n",
				n, h.Cycles, g.Cycles, float64(h.Cycles)/float64(g.Cycles),
				h.TotalInsts(), g.TotalInsts(),
				float64(g.TotalInsts())/float64(h.TotalInsts()),
				100*h.SIMDUtilization(), 100*g.SIMDUtilization())
		}
		return
	}
	fmt.Fprintf(out, "%-12s %-6s %12s %10s %7s %7s\n",
		"workload", "abs", "cycles", "insts", "IPC", "util")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(out, "%-12s %-6s error [%s]: %s\n",
				r.Job.Workload, r.Job.Abs, exp.Classify(r.Err), r.Err)
			continue
		}
		fmt.Fprintf(out, "%-12s %-6s %12d %10d %7.3f %6.0f%%\n",
			r.Job.Workload, r.Job.Abs, r.Run.Cycles, r.Run.TotalInsts(),
			r.Run.IPC(), 100*r.Run.SIMDUtilization())
	}
}

// jsonRun is the machine-readable projection of one run.
type jsonRun struct {
	Abstraction      string            `json:"abstraction"`
	Workload         string            `json:"workload"`
	Cycles           uint64            `json:"cycles"`
	KernelLaunches   uint64            `json:"kernelLaunches"`
	Instructions     uint64            `json:"instructions"`
	IPC              float64           `json:"ipc"`
	Mix              map[string]uint64 `json:"mix"`
	CodeFootprint    uint64            `json:"codeFootprintBytes"`
	DataFootprint    uint64            `json:"dataFootprintBytes"`
	SIMDUtilization  float64           `json:"simdUtilization"`
	VRFBankConflicts uint64            `json:"vrfBankConflicts"`
	IBFlushes        uint64            `json:"ibFlushes"`
	Redirects        uint64            `json:"redirects"`
	FetchStallCycles uint64            `json:"fetchStallCycles"`
	L1DMisses        uint64            `json:"l1dMisses"`
	L1DAccesses      uint64            `json:"l1dAccesses"`
	L1IMisses        uint64            `json:"l1iMisses"`
	L1IAccesses      uint64            `json:"l1iAccesses"`
	L2Misses         uint64            `json:"l2Misses"`
	L2Accesses       uint64            `json:"l2Accesses"`
	ReuseMedian      uint32            `json:"reuseMedian,omitempty"`
	ReadUniqueness   float64           `json:"readUniqueness,omitempty"`
	WriteUniqueness  float64           `json:"writeUniqueness,omitempty"`
	PerKernelCycles  []uint64          `json:"perKernelCycles"`
}

func jsonReport(runs []*stats.Run, scale int) map[string]any {
	out := map[string]any{"scale": scale}
	for _, r := range runs {
		j := jsonRun{
			Abstraction: r.Abstraction, Workload: r.Workload,
			Cycles: r.Cycles, KernelLaunches: r.KernelLaunches,
			Instructions: r.TotalInsts(), IPC: r.IPC(),
			Mix:           map[string]uint64{},
			CodeFootprint: r.CodeFootprintBytes, DataFootprint: r.DataFootprintBytes,
			SIMDUtilization:  r.SIMDUtilization(),
			VRFBankConflicts: r.VRFBankConflicts, IBFlushes: r.IBFlushes,
			Redirects: r.Redirects, FetchStallCycles: r.FetchStallCycles,
			L1DMisses: r.L1DMisses, L1DAccesses: r.L1DAccesses,
			L1IMisses: r.L1IMisses, L1IAccesses: r.L1IAccesses,
			L2Misses: r.L2Misses, L2Accesses: r.L2Accesses,
			ReuseMedian:     r.Reuse.Median(),
			ReadUniqueness:  r.ReadUniqueness(),
			WriteUniqueness: r.WriteUniqueness(),
			PerKernelCycles: r.KernelCycles,
		}
		for c := 0; c < isa.NumCategories; c++ {
			if r.InstsByCategory[c] > 0 {
				j.Mix[isa.Category(c).String()] = r.InstsByCategory[c]
			}
		}
		out[r.Abstraction] = j
	}
	return out
}

// warnOversubscription tells the user when an explicit -cu-par or -mem-par
// setting multiplied by the job-level pool exceeds the host's cores. The
// settings are still honored (results are identical, only wall-clock
// suffers).
func warnOversubscription(errw io.Writer, workers, cuPar, memPar int) {
	if msg := core.OversubscriptionWarning(workers, cuPar, memPar); msg != "" {
		fmt.Fprintln(errw, "ilsim:", msg)
	}
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func printRun(out io.Writer, r *stats.Run, values, reuse bool) {
	fmt.Fprintf(out, "--- %s ---\n", r.Abstraction)
	fmt.Fprintf(out, "  cycles            %12d   (%d kernel launches)\n", r.Cycles, r.KernelLaunches)
	fmt.Fprintf(out, "  instructions      %12d   IPC %.3f\n", r.TotalInsts(), r.IPC())
	fmt.Fprint(out, "  mix              ")
	for c := 0; c < isa.NumCategories; c++ {
		if r.InstsByCategory[c] > 0 {
			fmt.Fprintf(out, " %s=%d", isa.Category(c), r.InstsByCategory[c])
		}
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  code footprint    %12d bytes\n", r.CodeFootprintBytes)
	fmt.Fprintf(out, "  data footprint    %12d bytes\n", r.DataFootprintBytes)
	fmt.Fprintf(out, "  SIMD utilization  %11.1f%%\n", 100*r.SIMDUtilization())
	fmt.Fprintf(out, "  VRF bank conflicts%12d   (%.2f per kilo-inst)\n", r.VRFBankConflicts, r.ConflictsPerKiloInst())
	fmt.Fprintf(out, "  IB flushes        %12d   (redirects %d, fetch stalls %d)\n", r.IBFlushes, r.Redirects, r.FetchStallCycles)
	fmt.Fprintf(out, "  L1D %d/%d  L1I %d/%d  sL1 %d/%d  L2 %d/%d (miss/access)\n",
		r.L1DMisses, r.L1DAccesses, r.L1IMisses, r.L1IAccesses,
		r.ScalarL1Misses, r.ScalarL1Accesses, r.L2Misses, r.L2Accesses)
	if reuse {
		fmt.Fprintf(out, "  reuse distance    %12d median (%d samples)\n", r.Reuse.Median(), r.Reuse.N())
	}
	if values {
		fmt.Fprintf(out, "  value uniqueness  %10.1f%% reads, %.1f%% writes\n",
			100*r.ReadUniqueness(), 100*r.WriteUniqueness())
	}
	fmt.Fprintln(out)
}
