package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTableModeBudgetFailureExitsNonZero: in multi-workload table mode a
// budget-killed job must not silently vanish — the table marks it, stderr
// carries a classified FAILED summary, and run returns a non-nil error so
// main exits non-zero.
func TestTableModeBudgetFailureExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-workload", "ArrayBW,SpMV", "-scale", "1",
		"-maxcycles", "10"}, &out, &errw)
	if err == nil {
		t.Fatalf("budget-killed table run returned nil error\nstdout:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "jobs failed") {
		t.Fatalf("error does not summarize failures: %v", err)
	}
	if !strings.Contains(errw.String(), "FAILED") ||
		!strings.Contains(errw.String(), "budget-exceeded") {
		t.Fatalf("stderr missing classified failure summary:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "error [budget-exceeded]") {
		t.Fatalf("table does not mark failed workloads:\n%s", out.String())
	}
}

// TestSingleWorkloadBudgetFailure: the detailed single-workload view runs
// fail-fast — a budget kill surfaces as the command's error.
func TestSingleWorkloadBudgetFailure(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-workload", "ArrayBW", "-scale", "1",
		"-maxcycles", "10"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("single-workload budget kill returned %v", err)
	}
}
