package main

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// TestSingleWorkloadSmoke runs the classic detailed view on ArrayBW at unit
// scale and checks the headline lines are present for both abstractions.
func TestSingleWorkloadSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-workload", "ArrayBW", "-scale", "1"}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	text := out.String()
	for _, want := range []string{"--- HSAIL ---", "--- GCN3 ---", "GCN3/HSAIL:", "cycles"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in output:\n%s", want, text)
		}
	}
}

// TestTableModeSmoke runs a two-workload table and asserts one parseable row
// per workload with consistent H/G cycle ratios — the multi-workload mode
// that submits every (workload, abstraction) job through the engine.
func TestTableModeSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-workload", "ArrayBW,SpMV", "-scale", "1", "-j", "4"}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	text := out.String()
	rows := 0
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 9 || (fields[0] != "ArrayBW" && fields[0] != "SpMV") {
			continue
		}
		rows++
		hCyc, err1 := strconv.ParseUint(fields[1], 10, 64)
		gCyc, err2 := strconv.ParseUint(fields[2], 10, 64)
		hg, err3 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %q: %v %v %v", line, err1, err2, err3)
		}
		if hCyc == 0 || gCyc == 0 {
			t.Fatalf("zero cycles in row %q", line)
		}
		if want := float64(hCyc) / float64(gCyc); hg < want-0.01 || hg > want+0.01 {
			t.Fatalf("H/G column %v inconsistent with cycles %d/%d in %q", hg, hCyc, gCyc, line)
		}
	}
	if rows != 2 {
		t.Fatalf("got %d table rows, want 2:\n%s", rows, text)
	}
}

// TestTableModeSingleAbs covers the one-abstraction table layout.
func TestTableModeSingleAbs(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-workload", "ArrayBW,SpMV", "-abs", "gcn3", "-scale", "1"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "GCN3"); got < 2 {
		t.Fatalf("want 2 GCN3 rows, got %d:\n%s", got, out.String())
	}
}

// TestJSONOutput checks the machine-readable mode still emits both runs.
func TestJSONOutput(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-workload", "ArrayBW", "-scale", "1", "-json"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	for _, key := range []string{"HSAIL", "GCN3", "scale"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("missing %q in JSON output", key)
		}
	}
}

// TestUnknownWorkload must fail cleanly before any simulation runs.
func TestUnknownWorkload(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "NoSuchWorkload"}, &out, &errw); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestListWorkloads checks -list prints the registry.
func TestListWorkloads(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ArrayBW", "LULESH", "SpMV"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in -list output:\n%s", want, out.String())
		}
	}
}
