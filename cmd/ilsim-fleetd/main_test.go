package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

// TestMain routes helper re-invocations: when the exec launcher spawns
// this test binary as its "ilsim-workerd" (via -worker-bin), the env
// guard turns the process into a real worker instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv("ILSIM_FLEETD_TEST_WORKER") == "1" {
		os.Exit(helperWorker())
	}
	os.Exit(m.Run())
}

// helperWorker is a minimal ilsim-workerd stand-in: it honors the flags
// the exec launcher generates (-connect/-name/-fleet/-j, plus the
// pass-throughs) and the SIGTERM drain contract.
func helperWorker() int {
	fs := flag.NewFlagSet("helper-worker", flag.ContinueOnError)
	connect := fs.String("connect", "", "")
	name := fs.String("name", "", "")
	fleetLabel := fs.String("fleet", "", "")
	slots := fs.Int("j", 1, "")
	token := fs.String("token", "", "")
	verbose := fs.Bool("v", false, "")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	w := &dist.Worker{Coordinator: *connect, Name: *name, Fleet: *fleetLabel,
		Slots: *slots, Client: dist.ClientOptions{AuthToken: *token}}
	if *verbose {
		w.Logf = log.Printf
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM)
	go func() { <-sigs; w.Drain() }()
	if err := w.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// logBuffer is a writer safe for the daemon's concurrent log streams.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *logBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *logBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startCampaign runs jobs through a loopback coordinator in the
// background and returns it plus the outcome channel.
func startCampaign(t *testing.T, jobs []exp.Job) (*dist.Coordinator, <-chan error) {
	t.Helper()
	c := dist.NewCoordinator(dist.Options{
		Addr:         "127.0.0.1:0",
		LongPoll:     50 * time.Millisecond,
		ScaleHorizon: 200 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	done := make(chan error, 1)
	go func() {
		_, metrics, err := c.Run(jobs)
		if err == nil && metrics.Failed != 0 {
			err = fmt.Errorf("campaign failed jobs: %+v", metrics)
		}
		done <- err
	}()
	return c, done
}

func testJobs(t *testing.T, n int) []exp.Job {
	t.Helper()
	pts, err := exp.SweepPoints("banks")
	if err != nil {
		t.Fatal(err)
	}
	return exp.PairJobs("ArrayBW", 1, pts[:n], core.RunOptions{})
}

// TestFleetdSmoke drives the daemon end to end with the exec launcher:
// the helper worker binary is this test binary, the supervisor grows the
// fleet, drains the campaign, winds down and exits 0 with the completion
// line.
func TestFleetdSmoke(t *testing.T) {
	t.Setenv("ILSIM_FLEETD_TEST_WORKER", "1")
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	c, campDone := startCampaign(t, testJobs(t, 4))

	var out bytes.Buffer
	errw := &logBuffer{}
	runErr := run([]string{"-connect", c.Addr(), "-fleet", "smoke",
		"-min", "1", "-max", "2", "-deadband", "0",
		"-up-cooldown", "20ms", "-down-cooldown", "200ms",
		"-poll", "50ms", "-status", "5ms",
		"-worker-bin", self, "-v"}, &out, errw)
	if runErr != nil {
		t.Fatalf("ilsim-fleetd: %v\nstderr: %s", runErr, errw.String())
	}
	if err := <-campDone; err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !strings.Contains(out.String(), "campaign complete; fleet drained") {
		t.Errorf("missing completion line:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "launched smoke-1") {
		t.Errorf("-v never logged a launch:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), `fleet "smoke"`) {
		t.Errorf("-status never logged the fleet summary:\n%s", errw.String())
	}
}

// TestFleetdCmdTemplate covers the -launch-cmd wiring: the template
// renders this test binary as the remote launch command, and the daemon
// still drains the campaign and exits clean.
func TestFleetdCmdTemplate(t *testing.T) {
	t.Setenv("ILSIM_FLEETD_TEST_WORKER", "1")
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	c, campDone := startCampaign(t, testJobs(t, 2))

	var out bytes.Buffer
	errw := &logBuffer{}
	runErr := run([]string{"-connect", c.Addr(), "-fleet", "tmpl",
		"-min", "1", "-max", "1", "-poll", "50ms",
		"-launch-cmd", self + " -connect {{.Coordinator}} -name {{.Name}} -fleet {{.Fleet}}",
		"-v"}, &out, errw)
	if runErr != nil {
		t.Fatalf("ilsim-fleetd: %v\nstderr: %s", runErr, errw.String())
	}
	if err := <-campDone; err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !strings.Contains(out.String(), "campaign complete; fleet drained") {
		t.Errorf("missing completion line:\n%s", out.String())
	}
}

// TestFleetdValidation pins the flag-validation refusals.
func TestFleetdValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no-connect", []string{"-max", "2"}},
		{"bad-bounds", []string{"-connect", "x:1", "-min", "4", "-max", "2"}},
		{"terminate-without-launch", []string{"-connect", "x:1", "-terminate-cmd", "echo"}},
		{"bad-launch-template", []string{"-connect", "x:1", "-launch-cmd", "{{.Name"}},
		{"missing-worker-bin", []string{"-connect", "x:1", "-worker-bin", "/does/not/exist"}},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		errw := &logBuffer{}
		if err := run(tc.args, &out, errw); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
