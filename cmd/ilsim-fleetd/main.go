// Command ilsim-fleetd is the fleet supervisor: it closes the
// autoscaling loop the coordinator's /status hints open. The daemon
// polls a coordinator (ilsim-sweep -serve), converts the WantWorkers
// slot target into a replica count through a hysteresis/cooldown policy
// (-min/-max clamps, -deadband, -up-cooldown/-down-cooldown, step caps),
// and reconciles the live fleet to match — launching workers to grow,
// draining them to shrink, and exiting 0 once the campaign completes and
// the fleet is gone.
//
// Two launchers cover the deployment spectrum. The default exec launcher
// spawns local ilsim-workerd child processes, passing through the
// transport and engine flags given here (-token, -tls-ca, -tls-insecure,
// -tls-cert/-tls-key, -chaos, -j) plus -name/-fleet labels; a crashed
// worker relaunches under the same name with exponential backoff, and a
// crash loop trips a breaker that abandons the lineage instead of
// respawning it forever. The cmdtmpl launcher (-launch-cmd, optional
// -terminate-cmd) renders shell templates over {{.Name}}, {{.Fleet}} and
// {{.Coordinator}} — ssh, cloud CLIs, kubectl — with the launch command
// staying in the foreground as the replica's lifetime.
//
// Scale-down never loses work: the supervisor asks the coordinator to
// drain the victim (POST /drain), the worker finishes its in-flight job,
// hands the unstarted remainder back via POST /release, and exits — only
// then is the process reaped. Victims are the cheapest first: crashed
// lineages waiting out a backoff, then quarantined workers, then idle
// ones, then the slowest.
//
// -status logs the supervisor's own fleet view (replicas, states, the
// current target and why) alongside the coordinator's campaign line at a
// fixed interval. SIGINT/SIGTERM stops supervising and kills the fleet;
// held leases lapse via their TTL and re-lease to surviving workers.
//
// Usage:
//
//	ilsim-fleetd -connect host:9666 -max 8                 # local fleet, up to 8 workers
//	ilsim-fleetd -connect host:9666 -min 2 -max 16 -j 4    # 4 slots per worker
//	ilsim-fleetd -connect host:9666 -max 8 -token s3cret -tls-ca coord.pem
//	ilsim-fleetd -connect host:9666 -max 4 -status 10s
//	ilsim-fleetd -connect host:9666 -max 8 \
//	  -launch-cmd 'ssh {{.Name}}.lab ilsim-workerd -connect {{.Coordinator}} -name {{.Name}} -fleet {{.Fleet}}' \
//	  -terminate-cmd 'ssh {{.Name}}.lab pkill -TERM -f {{.Name}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"ilsim/internal/dist"
	"ilsim/internal/fleet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-fleetd:", err)
		os.Exit(1)
	}
}

// run parses args and supervises until the campaign completes; split
// from main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-fleetd", flag.ContinueOnError)
	fs.SetOutput(errw)
	connect := fs.String("connect", "", "coordinator address (host:port; required)")
	label := fs.String("fleet", "fleet", "fleet label: prefix of worker names and the join-time tag that marks them supervisor-managed")
	minR := fs.Int("min", 1, "minimum replicas (also the bootstrap size before the first hint)")
	maxR := fs.Int("max", 4, "maximum replicas (0 = no ceiling)")
	deadband := fs.Float64("deadband", 0.25, "hysteresis width as a fraction of the current replica count")
	upCd := fs.Duration("up-cooldown", 5*time.Second, "quiet time required after any fleet change before growing")
	downCd := fs.Duration("down-cooldown", 30*time.Second, "quiet time required after any fleet change before shrinking")
	stepUp := fs.Int("step-up", 0, "max replicas added per decision (0 = uncapped)")
	stepDown := fs.Int("step-down", 0, "max replicas removed per decision (0 = uncapped)")
	poll := fs.Duration("poll", 2*time.Second, "status poll and reconcile interval")
	drainGrace := fs.Duration("drain-grace", 30*time.Second, "how long a drained worker may linger before Stop, twice before Kill")
	breaker := fs.Int("breaker", 5, "consecutive crashes that abandon a worker lineage")
	slots := fs.Int("j", 1, "execution slots per launched worker (passed to ilsim-workerd as -j)")
	workerBin := fs.String("worker-bin", "", "ilsim-workerd binary for the exec launcher (default: found next to this binary, then $PATH)")
	launchCmd := fs.String("launch-cmd", "", "shell template launching one worker ({{.Name}}, {{.Fleet}}, {{.Coordinator}}); replaces the exec launcher")
	terminateCmd := fs.String("terminate-cmd", "", "shell template terminating one worker (cmdtmpl launcher only; optional)")
	token := fs.String("token", "", "shared auth token, used by the supervisor and passed to exec-launched workers")
	tlsCA := fs.String("tls-ca", "", "trust this PEM certificate and dial https (passed through to workers)")
	tlsInsecure := fs.Bool("tls-insecure", false, "dial https without verifying the coordinator certificate (lab use only)")
	tlsCert := fs.String("tls-cert", "", "client certificate for mutual TLS (passed through to workers; needs -tls-key)")
	tlsKey := fs.String("tls-key", "", "private key for -tls-cert")
	chaosSpec := fs.String("chaos", "", "chaos spec passed through to exec-launched workers (dev/test harness)")
	statusEvery := fs.Duration("status", 0, "log the supervisor's fleet view and the coordinator's campaign line at this interval (0 = off)")
	verbose := fs.Bool("v", false, "log supervisor lifecycle events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return errors.New("-connect is required")
	}
	if *minR < 0 || (*maxR > 0 && *maxR < *minR) {
		return fmt.Errorf("bad replica bounds: min %d, max %d", *minR, *maxR)
	}

	clientOpts := dist.ClientOptions{
		AuthToken:     *token,
		TLSCACert:     *tlsCA,
		TLSSkipVerify: *tlsInsecure,
		TLSCert:       *tlsCert,
		TLSKey:        *tlsKey,
	}

	var launcher fleet.Launcher
	switch {
	case *launchCmd != "":
		l, err := fleet.NewCmdTemplateLauncher(*launchCmd, *terminateCmd)
		if err != nil {
			return err
		}
		l.Stdout, l.Stderr = errw, errw
		l.Logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
		launcher = l
	case *terminateCmd != "":
		return errors.New("-terminate-cmd needs -launch-cmd")
	default:
		bin, err := findWorkerBinary(*workerBin)
		if err != nil {
			return err
		}
		wargs := []string{"-j", strconv.Itoa(*slots)}
		if *token != "" {
			wargs = append(wargs, "-token", *token)
		}
		if *tlsCA != "" {
			wargs = append(wargs, "-tls-ca", *tlsCA)
		}
		if *tlsInsecure {
			wargs = append(wargs, "-tls-insecure")
		}
		if *tlsCert != "" {
			wargs = append(wargs, "-tls-cert", *tlsCert, "-tls-key", *tlsKey)
		}
		if *chaosSpec != "" {
			wargs = append(wargs, "-chaos", *chaosSpec)
		}
		if *verbose {
			wargs = append(wargs, "-v")
		}
		launcher = &fleet.ExecLauncher{Path: bin, Args: wargs, Stdout: errw, Stderr: errw}
	}

	sup := &fleet.Supervisor{
		Coordinator: *connect,
		Client:      clientOpts,
		Fleet:       *label,
		Launcher:    launcher,
		Policy: fleet.Policy{
			Min: *minR, Max: *maxR,
			Deadband:   *deadband,
			UpCooldown: *upCd, DownCooldown: *downCd,
			StepUp: *stepUp, StepDown: *stepDown,
		},
		SlotsPerWorker: *slots,
		Poll:           *poll,
		DrainGrace:     *drainGrace,
		BreakerCrashes: *breaker,
	}
	if *verbose {
		sup.Logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		select {
		case <-ctx.Done():
		case <-sigs:
			fmt.Fprintln(errw, "stopping: killing the fleet (held leases re-lease via their TTL)")
			cancel()
		}
	}()

	stopStatus := func() {}
	if *statusEvery > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		var once sync.Once
		stopStatus = func() {
			once.Do(func() { close(stop) })
			<-done
		}
		go func() {
			defer close(done)
			t := time.NewTicker(*statusEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-stop:
					return
				case <-t.C:
					fmt.Fprintln(errw, sup.Snapshot().Summary())
					if st, err := dist.FetchStatus(ctx, *connect, clientOpts); err == nil {
						fmt.Fprintln(errw, st.Summary())
					}
				}
			}
		}()
	}

	err := sup.Run(ctx)
	stopStatus()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "campaign complete; fleet drained")
	return nil
}

// findWorkerBinary locates ilsim-workerd for the exec launcher: an
// explicit -worker-bin wins, then a binary sitting next to ilsim-fleetd
// (the `go build ./...` layout), then $PATH.
func findWorkerBinary(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("worker binary %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "ilsim-workerd")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("ilsim-workerd"); err == nil {
		return path, nil
	}
	return "", errors.New("cannot find ilsim-workerd (set -worker-bin, or put it next to ilsim-fleetd or on $PATH)")
}
