// Command ilsim-report regenerates every table and figure of the paper's
// evaluation section and writes the results as markdown.
//
// The full suite at evaluation scale is the repository's longest campaign;
// -journal checkpoints every completed run so a killed regeneration
// resumes with -resume instead of restarting from zero, and -serve leases
// the suite to distributed workers (ilsim-workerd) instead of running it
// on the local pool — the assembled figures are identical either way.
//
// Usage:
//
//	ilsim-report [-scale N] [-hw=false] [-exp fig5] [-o EXPERIMENTS.md] [-j 8]
//	ilsim-report -journal report.jsonl            # checkpoint as it goes
//	ilsim-report -journal report.jsonl -resume    # continue after a kill
//	ilsim-report -serve :9666                     # lease the suite to workers
package main

import (
	"flag"
	"fmt"
	"os"

	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
	"ilsim/internal/report"
)

func main() {
	scale := flag.Int("scale", 2, "input scale for the workload suite")
	withHW := flag.Bool("hw", true, "run the hardware-correlation oracle (Table 7)")
	expName := flag.String("exp", "", "render only one experiment (fig1, fig3, fig5..fig12, table6, table7, ablation)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	csvDir := flag.String("csv", "", "also export per-figure CSV files to this directory")
	workers := flag.Int("j", 0, "max parallel simulation jobs (0 = GOMAXPROCS)")
	journalPath := flag.String("journal", "", "checkpoint completed suite jobs to this JSONL file")
	resume := flag.Bool("resume", false, "reuse an existing -journal file, re-running only unfinished jobs")
	verbose := flag.Bool("v", false, "print per-job progress with ETA to stderr")
	serve := flag.String("serve", "", "coordinate the suite over HTTP on this address instead of running it locally")
	flag.Parse()
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "ilsim-report: -resume requires -journal")
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	var journal *exp.Journal
	if *journalPath != "" {
		jobs := report.SuiteJobs(cfg, *scale, *withHW)
		j, err := exp.OpenJournal(*journalPath, jobs, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ilsim-report:", err)
			os.Exit(1)
		}
		defer j.Close()
		if n := j.Resumable(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d of %d jobs already journaled in %s\n",
				n, len(jobs), *journalPath)
		}
		journal = j
	}
	var onProgress func(exp.Progress)
	if *verbose {
		onProgress = func(p exp.Progress) { fmt.Fprintln(os.Stderr, p.Line()) }
	}
	var runner exp.Runner
	if *serve != "" {
		c := dist.NewCoordinator(dist.Options{
			Addr:       *serve,
			Journal:    journal,
			OnProgress: onProgress,
			Logf:       func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
		})
		if err := c.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "ilsim-report:", err)
			os.Exit(1)
		}
		defer c.Close()
		fmt.Fprintf(os.Stderr, "coordinating the suite on %s — attach workers with: ilsim-workerd -connect %s\n",
			c.Addr(), c.Addr())
		runner = c
	} else {
		eng := exp.New(*workers)
		eng.Journal = journal
		eng.OnProgress = onProgress
		runner = eng
	}
	res, err := report.CollectParallel(runner, cfg, *scale, *withHW)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-report:", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		if err := res.WriteCSV(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "ilsim-report:", err)
			os.Exit(1)
		}
		fmt.Println("wrote CSV files to", *csvDir)
	}

	var text string
	switch *expName {
	case "":
		text = res.Markdown(cfg)
	case "fig1":
		text = res.Fig1()
	case "fig3":
		text, err = report.Fig3()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ilsim-report:", err)
			os.Exit(1)
		}
	case "fig5":
		text = res.Fig5()
	case "fig6":
		text = res.Fig6()
	case "fig7":
		text = res.Fig7()
	case "fig8":
		text = res.Fig8()
	case "fig9":
		text = res.Fig9()
	case "fig10":
		text = res.Fig10()
	case "fig11":
		text = res.Fig11()
	case "fig12":
		text = res.Fig12()
	case "table6":
		text = res.Table6()
	case "table7":
		text = res.Table7()
	case "ablation":
		rows, err := report.RunAblations(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ilsim-report:", err)
			os.Exit(1)
		}
		text = report.AblationTable(rows)
	default:
		fmt.Fprintf(os.Stderr, "ilsim-report: unknown experiment %q\n", *expName)
		os.Exit(2)
	}

	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-report:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
