package main

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

// startServe launches a -serve sweep in a goroutine and returns the bound
// coordinator address scraped from its stderr.
func startServe(t *testing.T, args []string, out *bytes.Buffer, errw *syncBuffer) (addr string, done chan error) {
	t.Helper()
	done = make(chan error, 1)
	go func() { done <- run(args, out, errw) }()
	addrRe := regexp.MustCompile(`-connect (127\.0\.0\.1:\d+)`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(errw.String()); m != nil {
			return m[1], done
		}
		select {
		case err := <-done:
			t.Fatalf("coordinator exited early: %v\nstderr: %s", err, errw.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no coordinator address in stderr:\n%s", errw.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSweepWatchAndToken drives the hardened CLI path end to end: a
// coordinator started with -token and -bundle, a -watch snapshot that
// must authenticate and must carry the autoscaling fields, and a worker
// that needs the token to drain the campaign.
func TestSweepWatchAndToken(t *testing.T) {
	sweep := []string{"-param", "banks", "-workload", "ArrayBW", "-points", "2",
		"-serve", "127.0.0.1:0", "-token", "s3cret", "-bundle", "5s"}
	var serveOut bytes.Buffer
	serveErr := &syncBuffer{}
	addr, serveDone := startServe(t, sweep, &serveOut, serveErr)

	// No workers yet: the snapshot shows the whole queue pending. The
	// status endpoint answers 503 for the instant between the listener
	// binding and the campaign installing, so retry briefly.
	var watchOut, watchErr bytes.Buffer
	deadline := time.Now().Add(10 * time.Second)
	for {
		watchOut.Reset()
		watchErr.Reset()
		err := run([]string{"-watch", addr, "-token", "s3cret"}, &watchOut, &watchErr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch: %v\nstderr: %s", err, watchErr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, wantSub := range []string{"0/4 done", "4 pending", "0 workers"} {
		if !strings.Contains(watchOut.String(), wantSub) {
			t.Errorf("watch output missing %q:\n%s", wantSub, watchOut.String())
		}
	}

	// The wrong token watches nothing.
	var badOut, badErr bytes.Buffer
	if err := run([]string{"-watch", addr, "-token", "nope"}, &badOut, &badErr); err == nil {
		t.Fatal("wrong-token -watch succeeded")
	}

	var wOut bytes.Buffer
	wErr := &syncBuffer{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := run([]string{"-connect", addr, "-j", "2", "-token", "s3cret"}, &wOut, wErr); err != nil {
			t.Errorf("worker: %v\nstderr: %s", err, wErr.String())
		}
	}()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve run: %v\nstderr: %s", err, serveErr.String())
	}
	wg.Wait()
	if !strings.Contains(serveOut.String(), "sweep banks") {
		t.Fatalf("coordinator produced no sweep table:\n%s", serveOut.String())
	}
}

// TestSweepServeReplicas drives the quorum flag end to end: with
// -replicas 2 every job needs matching ballots from two distinct workers
// before it is accepted, so the campaign only completes once both CLI
// workers have executed the whole job set — and the sweep table still
// prints normally.
func TestSweepServeReplicas(t *testing.T) {
	sweep := []string{"-param", "banks", "-workload", "ArrayBW", "-points", "2",
		"-serve", "127.0.0.1:0", "-replicas", "2"}
	var serveOut bytes.Buffer
	serveErr := &syncBuffer{}
	addr, serveDone := startServe(t, sweep, &serveOut, serveErr)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wOut bytes.Buffer
			wErr := &syncBuffer{}
			if err := run([]string{"-connect", addr, "-j", "2"}, &wOut, wErr); err != nil {
				t.Errorf("replica worker: %v\nstderr: %s", err, wErr.String())
			}
		}()
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve run: %v\nstderr: %s", err, serveErr.String())
	}
	wg.Wait()
	if !strings.Contains(serveOut.String(), "sweep banks") {
		t.Fatalf("coordinator produced no sweep table:\n%s", serveOut.String())
	}
}

// TestSweepWatchInterval drives -watch -interval against an in-process
// coordinator: the loop redraws until the status reports the campaign
// finished, then exits nil on its own. The sink is a plain buffer, not a
// TTY, so frames must append without ANSI clear sequences.
func TestSweepWatchInterval(t *testing.T) {
	pts, err := exp.SweepPoints("banks")
	if err != nil {
		t.Fatal(err)
	}
	jobs := exp.PairJobs("ArrayBW", 1, pts[:2], core.RunOptions{})

	c := dist.NewCoordinator(dist.Options{Addr: "127.0.0.1:0", LongPoll: 50 * time.Millisecond})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Closed at the end, not deferred into the race: the finished campaign
	// stays queryable until then, so the watch loop always gets to observe
	// the terminal status.
	campDone := make(chan error, 1)
	go func() {
		_, _, err := c.Run(jobs)
		campDone <- err
	}()
	w := &dist.Worker{Coordinator: c.Addr(), Name: "watched", Slots: 1}
	wDone := make(chan error, 1)
	go func() { wDone <- w.Run(context.Background()) }()

	var out, errw bytes.Buffer
	if err := run([]string{"-watch", c.Addr(), "-interval", "2ms"}, &out, &errw); err != nil {
		t.Fatalf("interval watch: %v\noutput: %s", err, out.String())
	}
	if err := <-wDone; err != nil {
		t.Fatal(err)
	}
	if err := <-campDone; err != nil {
		t.Fatal(err)
	}
	c.Close()

	frames := out.String()
	if !strings.Contains(frames, "4/4 done") {
		t.Fatalf("watch exited without a finished frame:\n%s", frames)
	}
	if strings.Contains(frames, "\x1b[") {
		t.Fatalf("ANSI escape written to a non-TTY sink:\n%q", frames)
	}
}

// TestSweepWatchExclusive rejects -watch combined with the other modes.
func TestSweepWatchExclusive(t *testing.T) {
	for _, args := range [][]string{
		{"-watch", "x:1", "-serve", ":0"},
		{"-watch", "x:1", "-connect", "x:1"},
	} {
		var out, errw bytes.Buffer
		err := run(args, &out, &errw)
		if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
			t.Fatalf("%v: err = %v", args, err)
		}
	}
}

// TestSparkline pins the throughput ring's math and rendering: the first
// sample only primes, each later sample contributes (done delta)/(time
// delta), bars scale to the window's peak, the latest and peak rates are
// printed, and the ring never outgrows its window.
func TestSparkline(t *testing.T) {
	var s sparkline
	t0 := time.Unix(100, 0)
	if s.observe(dist.Status{Done: 0}, t0); s.line() != "" {
		t.Fatalf("sparkline rendered before two samples: %q", s.line())
	}
	s.observe(dist.Status{Done: 4}, t0.Add(time.Second))   // 4 jobs/s
	s.observe(dist.Status{Done: 6}, t0.Add(2*time.Second)) // 2 jobs/s
	s.observe(dist.Status{Done: 6}, t0.Add(3*time.Second)) // idle
	got := s.line()
	want := "dist: throughput █▄▁ 0.00 jobs/s (peak 4.00)"
	if got != want {
		t.Errorf("sparkline = %q, want %q", got, want)
	}

	// A resumed campaign can report a lower Done than the last sample;
	// the rate clamps at zero instead of going negative.
	s.observe(dist.Status{Done: 2}, t0.Add(4*time.Second))
	if !strings.HasSuffix(s.line(), "0.00 jobs/s (peak 4.00)") {
		t.Errorf("negative delta not clamped: %q", s.line())
	}

	// The ring is bounded by the window.
	for i := 0; i < 3*sparklineWindow; i++ {
		s.observe(dist.Status{Done: 10 + i}, t0.Add(time.Duration(5+i)*time.Second))
	}
	if len(s.rates) != sparklineWindow {
		t.Errorf("ring grew to %d samples, window is %d", len(s.rates), sparklineWindow)
	}
}
