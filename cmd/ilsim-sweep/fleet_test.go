package main

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeSelfSignedCert mints a loopback server certificate for the
// validation test — the mutual-TLS refusal fires only after the serve
// listener loads real cert material.
func writeSelfSignedCert(t *testing.T, dir string) (certPath, keyPath string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "ilsim-sweep-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	certPath = filepath.Join(dir, "coord.pem")
	keyPath = filepath.Join(dir, "coord.key")
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(certPath, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyPath, keyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	return certPath, keyPath
}

// TestSweepLocalFleet runs a sweep through -serve -fleet N: the
// self-supervised in-process fleet must drain the campaign with no
// external workers, and the result table must match a plain local run
// byte for byte.
func TestSweepLocalFleet(t *testing.T) {
	sweep := []string{"-param", "banks", "-workload", "ArrayBW", "-scale", "1", "-points", "3"}

	var localOut, localErr bytes.Buffer
	if err := run(append(sweep, "-j", "2"), &localOut, &localErr); err != nil {
		t.Fatalf("local run: %v\nstderr: %s", err, localErr.String())
	}

	var serveOut bytes.Buffer
	serveErr := &syncBuffer{}
	if err := run(append(sweep, "-serve", "127.0.0.1:0", "-fleet", "2", "-v"), &serveOut, serveErr); err != nil {
		t.Fatalf("serve -fleet run: %v\nstderr: %s", err, serveErr.String())
	}
	if got, want := sweepTable(serveOut.String()), sweepTable(localOut.String()); got != want {
		t.Errorf("fleet-run table differs from local:\n--- local ---\n%s--- fleet ---\n%s", want, got)
	}
	if !strings.Contains(serveErr.String(), "self-supervising up to 2 local workers") {
		t.Errorf("no fleet banner in stderr:\n%s", serveErr.String())
	}
	if !strings.Contains(serveErr.String(), "launched local-1") {
		t.Errorf("supervisor never launched a local worker:\n%s", serveErr.String())
	}
}

// TestSweepFleetValidation: -fleet outside -serve and -fleet against a
// mutual-TLS coordinator are refused up front.
func TestSweepFleetValidation(t *testing.T) {
	var out bytes.Buffer
	errw := &syncBuffer{}
	err := run([]string{"-param", "banks", "-points", "1", "-fleet", "2"}, &out, errw)
	if err == nil || !strings.Contains(err.Error(), "-fleet requires -serve") {
		t.Errorf("local -fleet: %v", err)
	}

	dir := t.TempDir()
	cert, key := writeSelfSignedCert(t, dir)
	err = run([]string{"-param", "banks", "-points", "1",
		"-serve", "127.0.0.1:0", "-fleet", "2",
		"-tls-cert", cert, "-tls-key", key, "-tls-client-ca", cert}, &out, errw)
	if err == nil || !strings.Contains(err.Error(), "mutual-TLS") {
		t.Errorf("mutual-TLS -fleet: %v", err)
	}
}
