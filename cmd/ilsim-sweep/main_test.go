package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestSweepSmoke runs a tiny 2-point bank sweep on ArrayBW at unit scale
// and asserts the table parses: one row per point with stable numeric
// cycle columns and an H/G ratio.
func TestSweepSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-param", "banks", "-workload", "ArrayBW",
		"-scale", "1", "-points", "2", "-j", "2"}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	text := out.String()
	if !strings.Contains(text, "sweep banks on ArrayBW (scale 1)") {
		t.Fatalf("missing header:\n%s", text)
	}
	var rows int
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 7 || !strings.HasPrefix(fields[0], "banks=") {
			continue
		}
		rows++
		hCyc, err1 := strconv.ParseUint(fields[1], 10, 64)
		gCyc, err2 := strconv.ParseUint(fields[2], 10, 64)
		hg, err3 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %q: %v %v %v", line, err1, err2, err3)
		}
		if hCyc == 0 || gCyc == 0 {
			t.Fatalf("zero cycles in row %q", line)
		}
		if want := float64(hCyc) / float64(gCyc); hg < want-0.01 || hg > want+0.01 {
			t.Fatalf("H/G column %v inconsistent with cycles %d/%d in %q", hg, hCyc, gCyc, line)
		}
	}
	if rows != 2 {
		t.Fatalf("got %d sweep rows, want 2:\n%s", rows, text)
	}
}

// TestSweepVerboseProgress checks the -v progress stream reports every job.
func TestSweepVerboseProgress(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-param", "banks", "-workload", "ArrayBW",
		"-scale", "1", "-points", "2", "-v"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(errw.String(), "\n")
	if lines != 4 { // 2 points × 2 abstractions
		t.Fatalf("got %d progress lines, want 4:\n%s", lines, errw.String())
	}
}

// TestSweepUnknownParam must fail cleanly.
func TestSweepUnknownParam(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-param", "bogus"}, &out, &errw); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}

// TestSweepCUs exercises the machine-scaling sweep end to end on the two
// smallest machines.
func TestSweepCUs(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-param", "cus", "-workload", "ArrayBW",
		"-scale", "1", "-points", "2"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cus=2") || !strings.Contains(out.String(), "cus=4") {
		t.Fatalf("cus rows missing:\n%s", out.String())
	}
}
