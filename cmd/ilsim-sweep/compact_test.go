package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepJournalCompact runs a journaled sweep, compacts the journal in
// place, and resumes from the compacted file: the resumed table rows must
// be byte-identical to the original run's.
func TestSweepJournalCompact(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-param", "banks", "-workload", "ArrayBW",
		"-scale", "1", "-points", "2", "-journal", journal}

	var out1, err1 bytes.Buffer
	if err := run(args, &out1, &err1); err != nil {
		t.Fatalf("first run: %v\nstderr: %s", err, err1.String())
	}
	before, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}

	var cOut, cErr bytes.Buffer
	if err := run([]string{"-journal", journal, "-journal-compact"}, &cOut, &cErr); err != nil {
		t.Fatalf("compact: %v\nstderr: %s", err, cErr.String())
	}
	if !strings.Contains(cOut.String(), "kept 4 entries, dropped 0") {
		t.Fatalf("unexpected compaction report:\n%s", cOut.String())
	}
	after, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) > len(before) {
		t.Fatalf("compaction grew the journal: %d -> %d bytes", len(before), len(after))
	}

	var out2, err2 bytes.Buffer
	if err := run(append(args, "-resume"), &out2, &err2); err != nil {
		t.Fatalf("resume after compact: %v\nstderr: %s", err, err2.String())
	}
	if !strings.Contains(out2.String(), "4 resumed from journal") {
		t.Fatalf("compacted journal did not resume all jobs:\n%s", out2.String())
	}
	r1, r2 := sweepRows(out1.String()), sweepRows(out2.String())
	if len(r1) != 2 || len(r2) != 2 {
		t.Fatalf("row counts %d/%d, want 2/2", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row after compaction differs:\n%q\n%q", r1[i], r2[i])
		}
	}
}

// TestSweepJournalCompactUsage: -journal-compact needs -journal and runs
// standalone.
func TestSweepJournalCompactUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-journal-compact"}, &out, &errw); err == nil ||
		!strings.Contains(err.Error(), "-journal") {
		t.Fatalf("bare -journal-compact: %v", err)
	}
	if err := run([]string{"-journal", "x.jsonl", "-journal-compact", "-serve", ":0"}, &out, &errw); err == nil ||
		!strings.Contains(err.Error(), "standalone") {
		t.Fatalf("-journal-compact with -serve: %v", err)
	}
}
