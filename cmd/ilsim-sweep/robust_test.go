package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// sweepRows extracts only the per-point table rows — the timing footer
// differs between runs, so resume-fidelity checks compare rows alone.
func sweepRows(text string) []string {
	var rows []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "banks=") {
			rows = append(rows, line)
		}
	}
	return rows
}

// TestSweepJournalResume runs a sweep with -journal, then the identical
// sweep with -resume: the second run reports every job as resumed and its
// table rows are byte-identical to the first run's.
func TestSweepJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-param", "banks", "-workload", "ArrayBW",
		"-scale", "1", "-points", "2", "-journal", journal}

	var out1, err1 bytes.Buffer
	if err := run(args, &out1, &err1); err != nil {
		t.Fatalf("first run: %v\nstderr: %s", err, err1.String())
	}

	var out2, err2 bytes.Buffer
	if err := run(append(args, "-resume"), &out2, &err2); err != nil {
		t.Fatalf("resumed run: %v\nstderr: %s", err, err2.String())
	}
	if !strings.Contains(err2.String(), "resuming: 4 of 4 jobs") {
		t.Fatalf("no resume notice on stderr:\n%s", err2.String())
	}
	if !strings.Contains(out2.String(), "4 resumed from journal") {
		t.Fatalf("footer does not report resumption:\n%s", out2.String())
	}
	r1, r2 := sweepRows(out1.String()), sweepRows(out2.String())
	if len(r1) != 2 || len(r2) != 2 {
		t.Fatalf("row counts %d/%d, want 2/2", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("resumed row differs:\n%q\n%q", r1[i], r2[i])
		}
	}
}

// TestSweepResumeRequiresJournal: -resume alone is a usage error.
func TestSweepResumeRequiresJournal(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-param", "banks", "-resume"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-journal") {
		t.Fatalf("bare -resume returned %v", err)
	}
}

// TestSweepJournalRefusesClobber: re-running with -journal but without
// -resume must not overwrite the checkpoint.
func TestSweepJournalRefusesClobber(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-param", "banks", "-workload", "ArrayBW",
		"-scale", "1", "-points", "1", "-journal", journal}
	var out, errw bytes.Buffer
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out, &errw); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("journal clobbered: %v", err)
	}
}

// TestSweepBudgetFailureExitsNonZero: a sweep whose jobs blow a tiny cycle
// budget completes the table (collect-all) but returns an error and prints
// a classified failure summary to stderr — the CLI exit-code contract.
func TestSweepBudgetFailureExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-param", "banks", "-workload", "ArrayBW",
		"-scale", "1", "-points", "1", "-maxcycles", "10"}, &out, &errw)
	if err == nil {
		t.Fatalf("budget-killed sweep returned nil error\nstdout:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "jobs failed") {
		t.Fatalf("error does not summarize failures: %v", err)
	}
	text := errw.String()
	if !strings.Contains(text, "FAILED") || !strings.Contains(text, "budget-exceeded") {
		t.Fatalf("stderr missing classified failure summary:\n%s", text)
	}
	if !strings.Contains(out.String(), "error [budget-exceeded]") {
		t.Fatalf("table does not mark the failed point:\n%s", out.String())
	}
}
