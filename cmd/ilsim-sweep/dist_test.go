package main

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while the coordinator
// goroutine writes its stderr stream into it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// timingRe strips the wall-clock summary line, the only part of the sweep
// output that legitimately differs between two runs of the same jobs.
var timingRe = regexp.MustCompile(`(?m)^\d+ jobs in .*$`)

func sweepTable(s string) string { return timingRe.ReplaceAllString(s, "N jobs") }

// TestSweepServeConnect runs the same tiny sweep twice — once locally,
// once through -serve with two -connect workers over loopback — and
// asserts the result tables are identical: the distributed path must not
// change a byte of the science.
func TestSweepServeConnect(t *testing.T) {
	sweep := []string{"-param", "banks", "-workload", "ArrayBW", "-scale", "1", "-points", "2"}

	var localOut, localErr bytes.Buffer
	if err := run(append(sweep, "-j", "2"), &localOut, &localErr); err != nil {
		t.Fatalf("local run: %v\nstderr: %s", err, localErr.String())
	}

	var serveOut bytes.Buffer
	serveErr := &syncBuffer{}
	serveDone := make(chan error, 1)
	go func() { serveDone <- run(append(sweep, "-serve", "127.0.0.1:0"), &serveOut, serveErr) }()

	// The coordinator prints its bound address before accepting workers.
	addrRe := regexp.MustCompile(`-connect (127\.0\.0\.1:\d+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(serveErr.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-serveDone:
			t.Fatalf("coordinator exited early: %v\nstderr: %s", err, serveErr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no coordinator address in stderr:\n%s", serveErr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wOut bytes.Buffer
			wErr := &syncBuffer{}
			if err := run([]string{"-connect", addr, "-j", "2", "-v"}, &wOut, wErr); err != nil {
				t.Errorf("worker: %v\nstderr: %s", err, wErr.String())
			}
		}()
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve run: %v\nstderr: %s", err, serveErr.String())
	}
	wg.Wait()

	if sweepTable(localOut.String()) != sweepTable(serveOut.String()) {
		t.Fatalf("distributed sweep output differs from local:\n--- local ---\n%s--- distributed ---\n%s",
			localOut.String(), serveOut.String())
	}
}

// TestSweepServeConnectExclusive rejects contradictory modes.
func TestSweepServeConnectExclusive(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-serve", ":0", "-connect", "x:1"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}
