// Command ilsim-sweep runs sensitivity studies over microarchitecture
// parameters — the experiments an architect would run next with this
// infrastructure, and a demonstration of how the IL-vs-ISA gap moves with
// the hardware design point.
//
// Usage:
//
//	ilsim-sweep -param banks  -workload ArrayBW   # VRF bank count
//	ilsim-sweep -param ib     -workload CoMD      # instruction-buffer size
//	ilsim-sweep -param waves  -workload MD        # wavefront slots per CU
//	ilsim-sweep -param l1i    -workload LULESH    # I-cache size
package main

import (
	"flag"
	"fmt"
	"os"

	"ilsim/internal/core"
	"ilsim/internal/stats"
	"ilsim/internal/workloads"
)

type point struct {
	label string
	cfg   core.Config
}

func sweepPoints(param string) ([]point, error) {
	base := core.DefaultConfig()
	var pts []point
	add := func(label string, mod func(*core.Config)) {
		cfg := base
		mod(&cfg)
		pts = append(pts, point{label, cfg})
	}
	switch param {
	case "banks":
		for _, b := range []int{4, 8, 16, 32, 64} {
			b := b
			add(fmt.Sprintf("banks=%d", b), func(c *core.Config) { c.VRFBanks = b })
		}
	case "ib":
		for _, e := range []int{2, 4, 8, 16, 32} {
			e := e
			add(fmt.Sprintf("ib=%dB", e*8), func(c *core.Config) { c.IBEntries = e })
		}
	case "waves":
		for _, wf := range []int{4, 10, 20, 40} {
			wf := wf
			add(fmt.Sprintf("waves=%d", wf), func(c *core.Config) { c.WFSlots = wf })
		}
	case "l1i":
		for _, kb := range []int{4, 8, 16, 32, 64} {
			kb := kb
			add(fmt.Sprintf("l1i=%dKB", kb), func(c *core.Config) { c.L1ISize = kb << 10 })
		}
	default:
		return nil, fmt.Errorf("unknown parameter %q (banks, ib, waves, l1i)", param)
	}
	return pts, nil
}

func main() {
	param := flag.String("param", "banks", "parameter to sweep: banks, ib, waves, l1i")
	name := flag.String("workload", "ArrayBW", "workload to sweep")
	scale := flag.Int("scale", 1, "input scale")
	flag.Parse()

	pts, err := sweepPoints(*param)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	inst, err := w.Prepare(*scale)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("sweep %s on %s (scale %d)\n\n", *param, *name, *scale)
	fmt.Printf("%-12s %12s %12s %10s %12s %12s %10s\n",
		"point", "HSAIL cyc", "GCN3 cyc", "H/G", "H conflicts", "G conflicts", "H flushes")
	for _, pt := range pts {
		sim, err := core.NewSimulator(pt.cfg)
		if err != nil {
			fatal(err)
		}
		var runs [2]*stats.Run
		for i, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			run, m, err := sim.Run(abs, *name, inst.Setup, core.RunOptions{})
			if err != nil {
				fatal(err)
			}
			if err := inst.Check(m); err != nil {
				fatal(fmt.Errorf("%s: %w", pt.label, err))
			}
			runs[i] = run
		}
		h, g := runs[0], runs[1]
		fmt.Printf("%-12s %12d %12d %10.2f %12d %12d %10d\n",
			pt.label, h.Cycles, g.Cycles,
			float64(h.Cycles)/float64(g.Cycles),
			h.VRFBankConflicts, g.VRFBankConflicts, h.IBFlushes)
	}
	fmt.Println("\nNote how the HSAIL/GCN3 gap itself moves with the design point —")
	fmt.Println("the paper's argument that no fixed fudge-factor can correct IL simulation.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ilsim-sweep:", err)
	os.Exit(1)
}
