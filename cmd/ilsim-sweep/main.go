// Command ilsim-sweep runs sensitivity studies over microarchitecture
// parameters — the experiments an architect would run next with this
// infrastructure, and a demonstration of how the IL-vs-ISA gap moves with
// the hardware design point. Points execute in parallel on the experiment
// engine's worker pool; results print in design-point order regardless of
// completion order.
//
// Long campaigns are fault-tolerant: per-job timeouts and cycle budgets
// kill runaways, transient failures retry with backoff, and -journal
// checkpoints every completed job so an interrupted sweep resumes with
// -resume instead of restarting.
//
// Sweeps also distribute: -serve turns the process into a coordinator that
// leases the same job set to workers (-connect here, or ilsim-workerd) and
// assembles their streamed results in design-point order, byte-identical
// to a local run. Leases carry bundles of jobs sized by each worker's
// observed throughput (-bundle tunes the per-lease work target), the
// endpoints optionally require TLS (-tls-cert/-tls-key) and a shared
// token (-token), and -watch prints a one-shot status snapshot — queue
// depth, per-worker throughput, and the WantWorkers autoscaling hint —
// from a running coordinator.
//
// Usage:
//
//	ilsim-sweep -param banks  -workload ArrayBW   # VRF bank count
//	ilsim-sweep -param ib     -workload CoMD      # instruction-buffer size
//	ilsim-sweep -param waves  -workload MD        # wavefront slots per CU
//	ilsim-sweep -param l1i    -workload LULESH    # I-cache size
//	ilsim-sweep -param cus    -workload SpMV      # machine scaling (CU count)
//	ilsim-sweep -param banks -j 8 -v              # 8 workers, progress on stderr
//	ilsim-sweep -param banks -journal s.jsonl     # checkpoint completed jobs
//	ilsim-sweep -param banks -journal s.jsonl -resume   # continue after a kill
//	ilsim-sweep -param banks -serve :9666         # coordinate remote workers
//	ilsim-sweep -param banks -serve :9666 -bundle 5s -token s3cret
//	ilsim-sweep -connect host:9666 -j 4           # execute leases from a coordinator
//	ilsim-sweep -watch host:9666                  # one-shot campaign status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
	"ilsim/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes the sweep, writing the result table to out
// and (with -v) progress lines plus any failure summary to errw. Split
// from main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-sweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	param := fs.String("param", "banks", "parameter to sweep: "+strings.Join(exp.SweepParams(), ", "))
	name := fs.String("workload", "ArrayBW", "workload to sweep")
	scale := fs.Int("scale", 1, "input scale")
	workers := fs.Int("j", 0, "max parallel jobs (0 = GOMAXPROCS)")
	points := fs.Int("points", 0, "limit the sweep to its first N points (0 = all)")
	failFast := fs.Bool("failfast", false, "abort the sweep on the first failed point (default: collect all)")
	verbose := fs.Bool("v", false, "print per-job progress to stderr")
	timeout := fs.Duration("timeout", 0, "per-job wall-clock timeout (0 = none)")
	maxCycles := fs.Uint64("maxcycles", 0, "per-job simulated-cycle budget (0 = unlimited)")
	retries := fs.Int("retries", 0, "retries per transiently failing job (exponential backoff)")
	journalPath := fs.String("journal", "", "checkpoint completed jobs to this JSONL file")
	resume := fs.Bool("resume", false, "reuse an existing -journal file, re-running only unfinished jobs")
	serve := fs.String("serve", "", "coordinate the sweep over HTTP on this address instead of running it locally")
	connect := fs.String("connect", "", "run as a worker executing leases from the coordinator at this address")
	watch := fs.String("watch", "", "print one status snapshot (autoscaling hints included) from the coordinator at this address, then exit")
	bundle := fs.Duration("bundle", dist.DefaultBundleTarget, "target work per lease: bundles are sized to this much estimated runtime (with -serve; 0 disables bundling). With -connect, caps this worker's bundles")
	token := fs.String("token", "", "shared auth token: required of workers with -serve, sent to the coordinator with -connect/-watch")
	tlsCert := fs.String("tls-cert", "", "with -serve: serve the coordinator endpoints over TLS using this PEM certificate")
	tlsKey := fs.String("tls-key", "", "with -serve: the PEM key matching -tls-cert")
	tlsCA := fs.String("tls-ca", "", "with -connect/-watch: trust this PEM certificate (e.g. a self-signed coordinator cert) and dial https")
	tlsInsecure := fs.Bool("tls-insecure", false, "with -connect/-watch: dial https without verifying the coordinator certificate (lab use only)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	debugPprof := fs.Bool("pprof", false, "with -serve: expose net/http/pprof handlers on the coordinator's status mux")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(errw, "ilsim-sweep:", perr)
		}
	}()
	if *resume && *journalPath == "" {
		return errors.New("-resume requires -journal")
	}
	modes := 0
	for _, m := range []string{*serve, *connect, *watch} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-serve, -connect and -watch are mutually exclusive")
	}
	clientOpts := dist.ClientOptions{AuthToken: *token, TLSCACert: *tlsCA, TLSSkipVerify: *tlsInsecure}

	if *watch != "" {
		// Status mode: one snapshot for operators and autoscaling scripts.
		st, err := dist.FetchStatus(context.Background(), *watch, clientOpts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, st.Table())
		return nil
	}

	if *connect != "" {
		// Worker mode: the job set lives on the coordinator; every local
		// defense (retries, watchdogs, panic isolation) still applies per
		// leased job.
		slots := *workers
		if slots <= 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		eng := exp.New(0)
		eng.Retry = exp.RetryPolicy{MaxRetries: *retries}
		w := &dist.Worker{Coordinator: *connect, Slots: slots, Engine: eng,
			BundleTarget: *bundle, Client: clientOpts}
		if *verbose {
			w.Logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
		}
		return w.Run(context.Background())
	}

	pts, err := exp.SweepPoints(*param)
	if err != nil {
		return err
	}
	if *points > 0 && *points < len(pts) {
		pts = pts[:*points]
	}
	jobs := exp.PairJobs(*name, *scale, pts, core.RunOptions{MaxCycles: *maxCycles})
	if *timeout > 0 {
		for i := range jobs {
			jobs[i].Timeout = *timeout
		}
	}

	var journal *exp.Journal
	if *journalPath != "" {
		j, err := exp.OpenJournal(*journalPath, jobs, *resume)
		if err != nil {
			return err
		}
		defer j.Close()
		if n := j.Resumable(); n > 0 {
			fmt.Fprintf(errw, "resuming: %d of %d jobs already journaled in %s\n", n, len(jobs), *journalPath)
		}
		journal = j
	}
	var onProgress func(exp.Progress)
	if *verbose {
		onProgress = func(p exp.Progress) { fmt.Fprintln(errw, p.Line()) }
	}

	var runner exp.Runner
	if *serve != "" {
		// Coordinator mode: the same job set, leased to workers instead of
		// a local pool; results assemble in the same submission order.
		if *failFast {
			return errors.New("-failfast applies to the local engine; with -serve, failures are collected")
		}
		bundleTarget := *bundle
		if bundleTarget <= 0 {
			bundleTarget = -1 // 0 on the flag means "no bundling", not "default"
		}
		c := dist.NewCoordinator(dist.Options{
			Addr:         *serve,
			BundleTarget: bundleTarget,
			AuthToken:    *token,
			TLSCert:      *tlsCert,
			TLSKey:       *tlsKey,
			Journal:      journal,
			OnProgress:   onProgress,
			Logf:         func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) },
			DebugPprof:   *debugPprof,
		})
		if err := c.Start(); err != nil {
			return err
		}
		defer c.Close()
		fmt.Fprintf(errw, "coordinating %d jobs on %s — attach workers with: ilsim-workerd -connect %s\n",
			len(jobs), c.Addr(), c.Addr())
		runner = c
	} else {
		eng := exp.New(*workers)
		if *failFast {
			eng.Mode = exp.FailFast
		}
		eng.Retry = exp.RetryPolicy{MaxRetries: *retries}
		eng.Journal = journal
		eng.OnProgress = onProgress
		runner = eng
	}
	results, metrics, err := runner.Run(jobs)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "sweep %s on %s (scale %d)\n\n", *param, *name, *scale)
	fmt.Fprintf(out, "%-12s %12s %12s %10s %12s %12s %10s\n",
		"point", "HSAIL cyc", "GCN3 cyc", "H/G", "H conflicts", "G conflicts", "H flushes")
	for i := 0; i < len(results); i += 2 {
		h, g := results[i], results[i+1]
		if h.Err != nil || g.Err != nil {
			err := h.Err
			if err == nil {
				err = g.Err
			}
			fmt.Fprintf(out, "%-12s error [%s]: %s\n", h.Job.Label, exp.Classify(err), err)
			continue
		}
		fmt.Fprintf(out, "%-12s %12d %12d %10.2f %12d %12d %10d\n",
			h.Job.Label, h.Run.Cycles, g.Run.Cycles,
			float64(h.Run.Cycles)/float64(g.Run.Cycles),
			h.Run.VRFBankConflicts, g.Run.VRFBankConflicts, h.Run.IBFlushes)
	}
	fmt.Fprintf(out, "\n%d jobs in %.2fs (%.1f jobs/s, speedup %.2fx over serial",
		metrics.Jobs, metrics.Elapsed.Seconds(), metrics.Throughput(), metrics.Speedup())
	if metrics.Resumed > 0 {
		fmt.Fprintf(out, "; %d resumed from journal", metrics.Resumed)
	}
	if metrics.Retries > 0 {
		fmt.Fprintf(out, "; %d retries", metrics.Retries)
	}
	fmt.Fprintln(out, ")")
	fmt.Fprintln(out, "\nNote how the HSAIL/GCN3 gap itself moves with the design point —")
	fmt.Fprintln(out, "the paper's argument that no fixed fudge-factor can correct IL simulation.")
	if failed := exp.WriteFailureSummary(errw, results); failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, len(results))
	}
	return nil
}
