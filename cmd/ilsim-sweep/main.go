// Command ilsim-sweep runs sensitivity studies over microarchitecture
// parameters — the experiments an architect would run next with this
// infrastructure, and a demonstration of how the IL-vs-ISA gap moves with
// the hardware design point. Points execute in parallel on the experiment
// engine's worker pool; results print in design-point order regardless of
// completion order.
//
// Long campaigns are fault-tolerant: per-job timeouts and cycle budgets
// kill runaways, transient failures retry with backoff, and -journal
// checkpoints every completed job so an interrupted sweep resumes with
// -resume instead of restarting.
//
// Sweeps also distribute: -serve turns the process into a coordinator that
// leases the same job set to workers (-connect here, or ilsim-workerd) and
// assembles their streamed results in design-point order, byte-identical
// to a local run. Leases carry bundles of jobs sized by each worker's
// observed throughput (-bundle tunes the per-lease work target), the
// endpoints optionally require TLS (-tls-cert/-tls-key), client
// certificates (-tls-client-ca, mutual TLS) and a shared token (-token),
// and -watch prints a status snapshot — queue depth, per-worker
// throughput, health/quarantine state, fleet labels and the WantWorkers
// autoscaling hint — from a running coordinator (one-shot, or redrawn
// continuously with -interval, where a sparkline tracks recent fleet
// throughput). -allow-cn pins the client-certificate CommonNames a
// mutual-TLS coordinator admits; anything else is refused with 403 and
// counted in the status. -fleet N self-supervises a local in-process
// worker fleet that grows and shrinks with the coordinator's autoscaling
// hint — the one-process taste of what ilsim-fleetd does with real
// worker processes.
//
// Untrusted fleets replicate: -replicas K leases every job to K distinct
// workers and accepts only the majority result (votes are stats.Run
// fingerprints); dissenting workers are scored and quarantined. Journals
// grow one line per result plus vote audit records; -journal-compact
// rewrites one in place keeping only the latest entry per job.
//
// Usage:
//
//	ilsim-sweep -param banks  -workload ArrayBW   # VRF bank count
//	ilsim-sweep -param ib     -workload CoMD      # instruction-buffer size
//	ilsim-sweep -param waves  -workload MD        # wavefront slots per CU
//	ilsim-sweep -param l1i    -workload LULESH    # I-cache size
//	ilsim-sweep -param cus    -workload SpMV      # machine scaling (CU count)
//	ilsim-sweep -param banks -j 8 -v              # 8 workers, progress on stderr
//	ilsim-sweep -param banks -journal s.jsonl     # checkpoint completed jobs
//	ilsim-sweep -param banks -journal s.jsonl -resume   # continue after a kill
//	ilsim-sweep -param banks -serve :9666         # coordinate remote workers
//	ilsim-sweep -param banks -serve :9666 -bundle 5s -token s3cret
//	ilsim-sweep -param banks -serve :9666 -replicas 3   # quorum over untrusted workers
//	ilsim-sweep -param banks -serve :9666 -fleet 4      # self-supervised local fleet
//	ilsim-sweep -connect host:9666 -j 4           # execute leases from a coordinator
//	ilsim-sweep -watch host:9666                  # one-shot campaign status
//	ilsim-sweep -watch host:9666 -interval 2s     # live status board
//	ilsim-sweep -journal s.jsonl -journal-compact # drop superseded journal entries
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
	"ilsim/internal/fleet"
	"ilsim/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes the sweep, writing the result table to out
// and (with -v) progress lines plus any failure summary to errw. Split
// from main for the smoke tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-sweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	param := fs.String("param", "banks", "parameter to sweep: "+strings.Join(exp.SweepParams(), ", "))
	name := fs.String("workload", "ArrayBW", "workload to sweep")
	scale := fs.Int("scale", 1, "input scale")
	workers := fs.Int("j", 0, "max parallel jobs (0 = GOMAXPROCS)")
	points := fs.Int("points", 0, "limit the sweep to its first N points (0 = all)")
	failFast := fs.Bool("failfast", false, "abort the sweep on the first failed point (default: collect all)")
	verbose := fs.Bool("v", false, "print per-job progress to stderr")
	timeout := fs.Duration("timeout", 0, "per-job wall-clock timeout (0 = none)")
	maxCycles := fs.Uint64("maxcycles", 0, "per-job simulated-cycle budget (0 = unlimited)")
	retries := fs.Int("retries", 0, "retries per transiently failing job (exponential backoff)")
	journalPath := fs.String("journal", "", "checkpoint completed jobs to this JSONL file")
	resume := fs.Bool("resume", false, "reuse an existing -journal file, re-running only unfinished jobs")
	serve := fs.String("serve", "", "coordinate the sweep over HTTP on this address instead of running it locally")
	connect := fs.String("connect", "", "run as a worker executing leases from the coordinator at this address")
	watch := fs.String("watch", "", "print a status snapshot (autoscaling and health included) from the coordinator at this address, then exit")
	interval := fs.Duration("interval", 0, "with -watch: redraw the status continuously at this period instead of one snapshot")
	replicas := fs.Int("replicas", 1, "with -serve: lease every job to this many distinct workers and accept the majority result (quorum over untrusted workers)")
	fleetN := fs.Int("fleet", 0, "with -serve: self-supervise an in-process fleet of up to N single-slot workers that tracks the autoscaling hint (0 = off)")
	allowCN := fs.String("allow-cn", "", "with -serve: comma-separated client-certificate CommonNames admitted past mutual TLS (needs -tls-client-ca); others get 403")
	scaleHorizon := fs.Duration("scale-horizon", 0, "with -serve: drain window the WantWorkers autoscaling hint aims for (0 = default 1m)")
	compact := fs.Bool("journal-compact", false, "rewrite -journal in place keeping only the latest entry per job (drops superseded entries and vote records), then exit")
	bundle := fs.Duration("bundle", dist.DefaultBundleTarget, "target work per lease: bundles are sized to this much estimated runtime (with -serve; 0 disables bundling). With -connect, caps this worker's bundles")
	token := fs.String("token", "", "shared auth token: required of workers with -serve, sent to the coordinator with -connect/-watch")
	tlsCert := fs.String("tls-cert", "", "with -serve: serve the coordinator endpoints over TLS using this PEM certificate. With -connect: present it as this worker's client certificate (mutual TLS)")
	tlsKey := fs.String("tls-key", "", "the PEM key matching -tls-cert")
	tlsClientCA := fs.String("tls-client-ca", "", "with -serve: require client certificates signed by this PEM CA on every connection (mutual TLS; needs -tls-cert/-tls-key)")
	tlsCA := fs.String("tls-ca", "", "with -connect/-watch: trust this PEM certificate (e.g. a self-signed coordinator cert) and dial https")
	tlsInsecure := fs.Bool("tls-insecure", false, "with -connect/-watch: dial https without verifying the coordinator certificate (lab use only)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	blockProfile := fs.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	debugPprof := fs.Bool("pprof", false, "with -serve: expose net/http/pprof handlers on the coordinator's status mux")
	cuPar := fs.Int("cu-par", 0, "goroutines per simulation for CU ticking (0 = auto: cores/-j, capped at NumCUs; 1 = serial; results identical)")
	memPar := fs.Int("mem-par", 0, "goroutines per simulation for the memory drain's bank waves (0 = auto: cores/-j, capped at the drain width; 1 = serial; results identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.StartOptions(prof.Options{
		CPUPath: *cpuProfile, MemPath: *memProfile,
		BlockPath: *blockProfile, MutexPath: *mutexProfile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(errw, "ilsim-sweep:", perr)
		}
	}()
	if *resume && *journalPath == "" {
		return errors.New("-resume requires -journal")
	}
	modes := 0
	for _, m := range []string{*serve, *connect, *watch} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-serve, -connect and -watch are mutually exclusive")
	}
	if *compact {
		if *journalPath == "" {
			return errors.New("-journal-compact requires -journal")
		}
		if modes > 0 {
			return errors.New("-journal-compact runs standalone (no -serve/-connect/-watch)")
		}
		kept, dropped, err := exp.CompactJournal(*journalPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "compacted %s: kept %d entries, dropped %d\n", *journalPath, kept, dropped)
		return nil
	}
	clientOpts := dist.ClientOptions{AuthToken: *token, TLSCACert: *tlsCA, TLSSkipVerify: *tlsInsecure}
	if *connect != "" || *watch != "" {
		// On the client side of the wire, -tls-cert/-tls-key are this
		// process's client certificate for a mutual-TLS coordinator.
		clientOpts.TLSCert, clientOpts.TLSKey = *tlsCert, *tlsKey
	}

	if *watch != "" {
		// Status mode: a snapshot for operators and autoscaling scripts —
		// one-shot by default, a live board with -interval.
		return watchStatus(*watch, clientOpts, *interval, out)
	}

	if *connect != "" {
		// Worker mode: the job set lives on the coordinator; every local
		// defense (retries, watchdogs, panic isolation) still applies per
		// leased job.
		slots := *workers
		if slots <= 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		eng := exp.New(0)
		eng.Retry = exp.RetryPolicy{MaxRetries: *retries}
		eng.CUParallelism = *cuPar
		eng.MemParallelism = *memPar
		if msg := core.OversubscriptionWarning(slots, *cuPar, *memPar); msg != "" {
			fmt.Fprintln(errw, "ilsim-sweep:", msg)
		}
		w := &dist.Worker{Coordinator: *connect, Slots: slots, Engine: eng,
			BundleTarget: *bundle, Client: clientOpts}
		if *verbose {
			w.Logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
		}
		return w.Run(context.Background())
	}

	pts, err := exp.SweepPoints(*param)
	if err != nil {
		return err
	}
	if *points > 0 && *points < len(pts) {
		pts = pts[:*points]
	}
	jobs := exp.PairJobs(*name, *scale, pts, core.RunOptions{MaxCycles: *maxCycles})
	if *timeout > 0 {
		for i := range jobs {
			jobs[i].Timeout = *timeout
		}
	}

	var journal *exp.Journal
	if *journalPath != "" {
		j, err := exp.OpenJournal(*journalPath, jobs, *resume)
		if err != nil {
			return err
		}
		defer j.Close()
		if n := j.Resumable(); n > 0 {
			fmt.Fprintf(errw, "resuming: %d of %d jobs already journaled in %s\n", n, len(jobs), *journalPath)
		}
		journal = j
	}
	var onProgress func(exp.Progress)
	if *verbose {
		onProgress = func(p exp.Progress) { fmt.Fprintln(errw, p.Line()) }
	}

	var runner exp.Runner
	if *serve != "" {
		// Coordinator mode: the same job set, leased to workers instead of
		// a local pool; results assemble in the same submission order.
		if *failFast {
			return errors.New("-failfast applies to the local engine; with -serve, failures are collected")
		}
		bundleTarget := *bundle
		if bundleTarget <= 0 {
			bundleTarget = -1 // 0 on the flag means "no bundling", not "default"
		}
		var allowedCNs []string
		if *allowCN != "" {
			for _, cn := range strings.Split(*allowCN, ",") {
				if cn = strings.TrimSpace(cn); cn != "" {
					allowedCNs = append(allowedCNs, cn)
				}
			}
		}
		c := dist.NewCoordinator(dist.Options{
			Addr:         *serve,
			BundleTarget: bundleTarget,
			ScaleHorizon: *scaleHorizon,
			Replicas:     *replicas,
			AuthToken:    *token,
			TLSCert:      *tlsCert,
			TLSKey:       *tlsKey,
			TLSClientCA:  *tlsClientCA,
			AllowedCNs:   allowedCNs,
			Journal:      journal,
			OnProgress:   onProgress,
			Logf:         func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) },
			DebugPprof:   *debugPprof,
		})
		if err := c.Start(); err != nil {
			return err
		}
		defer c.Close()
		fmt.Fprintf(errw, "coordinating %d jobs on %s — attach workers with: ilsim-workerd -connect %s\n",
			len(jobs), c.Addr(), c.Addr())
		if *fleetN > 0 {
			wait, err := startLocalFleet(c.Addr(), *fleetN, *retries, *token, *tlsCert != "", *tlsClientCA != "", *verbose, errw)
			if err != nil {
				return err
			}
			defer wait()
		}
		runner = c
	} else {
		if *fleetN > 0 {
			return errors.New("-fleet requires -serve (it supervises workers for a coordinator)")
		}
		eng := exp.New(*workers)
		if *failFast {
			eng.Mode = exp.FailFast
		}
		eng.Retry = exp.RetryPolicy{MaxRetries: *retries}
		eng.Journal = journal
		eng.OnProgress = onProgress
		eng.CUParallelism = *cuPar
		eng.MemParallelism = *memPar
		if msg := core.OversubscriptionWarning(*workers, *cuPar, *memPar); msg != "" {
			fmt.Fprintln(errw, "ilsim-sweep:", msg)
		}
		runner = eng
	}
	results, metrics, err := runner.Run(jobs)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "sweep %s on %s (scale %d)\n\n", *param, *name, *scale)
	fmt.Fprintf(out, "%-12s %12s %12s %10s %12s %12s %10s\n",
		"point", "HSAIL cyc", "GCN3 cyc", "H/G", "H conflicts", "G conflicts", "H flushes")
	for i := 0; i < len(results); i += 2 {
		h, g := results[i], results[i+1]
		if h.Err != nil || g.Err != nil {
			err := h.Err
			if err == nil {
				err = g.Err
			}
			fmt.Fprintf(out, "%-12s error [%s]: %s\n", h.Job.Label, exp.Classify(err), err)
			continue
		}
		fmt.Fprintf(out, "%-12s %12d %12d %10.2f %12d %12d %10d\n",
			h.Job.Label, h.Run.Cycles, g.Run.Cycles,
			float64(h.Run.Cycles)/float64(g.Run.Cycles),
			h.Run.VRFBankConflicts, g.Run.VRFBankConflicts, h.Run.IBFlushes)
	}
	fmt.Fprintf(out, "\n%d jobs in %.2fs (%.1f jobs/s, speedup %.2fx over serial",
		metrics.Jobs, metrics.Elapsed.Seconds(), metrics.Throughput(), metrics.Speedup())
	if metrics.Resumed > 0 {
		fmt.Fprintf(out, "; %d resumed from journal", metrics.Resumed)
	}
	if metrics.Retries > 0 {
		fmt.Fprintf(out, "; %d retries", metrics.Retries)
	}
	fmt.Fprintln(out, ")")
	fmt.Fprintln(out, "\nNote how the HSAIL/GCN3 gap itself moves with the design point —")
	fmt.Fprintln(out, "the paper's argument that no fixed fudge-factor can correct IL simulation.")
	if failed := exp.WriteFailureSummary(errw, results); failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, len(results))
	}
	return nil
}

// startLocalFleet runs a fleet.Supervisor with in-process workers
// against the coordinator at addr — the -fleet N convenience. The
// returned wait function blocks until the supervisor winds down after
// the campaign (bounded; stragglers are killed), so the process never
// exits with workers mid-flight.
func startLocalFleet(addr string, n, retries int, token string, tlsServe, mutualTLS, verbose bool, errw io.Writer) (wait func(), err error) {
	if mutualTLS {
		// Embedded workers have no client certificates to present; a
		// mutual-TLS coordinator would refuse every one of them.
		return nil, errors.New("-fleet cannot serve a mutual-TLS coordinator (-tls-client-ca); run ilsim-fleetd with worker certificates instead")
	}
	client := dist.ClientOptions{AuthToken: token}
	if tlsServe {
		// Dialing our own in-process listener: encrypted, and trust is
		// moot — it is this very process.
		client.TLSSkipVerify = true
	}
	var logf func(format string, args ...any)
	if verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(errw, format+"\n", a...) }
	}
	sup := &fleet.Supervisor{
		Coordinator: addr,
		Client:      client,
		Fleet:       "local",
		Launcher: &fleet.LocalLauncher{
			Client: client,
			Slots:  1,
			NewEngine: func() *exp.Engine {
				eng := exp.New(1)
				eng.Retry = exp.RetryPolicy{MaxRetries: retries}
				return eng
			},
			Logf: logf,
		},
		// Snappier than the daemon's defaults: a self-supervised local
		// fleet answers to a human watching one terminal.
		Policy:     fleet.Policy{Min: 1, Max: n, UpCooldown: time.Second, DownCooldown: 5 * time.Second},
		Poll:       500 * time.Millisecond,
		DrainGrace: 10 * time.Second,
		Logf:       logf,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()
	fmt.Fprintf(errw, "fleet: self-supervising up to %d local workers\n", n)
	wait = func() {
		defer cancel()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintf(errw, "fleet: %v\n", err)
			}
		case <-time.After(30 * time.Second):
			cancel()
			<-done
		}
	}
	return wait, nil
}

// watchStatus renders coordinator status to out: one snapshot when
// interval is zero, otherwise a continuously redrawn board — clearing
// the screen between frames when out is a TTY, plain appended frames
// otherwise (pipes, logs). The retry/give-up policy is the shared
// dist.StatusTracker: startup noise is tolerated, rejected credentials
// abort immediately, and a coordinator that stays gone after first
// contact ends the watch. Each live frame appends a sparkline of the
// fleet's recent throughput from a client-side ring of samples.
func watchStatus(addr string, co dist.ClientOptions, interval time.Duration, out io.Writer) error {
	ctx := context.Background()
	if interval <= 0 {
		st, err := dist.FetchStatus(ctx, addr, co)
		if err != nil {
			return err
		}
		fmt.Fprint(out, st.Table())
		return nil
	}
	clearScreen := isTTY(out)
	var tracker dist.StatusTracker
	spark := &sparkline{}
	for {
		st, err := dist.FetchStatus(ctx, addr, co)
		if terr := tracker.Observe(err); terr != nil {
			return fmt.Errorf("watch %s: %w", addr, terr)
		}
		if err != nil {
			fmt.Fprintf(out, "watch %s: %v\n", addr, err)
		} else {
			spark.observe(st, time.Now())
			if clearScreen {
				fmt.Fprint(out, "\x1b[H\x1b[2J")
			}
			fmt.Fprint(out, st.Table())
			if line := spark.line(); line != "" {
				fmt.Fprintln(out, line)
			}
			if st.Finished {
				return nil
			}
		}
		time.Sleep(interval)
	}
}

// sparkRunes are the eight-level bar glyphs, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparklineWindow is how many recent samples the throughput sparkline
// keeps — one screen-width's worth of history at typical intervals.
const sparklineWindow = 32

// sparkline folds successive Status samples into an observed-throughput
// history: each pair of samples yields (done delta)/(time delta), the
// fleet's actual completion rate over that interval — measured, not the
// per-worker EWMA estimates the coordinator publishes.
type sparkline struct {
	rates    []float64
	lastDone int
	lastAt   time.Time
	primed   bool
}

// observe folds one status sample in.
func (s *sparkline) observe(st dist.Status, now time.Time) {
	if s.primed {
		if dt := now.Sub(s.lastAt).Seconds(); dt > 0 {
			rate := float64(st.Done-s.lastDone) / dt
			if rate < 0 {
				rate = 0
			}
			s.rates = append(s.rates, rate)
			if len(s.rates) > sparklineWindow {
				s.rates = s.rates[len(s.rates)-sparklineWindow:]
			}
		}
	}
	s.primed, s.lastDone, s.lastAt = true, st.Done, now
}

// line renders the history, or "" before two samples exist.
func (s *sparkline) line() string {
	if len(s.rates) == 0 {
		return ""
	}
	peak := 0.0
	for _, r := range s.rates {
		if r > peak {
			peak = r
		}
	}
	var b strings.Builder
	b.WriteString("dist: throughput ")
	for _, r := range s.rates {
		lvl := 0
		if peak > 0 {
			if lvl = int(r / peak * float64(len(sparkRunes)-1)); lvl >= len(sparkRunes) {
				lvl = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[lvl])
	}
	fmt.Fprintf(&b, " %.2f jobs/s (peak %.2f)", s.rates[len(s.rates)-1], peak)
	return b.String()
}

// isTTY reports whether w is a character device (an interactive
// terminal), the signal that in-place ANSI redraws are appropriate.
func isTTY(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}
