// Command ilsim-sweep runs sensitivity studies over microarchitecture
// parameters — the experiments an architect would run next with this
// infrastructure, and a demonstration of how the IL-vs-ISA gap moves with
// the hardware design point. Points execute in parallel on the experiment
// engine's worker pool; results print in design-point order regardless of
// completion order.
//
// Usage:
//
//	ilsim-sweep -param banks  -workload ArrayBW   # VRF bank count
//	ilsim-sweep -param ib     -workload CoMD      # instruction-buffer size
//	ilsim-sweep -param waves  -workload MD        # wavefront slots per CU
//	ilsim-sweep -param l1i    -workload LULESH    # I-cache size
//	ilsim-sweep -param cus    -workload SpMV      # machine scaling (CU count)
//	ilsim-sweep -param banks -j 8 -v              # 8 workers, progress on stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ilsim/internal/core"
	"ilsim/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes the sweep, writing the result table to out
// and (with -v) progress lines to errw. Split from main for the smoke
// tests.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ilsim-sweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	param := fs.String("param", "banks", "parameter to sweep: "+strings.Join(exp.SweepParams(), ", "))
	name := fs.String("workload", "ArrayBW", "workload to sweep")
	scale := fs.Int("scale", 1, "input scale")
	workers := fs.Int("j", 0, "max parallel jobs (0 = GOMAXPROCS)")
	points := fs.Int("points", 0, "limit the sweep to its first N points (0 = all)")
	failFast := fs.Bool("failfast", false, "abort the sweep on the first failed point (default: collect all)")
	verbose := fs.Bool("v", false, "print per-job progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pts, err := exp.SweepPoints(*param)
	if err != nil {
		return err
	}
	if *points > 0 && *points < len(pts) {
		pts = pts[:*points]
	}
	jobs := exp.PairJobs(*name, *scale, pts, core.RunOptions{})

	eng := exp.New(*workers)
	if *failFast {
		eng.Mode = exp.FailFast
	}
	if *verbose {
		eng.OnProgress = func(p exp.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "FAIL: " + p.Err.Error()
			}
			fmt.Fprintf(errw, "[%d/%d] %-28s %8.2fs  %s\n",
				p.Done, p.Total, p.Job, p.Wall.Seconds(), status)
		}
	}
	results, metrics, err := eng.Run(jobs)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "sweep %s on %s (scale %d)\n\n", *param, *name, *scale)
	fmt.Fprintf(out, "%-12s %12s %12s %10s %12s %12s %10s\n",
		"point", "HSAIL cyc", "GCN3 cyc", "H/G", "H conflicts", "G conflicts", "H flushes")
	failed := 0
	for i := 0; i < len(results); i += 2 {
		h, g := results[i], results[i+1]
		if h.Err != nil || g.Err != nil {
			failed++
			err := h.Err
			if err == nil {
				err = g.Err
			}
			fmt.Fprintf(out, "%-12s %s\n", h.Job.Label, "error: "+err.Error())
			continue
		}
		fmt.Fprintf(out, "%-12s %12d %12d %10.2f %12d %12d %10d\n",
			h.Job.Label, h.Run.Cycles, g.Run.Cycles,
			float64(h.Run.Cycles)/float64(g.Run.Cycles),
			h.Run.VRFBankConflicts, g.Run.VRFBankConflicts, h.Run.IBFlushes)
	}
	fmt.Fprintf(out, "\n%d jobs in %.2fs (%.1f jobs/s, speedup %.2fx over serial)\n",
		metrics.Jobs, metrics.Elapsed.Seconds(), metrics.Throughput(), metrics.Speedup())
	fmt.Fprintln(out, "\nNote how the HSAIL/GCN3 gap itself moves with the design point —")
	fmt.Fprintln(out, "the paper's argument that no fixed fudge-factor can correct IL simulation.")
	if failed > 0 {
		return fmt.Errorf("%d of %d points failed", failed, len(results)/2)
	}
	return nil
}
