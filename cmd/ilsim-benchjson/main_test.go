package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ilsim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSimulatorThroughput/HSAIL         	      10	  18712627 ns/op	   1082492 siminsts/s	  711874 B/op	    4562 allocs/op
BenchmarkSimulatorThroughput/GCN3          	      10	  28545646 ns/op	   1682267 siminsts/s	  719258 B/op	    4732 allocs/op
PASS
ok  	ilsim	0.506s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "ilsim" {
		t.Fatalf("metadata: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(rep.Benchmarks))
	}
	h := rep.Benchmarks[0]
	if h.Name != "BenchmarkSimulatorThroughput/HSAIL" || h.Iterations != 10 {
		t.Fatalf("first benchmark: %+v", h)
	}
	if h.Metrics["siminsts/s"] != 1082492 || h.Metrics["allocs/op"] != 4562 {
		t.Fatalf("metrics: %v", h.Metrics)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out}, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 || rep.CPU == "" {
		t.Fatalf("round-trip: %+v", rep)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), os.Stdout); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}
