// Command ilsim-benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark results can be archived as
// artifacts and compared across commits without re-parsing free text.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSimulatorThroughput -benchmem . | ilsim-benchjson -out BENCH.json
//	ilsim-benchjson < bench.txt          # JSON to stdout
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line (ns/op, B/op, allocs/op, and any b.ReportMetric custom unit).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole parsed run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ilsim-benchjson:", err)
		os.Exit(1)
	}
}

// run parses `go test -bench` text from in and writes JSON; split from main
// for the smoke tests.
func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ilsim-benchjson", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	outPath := fs.String("out", "", "write JSON to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, data, 0o644)
	}
	_, err = out.Write(data)
	return err
}

// parse consumes go-test benchmark output: metadata headers ("goos: linux"),
// benchmark lines ("BenchmarkX-8  10  123 ns/op  456 custom/unit"), and
// anything else (PASS, ok, test logs) ignored.
func parse(in io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

func parseBenchLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is (value, unit) pairs.
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd value/unit fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value %q in %q: %w", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
