module ilsim

go 1.22
