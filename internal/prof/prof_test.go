package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
