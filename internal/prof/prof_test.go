package prof

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartOptionsBlockMutex(t *testing.T) {
	dir := t.TempDir()
	block := filepath.Join(dir, "block.out")
	mutex := filepath.Join(dir, "mutex.out")
	stop, err := StartOptions(Options{BlockPath: block, MutexPath: mutex})
	if err != nil {
		t.Fatal(err)
	}
	// Generate one blocking event (channel wait) and one mutex contention
	// so the profiles are non-trivial.
	var mu sync.Mutex
	mu.Lock()
	ch := make(chan struct{})
	go func() {
		mu.Lock()
		mu.Unlock() //nolint:staticcheck // contention fixture
		close(ch)
	}()
	time.Sleep(time.Millisecond)
	mu.Unlock()
	<-ch
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{block, mutex} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// The rates must be restored so profiling cost ends with stop.
	if r := runtime.SetMutexProfileFraction(-1); r != 0 {
		t.Errorf("mutex profile fraction left at %d after stop", r)
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
