// Package prof wires Go's runtime profilers into the CLIs: one call starts
// CPU profiling and registers a heap snapshot, one deferred call flushes
// both. Keeping it here (instead of per-main flag plumbing) gives every
// binary the same -cpuprofile/-memprofile semantics as `go test`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling. cpuPath, when non-empty, receives a CPU profile
// from now until stop is called; memPath, when non-empty, receives a heap
// profile taken at stop time (after a GC, so it reflects live memory).
// The returned stop function must be called exactly once; it is never nil.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
