// Package prof wires Go's runtime profilers into the CLIs: one call starts
// the requested profilers, one deferred call flushes them. Keeping it here
// (instead of per-main flag plumbing) gives every binary the same
// -cpuprofile/-memprofile/-blockprofile/-mutexprofile semantics as `go
// test`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options names the profile outputs; empty paths disable the corresponding
// profiler.
type Options struct {
	// CPUPath receives a CPU profile from Start until stop.
	CPUPath string
	// MemPath receives a heap profile taken at stop time (after a GC, so
	// it reflects live memory).
	MemPath string
	// BlockPath receives a blocking profile — time goroutines spend
	// parked on channels, locks and WaitGroups. This is the one that
	// shows where the parallel timing core's epoch barrier waits.
	BlockPath string
	// MutexPath receives a mutex-contention profile (who made others
	// wait), e.g. contention on a forked memory view's shared page table.
	MutexPath string
	// BlockRate is the runtime block-profile sampling rate in
	// nanoseconds-per-sample (0 = 1, every event); only used when
	// BlockPath is set.
	BlockRate int
	// MutexFraction samples 1/n mutex contention events (0 = 1, every
	// event); only used when MutexPath is set.
	MutexFraction int
}

// Start begins CPU and heap profiling. The returned stop function must be
// called exactly once; it is never nil.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	return StartOptions(Options{CPUPath: cpuPath, MemPath: memPath})
}

// StartOptions begins every profiler opts requests. The returned stop
// function flushes them all and must be called exactly once; it is never
// nil even on error.
func StartOptions(opts Options) (stop func() error, err error) {
	var cpuFile *os.File
	if opts.CPUPath != "" {
		cpuFile, err = os.Create(opts.CPUPath)
		if err != nil {
			return noop, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return noop, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	if opts.BlockPath != "" {
		rate := opts.BlockRate
		if rate <= 0 {
			rate = 1
		}
		runtime.SetBlockProfileRate(rate)
	}
	if opts.MutexPath != "" {
		frac := opts.MutexFraction
		if frac <= 0 {
			frac = 1
		}
		runtime.SetMutexProfileFraction(frac)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if opts.MemPath != "" {
			f, err := os.Create(opts.MemPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: close heap profile: %w", err)
			}
		}
		if opts.BlockPath != "" {
			runtime.SetBlockProfileRate(0)
			if err := writeLookup("block", opts.BlockPath); err != nil {
				return err
			}
		}
		if opts.MutexPath != "" {
			runtime.SetMutexProfileFraction(0)
			if err := writeLookup("mutex", opts.MutexPath); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func noop() error { return nil }

// writeLookup flushes one of the runtime's named profiles to path.
func writeLookup(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("prof: runtime profile %q unavailable", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("prof: write %s profile: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("prof: close %s profile: %w", name, err)
	}
	return nil
}
