package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ilsim/internal/isa"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, data []byte) bool {
		addr %= 1 << 40
		m.Write(addr, data)
		got := make([]byte, len(data))
		m.Read(addr, got)
		return bytes.Equal(data, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(PageSize - 3) // straddles a page boundary
	m.WriteU64(addr, 0x1122334455667788)
	if got := m.ReadU64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page u64: got %#x", got)
	}
	m.WriteU32(addr, 0xDEADBEEF)
	if got := m.ReadU32(addr); got != 0xDEADBEEF {
		t.Fatalf("cross-page u32: got %#x", got)
	}
}

func TestMemoryZeroInitialized(t *testing.T) {
	m := NewMemory()
	if m.ReadU64(0x123456789) != 0 {
		t.Fatal("fresh memory not zero")
	}
}

func TestAtomicAdd(t *testing.T) {
	m := NewMemory()
	m.WriteU32(64, 10)
	if old := m.AtomicAddU32(64, 5); old != 10 {
		t.Fatalf("AtomicAddU32 returned %d, want 10", old)
	}
	if got := m.ReadU32(64); got != 15 {
		t.Fatalf("after AtomicAddU32: %d, want 15", got)
	}
}

func TestFootprintTracking(t *testing.T) {
	m := NewMemory()
	m.WriteU32(0, 1)    // line 0
	m.WriteU32(63, 1)   // still line 0 (touches 63..66: lines 0 and 1)
	m.WriteU32(4096, 1) // new line
	if got := m.FootprintBytes(); got != 3*LineSize {
		t.Fatalf("footprint %d, want %d", got, 3*LineSize)
	}
	m.SetFootprintTracking(false)
	m.WriteU32(1<<20, 1)
	m.SetFootprintTracking(true)
	if got := m.FootprintBytes(); got != 3*LineSize {
		t.Fatalf("untracked write counted: %d", got)
	}
	m.ExcludeFromFootprint(1<<21, 1<<22)
	m.WriteU32(1<<21, 1)
	if got := m.FootprintBytes(); got != 3*LineSize {
		t.Fatalf("excluded write counted: %d", got)
	}
	m.ResetFootprint()
	if m.FootprintBytes() != 0 {
		t.Fatal("reset did not clear footprint")
	}
}

func TestAllocatorAlignmentAndExhaustion(t *testing.T) {
	a := NewAllocator(100, 200)
	p1, err := a.Alloc(10, 64)
	if err != nil || p1%64 != 0 || p1 < 100 {
		t.Fatalf("p1=%d err=%v", p1, err)
	}
	p2, err := a.Alloc(10, 64)
	if err != nil || p2 <= p1 {
		t.Fatalf("p2=%d err=%v", p2, err)
	}
	if _, err := a.Alloc(1000, 1); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestCacheHitMissBasics(t *testing.T) {
	dram := NewDRAM(4, 64, 100, 4)
	c := NewCache("L1", 1024, 64, 2, 4, false, dram, 1)
	// First access misses, second hits.
	d1 := c.Access(0x1000, false, 0)
	if c.Stats().Misses != 1 || d1 <= 4 {
		t.Fatalf("first access: misses=%d done=%d", c.Stats().Misses, d1)
	}
	d2 := c.Access(0x1000, false, d1)
	if c.Stats().Hits != 1 || d2 != d1+4+1 && d2 != d1+4 {
		t.Fatalf("second access: hits=%d done=%d (start %d)", c.Stats().Hits, d2, d1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct construction: 2 ways, 1 set (128B cache, 64B lines).
	c := NewCache("tiny", 128, 64, 2, 1, false, nil, 1)
	c.Access(0*64, false, 0)   // A
	c.Access(1*64*2, false, 1) // B maps to same set? sets=1, so yes
	c.Access(0*64, false, 2)   // A again: hit
	if c.Stats().Hits != 1 {
		t.Fatalf("expected A to still be resident, hits=%d", c.Stats().Hits)
	}
	c.Access(4*64, false, 3) // C evicts LRU (B)
	c.Access(0*64, false, 4) // A still resident
	if c.Stats().Hits != 2 {
		t.Fatalf("LRU evicted the wrong line, hits=%d", c.Stats().Hits)
	}
	c.Access(1*64*2, false, 5) // B was evicted: miss
	if c.Stats().Misses != 4 {
		t.Fatalf("misses=%d, want 4", c.Stats().Misses)
	}
}

func TestCacheFullyAssociative(t *testing.T) {
	c := NewCache("fa", 16<<10, 64, 0, 16, false, nil, 1)
	// 256 lines fit exactly; touching 256 distinct lines then re-touching
	// them all must be all hits.
	for i := 0; i < 256; i++ {
		c.Access(uint64(i*64), false, int64(i))
	}
	for i := 0; i < 256; i++ {
		c.Access(uint64(i*64), false, int64(256+i))
	}
	if c.Stats().Hits != 256 || c.Stats().Misses != 256 {
		t.Fatalf("hits=%d misses=%d, want 256/256", c.Stats().Hits, c.Stats().Misses)
	}
}

func TestWriteThroughVsWriteBack(t *testing.T) {
	dram := NewDRAM(1, 64, 10, 1)
	wt := NewCache("wt", 1024, 64, 2, 1, false, dram, 1)
	wt.Access(0, true, 0) // write miss, write-through no-allocate
	wt.Access(0, false, 1)
	if wt.Stats().Hits != 0 {
		t.Fatal("write-through no-allocate must not fill on write miss")
	}
	dram2 := NewDRAM(1, 64, 10, 1)
	wb := NewCache("wb", 1024, 64, 2, 1, true, dram2, 1)
	wb.Access(0, true, 0) // write miss, allocate
	wb.Access(0, false, 20)
	if wb.Stats().Hits != 1 {
		t.Fatal("write-back must allocate on write miss")
	}
}

func TestDRAMChannelContention(t *testing.T) {
	d := NewDRAM(2, 64, 100, 10)
	// Two requests to the same channel queue; different channels do not.
	a := d.Access(0, false, 0)   // channel 0
	b := d.Access(128, false, 0) // channel 0 again (line 2 % 2 == 0)
	c := d.Access(64, false, 0)  // channel 1
	if a != 100 || b != 110 || c != 100 {
		t.Fatalf("contention wrong: a=%d b=%d c=%d", a, b, c)
	}
}

func TestCoalesceAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		var addrs [isa.WavefrontSize]uint64
		mask := isa.ExecMask(rng.Uint64())
		size := []int{4, 8}[rng.Intn(2)]
		base := uint64(rng.Intn(1 << 20))
		for l := range addrs {
			addrs[l] = base + uint64(rng.Intn(512))
		}
		got := Coalesce(&addrs, size, mask)
		want := map[uint64]bool{}
		for l := 0; l < isa.WavefrontSize; l++ {
			if !mask.Bit(l) {
				continue
			}
			for a := addrs[l] &^ 63; a <= (addrs[l]+uint64(size)-1)&^63; a += 64 {
				want[a] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d lines, want %d", iter, len(got), len(want))
		}
		seen := map[uint64]bool{}
		for _, g := range got {
			if !want[g] || seen[g] {
				t.Fatalf("iter %d: unexpected or duplicate line %#x", iter, g)
			}
			seen[g] = true
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("r", 1024, 64, 2, 1, false, nil, 1)
	c.Access(0, false, 0)
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats not reset")
	}
	c.Access(0, false, 0)
	if c.Stats().Misses != 1 {
		t.Fatal("contents not reset")
	}
}
