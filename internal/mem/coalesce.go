package mem

import "ilsim/internal/isa"

// Coalesce merges the per-lane addresses of one wavefront memory instruction
// into the set of distinct cache-line requests, the function the CU's
// coalescing logic performs (Figure 2). The returned slice preserves
// first-touch order, which keeps timing deterministic.
func Coalesce(addrs *[isa.WavefrontSize]uint64, accessBytes int, active isa.ExecMask) []uint64 {
	var lines []uint64
	seen := make(map[uint64]struct{}, 8)
	for lane := 0; lane < isa.WavefrontSize; lane++ {
		if !active.Bit(lane) {
			continue
		}
		first := addrs[lane] &^ (LineSize - 1)
		last := (addrs[lane] + uint64(accessBytes) - 1) &^ (LineSize - 1)
		for l := first; l <= last; l += LineSize {
			if _, ok := seen[l]; !ok {
				seen[l] = struct{}{}
				lines = append(lines, l)
			}
		}
	}
	return lines
}
