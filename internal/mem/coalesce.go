package mem

import "ilsim/internal/isa"

// CoalesceInto merges the per-lane addresses of one wavefront memory
// instruction into the set of distinct cache-line requests, the function the
// CU's coalescing logic performs (Figure 2). Lines are appended to buf
// (typically a wave's reusable scratch, sliced to length 0) so the hot path
// allocates nothing once the scratch has grown; the result preserves
// first-touch order, which keeps timing deterministic.
//
// The dedup is a linear scan rather than a map: a wavefront's accesses
// coalesce to at most 2×WavefrontSize lines and usually to a handful, and
// consecutive lanes overwhelmingly touch the line just inserted.
func CoalesceInto(buf []uint64, addrs *[isa.WavefrontSize]uint64, accessBytes int, active isa.ExecMask) []uint64 {
	for lane := 0; lane < isa.WavefrontSize; lane++ {
		if !active.Bit(lane) {
			continue
		}
		first := addrs[lane] &^ (LineSize - 1)
		last := (addrs[lane] + uint64(accessBytes) - 1) &^ (LineSize - 1)
		for l := first; l <= last; l += LineSize {
			if !containsLine(buf, l) {
				buf = append(buf, l)
			}
		}
	}
	return buf
}

// containsLine reports whether l is already coalesced, checking the most
// recently inserted line first (the common sequential-access hit).
func containsLine(lines []uint64, l uint64) bool {
	n := len(lines)
	if n == 0 {
		return false
	}
	if lines[n-1] == l {
		return true
	}
	for _, have := range lines[:n-1] {
		if have == l {
			return true
		}
	}
	return false
}

// Coalesce is CoalesceInto with a fresh buffer.
func Coalesce(addrs *[isa.WavefrontSize]uint64, accessBytes int, active isa.ExecMask) []uint64 {
	return CoalesceInto(nil, addrs, accessBytes, active)
}
