package mem

// Request is one deferred cache access: the line set a compute unit wants
// to send into the hierarchy, recorded during a parallel phase and applied
// later under a deterministic order. Lines may be nil for the common
// single-line case (Line0 holds it), which lets fetch requests defer
// without materializing a slice.
type Request struct {
	Cache *Cache
	Line0 uint64
	Lines []uint64
	Write bool
	// Tag is caller-defined routing state (typically an index into the
	// caller's parallel metadata), handed back verbatim on completion.
	Tag int
}

// RequestBuffer is an append-only, replayable queue of deferred cache
// accesses. The parallel timing core gives each compute unit one buffer:
// phase 1 appends requests in the exact order the serial model would have
// issued them, phase 2 drains buffers in CU-index order, so the shared
// hierarchy (ports, LRU state, miss counters) evolves byte-identically to
// the serial interleaving. Reset keeps capacity, so a steady-state
// tick/drain cycle allocates nothing.
type RequestBuffer struct {
	reqs []Request
}

// AppendLine defers a single-line access.
func (b *RequestBuffer) AppendLine(c *Cache, line uint64, write bool, tag int) {
	b.reqs = append(b.reqs, Request{Cache: c, Line0: line, Write: write, Tag: tag})
}

// Append defers a multi-line access. The slice is held until Drain, not
// copied: callers reusing coalescing scratch must not overwrite it before
// draining (the timing model's one-issue-per-wave-per-cycle invariant
// guarantees that).
func (b *RequestBuffer) Append(c *Cache, lines []uint64, write bool, tag int) {
	b.reqs = append(b.reqs, Request{Cache: c, Lines: lines, Write: write, Tag: tag})
}

// Len returns the number of deferred requests.
func (b *RequestBuffer) Len() int { return len(b.reqs) }

// Reset empties the buffer, keeping its capacity.
func (b *RequestBuffer) Reset() { b.reqs = b.reqs[:0] }

// Drain applies every deferred request in append order at cycle now and
// reports each request's completion cycle — the max over its lines, or now
// for an empty line set — to complete along with its tag. The buffer is
// reset afterwards.
func (b *RequestBuffer) Drain(now int64, complete func(tag int, ready int64)) {
	for i := range b.reqs {
		r := &b.reqs[i]
		ready := now
		if r.Lines == nil {
			ready = r.Cache.Access(r.Line0, r.Write, now)
		} else {
			for _, line := range r.Lines {
				if done := r.Cache.Access(line, r.Write, now); done > ready {
					ready = done
				}
			}
		}
		complete(r.Tag, ready)
	}
	b.reqs = b.reqs[:0]
}
