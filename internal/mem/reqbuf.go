package mem

// lineReq is one routed line access sitting in a destination bank's bucket:
// the line address, the write flag, the index of the owning request in the
// buffer's request table, and — written by the drain — its completion cycle.
type lineReq struct {
	line  uint64
	write bool
	req   int32
	done  int64
}

// dest is one cache a buffer routes into: per-bank buckets so that routing
// happens at append time, inside the parallel phase, and the drain can hand
// each bank its inputs without any further sorting.
type dest struct {
	cache   *Cache
	buckets [][]lineReq
}

// request is the buffer-side record of one deferred access: the caller's
// tag and the max-reduced completion cycle of its lines.
type request struct {
	tag   int
	ready int64
}

// RequestBuffer is an append-only, replayable queue of deferred cache
// accesses, routed to destination banks as it is appended. The parallel
// timing core gives each compute unit one buffer: phase 1 appends requests
// in the exact order the serial model would have issued them, bucketing each
// line by (destination cache, bank); phase 2 (Drain.Flush) replays every
// bank's bucket sequence in (CU index, append order), so each bank's
// port/LRU/miss-counter state evolves deterministically regardless of which
// goroutine services it. Reset keeps capacity, so a steady-state tick/drain
// cycle allocates nothing.
//
// All Register calls must precede Drain construction (the drain captures
// pointers to the per-bank buckets).
type RequestBuffer struct {
	dests []dest
	reqs  []request
	lines int
}

// Register adds a destination cache and returns its handle for AppendLine/
// Append. Registering the same cache twice returns the same handle.
func (b *RequestBuffer) Register(c *Cache) int {
	for i := range b.dests {
		if b.dests[i].cache == c {
			return i
		}
	}
	b.dests = append(b.dests, dest{cache: c, buckets: make([][]lineReq, c.NumBanks())})
	return len(b.dests) - 1
}

// AppendLine defers a single-line access to destination d.
func (b *RequestBuffer) AppendLine(d int, line uint64, write bool, tag int) {
	dst := &b.dests[d]
	bank := dst.cache.BankOf(line)
	dst.buckets[bank] = append(dst.buckets[bank],
		lineReq{line: line, write: write, req: int32(len(b.reqs))})
	b.reqs = append(b.reqs, request{tag: tag})
	b.lines++
}

// Append defers a multi-line access to destination d. Lines are copied into
// the per-bank buckets, so the caller's slice (typically coalescing scratch)
// may be reused immediately. Cross-bank lines of one request max-reduce
// their completion cycles back into a single ready cycle at drain time.
func (b *RequestBuffer) Append(d int, lines []uint64, write bool, tag int) {
	dst := &b.dests[d]
	ri := int32(len(b.reqs))
	for _, line := range lines {
		bank := dst.cache.BankOf(line)
		dst.buckets[bank] = append(dst.buckets[bank],
			lineReq{line: line, write: write, req: ri})
	}
	b.reqs = append(b.reqs, request{tag: tag})
	b.lines += len(lines)
}

// Len returns the number of deferred requests.
func (b *RequestBuffer) Len() int { return len(b.reqs) }

// Lines returns the number of routed line accesses.
func (b *RequestBuffer) Lines() int { return b.lines }

// Reset empties the buffer, keeping its capacity.
func (b *RequestBuffer) Reset() {
	b.reqs = b.reqs[:0]
	for i := range b.dests {
		d := &b.dests[i]
		for k := range d.buckets {
			d.buckets[k] = d.buckets[k][:0]
		}
	}
	b.lines = 0
}
