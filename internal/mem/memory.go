// Package mem provides the simulated memory subsystem: a sparse functional
// memory image shared by both ISA abstractions, the memory-side timing models
// (set-associative caches and a channeled DRAM), and the per-wavefront access
// coalescer.
//
// Functional state and timing state are deliberately separate: the emulators
// (package emu) read and write the Memory image at execute time, while the
// timing pipeline (package timing) replays the generated accesses against the
// cache hierarchy to obtain latencies and contention. The hierarchy uses
// latency forwarding with per-resource next-free times rather than a full
// event-driven MSHR model; this keeps the compute-unit model cycle-level
// while memory stays contended and bandwidth-limited (see DESIGN.md).
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageBits is the log2 of the sparse page size.
const PageBits = 12

// PageSize is the sparse allocation granularity of the functional image.
const PageSize = 1 << PageBits

// LineSize is the cache-line size used throughout the hierarchy (Table 4).
const LineSize = 64

// Memory is a sparse 64-bit byte-addressed functional memory image.
// It also tracks the set of touched cache lines, which is how the data
// footprint statistic (Table 6) is measured.
type Memory struct {
	pages   map[uint64][]byte
	touched map[uint64]struct{}
	// lastBase/lastPage cache the most recently resolved page: simulated
	// accesses are heavily page-local, so most lookups skip the map.
	lastBase uint64
	lastPage []byte
	// lastLine caches the most recently touched line (valid when
	// hasLastLine), skipping redundant touched-set inserts for the common
	// case of consecutive accesses to one line.
	lastLine    uint64
	hasLastLine bool
	// trackFootprint enables touched-line recording.
	trackFootprint bool
	// exclLo/exclHi is an address range excluded from footprint tracking
	// (runtime-internal structures such as AQL packets).
	exclLo, exclHi uint64
}

// NewMemory returns an empty memory image with footprint tracking enabled.
func NewMemory() *Memory {
	return &Memory{
		pages:          make(map[uint64][]byte),
		touched:        make(map[uint64]struct{}),
		trackFootprint: true,
	}
}

// SetFootprintTracking toggles touched-line recording (loaders disable it so
// code and packet setup do not count as application data footprint).
func (m *Memory) SetFootprintTracking(on bool) { m.trackFootprint = on }

// ExcludeFromFootprint removes [lo, hi) from footprint accounting.
func (m *Memory) ExcludeFromFootprint(lo, hi uint64) { m.exclLo, m.exclHi = lo, hi }

// ResetFootprint clears the touched-line set.
func (m *Memory) ResetFootprint() {
	m.touched = make(map[uint64]struct{})
	m.hasLastLine = false
}

// FootprintBytes returns the data footprint: touched lines × line size.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.touched)) * LineSize
}

func (m *Memory) page(addr uint64) []byte {
	base := addr >> PageBits
	if m.lastPage != nil && base == m.lastBase {
		return m.lastPage
	}
	p, ok := m.pages[base]
	if !ok {
		p = make([]byte, PageSize)
		m.pages[base] = p
	}
	m.lastBase, m.lastPage = base, p
	return p
}

func (m *Memory) touch(addr uint64, n int) {
	if !m.trackFootprint || n <= 0 {
		return
	}
	if addr >= m.exclLo && addr < m.exclHi {
		return
	}
	first := addr / LineSize
	last := (addr + uint64(n) - 1) / LineSize
	if first == last && m.hasLastLine && first == m.lastLine {
		return
	}
	for l := first; l <= last; l++ {
		m.touched[l] = struct{}{}
	}
	m.lastLine, m.hasLastLine = last, true
}

// Read copies len(dst) bytes at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	m.touch(addr, len(dst))
	if off := addr & (PageSize - 1); int(off)+len(dst) <= PageSize {
		copy(dst, m.page(addr)[off:])
		return
	}
	for n := 0; n < len(dst); {
		off := (addr + uint64(n)) & (PageSize - 1)
		p := m.page(addr + uint64(n))
		c := copy(dst[n:], p[off:])
		n += c
	}
}

// Write copies src into memory at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	m.touch(addr, len(src))
	if off := addr & (PageSize - 1); int(off)+len(src) <= PageSize {
		copy(m.page(addr)[off:], src)
		return
	}
	for n := 0; n < len(src); {
		off := (addr + uint64(n)) & (PageSize - 1)
		p := m.page(addr + uint64(n))
		c := copy(p[off:], src[n:])
		n += c
	}
}

// ReadU32 reads a little-endian uint32.
func (m *Memory) ReadU32(addr uint64) uint32 {
	var b [4]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian uint32.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// ReadU64 reads a little-endian uint64.
func (m *Memory) ReadU64(addr uint64) uint64 {
	var b [8]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// AtomicAddU32 performs a fetch-add and returns the prior value. The
// functional image is single-threaded, so this is trivially atomic.
func (m *Memory) AtomicAddU32(addr uint64, v uint32) uint32 {
	old := m.ReadU32(addr)
	m.WriteU32(addr, old+v)
	return old
}

// Allocator is a bump allocator carving regions out of the flat address
// space; the HSA runtime uses one per process.
type Allocator struct {
	next uint64
	end  uint64
}

// NewAllocator returns an allocator over [base, base+size).
func NewAllocator(base, size uint64) *Allocator {
	return &Allocator{next: base, end: base + size}
}

// Alloc reserves size bytes aligned to align (a power of two).
func (a *Allocator) Alloc(size, align uint64) (uint64, error) {
	if align == 0 {
		align = 1
	}
	p := (a.next + align - 1) &^ (align - 1)
	if p+size > a.end {
		return 0, fmt.Errorf("mem: allocator exhausted (%d bytes requested)", size)
	}
	a.next = p + size
	return p, nil
}

// Used returns the number of bytes consumed so far.
func (a *Allocator) Used(base uint64) uint64 { return a.next - base }
