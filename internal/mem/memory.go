// Package mem provides the simulated memory subsystem: a sparse functional
// memory image shared by both ISA abstractions, the memory-side timing models
// (set-associative caches and a channeled DRAM), and the per-wavefront access
// coalescer.
//
// Functional state and timing state are deliberately separate: the emulators
// (package emu) read and write the Memory image at execute time, while the
// timing pipeline (package timing) replays the generated accesses against the
// cache hierarchy to obtain latencies and contention. The hierarchy uses
// latency forwarding with per-resource next-free times rather than a full
// event-driven MSHR model; this keeps the compute-unit model cycle-level
// while memory stays contended and bandwidth-limited (see DESIGN.md).
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// PageBits is the log2 of the sparse page size.
const PageBits = 12

// PageSize is the sparse allocation granularity of the functional image.
const PageSize = 1 << PageBits

// LineSize is the cache-line size used throughout the hierarchy (Table 4).
const LineSize = 64

// pageTable is the page store shared by a Memory and all of its forked
// views. Until the first Fork the owning Memory is the only user and the
// mutex is bypassed; once shared, first-touch page allocation takes the
// write lock while lookups take the read lock. Page slices are never
// replaced or freed, so a resolved page may be cached and used lock-free
// forever.
type pageTable struct {
	mu     sync.RWMutex
	pages  map[uint64][]byte
	shared bool
}

// Memory is a sparse 64-bit byte-addressed functional memory image.
// It also tracks the set of touched cache lines, which is how the data
// footprint statistic (Table 6) is measured.
//
// A Memory is not safe for concurrent use, but Fork returns additional
// views over the same page store that may each be used from their own
// goroutine (the parallel timing core gives one to each compute unit).
// Views share data — a write through one view is seen by all — while
// every piece of per-view mutable bookkeeping (page/line caches, the
// touched-line set) stays private.
type Memory struct {
	pt *pageTable
	// parent is the root view this one was forked from (nil on the root).
	// Footprint-tracking policy lives on the root so toggles between
	// dispatches govern every view.
	parent  *Memory
	touched map[uint64]struct{}
	// lastBase/lastPage cache the most recently resolved page: simulated
	// accesses are heavily page-local, so most lookups skip the map.
	lastBase uint64
	lastPage []byte
	// lastLine caches the most recently touched line (valid when
	// hasLastLine), skipping redundant touched-set inserts for the common
	// case of consecutive accesses to one line.
	lastLine    uint64
	hasLastLine bool
	// trackFootprint enables touched-line recording.
	trackFootprint bool
	// exclLo/exclHi is an address range excluded from footprint tracking
	// (runtime-internal structures such as AQL packets).
	exclLo, exclHi uint64
}

// NewMemory returns an empty memory image with footprint tracking enabled.
func NewMemory() *Memory {
	return &Memory{
		pt:             &pageTable{pages: make(map[uint64][]byte)},
		touched:        make(map[uint64]struct{}),
		trackFootprint: true,
	}
}

// Fork returns a new view over the same page store, safe to use from
// another goroutine concurrently with the root and with other forks (as
// long as they do not write the same bytes in the same phase — the timing
// core's epoch barriers order everything coarser than that). The fork
// records its own touched lines; fold them back with AbsorbFootprint.
// Forking marks the page store shared, which routes first-touch page
// allocation through a lock on every view from then on.
func (m *Memory) Fork() *Memory {
	root := m
	if m.parent != nil {
		root = m.parent
	}
	root.pt.shared = true
	return &Memory{
		pt:      root.pt,
		parent:  root,
		touched: make(map[uint64]struct{}),
	}
}

// AbsorbFootprint folds a forked view's touched-line set into m and clears
// the fork's set. Line-set union is commutative, so absorbing forks in any
// order yields the same footprint a single view would have recorded.
func (m *Memory) AbsorbFootprint(f *Memory) {
	if f == nil || f == m {
		return
	}
	for l := range f.touched {
		m.touched[l] = struct{}{}
	}
	clear(f.touched)
	f.hasLastLine = false
	m.hasLastLine = false
}

// SetFootprintTracking toggles touched-line recording (loaders disable it so
// code and packet setup do not count as application data footprint). On a
// forked view it toggles the root policy, which governs every view.
func (m *Memory) SetFootprintTracking(on bool) {
	if m.parent != nil {
		m.parent.trackFootprint = on
		return
	}
	m.trackFootprint = on
}

// ExcludeFromFootprint removes [lo, hi) from footprint accounting.
func (m *Memory) ExcludeFromFootprint(lo, hi uint64) {
	if m.parent != nil {
		m.parent.exclLo, m.parent.exclHi = lo, hi
		return
	}
	m.exclLo, m.exclHi = lo, hi
}

// ResetFootprint clears the touched-line set.
func (m *Memory) ResetFootprint() {
	m.touched = make(map[uint64]struct{})
	m.hasLastLine = false
}

// FootprintBytes returns the data footprint: touched lines × line size.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.touched)) * LineSize
}

func (m *Memory) page(addr uint64) []byte {
	base := addr >> PageBits
	if m.lastPage != nil && base == m.lastBase {
		return m.lastPage
	}
	pt := m.pt
	if !pt.shared {
		p, ok := pt.pages[base]
		if !ok {
			p = make([]byte, PageSize)
			pt.pages[base] = p
		}
		m.lastBase, m.lastPage = base, p
		return p
	}
	pt.mu.RLock()
	p, ok := pt.pages[base]
	pt.mu.RUnlock()
	if !ok {
		pt.mu.Lock()
		if p, ok = pt.pages[base]; !ok {
			p = make([]byte, PageSize)
			pt.pages[base] = p
		}
		pt.mu.Unlock()
	}
	m.lastBase, m.lastPage = base, p
	return p
}

func (m *Memory) touch(addr uint64, n int) {
	// Tracking policy lives on the root view; writes to it happen only
	// between parallel phases, so forks may read it without locking.
	pol := m
	if m.parent != nil {
		pol = m.parent
	}
	if !pol.trackFootprint || n <= 0 {
		return
	}
	if addr >= pol.exclLo && addr < pol.exclHi {
		return
	}
	first := addr / LineSize
	last := (addr + uint64(n) - 1) / LineSize
	if first == last && m.hasLastLine && first == m.lastLine {
		return
	}
	for l := first; l <= last; l++ {
		m.touched[l] = struct{}{}
	}
	m.lastLine, m.hasLastLine = last, true
}

// Read copies len(dst) bytes at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	m.touch(addr, len(dst))
	if off := addr & (PageSize - 1); int(off)+len(dst) <= PageSize {
		copy(dst, m.page(addr)[off:])
		return
	}
	for n := 0; n < len(dst); {
		off := (addr + uint64(n)) & (PageSize - 1)
		p := m.page(addr + uint64(n))
		c := copy(dst[n:], p[off:])
		n += c
	}
}

// Write copies src into memory at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	m.touch(addr, len(src))
	if off := addr & (PageSize - 1); int(off)+len(src) <= PageSize {
		copy(m.page(addr)[off:], src)
		return
	}
	for n := 0; n < len(src); {
		off := (addr + uint64(n)) & (PageSize - 1)
		p := m.page(addr + uint64(n))
		c := copy(p[off:], src[n:])
		n += c
	}
}

// ReadU32 reads a little-endian uint32.
func (m *Memory) ReadU32(addr uint64) uint32 {
	var b [4]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian uint32.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// ReadU64 reads a little-endian uint64.
func (m *Memory) ReadU64(addr uint64) uint64 {
	var b [8]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// AtomicAddU32 performs a fetch-add and returns the prior value. The
// functional image is single-threaded, so this is trivially atomic.
func (m *Memory) AtomicAddU32(addr uint64, v uint32) uint32 {
	old := m.ReadU32(addr)
	m.WriteU32(addr, old+v)
	return old
}

// Allocator is a bump allocator carving regions out of the flat address
// space; the HSA runtime uses one per process.
type Allocator struct {
	next uint64
	end  uint64
}

// NewAllocator returns an allocator over [base, base+size).
func NewAllocator(base, size uint64) *Allocator {
	return &Allocator{next: base, end: base + size}
}

// Alloc reserves size bytes aligned to align (a power of two).
func (a *Allocator) Alloc(size, align uint64) (uint64, error) {
	if align == 0 {
		align = 1
	}
	p := (a.next + align - 1) &^ (align - 1)
	if p+size > a.end {
		return 0, fmt.Errorf("mem: allocator exhausted (%d bytes requested)", size)
	}
	a.next = p + size
	return p, nil
}

// Used returns the number of bytes consumed so far.
func (a *Allocator) Used(base uint64) uint64 { return a.next - base }
