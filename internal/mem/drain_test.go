package mem

import (
	"math/rand"
	"sync"
	"testing"
)

// recorder is a fake lowest level that records every access it sees.
type recorder struct {
	addrs  []uint64
	writes []bool
}

func (r *recorder) Access(addr uint64, write bool, now int64) int64 {
	r.addrs = append(r.addrs, addr)
	r.writes = append(r.writes, write)
	return now + 1
}

// TestVictimAddressRoundTrip pins the write-back eviction path's address
// reconstruction: the victim address handed to the lower level must be the
// line-aligned address originally inserted (tag*sets+setIdx inverts
// setAndTag exactly), for single- and multi-bank geometries.
func TestVictimAddressRoundTrip(t *testing.T) {
	for _, banks := range []int{1, 2} {
		rec := &recorder{}
		// 4 KiB, 64B lines, 2 ways -> 32 sets.
		c := NewCache("wb", 4<<10, 64, 2, 1, true, rec, banks)
		// The reconstruction must invert setAndTag for arbitrary addresses.
		for _, addr := range []uint64{0, 0x1fc0, 0x7fffffc0, 1 << 40} {
			set, tag := c.setAndTag(addr)
			got := (tag*uint64(c.sets) + uint64(set)) << c.lineBits
			if want := addr &^ 63; got != want {
				t.Fatalf("banks=%d: setAndTag round trip %#x -> %#x, want %#x",
					banks, addr, got, want)
			}
		}
		// Dirty a line, then force its eviction with two more fills of the
		// same set (stride = sets*lineSize keeps the set index fixed).
		const stride = 32 * 64
		victim := uint64(3 * 64) // set 3, tag 0
		c.Access(victim, true, 0)
		c.Access(victim+stride, true, 10)
		c.Access(victim+2*stride, true, 20) // evicts the dirty victim
		var got []uint64
		for i, a := range rec.addrs {
			if rec.writes[i] {
				got = append(got, a)
			}
		}
		if len(got) != 1 || got[0] != victim {
			t.Fatalf("banks=%d: victim write-backs %#x, want exactly [%#x]",
				banks, got, victim)
		}
	}
}

// TestVictimWriteBackLandsOnLowerBank checks that a dirty victim's posted
// write-back reaches the lower level's correct bank (DRAM channel), not
// merely "some channel".
func TestVictimWriteBackLandsOnLowerBank(t *testing.T) {
	dram := NewDRAM(4, 64, 100, 4)
	// 2 ways, 32 sets: same-set fills with stride 32*64.
	c := NewCache("wb", 4<<10, 64, 2, 1, true, dram, 2)
	const stride = 32 * 64
	victim := uint64(5 * 64) // line 5 -> channel 5%4 == 1
	c.Access(victim, true, 0)
	c.Access(victim+stride, true, 10)
	c.Access(victim+2*stride, true, 20) // evicts the dirty victim
	wantCh := dram.BankOf(victim)
	if wantCh != 1 {
		t.Fatalf("test geometry drifted: victim channel %d, want 1", wantCh)
	}
	// Channel 1 must have seen exactly the victim write; the three write
	// misses each fill-read their own channel (5%4=1, 37%4=1, 69%4=1 —
	// same-set stride keeps the channel fixed too, so channel 1 sees the
	// three fill reads plus one victim write).
	if got := dram.BankStats(wantCh).Accesses; got != 4 {
		t.Fatalf("channel %d accesses = %d, want 4 (3 fills + victim write)", wantCh, got)
	}
	for ch := 0; ch < 4; ch++ {
		if ch != wantCh && dram.BankStats(ch).Accesses != 0 {
			t.Fatalf("channel %d saw %d accesses, want 0", ch, dram.BankStats(ch).Accesses)
		}
	}
}

// TestDRAMInterleaveFollowsLineSize pins the satellite fix: the channel
// shift derives from the configured line size instead of a hardcoded 64.
func TestDRAMInterleaveFollowsLineSize(t *testing.T) {
	d64 := NewDRAM(4, 64, 100, 4)
	d128 := NewDRAM(4, 128, 100, 4)
	if d64.BankOf(64) != 1 || d64.BankOf(256) != 0 {
		t.Fatalf("64B interleave wrong: %d %d", d64.BankOf(64), d64.BankOf(256))
	}
	if d128.BankOf(64) != 0 || d128.BankOf(128) != 1 || d128.BankOf(512) != 0 {
		t.Fatalf("128B interleave wrong: %d %d %d",
			d128.BankOf(64), d128.BankOf(128), d128.BankOf(512))
	}
	// Two accesses inside one 128B line must queue on one channel.
	a := d128.Access(0, false, 0)
	b := d128.Access(64, false, 0)
	if a != 100 || b != 104 {
		t.Fatalf("same-line contention: a=%d b=%d, want 100, 104", a, b)
	}
}

// TestBankedCacheCountersMatchSingleBank: banking splits ports, not
// residency — hit/miss/eviction totals must be identical to banks=1.
func TestBankedCacheCountersMatchSingleBank(t *testing.T) {
	run := func(banks int) CacheStats {
		c := NewCache("c", 2<<10, 64, 2, 4, false, nil, banks)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 4000; i++ {
			c.Access(uint64(rng.Intn(256))*64, rng.Intn(4) == 0, int64(i))
		}
		return c.Stats()
	}
	s1, s4 := run(1), run(4)
	if s1.Accesses != s4.Accesses || s1.Hits != s4.Hits ||
		s1.Misses != s4.Misses || s1.Evictions != s4.Evictions {
		t.Fatalf("counters diverge: banks=1 %+v banks=4 %+v", s1, s4)
	}
}

// hier is a miniature GPU memory system for drain tests.
type hier struct {
	l1s   []*Cache
	bufs  []*RequestBuffer
	drain *Drain
	l2    *Cache
	dram  *DRAM
	// ready[src] collects (tag, ready) pairs per source.
	ready [][2]int64
}

func buildHier(nSrc, l2Banks, channels int) *hier {
	h := &hier{}
	h.dram = NewDRAM(channels, 64, 100, 4)
	h.l2 = NewCache("L2", 8<<10, 64, 2, 8, true, h.dram, l2Banks)
	var srcs []DrainSource
	for i := 0; i < nSrc; i++ {
		l1 := NewCache("L1", 1<<10, 64, 2, 2, false, h.l2, 1)
		h.l1s = append(h.l1s, l1)
		buf := &RequestBuffer{}
		buf.Register(l1)
		h.bufs = append(h.bufs, buf)
		srcs = append(srcs, DrainSource{Buf: buf, Complete: func(tag int, ready int64) {
			h.ready = append(h.ready, [2]int64{int64(tag), ready})
		}})
	}
	h.drain = NewDrain(h.l1s, srcs, h.l2, h.dram)
	return h
}

// genRequests appends a deterministic pseudo-random request mix to every
// source buffer. Addresses stay within the L2 capacity so no dirty L2
// victims arise (their write-back replay order is the one deliberate
// departure from the synchronous path).
func genRequests(h *hier, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	var lines []uint64
	for s, buf := range h.bufs {
		d := 0 // handle from Register(l1)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				lines = lines[:0]
				for k := 0; k <= rng.Intn(4); k++ {
					lines = append(lines, uint64(rng.Intn(96))*64)
				}
				buf.Append(d, lines, rng.Intn(4) == 0, s*1000+i)
			} else {
				buf.AppendLine(d, uint64(rng.Intn(96))*64, rng.Intn(4) == 0, s*1000+i)
			}
		}
	}
}

// TestDrainMatchesSynchronousReplay: with single-bank level-1 caches and no
// dirty L2 victims, the level-wave pipeline must reproduce the synchronous
// Access path exactly — same per-request ready cycles, same counters.
func TestDrainMatchesSynchronousReplay(t *testing.T) {
	hA := buildHier(2, 1, 2)
	genRequests(hA, 7, 40)
	hA.drain.Flush(100, nil)

	// Reference: identical geometry, requests applied synchronously in
	// (source, append, line) order.
	hB := buildHier(2, 1, 2)
	genRequests(hB, 7, 40)
	for s, buf := range hB.bufs {
		for i := range buf.reqs {
			ready := int64(100)
			for _, bucket := range buf.dests[0].buckets {
				for _, lr := range bucket {
					if lr.req != int32(i) {
						continue
					}
					if done := hB.l1s[s].Access(lr.line, lr.write, 100); done > ready {
						ready = done
					}
				}
			}
			hB.ready = append(hB.ready, [2]int64{int64(buf.reqs[i].tag), ready})
		}
	}
	if len(hA.ready) != len(hB.ready) {
		t.Fatalf("completion counts: drain %d, sync %d", len(hA.ready), len(hB.ready))
	}
	for i := range hA.ready {
		if hA.ready[i] != hB.ready[i] {
			t.Fatalf("completion %d: drain %v, sync %v", i, hA.ready[i], hB.ready[i])
		}
	}
	if a, b := hA.l2.Stats(), hB.l2.Stats(); a != b {
		t.Fatalf("L2 stats diverge: drain %+v sync %+v", a, b)
	}
	if a, b := hA.dram.Stats(), hB.dram.Stats(); a != b {
		t.Fatalf("DRAM stats diverge: drain %+v sync %+v", a, b)
	}
}

// TestDrainExecutorInvariance: the drain's results must not depend on how
// wave tasks are scheduled — serial, reversed, or genuinely concurrent
// (the latter also puts the wave structure under the race detector).
func TestDrainExecutorInvariance(t *testing.T) {
	reversed := func(n int, run func(int)) {
		for i := n - 1; i >= 0; i-- {
			run(i)
		}
	}
	concurrent := func(n int, run func(int)) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
	}
	var base *hier
	for name, exec := range map[string]Executor{
		"serial": nil, "reversed": reversed, "concurrent": concurrent,
	} {
		h := buildHier(3, 4, 4)
		for cycle := 0; cycle < 30; cycle++ {
			genRequests(h, int64(cycle), 10)
			h.drain.Flush(int64(100*cycle), exec)
		}
		if base == nil {
			base = h
			continue
		}
		if len(h.ready) != len(base.ready) {
			t.Fatalf("%s: %d completions, want %d", name, len(h.ready), len(base.ready))
		}
		for i := range h.ready {
			if h.ready[i] != base.ready[i] {
				t.Fatalf("%s: completion %d = %v, want %v", name, i, h.ready[i], base.ready[i])
			}
		}
		if h.l2.Stats() != base.l2.Stats() || h.dram.Stats() != base.dram.Stats() {
			t.Fatalf("%s: shared-level stats diverge", name)
		}
		for i := range h.l1s {
			if h.l1s[i].Stats() != base.l1s[i].Stats() {
				t.Fatalf("%s: L1 %d stats diverge", name, i)
			}
		}
	}
}

// TestDrainZeroLineRequest: a request with an empty line set must still
// complete, at the flush cycle.
func TestDrainZeroLineRequest(t *testing.T) {
	h := buildHier(1, 1, 1)
	h.bufs[0].Append(0, nil, false, 42)
	h.drain.Flush(7, nil)
	if len(h.ready) != 1 || h.ready[0] != [2]int64{42, 7} {
		t.Fatalf("zero-line completion = %v", h.ready)
	}
}
