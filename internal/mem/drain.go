package mem

import "fmt"

// Executor runs n independent tasks, indexed 0..n-1, and returns when all
// have finished. The timing layer injects its worker pool through this so
// the drain can shard bank waves without depending on package timing; nil
// means run serially in index order. Tasks within one wave touch disjoint
// state, so any execution order (or interleaving) produces identical
// results — the executor choice affects wall clock only.
type Executor func(n int, run func(int))

func serialExec(n int, run func(int)) {
	for i := 0; i < n; i++ {
		run(i)
	}
}

// downJob is one access descending into a lower level: enqueued by an upper
// bank's wave into the lower bank's input bucket instead of calling through,
// which is what turns the drain into a pipeline of bank waves. done is
// written by the level that services the job.
type downJob struct {
	addr  uint64
	write bool
	at    int64
	done  int64
}

// pendFill is an upper bank's bookkeeping for one miss it sent below:
// where the fill's completion lands (sink), which down bucket holds the
// fill's job (bank/idx — indices, not pointers, because the bucket may
// still grow while this level's wave runs), the request's arrival cycle
// (for latency accounting) and a dirty victim to write back once the fill
// completes.
type pendFill struct {
	sink       *int64
	bank       int32
	idx        int32
	at         int64
	victimAddr uint64
	victimWB   bool
}

// drainTask is one bank of one level: the unit of phase-2 parallelism.
// Exactly one worker runs a task per wave, so everything here is private to
// that worker for the wave's duration.
type drainTask struct {
	cache *Cache // nil for DRAM-channel tasks
	bank  int
	lower Banked
	// srcs are level-1 inputs: each entry points at one request buffer's
	// bucket for (cache, bank), in buffer registration order (CU order).
	srcs []*[]lineReq
	// jobs are lower-level inputs: each entry points at one upper task's
	// down bucket for this bank, in upper-task order.
	jobs []*[]downJob
	// down holds this task's per-lower-bank output buckets.
	down [][]downJob
	pend []pendFill
}

// DrainSource is one request producer (a CU): its routed buffer and the
// callback that receives each request's (tag, ready) completion.
type DrainSource struct {
	Buf      *RequestBuffer
	Complete func(tag int, ready int64)
}

// Drain replays deferred cache accesses through a banked two-level
// hierarchy as a pipeline of bank waves:
//
//	wave 1 — every level-1 (per-CU L1D, shared L1I/sL1) bank replays its
//	         bucketed requests in (source, append) order against private
//	         bank state, depositing misses and posted writes into
//	         per-L2-bank output buckets;
//	wave 2 — every L2 bank replays its deposited jobs in (level-1 task,
//	         append) order, depositing misses into per-DRAM-channel
//	         buckets;
//	wave 3 — every DRAM channel replays its jobs.
//
// A barrier separates the waves; within a wave, tasks touch disjoint bank
// state and write completions only into their own inputs, so the waves may
// run on any number of workers with byte-identical results. After the
// waves, two serial finalize passes (L2 first, then level 1) resolve miss
// completions upward, charge miss latency, and apply dirty-victim
// write-backs; a final serial reduction folds per-line completions into
// per-request ready cycles and invokes each source's completion callback in
// (source, request) order. A steady-state Flush allocates nothing once the
// buckets have grown to their working size.
type Drain struct {
	l2    *Cache
	dram  *DRAM
	l1T   []drainTask
	l2T   []drainTask
	drT   []drainTask
	srcs  []DrainSource
	now   int64
	runL1 func(int)
	runL2 func(int)
	runDR func(int)
}

// NewDrain wires the pipeline. l1s lists every level-1 cache in replay
// order (this order, with source order within a bank, defines the
// deterministic L2 replay order); srcs lists the request producers in
// completion order (CU index order). Every l1 must sit directly above l2,
// and l2 directly above dram; every destination registered in a source
// buffer must appear in l1s. Buffers must have all destinations registered
// before NewDrain (the drain captures bucket pointers).
func NewDrain(l1s []*Cache, srcs []DrainSource, l2 *Cache, dram *DRAM) *Drain {
	if l2.lower != Level(dram) {
		panic("mem: NewDrain: l2 is not directly above dram")
	}
	d := &Drain{l2: l2, dram: dram, srcs: srcs}
	for _, c := range l1s {
		if c.lower != Level(l2) {
			panic(fmt.Sprintf("mem: NewDrain: %s is not directly above %s", c.Name, l2.Name))
		}
		for bank := 0; bank < c.NumBanks(); bank++ {
			t := drainTask{cache: c, bank: bank, lower: l2,
				down: make([][]downJob, l2.NumBanks())}
			for si := range srcs {
				buf := srcs[si].Buf
				for di := range buf.dests {
					if buf.dests[di].cache == c {
						t.srcs = append(t.srcs, &buf.dests[di].buckets[bank])
					}
				}
			}
			d.l1T = append(d.l1T, t)
		}
	}
	for _, s := range srcs {
		for di := range s.Buf.dests {
			if !containsCache(l1s, s.Buf.dests[di].cache) {
				panic(fmt.Sprintf("mem: NewDrain: destination %s not in level-1 list",
					s.Buf.dests[di].cache.Name))
			}
		}
	}
	for bank := 0; bank < l2.NumBanks(); bank++ {
		t := drainTask{cache: l2, bank: bank, lower: dram,
			down: make([][]downJob, dram.NumBanks())}
		for i := range d.l1T {
			t.jobs = append(t.jobs, &d.l1T[i].down[bank])
		}
		d.l2T = append(d.l2T, t)
	}
	for ch := 0; ch < dram.NumBanks(); ch++ {
		t := drainTask{bank: ch}
		for i := range d.l2T {
			t.jobs = append(t.jobs, &d.l2T[i].down[ch])
		}
		d.drT = append(d.drT, t)
	}
	d.runL1 = d.procL1
	d.runL2 = d.procL2
	d.runDR = d.procDRAM
	return d
}

func containsCache(cs []*Cache, c *Cache) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// MaxWave returns the widest wave's task count — the useful upper bound on
// drain parallelism.
func (d *Drain) MaxWave() int {
	w := len(d.l1T)
	if len(d.l2T) > w {
		w = len(d.l2T)
	}
	if len(d.drT) > w {
		w = len(d.drT)
	}
	return w
}

// Pending returns the number of routed line accesses waiting across all
// sources.
func (d *Drain) Pending() int {
	n := 0
	for _, s := range d.srcs {
		n += s.Buf.lines
	}
	return n
}

// procCache replays one cache bank's inputs: level-1 buckets first (only
// level-1 tasks have any), then lower-level job buckets, both in wiring
// order. Misses and posted writes are deposited into the lower bank's
// bucket; completions that are already known land immediately.
func (d *Drain) procCache(t *drainTask) {
	c := t.cache
	b := &c.banks[t.bank]
	for k := range t.down {
		t.down[k] = t.down[k][:0]
	}
	t.pend = t.pend[:0]
	for _, sp := range t.srcs {
		src := *sp
		for j := range src {
			lr := &src[j]
			d.apply(t, c, b, lr.line, lr.write, d.now, &lr.done)
		}
	}
	for _, jp := range t.jobs {
		js := *jp
		for j := range js {
			jb := &js[j]
			d.apply(t, c, b, jb.addr, jb.write, jb.at, &jb.done)
		}
	}
}

func (d *Drain) apply(t *drainTask, c *Cache, b *cacheBank, addr uint64, write bool, at int64, sink *int64) {
	a := c.bankAccess(b, addr, write, at)
	if a.fill {
		lb := t.lower.BankOf(a.downAddr)
		t.down[lb] = append(t.down[lb], downJob{addr: a.downAddr, at: a.downAt})
		t.pend = append(t.pend, pendFill{sink: sink,
			bank: int32(lb), idx: int32(len(t.down[lb]) - 1), at: at,
			victimAddr: a.victimAddr, victimWB: a.victimWB})
		return
	}
	*sink = a.done
	if a.post {
		lb := t.lower.BankOf(a.downAddr)
		t.down[lb] = append(t.down[lb],
			downJob{addr: a.downAddr, write: true, at: a.downAt, done: a.downAt})
	}
}

func (d *Drain) procL1(i int) { d.procCache(&d.l1T[i]) }
func (d *Drain) procL2(i int) { d.procCache(&d.l2T[i]) }

func (d *Drain) procDRAM(i int) {
	t := &d.drT[i]
	for _, jp := range t.jobs {
		js := *jp
		for j := range js {
			jb := &js[j]
			jb.done = d.dram.bankAccess(t.bank, jb.write, jb.at)
		}
	}
}

// finalizeLevel resolves one level's pending fills after the lower waves
// ran: copy each fill's completion into its sink, charge the miss latency
// to the bank shard, and apply dirty-victim write-backs (posted at the
// fill's completion, replayed here serially in task/pend order).
func (d *Drain) finalizeLevel(tasks []drainTask) {
	for i := range tasks {
		t := &tasks[i]
		b := &t.cache.banks[t.bank]
		for _, p := range t.pend {
			done := t.down[p.bank][p.idx].done
			b.stats.LatencySum += uint64(done - p.at)
			*p.sink = done
			if p.victimWB {
				t.cache.lower.Access(p.victimAddr, true, done)
			}
		}
	}
}

// reduce folds per-line completions back into per-request ready cycles and
// invokes each source's completion callback in (source, request) order,
// then resets the buffers.
func (d *Drain) reduce() {
	for _, s := range d.srcs {
		buf := s.Buf
		if len(buf.reqs) == 0 {
			continue
		}
		for i := range buf.reqs {
			buf.reqs[i].ready = d.now
		}
		for di := range buf.dests {
			dst := &buf.dests[di]
			for _, bucket := range dst.buckets {
				for j := range bucket {
					lr := &bucket[j]
					if r := &buf.reqs[lr.req]; lr.done > r.ready {
						r.ready = lr.done
					}
				}
			}
		}
		for i := range buf.reqs {
			s.Complete(buf.reqs[i].tag, buf.reqs[i].ready)
		}
		buf.Reset()
	}
}

// Flush drains every pending request at cycle now: three bank waves
// (level 1, L2, DRAM) on exec, then the serial finalize and reduction
// passes. exec == nil runs the waves serially; results are byte-identical
// either way.
func (d *Drain) Flush(now int64, exec Executor) {
	nreq := 0
	for _, s := range d.srcs {
		nreq += len(s.Buf.reqs)
	}
	if nreq == 0 {
		return
	}
	d.now = now
	if exec == nil {
		exec = serialExec
	}
	exec(len(d.l1T), d.runL1)
	exec(len(d.l2T), d.runL2)
	exec(len(d.drT), d.runDR)
	d.finalizeLevel(d.l2T)
	d.finalizeLevel(d.l1T)
	d.reduce()
}
