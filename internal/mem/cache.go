package mem

import "fmt"

// Level is a stage of the memory hierarchy that can service a line access.
// Access returns the cycle at which the requested line is available. now is
// the cycle the request arrives. Implementations update their own occupancy
// so that back-to-back requests queue realistically.
type Level interface {
	Access(addr uint64, write bool, now int64) (done int64)
}

// CacheStats counts cache activity.
type CacheStats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// LatencySum accumulates total access latency for mean-latency stats.
	LatencySum uint64
}

// MissRate returns misses/accesses.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MeanLatency returns the average access latency in cycles.
func (s *CacheStats) MeanLatency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Accesses)
}

type cacheLine struct {
	tag      uint64
	valid    bool
	dirty    bool
	lastUsed int64
}

// Cache is a set-associative, LRU cache timing model. Policies follow
// Table 4: write-through (no write-allocate) or write-back (write-allocate).
type Cache struct {
	Name       string
	Stats      CacheStats
	sets       int
	ways       int
	lineBits   uint
	hitLatency int64
	writeBack  bool
	lines      [][]cacheLine
	lower      Level
	// nextFree models the cache's single request port.
	nextFree int64
	// throughput is the port occupancy per request in cycles.
	throughput int64
}

// NewCache builds a cache model. sizeBytes/lineSize/ways determine geometry;
// ways <= 0 means fully associative.
func NewCache(name string, sizeBytes, lineSize, ways int, hitLatency int64, writeBack bool, lower Level) *Cache {
	numLines := sizeBytes / lineSize
	if ways <= 0 || ways > numLines {
		ways = numLines // fully associative
	}
	sets := numLines / ways
	if sets == 0 {
		sets = 1
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	c := &Cache{
		Name: name, sets: sets, ways: ways, lineBits: lineBits,
		hitLatency: hitLatency, writeBack: writeBack, lower: lower,
		throughput: 1,
	}
	c.lines = make([][]cacheLine, sets)
	for i := range c.lines {
		c.lines[i] = make([]cacheLine, ways)
	}
	return c
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		for j := range c.lines[i] {
			c.lines[i][j] = cacheLine{}
		}
	}
	c.Stats = CacheStats{}
	c.nextFree = 0
}

func (c *Cache) setAndTag(addr uint64) (int, uint64) {
	line := addr >> c.lineBits
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// Access services a line request and returns its completion cycle.
func (c *Cache) Access(addr uint64, write bool, now int64) int64 {
	c.Stats.Accesses++
	// Port occupancy: requests serialize through the cache port.
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	c.nextFree = start + c.throughput

	setIdx, tag := c.setAndTag(addr)
	set := c.lines[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			set[i].lastUsed = start
			if write {
				if c.writeBack {
					set[i].dirty = true
					done := start + c.hitLatency
					c.Stats.LatencySum += uint64(done - now)
					return done
				}
				// Write-through: forward the write but do not stall
				// the core on the lower level (posted write).
				if c.lower != nil {
					c.lower.Access(addr, true, start+c.hitLatency)
				}
			}
			done := start + c.hitLatency
			c.Stats.LatencySum += uint64(done - now)
			return done
		}
	}
	c.Stats.Misses++
	if write && !c.writeBack {
		// Write-through, no-write-allocate: the write goes straight down.
		done := start + c.hitLatency
		if c.lower != nil {
			c.lower.Access(addr, true, start)
		}
		c.Stats.LatencySum += uint64(done - now)
		return done
	}
	// Miss: fetch from below and fill.
	fillDone := start + c.hitLatency
	if c.lower != nil {
		fillDone = c.lower.Access(addr, false, start+c.hitLatency)
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUsed < set[victim].lastUsed {
			victim = i
		}
	}
	if set[victim].valid {
		c.Stats.Evictions++
		if set[victim].dirty && c.lower != nil {
			// Write back the victim; posted, does not extend the fill.
			victimAddr := (set[victim].tag*uint64(c.sets) + uint64(setIdx)) << c.lineBits
			c.lower.Access(victimAddr, true, fillDone)
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, dirty: write && c.writeBack, lastUsed: start}
	c.Stats.LatencySum += uint64(fillDone - now)
	return fillDone
}

// String summarizes geometry for reports.
func (c *Cache) String() string {
	return fmt.Sprintf("%s: %d sets x %d ways x %dB", c.Name, c.sets, c.ways, 1<<c.lineBits)
}

// DRAM models a channeled memory: each channel is a resource with a fixed
// access latency and per-request occupancy (burst time), so bandwidth is
// bounded and contention queues requests (Table 4: DDR3, 32 channels).
type DRAM struct {
	Latency   int64
	Occupancy int64
	nextFree  []int64
	Stats     CacheStats
}

// NewDRAM builds the DRAM model.
func NewDRAM(channels int, latency, occupancy int64) *DRAM {
	return &DRAM{Latency: latency, Occupancy: occupancy, nextFree: make([]int64, channels)}
}

// Reset clears channel state and statistics.
func (d *DRAM) Reset() {
	for i := range d.nextFree {
		d.nextFree[i] = 0
	}
	d.Stats = CacheStats{}
}

// Access services a line request on its address-interleaved channel.
func (d *DRAM) Access(addr uint64, write bool, now int64) int64 {
	d.Stats.Accesses++
	ch := int(addr >> 6 % uint64(len(d.nextFree)))
	start := now
	if d.nextFree[ch] > start {
		start = d.nextFree[ch]
	}
	d.nextFree[ch] = start + d.Occupancy
	done := start + d.Latency
	if write {
		// Writes occupy the channel but complete immediately for the
		// requester (posted).
		done = start
	}
	d.Stats.LatencySum += uint64(done - now)
	return done
}
