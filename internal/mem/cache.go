package mem

import "fmt"

// Level is a stage of the memory hierarchy that can service a line access.
// Access returns the cycle at which the requested line is available. now is
// the cycle the request arrives. Implementations update their own occupancy
// so that back-to-back requests queue realistically.
type Level interface {
	Access(addr uint64, write bool, now int64) (done int64)
}

// Banked is a hierarchy level whose state is partitioned into independent
// banks: requests to different banks touch disjoint port/LRU/counter state,
// so the drain pipeline may service banks concurrently. Cache (set
// interleaving) and DRAM (channel interleaving) both implement it.
type Banked interface {
	NumBanks() int
	BankOf(addr uint64) int
}

// CacheStats counts cache activity.
type CacheStats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// LatencySum accumulates total access latency for mean-latency stats.
	LatencySum uint64
}

// Merge folds another shard's counters into s (bank shards sum linearly).
func (s *CacheStats) Merge(o *CacheStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.LatencySum += o.LatencySum
}

// MissRate returns misses/accesses.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MeanLatency returns the average access latency in cycles.
func (s *CacheStats) MeanLatency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Accesses)
}

type cacheLine struct {
	tag      uint64
	valid    bool
	dirty    bool
	lastUsed int64
}

// cacheBank is one set-interleaved partition of a cache: it owns the lines
// of every set s with s % numBanks == bank, a private request port and a
// private statistics shard, so two banks never share mutable state.
type cacheBank struct {
	stats CacheStats
	// nextFree models the bank's single request port.
	nextFree int64
	// lines[local] holds global set local*numBanks + bank.
	lines [][]cacheLine
}

// access is the bank-local outcome of one request. Either the completion
// cycle is known immediately (done), or the request misses and must fill
// from the lower level (fill): the caller issues the lower-level read at
// downAt and the request completes when that read does. post marks a
// lower-level write that is posted (fired at downAt, never blocks the
// requester). fill and post are mutually exclusive; fill implies the cache
// has a lower level. On a fill the bank's LatencySum is NOT yet charged —
// the caller charges it once the fill's completion is known. A dirty victim
// evicted by the fill is reported via victimAddr/victimWB and must be
// written back (posted) at the fill's completion cycle.
type access struct {
	done       int64
	fill       bool
	post       bool
	downAddr   uint64
	downAt     int64
	victimAddr uint64
	victimWB   bool
}

// Cache is a set-associative, LRU cache timing model. Policies follow
// Table 4: write-through (no write-allocate) or write-back (write-allocate).
// Its sets are interleaved across numBanks independent banks (bank = set %
// numBanks), each with its own port, lines and statistics shard; banks=1
// reproduces the single-ported model exactly.
type Cache struct {
	Name       string
	sets       int // global set count, across all banks
	ways       int
	numBanks   int
	lineBits   uint
	hitLatency int64
	writeBack  bool
	lower      Level
	// throughput is the port occupancy per request in cycles.
	throughput int64
	banks      []cacheBank
}

// NewCache builds a cache model. sizeBytes/lineSize/ways determine geometry;
// ways <= 0 means fully associative. banks is the set-interleave factor
// (clamped to [1, sets]); it changes port timing, not hit/miss behavior.
func NewCache(name string, sizeBytes, lineSize, ways int, hitLatency int64, writeBack bool, lower Level, banks int) *Cache {
	numLines := sizeBytes / lineSize
	if ways <= 0 || ways > numLines {
		ways = numLines // fully associative
	}
	sets := numLines / ways
	if sets == 0 {
		sets = 1
	}
	if banks < 1 {
		banks = 1
	}
	if banks > sets {
		banks = sets
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	c := &Cache{
		Name: name, sets: sets, ways: ways, numBanks: banks, lineBits: lineBits,
		hitLatency: hitLatency, writeBack: writeBack, lower: lower,
		throughput: 1,
	}
	c.banks = make([]cacheBank, banks)
	for b := range c.banks {
		nLocal := (sets - b + banks - 1) / banks
		c.banks[b].lines = make([][]cacheLine, nLocal)
		for i := range c.banks[b].lines {
			c.banks[b].lines[i] = make([]cacheLine, ways)
		}
	}
	return c
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for b := range c.banks {
		bank := &c.banks[b]
		for i := range bank.lines {
			for j := range bank.lines[i] {
				bank.lines[i][j] = cacheLine{}
			}
		}
		bank.stats = CacheStats{}
		bank.nextFree = 0
	}
}

// NumBanks returns the set-interleave factor.
func (c *Cache) NumBanks() int { return c.numBanks }

// BankOf returns the bank servicing addr.
func (c *Cache) BankOf(addr uint64) int {
	setIdx, _ := c.setAndTag(addr)
	return setIdx % c.numBanks
}

// Stats returns the cache's counters, merged across bank shards.
func (c *Cache) Stats() CacheStats {
	var s CacheStats
	for b := range c.banks {
		s.Merge(&c.banks[b].stats)
	}
	return s
}

// BankStats returns one bank's statistics shard.
func (c *Cache) BankStats(b int) CacheStats { return c.banks[b].stats }

func (c *Cache) setAndTag(addr uint64) (int, uint64) {
	line := addr >> c.lineBits
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// bankAccess services the bank-local part of one request on bank b: port
// arbitration, tag probe, LRU update, fill bookkeeping and victim selection.
// It never calls into the lower level; the outcome tells the caller what
// lower-level traffic to issue, which is what lets the drain pipeline defer
// that traffic into the lower bank's own queue.
func (c *Cache) bankAccess(b *cacheBank, addr uint64, write bool, now int64) access {
	b.stats.Accesses++
	// Port occupancy: requests serialize through the bank's port.
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + c.throughput

	setIdx, tag := c.setAndTag(addr)
	set := b.lines[setIdx/c.numBanks]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.stats.Hits++
			set[i].lastUsed = start
			done := start + c.hitLatency
			b.stats.LatencySum += uint64(done - now)
			if write && !c.writeBack && c.lower != nil {
				// Write-through: forward the write but do not stall the
				// core on the lower level (posted write).
				return access{done: done, post: true, downAddr: addr, downAt: start + c.hitLatency}
			}
			if write && c.writeBack {
				set[i].dirty = true
			}
			return access{done: done}
		}
	}
	b.stats.Misses++
	if write && !c.writeBack {
		// Write-through, no-write-allocate: the write goes straight down.
		done := start + c.hitLatency
		b.stats.LatencySum += uint64(done - now)
		if c.lower != nil {
			return access{done: done, post: true, downAddr: addr, downAt: start}
		}
		return access{done: done}
	}
	// Miss: fetch from below and fill. The line is inserted now (victim
	// selection included); its availability is the fill's completion.
	out := access{fill: true, downAddr: addr, downAt: start + c.hitLatency}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUsed < set[victim].lastUsed {
			victim = i
		}
	}
	if set[victim].valid {
		b.stats.Evictions++
		if set[victim].dirty && c.lower != nil {
			// Write back the victim; posted, does not extend the fill.
			out.victimAddr = (set[victim].tag*uint64(c.sets) + uint64(setIdx)) << c.lineBits
			out.victimWB = true
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, dirty: write && c.writeBack, lastUsed: start}
	if c.lower == nil {
		// Nothing below: the "fill" completes at the hit latency.
		out.fill = false
		out.done = start + c.hitLatency
		out.victimWB = false
		b.stats.LatencySum += uint64(out.done - now)
	}
	return out
}

// Access services a line request synchronously and returns its completion
// cycle, descending into the lower level inline. The drain pipeline replays
// exactly this logic with the descent deferred; banks=1 callers see the
// pre-banking timing unchanged.
func (c *Cache) Access(addr uint64, write bool, now int64) int64 {
	b := &c.banks[c.BankOf(addr)]
	a := c.bankAccess(b, addr, write, now)
	if a.fill {
		fillDone := c.lower.Access(a.downAddr, false, a.downAt)
		b.stats.LatencySum += uint64(fillDone - now)
		if a.victimWB {
			c.lower.Access(a.victimAddr, true, fillDone)
		}
		return fillDone
	}
	if a.post {
		c.lower.Access(a.downAddr, true, a.downAt)
	}
	return a.done
}

// String summarizes geometry for reports.
func (c *Cache) String() string {
	return fmt.Sprintf("%s: %d sets x %d ways x %dB x %d banks",
		c.Name, c.sets, c.ways, 1<<c.lineBits, c.numBanks)
}

// dramChan is one DRAM channel: an independent bank with its own occupancy
// tracking and statistics shard.
type dramChan struct {
	nextFree int64
	stats    CacheStats
}

// DRAM models a channeled memory: each channel is a resource with a fixed
// access latency and per-request occupancy (burst time), so bandwidth is
// bounded and contention queues requests (Table 4: DDR3, 32 channels).
// Channels are line-interleaved; each is an independent bank to the drain.
type DRAM struct {
	Latency   int64
	Occupancy int64
	lineBits  uint
	chans     []dramChan
}

// NewDRAM builds the DRAM model. lineSize sets the channel-interleave
// granularity (consecutive lines land on consecutive channels).
func NewDRAM(channels, lineSize int, latency, occupancy int64) *DRAM {
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	return &DRAM{Latency: latency, Occupancy: occupancy, lineBits: lineBits,
		chans: make([]dramChan, channels)}
}

// Reset clears channel state and statistics.
func (d *DRAM) Reset() {
	for i := range d.chans {
		d.chans[i] = dramChan{}
	}
}

// NumBanks returns the channel count.
func (d *DRAM) NumBanks() int { return len(d.chans) }

// BankOf returns the line-interleaved channel servicing addr.
func (d *DRAM) BankOf(addr uint64) int {
	return int(addr >> d.lineBits % uint64(len(d.chans)))
}

// Stats returns the DRAM's counters, merged across channel shards.
func (d *DRAM) Stats() CacheStats {
	var s CacheStats
	for i := range d.chans {
		s.Merge(&d.chans[i].stats)
	}
	return s
}

// BankStats returns one channel's statistics shard.
func (d *DRAM) BankStats(ch int) CacheStats { return d.chans[ch].stats }

// bankAccess services one request on channel ch (already routed).
func (d *DRAM) bankAccess(ch int, write bool, now int64) int64 {
	cn := &d.chans[ch]
	cn.stats.Accesses++
	start := now
	if cn.nextFree > start {
		start = cn.nextFree
	}
	cn.nextFree = start + d.Occupancy
	done := start + d.Latency
	if write {
		// Writes occupy the channel but complete immediately for the
		// requester (posted).
		done = start
	}
	cn.stats.LatencySum += uint64(done - now)
	return done
}

// Access services a line request on its address-interleaved channel.
func (d *DRAM) Access(addr uint64, write bool, now int64) int64 {
	return d.bankAccess(d.BankOf(addr), write, now)
}
