package fleet

import (
	"testing"
	"time"
)

// step is one Decide call in a scripted sequence: advance the clock,
// present a fleet state and a hint, expect a target and a reason.
type step struct {
	advance    time.Duration
	current    int
	want       int
	wantTarget int
	wantReason string
}

// runSteps drives a Decider through a script against one policy.
func runSteps(t *testing.T, p Policy, steps []step) {
	t.Helper()
	d := &Decider{Policy: p}
	now := time.Unix(1000, 0)
	for i, s := range steps {
		now = now.Add(s.advance)
		target, reason := d.Decide(now, s.current, s.want)
		if target != s.wantTarget || reason != s.wantReason {
			t.Fatalf("step %d (+%s, current %d, want %d): got %d (%s), want %d (%s)",
				i, s.advance, s.current, s.want, target, reason, s.wantTarget, s.wantReason)
		}
	}
}

// TestDeciderSpike: a queue spike scales up immediately, clamps at Max,
// and the up-cooldown absorbs the follow-up hint churn.
func TestDeciderSpike(t *testing.T) {
	p := Policy{Min: 1, Max: 8, UpCooldown: 5 * time.Second, DownCooldown: 30 * time.Second}
	runSteps(t, p, []step{
		{0, 1, 1, 1, "steady"},
		{time.Second, 1, 12, 8, "up"},         // spike: clamped to Max
		{time.Second, 8, 10, 8, "steady"},     // already at the (clamped) target
		{time.Second, 2, 6, 2, "up-cooldown"}, // churn inside the cooldown holds
		{10 * time.Second, 2, 6, 6, "up"},     // cooldown expired
	})
}

// TestDeciderDecay: as the queue drains the hint falls, but the fleet
// shrinks only after the down-cooldown — and then all the way.
func TestDeciderDecay(t *testing.T) {
	p := Policy{Min: 1, Max: 8, UpCooldown: time.Second, DownCooldown: 30 * time.Second}
	runSteps(t, p, []step{
		{0, 1, 8, 8, "up"},
		{5 * time.Second, 8, 3, 8, "down-cooldown"},
		{5 * time.Second, 8, 2, 8, "down-cooldown"},
		{30 * time.Second, 8, 2, 2, "down"}, // cooldown over: shrink
		{time.Second, 2, 0, 2, "down-cooldown"},
		{40 * time.Second, 2, 0, 1, "down"}, // floor: never under Min
	})
}

// TestDeciderFlapping: a hint oscillating around the current size moves
// the fleet at most once per cooldown window, and the deadband swallows
// the small swings entirely.
func TestDeciderFlapping(t *testing.T) {
	p := Policy{Min: 1, Max: 16, Deadband: 0.25,
		UpCooldown: 10 * time.Second, DownCooldown: 10 * time.Second}
	runSteps(t, p, []step{
		{0, 8, 9, 8, "deadband"}, // |9-8| <= 0.25*8
		{time.Second, 8, 10, 8, "deadband"},
		{time.Second, 8, 6, 8, "deadband"},
		{time.Second, 8, 12, 12, "up"},            // outside the band: move
		{time.Second, 12, 10, 12, "deadband"},     // |10-12| <= 0.25*12
		{time.Second, 12, 4, 12, "down-cooldown"}, // outside band, inside cooldown
		{time.Second, 12, 16, 12, "up-cooldown"},
		{20 * time.Second, 12, 4, 4, "down"}, // quiet long enough: move once
	})
}

// TestDeciderClampViolations: Min/Max are invariants, not suggestions —
// a fleet outside them is repaired immediately, cooldowns and deadband
// notwithstanding.
func TestDeciderClampViolations(t *testing.T) {
	p := Policy{Min: 2, Max: 6, Deadband: 0.5,
		UpCooldown: time.Hour, DownCooldown: time.Hour}
	runSteps(t, p, []step{
		{0, 2, 8, 6, "up"},             // stamp the cooldown clock
		{time.Second, 1, 1, 2, "up"},   // under Min: repaired despite the hour cooldown
		{time.Second, 8, 8, 6, "down"}, // over Max (breaker shrank it): repaired too
		{time.Second, 4, 5, 4, "deadband"},
	})
}

// TestDeciderStepCaps: one decision may not move the fleet by more than
// the step caps, so a wild hint ramps instead of doubling.
func TestDeciderStepCaps(t *testing.T) {
	p := Policy{Min: 1, Max: 16, StepUp: 2, StepDown: 3,
		UpCooldown: time.Second, DownCooldown: time.Second}
	runSteps(t, p, []step{
		{0, 2, 16, 4, "up"},
		{5 * time.Second, 4, 16, 6, "up"},
		{5 * time.Second, 16, 1, 13, "down"},
	})
}

// TestPolicyDefaults: the zero policy gets the stock cooldowns and a
// Max floored at Min.
func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.UpCooldown != 5*time.Second || p.DownCooldown != 30*time.Second {
		t.Fatalf("default cooldowns: %s up, %s down", p.UpCooldown, p.DownCooldown)
	}
	q := Policy{Min: 4, Max: 2}.withDefaults()
	if q.Max != 4 {
		t.Fatalf("Max under Min survived defaults: %d", q.Max)
	}
}
