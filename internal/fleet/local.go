package fleet

import (
	"context"

	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

// LocalLauncher runs replicas as dist.Worker goroutines inside the
// supervisor's own process — the engine behind `ilsim-sweep -fleet N`
// (self-supervised local fleets) and the unit tests' fleet-in-a-box.
type LocalLauncher struct {
	// Client configures the workers' transport to the coordinator.
	Client dist.ClientOptions
	// Slots is each worker's concurrent execution slots (default 1).
	Slots int
	// NewEngine, when non-nil, supplies each worker's engine; nil lets
	// the worker build its default.
	NewEngine func() *exp.Engine
	// Logf, when non-nil, receives the workers' lifecycle events.
	Logf func(format string, args ...any)
}

// Launch starts one in-process worker. Its lifetime is bounded by ctx
// (the supervisor's run context): cancellation is the Kill path.
func (l *LocalLauncher) Launch(ctx context.Context, spec Spec) (Instance, error) {
	w := &dist.Worker{
		Coordinator: spec.Coordinator,
		Name:        spec.Name,
		Fleet:       spec.Fleet,
		Slots:       l.Slots,
		Client:      l.Client,
		Logf:        l.Logf,
	}
	if l.NewEngine != nil {
		w.Engine = l.NewEngine()
	}
	runCtx, cancel := context.WithCancel(ctx)
	inst := &localInstance{name: spec.Name, worker: w, cancel: cancel, done: make(chan struct{})}
	go func() {
		inst.err = w.Run(runCtx)
		cancel()
		close(inst.done)
	}()
	return inst, nil
}

// localInstance adapts an in-process worker to the Instance interface.
type localInstance struct {
	name   string
	worker *dist.Worker
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

func (i *localInstance) Name() string          { return i.name }
func (i *localInstance) Stop()                 { i.worker.Drain() }
func (i *localInstance) Kill()                 { i.cancel() }
func (i *localInstance) Done() <-chan struct{} { return i.done }
func (i *localInstance) Err() error            { return i.err }
