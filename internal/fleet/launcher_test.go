package fleet

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeScript drops an executable shell script into the test dir.
func writeScript(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+body), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

// waitDone asserts an instance's Done closes within a test-scale budget.
func waitDone(t *testing.T, inst Instance, what string) {
	t.Helper()
	select {
	case <-inst.Done():
	case <-time.After(20 * time.Second):
		t.Fatalf("%s: instance never exited", what)
	}
}

// TestExecLauncher covers the process-launcher contract: the generated
// -connect/-name/-fleet flags come first with the inherited args after
// them, Stop delivers the SIGTERM drain signal (clean exit), and Kill
// ends an unresponsive worker with a non-nil Err.
func TestExecLauncher(t *testing.T) {
	// A stand-in worker: record argv, exit 0 on TERM, live forever.
	argvFile := filepath.Join(t.TempDir(), "argv")
	script := writeScript(t, "worker.sh", `echo "$@" > `+argvFile+`
trap 'exit 0' TERM
while :; do sleep 0.05; done`)

	l := &ExecLauncher{Path: script, Args: []string{"-token", "hunter2", "-j", "2"}}
	spec := Spec{Name: "exec-1", Fleet: "execfleet", Coordinator: "127.0.0.1:9"}
	inst, err := l.Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name() != "exec-1" {
		t.Errorf("instance name %q", inst.Name())
	}

	// The child is up and saw the full flag set.
	wantArgv := "-connect 127.0.0.1:9 -name exec-1 -fleet execfleet -token hunter2 -j 2"
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(argvFile); err == nil && len(b) > 0 {
			if got := string(b); got != wantArgv+"\n" {
				t.Errorf("child argv:\n%qwant:\n%q", got, wantArgv+"\n")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	inst.Stop()
	waitDone(t, inst, "after Stop")
	if inst.Err() != nil {
		t.Errorf("SIGTERM drain should exit clean: %v", inst.Err())
	}

	// A worker that ignores TERM yields to Kill, and the error says so.
	stubborn := writeScript(t, "stubborn.sh", `trap '' TERM
while :; do sleep 0.05; done`)
	inst2, err := (&ExecLauncher{Path: stubborn}).Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the trap install
	inst2.Stop()
	select {
	case <-inst2.Done():
		t.Fatal("TERM-immune child exited on Stop")
	case <-time.After(200 * time.Millisecond):
	}
	inst2.Kill()
	waitDone(t, inst2, "after Kill")
	if inst2.Err() == nil {
		t.Error("killed child reported a clean exit")
	}
}

// TestCmdTemplateLauncher covers the template launcher: the launch
// command renders the Spec fields and stays in the foreground, Stop runs
// the terminate template (which here flips the file the launch loop
// watches), and the instance exits clean.
func TestCmdTemplateLauncher(t *testing.T) {
	dir := t.TempDir()
	l, err := NewCmdTemplateLauncher(
		`echo "{{.Name}} {{.Fleet}} {{.Coordinator}}" > `+dir+`/seen-{{.Name}}
while [ ! -f `+dir+`/stop-{{.Name}} ]; do sleep 0.02; done`,
		`touch `+dir+`/stop-{{.Name}}`,
	)
	if err != nil {
		t.Fatal(err)
	}
	l.Logf = t.Logf

	spec := Spec{Name: "tmpl-1", Fleet: "lab", Coordinator: "coord:8080"}
	inst, err := l.Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// The launch template rendered every Spec field.
	seen := filepath.Join(dir, "seen-tmpl-1")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(seen); err == nil && len(b) > 0 {
			if got := string(b); got != "tmpl-1 lab coord:8080\n" {
				t.Errorf("rendered launch saw %q", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("launch command never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stop runs the terminate template; the launch loop notices and ends.
	inst.Stop()
	waitDone(t, inst, "after terminate")
	if inst.Err() != nil {
		t.Errorf("terminated launch command: %v", inst.Err())
	}
}

// TestCmdTemplateLauncherValidation: empty and unparsable templates are
// rejected at construction, not at launch time.
func TestCmdTemplateLauncherValidation(t *testing.T) {
	if _, err := NewCmdTemplateLauncher("", ""); err == nil {
		t.Error("empty launch template accepted")
	}
	if _, err := NewCmdTemplateLauncher("{{.Name", ""); err == nil {
		t.Error("unparsable launch template accepted")
	}
	if _, err := NewCmdTemplateLauncher("echo ok", "{{.Oops"); err == nil {
		t.Error("unparsable terminate template accepted")
	}
}
