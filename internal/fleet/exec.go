package fleet

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"syscall"
)

// ExecLauncher runs replicas as local child processes — normally
// `ilsim-workerd -connect <coord> -name <replica> -fleet <label>` plus
// whatever hardening flags (-token, -tls-*, -chaos, -j) the daemon
// inherited from its own command line.
type ExecLauncher struct {
	// Path is the worker binary to spawn.
	Path string
	// Args are appended after the generated -connect/-name/-fleet flags,
	// carrying the inherited transport and engine flags verbatim.
	Args []string
	// Stdout and Stderr receive the child's output streams; nil discards.
	Stdout, Stderr io.Writer
}

// Launch starts one worker process. The child is placed in its own
// process group so Stop and Kill signal the worker without touching the
// supervisor.
func (l *ExecLauncher) Launch(ctx context.Context, spec Spec) (Instance, error) {
	args := append([]string{"-connect", spec.Coordinator, "-name", spec.Name, "-fleet", spec.Fleet}, l.Args...)
	cmd := exec.Command(l.Path, args...)
	cmd.Stdout = l.Stdout
	cmd.Stderr = l.Stderr
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: launch %s: %w", spec.Name, err)
	}
	inst := &procInstance{
		name: spec.Name,
		done: make(chan struct{}),
		// ilsim-workerd's signal contract: the first SIGTERM drains
		// (finish in-flight, release the rest, exit 0), a second aborts.
		stop: func() { _ = cmd.Process.Signal(syscall.SIGTERM) },
		kill: func() { _ = cmd.Process.Kill() },
	}
	go func() {
		inst.err = cmd.Wait()
		close(inst.done)
	}()
	return inst, nil
}

// procInstance adapts a started command (worker child, or a rendered
// shell template) to the Instance interface. Shared by ExecLauncher and
// CmdTemplateLauncher.
type procInstance struct {
	name string
	done chan struct{}
	err  error
	stop func()
	kill func()

	once sync.Once // Stop fires its action at most once
}

func (p *procInstance) Name() string { return p.name }

func (p *procInstance) Stop() {
	p.once.Do(func() {
		select {
		case <-p.done:
		default:
			p.stop()
		}
	})
}

func (p *procInstance) Kill() {
	select {
	case <-p.done:
	default:
		p.kill()
	}
}

func (p *procInstance) Done() <-chan struct{} { return p.done }
func (p *procInstance) Err() error            { return p.err }
