package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ilsim/internal/chaos"
	"ilsim/internal/core"
	"ilsim/internal/dist"
	"ilsim/internal/exp"
)

// fleetJobs concatenates the dual-abstraction job sets of several sweeps
// — wide enough campaigns that the autoscaling hint has something to
// chew on (each sweep point pairs into HSAIL + GCN3).
func fleetJobs(t *testing.T, sweeps ...string) []exp.Job {
	t.Helper()
	var pts []exp.Point
	for _, sw := range sweeps {
		p, err := exp.SweepPoints(sw)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p...)
	}
	return exp.PairJobs("ArrayBW", 1, pts, core.RunOptions{})
}

// localFingerprints runs jobs on a local parallel engine — the reference
// every fleet-driven campaign must match byte for byte.
func localFingerprints(t *testing.T, jobs []exp.Job) [][]byte {
	t.Helper()
	results, _, err := exp.New(4).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	fps := make([][]byte, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("local job %s failed: %v", r.Job, r.Err)
		}
		fps[i] = r.Run.Fingerprint()
	}
	return fps
}

// checkFingerprints asserts the campaign results match the local
// reference in submission order.
func checkFingerprints(t *testing.T, results []exp.Result, want [][]byte) {
	t.Helper()
	if len(results) != len(want) {
		t.Fatalf("%d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s) failed: %v", i, r.Job, r.Err)
		}
		if !bytes.Equal(r.Run.Fingerprint(), want[i]) {
			t.Errorf("job %d (%s): fleet fingerprint differs from local", i, r.Job)
		}
	}
}

// slowEngine delays every job by d so campaigns outlive several
// supervisor reconcile ticks and the EWMA-driven scaling hint is stable.
func slowEngine(jobs []exp.Job, d time.Duration) *exp.Engine {
	eng := exp.New(0)
	eng.Faults = exp.NewFaultPlan()
	for _, job := range jobs {
		eng.Faults.Set(job.String(), exp.Fault{Delay: d})
	}
	return eng
}

// chaosClient wraps a client transport in a seeded chaos plan.
func chaosClient(t *testing.T, spec string) dist.ClientOptions {
	t.Helper()
	plan, err := chaos.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return dist.ClientOptions{Wrap: func(rt http.RoundTripper) http.RoundTripper {
		return plan.Transport(rt)
	}}
}

// logRecorder captures supervisor log lines (and forwards them to the
// test log) so assertions can check which lifecycle events fired.
type logRecorder struct {
	t     *testing.T
	mu    sync.Mutex
	lines []string
}

func (l *logRecorder) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	l.mu.Lock()
	l.lines = append(l.lines, line)
	l.mu.Unlock()
	l.t.Logf("%s", line)
}

func (l *logRecorder) count(substr string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, line := range l.lines {
		if strings.Contains(line, substr) {
			n++
		}
	}
	return n
}

// TestSupervisorAutoscaleChaos is the subsystem's acceptance test: under
// a seeded chaos transport (dropped and delayed requests on both the
// workers' and the supervisor's clients), the supervisor grows the fleet
// to the coordinator's WantWorkers hint, shrinks it as the queue drains
// — losing zero jobs to the coordinator-mediated drains — winds the
// fleet down when the campaign finishes, and the results are
// byte-identical to a local run.
func TestSupervisorAutoscaleChaos(t *testing.T) {
	jobs := fleetJobs(t, "banks", "ib", "l1i") // 30 jobs
	want := localFingerprints(t, jobs)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	c := dist.NewCoordinator(dist.Options{
		Addr:     "127.0.0.1:0",
		LongPoll: 50 * time.Millisecond,
		// A long TTL means a drained worker's unstarted remainder comes
		// back quickly only through the explicit POST /release path — if a
		// drain lost jobs, the campaign would stall far past this test's
		// patience waiting for lease expiry.
		LeaseTTL: 60 * time.Second,
		// A tight horizon makes the hint demand several workers while the
		// queue is deep, then decay as it drains: the test sees both a
		// scale-up and a loss-free scale-down in one campaign.
		ScaleHorizon: 150 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type outcome struct {
		results []exp.Result
		metrics exp.Metrics
		err     error
	}
	out := make(chan outcome, 1)
	go func() {
		results, metrics, err := c.RunContext(ctx, jobs)
		out <- outcome{results, metrics, err}
	}()

	rec := &logRecorder{t: t}
	sup := &Supervisor{
		Coordinator: c.Addr(),
		Client:      chaosClient(t, "seed=11,drop=0.05,delay=5ms:0.1"),
		Fleet:       "chaosfleet",
		Launcher: &LocalLauncher{
			Client: chaosClient(t, "seed=7,drop=0.05,delay=5ms:0.1"),
			Slots:  1,
			NewEngine: func() *exp.Engine {
				return slowEngine(jobs, 25*time.Millisecond)
			},
		},
		Policy: Policy{Min: 1, Max: 4,
			UpCooldown: 20 * time.Millisecond, DownCooldown: 100 * time.Millisecond},
		SlotsPerWorker: 1,
		Poll:           25 * time.Millisecond,
		DrainGrace:     10 * time.Second,
		Logf:           rec.logf,
	}

	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()

	// Sample the fleet while it runs: the peak must reach the hinted
	// ceiling.
	maxRunning := 0
	sample := time.NewTicker(5 * time.Millisecond)
	defer sample.Stop()
	var oc outcome
sampling:
	for {
		select {
		case oc = <-out:
			break sampling
		case <-sample.C:
			snap := sup.Snapshot()
			if snap.Running > maxRunning {
				maxRunning = snap.Running
			}
		}
	}
	if oc.err != nil {
		t.Fatalf("campaign: %v", oc.err)
	}
	if err := <-supDone; err != nil {
		t.Fatalf("supervisor: %v", err)
	}

	// Convergence: the hint wanted several slots for a 30-job queue at
	// ~25ms/job against a 150ms horizon; the fleet must have grown to the
	// policy ceiling, and the decay must have drained someone.
	if maxRunning != 4 {
		t.Errorf("fleet peaked at %d replicas, want the Max of 4", maxRunning)
	}
	if drains := rec.count("draining"); drains == 0 {
		t.Error("no scale-down drain observed in the supervisor log")
	}
	if rec.count("scaling up") == 0 {
		t.Error("no scale-up recorded")
	}

	// The supervisor exited because the fleet is empty.
	if snap := sup.Snapshot(); len(snap.Replicas) > 0 {
		t.Errorf("replicas survived the wind-down: %+v", snap.Replicas)
	}

	// Loss-free: every job completed exactly once with results
	// byte-identical to the local reference, despite drains and chaos.
	checkFingerprints(t, oc.results, want)
	if oc.metrics.Failed != 0 {
		t.Fatalf("metrics: %+v", oc.metrics)
	}
}

// exitInstance is a replica that is already dead when Launch returns —
// the crash-loop simulator.
type exitInstance struct {
	name string
	err  error
	done chan struct{}
}

func newExitInstance(name string, err error) *exitInstance {
	done := make(chan struct{})
	close(done)
	return &exitInstance{name: name, err: err, done: done}
}

func (i *exitInstance) Name() string          { return i.name }
func (i *exitInstance) Stop()                 {}
func (i *exitInstance) Kill()                 {}
func (i *exitInstance) Done() <-chan struct{} { return i.done }
func (i *exitInstance) Err() error            { return i.err }

// crashyLauncher crashes one lineage on every launch — relaunches reuse
// the lineage name, so the victim keeps crashing until the breaker gives
// up on it — and delegates everything else.
type crashyLauncher struct {
	inner    Launcher
	victim   string
	mu       sync.Mutex
	launches int
}

func (l *crashyLauncher) Launch(ctx context.Context, spec Spec) (Instance, error) {
	if spec.Name == l.victim {
		l.mu.Lock()
		l.launches++
		l.mu.Unlock()
		return newExitInstance(spec.Name, errors.New("simulated crash")), nil
	}
	return l.inner.Launch(ctx, spec)
}

// TestSupervisorBreaker: a lineage that crashes on every (re)launch
// trips the crash-loop breaker after BreakerCrashes attempts, lowers the
// effective ceiling, and the surviving replica still finishes the
// campaign with results identical to a local run — a broken binary slows
// the fleet, never the campaign.
func TestSupervisorBreaker(t *testing.T) {
	jobs := fleetJobs(t, "banks") // 10 jobs
	want := localFingerprints(t, jobs)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c := dist.NewCoordinator(dist.Options{
		Addr:     "127.0.0.1:0",
		LongPoll: 50 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make(chan error, 1)
	var results []exp.Result
	var metrics exp.Metrics
	go func() {
		var err error
		results, metrics, err = c.RunContext(ctx, jobs)
		out <- err
	}()

	rec := &logRecorder{t: t}
	crashy := &crashyLauncher{
		victim: "breaker-2", // the second bootstrap lineage
		inner: &LocalLauncher{Slots: 1, NewEngine: func() *exp.Engine {
			return slowEngine(jobs, 10*time.Millisecond)
		}},
	}
	sup := &Supervisor{
		Coordinator:    c.Addr(),
		Fleet:          "breaker",
		Launcher:       crashy,
		Policy:         Policy{Min: 2, Max: 2, UpCooldown: time.Millisecond, DownCooldown: time.Millisecond},
		Poll:           10 * time.Millisecond,
		BackoffMin:     time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		BreakerCrashes: 3,
		DrainGrace:     10 * time.Second,
		Logf:           rec.logf,
	}
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()

	if err := <-out; err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if err := <-supDone; err != nil {
		t.Fatalf("supervisor: %v", err)
	}

	// The breaker tripped after exactly BreakerCrashes launches of the
	// doomed lineage, and stopped relaunching it.
	crashy.mu.Lock()
	launches := crashy.launches
	crashy.mu.Unlock()
	if launches != sup.BreakerCrashes {
		t.Errorf("doomed lineage launched %d times, want %d (breaker should stop the loop)", launches, sup.BreakerCrashes)
	}
	if rec.count("breaker tripped") != 1 {
		t.Errorf("breaker log lines: %d, want 1", rec.count("breaker tripped"))
	}
	snap := sup.Snapshot()
	if snap.Broken != 1 {
		t.Errorf("snapshot.Broken = %d, want 1", snap.Broken)
	}
	if !strings.Contains(snap.Summary(), "1 broken") {
		t.Errorf("summary does not surface the broken lineage: %s", snap.Summary())
	}

	// The campaign still finished, correctly.
	checkFingerprints(t, results, want)
	if metrics.Failed != 0 {
		t.Fatalf("metrics: %+v", metrics)
	}
}

// TestSupervisorGivesUpOnDeadCoordinator: once the coordinator is gone
// past the shared StatusTracker budget, the supervisor kills the fleet
// and reports the terminal error instead of spinning forever.
func TestSupervisorGivesUpOnDeadCoordinator(t *testing.T) {
	c := dist.NewCoordinator(dist.Options{Addr: "127.0.0.1:0", LongPoll: 50 * time.Millisecond})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	addr := c.Addr()

	jobs := fleetJobs(t, "banks")
	go c.RunContext(context.Background(), jobs)

	rec := &logRecorder{t: t}
	sup := &Supervisor{
		Coordinator: addr,
		Fleet:       "orphan",
		Launcher: &LocalLauncher{Slots: 1, NewEngine: func() *exp.Engine {
			return slowEngine(jobs, 50*time.Millisecond)
		}},
		Policy:          Policy{Min: 1, Max: 1},
		Poll:            20 * time.Millisecond,
		StatusMaxMisses: 3,
		Logf:            rec.logf,
	}
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(context.Background()) }()

	// Let the supervisor make first contact, then yank the coordinator.
	deadline := time.Now().Add(10 * time.Second)
	for sup.Snapshot().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fleet never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // a few status polls: contact established
	c.Close()

	select {
	case err := <-supDone:
		if err == nil || !strings.Contains(err.Error(), "coordinator gone") {
			t.Fatalf("supervisor exit: %v, want the tracker's give-up error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("supervisor never gave up on the dead coordinator")
	}
	if snap := sup.Snapshot(); snap.Running+snap.Draining+snap.Backoff > 0 {
		t.Errorf("replicas survived the abort: %+v", snap.Replicas)
	}
}
