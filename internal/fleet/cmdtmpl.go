package fleet

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"syscall"
	"text/template"
	"time"
)

// CmdTemplateLauncher runs replicas through user-supplied shell command
// templates — the escape hatch for fleets the supervisor cannot fork
// directly: ssh to another host, a cloud CLI, kubectl. Templates are
// text/template over the Spec fields:
//
//	launch:    ssh {{.Name}}.lab 'ilsim-workerd -connect {{.Coordinator}} -name {{.Name}} -fleet {{.Fleet}}'
//	terminate: ssh {{.Name}}.lab 'pkill -TERM -f "ilsim-workerd.*-name {{.Name}}"'
//
// The launch command must stay in the foreground for the replica's
// lifetime: the supervisor treats its exit as the replica's exit (ssh
// without -f does this naturally). The optional terminate template is
// the graceful Stop path; without one, Stop falls back to SIGTERM on the
// launch command itself, which reaches a remote worker only if the
// transport forwards it.
type CmdTemplateLauncher struct {
	launch    *template.Template
	terminate *template.Template
	// Shell interprets the rendered command (default /bin/sh).
	Shell string
	// Stdout and Stderr receive the launch command's output; nil
	// discards.
	Stdout, Stderr io.Writer
	// TerminateTimeout bounds each terminate command run (default 30s).
	TerminateTimeout time.Duration
	// Logf, when non-nil, receives terminate-command failures.
	Logf func(format string, args ...any)
}

// NewCmdTemplateLauncher parses the launch and terminate templates;
// terminate may be empty.
func NewCmdTemplateLauncher(launch, terminate string) (*CmdTemplateLauncher, error) {
	if strings.TrimSpace(launch) == "" {
		return nil, fmt.Errorf("fleet: launch template is empty")
	}
	lt, err := template.New("launch").Parse(launch)
	if err != nil {
		return nil, fmt.Errorf("fleet: parse launch template: %w", err)
	}
	l := &CmdTemplateLauncher{launch: lt}
	if strings.TrimSpace(terminate) != "" {
		tt, err := template.New("terminate").Parse(terminate)
		if err != nil {
			return nil, fmt.Errorf("fleet: parse terminate template: %w", err)
		}
		l.terminate = tt
	}
	return l, nil
}

// render executes a template over the spec.
func render(t *template.Template, spec Spec) (string, error) {
	var b strings.Builder
	if err := t.Execute(&b, spec); err != nil {
		return "", fmt.Errorf("fleet: render %s template for %s: %w", t.Name(), spec.Name, err)
	}
	return b.String(), nil
}

// Launch renders and starts the launch command in its own process group.
func (l *CmdTemplateLauncher) Launch(ctx context.Context, spec Spec) (Instance, error) {
	cmdline, err := render(l.launch, spec)
	if err != nil {
		return nil, err
	}
	shell := l.Shell
	if shell == "" {
		shell = "/bin/sh"
	}
	cmd := exec.Command(shell, "-c", cmdline)
	cmd.Stdout = l.Stdout
	cmd.Stderr = l.Stderr
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: launch %s (%q): %w", spec.Name, cmdline, err)
	}
	inst := &procInstance{
		name: spec.Name,
		done: make(chan struct{}),
		// Terminate commands can take seconds (ssh handshakes); run them
		// off the supervisor's loop.
		stop: func() { go l.runTerminate(spec, func() { _ = cmd.Process.Signal(syscall.SIGTERM) }) },
		kill: func() {
			// Kill the local command; the terminate template (if any) is
			// the only reach we have to the remote end, so fire it too.
			_ = cmd.Process.Kill()
			go l.runTerminate(spec, func() {})
		},
	}
	go func() {
		inst.err = cmd.Wait()
		close(inst.done)
	}()
	return inst, nil
}

// runTerminate runs the terminate template if one is set, or falls back
// to the given local action.
func (l *CmdTemplateLauncher) runTerminate(spec Spec, fallback func()) {
	if l.terminate == nil {
		fallback()
		return
	}
	cmdline, err := render(l.terminate, spec)
	if err != nil {
		l.logf("fleet: %v", err)
		fallback()
		return
	}
	shell := l.Shell
	if shell == "" {
		shell = "/bin/sh"
	}
	timeout := l.TerminateTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if out, err := exec.CommandContext(ctx, shell, "-c", cmdline).CombinedOutput(); err != nil {
		l.logf("fleet: terminate %s (%q): %v: %s", spec.Name, cmdline, err, strings.TrimSpace(string(out)))
	}
}

func (l *CmdTemplateLauncher) logf(format string, args ...any) {
	if l.Logf != nil {
		l.Logf(format, args...)
	}
}
