// Package fleet closes the autoscaling loop the coordinator's /status
// hints open: a Supervisor polls dist.FetchStatus, converts the
// WantWorkers slot target into a desired replica count through a
// hysteresis/cooldown Policy, and drives a pluggable Launcher to make the
// live fleet match — growing by launching replicas, shrinking by asking
// the coordinator to drain victims so not one leased job is lost.
//
// The pieces compose top-down:
//
//	Supervisor  reconciliation loop: status → Decider → launch/drain/reap
//	Decider     pure policy math (deadband, cooldowns, min/max, step caps)
//	Launcher    how replicas come to exist — three implementations:
//	  ExecLauncher         local ilsim-workerd child processes
//	  CmdTemplateLauncher  user shell templates (ssh, cloud CLIs, k8s)
//	  LocalLauncher        in-process dist.Worker goroutines (-fleet N)
//
// Scale-down is coordinator-mediated and loss-free: the supervisor POSTs
// /drain for each victim, the coordinator flags the worker's next lease
// poll or heartbeat, the worker finishes its in-flight job, hands the
// unstarted remainder back via POST /release, and exits its run loop —
// only then does the supervisor reap the process. Victims are chosen to
// minimize disruption: lineages still waiting out a crash backoff go
// first (free), then quarantined workers, then idle ones, then the
// slowest.
//
// Crashes are survived, crash loops are not: a replica that exits while
// the campaign is still running relaunches under the same name with
// exponential backoff, and BreakerCrashes consecutive crashes abandon the
// lineage — reducing the fleet's effective ceiling so a universally
// broken binary cannot respawn forever while healthy replicas keep the
// campaign moving.
package fleet

import "context"

// Spec describes the replica a Launcher should bring up: the worker name
// it must join under (lineage identity — relaunches reuse it), the fleet
// label it must announce, and the coordinator it should dial.
type Spec struct {
	Name        string
	Fleet       string
	Coordinator string
}

// Instance is one live replica under supervision. Done is closed when
// the replica is gone — process exited, remote command returned, worker
// goroutine finished — after which Err reports how it ended (nil for a
// clean exit).
type Instance interface {
	// Name returns the worker name from the Spec.
	Name() string
	// Stop asks the replica to shut down gracefully: SIGTERM for a child
	// process (ilsim-workerd's drain signal), the terminate template for
	// CmdTemplateLauncher, Worker.Drain in-process. Safe to call more
	// than once. The supervisor uses this as the fallback when a
	// coordinator-mediated drain goes unanswered.
	Stop()
	// Kill terminates the replica immediately; held leases lapse via
	// their TTL. Safe to call more than once.
	Kill()
	// Done is closed once the replica has fully exited.
	Done() <-chan struct{}
	// Err reports how the replica exited; valid only after Done closes.
	Err() error
}

// Launcher brings replicas into existence. Launch must return promptly
// (start the process or goroutine, don't wait for it to join) so the
// supervisor's loop never stalls behind a slow target.
type Launcher interface {
	Launch(ctx context.Context, spec Spec) (Instance, error)
}
