package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ilsim/internal/dist"
)

// Supervisor is the reconciliation loop: poll the coordinator's status,
// decide a replica target through the Policy, and drive the Launcher
// until the live fleet matches. It exits nil once the campaign finishes
// and every replica is gone, or with an error when the coordinator stays
// unreachable past the shared give-up policy (dist.StatusTracker).
type Supervisor struct {
	// Coordinator is the coordinator address replicas should join.
	Coordinator string
	// Client is the supervisor's own transport to the coordinator
	// (status polls and drain requests); launchers configure the
	// replicas' transport themselves.
	Client dist.ClientOptions
	// Fleet is the label replicas announce at join and the prefix of
	// generated replica names (default "fleet").
	Fleet string
	// Launcher brings replicas up; required.
	Launcher Launcher
	// Policy bounds the scaling decisions.
	Policy Policy
	// SlotsPerWorker converts the coordinator's WantWorkers slot target
	// into replica counts (default 1). Set it to the -j value the
	// launched workers run with.
	SlotsPerWorker int
	// Poll is the status poll and reconcile interval (default 2s).
	Poll time.Duration
	// DrainGrace bounds how long a drained replica may linger: past it
	// the replica is Stopped, past twice it is Killed (default 30s).
	DrainGrace time.Duration
	// BackoffMin and BackoffMax bound the exponential relaunch backoff
	// after a crash (defaults 500ms and 30s).
	BackoffMin, BackoffMax time.Duration
	// BreakerCrashes is the crash-loop breaker: this many consecutive
	// crashes abandon the lineage and lower the fleet's effective Max by
	// one (default 5).
	BreakerCrashes int
	// StatusMaxMisses overrides the tracker's consecutive-failure budget
	// after first contact (default dist.StatusTracker's 5).
	StatusMaxMisses int
	// Logf, when non-nil, receives supervisor lifecycle events.
	Logf func(format string, args ...any)

	mu         sync.Mutex
	replicas   map[string]*replica
	seq        int
	broken     int
	decider    Decider
	status     dist.Status
	haveStatus bool
	target     int
	reason     string
	finished   bool
	finishedAt time.Time
	wake       chan struct{}
	logf       func(format string, args ...any)
}

type replicaState int

const (
	stateRunning replicaState = iota
	stateBackoff
	stateDraining
)

func (st replicaState) String() string {
	switch st {
	case stateRunning:
		return "running"
	case stateBackoff:
		return "backoff"
	default:
		return "draining"
	}
}

// replica is one lineage under supervision: the name survives crashes
// (relaunches rejoin under it), so the coordinator's per-worker history
// and the crash counter both stay coherent.
type replica struct {
	name         string
	seq          int
	state        replicaState
	inst         Instance // nil while waiting out a backoff
	crashes      int      // consecutive; reset by a clean drain, never by time
	backoffUntil time.Time
	drainAt      time.Time
	stopped      bool // Stop escalation fired
	killed       bool // Kill escalation fired
}

// Run reconciles until the campaign completes (nil), the context ends
// (ctx.Err()), or the coordinator is given up on.
func (s *Supervisor) Run(ctx context.Context) error {
	if s.Launcher == nil {
		return errors.New("fleet: supervisor needs a launcher")
	}
	if s.Coordinator == "" {
		return errors.New("fleet: supervisor needs a coordinator address")
	}
	// Snapshot may run concurrently from the first launch on; defaults
	// and shared state are installed under the same lock it takes.
	s.mu.Lock()
	if s.Fleet == "" {
		s.Fleet = "fleet"
	}
	if s.SlotsPerWorker <= 0 {
		s.SlotsPerWorker = 1
	}
	if s.Poll <= 0 {
		s.Poll = 2 * time.Second
	}
	if s.DrainGrace <= 0 {
		s.DrainGrace = 30 * time.Second
	}
	if s.BackoffMin <= 0 {
		s.BackoffMin = 500 * time.Millisecond
	}
	if s.BackoffMax < s.BackoffMin {
		s.BackoffMax = 30 * time.Second
		if s.BackoffMax < s.BackoffMin {
			s.BackoffMax = s.BackoffMin
		}
	}
	if s.BreakerCrashes <= 0 {
		s.BreakerCrashes = 5
	}
	s.logf = s.Logf
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.replicas = make(map[string]*replica)
	s.wake = make(chan struct{}, 1)
	s.decider = Decider{Policy: s.Policy.withDefaults()}
	s.mu.Unlock()
	tracker := dist.StatusTracker{MaxMisses: s.StatusMaxMisses}

	s.logf("fleet: supervising %q against %s (min %d, max %d, %d slots/worker)",
		s.Fleet, s.Coordinator, s.decider.Policy.Min, s.decider.Policy.Max, s.SlotsPerWorker)

	// Bootstrap: with no status yet the decider clamps to Min, launching
	// the replicas whose observed runtimes will seed the hint.
	s.reconcile(ctx, time.Now())

	ticker := time.NewTicker(s.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			s.killAll("context canceled")
			return ctx.Err()
		case <-s.wake:
		case <-ticker.C:
		}
		now := time.Now()
		if !s.finished {
			st, err := dist.FetchStatus(ctx, s.Coordinator, s.Client)
			if terr := tracker.Observe(err); terr != nil {
				s.killAll(terr.Error())
				return terr
			}
			if err == nil {
				s.mu.Lock()
				s.status, s.haveStatus = st, true
				s.mu.Unlock()
				if st.Finished {
					s.finished, s.finishedAt = true, now
					s.logf("fleet: campaign finished (%d/%d done); winding the fleet down", st.Done, st.Total)
				}
			}
		}
		s.reap(ctx, now)
		if s.finished {
			if s.windDown(now) {
				s.logf("fleet: all replicas gone; supervisor exiting")
				return nil
			}
			continue
		}
		s.reconcile(ctx, now)
	}
}

// poke wakes the run loop without waiting out the poll interval.
func (s *Supervisor) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// watch wakes the loop when an instance exits.
func (s *Supervisor) watch(ctx context.Context, inst Instance) {
	go func() {
		select {
		case <-inst.Done():
			s.poke()
		case <-ctx.Done():
		}
	}()
}

// launch starts a replica for an existing lineage record. Callers hold mu.
func (s *Supervisor) launchLocked(ctx context.Context, r *replica) error {
	inst, err := s.Launcher.Launch(ctx, Spec{Name: r.name, Fleet: s.Fleet, Coordinator: s.Coordinator})
	if err != nil {
		return err
	}
	r.inst, r.state = inst, stateRunning
	r.stopped, r.killed = false, false
	s.watch(ctx, inst)
	return nil
}

// reap folds replica exits back into the ledger: clean drains disappear,
// crashes schedule a backoff relaunch or trip the breaker, expired
// backoffs relaunch, and overdue drains escalate Stop then Kill.
func (s *Supervisor) reap(ctx context.Context, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, r := range s.replicas {
		if r.inst != nil {
			select {
			case <-r.inst.Done():
				err := r.inst.Err()
				switch {
				case s.finished || r.state == stateDraining:
					if err != nil {
						s.logf("fleet: %s exited while draining: %v", name, err)
					} else {
						s.logf("fleet: %s drained and exited", name)
					}
					delete(s.replicas, name)
					continue
				case err == nil:
					// Workers exit cleanly only when the campaign is over (or
					// after a drain, handled above). On a fast campaign the
					// worker can see completion before our next status poll
					// does — believe it rather than booking a crash, or the
					// relaunch would chase a coordinator that is already gone.
					s.finished, s.finishedAt = true, now
					s.logf("fleet: %s exited cleanly (campaign complete); winding the fleet down", name)
					delete(s.replicas, name)
					continue
				default:
					r.inst = nil
					s.crashLocked(r, now, err)
					if r.crashes >= s.BreakerCrashes {
						continue // breaker deleted the lineage
					}
				}
			default:
			}
		}
		if r.state == stateBackoff && r.inst == nil && !now.Before(r.backoffUntil) {
			if err := s.launchLocked(ctx, r); err != nil {
				s.crashLocked(r, now, err)
			} else {
				s.logf("fleet: %s relaunched after %d crash(es)", name, r.crashes)
			}
			continue
		}
		if r.state == stateDraining && r.inst != nil {
			if !r.stopped && now.Sub(r.drainAt) >= s.DrainGrace {
				s.logf("fleet: %s ignored its drain for %s; stopping it", name, s.DrainGrace)
				r.inst.Stop()
				r.stopped = true
			} else if !r.killed && now.Sub(r.drainAt) >= 2*s.DrainGrace {
				s.logf("fleet: %s still up %s after its drain; killing it", name, 2*s.DrainGrace)
				r.inst.Kill()
				r.killed = true
			}
		}
	}
}

// crashLocked records one crash (or failed launch) for a lineage:
// exponential backoff up to BackoffMax, and at BreakerCrashes consecutive
// failures the breaker trips — the lineage is abandoned and the fleet's
// effective ceiling drops by one, so a binary that always crashes cannot
// respawn forever while healthy replicas keep the campaign moving.
// Callers hold mu.
func (s *Supervisor) crashLocked(r *replica, now time.Time, err error) {
	r.crashes++
	if r.crashes >= s.BreakerCrashes {
		s.broken++
		delete(s.replicas, r.name)
		s.logf("fleet: %s crashed %d times in a row (%v); breaker tripped, lineage abandoned (effective max now %d)",
			r.name, r.crashes, err, s.effectiveMaxLocked())
		return
	}
	backoff := s.BackoffMin << (r.crashes - 1)
	if backoff > s.BackoffMax || backoff <= 0 {
		backoff = s.BackoffMax
	}
	r.state, r.backoffUntil = stateBackoff, now.Add(backoff)
	s.logf("fleet: %s crashed (%v); relaunch %d/%d in %s", r.name, err, r.crashes+1, s.BreakerCrashes, backoff)
}

// effectiveMaxLocked is the policy ceiling minus tripped breakers; 0 or
// negative Policy.Max means no ceiling and breakers only stop their own
// lineage's relaunches. Callers hold mu.
func (s *Supervisor) effectiveMaxLocked() int {
	if s.Policy.Max <= 0 {
		return 0
	}
	max := s.Policy.Max - s.broken
	if max < 0 {
		max = 0
	}
	return max
}

// reconcile computes the replica target from the latest status and acts
// on the difference: launching fresh lineages to grow, draining victims
// to shrink.
func (s *Supervisor) reconcile(ctx context.Context, now time.Time) {
	s.mu.Lock()
	current, running := 0, 0
	for _, r := range s.replicas {
		switch r.state {
		case stateRunning:
			current++
			running++
		case stateBackoff:
			current++
		}
	}
	// Convert the slot hint into replicas, discounting slots we do not
	// manage (manual workers, other fleets): the coordinator's Slots
	// gauge counts the whole live fleet, ours included, so the foreign
	// share is what remains after our running replicas' slots.
	want := current
	if s.haveStatus && s.status.WantWorkers > 0 {
		foreign := s.status.Slots - running*s.SlotsPerWorker
		if foreign < 0 {
			foreign = 0
		}
		need := s.status.WantWorkers - foreign
		want = (need + s.SlotsPerWorker - 1) / s.SlotsPerWorker
		if want < 0 {
			want = 0
		}
	}
	s.decider.Policy = s.Policy.withDefaults()
	s.decider.Policy.Max = s.effectiveMaxLocked()
	target, reason := s.decider.Decide(now, current, want)
	s.target, s.reason = target, reason

	switch {
	case target > current:
		s.logf("fleet: scaling up %d -> %d replicas (hint wants %d)", current, target, want)
		for i := current; i < target; i++ {
			s.seq++
			r := &replica{name: fmt.Sprintf("%s-%d", s.Fleet, s.seq), seq: s.seq}
			if err := s.launchLocked(ctx, r); err != nil {
				s.logf("fleet: %v (retrying next tick)", err)
				break
			}
			s.replicas[r.name] = r
			s.logf("fleet: launched %s", r.name)
		}
		s.mu.Unlock()
	case target < current:
		victims := s.pickVictimsLocked(current - target)
		var drains []string
		for _, r := range victims {
			if r.state == stateBackoff {
				// Never launched its replacement yet: dropping the
				// lineage is a free scale-down.
				delete(s.replicas, r.name)
				s.logf("fleet: dropped backed-off lineage %s (scale-down)", r.name)
				continue
			}
			r.state, r.drainAt = stateDraining, now
			drains = append(drains, r.name)
		}
		s.mu.Unlock()
		for _, name := range drains {
			if err := dist.RequestDrain(ctx, s.Coordinator, name, s.Client); err != nil {
				s.logf("fleet: drain request for %s failed: %v (retrying next tick)", name, err)
				s.mu.Lock()
				if r := s.replicas[name]; r != nil && r.state == stateDraining {
					r.state = stateRunning
				}
				s.mu.Unlock()
				continue
			}
			s.logf("fleet: draining %s (scale-down %d -> %d)", name, current, target)
		}
	default:
		s.mu.Unlock()
	}
}

// pickVictimsLocked ranks this fleet's lineages by eviction preference —
// backed-off lineages (free), then quarantined workers (the coordinator
// refuses them leases anyway), then idle ones, then the slowest, newest
// first on ties — and returns the n cheapest. Callers hold mu.
func (s *Supervisor) pickVictimsLocked(n int) []*replica {
	byName := make(map[string]dist.WorkerStatus, len(s.status.PerWorker))
	for _, ws := range s.status.PerWorker {
		byName[ws.Name] = ws
	}
	var cands []*replica
	for _, r := range s.replicas {
		if r.state == stateRunning || r.state == stateBackoff {
			cands = append(cands, r)
		}
	}
	class := func(r *replica) int {
		if r.state == stateBackoff {
			return 0
		}
		ws, ok := byName[r.name]
		switch {
		case ok && ws.Quarantined:
			return 1
		case !ok || ws.Held == 0:
			return 2 // idle, or never joined — nothing in flight to move
		default:
			return 3
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		ci, cj := class(cands[i]), class(cands[j])
		if ci != cj {
			return ci < cj
		}
		ti, tj := byName[cands[i].name].Throughput, byName[cands[j].name].Throughput
		if ti != tj {
			return ti < tj
		}
		return cands[i].seq > cands[j].seq
	})
	if n > len(cands) {
		n = len(cands)
	}
	return cands[:n]
}

// windDown runs the post-campaign exit: workers leave on their own once
// the coordinator hands each slot a Done reply, backed-off lineages are
// dropped, and stragglers escalate Stop then Kill on the DrainGrace
// clock. Reports whether the fleet is empty.
func (s *Supervisor) windDown(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, r := range s.replicas {
		if r.state == stateBackoff && r.inst == nil {
			delete(s.replicas, name)
			continue
		}
		if r.inst == nil {
			delete(s.replicas, name)
			continue
		}
		age := now.Sub(s.finishedAt)
		if !r.stopped && age >= s.DrainGrace {
			s.logf("fleet: %s still up %s after the campaign finished; stopping it", name, s.DrainGrace)
			r.inst.Stop()
			r.stopped = true
		} else if !r.killed && age >= 2*s.DrainGrace {
			s.logf("fleet: %s ignored its stop; killing it", name)
			r.inst.Kill()
			r.killed = true
		}
	}
	return len(s.replicas) == 0
}

// killAll terminates every replica immediately — the abort path for a
// canceled context or an abandoned coordinator — and waits briefly for
// the instances to go down.
func (s *Supervisor) killAll(why string) {
	s.mu.Lock()
	var waits []<-chan struct{}
	for _, r := range s.replicas {
		if r.inst != nil {
			r.inst.Kill()
			waits = append(waits, r.inst.Done())
		}
	}
	s.replicas = make(map[string]*replica)
	s.mu.Unlock()
	if len(waits) > 0 {
		s.logf("fleet: killing %d replica(s): %s", len(waits), why)
	}
	deadline := time.After(5 * time.Second)
	for _, done := range waits {
		select {
		case <-done:
		case <-deadline:
			return
		}
	}
}

// ReplicaStatus is one lineage's row in a Snapshot.
type ReplicaStatus struct {
	Name    string
	State   string
	Crashes int
}

// Snapshot is the supervisor's own status view — what ilsim-fleetd
// serves and logs alongside the coordinator's campaign status.
type Snapshot struct {
	Fleet     string
	Running   int
	Backoff   int
	Draining  int
	Broken    int
	Target    int
	Reason    string
	WantSlots int
	Replicas  []ReplicaStatus
}

// Snapshot captures the current fleet state; safe to call from any
// goroutine while Run executes.
func (s *Supervisor) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Fleet:     s.Fleet,
		Broken:    s.broken,
		Target:    s.target,
		Reason:    s.reason,
		WantSlots: s.status.WantWorkers,
	}
	for _, r := range s.replicas {
		switch r.state {
		case stateRunning:
			snap.Running++
		case stateBackoff:
			snap.Backoff++
		case stateDraining:
			snap.Draining++
		}
		snap.Replicas = append(snap.Replicas, ReplicaStatus{Name: r.name, State: r.state.String(), Crashes: r.crashes})
	}
	sort.Slice(snap.Replicas, func(i, j int) bool { return snap.Replicas[i].Name < snap.Replicas[j].Name })
	return snap
}

// Summary renders the one-line form of a Snapshot.
func (snap Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet %q: %d running", snap.Fleet, snap.Running)
	if snap.Backoff > 0 {
		fmt.Fprintf(&b, ", %d in backoff", snap.Backoff)
	}
	if snap.Draining > 0 {
		fmt.Fprintf(&b, ", %d draining", snap.Draining)
	}
	if snap.Broken > 0 {
		fmt.Fprintf(&b, ", %d broken", snap.Broken)
	}
	fmt.Fprintf(&b, "; target %d (%s)", snap.Target, snap.Reason)
	if snap.WantSlots > 0 {
		fmt.Fprintf(&b, ", coordinator wants %d slots", snap.WantSlots)
	}
	return b.String()
}
