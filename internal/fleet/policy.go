package fleet

import "time"

// Policy bounds how aggressively a supervisor chases the coordinator's
// autoscaling hint. The hint is noisy — it swings with every EWMA update
// and every queue refill — so raw tracking would thrash processes up and
// down; the deadband, cooldowns and step caps here turn it into calm,
// bounded fleet moves.
type Policy struct {
	// Min and Max clamp the replica count. Min also bootstraps the fleet:
	// with zero workers the coordinator never observes a runtime and the
	// hint stays 0, so Min must be at least 1 for a fleet that starts
	// from nothing. Max <= 0 means no ceiling.
	Min, Max int
	// Deadband is the hysteresis width as a fraction of the current
	// replica count: a hint within ±Deadband×current of where the fleet
	// already is changes nothing. 0.25 means a 4-replica fleet ignores
	// hints between 3 and 5. Violations of Min/Max are corrected
	// regardless.
	Deadband float64
	// UpCooldown and DownCooldown are the minimum quiet time after any
	// fleet change before the next grow or shrink. Asymmetric on
	// purpose: scale up fast (a deep queue is wasted wall-clock), scale
	// down slowly (killing a worker you need back in ten seconds costs a
	// relaunch and a re-lease). Min/Max violations bypass cooldowns.
	UpCooldown, DownCooldown time.Duration
	// StepUp and StepDown cap how many replicas one decision may add or
	// remove (0 = uncapped), so a wild hint cannot double the fleet in
	// one tick.
	StepUp, StepDown int
}

// withDefaults fills the zero values with the stock policy: no deadband
// or step caps, grow after 5s of quiet, shrink after 30s.
func (p Policy) withDefaults() Policy {
	if p.UpCooldown <= 0 {
		p.UpCooldown = 5 * time.Second
	}
	if p.DownCooldown <= 0 {
		p.DownCooldown = 30 * time.Second
	}
	if p.Min < 0 {
		p.Min = 0
	}
	if p.Max > 0 && p.Max < p.Min {
		p.Max = p.Min
	}
	return p
}

// Decider applies a Policy over time: it remembers when the fleet last
// moved so cooldowns hold between calls. The zero Decider (plus a
// Policy) is ready to use; it is not safe for concurrent use.
type Decider struct {
	// Policy may be adjusted between calls — the supervisor lowers Max
	// as crash-loop breakers trip.
	Policy Policy

	last time.Time // when Decide last changed the target
}

// Decide returns the replica count to run now, given the count running
// (plus pending relaunches) and the count the hint asks for, and a short
// reason for logs and status views. It never returns a value outside
// [Min, Max]; within those clamps it holds the current count through the
// deadband and cooldowns.
func (d *Decider) Decide(now time.Time, current, want int) (int, string) {
	p := d.Policy.withDefaults()
	target := want
	if p.Max > 0 && target > p.Max {
		target = p.Max
	}
	if target < p.Min {
		target = p.Min
	}
	if target == current {
		return current, "steady"
	}

	// Min/Max violations are corrected immediately — they are not scaling
	// decisions but invariant repairs (a breaker lowered Max, or crashes
	// dropped the fleet under Min).
	violation := current < p.Min || (p.Max > 0 && current > p.Max)

	if !violation {
		if delta := target - current; abs(delta) <= int(p.Deadband*float64(current)) {
			return current, "deadband"
		}
	}
	if target > current {
		if !violation && !d.last.IsZero() && now.Sub(d.last) < p.UpCooldown {
			return current, "up-cooldown"
		}
		if p.StepUp > 0 && target-current > p.StepUp {
			target = current + p.StepUp
		}
		d.last = now
		return target, "up"
	}
	if !violation && !d.last.IsZero() && now.Sub(d.last) < p.DownCooldown {
		return current, "down-cooldown"
	}
	if p.StepDown > 0 && current-target > p.StepDown {
		target = current - p.StepDown
	}
	d.last = now
	return target, "down"
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
