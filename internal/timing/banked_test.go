package timing_test

import (
	"bytes"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/workloads"
)

// TestBankedMemoryDeterminism is the contract of the banked phase-2 drain:
// servicing L1 banks, L2 banks, and DRAM channels on concurrent workers is a
// pure speedup. Every workload of the Table 5 suite, under both
// abstractions, must produce byte-identical run fingerprints across the
// mem-parallelism grid {1 (serial drain), 2, DrainWidth (one worker per
// widest-wave bank)} crossed with CU-parallelism {1, NumCUs} — so the two
// intra-simulation parallelism levels are exercised both independently and
// stacked. Determinism rests on the data layout, not the scheduler:
// requests are routed into per-(source, bank) buckets during phase 1,
// concatenated in fixed wiring order, replayed per bank in (CU index,
// append order), and cross-bank line completions max-reduce into each
// request's ready cycle in request order.
//
// Run under -race (make race does) this is also the data-race gate for the
// task-epoch work-stealing path.
func TestBankedMemoryDeterminism(t *testing.T) {
	names := []string{
		"ArrayBW", "BitonicSort", "CoMD", "FFT", "HPGMG",
		"LULESH", "MD", "SNAP", "SpMV", "XSBench",
	}
	if testing.Short() {
		// ArrayBW (memory-bound streams, the drain's stress case), SpMV
		// (divergent, irregular bank spread), HPGMG (multi-kernel) cover
		// the routing regimes.
		names = []string{"ArrayBW", "SpMV", "HPGMG"}
	}
	opts := core.RunOptions{TrackValues: true, ValueSampleEvery: 4, TrackReuse: true}
	cfg := core.DefaultConfig()
	memLevels := []int{1, 2, cfg.DrainWidth()}
	cuLevels := []int{1, cfg.NumCUs}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			t.Run(name+"/"+abs.String(), func(t *testing.T) {
				var want []byte
				for _, cuPar := range cuLevels {
					for _, memPar := range memLevels {
						inst, err := w.Prepare(1)
						if err != nil {
							t.Fatal(err)
						}
						sim, err := core.NewSimulator(cfg)
						if err != nil {
							t.Fatal(err)
						}
						o := opts
						o.CUParallelism = cuPar
						o.MemParallelism = memPar
						run, m, err := sim.Run(abs, name, inst.Setup, o)
						if err != nil {
							t.Fatalf("cu-par=%d mem-par=%d: %v", cuPar, memPar, err)
						}
						if err := inst.Check(m); err != nil {
							t.Fatalf("cu-par=%d mem-par=%d: %v", cuPar, memPar, err)
						}
						fp := run.Fingerprint()
						if want == nil {
							want = fp
							continue
						}
						if !bytes.Equal(fp, want) {
							t.Errorf("cu-par=%d mem-par=%d: fingerprint diverges from the serial baseline:\n%s",
								cuPar, memPar, diffLines(want, fp))
						}
					}
				}
			})
		}
	}
}
