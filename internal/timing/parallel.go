package timing

import "sync"

// pool is the phase-1 worker pool: a fixed set of goroutines, each owning a
// contiguous slice of the GPU's CUs. One epoch = one simulated cycle's phase
// 1: the main goroutine publishes the cycle to every worker, each worker
// ticks its CUs (storing results on the CUs themselves), and the WaitGroup
// forms the barrier. Channel send/receive and Done/Wait give the
// happens-before edges that make every CU field written in phase 1 visible
// to the main goroutine's phase 2, and vice versa for the next epoch — no
// other synchronization exists on the hot path, and an epoch performs no
// allocation.
type pool struct {
	chans []chan int64
	split [][]*cu
	wg    sync.WaitGroup
}

// newPool starts workers goroutines over cus, partitioned contiguously so
// neighboring CUs (which share I-cache and scalar-cache groups, and tend to
// receive workgroups together) stay on one worker.
func newPool(cus []*cu, workers int) *pool {
	if workers > len(cus) {
		workers = len(cus)
	}
	if workers < 1 {
		workers = 1
	}
	p := &pool{}
	base, rem := len(cus)/workers, len(cus)%workers
	start := 0
	for i := 0; i < workers; i++ {
		size := base
		if i < rem {
			size++
		}
		part := cus[start : start+size]
		start += size
		ch := make(chan int64, 1)
		p.chans = append(p.chans, ch)
		p.split = append(p.split, part)
		go p.worker(ch, part)
	}
	return p
}

func (p *pool) worker(ch chan int64, part []*cu) {
	for now := range ch {
		for _, c := range part {
			c.finWGs, c.tickErr = c.tick(now)
		}
		p.wg.Done()
	}
}

// run executes one phase-1 epoch at cycle now and blocks until every worker
// has finished its CUs. The previous epoch's Wait guarantees each buffered
// channel is empty, so the sends never block.
func (p *pool) run(now int64) {
	p.wg.Add(len(p.chans))
	for _, ch := range p.chans {
		ch <- now
	}
	p.wg.Wait()
}

// stop terminates the workers. Safe only between epochs.
func (p *pool) stop() {
	for _, ch := range p.chans {
		close(ch)
	}
	p.chans = nil
	p.split = nil
}
