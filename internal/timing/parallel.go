package timing

import (
	"sync"
	"sync/atomic"
)

// epoch is one unit of pool work: either a phase-1 CU tick at cycle now, or
// a task epoch — the drain's bank waves — whose indices workers pull from a
// shared atomic cursor.
type epoch struct {
	now  int64
	task bool
}

// pool is the cycle-loop worker pool: a fixed set of goroutines. The first
// len(split) workers each own a contiguous slice of the GPU's CUs for
// phase-1 epochs; any worker can serve a task epoch. One epoch: the main
// goroutine publishes it to the participating workers, each does its share
// (storing results on the CUs or the drain's bank tasks), and the WaitGroup
// forms the barrier. Channel send/receive and Done/Wait give the
// happens-before edges that make every field written inside an epoch
// visible to the main goroutine afterward, and vice versa for the next
// epoch — no other synchronization exists on the hot path, and an epoch
// performs no allocation.
//
// Task epochs distribute work by index through the cursor: which worker
// runs which task is scheduling-dependent, but tasks within an epoch touch
// disjoint state (one bank each), so results never depend on the
// assignment.
type pool struct {
	chans []chan epoch
	split [][]*cu
	wg    sync.WaitGroup

	// Task-epoch state: published before the sends (the sends give the
	// happens-before edge), consumed by workers via cursor.
	taskN  int
	taskFn func(int)
	cursor atomic.Int64
}

// newPool starts max(cuWorkers, taskWorkers) workers. CUs are partitioned
// contiguously across the first cuWorkers of them, so neighboring CUs
// (which share I-cache and scalar-cache groups, and tend to receive
// workgroups together) stay on one worker; the remainder participate in
// task epochs only.
func newPool(cus []*cu, cuWorkers, taskWorkers int) *pool {
	if cuWorkers > len(cus) {
		cuWorkers = len(cus)
	}
	if cuWorkers < 1 {
		cuWorkers = 1
	}
	workers := cuWorkers
	if taskWorkers > workers {
		workers = taskWorkers
	}
	p := &pool{}
	base, rem := len(cus)/cuWorkers, len(cus)%cuWorkers
	start := 0
	for i := 0; i < workers; i++ {
		var part []*cu
		if i < cuWorkers {
			size := base
			if i < rem {
				size++
			}
			part = cus[start : start+size]
			start += size
			p.split = append(p.split, part)
		}
		ch := make(chan epoch, 1)
		p.chans = append(p.chans, ch)
		go p.worker(ch, part)
	}
	return p
}

func (p *pool) worker(ch chan epoch, part []*cu) {
	for e := range ch {
		if e.task {
			for {
				i := int(p.cursor.Add(1)) - 1
				if i >= p.taskN {
					break
				}
				p.taskFn(i)
			}
		} else {
			for _, c := range part {
				c.finWGs, c.tickErr = c.tick(e.now)
			}
		}
		p.wg.Done()
	}
}

// run executes one phase-1 epoch at cycle now and blocks until every
// CU-owning worker has finished. The previous epoch's Wait guarantees each
// buffered channel is empty, so the sends never block.
func (p *pool) run(now int64) {
	p.wg.Add(len(p.split))
	for _, ch := range p.chans[:len(p.split)] {
		ch <- epoch{now: now}
	}
	p.wg.Wait()
}

// runTasks executes fn(0..n-1) across up to workers pool goroutines and
// blocks until all n have finished. It satisfies mem.Executor.
func (p *pool) runTasks(n int, fn func(int), workers int) {
	if workers > len(p.chans) {
		workers = len(p.chans)
	}
	if workers < 1 {
		workers = 1
	}
	p.taskN, p.taskFn = n, fn
	p.cursor.Store(0)
	p.wg.Add(workers)
	for _, ch := range p.chans[:workers] {
		ch <- epoch{task: true}
	}
	p.wg.Wait()
}

// stop terminates the workers. Safe only between epochs.
func (p *pool) stop() {
	for _, ch := range p.chans {
		close(ch)
	}
	p.chans = nil
	p.split = nil
}
