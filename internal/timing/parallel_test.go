package timing_test

import (
	"bytes"
	"fmt"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/workloads"
)

// TestParallelTimingDeterminism is the contract of the parallel timing core:
// sharding CU ticks across goroutines is a pure speedup. Every workload of
// the Table 5 suite, under both abstractions, with cycle skipping on and
// off, must produce byte-identical run fingerprints at CUParallelism 1
// (serial loop), 2 (partitioned pool) and NumCUs (one worker per CU). The
// statistics tracked here include the order-sensitive paths — value-
// uniqueness sampling and reuse distances — so any scheduling divergence
// between the serial interleaving and the two-phase epochs shows up.
//
// Run under -race (make race does) this is also the data-race gate for the
// phase-1 worker pool.
func TestParallelTimingDeterminism(t *testing.T) {
	names := []string{
		"ArrayBW", "BitonicSort", "CoMD", "FFT", "HPGMG",
		"LULESH", "MD", "SNAP", "SpMV", "XSBench",
	}
	if testing.Short() {
		// MD (latency-bound), SpMV (divergent), HPGMG (multi-kernel
		// stencil) cover the scheduling regimes.
		names = []string{"MD", "SpMV", "HPGMG"}
	}
	opts := core.RunOptions{TrackValues: true, ValueSampleEvery: 4, TrackReuse: true}
	cfg := core.DefaultConfig()
	parLevels := []int{1, 2, cfg.NumCUs}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			t.Run(name+"/"+abs.String(), func(t *testing.T) {
				var want []byte
				for _, noskip := range []bool{false, true} {
					for _, par := range parLevels {
						inst, err := w.Prepare(1)
						if err != nil {
							t.Fatal(err)
						}
						sim, err := core.NewSimulator(cfg)
						if err != nil {
							t.Fatal(err)
						}
						o := opts
						o.DisableCycleSkipping = noskip
						o.CUParallelism = par
						run, m, err := sim.Run(abs, name, inst.Setup, o)
						if err != nil {
							t.Fatalf("cu-par=%d noskip=%v: %v", par, noskip, err)
						}
						if err := inst.Check(m); err != nil {
							t.Fatalf("cu-par=%d noskip=%v: %v", par, noskip, err)
						}
						fp := run.Fingerprint()
						if want == nil {
							want = fp
							continue
						}
						if !bytes.Equal(fp, want) {
							t.Errorf("cu-par=%d noskip=%v: fingerprint diverges from cu-par=1 skip-on baseline:\n%s",
								par, noskip, diffLines(want, fp))
						}
					}
				}
			})
		}
	}
}

// diffLines returns the fingerprint lines that differ, keeping failure
// output readable (fingerprints run to hundreds of lines).
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			fmt.Fprintf(&out, "-%s\n+%s\n", wl, gl)
		}
	}
	return out.String()
}
