// Package timing implements the shared compute-unit timing model of the
// paper's Figure 2 / Table 4: per-CU wavefront slots feeding four 16-lane
// SIMD engines, one scalar unit, a banked vector register file with an
// operand-collector conflict model, per-wavefront instruction buffers fed by
// a shared instruction cache, and local/global memory pipelines into a
// two-level cache hierarchy with channeled DRAM.
//
// One model times BOTH abstractions. The ISA-visible differences live in the
// engines (package emu) and in two mode-dependent mechanisms the paper calls
// out explicitly:
//
//   - HSAIL needs a hardware scoreboard: issue stalls until every operand
//     register's pending write has completed, "even though the logic does
//     not exist in the actual GPU" (§III.B.2).
//   - GCN3 relies on finalizer-inserted s_waitcnt/s_nop: issue stalls only
//     at explicit waitcnt bounds, tracked by in-order vmcnt/lgkmcnt counters.
package timing

import (
	"context"
	"errors"
	"fmt"

	"ilsim/internal/emu"
	"ilsim/internal/hsa"
	"ilsim/internal/mem"
	"ilsim/internal/stats"
)

// ErrBudgetExceeded marks a run aborted because it exhausted its cycle or
// instruction budget (Watchdog.MaxCycles / Watchdog.MaxInsts). It is the
// mechanism that bounds a runaway or livelocked simulation; core and the
// experiment engine re-export it so callers can classify the failure with
// errors.Is at any layer.
var ErrBudgetExceeded = errors.New("simulation budget exceeded")

// DefaultCheckEvery is the watchdog check period in simulated cycles when
// Watchdog.CheckEvery is unset. The check is a context poll plus two integer
// comparisons, so even the default keeps overhead far below the per-cycle
// model cost while bounding kill latency to ~1k cycles.
const DefaultCheckEvery = 1024

// Watchdog bounds a GPU run cooperatively: every CheckEvery simulated
// cycles (and once at each dispatch entry) the timing loop polls the
// context and the budgets instead of running open-loop. A zero Watchdog
// disables all checks.
type Watchdog struct {
	// Ctx, when non-nil, cancels the run: the first check after the
	// context ends aborts the dispatch with the context's cause.
	Ctx context.Context
	// MaxCycles bounds total simulated cycles since GPU creation
	// (0 = unlimited).
	MaxCycles int64
	// MaxInsts bounds committed wavefront instructions (0 = unlimited).
	MaxInsts uint64
	// CheckEvery is the check period in cycles (0 = DefaultCheckEvery).
	CheckEvery int64
}

func (w Watchdog) enabled() bool {
	return w.Ctx != nil || w.MaxCycles > 0 || w.MaxInsts > 0
}

func (w Watchdog) every() int64 {
	if w.CheckEvery > 0 {
		return w.CheckEvery
	}
	return DefaultCheckEvery
}

// check reports why the run must stop, or nil to continue. insts is the
// committed-instruction total (only consulted when MaxInsts is set; callers
// may pass 0 otherwise).
func (w Watchdog) check(now int64, insts uint64) error {
	if w.Ctx != nil && w.Ctx.Err() != nil {
		return fmt.Errorf("timing: run canceled at cycle %d: %w", now, context.Cause(w.Ctx))
	}
	if w.MaxCycles > 0 && now >= w.MaxCycles {
		return fmt.Errorf("timing: %w: %d cycles >= budget %d", ErrBudgetExceeded, now, w.MaxCycles)
	}
	if w.MaxInsts > 0 && insts >= w.MaxInsts {
		return fmt.Errorf("timing: %w: %d instructions >= budget %d", ErrBudgetExceeded, insts, w.MaxInsts)
	}
	return nil
}

// Params configures the timing model (core.Config maps onto it).
type Params struct {
	NumCUs     int
	SIMDsPerCU int
	WFSlots    int
	VRFBanks   int
	// IBBytes is the per-wavefront instruction-buffer capacity in bytes.
	IBBytes int
	// FetchWidth is the number of wavefront fetch requests a CU may start
	// per cycle.
	FetchWidth int
	// VRFRegsPerCU / SRFRegsPerCU bound occupancy (Table 4: 2048/800).
	VRFRegsPerCU int
	SRFRegsPerCU int

	// Execution latencies (cycles from issue to result availability).
	ALULatency    int64
	ALU64Latency  int64
	TransLatency  int64
	ScalarLatency int64
	BranchLatency int64
	LDSLatency    int64

	// Issue occupancies (cycles a unit stays busy per instruction).
	SIMDIssueCycles   int64
	VMemIssueCycles   int64
	ScalarIssueCycles int64

	// LaunchOverhead is the packet-processor cost per dispatch, cycles.
	LaunchOverhead int64

	// Cache geometry.
	L1DSize, L1DWays           int
	L1ISize, L1IWays           int
	ScalarL1Size, ScalarL1Ways int
	L2Size, L2Ways             int
	// L2Banks set-interleaves the shared L2 into independent banks, each
	// with its own request port — the unit of phase-2 drain parallelism
	// (DRAM channels are banks of their own already).
	L2Banks          int
	L1HitLatency     int64
	L2HitLatency     int64
	ScalarHitLatency int64
	DRAMChannels     int
	DRAMLatency      int64
	DRAMOccupancy    int64
}

// DefaultParams returns the Table 4 machine with this model's latencies.
func DefaultParams() Params {
	return Params{
		NumCUs: 8, SIMDsPerCU: 4, WFSlots: 40, VRFBanks: 16,
		IBBytes: 64, FetchWidth: 1,
		VRFRegsPerCU: 2048, SRFRegsPerCU: 800,
		ALULatency: 8, ALU64Latency: 12, TransLatency: 16,
		ScalarLatency: 1, BranchLatency: 4, LDSLatency: 8,
		SIMDIssueCycles: 4, VMemIssueCycles: 4, ScalarIssueCycles: 1,
		LaunchOverhead: 1500,
		L1DSize:        16 << 10, L1DWays: 0,
		L1ISize: 16 << 10, L1IWays: 8,
		ScalarL1Size: 32 << 10, ScalarL1Ways: 8,
		L2Size: 512 << 10, L2Ways: 16, L2Banks: 8,
		L1HitLatency: 16, L2HitLatency: 64, ScalarHitLatency: 16,
		DRAMChannels: 32, DRAMLatency: 160, DRAMOccupancy: 4,
	}
}

// GPU is the timed device: CUs plus the shared memory system.
type GPU struct {
	P   Params
	Run *stats.Run
	// WD bounds the run (cancellation and budgets); set it before the
	// first RunDispatch. The zero value runs unbounded.
	WD Watchdog
	// NoSkip forces the dispatcher to tick every cycle instead of skipping
	// provably-inert spans. Results are byte-identical either way (the
	// determinism tests assert it); the flag exists for debugging and for
	// those tests.
	NoSkip bool
	// Parallelism is the number of goroutines phase-1 CU ticks shard
	// across (core.ResolveCUParallelism computes the usual value; <=1
	// means serial). Results are byte-identical at every setting. Set it
	// before the first RunDispatch.
	Parallelism int
	// MemParallelism is the number of goroutines the phase-2 drain's bank
	// waves shard across (core.ResolveMemParallelism computes the usual
	// value; <=1 means serial). Results are byte-identical at every
	// setting. Set it before the first RunDispatch.
	MemParallelism int
	// Mem is the dispatch's functional memory. Parallel runs fork one
	// view per CU from it so page-table caches and footprint tracking
	// stay goroutine-private; leaving it nil forces serial ticking.
	Mem *mem.Memory

	cus  []*cu
	l2   *mem.Cache
	dram *mem.DRAM
	// iCaches / sCaches are shared per 4 CUs (Table 4).
	iCaches []*mem.Cache
	sCaches []*mem.Cache

	// drain replays the CUs' deferred cache accesses through the banked
	// hierarchy as level waves (see mem.Drain); taskExec adapts the worker
	// pool to the drain's executor interface, bound once.
	drain    *mem.Drain
	taskExec mem.Executor

	now int64
	// wdTick counts cycles toward the next watchdog check; it persists
	// across dispatches so short kernels cannot starve the watchdog.
	wdTick int64
	// pool is the lazily started worker pool shared by phase-1 ticks and
	// phase-2 bank waves (nil until first needed; Stop shuts it down).
	pool *pool
}

// NewGPU builds the device.
func NewGPU(p Params, run *stats.Run) *GPU {
	g := &GPU{P: p, Run: run}
	g.dram = mem.NewDRAM(p.DRAMChannels, mem.LineSize, p.DRAMLatency, p.DRAMOccupancy)
	g.l2 = mem.NewCache("L2", p.L2Size, mem.LineSize, p.L2Ways, p.L2HitLatency, true, g.dram, p.L2Banks)
	nShared := (p.NumCUs + 3) / 4
	for i := 0; i < nShared; i++ {
		g.iCaches = append(g.iCaches, mem.NewCache(fmt.Sprintf("L1I%d", i),
			p.L1ISize, mem.LineSize, p.L1IWays, p.L1HitLatency, false, g.l2, 1))
		g.sCaches = append(g.sCaches, mem.NewCache(fmt.Sprintf("sL1%d", i),
			p.ScalarL1Size, mem.LineSize, p.ScalarL1Ways, p.ScalarHitLatency, false, g.l2, 1))
	}
	for i := 0; i < p.NumCUs; i++ {
		c := newCU(g, i)
		c.l1d = mem.NewCache(fmt.Sprintf("L1D%d", i),
			p.L1DSize, mem.LineSize, p.L1DWays, p.L1HitLatency, false, g.l2, 1)
		c.l1i = g.iCaches[i/4]
		c.sl1 = g.sCaches[i/4]
		c.l1dDest = c.reqs.Register(c.l1d)
		c.l1iDest = c.reqs.Register(c.l1i)
		c.sl1Dest = c.reqs.Register(c.sl1)
		g.cus = append(g.cus, c)
	}
	// Wire the drain: level-1 caches in replay order (per-CU L1Ds, then the
	// shared I- and scalar caches), sources in CU-index order. This order —
	// not goroutine scheduling — defines each bank's replay sequence.
	l1s := make([]*mem.Cache, 0, p.NumCUs+2*nShared)
	srcs := make([]mem.DrainSource, 0, p.NumCUs)
	for _, c := range g.cus {
		l1s = append(l1s, c.l1d)
		srcs = append(srcs, mem.DrainSource{Buf: &c.reqs, Complete: c.completeFn})
	}
	l1s = append(l1s, g.iCaches...)
	l1s = append(l1s, g.sCaches...)
	g.drain = mem.NewDrain(l1s, srcs, g.l2, g.dram)
	return g
}

// Now returns the current cycle.
func (g *GPU) Now() int64 { return g.now }

// parallelism returns the effective phase-1 worker count.
func (g *GPU) parallelism() int {
	p := g.Parallelism
	if p < 1 {
		p = 1
	}
	if p > len(g.cus) {
		p = len(g.cus)
	}
	return p
}

// memParallelism returns the effective phase-2 worker count, capped at the
// widest bank wave (more workers than banks would idle).
func (g *GPU) memParallelism() int {
	p := g.MemParallelism
	if p < 1 {
		p = 1
	}
	if w := g.drain.MaxWave(); p > w {
		p = w
	}
	return p
}

// ensurePool starts the worker pool, sized for both phase-1 ticks and
// phase-2 bank waves, and binds the drain executor once.
func (g *GPU) ensurePool() {
	if g.pool != nil {
		return
	}
	g.pool = newPool(g.cus, g.parallelism(), g.memParallelism())
	if g.taskExec == nil {
		g.taskExec = func(n int, fn func(int)) { g.pool.runTasks(n, fn, g.memParallelism()) }
	}
}

// drainParallelMin is the minimum number of routed line accesses a cycle
// must have deferred before the drain's bank waves go to the pool: below
// it, the three epoch barriers cost more than the work they spread.
// Serial and pooled drains are byte-identical, so this is purely a
// wall-clock heuristic.
const drainParallelMin = 64

// drainFlush replays the cycle's deferred cache accesses through the
// banked hierarchy (see mem.Drain) and clears the CUs' pending-request
// metadata the completion callbacks indexed into.
func (g *GPU) drainFlush(now int64) {
	var exec mem.Executor
	if g.memParallelism() > 1 && g.drain.Pending() >= drainParallelMin {
		g.ensurePool()
		exec = g.taskExec
	}
	g.drain.Flush(now, exec)
	for _, c := range g.cus {
		c.pend = c.pend[:0]
	}
}

// totalInsts sums committed instructions across the root run and every CU
// shard (shards hold a dispatch's counts until Finalize merges them).
func (g *GPU) totalInsts() uint64 {
	var n uint64
	if g.Run != nil {
		n = g.Run.TotalInsts()
	}
	for _, c := range g.cus {
		n += c.run.TotalInsts()
	}
	return n
}

// wdInsts returns the instruction total for a watchdog check, skipping the
// shard scan when no instruction budget is set.
func (g *GPU) wdInsts() uint64 {
	if g.WD.MaxInsts == 0 {
		return 0
	}
	return g.totalInsts()
}

// populated counts CUs holding at least one wavefront slot.
func (g *GPU) populated() int {
	n := 0
	for _, c := range g.cus {
		if len(c.waves) > 0 {
			n++
		}
	}
	return n
}

// prepareEngines binds each CU's execution engine for the coming dispatch.
// Forkable engines get one clone per CU feeding that CU's stat shard, so
// collector sampling state (an order-dependent counter) advances per-CU and
// results stop depending on the host parallelism level. Memory views are
// forked only when the dispatch may actually tick in parallel: a view routes
// page lookups through the shared page-table lock, an overhead serial runs
// need not pay. The return value reports whether parallel phase-1 ticking is
// allowed (it never is for non-forkable engines or kernels with shared
// atomics, whose semantics require the serial interleaving).
func (g *GPU) prepareEngines(eng emu.Engine) bool {
	fk, ok := eng.(emu.Forker)
	if !ok {
		for _, c := range g.cus {
			c.eng = eng
		}
		return false
	}
	par := g.parallelism() > 1 && g.Mem != nil && !fk.SharedAtomics()
	for _, c := range g.cus {
		var mv *mem.Memory
		if par {
			if c.mview == nil {
				c.mview = g.Mem.Fork()
			}
			mv = c.mview
		}
		c.eng = fk.Fork(c.run, mv)
	}
	return par
}

// RunDispatch executes one dispatch to completion on the timed model and
// returns the cycles it took.
//
// Each cycle is two phases. Phase 1 ticks every CU — fetch scheduling,
// issue, functional execution — touching only that CU's private state and
// routing deferred shared-cache accesses into per-bank buckets of its
// request buffer; with Parallelism > 1 the ticks shard across the worker
// pool. Phase 2 drains the buckets as bank waves (L1 level, then L2 banks,
// then DRAM channels — see mem.Drain): each bank replays its requests in
// (CU index, append order), so its port/LRU/counter state evolves
// identically whether the waves run serially or across MemParallelism
// workers. Then the per-CU skip bounds are reduced. Shared state therefore
// evolves byte-identically at every (Parallelism, MemParallelism) setting,
// which TestParallelTimingDeterminism and TestBankedMemoryDeterminism
// assert via run fingerprints.
func (g *GPU) RunDispatch(eng emu.Engine, d *hsa.Dispatch) (int64, error) {
	watched := g.WD.enabled()
	if watched {
		if err := g.WD.check(g.now, g.wdInsts()); err != nil {
			return 0, err
		}
	}
	start := g.now
	g.now += g.P.LaunchOverhead

	parallel := g.prepareEngines(eng)

	// Occupancy: waves per CU limited by WF slots and register files.
	vregs, sregs := eng.RegDemand()
	wavesByVRF := g.P.WFSlots
	if vregs > 0 {
		wavesByVRF = g.P.VRFRegsPerCU / vregs
	}
	wavesBySRF := g.P.WFSlots
	if sregs > 0 {
		wavesBySRF = g.P.SRFRegsPerCU / sregs
	}
	maxWaves := min3(g.P.WFSlots, wavesByVRF, wavesBySRF)
	if maxWaves < 1 {
		maxWaves = 1
	}

	pending := make([]*emu.WGState, 0, len(d.Workgroups))
	for i := range d.Workgroups {
		pending = append(pending, emu.NewWGState(d, &d.Workgroups[i], eng.LDSBytes()))
	}
	next := 0
	active := 0

	dispatchMore := func() {
		for next < len(pending) {
			wg := pending[next]
			placed := false
			for _, c := range g.cus {
				if c.canPlace(wg, maxWaves) {
					c.place(wg, c.eng)
					next++
					active++
					placed = true
					break
				}
			}
			if !placed {
				break
			}
		}
	}
	dispatchMore()
	if active == 0 && next < len(pending) {
		return 0, fmt.Errorf("timing: workgroup does not fit on any CU")
	}

	for active > 0 {
		idle := true
		nextEvent := noEvent
		stallers := int64(0)
		// Phase 1: tick CUs against private state. The pool path and the
		// inline path run the same per-CU code; the pool only pays off when
		// at least two CUs hold waves (drain tails often leave one).
		if parallel && g.populated() > 1 {
			g.ensurePool()
			g.pool.run(g.now)
		} else {
			for _, c := range g.cus {
				c.finWGs, c.tickErr = c.tick(g.now)
			}
		}
		// Phase 2. Surface the lowest-index CU's error first (the serial
		// loop would have hit it first), then drain the deferred cache
		// accesses: requests were routed to their destination banks during
		// phase 1, so the drain replays bank waves — concurrently when
		// MemParallelism > 1 and enough work is pending, byte-identically
		// either way. The skip-bound reduction comes after the drain,
		// because fill completions lower the bounds.
		for _, c := range g.cus {
			if c.tickErr != nil {
				return 0, c.tickErr
			}
			active -= c.finWGs
			if c.active {
				idle = false
			}
			stallers += int64(c.stallers)
		}
		g.drainFlush(g.now)
		for _, c := range g.cus {
			if c.nextEvent < nextEvent {
				nextEvent = c.nextEvent
			}
		}
		g.now++
		if active > 0 && next < len(pending) {
			dispatchMore()
		}
		if g.Run != nil {
			g.Run.Cycles++
		}
		if watched {
			if g.wdTick++; g.wdTick >= g.WD.every() {
				g.wdTick = 0
				if err := g.WD.check(g.now, g.wdInsts()); err != nil {
					return 0, err
				}
			}
		}

		// Deterministic cycle skipping: if this tick changed nothing, no
		// CU can act before nextEvent, so every cycle in between would be
		// an identical no-op tick. Advance now straight there, charging
		// in bulk exactly what those ticks would have charged — Cycles,
		// and one FetchStallCycles per stalled wave per cycle. Skips are
		// capped at the watchdog's next check boundary so budget and
		// cancellation polls fire at the same cycles a ticked run polls.
		if idle && !g.NoSkip && active > 0 && nextEvent != noEvent && nextEvent > g.now {
			skip := nextEvent - g.now
			if watched {
				if room := g.WD.every() - g.wdTick; skip > room {
					skip = room
				}
			}
			g.now += skip
			if g.Run != nil {
				g.Run.Cycles += uint64(skip)
				g.Run.FetchStallCycles += uint64(stallers) * uint64(skip)
			}
			if watched {
				if g.wdTick += skip; g.wdTick >= g.WD.every() {
					g.wdTick = 0
					if err := g.WD.check(g.now, g.wdInsts()); err != nil {
						return 0, err
					}
				}
			}
		}
	}
	// Fold forked footprint views back into the root memory so
	// between-dispatch footprint reads and policy toggles on the root see
	// everything this dispatch touched.
	if g.Mem != nil {
		for _, c := range g.cus {
			if c.mview != nil {
				g.Mem.AbsorbFootprint(c.mview)
			}
		}
	}
	return g.now - start, nil
}

// HarvestCacheStats copies hierarchy counters into the run record.
func (g *GPU) HarvestCacheStats() {
	if g.Run == nil {
		return
	}
	for _, c := range g.cus {
		st := c.l1d.Stats()
		g.Run.L1DAccesses += st.Accesses
		g.Run.L1DMisses += st.Misses
	}
	for _, ic := range g.iCaches {
		st := ic.Stats()
		g.Run.L1IAccesses += st.Accesses
		g.Run.L1IMisses += st.Misses
	}
	for _, sc := range g.sCaches {
		st := sc.Stats()
		g.Run.ScalarL1Accesses += st.Accesses
		g.Run.ScalarL1Misses += st.Misses
	}
	l2 := g.l2.Stats()
	g.Run.L2Accesses = l2.Accesses
	g.Run.L2Misses = l2.Misses
}

// Finalize folds per-CU state back into the shared run record: hierarchy
// counters (HarvestCacheStats) and the per-CU stat shards, which are zeroed
// after merging. Call it once, after the last dispatch.
func (g *GPU) Finalize() {
	g.HarvestCacheStats()
	if g.Run == nil {
		return
	}
	for _, c := range g.cus {
		g.Run.Merge(c.run)
		*c.run = stats.Run{}
	}
}

// Stop shuts down the phase-1 worker pool if one was started. The GPU stays
// usable; a later parallel dispatch starts a fresh pool.
func (g *GPU) Stop() {
	if g.pool != nil {
		g.pool.stop()
		g.pool = nil
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
