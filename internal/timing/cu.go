package timing

import (
	"math"

	"ilsim/internal/emu"
	"ilsim/internal/isa"
	"ilsim/internal/mem"
	"ilsim/internal/stats"
)

// noEvent marks "no future cycle at which this CU's state can change on its
// own"; the GPU loop never skips toward it.
const noEvent = int64(math.MaxInt64)

// waveCtx is a wavefront's timing state in a CU wavefront slot.
type waveCtx struct {
	w    *emu.Wave
	eng  emu.Engine
	wg   *wgRun
	seq  int64 // dispatch age for oldest-job-first scheduling
	simd int
	// regBase is the wave's physical base register in the CU's VRF:
	// architectural slot s of this wave lives in bank (regBase+s)%banks.
	regBase int

	// Instruction buffer: bytes buffered ahead of the wave's PC.
	ibBytes      int
	fetchBusy    bool
	fetchDone    int64
	fetchBytes   int
	fetchEpoch   int // increments on flush; cancels in-flight fetches
	fetchInEpoch int

	// Next instruction's scheduling metadata (points into the engine's
	// per-PC decode cache; nil until peeked, reset on issue).
	info *emu.InstInfo

	// HSAIL hardware scoreboard: per-register-slot result-ready cycle.
	vregReady []int64

	// GCN3 software dependency state: completion cycles of outstanding
	// memory operations (vmcnt is in-order, lgkmcnt may be unordered).
	vmemDone []int64
	lgkmDone []int64

	nextIssue int64
	barrier   bool
	done      bool
}

// outstanding returns how many completion cycles are still in the future,
// compacting the slice.
func outstanding(list *[]int64, now int64) int {
	l := *list
	keep := l[:0]
	for _, c := range l {
		if c > now {
			keep = append(keep, c)
		}
	}
	*list = keep
	return len(keep)
}

// kthSmallest returns the k-th smallest element (1-indexed) of a small
// unsorted list. Lists here are a wave's outstanding memory completions, so
// the quadratic scan is cheaper than sorting and never allocates.
func kthSmallest(list []int64, k int) int64 {
	best := noEvent
	for _, v := range list {
		rank := 0
		for _, u := range list {
			if u <= v {
				rank++
			}
		}
		if rank >= k && v < best {
			best = v
		}
	}
	return best
}

// wgRun tracks one workgroup resident on a CU.
type wgRun struct {
	wg        *emu.WGState
	waves     []*waveCtx
	remaining int
}

// pendReq is the CU-side metadata of one deferred cache access (the line
// set itself lives in the request buffer): which wave to complete and, for
// data accesses, the instruction whose dependency state the completion
// feeds. A nil info marks an instruction-fetch fill.
type pendReq struct {
	wv   *waveCtx
	info *emu.InstInfo
}

// cu is one compute unit.
//
// Each tick is split into two phases so CUs can tick concurrently:
//
//	phase 1 (tick)  — fetch scheduling, issue, execute and every
//	                  CU-private state transition, touching only this
//	                  CU's waves, its stat shard (run) and its engine
//	                  clone (eng). Accesses to the shared cache
//	                  hierarchy are routed into reqs' per-bank buckets
//	                  instead of applied.
//	phase 2 (drain) — the GPU's drain replays every bank's bucketed
//	                  requests in (CU index, append order) as level
//	                  waves (mem.Drain), so shared port/LRU state
//	                  evolves deterministically at every parallelism
//	                  level.
type cu struct {
	g  *GPU
	id int

	l1d *mem.Cache
	l1i *mem.Cache
	sl1 *mem.Cache
	// Destination handles of the three caches in reqs (mem routing).
	l1dDest int
	l1iDest int
	sl1Dest int

	// run is the CU's private statistics shard (merged into the GPU's
	// root run at Finalize); eng is the per-CU engine clone for the
	// current dispatch; mview is the CU's functional-memory view (nil
	// until the GPU runs parallel).
	run   *stats.Run
	eng   emu.Engine
	mview *mem.Memory

	// reqs/pend hold the tick's deferred shared-cache accesses;
	// completeFn is the drain callback, bound once so draining does not
	// allocate.
	reqs       mem.RequestBuffer
	pend       []pendReq
	completeFn func(tag int, ready int64)

	// finWGs/tickErr carry tick's results across the phase barrier.
	finWGs  int
	tickErr error

	// waves is kept permanently ordered by seq: place appends waves with
	// monotonically increasing seq and releaseWG compacts stably, so the
	// issue stage never needs to sort.
	waves     []*waveCtx
	usedSlots int
	seq       int64
	// vrfCursor assigns physical VRF regions to incoming waves.
	vrfCursor int

	simdBusy   []int64
	scalarBusy int64
	vmemBusy   int64
	ldsBusy    int64

	// bankFree models each VRF bank as a single-ported resource: the
	// cycle at which the bank can accept its next operand access. The
	// operand collector queues accesses, so contention accumulates across
	// cycles rather than resetting every cycle.
	bankFree []int64

	// order is the issue stage's reusable scheduling scratch: the waves
	// eligible at the start of the cycle, oldest first. Keeping it on the
	// CU makes the steady-state issue loop allocation-free.
	order []*waveCtx

	// Per-tick skip bookkeeping (see GPU.RunDispatch):
	//   active    — this tick changed simulation state (fetch started or
	//               completed, instruction issued, barrier released, ...).
	//   stallers  — waves that charged FetchStallCycles this tick and will
	//               charge it again every cycle until their next event.
	//   nextEvent — earliest future cycle at which this CU's state can
	//               change without outside input.
	active    bool
	stallers  int
	nextEvent int64
}

func newCU(g *GPU, id int) *cu {
	c := &cu{
		g: g, id: id,
		run:      &stats.Run{},
		simdBusy: make([]int64, g.P.SIMDsPerCU),
		bankFree: make([]int64, g.P.VRFBanks),
	}
	c.completeFn = c.complete
	return c
}

// wake lowers the CU's next-event bound to cycle at.
func (c *cu) wake(at int64) {
	if at < c.nextEvent {
		c.nextEvent = at
	}
}

// canPlace reports whether a workgroup fits (slot capacity and occupancy).
func (c *cu) canPlace(wg *emu.WGState, maxWaves int) bool {
	cap := maxWaves
	if c.g.P.WFSlots < cap {
		cap = c.g.P.WFSlots
	}
	return c.usedSlots+wg.Info.NumWaves <= cap
}

// place creates the workgroup's wavefronts in this CU.
func (c *cu) place(wg *emu.WGState, eng emu.Engine) {
	run := &wgRun{wg: wg, remaining: wg.Info.NumWaves}
	vregs, _ := eng.RegDemand()
	if vregs < 1 {
		vregs = 1
	}
	for i := 0; i < wg.Info.NumWaves; i++ {
		w := eng.NewWave(wg, i)
		ctx := &waveCtx{
			w: w, eng: eng, wg: run,
			seq:     c.seq,
			simd:    c.usedSlots % c.g.P.SIMDsPerCU,
			regBase: c.vrfCursor,
		}
		c.vrfCursor = (c.vrfCursor + vregs) % c.g.P.VRFRegsPerCU
		c.seq++
		if eng.Abstraction() == "HSAIL" {
			nSlots, _ := eng.RegDemand()
			ctx.vregReady = make([]int64, nSlots)
		}
		c.waves = append(c.waves, ctx)
		run.waves = append(run.waves, ctx)
		c.usedSlots++
	}
}

// tick advances the CU one cycle; it returns how many workgroups finished.
// Afterwards c.active, c.stallers and c.nextEvent describe the tick for the
// GPU's cycle-skipping logic.
func (c *cu) tick(now int64) (int, error) {
	c.active = false
	c.stallers = 0
	c.nextEvent = noEvent
	if len(c.waves) == 0 {
		return 0, nil
	}
	c.fetchStage(now)
	finished, err := c.issueStage(now)
	if err != nil {
		return 0, err
	}
	return finished, nil
}

// fetchStage completes and starts instruction-buffer fills.
func (c *cu) fetchStage(now int64) {
	for _, wv := range c.waves {
		if wv.fetchBusy && now >= wv.fetchDone {
			wv.fetchBusy = false
			if wv.fetchInEpoch == wv.fetchEpoch {
				wv.ibBytes += wv.fetchBytes
			}
			if !wv.done {
				c.active = true
			}
		}
	}
	started := 0
	for _, wv := range c.waves {
		if started >= c.g.P.FetchWidth {
			break
		}
		if wv.done || wv.fetchBusy || wv.ibBytes >= c.g.P.IBBytes {
			continue
		}
		addr := wv.w.PC + uint64(wv.ibBytes)
		line := addr &^ (mem.LineSize - 1)
		bytes := int(line + mem.LineSize - addr)
		// The shared (per-4-CU) I-cache lookup is deferred to the drain
		// phase; until then the fill's completion cycle is unknown, which
		// noEvent encodes (it cannot satisfy the completion check above,
		// and waking at it is a no-op).
		wv.fetchBusy = true
		wv.fetchDone = noEvent
		wv.fetchBytes = bytes
		wv.fetchInEpoch = wv.fetchEpoch
		c.pend = append(c.pend, pendReq{wv: wv})
		c.reqs.AppendLine(c.l1iDest, line, false, len(c.pend)-1)
		c.active = true
		started++
	}
	// Every in-flight fill is a future event (completion refills the IB, or
	// frees the fetch slot of a flushed wave). Fills deferred this tick
	// wake at their true completion cycle during drain.
	for _, wv := range c.waves {
		if wv.fetchBusy && !wv.done {
			c.wake(wv.fetchDone)
		}
	}
}

// complete is the drain callback: it lands one deferred access's
// completion cycle. Fetch fills (nil info) record the fill time and wake
// the CU exactly as the serial fetch stage did — unconditionally, because
// the requesting wave was live when the fill started, which is when the
// serial loop registered the wake. Data accesses feed the wave's
// dependency state.
func (c *cu) complete(tag int, ready int64) {
	p := &c.pend[tag]
	if p.info == nil {
		p.wv.fetchDone = ready
		c.wake(ready)
		return
	}
	c.finishMem(p.wv, p.info, ready)
}

// issueStage picks ready wavefronts oldest-first and issues at most one
// instruction per execution unit. Waves blocked this cycle report the cycle
// their blocking condition can next change via c.wake, which is what makes
// whole-GPU cycle skipping exact.
func (c *cu) issueStage(now int64) (int, error) {
	// c.waves is seq-ordered by construction; filtering into the reusable
	// scratch snapshots eligibility at the start of the cycle (a barrier
	// released mid-cycle must not issue until the next cycle).
	order := c.order[:0]
	for _, wv := range c.waves {
		if !wv.done && !wv.barrier {
			order = append(order, wv)
		}
	}
	c.order = order

	finished := 0
	run := c.run
	for _, wv := range order {
		if now < wv.nextIssue {
			c.wake(wv.nextIssue)
			continue
		}
		if wv.info == nil {
			info, err := wv.eng.Peek(wv.w)
			if err != nil {
				return finished, err
			}
			wv.info = info
		}
		info := wv.info
		if wv.ibBytes < info.SizeBytes {
			if run != nil {
				run.FetchStallCycles++
			}
			// The stall repeats every cycle until the in-flight fill
			// lands; RunDispatch bulk-charges it across skipped cycles.
			c.stallers++
			if !wv.fetchBusy {
				// No fill in flight (fetch-width starvation): retry next
				// cycle.
				c.wake(now + 1)
			}
			continue
		}
		// Dependency checks.
		if wv.vregReady != nil {
			if !c.scoreboardReady(wv, info, now) {
				c.wake(scoreboardReadyAt(wv, info))
				continue
			}
		} else {
			if info.WaitVM >= 0 && outstanding(&wv.vmemDone, now) > int(info.WaitVM) {
				// vmcnt completes in order (vmemDone is non-decreasing):
				// the counter reaches WaitVM exactly when the
				// (n-WaitVM)-th oldest operation lands.
				c.wake(wv.vmemDone[len(wv.vmemDone)-1-int(info.WaitVM)])
				continue
			}
			if info.WaitLGKM >= 0 && outstanding(&wv.lgkmDone, now) > int(info.WaitLGKM) {
				c.wake(kthSmallest(wv.lgkmDone, len(wv.lgkmDone)-int(info.WaitLGKM)))
				continue
			}
		}
		// Execution-unit availability.
		var busy *int64
		var occ int64
		switch info.Category {
		case isa.CatVALU:
			busy, occ = &c.simdBusy[wv.simd], c.g.P.SIMDIssueCycles
		case isa.CatVMem:
			busy, occ = &c.vmemBusy, c.g.P.VMemIssueCycles
		case isa.CatLDS:
			busy, occ = &c.ldsBusy, c.g.P.VMemIssueCycles
		default: // scalar ALU, scalar memory, branch, waitcnt, misc
			busy, occ = &c.scalarBusy, c.g.P.ScalarIssueCycles
		}
		if *busy > now {
			c.wake(*busy)
			continue
		}

		res, err := wv.eng.Execute(wv.w)
		if err != nil {
			return finished, err
		}
		c.active = true
		*busy = now + occ
		wv.nextIssue = now + 1
		wv.ibBytes -= info.SizeBytes
		wv.info = nil

		// VRF operand-collector traffic: each bank accepts one operand
		// access per cycle; accesses that find their bank booked queue
		// behind it and stall the issuing unit — the contention the
		// paper shows HSAIL triples (Fig 6). Backlog carries across
		// cycles, so sustained operand pressure compounds.
		conflicts := int64(0)
		bookBank := func(r uint16) {
			b := (wv.regBase + int(r)) % len(c.bankFree)
			if c.bankFree[b] > now {
				conflicts++
				c.bankFree[b]++
			} else {
				c.bankFree[b] = now + 1
			}
		}
		for _, r := range info.VRFReads.Slice() {
			bookBank(r)
		}
		for _, r := range info.VRFWrites.Slice() {
			bookBank(r)
		}
		if conflicts > 0 {
			*busy += conflicts
			if run != nil {
				run.VRFBankConflicts += uint64(conflicts)
			}
		}
		if run != nil {
			run.VRFAccesses += uint64(info.VRFReads.N) + uint64(info.VRFWrites.N)
		}

		c.retire(wv, info, &res, now)
		if res.IsEndPgm {
			wv.done = true
			wv.wg.remaining--
			if wv.wg.remaining == 0 {
				c.releaseWG(wv.wg)
				finished++
			}
		}
	}
	return finished, nil
}

// scoreboardReady implements the HSAIL hardware scoreboard: every register
// the instruction touches must have its pending write complete.
func (c *cu) scoreboardReady(wv *waveCtx, info *emu.InstInfo, now int64) bool {
	for _, r := range info.VRFReads.Slice() {
		if wv.vregReady[r] > now {
			return false
		}
	}
	for _, r := range info.VRFWrites.Slice() {
		if wv.vregReady[r] > now {
			return false
		}
	}
	return true
}

// scoreboardReadyAt returns the cycle at which every register the blocked
// instruction touches has its pending write complete. Pending writes only
// move on issue (an event), so between events this bound is exact.
func scoreboardReadyAt(wv *waveCtx, info *emu.InstInfo) int64 {
	var at int64
	for _, r := range info.VRFReads.Slice() {
		if wv.vregReady[r] > at {
			at = wv.vregReady[r]
		}
	}
	for _, r := range info.VRFWrites.Slice() {
		if wv.vregReady[r] > at {
			at = wv.vregReady[r]
		}
	}
	return at
}

// retire charges latencies for an issued instruction and updates dependency
// state, branch redirects and barriers. Global and scalar memory accesses go
// through the shared hierarchy, so their completion cycles are deferred to
// the drain phase; everything else completes with a CU-private latency and
// lands immediately. Both paths feed finishMem, and each wave issues at most
// one instruction per cycle, so the wave's dependency lists grow in the same
// order the serial loop grew them.
func (c *cu) retire(wv *waveCtx, info *emu.InstInfo, res *emu.ExecResult, now int64) {
	p := &c.g.P
	// Completion time of the instruction's result.
	switch {
	case res.MemKind == emu.MemGlobal && len(res.Lines) > 0:
		// res.Lines is the wave's coalescing scratch; Append routes and
		// copies the lines, so the scratch may be reused immediately.
		c.pend = append(c.pend, pendReq{wv: wv, info: info})
		c.reqs.Append(c.l1dDest, res.Lines, res.MemWrite, len(c.pend)-1)
	case res.MemKind == emu.MemScalar && len(res.Lines) > 0:
		c.pend = append(c.pend, pendReq{wv: wv, info: info})
		c.reqs.Append(c.sl1Dest, res.Lines, false, len(c.pend)-1)
	case res.MemKind == emu.MemGlobal || res.MemKind == emu.MemScalar:
		// Fully masked access: no lines, completes immediately.
		c.finishMem(wv, info, now)
	case res.MemKind == emu.MemLDS || info.Category == isa.CatLDS:
		if res.LDSBankConflicts > 0 {
			c.ldsBusy += int64(res.LDSBankConflicts)
		}
		c.finishMem(wv, info, now+p.LDSLatency+int64(res.LDSBankConflicts))
	default:
		var ready int64
		switch info.LatClass {
		case emu.LatALU:
			ready = now + p.ALULatency
		case emu.LatALU64:
			ready = now + p.ALU64Latency
		case emu.LatTrans:
			ready = now + p.TransLatency
		case emu.LatScalar:
			ready = now + p.ScalarLatency
		case emu.LatBranch:
			ready = now + p.BranchLatency
		default:
			ready = now + 1
		}
		c.finishMem(wv, info, ready)
	}

	if res.Redirected {
		run := c.run
		if run != nil {
			run.Redirects++
			if wv.ibBytes > 0 || wv.fetchBusy {
				run.IBFlushes++
			}
		}
		wv.ibBytes = 0
		wv.fetchEpoch++ // cancel any in-flight fill
		wv.nextIssue = now + p.BranchLatency
	}

	if res.IsBarrier {
		wv.barrier = true
		c.checkBarrier(wv.wg)
	}
}

// finishMem lands an instruction's completion cycle in the wave's dependency
// state. It runs inline from retire for CU-private latencies and from the
// drain callback for shared-hierarchy accesses.
func (c *cu) finishMem(wv *waveCtx, info *emu.InstInfo, ready int64) {
	if wv.vregReady != nil {
		// HSAIL scoreboard: destination registers become ready when the
		// instruction completes.
		for _, r := range info.VRFWrites.Slice() {
			wv.vregReady[r] = ready
		}
		return
	}
	// GCN3 waitcnt counters.
	if info.IsVMem {
		// In-order completion: never earlier than the previous one.
		if n := len(wv.vmemDone); n > 0 && wv.vmemDone[n-1] > ready {
			ready = wv.vmemDone[n-1]
		}
		wv.vmemDone = append(wv.vmemDone, ready)
	}
	if info.IsLGKM {
		wv.lgkmDone = append(wv.lgkmDone, ready)
	}
}

// checkBarrier releases a workgroup barrier once every unfinished wave has
// arrived.
func (c *cu) checkBarrier(run *wgRun) {
	for _, wv := range run.waves {
		if !wv.done && !wv.barrier {
			return
		}
	}
	for _, wv := range run.waves {
		wv.barrier = false
	}
}

// releaseWG frees the workgroup's slots. The compaction is stable, so
// c.waves stays seq-ordered.
func (c *cu) releaseWG(run *wgRun) {
	keep := c.waves[:0]
	for _, wv := range c.waves {
		if wv.wg != run {
			keep = append(keep, wv)
		}
	}
	c.waves = keep
	c.usedSlots -= len(run.waves)
}
