package timing

import (
	"testing"

	"ilsim/internal/emu"
	"ilsim/internal/hsa"
	"ilsim/internal/isa"
	"ilsim/internal/stats"
)

// stubEngine feeds the CU an endless stream of vector-ALU instructions with
// a little VRF operand traffic — the steady-state issue workload, with
// functional execution reduced to a PC bump so the measurement isolates the
// timing pipeline itself.
type stubEngine struct {
	info emu.InstInfo
}

func newStubEngine() *stubEngine {
	e := &stubEngine{info: emu.InstInfo{
		SizeBytes: 4,
		Category:  isa.CatVALU,
		LatClass:  emu.LatALU,
		WaitVM:    -1,
		WaitLGKM:  -1,
	}}
	e.info.VRFReads.Add(0, 2)
	e.info.VRFWrites.Add(2, 1)
	return e
}

func (e *stubEngine) Abstraction() string { return "GCN3" }
func (e *stubEngine) NewWave(wg *emu.WGState, waveID int) *emu.Wave {
	return &emu.Wave{WG: wg, WaveID: waveID, NumLanes: isa.WavefrontSize,
		Exec: isa.FullMask(isa.WavefrontSize)}
}
func (e *stubEngine) Peek(w *emu.Wave) (*emu.InstInfo, error) { return &e.info, nil }
func (e *stubEngine) InstString(pc uint64) string             { return "stub" }
func (e *stubEngine) Execute(w *emu.Wave) (emu.ExecResult, error) {
	w.PC += 4
	return emu.ExecResult{ActiveLanes: isa.WavefrontSize}, nil
}
func (e *stubEngine) CodeBytes() uint64     { return 0 }
func (e *stubEngine) LDSBytes() int         { return 0 }
func (e *stubEngine) RegDemand() (int, int) { return 8, 8 }

// benchCU builds one CU populated with waves that never finish.
func benchCU(waves int) *cu {
	g := NewGPU(DefaultParams(), &stats.Run{})
	eng := newStubEngine()
	d := &hsa.Dispatch{Workgroups: make([]hsa.WorkgroupInfo, 1)}
	d.Workgroups[0] = hsa.WorkgroupInfo{
		Size: waves * isa.WavefrontSize, NumWaves: waves,
	}
	wg := emu.NewWGState(d, &d.Workgroups[0], 0)
	c := g.cus[0]
	c.place(wg, eng)
	return c
}

// cycle runs one CU through a full two-phase cycle: the phase-1 tick plus
// the phase-2 drain that replays its deferred shared-cache accesses as bank
// waves.
func cycle(c *cu, now int64) error {
	if _, err := c.tick(now); err != nil {
		return err
	}
	c.g.drainFlush(now)
	return nil
}

// memStubEngine is stubEngine with the functional work swapped for an
// endless global-load stream over twice the L1D capacity: every data access
// misses L1 and routes down into the banked L2/DRAM buckets, which makes it
// the steady-state workload for the drain's routing path.
type memStubEngine struct {
	stubEngine
	cursor uint64
	lines  [4]uint64
}

func newMemStubEngine() *memStubEngine {
	e := &memStubEngine{stubEngine: *newStubEngine()}
	e.info.Category = isa.CatVMem
	return e
}

func (e *memStubEngine) Execute(w *emu.Wave) (emu.ExecResult, error) {
	w.PC += 4
	const region = 32 << 10 // 2x the default L1D: a cyclic sweep never hits L1
	for i := range e.lines {
		e.lines[i] = e.cursor % region
		e.cursor += 64
	}
	return emu.ExecResult{ActiveLanes: isa.WavefrontSize,
		MemKind: emu.MemGlobal, Lines: e.lines[:]}, nil
}

// benchMemCU builds one CU whose waves stream global loads forever.
func benchMemCU(waves int) *cu {
	g := NewGPU(DefaultParams(), &stats.Run{})
	eng := newMemStubEngine()
	d := &hsa.Dispatch{Workgroups: make([]hsa.WorkgroupInfo, 1)}
	d.Workgroups[0] = hsa.WorkgroupInfo{
		Size: waves * isa.WavefrontSize, NumWaves: waves,
	}
	wg := emu.NewWGState(d, &d.Workgroups[0], 0)
	c := g.cus[0]
	c.place(wg, eng)
	return c
}

// TestDrainRoutingNoAllocs extends the zero-alloc contract to the bucketed
// routing path: a steady stream of L1-missing global loads — append-time
// bank routing, L1→L2→DRAM down-bucket traffic, pending-fill bookkeeping,
// completion reduction — must allocate nothing once the buckets have grown
// to their working size.
func TestDrainRoutingNoAllocs(t *testing.T) {
	c := benchMemCU(8)
	now := int64(0)
	for ; now < 512; now++ {
		if err := cycle(c, now); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := cycle(c, now); err != nil {
			t.Fatal(err)
		}
		now++
	})
	if avg != 0 {
		t.Fatalf("steady-state routed cycle allocates: %v allocs/op, want 0", avg)
	}
	// Sanity: the stream really exercised multiple L2 banks.
	banked := 0
	for b := 0; b < c.g.l2.NumBanks(); b++ {
		if c.g.l2.BankStats(b).Accesses > 0 {
			banked++
		}
	}
	if banked < 2 {
		t.Fatalf("routing exercised %d L2 banks, want >= 2", banked)
	}
}

// TestIssueStageNoAllocs pins the allocation invariant the parallel timing
// core inherits from the serial one: once a CU is in steady state, a full
// two-phase cycle — tick (fetch + issue + execute + retire into the request
// buffer) plus drain (deferred cache accesses) — allocates nothing. This is
// exactly the per-worker scratch contract: every buffer involved (order
// scratch, request buffer, pending metadata) is CU-owned and reused.
func TestIssueStageNoAllocs(t *testing.T) {
	c := benchCU(8)
	now := int64(0)
	// Warm past cold-start growth (order scratch, request buffers, cache
	// compulsory misses).
	for ; now < 512; now++ {
		if err := cycle(c, now); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := cycle(c, now); err != nil {
			t.Fatal(err)
		}
		now++
	})
	if avg != 0 {
		t.Fatalf("steady-state cycle allocates: %v allocs/op, want 0", avg)
	}
}

// BenchmarkIssueStage measures the per-cycle cost of one CU's pipeline in
// steady state (8 resident waves issuing vector-ALU work), including the
// phase-2 drain.
func BenchmarkIssueStage(b *testing.B) {
	c := benchCU(8)
	now := int64(0)
	for ; now < 512; now++ {
		if err := cycle(c, now); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cycle(c, now); err != nil {
			b.Fatal(err)
		}
		now++
	}
}
