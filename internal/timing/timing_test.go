package timing_test

import (
	"reflect"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
	"ilsim/internal/timing"
	"ilsim/internal/workloads"
)

func TestDefaultParamsSane(t *testing.T) {
	p := timing.DefaultParams()
	if p.NumCUs != 8 || p.SIMDsPerCU != 4 || p.WFSlots != 40 {
		t.Fatalf("Table 4 geometry wrong: %+v", p)
	}
	if p.VRFRegsPerCU != 2048 || p.SRFRegsPerCU != 800 {
		t.Fatalf("Table 4 register files wrong: %+v", p)
	}
}

// runWorkload executes one workload on the timed model.
func runWorkload(t *testing.T, name string, abs core.Abstraction) *stats.Run {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run, m, err := sim.Run(abs, name, inst.Setup, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(m); err != nil {
		t.Fatal(err)
	}
	return run
}

// TestTimingDeterminism: identical runs must produce identical statistics —
// the model has no hidden nondeterminism.
func TestTimingDeterminism(t *testing.T) {
	a := runWorkload(t, "SpMV", core.AbsGCN3)
	b := runWorkload(t, "SpMV", core.AbsGCN3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic timing:\n%+v\n%+v", a, b)
	}
}

// TestScoreboardCostsHSAILStalls: a kernel that is a single long dependent
// ALU chain stalls the HSAIL scoreboard on every instruction, while the
// finalizer's nop/schedule discipline gives GCN3 a fixed one-slot gap. With
// ONE wave (no latency hiding), HSAIL must burn more cycles per instruction.
func TestScoreboardCostsHSAILStalls(t *testing.T) {
	b := kernel.NewBuilder("dep_chain")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	v := b.Mov(isa.TypeU32, gid)
	for i := 0; i < 64; i++ {
		v = b.Add(isa.TypeU32, v, b.Int(isa.TypeU32, 1)) // strictly dependent chain
	}
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, v, addr, 0)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cyclesPerInst [2]float64
	for i, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		setup := func(m *core.Machine) error {
			out := m.Ctx.AllocBuffer(4 * 64)
			return m.Submit(core.Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
				WG: [3]uint16{64, 1, 1}, Args: []uint64{out}})
		}
		run, _, err := sim.Run(abs, "dep_chain", setup, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cyclesPerInst[i] = float64(run.Cycles) / float64(run.TotalInsts())
	}
	if cyclesPerInst[0] <= cyclesPerInst[1] {
		t.Errorf("dependent chain: HSAIL %.2f cyc/inst <= GCN3 %.2f — scoreboard stalls missing",
			cyclesPerInst[0], cyclesPerInst[1])
	}
}

// TestOccupancyLimitedByRegisters: a register-hungry HSAIL kernel must limit
// waves per CU (the 2048-register VRF bound), visible as longer runtime than
// a lean kernel doing the same memory work.
func TestOccupancyLimitedByRegisters(t *testing.T) {
	build := func(pad int) *core.KernelSource {
		b := kernel.NewBuilder("occ")
		inArg := b.ArgPtr("in")
		outArg := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
		// Pad register demand with long-lived values.
		vals := []kernel.Val{gid}
		for i := 0; i < pad; i++ {
			vals = append(vals, b.Add(isa.TypeU32, gid, b.Int(isa.TypeU32, int64(i))))
		}
		v := b.Load(hsail.SegGlobal, isa.TypeU32, b.Add(isa.TypeU64, b.LoadArg(inArg), off), 0)
		acc := v
		for _, p := range vals {
			acc = b.Xor(isa.TypeU32, acc, p)
		}
		b.Store(hsail.SegGlobal, acc, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
		b.Ret()
		k, err := b.FinishRaw() // keep the pressure (no allocation)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := core.PrepareKernel(k, finalizer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ks
	}
	lean := build(2)
	fat := build(100) // ~100+ live slots/wave: ~17 waves/CU instead of 40
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cycles := func(ks *core.KernelSource) uint64 {
		const n = 16384
		setup := func(m *core.Machine) error {
			in := m.Ctx.AllocBuffer(4 * n)
			out := m.Ctx.AllocBuffer(4 * n)
			return m.Submit(core.Launch{Kernel: ks, Grid: [3]uint32{n, 1, 1},
				WG: [3]uint16{64, 1, 1}, Args: []uint64{in, out}})
		}
		run, _, err := sim.Run(core.AbsHSAIL, "occ", setup, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return run.Cycles
	}
	leanCycles, fatCycles := cycles(lean), cycles(fat)
	if fatCycles <= leanCycles {
		t.Errorf("register pressure did not limit occupancy: lean %d, fat %d cycles",
			leanCycles, fatCycles)
	}
}

// TestBarrierSynchronizesWaves: with multiple waves per workgroup, LDS
// written before a barrier must be visible after it (already covered
// functionally); here we check the TIMED path completes and counts barriers.
func TestBarrierTimedCompletion(t *testing.T) {
	b := kernel.NewBuilder("barrier_timed")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	b.SetGroupSize(128 * 4)
	lid := b.WorkItemID(isa.DimX)
	gid := b.WorkItemAbsID(isa.DimX)
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	x := b.Load(hsail.SegGlobal, isa.TypeU32, b.Add(isa.TypeU64, b.LoadArg(inArg), off), 0)
	ldsOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, lid), b.Int(isa.TypeU64, 2))
	b.Store(hsail.SegGroup, x, ldsOff, 0)
	b.Barrier()
	rev := b.Sub(isa.TypeU32, b.Int(isa.TypeU32, 127), lid)
	revOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, rev), b.Int(isa.TypeU64, 2))
	y := b.Load(hsail.SegGroup, isa.TypeU32, revOff, 0)
	b.Store(hsail.SegGlobal, y, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 512 // 4 workgroups x 2 waves each
	for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		var inAddr, outAddr uint64
		setup := func(m *core.Machine) error {
			inAddr = m.Ctx.AllocBuffer(4 * n)
			outAddr = m.Ctx.AllocBuffer(4 * n)
			for i := 0; i < n; i++ {
				m.Ctx.Mem.WriteU32(inAddr+uint64(4*i), uint32(i*13))
			}
			return m.Submit(core.Launch{Kernel: ks, Grid: [3]uint32{n, 1, 1},
				WG: [3]uint16{128, 1, 1}, Args: []uint64{inAddr, outAddr}})
		}
		run, m, err := sim.Run(abs, "barrier_timed", setup, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if run.InstsByCategory[isa.CatMisc] == 0 {
			t.Errorf("%s: no barrier instructions counted", abs)
		}
		for i := 0; i < n; i++ {
			wg, lane := i/128, i%128
			want := uint32((wg*128 + (127 - lane)) * 13)
			if got := m.Ctx.Mem.ReadU32(outAddr + uint64(4*i)); got != want {
				t.Fatalf("%s: cross-wave barrier broken at %d: got %d want %d", abs, i, got, want)
			}
		}
	}
}

// TestIBFlushesTrackDivergence: divergent control flow must flush HSAIL's
// instruction buffer more than GCN3's on the timed model.
func TestIBFlushesTrackDivergence(t *testing.T) {
	h := runWorkload(t, "CoMD", core.AbsHSAIL)
	g := runWorkload(t, "CoMD", core.AbsGCN3)
	hRate := float64(h.IBFlushes) / float64(h.TotalInsts())
	gRate := float64(g.IBFlushes) / float64(g.TotalInsts())
	if hRate <= gRate {
		t.Errorf("divergent workload flush rates: HSAIL %.4f <= GCN3 %.4f", hRate, gRate)
	}
}

// TestSmallGPUStillCompletes: a 1-CU single-SIMD configuration must still
// drain every workgroup.
func TestSmallGPUStillCompletes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.NumCUs = 1
	cfg.SIMDsPerCU = 1
	cfg.WFSlots = 4
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("BitonicSort")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	run, m, err := sim.Run(core.AbsGCN3, "BitonicSort", inst.Setup, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(m); err != nil {
		t.Fatal(err)
	}
	if run.Cycles == 0 {
		t.Fatal("no cycles recorded")
	}
}

// TestExtremeLatencyCompletes: pathological memory latencies must not
// deadlock the pipeline, and waitcnt/scoreboard semantics must still deliver
// correct results.
func TestExtremeLatencyCompletes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.DRAMLatency = 5000
	cfg.DRAMOccupancy = 64
	cfg.L2HitLatency = 500
	cfg.L1HitLatency = 100
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("SpMV")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		run, m, err := sim.Run(abs, "SpMV", inst.Setup, core.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", abs, err)
		}
		if err := inst.Check(m); err != nil {
			t.Fatalf("%s: %v", abs, err)
		}
		if run.Cycles == 0 {
			t.Fatalf("%s: no cycles", abs)
		}
	}
}

// TestLatencyMonotonicity: slower memory must never make a memory-bound
// workload faster.
func TestLatencyMonotonicity(t *testing.T) {
	w, err := workloads.ByName("ArrayBW")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, lat := range []int64{80, 160, 640} {
		cfg := core.DefaultConfig()
		cfg.DRAMLatency = lat
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, m, err := sim.Run(core.AbsGCN3, "ArrayBW", inst.Setup, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Check(m); err != nil {
			t.Fatal(err)
		}
		if i > 0 && run.Cycles < prev {
			t.Fatalf("DRAM latency %d made the run FASTER: %d < %d", lat, run.Cycles, prev)
		}
		prev = run.Cycles
	}
}
