package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"ilsim/internal/stats"
)

// WireResult is the portable serialization of one job's Result: what the
// journal appends per completed job and what a distributed worker streams
// back to its coordinator. Jobs are identified by fingerprint rather than
// by value, and successful runs carry an integrity hash so corruption —
// on disk or in flight — is detected at decode time. exp.Job itself needs
// no wire twin: every field is a plain exported value, so it marshals
// directly as JSON.
type WireResult struct {
	// Index is the job's position in the submitted job set.
	Index int `json:"index"`
	// Job is the job's Fingerprint(); the receiving side validates it
	// against its own job set before accepting the result.
	Job string `json:"job"`
	// JobName is the job's String(), kept for human-readable records.
	JobName  string `json:"jobName,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	WallNS   int64  `json:"wallNs,omitempty"`
	// Err and ErrClass record a failure (the job is not retried by the
	// receiver; the taxonomy class survives the wire via RemoteError).
	Err      string `json:"err,omitempty"`
	ErrClass string `json:"errClass,omitempty"`
	// Run and RunSHA record a success; RunSHA hashes Run.Fingerprint().
	Run    *stats.Run `json:"run,omitempty"`
	RunSHA string     `json:"runSha,omitempty"`
}

// EncodeResult serializes one result for index i of a job set whose i-th
// fingerprint is fp.
func EncodeResult(i int, fp string, r Result) WireResult {
	w := WireResult{
		Index: i, Job: fp, JobName: r.Job.String(),
		Attempts: r.Attempts, WallNS: int64(r.Wall),
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
		w.ErrClass = Classify(r.Err).String()
	} else {
		w.Run = r.Run
		w.RunSHA = runSHA(r.Run)
	}
	return w
}

// Decode reconstructs the Result. Failures come back with a *RemoteError
// preserving the sender's error class; successes are verified against
// their integrity hash and rejected (with a non-nil second return) when
// the run does not hash to RunSHA.
func (w WireResult) Decode() (Result, error) {
	r := Result{Attempts: w.Attempts, Wall: time.Duration(w.WallNS)}
	if w.Err != "" {
		r.Err = &RemoteError{Msg: w.Err, Class: ParseClass(w.ErrClass)}
		return r, nil
	}
	if w.Run == nil {
		return r, fmt.Errorf("exp: wire result for job %d has neither run nor error", w.Index)
	}
	if got := runSHA(w.Run); got != w.RunSHA {
		return r, &IntegrityError{Index: w.Index, Want: w.RunSHA, Got: got}
	}
	r.Run = w.Run
	return r, nil
}

// RemoteError is a job failure that crossed a serialization boundary (the
// journal or the distributed-worker wire). The original error value is
// gone; its text and taxonomy class survive, so Classify and the retry
// policy keep working on the receiving side.
type RemoteError struct {
	// Msg is the original error text.
	Msg string
	// Class is the original error's Classify result.
	Class Class
}

func (e *RemoteError) Error() string { return e.Msg }

// IntegrityError is a payload whose content does not hash to its declared
// integrity hash — corruption on disk or in flight, or a sender computing
// hashes over different bytes than it shipped. Classifies as
// ClassIntegrity; a distributed coordinator treats it as a strike against
// the sending worker's health score.
type IntegrityError struct {
	// Index is the job index the payload claimed to answer.
	Index int
	// Want is the hash the payload declared; Got is the hash of its
	// actual content.
	Want, Got string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("exp: wire result for job %d fails its integrity hash (declared %s, content hashes to %s)",
		e.Index, e.Want, e.Got)
}

// ParseClass is the inverse of Class.String. Unknown names parse as
// ClassPermanent — the conservative reading: never retry what we cannot
// classify.
func ParseClass(s string) Class {
	for _, c := range []Class{ClassOK, ClassTransient, ClassPermanent,
		ClassCanceled, ClassTimeout, ClassBudget, ClassPanic, ClassIntegrity} {
		if c.String() == s {
			return c
		}
	}
	return ClassPermanent
}

// JobSetFingerprint hashes the ordered job fingerprints into one campaign
// identity. Coordinator and workers exchange it during the distributed
// handshake, and any two processes that disagree on it — different job
// sets, or different binaries that serialize jobs differently — refuse to
// cooperate instead of silently mixing results.
func JobSetFingerprint(jobs []Job) string {
	h := sha256.New()
	for _, fp := range fingerprints(jobs) {
		io.WriteString(h, fp)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
