// Package exp is the experiment engine: the single entry point for running
// declarative sets of (workload × scale × abstraction × config) simulation
// jobs. It executes jobs on a bounded goroutine worker pool, memoizes
// workload preparation per (workload, scale) so kernel finalization and
// input generation run once per sweep instead of once per design point, and
// returns results in deterministic job order regardless of completion
// order. Every multi-run campaign in the repository — the sweep and report
// CLIs, the figure benchmarks — submits through this engine.
package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ilsim/internal/core"
	"ilsim/internal/stats"
)

// Job is one experiment point: a workload executed at one input scale under
// one abstraction on one machine configuration.
type Job struct {
	// Label names the point in progress reports and result tables
	// (e.g. "banks=16"); optional.
	Label    string
	Workload string
	Scale    int
	Abs      core.Abstraction
	Config   core.Config
	Opts     core.RunOptions
	// SkipCheck disables the workload's host-side output verification
	// after the run.
	SkipCheck bool
	// Timeout bounds the job's wall-clock execution (0 = none). The
	// simulator observes it cooperatively (core.RunOptions.CheckEvery),
	// so an overrunning job dies mid-kernel with a timeout-classified
	// error instead of holding its worker forever.
	Timeout time.Duration
}

// String names the job for progress lines and errors.
func (j Job) String() string {
	s := fmt.Sprintf("%s/%s@%d", j.Workload, j.Abs, j.Scale)
	if j.Label != "" {
		s = j.Label + " " + s
	}
	return s
}

// Fingerprint returns a short stable hash over every field that influences
// the job's result — the identity the journal keys completed work by, in
// the same spirit as stats.Run.Fingerprint() on the result side. Two jobs
// with equal fingerprints would (determinism guarantee) produce
// byte-identical runs. CUParallelism and MemParallelism are excluded: they
// are execution knobs with byte-identical results at every setting, so a
// journal written on a 32-core host must resume cleanly on a laptop.
func (j Job) Fingerprint() string {
	opts := j.Opts
	opts.CUParallelism = 0
	opts.MemParallelism = 0
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%s|%v|%t|%+v|%+v",
		j.Label, j.Workload, j.Scale, j.Abs, j.Timeout, j.SkipCheck, j.Config, opts)
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// Result is one job's outcome. Results returned by Run are indexed exactly
// like the submitted jobs.
type Result struct {
	Job  Job
	Run  *stats.Run
	Err  error
	Wall time.Duration
	// Attempts counts executions this run, > 1 after transient retries
	// (0 for resumed results, which did not execute at all).
	Attempts int
	// Resumed marks a result restored from the engine's journal instead
	// of executed.
	Resumed bool
}

// Progress is the snapshot passed to a runner's progress hook each time a
// job finishes. Hook invocations are serialized by the runner (the local
// engine and the distributed coordinator alike).
type Progress struct {
	// Done and Failed count finished and failed jobs so far; Total is the
	// size of the job set.
	Done, Failed, Total int
	// Executed counts jobs that actually ran this campaign — Done minus
	// journal-resumed results — and is the basis of the ETA.
	Executed int
	// Job and Err describe the job that just finished.
	Job Job
	Err error
	// Wall is the finished job's wall time; Elapsed is the time since the
	// Run call started.
	Wall, Elapsed time.Duration
	// ETA estimates the time to drain the remaining jobs at the campaign's
	// observed throughput (Metrics.Throughput over the executed jobs so
	// far); zero until a first executed job establishes a rate.
	ETA time.Duration
	// Worker names the remote worker that executed the job in distributed
	// campaigns; empty for local runs.
	Worker string
}

// Line renders the standard one-line progress report the CLIs print to
// stderr for every finished job.
func (p Progress) Line() string {
	status := "ok"
	if p.Err != nil {
		status = fmt.Sprintf("FAIL [%s]: %s", Classify(p.Err), p.Err)
	}
	s := fmt.Sprintf("[%d/%d] %-28s %8.2fs", p.Done, p.Total, p.Job, p.Wall.Seconds())
	if p.Worker != "" {
		s += "  " + p.Worker
	}
	s += "  " + status
	if p.ETA > 0 {
		s += fmt.Sprintf("  (eta %s)", p.ETA.Round(100*time.Millisecond))
	}
	return s
}

// progressETA estimates the time to finish total-done jobs given that
// executed of the done jobs ran in elapsed wall time. It derives the rate
// through Metrics.Throughput so the progress line and the end-of-run
// summary can never disagree about what "jobs per second" means.
func progressETA(executed, done, total int, elapsed time.Duration) time.Duration {
	tput := Metrics{Jobs: done, Resumed: done - executed, Elapsed: elapsed}.Throughput()
	if tput <= 0 || total <= done {
		return 0
	}
	return time.Duration(float64(total-done) / tput * float64(time.Second))
}

// Metrics summarizes one Run invocation.
type Metrics struct {
	Jobs   int
	Failed int
	// Resumed counts jobs restored from the journal instead of executed.
	Resumed int
	// Retries counts extra executions spent on transient failures.
	Retries int
	// Elapsed is the wall time of the whole Run call; JobWall is the sum
	// of per-job wall times for jobs executed this run (resumed results
	// are excluded so Speedup reflects work actually done).
	Elapsed time.Duration
	JobWall time.Duration
}

// Throughput returns jobs completed this run per second of engine wall
// time (resumed jobs did no work and are excluded).
func (m Metrics) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Jobs-m.Failed-m.Resumed) / m.Elapsed.Seconds()
}

// Speedup returns the parallel speedup over serial execution of the same
// job set (sum of job wall times over engine wall time).
func (m Metrics) Speedup() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return m.JobWall.Seconds() / m.Elapsed.Seconds()
}

// Mode selects the engine's error handling.
type Mode int

const (
	// CollectAll runs every job to completion; failures are recorded in
	// the failing job's Result and do not abort the sweep.
	CollectAll Mode = iota
	// FailFast cancels outstanding jobs after the first failure; jobs that
	// never started carry ErrCanceled.
	FailFast
)

// ErrCanceled marks jobs skipped because a FailFast engine saw an earlier
// failure or the Run context ended before they started.
var ErrCanceled = errors.New("exp: job canceled after earlier failure")

// Runner executes a job set and returns one Result per job in submission
// order plus aggregate metrics — the contract every campaign consumer
// (the CLIs, report.CollectParallel) programs against. *Engine is the
// in-process runner; dist.Coordinator satisfies the same interface by
// fanning the jobs out to remote workers.
type Runner interface {
	Run(jobs []Job) ([]Result, Metrics, error)
	RunContext(ctx context.Context, jobs []Job) ([]Result, Metrics, error)
}

// Engine executes job sets. The zero value is usable (CollectAll mode,
// GOMAXPROCS workers, no retries); New is a convenience for setting the
// pool size. An engine may run many job sets; its instance cache persists
// across Run calls, so sweeps over the same workload reuse prepared
// kernels.
type Engine struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Mode selects CollectAll (default) or FailFast error handling.
	Mode Mode
	// OnProgress, when non-nil, observes every job completion. Calls are
	// serialized; keep the hook cheap (it is on the completion path).
	OnProgress func(Progress)
	// Retry governs re-execution of transiently failing jobs; the zero
	// value never retries.
	Retry RetryPolicy
	// Journal, when non-nil, records every completed result and pre-fills
	// results the journal already holds, so an interrupted campaign
	// resumes instead of restarting (see OpenJournal).
	Journal *Journal
	// Faults, when non-nil, injects scheduled failures into matching jobs
	// — test instrumentation for the fault-tolerance suite.
	Faults *FaultPlan

	// CUParallelism overrides every job's core.RunOptions.CUParallelism —
	// it is a property of the executing host, not of the job (and is
	// excluded from job fingerprints for the same reason). 0 keeps the
	// jobs' own settings, which normally auto-resolve against this
	// engine's worker count so the two parallelism levels share the
	// machine instead of oversubscribing it.
	CUParallelism int

	// MemParallelism is the same host-level override for the phase-2
	// memory-drain parallelism (core.RunOptions.MemParallelism), excluded
	// from job fingerprints for the same reason.
	MemParallelism int

	cacheOnce sync.Once
	cache     *InstanceCache
}

var _ Runner = (*Engine)(nil)

// New creates an engine with the given worker-pool bound (<= 0 means
// GOMAXPROCS).
func New(workers int) *Engine {
	return &Engine{Workers: workers, cache: NewInstanceCache()}
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// instances returns the engine's instance cache, lazily initializing it so
// the zero-value Engine degrades gracefully instead of crashing in a
// worker.
func (e *Engine) instances() *InstanceCache {
	e.cacheOnce.Do(func() {
		if e.cache == nil {
			e.cache = NewInstanceCache()
		}
	})
	return e.cache
}

// Run executes the job set and returns one Result per job in submission
// order, regardless of completion order, plus aggregate metrics. In
// CollectAll mode the returned error is always nil and per-job errors live
// in the Results; in FailFast mode the first job error is also returned.
func (e *Engine) Run(jobs []Job) ([]Result, Metrics, error) {
	return e.RunContext(context.Background(), jobs)
}

// RunContext is Run under a context: canceling parent stops the sweep —
// in-flight simulations die at their next watchdog check, unstarted jobs
// come back as ErrCanceled — regardless of Mode. With a Journal attached,
// jobs the journal records as successfully completed are restored instead
// of executed and every newly completed job is appended to it.
func (e *Engine) RunContext(parent context.Context, jobs []Job) ([]Result, Metrics, error) {
	start := time.Now()
	results := make([]Result, len(jobs))
	for i := range jobs {
		results[i].Job = jobs[i]
	}
	if len(jobs) == 0 {
		return results, Metrics{}, nil
	}
	if parent == nil {
		parent = context.Background()
	}

	// Resume: restore journaled completions, schedule only the rest.
	pending := make([]int, 0, len(jobs))
	resumed := 0
	if e.Journal != nil {
		if err := e.Journal.Bind(jobs); err != nil {
			return results, Metrics{}, err
		}
		for i := range jobs {
			if r, ok := e.Journal.Completed(i); ok {
				results[i].Run, results[i].Wall, results[i].Resumed = r.Run, r.Wall, true
				resumed++
				continue
			}
			pending = append(pending, i)
		}
	} else {
		for i := range jobs {
			pending = append(pending, i)
		}
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu         sync.Mutex // guards counters, firstErr, hook calls
		done       = resumed
		failed     int
		retries    int
		firstErr   error
		journalErr error
	)
	next := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers()
	if workers > len(pending) {
		workers = len(pending)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := &results[i]
				if parent.Err() != nil || (e.Mode == FailFast && ctx.Err() != nil) {
					r.Err = ErrCanceled
				} else {
					e.execute(ctx, jobs[i], r)
				}
				mu.Lock()
				done++
				if r.Attempts > 1 {
					retries += r.Attempts - 1
				}
				if r.Err != nil {
					failed++
					if firstErr == nil && !errors.Is(r.Err, ErrCanceled) {
						firstErr = fmt.Errorf("exp: job %s: %w", jobs[i], r.Err)
						if e.Mode == FailFast {
							cancel()
						}
					}
				}
				// Canceled jobs never completed; leave them out of the
				// journal so a resume re-runs them.
				if e.Journal != nil && !errors.Is(r.Err, ErrCanceled) {
					if err := e.Journal.Record(i, *r); err != nil && journalErr == nil {
						journalErr = err
						cancel()
					}
				}
				if e.OnProgress != nil {
					elapsed := time.Since(start)
					e.OnProgress(Progress{
						Done: done, Failed: failed, Total: len(jobs),
						Executed: done - resumed,
						Job:      jobs[i], Err: r.Err,
						Wall: r.Wall, Elapsed: elapsed,
						ETA: progressETA(done-resumed, done, len(jobs), elapsed),
					})
				}
				mu.Unlock()
			}
		}()
	}
	for _, i := range pending {
		next <- i
	}
	close(next)
	wg.Wait()

	m := Metrics{Jobs: len(jobs), Failed: failed, Resumed: resumed,
		Retries: retries, Elapsed: time.Since(start)}
	for i := range results {
		if !results[i].Resumed {
			m.JobWall += results[i].Wall
		}
	}
	if journalErr != nil {
		return results, m, fmt.Errorf("exp: journal: %w", journalErr)
	}
	if e.Mode == FailFast {
		return results, m, firstErr
	}
	return results, m, nil
}

// execute runs one job to its final outcome: attempts, per-attempt timeout
// contexts, and backoff between transient failures. Wall covers the whole
// effort, retries and backoff included.
func (e *Engine) execute(ctx context.Context, job Job, r *Result) {
	jobStart := time.Now()
	defer func() { r.Wall = time.Since(jobStart) }()
	for attempt := 1; ; attempt++ {
		r.Attempts = attempt
		jctx, cancelJob := jobContext(ctx, job)
		r.Run, r.Err = e.runJob(jctx, job, attempt)
		cancelJob()
		if r.Err == nil || ctx.Err() != nil || !e.Retry.ShouldRetry(attempt, r.Err) {
			return
		}
		if !sleepContext(ctx, e.Retry.Backoff(attempt)) {
			return
		}
	}
}

// jobContext derives the per-attempt context: the job's wall-clock timeout
// under the engine context.
func jobContext(ctx context.Context, job Job) (context.Context, context.CancelFunc) {
	if job.Timeout > 0 {
		return context.WithTimeout(ctx, job.Timeout)
	}
	return ctx, func() {}
}

// runJob executes one job attempt: inject faults, prepare (via the cache),
// simulate under ctx, verify. A panic anywhere inside — a workload bug, a
// simulator bug, an injected fault — is recovered into a PanicError so it
// fails only this job, not the whole sweep.
func (e *Engine) runJob(ctx context.Context, job Job, attempt int) (run *stats.Run, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Job: job.String(), Value: p, Stack: debug.Stack()}
		}
	}()
	if e.Faults != nil {
		if err := e.Faults.apply(ctx, job, attempt); err != nil {
			return nil, err
		}
	}
	inst, err := e.instances().Get(job.Workload, job.Scale)
	if err != nil {
		return nil, err
	}
	sim, err := core.NewSimulator(job.Config)
	if err != nil {
		return nil, err
	}
	opts := job.Opts
	if e.CUParallelism != 0 {
		// Host-level override (results are identical at every setting).
		opts.CUParallelism = e.CUParallelism
	} else if opts.CUParallelism <= 0 {
		// Auto: budget the host's cores across this engine's concurrent
		// jobs, so -j and intra-simulation parallelism multiply to
		// roughly GOMAXPROCS instead of compounding.
		opts.CUParallelism = core.ResolveCUParallelism(0, job.Config.NumCUs, e.workers())
	}
	if e.MemParallelism != 0 {
		opts.MemParallelism = e.MemParallelism
	} else if opts.MemParallelism <= 0 {
		opts.MemParallelism = core.ResolveMemParallelism(0, job.Config.DrainWidth(), e.workers())
	}
	run, m, err := sim.RunContext(ctx, job.Abs, job.Workload, inst.Setup, opts)
	if err != nil {
		return nil, err
	}
	if !job.SkipCheck {
		if err := inst.Check(m); err != nil {
			return nil, fmt.Errorf("output check: %w", err)
		}
	}
	if e.Faults != nil {
		e.Faults.mutate(job, run)
	}
	return run, nil
}

// WriteFailureSummary writes one line per failed result — job, error
// class, error — and returns the number of failures. The CLIs print it to
// stderr so a collect-all campaign with failures is visibly (and, via the
// exit code, programmatically) distinguishable from a clean one.
func WriteFailureSummary(w io.Writer, results []Result) int {
	n := 0
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		n++
		fmt.Fprintf(w, "FAILED %-28s [%s] %v\n", r.Job, Classify(r.Err), r.Err)
	}
	return n
}

// PairJobs builds the standard dual-abstraction job set: for each sweep
// point, the workload under HSAIL then GCN3 (the paper's fundamental
// experiment shape). Results come back as consecutive (HSAIL, GCN3) pairs
// per point.
func PairJobs(workload string, scale int, pts []Point, opts core.RunOptions) []Job {
	jobs := make([]Job, 0, 2*len(pts))
	for _, pt := range pts {
		for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			jobs = append(jobs, Job{
				Label:    pt.Label,
				Workload: workload,
				Scale:    scale,
				Abs:      abs,
				Config:   pt.Config,
				Opts:     opts,
			})
		}
	}
	return jobs
}
