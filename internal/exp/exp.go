// Package exp is the experiment engine: the single entry point for running
// declarative sets of (workload × scale × abstraction × config) simulation
// jobs. It executes jobs on a bounded goroutine worker pool, memoizes
// workload preparation per (workload, scale) so kernel finalization and
// input generation run once per sweep instead of once per design point, and
// returns results in deterministic job order regardless of completion
// order. Every multi-run campaign in the repository — the sweep and report
// CLIs, the figure benchmarks — submits through this engine.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ilsim/internal/core"
	"ilsim/internal/stats"
)

// Job is one experiment point: a workload executed at one input scale under
// one abstraction on one machine configuration.
type Job struct {
	// Label names the point in progress reports and result tables
	// (e.g. "banks=16"); optional.
	Label    string
	Workload string
	Scale    int
	Abs      core.Abstraction
	Config   core.Config
	Opts     core.RunOptions
	// SkipCheck disables the workload's host-side output verification
	// after the run.
	SkipCheck bool
}

// String names the job for progress lines and errors.
func (j Job) String() string {
	s := fmt.Sprintf("%s/%s@%d", j.Workload, j.Abs, j.Scale)
	if j.Label != "" {
		s = j.Label + " " + s
	}
	return s
}

// Result is one job's outcome. Results returned by Run are indexed exactly
// like the submitted jobs.
type Result struct {
	Job  Job
	Run  *stats.Run
	Err  error
	Wall time.Duration
}

// Progress is the snapshot passed to an engine's progress hook each time a
// job finishes. Hook invocations are serialized by the engine.
type Progress struct {
	// Done and Failed count finished and failed jobs so far; Total is the
	// size of the job set.
	Done, Failed, Total int
	// Job and Err describe the job that just finished.
	Job Job
	Err error
	// Wall is the finished job's wall time; Elapsed is the time since the
	// Run call started.
	Wall, Elapsed time.Duration
}

// Metrics summarizes one Run invocation.
type Metrics struct {
	Jobs   int
	Failed int
	// Elapsed is the wall time of the whole Run call; JobWall is the sum
	// of per-job wall times (Elapsed × perfect speedup).
	Elapsed time.Duration
	JobWall time.Duration
}

// Throughput returns completed jobs per second of engine wall time.
func (m Metrics) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Jobs-m.Failed) / m.Elapsed.Seconds()
}

// Speedup returns the parallel speedup over serial execution of the same
// job set (sum of job wall times over engine wall time).
func (m Metrics) Speedup() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return m.JobWall.Seconds() / m.Elapsed.Seconds()
}

// Mode selects the engine's error handling.
type Mode int

const (
	// CollectAll runs every job to completion; failures are recorded in
	// the failing job's Result and do not abort the sweep.
	CollectAll Mode = iota
	// FailFast cancels outstanding jobs after the first failure; jobs that
	// never started carry ErrCanceled.
	FailFast
)

// ErrCanceled marks jobs skipped because a FailFast engine saw an earlier
// failure.
var ErrCanceled = errors.New("exp: job canceled after earlier failure")

// Engine executes job sets. The zero value is not usable; construct with
// New. An engine may run many job sets; its instance cache persists across
// Run calls, so sweeps over the same workload reuse prepared kernels.
type Engine struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Mode selects CollectAll (default) or FailFast error handling.
	Mode Mode
	// OnProgress, when non-nil, observes every job completion. Calls are
	// serialized; keep the hook cheap (it is on the completion path).
	OnProgress func(Progress)

	cache *InstanceCache
}

// New creates an engine with the given worker-pool bound (<= 0 means
// GOMAXPROCS).
func New(workers int) *Engine {
	return &Engine{Workers: workers, cache: NewInstanceCache()}
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the job set and returns one Result per job in submission
// order, regardless of completion order, plus aggregate metrics. In
// CollectAll mode the returned error is always nil and per-job errors live
// in the Results; in FailFast mode the first job error is also returned.
func (e *Engine) Run(jobs []Job) ([]Result, Metrics, error) {
	start := time.Now()
	results := make([]Result, len(jobs))
	for i := range jobs {
		results[i].Job = jobs[i]
	}
	if len(jobs) == 0 {
		return results, Metrics{}, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		mu       sync.Mutex // guards done, failed, firstErr, hook calls
		done     int
		failed   int
		firstErr error
	)
	next := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := &results[i]
				if e.Mode == FailFast && ctx.Err() != nil {
					r.Err = ErrCanceled
				} else {
					jobStart := time.Now()
					r.Run, r.Err = e.runJob(jobs[i])
					r.Wall = time.Since(jobStart)
				}
				mu.Lock()
				done++
				if r.Err != nil {
					failed++
					if firstErr == nil && !errors.Is(r.Err, ErrCanceled) {
						firstErr = fmt.Errorf("exp: job %s: %w", jobs[i], r.Err)
						if e.Mode == FailFast {
							cancel()
						}
					}
				}
				if e.OnProgress != nil {
					e.OnProgress(Progress{
						Done: done, Failed: failed, Total: len(jobs),
						Job: jobs[i], Err: r.Err,
						Wall: r.Wall, Elapsed: time.Since(start),
					})
				}
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	m := Metrics{Jobs: len(jobs), Failed: failed, Elapsed: time.Since(start)}
	for i := range results {
		m.JobWall += results[i].Wall
	}
	if e.Mode == FailFast {
		return results, m, firstErr
	}
	return results, m, nil
}

// runJob executes one job: prepare (via the cache), simulate, verify.
func (e *Engine) runJob(job Job) (*stats.Run, error) {
	inst, err := e.cache.Get(job.Workload, job.Scale)
	if err != nil {
		return nil, err
	}
	sim, err := core.NewSimulator(job.Config)
	if err != nil {
		return nil, err
	}
	run, m, err := sim.Run(job.Abs, job.Workload, inst.Setup, job.Opts)
	if err != nil {
		return nil, err
	}
	if !job.SkipCheck {
		if err := inst.Check(m); err != nil {
			return nil, fmt.Errorf("output check: %w", err)
		}
	}
	return run, nil
}

// PairJobs builds the standard dual-abstraction job set: for each sweep
// point, the workload under HSAIL then GCN3 (the paper's fundamental
// experiment shape). Results come back as consecutive (HSAIL, GCN3) pairs
// per point.
func PairJobs(workload string, scale int, pts []Point, opts core.RunOptions) []Job {
	jobs := make([]Job, 0, 2*len(pts))
	for _, pt := range pts {
		for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			jobs = append(jobs, Job{
				Label:    pt.Label,
				Workload: workload,
				Scale:    scale,
				Abs:      abs,
				Config:   pt.Config,
				Opts:     opts,
			})
		}
	}
	return jobs
}
