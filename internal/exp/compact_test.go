package exp

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// TestCompactJournalRoundTrip is the compaction acceptance test: a journal
// holding superseded entries (a failure later replaced by a success) and
// quorum vote records is compacted to one entry per job, and a resume from
// the compacted file produces results fingerprint-identical to a resume
// from the original.
func TestCompactJournalRoundTrip(t *testing.T) {
	jobs := tinyJobs(t, 2) // 4 jobs
	path := journalPath(t)

	clean, _, err := New(4).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1's history: two recorded failures, then the success that
	// supersedes them. Jobs 0, 2, 3 are recorded once. Interleave vote
	// audit records like a replicated coordinator would.
	fail := Result{Err: errors.New("flaky board")}
	if err := j.Record(1, fail); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordVote(1, "w1", "err:permanent", "err:permanent"); err != nil {
		t.Fatal(err)
	}
	for i, r := range clean {
		if i == 1 {
			if err := j.Record(1, fail); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Record(i, Result{Run: r.Run, Wall: 5 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if err := j.RecordVote(i, "w1", RunSHA(r.Run), RunSHA(r.Run)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// 4 result lines survive; 2 superseded failures + 5 votes drop.
	kept, droppedN, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != len(jobs) || droppedN != 7 {
		t.Fatalf("compacted to %d kept / %d dropped, want %d / 7", kept, droppedN, len(jobs))
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(raw), "\n"); got != len(jobs)+1 {
		t.Fatalf("compacted journal has %d lines, want header + %d", got, len(jobs))
	}
	if strings.Contains(string(raw), `"type":"vote"`) {
		t.Fatal("vote records survived compaction")
	}

	// The compacted journal resumes every job with identical fingerprints.
	j2, err := OpenJournal(path, jobs, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Resumable(); n != len(jobs) {
		t.Fatalf("compacted journal resumes %d jobs, want %d", n, len(jobs))
	}
	eng := New(4)
	eng.Journal = j2
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[0].String(), Fault{Panic: "resumed job re-executed"})
	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Resumed != len(jobs) || m.Failed != 0 {
		t.Fatalf("resume metrics after compaction: %+v", m)
	}
	for i, r := range results {
		if r.Run == nil || !bytes.Equal(r.Run.Fingerprint(), clean[i].Run.Fingerprint()) {
			t.Fatalf("job %d: compacted resume differs from uninterrupted run", i)
		}
	}
}

// TestCompactJournalIdempotent: compacting an already-compact journal
// keeps everything and drops nothing, byte-for-byte.
func TestCompactJournalIdempotent(t *testing.T) {
	jobs := tinyJobs(t, 1)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, _, err := CompactJournal(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, droppedN, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != len(jobs) || droppedN != 0 {
		t.Fatalf("second compaction: %d kept / %d dropped, want %d / 0", kept, droppedN, len(jobs))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("idempotent compaction changed the file")
	}
}

// TestCompactJournalToleratesPartialTrailingLine mirrors the loader's
// kill-mid-write tolerance: a truncated final line is dropped, everything
// before it survives.
func TestCompactJournalToleratesPartialTrailingLine(t *testing.T) {
	jobs := tinyJobs(t, 1)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"result","index":1,"jo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	kept, droppedN, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != len(jobs) || droppedN != 1 {
		t.Fatalf("%d kept / %d dropped, want %d / 1", kept, droppedN, len(jobs))
	}
	j2, err := OpenJournal(path, jobs, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Resumable(); n != len(jobs) {
		t.Fatalf("resumes %d jobs after partial-line compaction, want %d", n, len(jobs))
	}
}

// TestCompactJournalRejectsInteriorCorruption: garbage before the end is a
// hard error, and the original file is left untouched.
func TestCompactJournalRejectsInteriorCorruption(t *testing.T) {
	jobs := tinyJobs(t, 1)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	lines[1] = []byte(`{"type":"result","index":0,"garbage`)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)
	if _, _, err := CompactJournal(path); err == nil {
		t.Fatal("compaction accepted interior corruption")
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("failed compaction modified the journal")
	}
}
