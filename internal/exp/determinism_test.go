package exp

import (
	"bytes"
	"errors"
	"testing"

	"ilsim/internal/core"
)

// determinismJobs is a mixed job set exercising both abstractions, two
// workloads (one uniform-loop, one divergent) and two design points, with
// the expensive optional statistics on — the widest deterministic surface
// we can afford at unit scale.
func determinismJobs(t *testing.T) []Job {
	t.Helper()
	pts, err := SweepPoints("banks")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.RunOptions{TrackValues: true, ValueSampleEvery: 4, TrackReuse: true}
	var jobs []Job
	jobs = append(jobs, PairJobs("ArrayBW", 1, pts[:2], opts)...)
	jobs = append(jobs, PairJobs("SpMV", 1, pts[:2], opts)...)
	return jobs
}

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: the
// same job set at -j 1 and -j 8 yields byte-identical stats.Run results
// per job. Any hidden shared state in core.Machine, workloads.Instance or
// the cached KernelSource would perturb a fingerprint. Run with -race this
// is the determinism gate wired into the `race` CI target.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	jobs := determinismJobs(t)

	serial := New(1)
	serialRes, _, err := serial.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel := New(8)
	parallelRes, _, err := parallel.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range jobs {
		s, p := serialRes[i], parallelRes[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("job %s: serial err %v, parallel err %v", jobs[i], s.Err, p.Err)
		}
		sf, pf := s.Run.Fingerprint(), p.Run.Fingerprint()
		if !bytes.Equal(sf, pf) {
			t.Errorf("job %s: -j1 and -j8 disagree:\n--- j1 ---\n%s--- j8 ---\n%s",
				jobs[i], sf, pf)
		}
	}
}

// TestDeterminismRepeatedParallelRuns re-runs the same parallel job set on
// one engine (hitting the instance cache the second time) and requires
// identical fingerprints: cached instances must not accumulate state.
func TestDeterminismRepeatedParallelRuns(t *testing.T) {
	jobs := determinismJobs(t)
	eng := New(8)
	first, _, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("job %s: errs %v / %v", jobs[i], first[i].Err, second[i].Err)
		}
		if !bytes.Equal(first[i].Run.Fingerprint(), second[i].Run.Fingerprint()) {
			t.Errorf("job %s: cached re-run changed results", jobs[i])
		}
	}
}

// TestCollectAllSurvivesMidSweepError plants a failing job in the middle of
// a sweep and requires every other job to complete with results — the
// collect-all contract: a failed point must not abort the sweep.
func TestCollectAllSurvivesMidSweepError(t *testing.T) {
	jobs := determinismJobs(t)
	bad := Job{Label: "bad", Workload: "NoSuchWorkload", Scale: 1,
		Abs: core.AbsHSAIL, Config: core.DefaultConfig()}
	mid := len(jobs) / 2
	jobs = append(jobs[:mid:mid], append([]Job{bad}, jobs[mid:]...)...)

	eng := New(4) // CollectAll is the default mode
	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatalf("CollectAll returned error: %v", err)
	}
	if m.Failed != 1 {
		t.Fatalf("metrics count %d failed, want 1", m.Failed)
	}
	for i, r := range results {
		if i == mid {
			if r.Err == nil {
				t.Fatal("planted failure produced no error")
			}
			if errors.Is(r.Err, ErrCanceled) {
				t.Fatal("planted failure reported as canceled")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("job %s aborted by unrelated failure: %v", r.Job, r.Err)
		}
		if r.Run == nil || r.Run.Cycles == 0 {
			t.Errorf("job %s yielded no result", r.Job)
		}
	}
}
