package exp

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"ilsim/internal/stats"
)

// ErrJournalMismatch marks a journal whose recorded job set does not match
// the job set it is being reused for. Resuming such a journal would splice
// results from a different campaign into this one, so the engine refuses.
var ErrJournalMismatch = errors.New("exp: journal job set does not match")

// journalVersion is the on-disk format version; bumped on incompatible
// changes so old journals fail loudly instead of resuming garbage.
const journalVersion = 1

// journalHeader is the first JSONL line: the identity of the campaign the
// journal checkpoints, as the ordered job fingerprints.
type journalHeader struct {
	Type    string   `json:"type"` // "header"
	Version int      `json:"version"`
	Jobs    []string `json:"jobs"`
}

// journalEntry is one completed job, success or failure, in the shared
// WireResult encoding (the same bytes a distributed worker streams to its
// coordinator). Successes carry the full stats.Run plus a hash of its
// fingerprint so corruption is detected at load; failures carry the error
// text and its class for the record (they are re-executed on resume — a
// crash or transient deserves another chance).
type journalEntry struct {
	Type string `json:"type"` // "result"
	WireResult
}

// journalVote is an audit record of one quorum vote in a replicated
// distributed campaign: which worker voted which way on which job, and
// whether its vote agreed with the accepted result. Votes are evidence,
// not state — the loader skips them, so a journal with votes resumes
// exactly like one without.
type journalVote struct {
	Type string `json:"type"` // "vote"
	// Index and Job identify the voted-on job (Job is its fingerprint).
	Index int    `json:"index"`
	Job   string `json:"job"`
	// Worker is the voter; Vote is its ballot — the run's integrity hash
	// for successes, "err:<class>" for failures.
	Worker string `json:"worker"`
	Vote   string `json:"vote"`
	// Accepted is the winning ballot; Agree records whether this vote
	// matched it.
	Accepted string `json:"accepted"`
	Agree    bool   `json:"agree"`
}

// Journal persists completed results of one job set as JSONL, one fsynced
// line per job, so a killed campaign loses at most the jobs in flight.
// Attach it to an Engine (Engine.Journal); the next Run skips every job the
// journal records as successfully completed and appends the rest as they
// finish. The file is self-describing: a header line fixes the job set
// (ordered job fingerprints) and every entry is validated against it on
// load.
type Journal struct {
	path string
	fps  []string

	mu   sync.Mutex
	f    *os.File
	done map[int]Result
}

// OpenJournal binds a journal file to a job set. When path does not exist
// a fresh journal is created (with or without resume). When it exists,
// resume must be true — refusing to silently clobber a checkpoint — and
// the file's recorded job set must match jobs exactly, or the open fails
// with ErrJournalMismatch. A partial trailing line (the mark of a kill
// mid-write) is tolerated and dropped.
func OpenJournal(path string, jobs []Job, resume bool) (*Journal, error) {
	j := &Journal{path: path, fps: fingerprints(jobs), done: make(map[int]Result)}
	switch _, err := os.Stat(path); {
	case err == nil:
		if !resume {
			return nil, fmt.Errorf("exp: journal %s already exists (use resume to continue it)", path)
		}
		if err := j.load(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		j.f = f
		return j, nil
	case errors.Is(err, fs.ErrNotExist):
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, err
		}
		j.f = f
		if err := j.append(journalHeader{Type: "header", Version: journalVersion, Jobs: j.fps}); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	default:
		return nil, err
	}
}

// load parses an existing journal: header first, then entries, validating
// each against the bound job set.
func (j *Journal) load() error {
	f, err := os.Open(j.path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	if !sc.Scan() {
		return fmt.Errorf("exp: journal %s: empty or unreadable header: %w", j.path, sc.Err())
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Type != "header" {
		return fmt.Errorf("exp: journal %s: bad header line", j.path)
	}
	if hdr.Version != journalVersion {
		return fmt.Errorf("exp: journal %s: version %d, want %d", j.path, hdr.Version, journalVersion)
	}
	if err := matchFingerprints(hdr.Jobs, j.fps); err != nil {
		return fmt.Errorf("%w (%s: %v)", ErrJournalMismatch, j.path, err)
	}
	line := 1
	var pendingErr error
	for sc.Scan() {
		line++
		// A parse failure is fatal only if more lines follow: the last
		// line may be a partial write from a killed process.
		if pendingErr != nil {
			return pendingErr
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			pendingErr = fmt.Errorf("exp: journal %s:%d: corrupt entry: %v", j.path, line, err)
			continue
		}
		if e.Type == "vote" {
			continue // audit record, not campaign state
		}
		if err := j.admit(e); err != nil {
			pendingErr = fmt.Errorf("exp: journal %s:%d: %w", j.path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("exp: journal %s: %w", j.path, err)
	}
	return nil
}

// admit validates one loaded entry and, for successes, stores it as
// completed.
func (j *Journal) admit(e journalEntry) error {
	if e.Type != "result" || e.Index < 0 || e.Index >= len(j.fps) {
		return fmt.Errorf("invalid entry (type %q, index %d)", e.Type, e.Index)
	}
	if e.Job != j.fps[e.Index] {
		return fmt.Errorf("%w: entry for job %d", ErrJournalMismatch, e.Index)
	}
	if e.Err != "" {
		return nil // recorded failure: kept on disk, re-executed on resume
	}
	r, err := e.Decode()
	if err != nil {
		return err
	}
	j.done[e.Index] = Result{Run: r.Run, Wall: r.Wall}
	return nil
}

// Bind verifies that jobs is exactly the job set this journal checkpoints.
// The engine calls it at the top of every Run with a journal attached.
func (j *Journal) Bind(jobs []Job) error {
	if err := matchFingerprints(j.fps, fingerprints(jobs)); err != nil {
		return fmt.Errorf("%w (%s: %v)", ErrJournalMismatch, j.path, err)
	}
	return nil
}

// Completed returns the journaled successful result for job index i.
func (j *Journal) Completed(i int) (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.done[i]
	return r, ok
}

// Resumable reports how many jobs the journal already holds successful
// results for.
func (j *Journal) Resumable() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Record appends one completed result and syncs it to disk. Successful
// results also become resumable in-process, so repeated Run calls on the
// same engine observe them.
func (j *Journal) Record(index int, r Result) error {
	if index < 0 || index >= len(j.fps) {
		return fmt.Errorf("exp: journal: index %d out of range", index)
	}
	e := journalEntry{Type: "result", WireResult: EncodeResult(index, j.fps[index], r)}
	if err := j.append(e); err != nil {
		return err
	}
	if r.Err == nil {
		j.mu.Lock()
		j.done[index] = Result{Run: r.Run, Wall: r.Wall}
		j.mu.Unlock()
	}
	return nil
}

// RecordVote appends one quorum-vote audit record. Votes never affect
// resume; they exist so a journal documents who agreed with what.
func (j *Journal) RecordVote(index int, worker, vote, accepted string) error {
	if index < 0 || index >= len(j.fps) {
		return fmt.Errorf("exp: journal: index %d out of range", index)
	}
	return j.append(journalVote{
		Type: "vote", Index: index, Job: j.fps[index],
		Worker: worker, Vote: vote, Accepted: accepted, Agree: vote == accepted,
	})
}

// append marshals v as one JSONL line, writes and fsyncs it. Jobs complete
// at sweep granularity (seconds, not microseconds), so per-entry durability
// is cheap relative to what it buys: a kill -9 loses only in-flight jobs.
func (j *Journal) append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("exp: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close releases the journal file. The journal stays resumable on disk.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// fingerprints maps jobs to their ordered fingerprints.
func fingerprints(jobs []Job) []string {
	fps := make([]string, len(jobs))
	for i, job := range jobs {
		fps[i] = job.Fingerprint()
	}
	return fps
}

// matchFingerprints compares two ordered job-fingerprint sets.
func matchFingerprints(recorded, current []string) error {
	if len(recorded) != len(current) {
		return fmt.Errorf("recorded %d jobs, current set has %d", len(recorded), len(current))
	}
	for i := range recorded {
		if recorded[i] != current[i] {
			return fmt.Errorf("job %d differs", i)
		}
	}
	return nil
}

// runSHA hashes a run's fingerprint for journal integrity checking.
func runSHA(run *stats.Run) string {
	sum := sha256.Sum256(run.Fingerprint())
	return hex.EncodeToString(sum[:16])
}

// RunSHA exposes the integrity hash of a run — the quantity quorum
// voting compares and WireResult.RunSHA carries.
func RunSHA(run *stats.Run) string { return runSHA(run) }
