package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.jsonl")
}

// TestJournalResumeRoundTrip is the checkpoint/resume acceptance test: a
// campaign that loses one job to an injected panic is resumed from its
// journal; the resumed run re-executes only the unfinished job (proven by
// arming a panic fault on an already-journaled job — it never fires), and
// the final result set is fingerprint-identical to an uninterrupted run.
func TestJournalResumeRoundTrip(t *testing.T) {
	jobs := tinyJobs(t, 2) // 4 jobs
	path := journalPath(t)

	clean, _, err := New(4).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// First flight: job 3 dies to an injected panic; the journal records
	// three successes and one failure, then the process "dies" (Close).
	j1, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(4)
	eng.Journal = j1
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[3].String(), Fault{Panic: "simulated crash"})
	first, m1, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Failed != 1 || first[3].Err == nil {
		t.Fatalf("first flight: %d failed (job 3 err %v), want exactly job 3", m1.Failed, first[3].Err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second flight: resume. Only job 3 may execute — a panic armed on
	// job 0 would kill the run if the engine re-executed it.
	j2, err := OpenJournal(path, jobs, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Resumable(); n != 3 {
		t.Fatalf("journal resumes %d jobs, want 3", n)
	}
	eng2 := New(4)
	eng2.Journal = j2
	eng2.Faults = NewFaultPlan()
	eng2.Faults.Set(jobs[0].String(), Fault{Panic: "resumed job re-executed"})
	results, m2, err := eng2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Failed != 0 {
		t.Fatalf("resumed flight failed %d jobs: %+v", m2.Failed, results)
	}
	if m2.Resumed != 3 {
		t.Fatalf("metrics count %d resumed, want 3", m2.Resumed)
	}
	for i, r := range results {
		wantResumed := i != 3
		if r.Resumed != wantResumed {
			t.Errorf("job %d: Resumed = %t, want %t", i, r.Resumed, wantResumed)
		}
		if wantResumed && r.Attempts != 0 {
			t.Errorf("job %d resumed but counts %d attempts", i, r.Attempts)
		}
		if r.Run == nil {
			t.Fatalf("job %d has no run", i)
		}
		if !bytes.Equal(r.Run.Fingerprint(), clean[i].Run.Fingerprint()) {
			t.Errorf("job %d: resumed result differs from uninterrupted run", i)
		}
	}
}

// TestJournalFullyResumed re-runs a completed campaign from its journal:
// nothing executes, everything resumes.
func TestJournalFullyResumed(t *testing.T) {
	jobs := tinyJobs(t, 1)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path, jobs, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	eng2 := New(2)
	eng2.Journal = j2
	eng2.Faults = NewFaultPlan()
	for _, job := range jobs {
		eng2.Faults.Set(job.String(), Fault{Panic: "nothing should execute"})
	}
	results, m, err := eng2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Resumed != len(jobs) || m.Failed != 0 {
		t.Fatalf("metrics %+v, want all %d jobs resumed", m, len(jobs))
	}
	for _, r := range results {
		if !r.Resumed || r.Run == nil {
			t.Fatalf("job %s not resumed", r.Job)
		}
	}
}

// TestJournalRefusesClobber: opening an existing journal without resume is
// an error — a checkpoint is never silently overwritten.
func TestJournalRefusesClobber(t *testing.T) {
	jobs := tinyJobs(t, 1)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, jobs, false); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("clobbering open returned %v", err)
	}
}

// TestJournalRefusesMismatchedJobSet: resuming with a different job set
// fails with ErrJournalMismatch, both at open and at engine bind time.
func TestJournalRefusesMismatchedJobSet(t *testing.T) {
	jobs := tinyJobs(t, 2)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := tinyJobs(t, 2)
	other[0].Scale = 3 // different fingerprint, same count
	if _, err := OpenJournal(path, other, true); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("mismatched resume returned %v, want ErrJournalMismatch", err)
	}
	if _, err := OpenJournal(path, jobs[:2], true); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("shorter job set returned %v, want ErrJournalMismatch", err)
	}

	// Bind-time refusal: a journal opened for one job set cannot be driven
	// with another by attaching it to an engine.
	j2, err := OpenJournal(path, jobs, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	eng := New(2)
	eng.Journal = j2
	if _, _, err := eng.Run(other); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("engine run with mismatched journal returned %v", err)
	}
}

// TestJournalToleratesPartialTrailingLine: a kill mid-write leaves a
// truncated last line; resume drops it and keeps every complete entry.
func TestJournalToleratesPartialTrailingLine(t *testing.T) {
	jobs := tinyJobs(t, 1) // 2 jobs
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"result","index":1,"job":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, jobs, true)
	if err != nil {
		t.Fatalf("partial trailing line rejected: %v", err)
	}
	defer j2.Close()
	if n := j2.Resumable(); n != 2 {
		t.Fatalf("journal resumes %d jobs after truncation, want 2", n)
	}
}

// TestJournalRejectsInteriorCorruption: a corrupt line that is NOT the
// last one cannot be a partial write — the journal refuses to load.
func TestJournalRejectsInteriorCorruption(t *testing.T) {
	jobs := tinyJobs(t, 1)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Corrupt the first result entry (line 2 of header+2 entries).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}
	lines[1] = lines[1][:len(lines[1])/2]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, jobs, true); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("interior corruption returned %v", err)
	}
}

// TestJournalRejectsTamperedResult: an entry whose stats.Run no longer
// matches its integrity hash fails the load.
func TestJournalRejectsTamperedResult(t *testing.T) {
	jobs := tinyJobs(t, 1)
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	var e journalEntry
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	e.Run.Cycles += 12345 // silent bit-rot stand-in
	tampered, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	lines[1] = string(tampered)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, jobs, true); err == nil ||
		!strings.Contains(err.Error(), "integrity") {
		t.Fatalf("tampered result returned %v", err)
	}
}

// TestJournalDoesNotResumeFailures: recorded failures stay on disk for
// the record but are re-executed on resume.
func TestJournalDoesNotResumeFailures(t *testing.T) {
	jobs := tinyJobs(t, 1) // 2 jobs
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	eng.Journal = j
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[1].String(), Fault{FailAttempts: 99, Err: errors.New("bad run")})
	if _, m, err := eng.Run(jobs); err != nil || m.Failed != 1 {
		t.Fatalf("first flight: err %v, %d failed", err, m.Failed)
	}
	j.Close()

	j2, err := OpenJournal(path, jobs, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Resumable(); n != 1 {
		t.Fatalf("journal resumes %d jobs, want only the success", n)
	}
	eng2 := New(2)
	eng2.Journal = j2
	results, m, err := eng2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Failed != 0 || results[1].Err != nil || results[1].Resumed {
		t.Fatalf("failed job not re-executed cleanly: %+v", results[1])
	}
}

// TestJournalSkipsCanceledJobs: canceled jobs must not be journaled —
// they are neither completed work nor real failures.
func TestJournalSkipsCanceledJobs(t *testing.T) {
	jobs := tinyJobs(t, 2) // 4 jobs
	path := journalPath(t)
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(1) // serial: job 0 fails, the rest are shed as canceled
	eng.Mode = FailFast
	eng.Journal = j
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[0].String(), Fault{FailAttempts: 99, Err: errors.New("fatal")})
	if _, _, err := eng.Run(jobs); err == nil {
		t.Fatal("FailFast run returned nil error")
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n")[1:] {
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		if e.ErrClass == ClassCanceled.String() {
			t.Fatalf("canceled job journaled: %s", line)
		}
	}
}
