package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ilsim/internal/core"
)

// TestZeroValueEngine proves the zero value degrades gracefully: the
// instance cache initializes lazily instead of panicking in a worker.
func TestZeroValueEngine(t *testing.T) {
	var eng Engine
	results, m, err := eng.Run(tinyJobs(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Failed != 0 {
		t.Fatalf("%d jobs failed on a zero-value engine", m.Failed)
	}
	for _, r := range results {
		if r.Err != nil || r.Run == nil {
			t.Fatalf("job %s: err %v, run %v", r.Job, r.Err, r.Run)
		}
	}
}

// TestPanicRecovery injects a panic into one job of a collect-all sweep:
// it must come back as a classified PanicError carrying the job label and
// a stack, with every other job unharmed and the engine reusable.
func TestPanicRecovery(t *testing.T) {
	jobs := tinyJobs(t, 2)
	eng := New(4)
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[1].String(), Fault{Panic: "injected crash"})

	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatalf("CollectAll returned error: %v", err)
	}
	if m.Failed != 1 {
		t.Fatalf("metrics count %d failed, want 1", m.Failed)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("panicking job error = %v, want *PanicError", results[1].Err)
	}
	if pe.Job != jobs[1].String() || pe.Value != "injected crash" {
		t.Fatalf("PanicError carries job %q value %v", pe.Job, pe.Value)
	}
	if !bytes.Contains(pe.Stack, []byte("runJob")) {
		t.Fatalf("PanicError stack does not show the worker frame:\n%s", pe.Stack)
	}
	if got := Classify(results[1].Err); got != ClassPanic {
		t.Fatalf("panic classified as %s", got)
	}
	for i, r := range results {
		if i == 1 {
			continue
		}
		if r.Err != nil || r.Run == nil {
			t.Fatalf("job %s harmed by sibling panic: %v", r.Job, r.Err)
		}
	}
	// The engine survives: a clean rerun on the same engine succeeds.
	eng.Faults = nil
	if _, m, err := eng.Run(jobs); err != nil || m.Failed != 0 {
		t.Fatalf("engine unusable after recovered panic: %v (%d failed)", err, m.Failed)
	}
}

// TestBudgetKillsRunawayJob gives one real simulation an impossible cycle
// budget: the watchdog must kill it mid-run with ErrBudgetExceeded while
// the rest of the sweep completes.
func TestBudgetKillsRunawayJob(t *testing.T) {
	jobs := tinyJobs(t, 1)
	runaway := Job{Label: "runaway", Workload: "ArrayBW", Scale: 1, Abs: core.AbsGCN3,
		Config: core.DefaultConfig(), Opts: core.RunOptions{MaxCycles: 100, CheckEvery: 16}}
	jobs = append(jobs, runaway)

	eng := New(2)
	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Failed != 1 {
		t.Fatalf("metrics count %d failed, want 1", m.Failed)
	}
	last := results[len(results)-1]
	if !errors.Is(last.Err, ErrBudgetExceeded) {
		t.Fatalf("budget job error = %v, want ErrBudgetExceeded", last.Err)
	}
	if got := Classify(last.Err); got != ClassBudget {
		t.Fatalf("budget kill classified as %s", got)
	}
	for _, r := range results[:len(results)-1] {
		if r.Err != nil {
			t.Fatalf("job %s harmed by sibling budget kill: %v", r.Job, r.Err)
		}
	}
}

// TestInstructionBudget kills a run by committed-instruction count.
func TestInstructionBudget(t *testing.T) {
	job := Job{Workload: "ArrayBW", Scale: 1, Abs: core.AbsHSAIL,
		Config: core.DefaultConfig(), Opts: core.RunOptions{MaxInsts: 10, CheckEvery: 16}}
	results, _, err := New(1).Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", results[0].Err)
	}
}

// TestTimeoutKillsSimulationMidRun sets a timeout that has already expired
// when the first watchdog check fires: the real simulation must die with a
// timeout-classified error instead of running to completion.
func TestTimeoutKillsSimulationMidRun(t *testing.T) {
	jobs := tinyJobs(t, 1)[:1]
	jobs[0].Timeout = time.Nanosecond
	jobs[0].Opts.CheckEvery = 16
	results, _, err := New(1).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("1ns-timeout job completed")
	}
	if got := Classify(results[0].Err); got != ClassTimeout {
		t.Fatalf("timeout classified as %s: %v", got, results[0].Err)
	}
}

// TestTimeoutKillsHangingJob uses the hang fault — a livelock stand-in that
// only cancellation can stop — under a short per-job timeout.
func TestTimeoutKillsHangingJob(t *testing.T) {
	jobs := tinyJobs(t, 1)
	jobs[0].Timeout = 20 * time.Millisecond
	eng := New(2)
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[0].String(), Fault{Hang: true})

	start := time.Now()
	results, _, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hang job held the sweep for %v", elapsed)
	}
	if got := Classify(results[0].Err); got != ClassTimeout {
		t.Fatalf("hung job classified as %s: %v", got, results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("sibling job failed: %v", results[1].Err)
	}
}

// TestRetryTransientThenSuccess fails a job's first two attempts with a
// transient error; with retries enabled the third attempt succeeds and the
// metrics account for the extra executions.
func TestRetryTransientThenSuccess(t *testing.T) {
	jobs := tinyJobs(t, 1)
	eng := New(2)
	// A seeded jitter source keeps the backoff schedule reproducible run
	// to run, so timing-sensitive fault schedules cannot flake.
	eng.Retry = RetryPolicy{MaxRetries: 3, BaseDelay: time.Microsecond,
		Rand: rand.New(rand.NewSource(42))}
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[0].String(), Fault{FailAttempts: 2, Err: Transient(errors.New("flaky prep"))})

	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("job did not recover: %v", results[0].Err)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("job took %d attempts, want 3", results[0].Attempts)
	}
	if results[0].Run == nil {
		t.Fatal("recovered job has no run")
	}
	if m.Retries != 2 || m.Failed != 0 {
		t.Fatalf("metrics %+v, want 2 retries, 0 failed", m)
	}
}

// TestRetrySkipsPermanentErrors proves the taxonomy gates the retry
// policy: a permanent failure executes exactly once even with retries on.
func TestRetrySkipsPermanentErrors(t *testing.T) {
	jobs := tinyJobs(t, 1)
	eng := New(1)
	eng.Retry = RetryPolicy{MaxRetries: 5, BaseDelay: time.Microsecond}
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[0].String(), Fault{FailAttempts: 99, Err: errors.New("deterministic failure")})

	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[0].Attempts != 1 {
		t.Fatalf("permanent error retried: attempts %d, err %v", results[0].Attempts, results[0].Err)
	}
	if m.Retries != 0 {
		t.Fatalf("metrics count %d retries, want 0", m.Retries)
	}
}

// TestRetryGivesUpAtMaxRetries bounds the retry loop.
func TestRetryGivesUpAtMaxRetries(t *testing.T) {
	jobs := tinyJobs(t, 1)
	eng := New(1)
	eng.Retry = RetryPolicy{MaxRetries: 2, BaseDelay: time.Microsecond,
		Rand: rand.New(rand.NewSource(7))}
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[0].String(), Fault{FailAttempts: 99, Err: Transient(errors.New("always flaky"))})

	results, _, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Attempts != 3 { // 1 attempt + 2 retries
		t.Fatalf("job took %d attempts, want 3", results[0].Attempts)
	}
	if !IsTransient(results[0].Err) {
		t.Fatalf("final error lost its class: %v", results[0].Err)
	}
}

// TestFailFastCancelsHangingJobMidFlight is the mid-job cancellation
// proof: a hanging job (livelock stand-in, no timeout of its own) is
// released by the fail-fast cancellation triggered by a sibling failure —
// FailFast no longer only sheds unstarted jobs.
func TestFailFastCancelsHangingJobMidFlight(t *testing.T) {
	jobs := tinyJobs(t, 2) // 4 jobs
	eng := New(2)
	eng.Mode = FailFast
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[0].String(), Fault{Hang: true})
	eng.Faults.Set(jobs[1].String(), Fault{Delay: 5 * time.Millisecond,
		FailAttempts: 99, Err: errors.New("fatal config")})

	done := make(chan struct{})
	var results []Result
	var err error
	go func() {
		results, _, err = eng.Run(jobs)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("FailFast did not cancel the hanging job")
	}
	if err == nil {
		t.Fatal("FailFast returned nil error")
	}
	if got := Classify(results[0].Err); got != ClassCanceled {
		t.Fatalf("hung job classified as %s: %v", got, results[0].Err)
	}
	for _, r := range results[2:] {
		if r.Err == nil {
			continue // may have raced to completion before the failure
		}
		if !errors.Is(r.Err, ErrCanceled) && Classify(r.Err) != ClassCanceled {
			t.Fatalf("tail job %s: %v", r.Job, r.Err)
		}
	}
}

// TestRunContextPreCanceled proves an already-ended context sheds every
// job as canceled in any mode, without executing simulations.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := tinyJobs(t, 2)
	results, m, err := New(4).RunContext(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Failed != len(jobs) {
		t.Fatalf("%d of %d jobs canceled", m.Failed, len(jobs))
	}
	for _, r := range results {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("job %s: %v, want ErrCanceled", r.Job, r.Err)
		}
	}
}

// TestFaultedSweepPreservesCleanResults is the headline acceptance
// criterion: a collect-all sweep containing an injected panicking job and
// an injected runaway (budget-killed) job completes, reports those two
// with their classes, and leaves every other result byte-identical (by
// stats.Run.Fingerprint) to a fault-free run of the same points.
func TestFaultedSweepPreservesCleanResults(t *testing.T) {
	base := tinyJobs(t, 2) // 4 jobs
	runaway := Job{Label: "runaway", Workload: "ArrayBW", Scale: 1, Abs: core.AbsGCN3,
		Config: core.DefaultConfig(), Opts: core.RunOptions{MaxCycles: 100, CheckEvery: 16}}

	clean, _, err := New(4).Run(base)
	if err != nil {
		t.Fatal(err)
	}

	jobs := append(append([]Job{}, base...), runaway)
	eng := New(4)
	eng.Faults = NewFaultPlan()
	eng.Faults.Set(jobs[1].String(), Fault{Panic: "injected panic"})
	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatalf("CollectAll returned error: %v", err)
	}
	if m.Failed != 2 {
		t.Fatalf("metrics count %d failed, want 2", m.Failed)
	}
	if got := Classify(results[1].Err); got != ClassPanic {
		t.Fatalf("panicking job classified as %s", got)
	}
	if got := Classify(results[4].Err); got != ClassBudget {
		t.Fatalf("runaway job classified as %s: %v", got, results[4].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Fatalf("clean job %s failed: %v", results[i].Job, results[i].Err)
		}
		if !bytes.Equal(results[i].Run.Fingerprint(), clean[i].Run.Fingerprint()) {
			t.Errorf("job %s: faulted sweep perturbed a clean result", results[i].Job)
		}
	}
}

// TestClassify pins the taxonomy.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassOK},
		{errors.New("boom"), ClassPermanent},
		{Transient(errors.New("boom")), ClassTransient},
		{fmt.Errorf("wrapped: %w", Transient(errors.New("boom"))), ClassTransient},
		{ErrCanceled, ClassCanceled},
		{context.Canceled, ClassCanceled},
		{fmt.Errorf("run canceled: %w", context.DeadlineExceeded), ClassTimeout},
		{fmt.Errorf("job: %w", ErrBudgetExceeded), ClassBudget},
		{&PanicError{Job: "x", Value: "v"}, ClassPanic},
		// An explicit transient wrapper outranks the inner class.
		{Transient(fmt.Errorf("t: %w", context.DeadlineExceeded)), ClassTransient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

// TestRetryPolicyBackoffBounds checks growth, cap and jitter range.
func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, Jitter: 0.5}
	for attempt := 1; attempt <= 6; attempt++ {
		ideal := float64(10*time.Millisecond) * float64(int(1)<<(attempt-1))
		if ideal > float64(80*time.Millisecond) {
			ideal = float64(80 * time.Millisecond)
		}
		for i := 0; i < 20; i++ {
			d := float64(p.Backoff(attempt))
			if d < ideal*0.49 || d > ideal*1.51 {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]",
					attempt, time.Duration(d), time.Duration(ideal*0.5), time.Duration(ideal*1.5))
			}
		}
	}
	nj := RetryPolicy{BaseDelay: time.Millisecond, Jitter: -1}
	if d := nj.Backoff(1); d != time.Millisecond {
		t.Fatalf("jitter-free backoff = %v, want 1ms", d)
	}
	if d := nj.Backoff(3); d != 4*time.Millisecond {
		t.Fatalf("jitter-free attempt-3 backoff = %v, want 4ms", d)
	}
}

// TestJobFingerprint distinguishes every result-relevant field and is
// stable for equal jobs.
func TestJobFingerprint(t *testing.T) {
	base := Job{Label: "p", Workload: "ArrayBW", Scale: 1, Abs: core.AbsHSAIL,
		Config: core.DefaultConfig()}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	vary := []Job{base, base, base, base, base, base}
	vary[1].Scale = 2
	vary[2].Abs = core.AbsGCN3
	vary[3].Config.VRFBanks++
	vary[4].Opts.MaxCycles = 7
	vary[5].Label = "q"
	seen := map[string]int{}
	for i, j := range vary {
		fp := j.Fingerprint()
		if prev, dup := seen[fp]; dup && prev != i && i != 0 {
			t.Fatalf("jobs %d and %d collide on %s", prev, i, fp)
		}
		seen[fp] = i
	}
	if len(seen) != 6 {
		t.Fatalf("%d distinct fingerprints for 6 distinct jobs", len(seen))
	}
}

// TestWriteFailureSummary checks the stderr failure report the CLIs share.
func TestWriteFailureSummary(t *testing.T) {
	results := []Result{
		{Job: Job{Workload: "A", Abs: core.AbsHSAIL, Scale: 1}},
		{Job: Job{Workload: "B", Abs: core.AbsGCN3, Scale: 1},
			Err: fmt.Errorf("died: %w", ErrBudgetExceeded)},
	}
	var buf bytes.Buffer
	if n := WriteFailureSummary(&buf, results); n != 1 {
		t.Fatalf("summary counted %d failures, want 1", n)
	}
	text := buf.String()
	if !strings.Contains(text, "FAILED") || !strings.Contains(text, "budget-exceeded") ||
		!strings.Contains(text, "B/GCN3@1") {
		t.Fatalf("summary missing fields:\n%s", text)
	}
	buf.Reset()
	if n := WriteFailureSummary(&buf, results[:1]); n != 0 || buf.Len() != 0 {
		t.Fatal("clean results produced a summary")
	}
}
