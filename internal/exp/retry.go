package exp

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy governs re-execution of failed jobs. The zero value retries
// nothing; setting MaxRetries > 0 retries transiently-classified failures
// with exponential backoff plus jitter. Budget kills, timeouts, panics and
// permanent errors are never retried by default — re-running a
// deterministic simulation into the same wall is wasted work — but a
// custom Retryable predicate can widen (or narrow) the set.
type RetryPolicy struct {
	// MaxRetries is the number of re-executions allowed per job after its
	// first attempt (0 = retries disabled).
	MaxRetries int
	// BaseDelay is the backoff before the first retry (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2, min 1).
	Multiplier float64
	// Jitter spreads each delay uniformly over [d·(1-J), d·(1+J)] to
	// decorrelate retry storms. Default 0.5; negative disables jitter.
	Jitter float64
	// Retryable decides which errors retry (default IsTransient).
	Retryable func(error) bool
	// Rand, when non-nil, supplies the jitter's randomness — seed it for
	// reproducible backoff sequences (the fault-injection tests do). Calls
	// are serialized internally, so one policy shared across engine
	// workers stays safe. Nil falls back to the global math/rand source.
	Rand *rand.Rand
}

// jitterMu serializes draws from a policy's seeded Rand: *rand.Rand is not
// goroutine-safe, and one policy is shared by every engine worker.
var jitterMu sync.Mutex

// jitterFloat draws the jitter sample from the policy's source.
func (p RetryPolicy) jitterFloat() float64 {
	if p.Rand != nil {
		jitterMu.Lock()
		defer jitterMu.Unlock()
		return p.Rand.Float64()
	}
	return rand.Float64()
}

// ShouldRetry reports whether a job that failed with err on its attempt-th
// execution (1-based) should run again.
func (p RetryPolicy) ShouldRetry(attempt int, err error) bool {
	if err == nil || attempt > p.MaxRetries {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return IsTransient(err)
}

// Backoff returns the delay before the retry following the attempt-th
// execution (1-based): BaseDelay · Multiplier^(attempt-1), capped at
// MaxDelay, jittered.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base) * math.Pow(mult, float64(attempt-1))
	if d > float64(maxd) {
		d = float64(maxd)
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		d *= 1 + jitter*(2*p.jitterFloat()-1)
	}
	if d < 0 {
		d = 0
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	return time.Duration(d)
}
