package exp

import (
	"sync"

	"ilsim/internal/workloads"
)

// PrepareFunc prepares a workload instance at a scale. The default
// implementation resolves the workload registry; tests substitute counters
// or failure injectors.
type PrepareFunc func(workload string, scale int) (*workloads.Instance, error)

func registryPrepare(workload string, scale int) (*workloads.Instance, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	return w.Prepare(scale)
}

// instanceKey identifies one cached preparation.
type instanceKey struct {
	workload string
	scale    int
}

// instanceEntry memoizes one preparation with once semantics: every caller
// observes the same (instance, error), and preparation runs exactly once
// even under concurrent Get calls.
type instanceEntry struct {
	once sync.Once
	inst *workloads.Instance
	err  error
}

// InstanceCache memoizes workload preparation per (workload, scale).
// Preparing a workload — kernel construction, finalization to GCN3, input
// generation — dwarfs per-point simulation setup, and is identical across
// config points; the cache makes an N-point sweep pay it once. Instances
// are safe to share because of the workloads.Instance concurrency contract.
type InstanceCache struct {
	prepare PrepareFunc
	mu      sync.Mutex
	entries map[instanceKey]*instanceEntry
}

// NewInstanceCache builds a cache over the workload registry.
func NewInstanceCache() *InstanceCache {
	return NewInstanceCacheFunc(registryPrepare)
}

// NewInstanceCacheFunc builds a cache with a custom preparation function
// (for tests).
func NewInstanceCacheFunc(prepare PrepareFunc) *InstanceCache {
	return &InstanceCache{prepare: prepare, entries: make(map[instanceKey]*instanceEntry)}
}

// Get returns the prepared instance for (workload, scale), preparing it on
// first use. Concurrent callers for the same key share one preparation;
// callers for different keys prepare in parallel.
func (c *InstanceCache) Get(workload string, scale int) (*workloads.Instance, error) {
	key := instanceKey{workload, scale}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &instanceEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.inst, e.err = c.prepare(workload, scale)
	})
	return e.inst, e.err
}

// Len reports the number of cached preparations (for tests and metrics).
func (c *InstanceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
