package exp

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/workloads"
)

// tinyJobs builds a fast dual-abstraction job set over n bank points.
// testing.TB so the fuzz harness can seed its corpus with real jobs.
func tinyJobs(t testing.TB, n int) []Job {
	t.Helper()
	pts, err := SweepPoints("banks")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < n {
		t.Fatalf("banks sweep has %d points, need %d", len(pts), n)
	}
	return PairJobs("ArrayBW", 1, pts[:n], core.RunOptions{})
}

func TestEngineResultOrderAndLabels(t *testing.T) {
	jobs := tinyJobs(t, 2)
	eng := New(4)
	results, m, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	if m.Jobs != len(jobs) || m.Failed != 0 {
		t.Fatalf("metrics %+v, want %d jobs, 0 failed", m, len(jobs))
	}
	for i, r := range results {
		if r.Job.Label != jobs[i].Label || r.Job.Abs != jobs[i].Abs {
			t.Fatalf("result %d is job %s, want %s", i, r.Job, jobs[i])
		}
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Job, r.Err)
		}
		if r.Run == nil || r.Run.TotalInsts() == 0 {
			t.Fatalf("job %s produced no run", r.Job)
		}
		if r.Wall <= 0 {
			t.Fatalf("job %s has no wall time", r.Job)
		}
	}
	// The HSAIL/GCN3 pairing must hold per point.
	for i := 0; i < len(results); i += 2 {
		if results[i].Job.Abs != core.AbsHSAIL || results[i+1].Job.Abs != core.AbsGCN3 {
			t.Fatalf("pair %d not (HSAIL, GCN3)", i/2)
		}
	}
}

func TestEngineProgressHook(t *testing.T) {
	jobs := tinyJobs(t, 2)
	eng := New(4)
	var calls int
	lastDone := 0
	eng.OnProgress = func(p Progress) {
		calls++
		// Serialized hook: Done must increase strictly one at a time.
		if p.Done != lastDone+1 {
			t.Errorf("progress Done = %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
		if p.Total != len(jobs) {
			t.Errorf("progress Total = %d, want %d", p.Total, len(jobs))
		}
	}
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Fatalf("progress hook called %d times, want %d", calls, len(jobs))
	}
}

func TestInstanceCacheMemoizes(t *testing.T) {
	var prepares atomic.Int64
	cache := NewInstanceCacheFunc(func(workload string, scale int) (*workloads.Instance, error) {
		prepares.Add(1)
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		return w.Prepare(scale)
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cache.Get("ArrayBW", 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := prepares.Load(); n != 1 {
		t.Fatalf("Prepare ran %d times for one (workload, scale), want 1", n)
	}
	if _, err := cache.Get("ArrayBW", 2); err != nil {
		t.Fatal(err)
	}
	if n := prepares.Load(); n != 2 {
		t.Fatalf("Prepare ran %d times for two scales, want 2", n)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
}

func TestInstanceCacheMemoizesErrors(t *testing.T) {
	var prepares atomic.Int64
	boom := errors.New("boom")
	cache := NewInstanceCacheFunc(func(string, int) (*workloads.Instance, error) {
		prepares.Add(1)
		return nil, boom
	})
	for i := 0; i < 3; i++ {
		if _, err := cache.Get("X", 1); !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	if n := prepares.Load(); n != 1 {
		t.Fatalf("failing Prepare ran %d times, want 1 (memoized)", n)
	}
}

func TestEngineSharesPreparationAcrossJobs(t *testing.T) {
	var prepares atomic.Int64
	eng := New(4)
	eng.cache = NewInstanceCacheFunc(func(workload string, scale int) (*workloads.Instance, error) {
		prepares.Add(1)
		return registryPrepare(workload, scale)
	})
	jobs := tinyJobs(t, 2) // 4 jobs, one (workload, scale)
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if n := prepares.Load(); n != 1 {
		t.Fatalf("engine prepared %d times for %d jobs of one workload, want 1", n, len(jobs))
	}
	// A second Run on the same engine reuses the cache entirely.
	if _, _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if n := prepares.Load(); n != 1 {
		t.Fatalf("second Run re-prepared (total %d), want cache hit", n)
	}
}

func TestFailFastCancelsRemainingJobs(t *testing.T) {
	// One bad job leading a long tail; a single worker guarantees the
	// failure is seen before the tail starts.
	jobs := []Job{{Workload: "NoSuchWorkload", Scale: 1, Abs: core.AbsHSAIL, Config: core.DefaultConfig()}}
	jobs = append(jobs, tinyJobs(t, 2)...)
	eng := New(1)
	eng.Mode = FailFast
	results, m, err := eng.Run(jobs)
	if err == nil {
		t.Fatal("FailFast returned nil error for a failing job set")
	}
	if results[0].Err == nil {
		t.Fatal("failing job carries no error")
	}
	canceled := 0
	for _, r := range results[1:] {
		if errors.Is(r.Err, ErrCanceled) {
			canceled++
		}
	}
	if canceled != len(results)-1 {
		t.Fatalf("%d of %d tail jobs canceled, want all", canceled, len(results)-1)
	}
	if m.Failed != len(jobs) {
		t.Fatalf("metrics count %d failed, want %d", m.Failed, len(jobs))
	}
}

func TestSweepPoints(t *testing.T) {
	for _, param := range SweepParams() {
		pts, err := SweepPoints(param)
		if err != nil {
			t.Fatalf("%s: %v", param, err)
		}
		if len(pts) < 4 {
			t.Fatalf("%s: only %d points", param, len(pts))
		}
		seen := map[string]bool{}
		for _, pt := range pts {
			if pt.Label == "" || seen[pt.Label] {
				t.Fatalf("%s: empty or duplicate label %q", param, pt.Label)
			}
			seen[pt.Label] = true
			if err := pt.Config.Validate(); err != nil {
				t.Fatalf("%s/%s: invalid config: %v", param, pt.Label, err)
			}
		}
	}
	if _, err := SweepPoints("nope"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}

func TestCUSweepScalesMachine(t *testing.T) {
	pts, err := SweepPoints("cus")
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for _, pt := range pts {
		if pt.Config.NumCUs <= last {
			t.Fatalf("cus sweep not strictly increasing at %s", pt.Label)
		}
		last = pt.Config.NumCUs
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{Jobs: 8, Failed: 2, Elapsed: 2e9, JobWall: 6e9}
	if got := m.Throughput(); got != 3 {
		t.Errorf("Throughput = %v, want 3", got)
	}
	if got := m.Speedup(); got != 3 {
		t.Errorf("Speedup = %v, want 3", got)
	}
}

func TestJobString(t *testing.T) {
	j := Job{Label: "banks=4", Workload: "MD", Scale: 2, Abs: core.AbsGCN3}
	want := "banks=4 MD/GCN3@2"
	if got := j.String(); got != want {
		t.Errorf("Job.String() = %q, want %q", got, want)
	}
}
