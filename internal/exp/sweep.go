package exp

import (
	"fmt"

	"ilsim/internal/core"
)

// Point is one design point of a parameter sweep: a labeled machine
// configuration.
type Point struct {
	Label  string
	Config core.Config
}

// SweepParams lists the supported sweep parameter names.
func SweepParams() []string {
	return []string{"banks", "ib", "waves", "l1i", "cus"}
}

// SweepPoints returns the design points for one microarchitecture
// parameter, each a variation of the paper's Table 4 baseline. These are
// the sensitivity studies an architect would run next with this
// infrastructure — and a demonstration that the IL-vs-ISA gap moves with
// the design point, so no fixed fudge-factor can correct IL simulation.
func SweepPoints(param string) ([]Point, error) {
	base := core.DefaultConfig()
	var pts []Point
	add := func(label string, mod func(*core.Config)) {
		cfg := base
		mod(&cfg)
		pts = append(pts, Point{label, cfg})
	}
	switch param {
	case "banks":
		for _, b := range []int{4, 8, 16, 32, 64} {
			b := b
			add(fmt.Sprintf("banks=%d", b), func(c *core.Config) { c.VRFBanks = b })
		}
	case "ib":
		for _, e := range []int{2, 4, 8, 16, 32} {
			e := e
			add(fmt.Sprintf("ib=%dB", e*8), func(c *core.Config) { c.IBEntries = e })
		}
	case "waves":
		for _, wf := range []int{4, 10, 20, 40} {
			wf := wf
			add(fmt.Sprintf("waves=%d", wf), func(c *core.Config) { c.WFSlots = wf })
		}
	case "l1i":
		for _, kb := range []int{4, 8, 16, 32, 64} {
			kb := kb
			add(fmt.Sprintf("l1i=%dKB", kb), func(c *core.Config) { c.L1ISize = kb << 10 })
		}
	case "cus":
		// Multi-point machine scaling: how the gap moves as the GPU grows.
		for _, n := range []int{2, 4, 8, 16, 32} {
			n := n
			add(fmt.Sprintf("cus=%d", n), func(c *core.Config) { c.NumCUs = n })
		}
	default:
		return nil, fmt.Errorf("exp: unknown sweep parameter %q (banks, ib, waves, l1i, cus)", param)
	}
	return pts, nil
}
