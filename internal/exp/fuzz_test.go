package exp

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzWireResult fuzzes the wire codec shared by the journal and the
// distributed-worker protocol. Any byte stream may arrive; the invariant
// is that whatever Decode accepts is internally consistent — a success
// must satisfy its integrity hash and survive a re-encode round trip, a
// failure must classify as the class it declares — and that mutating an
// accepted success is always detected. The corpus seeds from a real
// journal (golden lines produced by actually executing a job) plus
// hand-broken variants.
func FuzzWireResult(f *testing.F) {
	jobs := tinyJobs(f, 1)
	results, _, err := New(1).Run(jobs)
	if err != nil {
		f.Fatal(err)
	}

	// Golden journal lines: run a journaled campaign with one success and
	// one recorded failure, then seed every JSONL line the file holds.
	path := filepath.Join(f.TempDir(), "seed.jsonl")
	j, err := OpenJournal(path, jobs, false)
	if err != nil {
		f.Fatal(err)
	}
	if err := j.Record(0, results[0]); err != nil {
		f.Fatal(err)
	}
	fail := Result{Job: jobs[1], Err: Transient(errors.New("flaky link")), Attempts: 2}
	if err := j.Record(1, fail); err != nil {
		f.Fatal(err)
	}
	j.Close()
	golden, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(golden)), "\n") {
		f.Add([]byte(line))
	}

	// Failure variants for every taxonomy class, plus broken payloads:
	// a flipped integrity hash, a truncated run, and raw garbage.
	for _, werr := range []error{
		errors.New("deterministic"),
		context.DeadlineExceeded,
		ErrBudgetExceeded,
		&PanicError{Job: jobs[0].String(), Value: "boom"},
	} {
		b, err := json.Marshal(EncodeResult(0, jobs[0].Fingerprint(), Result{Job: jobs[0], Err: werr, Attempts: 1}))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	good := EncodeResult(0, jobs[0].Fingerprint(), results[0])
	tampered := good
	tampered.RunSHA = strings.Repeat("0", len(good.RunSHA))
	tb, _ := json.Marshal(tampered)
	f.Add(tb)
	runless := good
	runless.Run = nil
	rb, _ := json.Marshal(runless)
	f.Add(rb)
	f.Add([]byte(`{"index":-3,"job":""}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var w WireResult
		if json.Unmarshal(data, &w) != nil {
			return // not a wire result; nothing to hold to account
		}
		r, err := w.Decode()
		if err != nil {
			return // rejected: the codec may refuse anything it distrusts
		}
		switch {
		case w.Err != "":
			if r.Err == nil {
				t.Fatalf("declared failure decoded with nil error: %q", data)
			}
			var re *RemoteError
			if !errors.As(r.Err, &re) {
				t.Fatalf("decoded failure is not a RemoteError: %T", r.Err)
			}
			if got := Classify(r.Err); got != ParseClass(w.ErrClass) {
				t.Fatalf("decoded class %s, declared %s", got, ParseClass(w.ErrClass))
			}
		default:
			if r.Run == nil {
				t.Fatalf("accepted success carries no run: %q", data)
			}
			// The accepted run must hash to its declared integrity hash…
			if got := runSHA(r.Run); got != w.RunSHA {
				t.Fatalf("accepted success violates its integrity hash: %s != %s", got, w.RunSHA)
			}
			// …must survive a re-encode round trip…
			reb, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			var back WireResult
			if err := json.Unmarshal(reb, &back); err != nil {
				t.Fatal(err)
			}
			if _, err := back.Decode(); err != nil {
				t.Fatalf("accepted result failed its own round trip: %v", err)
			}
			// …and any mutation of the payload must be detected.
			mutated := w
			run := *w.Run
			run.Cycles++
			mutated.Run = &run
			if _, err := mutated.Decode(); err == nil {
				t.Fatalf("mutated run passed the integrity check: %q", data)
			}
		}
	})
}
