package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CompactJournal rewrites the journal at path keeping the header and only
// the latest result entry per job index, dropping vote audit records and
// superseded entries (a failure later replaced by a success, or repeated
// failures). Entries are rewritten in job-index order, byte-for-byte as
// they were appended, so a compacted journal resumes to exactly the same
// state as the original. The rewrite is crash-safe: a temp file in the
// same directory is fully written and fsynced, then atomically renamed
// over the original. Returns how many entries were kept and dropped.
func CompactJournal(path string) (kept, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	if !sc.Scan() {
		return 0, 0, fmt.Errorf("exp: journal %s: empty or unreadable header: %w", path, sc.Err())
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Type != "header" {
		return 0, 0, fmt.Errorf("exp: journal %s: bad header line", path)
	}
	if hdr.Version != journalVersion {
		return 0, 0, fmt.Errorf("exp: journal %s: version %d, want %d", path, hdr.Version, journalVersion)
	}
	headerLine := append([]byte(nil), sc.Bytes()...)

	// Latest raw result line per job index; later lines supersede earlier
	// ones for the same job. Raw bytes are kept verbatim so compaction
	// cannot perturb what a resume decodes.
	latest := make(map[int][]byte)
	line := 1
	var pendingErr error
	for sc.Scan() {
		line++
		// Like Journal.load: a parse failure is fatal only if more lines
		// follow — the final line may be a partial write from a kill.
		if pendingErr != nil {
			return 0, 0, pendingErr
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			pendingErr = fmt.Errorf("exp: journal %s:%d: corrupt entry: %v", path, line, err)
			continue
		}
		switch e.Type {
		case "vote":
			dropped++
		case "result":
			if e.Index < 0 || e.Index >= len(hdr.Jobs) || e.Job != hdr.Jobs[e.Index] {
				return 0, 0, fmt.Errorf("exp: journal %s:%d: entry does not match header job set", path, line)
			}
			if _, seen := latest[e.Index]; seen {
				dropped++
			}
			latest[e.Index] = append([]byte(nil), sc.Bytes()...)
		default:
			return 0, 0, fmt.Errorf("exp: journal %s:%d: unknown entry type %q", path, line, e.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("exp: journal %s: %w", path, err)
	}
	if pendingErr != nil {
		dropped++ // partial trailing line: dropped, like load would
	}

	indexes := make([]int, 0, len(latest))
	for i := range latest {
		indexes = append(indexes, i)
	}
	sort.Ints(indexes)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriter(tmp)
	w.Write(headerLine)
	w.WriteByte('\n')
	for _, i := range indexes {
		w.Write(latest[i])
		w.WriteByte('\n')
		kept++
	}
	if err := w.Flush(); err != nil {
		return 0, 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, 0, err
	}
	tmpName := tmp.Name()
	if err := tmp.Close(); err != nil {
		return 0, 0, err
	}
	tmp = nil
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, 0, err
	}
	// Persist the rename itself; best-effort on filesystems that refuse
	// directory fsync.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return kept, dropped, nil
}
