package exp

import (
	"context"
	"errors"
	"fmt"

	"ilsim/internal/core"
)

// ErrBudgetExceeded marks a job killed by its cycle or instruction budget
// (core.RunOptions.MaxCycles / MaxInsts); errors.Is-compatible with the
// core and timing sentinels.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// Class is the engine's error taxonomy. Every job failure classifies into
// exactly one class; the retry policy uses it to decide what is worth
// re-executing, the journal records it, and the CLIs print it next to each
// failed job.
type Class int

const (
	// ClassOK is the classification of a nil error.
	ClassOK Class = iota
	// ClassTransient marks failures worth retrying (explicitly wrapped
	// with Transient, or implementing `Transient() bool`).
	ClassTransient
	// ClassPermanent marks deterministic failures: bad configs, unknown
	// workloads, output-check mismatches. Retrying cannot help.
	ClassPermanent
	// ClassCanceled marks jobs stopped by cancellation: fail-fast
	// shedding, a canceled RunContext, or ctrl-C.
	ClassCanceled
	// ClassTimeout marks jobs killed by their wall-clock Timeout.
	ClassTimeout
	// ClassBudget marks jobs killed by a cycle/instruction budget — the
	// runaway/livelock defense.
	ClassBudget
	// ClassPanic marks jobs whose worker recovered a panic.
	ClassPanic
	// ClassIntegrity marks payloads whose integrity hash does not match
	// their content — corruption on disk or in flight, or a sender whose
	// hashing is broken. Never retried by the receiver against the same
	// payload; the sender re-executes or re-sends instead.
	ClassIntegrity
)

// String names the class for summaries and journal entries.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassCanceled:
		return "canceled"
	case ClassTimeout:
		return "timeout"
	case ClassBudget:
		return "budget-exceeded"
	case ClassPanic:
		return "panic"
	case ClassIntegrity:
		return "integrity"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// transienter is the duck-typed transient marker (satisfied by
// TransientError and by callers' own error types).
type transienter interface{ Transient() bool }

// Classify maps a job error onto the taxonomy. An explicit transient
// wrapper wins over everything else so callers can force a retry class
// onto, say, a timeout they know to be load-induced.
func Classify(err error) Class {
	if err == nil {
		return ClassOK
	}
	var tr transienter
	if errors.As(err, &tr) && tr.Transient() {
		return ClassTransient
	}
	// A deserialized failure carries its original class across the wire.
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Class
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassPanic
	}
	var ie *IntegrityError
	if errors.As(err, &ie) {
		return ClassIntegrity
	}
	if errors.Is(err, ErrBudgetExceeded) {
		return ClassBudget
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, context.Canceled) {
		return ClassCanceled
	}
	return ClassPermanent
}

// IsTransient reports whether err classifies as retryable.
func IsTransient(err error) bool { return Classify(err) == ClassTransient }

// TransientError marks a failure as retryable. Construct with Transient.
type TransientError struct{ Err error }

// Transient wraps err as retryable (nil stays nil).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

func (e *TransientError) Error() string   { return "transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error   { return e.Err }
func (e *TransientError) Transient() bool { return true }

// PanicError is a panic recovered inside a worker, converted into an
// ordinary job failure so one crashing job cannot take down the sweep. It
// carries the job label and the goroutine stack at the panic site.
type PanicError struct {
	// Job is the panicking job's String().
	Job string
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in job %s: %v", e.Job, e.Value)
}
