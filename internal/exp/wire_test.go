package exp

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// wireResultFor executes one tiny job and encodes its result, giving the
// round-trip tests a real stats.Run to carry.
func wireResultFor(t *testing.T) (Job, WireResult) {
	t.Helper()
	jobs := tinyJobs(t, 1)[:1]
	results, _, err := New(1).Run(jobs)
	if err != nil || results[0].Err != nil {
		t.Fatalf("run: %v / %v", err, results[0].Err)
	}
	return jobs[0], EncodeResult(0, jobs[0].Fingerprint(), results[0])
}

// TestWireResultRoundTrip proves a successful result survives
// JSON + Decode with its run fingerprint intact — the byte-identity the
// distributed campaign's determinism guarantee rests on.
func TestWireResultRoundTrip(t *testing.T) {
	_, w := wireResultFor(t)
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back WireResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	r, err := back.Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Err != nil || r.Run == nil {
		t.Fatalf("decoded result: err %v, run %v", r.Err, r.Run)
	}
	if string(r.Run.Fingerprint()) != string(w.Run.Fingerprint()) {
		t.Fatal("run fingerprint changed across the wire")
	}
	if r.Wall != time.Duration(w.WallNS) || r.Attempts != w.Attempts {
		t.Fatalf("wall/attempts lost: %v/%d", r.Wall, r.Attempts)
	}
}

// TestWireResultIntegrity tampers with a serialized run and expects Decode
// to reject it.
func TestWireResultIntegrity(t *testing.T) {
	_, w := wireResultFor(t)
	w.Run.Cycles++
	if _, err := w.Decode(); err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("tampered result decoded: %v", err)
	}
	w.Run = nil
	if _, err := w.Decode(); err == nil {
		t.Fatal("run-less success decoded")
	}
}

// TestWireResultErrorClassSurvives encodes each failure class and checks
// Classify agrees on the decoded side, so remote failures keep their
// retry/report semantics.
func TestWireResultErrorClassSurvives(t *testing.T) {
	job := tinyJobs(t, 1)[0]
	for _, class := range []Class{ClassTransient, ClassPermanent, ClassTimeout, ClassBudget, ClassPanic} {
		var err error
		switch class {
		case ClassTransient:
			err = Transient(errors.New("flaky"))
		case ClassPermanent:
			err = errors.New("deterministic")
		case ClassTimeout:
			err = context.DeadlineExceeded
		case ClassBudget:
			err = ErrBudgetExceeded
		case ClassPanic:
			err = &PanicError{Job: job.String(), Value: "boom"}
		}
		w := EncodeResult(0, job.Fingerprint(), Result{Job: job, Err: err, Attempts: 1})
		r, derr := w.Decode()
		if derr != nil {
			t.Fatalf("%s: decode: %v", class, derr)
		}
		if got := Classify(r.Err); got != class {
			t.Errorf("class %s became %s after the wire", class, got)
		}
	}
}

// TestParseClassRoundTrip checks every class name parses back, and unknown
// names land on the conservative ClassPermanent.
func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range []Class{ClassOK, ClassTransient, ClassPermanent,
		ClassCanceled, ClassTimeout, ClassBudget, ClassPanic} {
		if got := ParseClass(c.String()); got != c {
			t.Errorf("ParseClass(%q) = %s", c.String(), got)
		}
	}
	if got := ParseClass("martian"); got != ClassPermanent {
		t.Errorf("unknown class parsed as %s", got)
	}
}

// TestJobSetFingerprint pins the handshake identity: stable across calls,
// sensitive to any job change and to job order.
func TestJobSetFingerprint(t *testing.T) {
	jobs := tinyJobs(t, 2)
	if JobSetFingerprint(jobs) != JobSetFingerprint(jobs) {
		t.Fatal("fingerprint unstable")
	}
	reordered := []Job{jobs[1], jobs[0], jobs[2], jobs[3]}
	if JobSetFingerprint(jobs) == JobSetFingerprint(reordered) {
		t.Fatal("fingerprint ignores job order")
	}
	changed := append([]Job(nil), jobs...)
	changed[0].Scale++
	if JobSetFingerprint(jobs) == JobSetFingerprint(changed) {
		t.Fatal("fingerprint ignores job content")
	}
}

// TestRetryBackoffSeededReproducible is the fault-injection suite's
// reproducibility contract: two policies with equally seeded sources
// produce identical backoff sequences; differently seeded ones diverge.
func TestRetryBackoffSeededReproducible(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second,
			Jitter: 0.5, Rand: rand.New(rand.NewSource(seed))}
		var ds []time.Duration
		for a := 1; a <= 6; a++ {
			ds = append(ds, p.Backoff(a))
		}
		return ds
	}
	a, b := mk(1), mk(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	c := mk(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}
