package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ilsim/internal/stats"
)

// Fault is one injected misbehavior, applied at the start of every matching
// job execution (inside the worker's panic-recovery scope, under the job's
// timeout context — exactly where a real failure would land).
type Fault struct {
	// Delay sleeps before the job body; the job's context cuts it short.
	Delay time.Duration
	// Panic, when non-nil, panics with this value on every attempt.
	Panic any
	// FailAttempts fails the first N attempts with Err, then lets the job
	// run normally — the transient-then-success schedule.
	FailAttempts int
	// Err is the error FailAttempts injects (wrap with Transient to make
	// the retry policy bite).
	Err error
	// Hang blocks until the job's context ends and returns its cause — a
	// stand-in for a livelocked simulation that only a watchdog can stop.
	Hang bool
	// Mutate, when non-nil, rewrites the finished run AFTER the output
	// check passes — the model of a lying worker. The mutated run is what
	// gets integrity-hashed and shipped, so it is internally consistent
	// on the wire; only cross-worker comparison (quorum voting) can catch
	// it, which is exactly the threat the voting layer exists for.
	Mutate func(run *stats.Run)
}

// FaultPlan schedules deterministic per-job faults on an engine — the test
// instrumentation behind the fault-tolerance suite. Faults are keyed by
// Job.String(); jobs without an entry run untouched. A plan is safe for
// concurrent use and tracks attempts per job so FailAttempts schedules are
// exact even under retries.
type FaultPlan struct {
	mu     sync.Mutex
	faults map[string]Fault
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{faults: make(map[string]Fault)}
}

// Set schedules f for every job whose String() equals key, replacing any
// earlier schedule for that key.
func (p *FaultPlan) Set(key string, f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[key] = f
}

// apply runs the fault scheduled for job (if any) at the given 1-based
// attempt. It returns the injected error, panics with the injected value,
// or returns nil to let the job body run.
func (p *FaultPlan) apply(ctx context.Context, job Job, attempt int) error {
	p.mu.Lock()
	f, ok := p.faults[job.String()]
	p.mu.Unlock()
	if !ok {
		return nil
	}
	if f.Delay > 0 && !sleepContext(ctx, f.Delay) {
		return fmt.Errorf("exp: fault delay interrupted: %w", context.Cause(ctx))
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	if f.FailAttempts > 0 && attempt <= f.FailAttempts {
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("exp: injected fault on %s (attempt %d)", job, attempt)
	}
	if f.Hang {
		<-ctx.Done()
		return fmt.Errorf("exp: fault hang interrupted: %w", context.Cause(ctx))
	}
	return nil
}

// mutate applies the Mutate fault scheduled for job (if any) to its
// finished run. Called after the output check so the lie survives local
// validation.
func (p *FaultPlan) mutate(job Job, run *stats.Run) {
	p.mu.Lock()
	f, ok := p.faults[job.String()]
	p.mu.Unlock()
	if ok && f.Mutate != nil && run != nil {
		f.Mutate(run)
	}
}

// sleepContext sleeps for d or until ctx ends, reporting whether the full
// sleep completed.
func sleepContext(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
