package exp

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// flaggedErr implements the duck-typed transient marker with a switchable
// flag, standing in for callers' own error types.
type flaggedErr struct{ transient bool }

func (e *flaggedErr) Error() string   { return "flagged" }
func (e *flaggedErr) Transient() bool { return e.transient }

// TestClassifyWrappedChains pins the taxonomy against realistic error
// chains: every class must survive arbitrary fmt.Errorf("%w") nesting —
// the engine wraps job errors with context before they reach Classify —
// and explicit transient markers must win over whatever they wrap.
func TestClassifyWrappedChains(t *testing.T) {
	panicErr := &PanicError{Job: "job", Value: "boom"}
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassOK},
		{"plain", errors.New("bad config"), ClassPermanent},
		{"wrapped plain", fmt.Errorf("job 3: %w", errors.New("bad config")), ClassPermanent},

		// Panic recovery, bare and buried two wraps deep.
		{"panic", panicErr, ClassPanic},
		{"wrapped panic", fmt.Errorf("worker 2: %w", panicErr), ClassPanic},
		{"double-wrapped panic", fmt.Errorf("sweep: %w", fmt.Errorf("worker 2: %w", panicErr)), ClassPanic},

		// Watchdog timeouts surface as context.DeadlineExceeded, usually
		// wrapped with the job label by the time anyone classifies them.
		{"deadline", context.DeadlineExceeded, ClassTimeout},
		{"wrapped deadline", fmt.Errorf("job timed out: %w", context.DeadlineExceeded), ClassTimeout},
		{"double-wrapped deadline", fmt.Errorf("attempt 2: %w", fmt.Errorf("job timed out: %w", context.DeadlineExceeded)), ClassTimeout},

		// Cancellation: the engine's own sentinel and the context one.
		{"canceled sentinel", fmt.Errorf("shed: %w", ErrCanceled), ClassCanceled},
		{"context canceled", fmt.Errorf("ctrl-c: %w", context.Canceled), ClassCanceled},

		// Budget kills, wrapped the way the timing core reports them.
		{"budget", ErrBudgetExceeded, ClassBudget},
		{"wrapped budget", fmt.Errorf("runaway: %w", ErrBudgetExceeded), ClassBudget},

		// Deserialized failures carry their original class across the wire
		// even when the receiver wraps them again.
		{"remote budget", fmt.Errorf("via worker: %w", &RemoteError{Msg: "x", Class: ClassBudget}), ClassBudget},
		{"remote transient", fmt.Errorf("via worker: %w", &RemoteError{Msg: "x", Class: ClassTransient}), ClassTransient},
		{"remote panic", &RemoteError{Msg: "x", Class: ClassPanic}, ClassPanic},

		// Explicit transient wrappers win over everything they wrap — a
		// caller can force a retry class onto a known load-induced timeout.
		{"transient", Transient(errors.New("flaky")), ClassTransient},
		{"wrapped transient", fmt.Errorf("attempt 1: %w", Transient(errors.New("flaky"))), ClassTransient},
		{"transient over deadline", Transient(context.DeadlineExceeded), ClassTransient},
		{"transient over panic", Transient(fmt.Errorf("w: %w", panicErr)), ClassTransient},
		{"duck-typed transient", fmt.Errorf("io: %w", &flaggedErr{transient: true}), ClassTransient},

		// A Transient() bool that answers false is not a transient marker;
		// classification falls through to the rest of the chain.
		{"flag off", &flaggedErr{transient: false}, ClassPermanent},
		{"flag off over deadline", fmt.Errorf("%w: %w", &flaggedErr{transient: false}, context.DeadlineExceeded), ClassTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
			}
			if want := tc.want == ClassTransient; IsTransient(tc.err) != want {
				t.Errorf("IsTransient(%v) = %v, want %v", tc.err, !want, want)
			}
		})
	}
}

// TestTransientNilStaysNil pins the wrapper's nil passthrough — retry
// helpers wrap unconditionally and must not invent failures.
func TestTransientNilStaysNil(t *testing.T) {
	if err := Transient(nil); err != nil {
		t.Fatalf("Transient(nil) = %v", err)
	}
	inner := errors.New("flaky")
	if !errors.Is(Transient(inner), inner) {
		t.Fatal("Transient hides the wrapped error from errors.Is")
	}
}
