package isa

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	cases := []struct {
		n    int
		want ExecMask
	}{
		{0, 0}, {1, 1}, {2, 3}, {16, 0xFFFF}, {63, 0x7FFFFFFFFFFFFFFF}, {64, ^ExecMask(0)},
	}
	for _, c := range cases {
		if got := FullMask(c.n); got != c.want {
			t.Errorf("FullMask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestExecMaskBitOps(t *testing.T) {
	f := func(m uint64, lane uint8) bool {
		l := int(lane % 64)
		em := ExecMask(m)
		set := em.SetBit(l)
		clr := em.ClearBit(l)
		return set.Bit(l) && !clr.Bit(l) &&
			set.PopCount() == bits.OnesCount64(uint64(set)) &&
			clr.PopCount() == bits.OnesCount64(uint64(clr)) &&
			em.Any() == (m != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataTypeProperties(t *testing.T) {
	for _, c := range []struct {
		t     DataType
		bits  int
		regs  int
		float bool
	}{
		{TypeNone, 0, 0, false}, {TypeB32, 32, 1, false}, {TypeU32, 32, 1, false},
		{TypeS32, 32, 1, false}, {TypeF32, 32, 1, true}, {TypeB64, 64, 2, false},
		{TypeU64, 64, 2, false}, {TypeS64, 64, 2, false}, {TypeF64, 64, 2, true},
	} {
		if c.t.Bits() != c.bits || c.t.Regs() != c.regs || c.t.IsFloat() != c.float {
			t.Errorf("%s: Bits=%d Regs=%d IsFloat=%t", c.t, c.t.Bits(), c.t.Regs(), c.t.IsFloat())
		}
	}
	if !TypeS32.IsSigned() || !TypeS64.IsSigned() || TypeU32.IsSigned() || TypeF32.IsSigned() {
		t.Error("IsSigned misclassifies")
	}
}

func TestCmpOpEvaluate(t *testing.T) {
	// Each operator against cmp results -1, 0, 1.
	want := map[CmpOp][3]bool{
		CmpEq: {false, true, false},
		CmpNe: {true, false, true},
		CmpLt: {true, false, false},
		CmpLe: {true, true, false},
		CmpGt: {false, false, true},
		CmpGe: {false, true, true},
	}
	for op, w := range want {
		for i, cmp := range []int{-1, 0, 1} {
			if got := op.Evaluate(cmp); got != w[i] {
				t.Errorf("%s.Evaluate(%d) = %t, want %t", op, cmp, got, w[i])
			}
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumCategories; c++ {
		s := Category(c).String()
		if s == "" || seen[s] {
			t.Errorf("category %d has bad/duplicate name %q", c, s)
		}
		seen[s] = true
	}
}
