// Package isa defines the vocabulary shared by the HSAIL-like intermediate
// language and the GCN3-like machine ISA: instruction categories, data types,
// comparison operators, register classes, and the constants of the modeled
// microarchitecture that both abstractions must agree on (wavefront width,
// register-file limits).
//
// Everything in this package is deliberately ISA-neutral. The two instruction
// sets live in package hsail and package gcn3 respectively and both are
// described in terms of these types, which is what lets a single timing model
// (package timing) and a single statistics layer (package stats) observe both
// abstractions through one lens, exactly as the paper's methodology requires.
package isa

import "fmt"

// WavefrontSize is the number of work-items that execute in lock step on the
// SIMD units of a compute unit. The paper models AMD GCN3 hardware, which uses
// 64-wide wavefronts issued over four cycles on 16-lane SIMD engines.
const WavefrontSize = 64

// SIMDWidth is the number of lanes in one SIMD engine. A full wavefront
// occupies WavefrontSize/SIMDWidth = 4 issue cycles.
const SIMDWidth = 16

// Architectural register-file limits (paper §V.B): HSAIL is register-allocated
// with up to 2,048 32-bit vector registers per wavefront and has no scalar
// file; GCN3 allows 256 VGPRs and 102 SGPRs per wavefront.
const (
	MaxHSAILRegs = 2048
	MaxVGPRs     = 256
	MaxSGPRs     = 102
)

// Category classifies an instruction by the execution resource it occupies.
// These are the categories of the paper's Figure 5 breakdown.
type Category uint8

const (
	// CatVALU is a vector ALU operation executed on a SIMD engine.
	CatVALU Category = iota
	// CatSALU is a scalar ALU operation executed on the scalar unit.
	// HSAIL has no scalar instructions, so HSAIL streams never produce it.
	CatSALU
	// CatVMem is a vector (per-lane) memory operation.
	CatVMem
	// CatSMem is a scalar memory operation (GCN3 s_load_*).
	CatSMem
	// CatBranch is a control-flow operation.
	CatBranch
	// CatWaitcnt is a GCN3 s_waitcnt dependency-management instruction.
	CatWaitcnt
	// CatLDS is a local-data-share (group segment) access.
	CatLDS
	// CatMisc covers NOPs, barriers and end-of-program instructions.
	CatMisc

	// NumCategories is the number of distinct instruction categories.
	NumCategories = int(CatMisc) + 1
)

// String returns the short label used in reports, matching Figure 5's legend.
func (c Category) String() string {
	switch c {
	case CatVALU:
		return "VALU"
	case CatSALU:
		return "SALU"
	case CatVMem:
		return "VMem"
	case CatSMem:
		return "SMem"
	case CatBranch:
		return "Branch"
	case CatWaitcnt:
		return "Waitcnt"
	case CatLDS:
		return "LDS"
	case CatMisc:
		return "Misc"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// DataType is the operand interpretation of a typed instruction.
type DataType uint8

const (
	// TypeNone marks untyped instructions (branches, barriers, waitcnts).
	TypeNone DataType = iota
	// TypeB32 is a raw 32-bit bit pattern.
	TypeB32
	// TypeB64 is a raw 64-bit bit pattern.
	TypeB64
	// TypeU32 is an unsigned 32-bit integer.
	TypeU32
	// TypeS32 is a signed 32-bit integer.
	TypeS32
	// TypeU64 is an unsigned 64-bit integer.
	TypeU64
	// TypeS64 is a signed 64-bit integer.
	TypeS64
	// TypeF32 is an IEEE-754 binary32 value.
	TypeF32
	// TypeF64 is an IEEE-754 binary64 value.
	TypeF64
)

// String returns the conventional suffix for the type (u32, f64, ...).
func (t DataType) String() string {
	switch t {
	case TypeNone:
		return "none"
	case TypeB32:
		return "b32"
	case TypeB64:
		return "b64"
	case TypeU32:
		return "u32"
	case TypeS32:
		return "s32"
	case TypeU64:
		return "u64"
	case TypeS64:
		return "s64"
	case TypeF32:
		return "f32"
	case TypeF64:
		return "f64"
	}
	return fmt.Sprintf("DataType(%d)", uint8(t))
}

// Bits returns the operand width in bits, or 0 for TypeNone.
func (t DataType) Bits() int {
	switch t {
	case TypeB32, TypeU32, TypeS32, TypeF32:
		return 32
	case TypeB64, TypeU64, TypeS64, TypeF64:
		return 64
	}
	return 0
}

// Regs returns how many 32-bit register slots a value of this type occupies.
func (t DataType) Regs() int {
	if t.Bits() == 64 {
		return 2
	}
	if t.Bits() == 32 {
		return 1
	}
	return 0
}

// IsFloat reports whether the type is a floating-point interpretation.
func (t DataType) IsFloat() bool { return t == TypeF32 || t == TypeF64 }

// IsSigned reports whether the type is a signed integer interpretation.
func (t DataType) IsSigned() bool { return t == TypeS32 || t == TypeS64 }

// CmpOp is a comparison operator for compare instructions.
type CmpOp uint8

// Comparison operators shared by both ISAs.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the conventional mnemonic fragment (eq, ne, lt, ...).
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "eq"
	case CmpNe:
		return "ne"
	case CmpLt:
		return "lt"
	case CmpLe:
		return "le"
	case CmpGt:
		return "gt"
	case CmpGe:
		return "ge"
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// Evaluate applies the comparison to a pair of already-ordered comparison
// results: cmp < 0, == 0, or > 0.
func (op CmpOp) Evaluate(cmp int) bool {
	switch op {
	case CmpEq:
		return cmp == 0
	case CmpNe:
		return cmp != 0
	case CmpLt:
		return cmp < 0
	case CmpLe:
		return cmp <= 0
	case CmpGt:
		return cmp > 0
	case CmpGe:
		return cmp >= 0
	}
	return false
}

// Dim identifies a grid dimension for work-item geometry queries.
type Dim uint8

// Grid dimensions.
const (
	DimX Dim = iota
	DimY
	DimZ
)

// String returns "x", "y" or "z".
func (d Dim) String() string {
	switch d {
	case DimX:
		return "x"
	case DimY:
		return "y"
	case DimZ:
		return "z"
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// ExecMask is a 64-bit per-lane execution mask. Bit i corresponds to lane i.
// In GCN3 the mask is architecturally visible (EXEC); under HSAIL it exists
// only inside the simulator's reconvergence stack.
type ExecMask uint64

// FullMask returns a mask with the low n bits set.
func FullMask(n int) ExecMask {
	if n >= 64 {
		return ^ExecMask(0)
	}
	return ExecMask(1)<<uint(n) - 1
}

// Bit reports whether lane is active.
func (m ExecMask) Bit(lane int) bool { return m>>uint(lane)&1 != 0 }

// SetBit returns the mask with lane set to active.
func (m ExecMask) SetBit(lane int) ExecMask { return m | 1<<uint(lane) }

// ClearBit returns the mask with lane cleared.
func (m ExecMask) ClearBit(lane int) ExecMask { return m &^ (1 << uint(lane)) }

// PopCount returns the number of active lanes.
func (m ExecMask) PopCount() int {
	n := 0
	for v := uint64(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Any reports whether any lane is active.
func (m ExecMask) Any() bool { return m != 0 }
