package finalizer

import (
	"math/rand"
	"testing"

	"ilsim/internal/gcn3"
	"ilsim/internal/isa"
)

// randomStream builds a random legal straight-line GCN3 block mixing vector
// ALU, scalar ALU and memory operations over a small register set.
func randomStream(rng *rand.Rand, n int) []gcn3.Inst {
	var out []gcn3.Inst
	v := func() gcn3.Operand { return gcn3.VReg(rng.Intn(12)) }
	s := func() gcn3.Operand { return gcn3.SReg(12 + rng.Intn(8)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			out = append(out, gcn3.Inst{Op: gcn3.OpVAdd, Type: isa.TypeU32,
				Dst: v(), SDst: gcn3.VCC(), Srcs: [3]gcn3.Operand{v(), v()}})
		case 1:
			out = append(out, gcn3.Inst{Op: gcn3.OpVMul, Type: isa.TypeF32,
				Dst: v(), Srcs: [3]gcn3.Operand{v(), v()}})
		case 2:
			out = append(out, gcn3.Inst{Op: gcn3.OpSAdd, Type: isa.TypeU32,
				Dst: s(), Srcs: [3]gcn3.Operand{s(), gcn3.Inline(uint32(rng.Intn(32)))}})
		case 3:
			out = append(out, gcn3.Inst{Op: gcn3.OpFlatLoadDword,
				Dst: v(), Srcs: [3]gcn3.Operand{gcn3.VReg(2 * rng.Intn(5))}})
		case 4:
			out = append(out, gcn3.Inst{Op: gcn3.OpFlatStoreDword,
				Srcs: [3]gcn3.Operand{gcn3.VReg(2 * rng.Intn(5)), v()}})
		default:
			out = append(out, gcn3.Inst{Op: gcn3.OpSLoadDword,
				Dst: s(), Srcs: [3]gcn3.Operand{gcn3.SReg(4)}, Offset: int32(4 * rng.Intn(8))})
		}
	}
	out = append(out, gcn3.Inst{Op: gcn3.OpSEndpgm})
	return out
}

// TestSchedulerPreservesDependencesRandomized: for random blocks, every
// RAW/WAR/WAW pair must keep its order after scheduling.
func TestSchedulerPreservesDependencesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		block := randomStream(rng, 3+rng.Intn(30))
		sched := scheduleBlock(append([]gcn3.Inst(nil), block...))
		if len(sched) != len(block) {
			t.Fatalf("iter %d: scheduler dropped instructions: %d != %d", iter, len(sched), len(block))
		}
		// Oracle: walk the SCHEDULED order maintaining last-writer and
		// readers-since maps keyed by ORIGINAL index; verify that for
		// every instruction, all its original-order dependence
		// predecessors already executed.
		origIdx := map[string][]int{}
		for i := range block {
			key := block[i].String()
			origIdx[key] = append(origIdx[key], i)
		}
		// Map scheduled instructions back to original indexes (stable for
		// duplicates).
		taken := map[string]int{}
		schedOrig := make([]int, len(sched))
		for i := range sched {
			key := sched[i].String()
			schedOrig[i] = origIdx[key][taken[key]]
			taken[key]++
		}
		// Build dependence pairs from the original order.
		type pair struct{ a, b int }
		var deps []pair
		lastWriter := map[int]int{}
		readers := map[int][]int{}
		for i := range block {
			reads, writes := regUse(&block[i])
			for _, r := range reads {
				if w, ok := lastWriter[r]; ok {
					deps = append(deps, pair{w, i})
				}
				readers[r] = append(readers[r], i)
			}
			for _, r := range writes {
				if w, ok := lastWriter[r]; ok {
					deps = append(deps, pair{w, i})
				}
				for _, rd := range readers[r] {
					deps = append(deps, pair{rd, i})
				}
				lastWriter[r] = i
				readers[r] = nil
			}
		}
		pos := make([]int, len(block))
		for schedPos, oi := range schedOrig {
			pos[oi] = schedPos
		}
		for _, d := range deps {
			if d.a == d.b {
				continue
			}
			if pos[d.a] >= pos[d.b] {
				t.Fatalf("iter %d: dependence %d->%d violated (%s before %s)",
					iter, d.a, d.b, block[d.b].String(), block[d.a].String())
			}
		}
	}
}

// TestWaitcntInsertionRandomized: after the waitcnt pass, the static
// sufficiency checker (same rules as checkWaitcnts in finalizer_test) must
// accept every random block.
func TestWaitcntInsertionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 200; iter++ {
		block := insertWaitcntsBlock(randomStream(rng, 3+rng.Intn(40)))
		// Inline sufficiency check.
		type pend struct{ writes []int }
		var vmem, lgkm []pend
		for i := range block {
			in := &block[i]
			if in.Op == gcn3.OpSWaitcnt {
				if in.VMCnt >= 0 && int(in.VMCnt) < len(vmem) {
					vmem = vmem[len(vmem)-int(in.VMCnt):]
				}
				if in.LGKMCnt >= 0 && int(in.LGKMCnt) < len(lgkm) {
					lgkm = lgkm[len(lgkm)-int(in.LGKMCnt):]
				}
				continue
			}
			reads, writes := regUse(in)
			for _, p := range vmem {
				if overlap(p.writes, reads) || overlap(p.writes, writes) {
					t.Fatalf("iter %d: inst %d (%s) touches pending vmem dest", iter, i, in.String())
				}
			}
			for _, p := range lgkm {
				if overlap(p.writes, reads) || overlap(p.writes, writes) {
					t.Fatalf("iter %d: inst %d (%s) touches pending lgkm dest", iter, i, in.String())
				}
			}
			switch in.Op.Category() {
			case isa.CatVMem:
				var w []int
				if !in.Op.IsStore() {
					_, w = regUse(in)
				}
				vmem = append(vmem, pend{w})
			case isa.CatSMem, isa.CatLDS:
				var w []int
				if !in.Op.IsStore() {
					_, w = regUse(in)
				}
				lgkm = append(lgkm, pend{w})
			}
		}
		if len(vmem)+len(lgkm) > 0 {
			t.Fatalf("iter %d: block ends with outstanding memory", iter)
		}
	}
}

// TestNopInsertionRandomized: after scheduling + nop insertion, no adjacent
// dependent VALU pairs remain in random blocks.
func TestNopInsertionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 200; iter++ {
		f := &finalizer{}
		f.out = [][]gcn3.Inst{scheduleBlock(randomStream(rng, 3+rng.Intn(30)))}
		f.insertNops()
		insts := f.out[0]
		for i := 1; i < len(insts); i++ {
			if needsGap(&insts[i-1], &insts[i]) {
				t.Fatalf("iter %d: adjacent dependent VALU pair:\n  %s\n  %s",
					iter, insts[i-1].String(), insts[i].String())
			}
		}
	}
}
