package finalizer

import (
	"fmt"
	"math"
	"sort"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// Temporary-register pool geometry. Temps live only within one HSAIL
// instruction's lowered sequence, but the pool ROTATES between instructions
// the way a live-range allocator assigns fresh registers instead of reusing
// one hot set — which is what gives finalized code its longer register reuse
// distances (paper Figure 7) and spreads operand traffic across VRF banks
// (Figure 6). vTempPerInst bounds a single sequence's demand (the f64
// Newton-Raphson divide is the largest at 14 registers).
const (
	vTempWindow  = 40
	vTempPerInst = 16
	sTempWindow  = 16
	sTempPerInst = 8
)

// emitter accumulates the lowered instructions of one basic block and hands
// out temporary registers, whose high-water mark becomes part of the code
// object's register demand.
type emitter struct {
	f     *finalizer
	out   []gcn3.Inst
	vTemp int
	sTemp int
	err   error
}

func (e *emitter) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf(format, args...)
	}
}

// emit appends one instruction with waitcnt fields normalized.
func (e *emitter) emit(in gcn3.Inst) {
	if in.Op != gcn3.OpSWaitcnt {
		in.VMCnt, in.LGKMCnt = -1, -1
	}
	e.out = append(e.out, in)
}

// resetTemps starts a new HSAIL instruction: the temp cursors keep rotating
// through their windows, wrapping early enough that one sequence never
// overwrites its own temps.
func (e *emitter) resetTemps() {
	if e.vTemp > vTempWindow-vTempPerInst {
		e.vTemp = 0
	}
	if e.sTemp > sTempWindow-sTempPerInst {
		e.sTemp = 0
	}
}

// vtmp allocates n consecutive temporary VGPRs from the rotating pool.
func (e *emitter) vtmp(n int) int {
	if e.vTemp+n > vTempWindow {
		e.vTemp = 0
	}
	r := e.f.vTempBase + e.vTemp
	e.vTemp += n
	if e.vTemp > e.f.vTempMax {
		e.f.vTempMax = e.vTemp
	}
	return r
}

// stmp allocates n consecutive temporary SGPRs (64-bit aligned for n=2).
func (e *emitter) stmp(n int) int {
	if e.sTemp+n > sTempWindow {
		e.sTemp = 0
	}
	if n == 2 && (e.f.sTempBase+e.sTemp)%2 != 0 {
		e.sTemp++
	}
	r := e.f.sTempBase + e.sTemp
	e.sTemp += n
	if e.sTemp > e.f.sTempMax {
		e.f.sTempMax = e.sTemp
	}
	return r
}

// slotOperand returns the GCN3 register operand housing an HSAIL slot.
// Spilled slots resolve through the current instruction's staging overlay.
func (f *finalizer) slotOperand(slot int) gcn3.Operand {
	s := &f.slots[slot]
	switch s.home {
	case homeScalar:
		return gcn3.SReg(s.reg)
	case homeSpill:
		r, ok := f.spillOverlay[slot]
		if !ok {
			panic(fmt.Sprintf("finalizer: spilled slot %d accessed without staging", slot))
		}
		return gcn3.VReg(r)
	default:
		return gcn3.VReg(s.reg)
	}
}

// isScalarSlot reports whether the slot is scalar-homed.
func (f *finalizer) isScalarSlot(slot int) bool {
	return f.slots[slot].home == homeScalar
}

// constOperand builds the cheapest encoding of a 32-bit constant for an
// instruction of type t: inline when representable, literal otherwise.
func constOperand(t isa.DataType, bits uint32) gcn3.Operand {
	v := int32(bits)
	if v >= -16 && v <= 64 {
		return gcn3.Inline(bits)
	}
	if t.IsFloat() {
		f := math.Float32frombits(bits)
		switch f {
		case 0.5, -0.5, 1.0, -1.0, 2.0, -2.0, 4.0, -4.0:
			return gcn3.Inline(bits)
		}
	}
	return gcn3.Lit(bits)
}

// operand32 resolves an HSAIL source operand to a GCN3 operand addressing
// 32 bits at dword `part` of the value.
func (e *emitter) operand32(o hsail.Operand, t isa.DataType, part int) gcn3.Operand {
	switch o.Kind {
	case hsail.OperReg:
		return e.f.slotOperand(int(o.Reg) + part)
	case hsail.OperImm:
		bits := uint32(o.Imm >> uint(32*part))
		ct := t
		if part == 1 {
			ct = isa.TypeB32
		}
		return constOperand(ct, bits)
	}
	e.fail("finalizer: unexpected operand kind %d", o.Kind)
	return gcn3.Operand{}
}

// isVGPROperand reports whether the resolved operand is a VGPR.
func isVGPR(o gcn3.Operand) bool { return o.Kind == gcn3.OperVGPR }

// toVGPR materializes an operand into a temporary VGPR when it is not one.
func (e *emitter) toVGPR(o gcn3.Operand) gcn3.Operand {
	if isVGPR(o) {
		return o
	}
	t := e.vtmp(1)
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(t), Srcs: [3]gcn3.Operand{o}})
	return gcn3.VReg(t)
}

// toSGPR materializes a literal into a temporary SGPR (for VOP3 sources,
// which cannot encode literals).
func (e *emitter) toSGPR(o gcn3.Operand) gcn3.Operand {
	if o.Kind != gcn3.OperLit {
		return o
	}
	t := e.stmp(1)
	e.emit(gcn3.Inst{Op: gcn3.OpSMov, Type: isa.TypeB32, Dst: gcn3.SReg(t), Srcs: [3]gcn3.Operand{o}})
	return gcn3.SReg(t)
}

// vop3Srcs strips literals from VOP3 sources.
func (e *emitter) vop3Srcs(srcs ...gcn3.Operand) [3]gcn3.Operand {
	var out [3]gcn3.Operand
	for i, s := range srcs {
		out[i] = e.toSGPR(s)
	}
	return out
}

// commutable reports whether a VOP2 op allows swapping src0/src1.
func commutable(op gcn3.Op) bool {
	switch op {
	case gcn3.OpVAdd, gcn3.OpVAddc, gcn3.OpVMul, gcn3.OpVMin, gcn3.OpVMax,
		gcn3.OpVAnd, gcn3.OpVOr, gcn3.OpVXor:
		return true
	}
	return false
}

// vop2 emits a 2-source vector op honoring the VOP2 encoding rule that src1
// must be a VGPR, commuting or materializing as needed.
func (e *emitter) vop2(op gcn3.Op, t isa.DataType, dst gcn3.Operand, s0, s1 gcn3.Operand, sdst gcn3.Operand) {
	in := gcn3.Inst{Op: op, Type: t, Dst: dst, SDst: sdst}
	probe := gcn3.Inst{Op: op, Type: t}
	if probe.Format() == gcn3.FmtVOP3 {
		// 64-bit forms are VOP3: no VGPR restriction, no literals.
		s := e.vop3Srcs(s0, s1)
		in.Srcs = s
		e.emit(in)
		return
	}
	if !isVGPR(s1) {
		if commutable(op) && isVGPR(s0) {
			s0, s1 = s1, s0
		} else {
			s1 = e.toVGPR(s1)
		}
	}
	in.Srcs = [3]gcn3.Operand{s0, s1}
	e.emit(in)
}

// add64 emits dst = a + b for 64-bit vector values expressed as dword
// operand pairs, using the explicit add/addc chain GCN3 requires.
func (e *emitter) add64(dstLo, dstHi gcn3.Operand, aLo, aHi, bLo, bHi gcn3.Operand) {
	e.vop2(gcn3.OpVAdd, isa.TypeU32, dstLo, aLo, bLo, gcn3.VCC())
	e.vop2(gcn3.OpVAddc, isa.TypeU32, dstHi, aHi, bHi, gcn3.VCC())
}

// movToVGPRPair materializes a 64-bit value (dword operands lo/hi) into a
// temporary VGPR pair and returns the first register.
func (e *emitter) movToVGPRPair(lo, hi gcn3.Operand) int {
	t := e.vtmp(2)
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(t), Srcs: [3]gcn3.Operand{lo}})
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(t + 1), Srcs: [3]gcn3.Operand{hi}})
	return t
}

// lowerAll drives per-block lowering, including structured-control-flow
// prefixes (exec restores at joins) and suffixes (loop-entry exec saves).
func (f *finalizer) lowerAll() error {
	n := len(f.k.Blocks)
	f.out = make([][]gcn3.Inst, n)

	// Prefix instructions (exec restores, else flips) carry the branch
	// block that created them so that, when several constructs share a
	// join block, INNER restores (later branch blocks) run before OUTER
	// ones — the outermost mask must win.
	type prefixItem struct {
		branch int
		insts  []gcn3.Inst
	}
	prefixItems := make(map[int][]prefixItem)
	suffixes := make(map[int][]gcn3.Inst)
	f.dropBr = make(map[int]bool)
	for bi, sh := range f.cfg.Shapes {
		term := lastInst(f.k.Blocks[bi])
		if f.cregs[term.Srcs[0].Reg].fused {
			continue // uniform branch: no exec manipulation
		}
		if sh.Kind == kernel.ShapeIfThenElse {
			// The else flip: then-lanes fall through into it; the
			// guard's bypass branch targets it directly.
			save := f.condSave[bi]
			prefixItems[sh.ElseStart] = append(prefixItems[sh.ElseStart], prefixItem{bi, []gcn3.Inst{
				{Op: gcn3.OpSAndN2, Type: isa.TypeB64, Dst: gcn3.EXEC(),
					Srcs: [3]gcn3.Operand{gcn3.SReg(save), gcn3.EXEC()}},
				{Op: gcn3.OpSCbranchExecZ, Target: blockTarget(sh.Join)},
			}})
			f.dropBr[sh.ThenEnd-1] = true
		}
		switch sh.Kind {
		case kernel.ShapeLoopLatch:
			save := f.loopSave[bi]
			suffixes[sh.Header-1] = append(suffixes[sh.Header-1], gcn3.Inst{
				Op: gcn3.OpSMov, Type: isa.TypeB64, Dst: gcn3.SReg(save),
				Srcs: [3]gcn3.Operand{gcn3.EXEC()},
			})
			prefixItems[sh.Join] = append(prefixItems[sh.Join], prefixItem{bi, []gcn3.Inst{{
				Op: gcn3.OpSMov, Type: isa.TypeB64, Dst: gcn3.EXEC(),
				Srcs: [3]gcn3.Operand{gcn3.SReg(save)},
			}}})
		default:
			save := f.condSave[bi]
			prefixItems[sh.Join] = append(prefixItems[sh.Join], prefixItem{bi, []gcn3.Inst{{
				Op: gcn3.OpSMov, Type: isa.TypeB64, Dst: gcn3.EXEC(),
				Srcs: [3]gcn3.Operand{gcn3.SReg(save)},
			}}})
		}
	}
	prefixes := make(map[int][]gcn3.Inst)
	for blk, items := range prefixItems {
		sort.Slice(items, func(i, j int) bool { return items[i].branch > items[j].branch })
		for _, it := range items {
			prefixes[blk] = append(prefixes[blk], it.insts...)
		}
	}

	for bi, b := range f.k.Blocks {
		e := &emitter{f: f}
		for _, p := range prefixes[bi] {
			e.emit(p)
		}
		if bi == 0 {
			f.prologue(e)
		}
		var pendingCmp *hsail.Inst
		for ii := range b.Insts {
			in := &b.Insts[ii]
			e.resetTemps()
			if in.Op == hsail.OpCmp && f.cregs[in.Dst.Reg].fused {
				pendingCmp = in
				continue
			}
			reads, writes := hsailRegRefs(in)
			f.prepareSpills(e, reads, writes)
			if err := f.lowerInst(e, in, bi, pendingCmp); err != nil {
				return err
			}
			f.flushSpills(e, writes)
			if e.err != nil {
				return e.err
			}
		}
		for _, s := range suffixes[bi] {
			e.emit(s)
		}
		f.out[bi] = e.out
	}
	return nil
}

// prologue emits the ABI-dependent kernel entry sequence: the Table 1
// absolute-work-item-ID computation and the per-lane scratch base address
// for kernels that touch private/spill memory.
func (f *finalizer) prologue(e *emitter) {
	if !f.useAbsID {
		return
	}
	st := e.stmp(1)
	// Table 1: read the dispatch packet's workgroup size, extract X,
	// multiply by the workgroup ID, add the lane's local ID (v0).
	e.emit(gcn3.Inst{Op: gcn3.OpSLoadDword, Dst: gcn3.SReg(st),
		Srcs: [3]gcn3.Operand{gcn3.SReg(gcn3.SGPRDispatchPtr)}, Offset: gcn3.PktWorkgroupSizeX})
	e.emit(gcn3.Inst{Op: gcn3.OpSBfe, Type: isa.TypeU32, Dst: gcn3.SReg(st),
		Srcs: [3]gcn3.Operand{gcn3.SReg(st), gcn3.Lit(0x100000)}})
	e.emit(gcn3.Inst{Op: gcn3.OpSMul, Type: isa.TypeS32, Dst: gcn3.SReg(st),
		Srcs: [3]gcn3.Operand{gcn3.SReg(st), gcn3.SReg(gcn3.SGPRWorkGroupIDX)}})
	e.vop2(gcn3.OpVAdd, isa.TypeU32, gcn3.VReg(f.vAbsID),
		gcn3.SReg(st), gcn3.VReg(gcn3.VGPRWorkItemID), gcn3.VCC())
	if !f.usePrivate {
		e.resetTemps()
		return
	}
	// Per-lane scratch base: s[0:1] + absID * stride(s2).
	vt := e.vtmp(1)
	e.emit(gcn3.Inst{Op: gcn3.OpVMulLo, Type: isa.TypeU32, Dst: gcn3.VReg(vt),
		Srcs: [3]gcn3.Operand{gcn3.VReg(f.vAbsID), gcn3.SReg(gcn3.SGPRPrivateStride)}})
	e.vop2(gcn3.OpVAdd, isa.TypeU32, gcn3.VReg(f.vPrivBase),
		gcn3.SReg(gcn3.SGPRPrivateBase), gcn3.VReg(vt), gcn3.VCC())
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(f.vPrivBase + 1),
		Srcs: [3]gcn3.Operand{gcn3.SReg(gcn3.SGPRPrivateBase + 1)}})
	e.vop2(gcn3.OpVAddc, isa.TypeU32, gcn3.VReg(f.vPrivBase+1),
		gcn3.Inline(0), gcn3.VReg(f.vPrivBase+1), gcn3.VCC())
	e.resetTemps()
}
