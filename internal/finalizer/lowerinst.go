package finalizer

import (
	"fmt"
	"math"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// lowerInst lowers one non-control HSAIL instruction (terminators are
// lowered by lowerTerminator in control.go).
func (f *finalizer) lowerInst(e *emitter, in *hsail.Inst, block int, pendingCmp *hsail.Inst) error {
	switch in.Op {
	case hsail.OpNop:
		e.emit(gcn3.Inst{Op: gcn3.OpSNop})
	case hsail.OpMov:
		f.lowerMov(e, in)
	case hsail.OpCvt:
		return f.lowerCvt(e, in)
	case hsail.OpAdd, hsail.OpSub, hsail.OpMul, hsail.OpMulHi, hsail.OpMin,
		hsail.OpMax, hsail.OpAnd, hsail.OpOr, hsail.OpXor, hsail.OpShl, hsail.OpShr:
		return f.lowerBinary(e, in)
	case hsail.OpDiv:
		return f.lowerDiv(e, in)
	case hsail.OpRem:
		return f.lowerRem(e, in)
	case hsail.OpMad, hsail.OpFma:
		return f.lowerFmaLike(e, in)
	case hsail.OpAbs, hsail.OpNeg, hsail.OpNot, hsail.OpSqrt, hsail.OpRsqrt:
		return f.lowerUnary(e, in)
	case hsail.OpCmp:
		f.lowerCmp(e, in)
	case hsail.OpCmov:
		f.lowerCmov(e, in)
	case hsail.OpWorkItemAbsId, hsail.OpWorkItemId, hsail.OpWorkGroupId,
		hsail.OpWorkGroupSize, hsail.OpGridSize:
		return f.lowerGeometry(e, in)
	case hsail.OpLd, hsail.OpSt, hsail.OpAtomicAdd:
		return f.lowerMemory(e, in)
	case hsail.OpLda:
		return f.lowerLda(e, in)
	case hsail.OpBarrier:
		e.emit(gcn3.Inst{Op: gcn3.OpSBarrier})
	case hsail.OpRet:
		e.emit(gcn3.Inst{Op: gcn3.OpSEndpgm})
	case hsail.OpBr, hsail.OpCBr:
		return f.lowerTerminator(e, in, block, pendingCmp)
	default:
		return fmt.Errorf("unlowerable HSAIL op %s", in.Op)
	}
	return nil
}

// vec64 resolves a 64-bit source operand for a whole-pair (VOP3-class)
// vector operation. Register pairs pass through; immediates use an inline
// constant when GCN3's rules allow (integers 0..64/-16..-1, and floats whose
// f32 form expands exactly — the hardware widens inline/literal constants
// f32→f64), otherwise they are materialized into a temporary VGPR pair with
// two v_mov instructions, more of the code expansion HSAIL hides.
func (f *finalizer) vec64(e *emitter, o hsail.Operand, t isa.DataType) gcn3.Operand {
	if o.Kind == hsail.OperReg {
		return f.slotOperand(int(o.Reg))
	}
	if o.Kind != hsail.OperImm {
		e.fail("finalizer: bad 64-bit operand kind %d", o.Kind)
		return gcn3.Operand{}
	}
	if t == isa.TypeF64 {
		fv := math.Float64frombits(o.Imm)
		if f32v := float32(fv); float64(f32v) == fv {
			op := constOperand(isa.TypeF32, math.Float32bits(f32v))
			if op.Kind == gcn3.OperInline {
				return op
			}
		}
	} else {
		v := int64(o.Imm)
		if v >= 0 && v <= 64 {
			return gcn3.Inline(uint32(v))
		}
		if t == isa.TypeS64 && v >= -16 && v < 0 {
			return gcn3.Inline(uint32(v))
		}
	}
	tmp := e.vtmp(2)
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(tmp),
		Srcs: [3]gcn3.Operand{constOperand(isa.TypeB32, uint32(o.Imm))}})
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(tmp + 1),
		Srcs: [3]gcn3.Operand{constOperand(isa.TypeB32, uint32(o.Imm>>32))}})
	return gcn3.VReg(tmp)
}

// dstParts returns the GCN3 destination registers for each dword of the
// HSAIL destination.
func (f *finalizer) dstParts(in *hsail.Inst, t isa.DataType) []gcn3.Operand {
	n := t.Regs()
	if n == 0 {
		n = 1
	}
	parts := make([]gcn3.Operand, n)
	for i := 0; i < n; i++ {
		parts[i] = f.slotOperand(int(in.Dst.Reg) + i)
	}
	return parts
}

func (f *finalizer) lowerMov(e *emitter, in *hsail.Inst) {
	t := in.Type
	dst := f.dstParts(in, t)
	if f.isScalarSlot(int(in.Dst.Reg)) {
		if t.Regs() == 2 && in.Srcs[0].Kind == hsail.OperReg {
			e.emit(gcn3.Inst{Op: gcn3.OpSMov, Type: isa.TypeB64, Dst: dst[0],
				Srcs: [3]gcn3.Operand{e.operand32(in.Srcs[0], t, 0)}})
			return
		}
		for p := range dst {
			e.emit(gcn3.Inst{Op: gcn3.OpSMov, Type: isa.TypeB32, Dst: dst[p],
				Srcs: [3]gcn3.Operand{e.operand32(in.Srcs[0], t, p)}})
		}
		return
	}
	for p := range dst {
		e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst[p],
			Srcs: [3]gcn3.Operand{e.operand32(in.Srcs[0], t, p)}})
	}
}

// intType reports an integer/bit data type.
func intType(t isa.DataType) bool { return !t.IsFloat() && t != isa.TypeNone }

func (f *finalizer) lowerCvt(e *emitter, in *hsail.Inst) error {
	dt, st := in.Type, in.SrcType
	dst := f.dstParts(in, dt)
	scalar := f.isScalarSlot(int(in.Dst.Reg))
	src := func(p int) gcn3.Operand { return e.operand32(in.Srcs[0], st, p) }

	if intType(dt) && intType(st) {
		mov := gcn3.OpVMov
		if scalar {
			mov = gcn3.OpSMov
		}
		e.emit(gcn3.Inst{Op: mov, Type: isa.TypeB32, Dst: dst[0], Srcs: [3]gcn3.Operand{src(0)}})
		if dt.Regs() == 2 {
			switch {
			case st.Regs() == 2:
				e.emit(gcn3.Inst{Op: mov, Type: isa.TypeB32, Dst: dst[1], Srcs: [3]gcn3.Operand{src(1)}})
			case dt == isa.TypeS64 && st == isa.TypeS32:
				if scalar {
					e.emit(gcn3.Inst{Op: gcn3.OpSAshr, Type: isa.TypeS32, Dst: dst[1],
						Srcs: [3]gcn3.Operand{src(0), gcn3.Inline(31)}})
				} else {
					e.vop2(gcn3.OpVAshr, isa.TypeS32, dst[1], gcn3.Inline(31), dst[0], gcn3.Operand{})
				}
			default:
				e.emit(gcn3.Inst{Op: mov, Type: isa.TypeB32, Dst: dst[1], Srcs: [3]gcn3.Operand{gcn3.Inline(0)}})
			}
		}
		return nil
	}
	// Float conversions execute on the vector pipeline.
	if scalar {
		return fmt.Errorf("cvt %s→%s cannot be scalar-homed", st, dt)
	}
	e.emit(gcn3.Inst{Op: gcn3.OpVCvt, Type: dt, SrcType: st, Dst: dst[0], Srcs: [3]gcn3.Operand{src(0)}})
	return nil
}

func (f *finalizer) lowerBinary(e *emitter, in *hsail.Inst) error {
	t := in.Type
	dst := f.dstParts(in, t)
	s0 := func(p int) gcn3.Operand { return e.operand32(in.Srcs[0], t, p) }
	s1 := func(p int) gcn3.Operand { return e.operand32(in.Srcs[1], t, p) }
	// Whole-pair forms for 64-bit VOP3 operations.
	w0 := func() gcn3.Operand {
		if t.Regs() == 2 {
			return f.vec64(e, in.Srcs[0], t)
		}
		return s0(0)
	}
	w1 := func() gcn3.Operand {
		if t.Regs() == 2 {
			return f.vec64(e, in.Srcs[1], t)
		}
		return s1(0)
	}

	if f.isScalarSlot(int(in.Dst.Reg)) {
		return f.lowerScalarBinary(e, in, dst, s0, s1)
	}

	switch in.Op {
	case hsail.OpAdd, hsail.OpSub:
		if t.IsFloat() {
			op := gcn3.OpVAdd
			if in.Op == hsail.OpSub {
				op = gcn3.OpVSub
			}
			e.vop2(op, t, dst[0], w0(), w1(), gcn3.Operand{})
			return nil
		}
		if t.Regs() == 2 {
			if in.Op == hsail.OpSub {
				return fmt.Errorf("64-bit vector subtract is not supported; negate and add")
			}
			e.add64(dst[0], dst[1], s0(0), s0(1), s1(0), s1(1))
			return nil
		}
		op := gcn3.OpVAdd
		if in.Op == hsail.OpSub {
			op = gcn3.OpVSub
		}
		e.vop2(op, isa.TypeU32, dst[0], s0(0), s1(0), gcn3.VCC())
	case hsail.OpMul:
		switch {
		case t.IsFloat():
			e.vop2(gcn3.OpVMul, t, dst[0], w0(), w1(), gcn3.Operand{})
		case t.Regs() == 2:
			// 64-bit integer multiply decomposes into 32-bit pieces.
			tl, th, ta, tb := e.vtmp(1), e.vtmp(1), e.vtmp(1), e.vtmp(1)
			emitV3 := func(op gcn3.Op, d int, a, b gcn3.Operand) {
				s := e.vop3Srcs(a, b)
				e.emit(gcn3.Inst{Op: op, Type: isa.TypeU32, Dst: gcn3.VReg(d), Srcs: s})
			}
			emitV3(gcn3.OpVMulLo, tl, s0(0), s1(0))
			emitV3(gcn3.OpVMulHi, th, s0(0), s1(0))
			emitV3(gcn3.OpVMulLo, ta, s0(0), s1(1))
			emitV3(gcn3.OpVMulLo, tb, s0(1), s1(0))
			e.vop2(gcn3.OpVAdd, isa.TypeU32, gcn3.VReg(th), gcn3.VReg(ta), gcn3.VReg(th), gcn3.VCC())
			e.vop2(gcn3.OpVAdd, isa.TypeU32, gcn3.VReg(th), gcn3.VReg(tb), gcn3.VReg(th), gcn3.VCC())
			e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst[0], Srcs: [3]gcn3.Operand{gcn3.VReg(tl)}})
			e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst[1], Srcs: [3]gcn3.Operand{gcn3.VReg(th)}})
		default:
			s := e.vop3Srcs(s0(0), s1(0))
			e.emit(gcn3.Inst{Op: gcn3.OpVMulLo, Type: isa.TypeU32, Dst: dst[0], Srcs: s})
		}
	case hsail.OpMulHi:
		s := e.vop3Srcs(s0(0), s1(0))
		e.emit(gcn3.Inst{Op: gcn3.OpVMulHi, Type: isa.TypeU32, Dst: dst[0], Srcs: s})
	case hsail.OpMin, hsail.OpMax:
		op := gcn3.OpVMin
		if in.Op == hsail.OpMax {
			op = gcn3.OpVMax
		}
		mt := t
		if mt == isa.TypeB32 {
			mt = isa.TypeU32
		}
		if mt.Regs() == 2 && !mt.IsFloat() {
			return fmt.Errorf("64-bit integer min/max is not supported")
		}
		e.vop2(op, mt, dst[0], w0(), w1(), gcn3.Operand{})
	case hsail.OpAnd, hsail.OpOr, hsail.OpXor:
		op := map[hsail.Op]gcn3.Op{hsail.OpAnd: gcn3.OpVAnd, hsail.OpOr: gcn3.OpVOr, hsail.OpXor: gcn3.OpVXor}[in.Op]
		for p := 0; p < t.Regs(); p++ {
			e.vop2(op, isa.TypeB32, dst[p], s0(p), s1(p), gcn3.Operand{})
		}
	case hsail.OpShl, hsail.OpShr:
		// GCN3 shifts are "rev" encoded: src0 is the amount.
		amt := s1(0)
		if t.Regs() == 2 {
			op := gcn3.OpVLshl
			if in.Op == hsail.OpShr {
				op = gcn3.OpVLshr
			}
			srcs := e.vop3Srcs(amt, w0())
			e.emit(gcn3.Inst{Op: op, Type: isa.TypeB64, Dst: dst[0], Srcs: srcs})
			return nil
		}
		var op gcn3.Op
		var st isa.DataType
		switch {
		case in.Op == hsail.OpShl:
			op, st = gcn3.OpVLshl, isa.TypeB32
		case t == isa.TypeS32:
			op, st = gcn3.OpVAshr, isa.TypeS32
		default:
			op, st = gcn3.OpVLshr, isa.TypeB32
		}
		e.vop2(op, st, dst[0], amt, s0(0), gcn3.Operand{})
	}
	return nil
}

func (f *finalizer) lowerScalarBinary(e *emitter, in *hsail.Inst, dst []gcn3.Operand, s0, s1 func(int) gcn3.Operand) error {
	t := in.Type
	switch in.Op {
	case hsail.OpAdd, hsail.OpSub:
		if t.Regs() == 2 {
			if in.Op == hsail.OpSub {
				return fmt.Errorf("64-bit scalar subtract is not supported")
			}
			e.emit(gcn3.Inst{Op: gcn3.OpSAdd, Type: isa.TypeU32, Dst: dst[0], Srcs: [3]gcn3.Operand{s0(0), s1(0)}})
			e.emit(gcn3.Inst{Op: gcn3.OpSAddc, Type: isa.TypeU32, Dst: dst[1], Srcs: [3]gcn3.Operand{s0(1), s1(1)}})
			return nil
		}
		op := gcn3.OpSAdd
		if in.Op == hsail.OpSub {
			op = gcn3.OpSSub
		}
		e.emit(gcn3.Inst{Op: op, Type: isa.TypeU32, Dst: dst[0], Srcs: [3]gcn3.Operand{s0(0), s1(0)}})
	case hsail.OpMul:
		e.emit(gcn3.Inst{Op: gcn3.OpSMul, Type: isa.TypeS32, Dst: dst[0], Srcs: [3]gcn3.Operand{s0(0), s1(0)}})
	case hsail.OpAnd, hsail.OpOr, hsail.OpXor:
		op := map[hsail.Op]gcn3.Op{hsail.OpAnd: gcn3.OpSAnd, hsail.OpOr: gcn3.OpSOr, hsail.OpXor: gcn3.OpSXor}[in.Op]
		if t.Regs() == 2 && in.Srcs[0].Kind == hsail.OperReg && in.Srcs[1].Kind == hsail.OperReg {
			e.emit(gcn3.Inst{Op: op, Type: isa.TypeB64, Dst: dst[0], Srcs: [3]gcn3.Operand{s0(0), s1(0)}})
			return nil
		}
		for p := 0; p < t.Regs(); p++ {
			e.emit(gcn3.Inst{Op: op, Type: isa.TypeB32, Dst: dst[p], Srcs: [3]gcn3.Operand{s0(p), s1(p)}})
		}
	case hsail.OpShl, hsail.OpShr:
		var op gcn3.Op
		var st isa.DataType
		switch {
		case in.Op == hsail.OpShl:
			op, st = gcn3.OpSLshl, isa.TypeB32
		case t == isa.TypeS32:
			op, st = gcn3.OpSAshr, isa.TypeS32
		default:
			op, st = gcn3.OpSLshr, isa.TypeB32
		}
		e.emit(gcn3.Inst{Op: op, Type: st, Dst: dst[0], Srcs: [3]gcn3.Operand{s0(0), s1(0)}})
	default:
		return fmt.Errorf("op %s unexpectedly scalar-homed", in.Op)
	}
	return nil
}

// lowerDiv expands floating-point division into the Newton-Raphson sequence
// of the paper's Table 3, and integer division into a reciprocal-based
// sequence (GCN3 has no integer divide instruction).
func (f *finalizer) lowerDiv(e *emitter, in *hsail.Inst) error {
	t := in.Type
	if t.IsFloat() {
		return f.lowerFloatDiv(e, in)
	}
	if t != isa.TypeU32 {
		return fmt.Errorf("integer division is supported for u32 only (got %s)", t)
	}
	dst := f.dstParts(in, t)
	q, _ := f.lowerU32DivRem(e, in)
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst[0], Srcs: [3]gcn3.Operand{gcn3.VReg(q)}})
	return nil
}

func (f *finalizer) lowerRem(e *emitter, in *hsail.Inst) error {
	if in.Type != isa.TypeU32 {
		return fmt.Errorf("remainder is supported for u32 only (got %s)", in.Type)
	}
	dst := f.dstParts(in, in.Type)
	_, r := f.lowerU32DivRem(e, in)
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst[0], Srcs: [3]gcn3.Operand{gcn3.VReg(r)}})
	return nil
}

// lowerU32DivRem emits the u32 divide sequence, returning temp VGPRs holding
// the quotient and remainder.
func (f *finalizer) lowerU32DivRem(e *emitter, in *hsail.Inst) (qReg, rReg int) {
	a := e.operand32(in.Srcs[0], isa.TypeU32, 0)
	b := e.operand32(in.Srcs[1], isa.TypeU32, 0)
	fa, fb, fr, q, t, r, adj := e.vtmp(2), e.vtmp(2), e.vtmp(2), e.vtmp(1), e.vtmp(1), e.vtmp(1), e.vtmp(1)
	// Convert to f64, multiply by the reciprocal, truncate back.
	e.emit(gcn3.Inst{Op: gcn3.OpVCvt, Type: isa.TypeF64, SrcType: isa.TypeU32, Dst: gcn3.VReg(fa), Srcs: [3]gcn3.Operand{a}})
	e.emit(gcn3.Inst{Op: gcn3.OpVCvt, Type: isa.TypeF64, SrcType: isa.TypeU32, Dst: gcn3.VReg(fb), Srcs: [3]gcn3.Operand{b}})
	e.emit(gcn3.Inst{Op: gcn3.OpVRcp, Type: isa.TypeF64, Dst: gcn3.VReg(fr), Srcs: [3]gcn3.Operand{gcn3.VReg(fb)}})
	e.emit(gcn3.Inst{Op: gcn3.OpVMul, Type: isa.TypeF64, Dst: gcn3.VReg(fa), Srcs: [3]gcn3.Operand{gcn3.VReg(fa), gcn3.VReg(fr)}})
	e.emit(gcn3.Inst{Op: gcn3.OpVCvt, Type: isa.TypeU32, SrcType: isa.TypeF64, Dst: gcn3.VReg(q), Srcs: [3]gcn3.Operand{gcn3.VReg(fa)}})
	// Fix up a possible off-by-one from rounding: if q*b > a, decrement.
	s := e.vop3Srcs(gcn3.VReg(q), b)
	e.emit(gcn3.Inst{Op: gcn3.OpVMulLo, Type: isa.TypeU32, Dst: gcn3.VReg(t), Srcs: s})
	e.emit(gcn3.Inst{Op: gcn3.OpVCmp, Type: isa.TypeU32, Cmp: isa.CmpLt, Dst: gcn3.VCC(),
		Srcs: [3]gcn3.Operand{a, gcn3.VReg(t)}})
	e.emit(gcn3.Inst{Op: gcn3.OpVCndmask, Type: isa.TypeB32, Dst: gcn3.VReg(adj),
		Srcs: [3]gcn3.Operand{gcn3.Inline(0), e.toVGPR(gcn3.Inline(uint32(0xFFFFFFFF))), gcn3.VCC()}})
	e.vop2(gcn3.OpVAdd, isa.TypeU32, gcn3.VReg(q), gcn3.VReg(adj), gcn3.VReg(q), gcn3.VCC())
	// Remainder and the increment fixup: if r >= b, increment.
	s = e.vop3Srcs(gcn3.VReg(q), b)
	e.emit(gcn3.Inst{Op: gcn3.OpVMulLo, Type: isa.TypeU32, Dst: gcn3.VReg(t), Srcs: s})
	e.vop2(gcn3.OpVSub, isa.TypeU32, gcn3.VReg(r), a, gcn3.VReg(t), gcn3.VCC())
	e.emit(gcn3.Inst{Op: gcn3.OpVCmp, Type: isa.TypeU32, Cmp: isa.CmpGe, Dst: gcn3.VCC(),
		Srcs: [3]gcn3.Operand{gcn3.VReg(r), e.toVGPR(b)}})
	e.emit(gcn3.Inst{Op: gcn3.OpVCndmask, Type: isa.TypeB32, Dst: gcn3.VReg(adj),
		Srcs: [3]gcn3.Operand{gcn3.Inline(0), e.toVGPR(gcn3.Inline(1)), gcn3.VCC()}})
	e.vop2(gcn3.OpVAdd, isa.TypeU32, gcn3.VReg(q), gcn3.VReg(adj), gcn3.VReg(q), gcn3.VCC())
	// Final remainder.
	s = e.vop3Srcs(gcn3.VReg(q), b)
	e.emit(gcn3.Inst{Op: gcn3.OpVMulLo, Type: isa.TypeU32, Dst: gcn3.VReg(t), Srcs: s})
	e.vop2(gcn3.OpVSub, isa.TypeU32, gcn3.VReg(r), a, gcn3.VReg(t), gcn3.VCC())
	return q, r
}

// lowerFloatDiv emits the Table 3 Newton-Raphson division.
func (f *finalizer) lowerFloatDiv(e *emitter, in *hsail.Inst) error {
	t := in.Type
	w := t.Regs()
	dst := f.dstParts(in, t)
	src := func(i int) gcn3.Operand {
		if w == 2 {
			return f.vec64(e, in.Srcs[i], t)
		}
		return e.operand32(in.Srcs[i], t, 0)
	}
	num := src(0)
	den := src(1)
	one := gcn3.Inline(0x3F800000) // expands to 1.0 for both f32 and f64

	d, n, x, eps, q, r, negD := e.vtmp(w), e.vtmp(w), e.vtmp(w), e.vtmp(w), e.vtmp(w), e.vtmp(w), e.vtmp(w)
	vop3 := func(op gcn3.Op, dstReg int, srcs ...gcn3.Operand) {
		s := e.vop3Srcs(srcs...)
		e.emit(gcn3.Inst{Op: op, Type: t, Dst: gcn3.VReg(dstReg), Srcs: s})
	}
	// Scale denominator and numerator.
	e.emit(gcn3.Inst{Op: gcn3.OpVDivScale, Type: t, Dst: gcn3.VReg(d), SDst: gcn3.VCC(),
		Srcs: e.vop3Srcs(den, den, num)})
	e.emit(gcn3.Inst{Op: gcn3.OpVDivScale, Type: t, Dst: gcn3.VReg(n), SDst: gcn3.VCC(),
		Srcs: e.vop3Srcs(num, den, num)})
	// Reciprocal seed.
	e.emit(gcn3.Inst{Op: gcn3.OpVRcp, Type: t, Dst: gcn3.VReg(x), Srcs: [3]gcn3.Operand{gcn3.VReg(d)}})
	// Negated denominator for the FMA chain (explicit: no operand
	// negation modifiers in this encoding).
	signBit := uint32(0x80000000)
	if w == 2 {
		e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(negD), Srcs: [3]gcn3.Operand{gcn3.VReg(d)}})
		e.vop2(gcn3.OpVXor, isa.TypeB32, gcn3.VReg(negD+1), gcn3.Lit(signBit), gcn3.VReg(d+1), gcn3.Operand{})
	} else {
		e.vop2(gcn3.OpVXor, isa.TypeB32, gcn3.VReg(negD), gcn3.Lit(signBit), gcn3.VReg(d), gcn3.Operand{})
	}
	// Two Newton-Raphson refinements.
	vop3(gcn3.OpVFma, eps, gcn3.VReg(negD), gcn3.VReg(x), one)
	vop3(gcn3.OpVFma, x, gcn3.VReg(x), gcn3.VReg(eps), gcn3.VReg(x))
	vop3(gcn3.OpVFma, eps, gcn3.VReg(negD), gcn3.VReg(x), one)
	vop3(gcn3.OpVFma, x, gcn3.VReg(x), gcn3.VReg(eps), gcn3.VReg(x))
	// Quotient estimate and residual.
	if w == 2 {
		vop3(gcn3.OpVMul, q, gcn3.VReg(n), gcn3.VReg(x))
	} else {
		e.vop2(gcn3.OpVMul, t, gcn3.VReg(q), gcn3.VReg(n), gcn3.VReg(x), gcn3.Operand{})
	}
	vop3(gcn3.OpVFma, r, gcn3.VReg(negD), gcn3.VReg(q), gcn3.VReg(n))
	// Final combination and special-case fixup.
	vop3(gcn3.OpVDivFmas, q, gcn3.VReg(r), gcn3.VReg(x), gcn3.VReg(q))
	e.emit(gcn3.Inst{Op: gcn3.OpVDivFixup, Type: t, Dst: dst[0],
		Srcs: e.vop3Srcs(gcn3.VReg(q), den, num)})
	return nil
}

func (f *finalizer) lowerFmaLike(e *emitter, in *hsail.Inst) error {
	t := in.Type
	dst := f.dstParts(in, t)
	src := func(i int) gcn3.Operand {
		if t.Regs() == 2 {
			return f.vec64(e, in.Srcs[i], t)
		}
		return e.operand32(in.Srcs[i], t, 0)
	}
	s0, s1, s2 := src(0), src(1), src(2)
	op := gcn3.OpVFma
	ot := t
	if !t.IsFloat() {
		if t.Regs() == 2 {
			return fmt.Errorf("64-bit integer mad is not supported")
		}
		op, ot = gcn3.OpVMad, isa.TypeU32
	}
	e.emit(gcn3.Inst{Op: op, Type: ot, Dst: dst[0], Srcs: e.vop3Srcs(s0, s1, s2)})
	return nil
}

func (f *finalizer) lowerUnary(e *emitter, in *hsail.Inst) error {
	t := in.Type
	dst := f.dstParts(in, t)
	src := func(p int) gcn3.Operand { return e.operand32(in.Srcs[0], t, p) }
	scalar := f.isScalarSlot(int(in.Dst.Reg))
	switch in.Op {
	case hsail.OpNot:
		if scalar {
			if t.Regs() == 2 && in.Srcs[0].Kind == hsail.OperReg {
				e.emit(gcn3.Inst{Op: gcn3.OpSNot, Type: isa.TypeB64, Dst: dst[0], Srcs: [3]gcn3.Operand{src(0)}})
				return nil
			}
			e.emit(gcn3.Inst{Op: gcn3.OpSNot, Type: isa.TypeB32, Dst: dst[0], Srcs: [3]gcn3.Operand{src(0)}})
			return nil
		}
		for p := 0; p < t.Regs(); p++ {
			e.emit(gcn3.Inst{Op: gcn3.OpVNot, Type: isa.TypeB32, Dst: dst[p], Srcs: [3]gcn3.Operand{src(p)}})
		}
	case hsail.OpSqrt, hsail.OpRsqrt:
		op := gcn3.OpVSqrt
		if in.Op == hsail.OpRsqrt {
			op = gcn3.OpVRsq
		}
		s := src(0)
		if t.Regs() == 2 {
			s = f.vec64(e, in.Srcs[0], t)
		}
		e.emit(gcn3.Inst{Op: op, Type: t, Dst: dst[0], Srcs: [3]gcn3.Operand{s}})
	case hsail.OpNeg:
		if t.IsFloat() {
			// Flip the sign bit of the top dword.
			hiPart := t.Regs() - 1
			if t.Regs() == 2 {
				e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst[0], Srcs: [3]gcn3.Operand{src(0)}})
			}
			e.vop2(gcn3.OpVXor, isa.TypeB32, dst[hiPart], gcn3.Lit(0x80000000), e.toVGPR(src(hiPart)), gcn3.Operand{})
			return nil
		}
		// Integer negate: 0 - x.
		e.vop2(gcn3.OpVSub, isa.TypeU32, dst[0], gcn3.Inline(0), e.toVGPR(src(0)), gcn3.VCC())
		if t.Regs() == 2 {
			return fmt.Errorf("64-bit integer negate is not supported")
		}
	case hsail.OpAbs:
		if t.IsFloat() {
			hiPart := t.Regs() - 1
			if t.Regs() == 2 {
				e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst[0], Srcs: [3]gcn3.Operand{src(0)}})
			}
			e.vop2(gcn3.OpVAnd, isa.TypeB32, dst[hiPart], gcn3.Lit(0x7FFFFFFF), e.toVGPR(src(hiPart)), gcn3.Operand{})
			return nil
		}
		// Integer abs: max(x, 0-x).
		tn := e.vtmp(1)
		e.vop2(gcn3.OpVSub, isa.TypeU32, gcn3.VReg(tn), gcn3.Inline(0), e.toVGPR(src(0)), gcn3.VCC())
		e.vop2(gcn3.OpVMax, isa.TypeS32, dst[0], src(0), gcn3.VReg(tn), gcn3.Operand{})
	}
	return nil
}

// lowerCmp emits a non-fused compare: a vector compare whose lane mask lands
// in the control register's SGPR pair (a VOP3 encoding).
func (f *finalizer) lowerCmp(e *emitter, in *hsail.Inst) {
	t := in.SrcType
	src := func(i int) gcn3.Operand {
		if t.Regs() == 2 {
			return f.vec64(e, in.Srcs[i], t)
		}
		return e.operand32(in.Srcs[i], t, 0)
	}
	s0 := src(0)
	s1 := src(1)
	ct := t
	if ct == isa.TypeB32 {
		ct = isa.TypeU32
	}
	if ct == isa.TypeB64 {
		ct = isa.TypeU64
	}
	e.emit(gcn3.Inst{Op: gcn3.OpVCmp, Type: ct, Cmp: in.Cmp,
		Dst:  gcn3.SReg(f.cregs[in.Dst.Reg].sreg),
		Srcs: e.vop3Srcs(s0, s1)})
}

// lowerCmov emits v_cndmask selected by the control register's lane mask.
func (f *finalizer) lowerCmov(e *emitter, in *hsail.Inst) {
	t := in.Type
	dst := f.dstParts(in, t)
	sel := gcn3.SReg(f.cregs[in.Srcs[0].Reg].sreg)
	for p := 0; p < t.Regs(); p++ {
		sTrue := e.operand32(in.Srcs[1], t, p)
		sFalse := e.operand32(in.Srcs[2], t, p)
		srcs := e.vop3Srcs(sFalse, sTrue)
		e.emit(gcn3.Inst{Op: gcn3.OpVCndmask, Type: isa.TypeB32, Dst: dst[p],
			Srcs: [3]gcn3.Operand{srcs[0], srcs[1], sel}})
	}
}
