package finalizer

import (
	"fmt"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// Finalizer-level register spilling.
//
// When a kernel's vector live set exceeds the VGPR budget, the overflow
// slots are homed in scratch memory (the same private-segment arena the
// ABI's s[0:1]/s2 registers describe) instead of failing. Every use of a
// spilled slot loads it into a dedicated staging register before the
// instruction and every definition stores it back after — the classic
// "spill everywhere" discipline real finalizers fall back to under extreme
// pressure, and the machinery behind the paper's observation that FFT and
// LULESH "use special segments to spill and fill because of their large
// register demands".
//
// Spill traffic is ordinary FLAT memory: the address arithmetic, vmcnt
// accounting and cache behavior all show up in the statistics, exactly as
// they do on hardware.

// spillStageRegs is the number of VGPRs reserved for staging spilled
// operands within one instruction: up to three 64-bit sources, a 64-bit
// destination, and a 64-bit address base.
const spillStageRegs = 10

// prepareSpills loads every spilled slot the instruction reads into staging
// registers and reserves staging for spilled destinations, recording the
// overlay that slotOperand consults. It returns the set of spilled
// destination slots to flush afterwards.
func (f *finalizer) prepareSpills(e *emitter, reads, writes []int) {
	f.spillOverlay = map[int]int{}
	stage := f.vSpillBase
	alloc := func(slot int) int {
		u := f.slots[slot]
		width := 1
		if u.pairStart {
			width = 2
		}
		r := stage
		stage += width
		if stage > f.vSpillBase+spillStageRegs {
			panic(fmt.Sprintf("finalizer: spill staging overflow in kernel %q", f.k.Name))
		}
		f.spillOverlay[slot] = r
		if width == 2 {
			f.spillOverlay[slot+1] = r + 1
		}
		return r
	}
	for _, slot := range reads {
		if f.slots[slot].home != homeSpill {
			continue
		}
		if f.slots[slot].pairSecond {
			slot--
		}
		if _, done := f.spillOverlay[slot]; done {
			continue
		}
		r := alloc(slot)
		f.emitSpillAccess(e, slot, r, false)
	}
	for _, slot := range writes {
		if f.slots[slot].home != homeSpill {
			continue
		}
		s := slot
		if f.slots[s].pairSecond {
			s--
		}
		if _, done := f.spillOverlay[s]; done {
			continue
		}
		alloc(s)
	}
}

// flushSpills stores spilled destination slots back to scratch.
func (f *finalizer) flushSpills(e *emitter, writes []int) {
	for _, slot := range writes {
		if f.slots[slot].home != homeSpill {
			continue
		}
		s := slot
		if f.slots[s].pairSecond {
			s--
		}
		r, ok := f.spillOverlay[s]
		if !ok {
			continue
		}
		f.emitSpillAccess(e, s, r, true)
		delete(f.spillOverlay, s)
		if f.slots[s].pairStart {
			delete(f.spillOverlay, s+1)
		}
	}
	f.spillOverlay = nil
}

// emitSpillAccess moves one spilled slot between scratch and staging reg r.
func (f *finalizer) emitSpillAccess(e *emitter, slot, r int, store bool) {
	width := 1
	if f.slots[slot].pairStart {
		width = 2
	}
	off := f.slots[slot].spillOff
	// addr = vPrivBase + off (offsets are small positive constants).
	at := e.vtmp(2)
	e.vop2(gcn3.OpVAdd, isa.TypeU32, gcn3.VReg(at),
		constOperand(isa.TypeU32, uint32(off)), gcn3.VReg(f.vPrivBase), gcn3.VCC())
	e.vop2(gcn3.OpVAddc, isa.TypeU32, gcn3.VReg(at+1),
		gcn3.Inline(0), gcn3.VReg(f.vPrivBase+1), gcn3.VCC())
	var op gcn3.Op
	in := gcn3.Inst{Srcs: [3]gcn3.Operand{gcn3.VReg(at)}}
	if store {
		if width == 2 {
			op = gcn3.OpFlatStoreDwordx2
		} else {
			op = gcn3.OpFlatStoreDword
		}
		in.Srcs[1] = gcn3.VReg(r)
	} else {
		if width == 2 {
			op = gcn3.OpFlatLoadDwordx2
		} else {
			op = gcn3.OpFlatLoadDword
		}
		in.Dst = gcn3.VReg(r)
	}
	in.Op = op
	e.emit(in)
}

// hsailRegRefs lists the HSAIL register slots an instruction reads and
// writes, used to drive spill staging.
func hsailRegRefs(in *hsail.Inst) (reads, writes []int) {
	srcT := in.Type
	if in.SrcType != isa.TypeNone {
		srcT = in.SrcType
	}
	for i, s := range in.SrcSlice() {
		if s.Kind != hsail.OperReg {
			continue
		}
		if in.Op == hsail.OpCmov && i == 0 {
			continue
		}
		w := srcT.Regs()
		if w == 0 {
			w = 1
		}
		for p := 0; p < w; p++ {
			reads = append(reads, int(s.Reg)+p)
		}
	}
	if in.Op.IsMemory() || in.Op == hsail.OpLda {
		if in.Addr.Base.Kind == hsail.OperReg {
			reads = append(reads, int(in.Addr.Base.Reg), int(in.Addr.Base.Reg)+1)
		}
	}
	if in.Dst.Kind == hsail.OperReg {
		dt := in.Type
		if in.Op == hsail.OpLda {
			dt = isa.TypeU64
		}
		w := dt.Regs()
		if w == 0 {
			w = 1
		}
		for p := 0; p < w; p++ {
			writes = append(writes, int(in.Dst.Reg)+p)
		}
	}
	return reads, writes
}
