package finalizer

import (
	"fmt"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// lowerGeometry expands dispatch-geometry queries into the ABI sequences the
// machine ISA requires (paper Table 1): geometry lives in the dispatch
// packet in memory and in ABI-initialized registers, not in magic state.
func (f *finalizer) lowerGeometry(e *emitter, in *hsail.Inst) error {
	dst0 := f.slotOperand(int(in.Dst.Reg))
	scalar := f.isScalarSlot(int(in.Dst.Reg))
	dim := int(in.Dim)
	switch in.Op {
	case hsail.OpWorkItemAbsId:
		if in.Dim != isa.DimX {
			return fmt.Errorf("workitemabsid supported for dim x only")
		}
		// The prologue computed the Table 1 sequence into vAbsID.
		e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst0,
			Srcs: [3]gcn3.Operand{gcn3.VReg(f.vAbsID)}})
	case hsail.OpWorkItemId:
		// The ABI initializes v0..v2 with the per-dimension IDs.
		src := gcn3.VGPRWorkItemID + dim
		e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst0,
			Srcs: [3]gcn3.Operand{gcn3.VReg(src)}})
	case hsail.OpWorkGroupId:
		src := gcn3.SReg(gcn3.SGPRWorkGroupIDX + dim)
		op := gcn3.OpVMov
		if scalar {
			op = gcn3.OpSMov
		}
		e.emit(gcn3.Inst{Op: op, Type: isa.TypeB32, Dst: dst0, Srcs: [3]gcn3.Operand{src}})
	case hsail.OpWorkGroupSize:
		// Packed 16-bit sizes in the dispatch packet: X and Y share a
		// dword at offset 4; Z sits at offset 8.
		st := e.stmp(1)
		off := int32(gcn3.PktWorkgroupSizeX)
		bfe := uint32(0x100000) // offset 0, width 16
		switch in.Dim {
		case isa.DimY:
			bfe = 0x100010 // offset 16, width 16
		case isa.DimZ:
			off = gcn3.PktWorkgroupSizeZ
		}
		e.emit(gcn3.Inst{Op: gcn3.OpSLoadDword, Dst: gcn3.SReg(st),
			Srcs: [3]gcn3.Operand{gcn3.SReg(gcn3.SGPRDispatchPtr)}, Offset: off})
		target := dst0
		if !scalar {
			target = gcn3.SReg(st)
		}
		e.emit(gcn3.Inst{Op: gcn3.OpSBfe, Type: isa.TypeU32, Dst: target,
			Srcs: [3]gcn3.Operand{gcn3.SReg(st), gcn3.Lit(bfe)}})
		if !scalar {
			e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst0,
				Srcs: [3]gcn3.Operand{gcn3.SReg(st)}})
		}
	case hsail.OpGridSize:
		off := int32(gcn3.PktGridSizeX + 4*dim)
		if scalar {
			e.emit(gcn3.Inst{Op: gcn3.OpSLoadDword, Dst: dst0,
				Srcs: [3]gcn3.Operand{gcn3.SReg(gcn3.SGPRDispatchPtr)}, Offset: off})
			return nil
		}
		st := e.stmp(1)
		e.emit(gcn3.Inst{Op: gcn3.OpSLoadDword, Dst: gcn3.SReg(st),
			Srcs: [3]gcn3.Operand{gcn3.SReg(gcn3.SGPRDispatchPtr)}, Offset: off})
		e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dst0,
			Srcs: [3]gcn3.Operand{gcn3.SReg(st)}})
	}
	return nil
}

// flatAddress materializes the effective 64-bit address of a non-LDS memory
// access into a VGPR pair and returns the pair's first register operand.
// This is where the ABI's address-generation cost becomes explicit: segment
// bases come from registers and GCN3 FLAT operations take no immediate
// offset, so every displacement costs real add/addc instructions.
func (f *finalizer) flatAddress(e *emitter, in *hsail.Inst) (gcn3.Operand, error) {
	off := int64(in.Addr.Offset)
	switch in.Seg {
	case hsail.SegKernarg:
		if in.Addr.Base.Kind == hsail.OperArgSym {
			off += int64(f.k.Args[in.Addr.Base.Reg].Offset)
		}
		// Scalar add of the displacement, then move the address into
		// VGPRs for the flat operation (paper Table 2).
		base := gcn3.SGPRKernargPtr
		if off != 0 {
			st := e.stmp(2)
			e.emit(gcn3.Inst{Op: gcn3.OpSAdd, Type: isa.TypeU32, Dst: gcn3.SReg(st),
				Srcs: [3]gcn3.Operand{gcn3.SReg(base), constOperand(isa.TypeU32, uint32(off))}})
			e.emit(gcn3.Inst{Op: gcn3.OpSAddc, Type: isa.TypeU32, Dst: gcn3.SReg(st + 1),
				Srcs: [3]gcn3.Operand{gcn3.SReg(base + 1), gcn3.Inline(0)}})
			base = st
		}
		pair := e.movToVGPRPair(gcn3.SReg(base), gcn3.SReg(base+1))
		return gcn3.VReg(pair), nil

	case hsail.SegPrivate, hsail.SegSpill:
		if in.Seg == hsail.SegSpill {
			off += int64(f.spillOffset)
		}
		curLo := gcn3.Operand(gcn3.VReg(f.vPrivBase))
		curHi := gcn3.Operand(gcn3.VReg(f.vPrivBase + 1))
		if in.Addr.Base.Kind == hsail.OperReg {
			t := e.vtmp(2)
			bLo := e.operand32(in.Addr.Base, isa.TypeU64, 0)
			bHi := e.operand32(in.Addr.Base, isa.TypeU64, 1)
			e.add64(gcn3.VReg(t), gcn3.VReg(t+1), bLo, bHi, curLo, curHi)
			curLo, curHi = gcn3.VReg(t), gcn3.VReg(t+1)
		}
		if off != 0 {
			t := e.vtmp(2)
			hi := uint32(0)
			if off < 0 {
				hi = 0xFFFFFFFF
			}
			e.add64(gcn3.VReg(t), gcn3.VReg(t+1),
				constOperand(isa.TypeU32, uint32(off)), constOperand(isa.TypeB32, hi), curLo, curHi)
			curLo = gcn3.VReg(t)
		}
		return curLo, nil

	default: // global, readonly, flat
		if in.Addr.Base.Kind != hsail.OperReg {
			return gcn3.Operand{}, fmt.Errorf("%s access requires a register base", in.Seg)
		}
		slot := int(in.Addr.Base.Reg)
		if f.isScalarSlot(slot) {
			base := f.slots[slot].reg
			if off != 0 {
				st := e.stmp(2)
				e.emit(gcn3.Inst{Op: gcn3.OpSAdd, Type: isa.TypeU32, Dst: gcn3.SReg(st),
					Srcs: [3]gcn3.Operand{gcn3.SReg(base), constOperand(isa.TypeU32, uint32(off))}})
				hi := gcn3.Operand(gcn3.Inline(0))
				if off < 0 {
					hi = constOperand(isa.TypeB32, 0xFFFFFFFF)
				}
				e.emit(gcn3.Inst{Op: gcn3.OpSAddc, Type: isa.TypeU32, Dst: gcn3.SReg(st + 1),
					Srcs: [3]gcn3.Operand{gcn3.SReg(base + 1), hi}})
				base = st
			}
			pair := e.movToVGPRPair(gcn3.SReg(base), gcn3.SReg(base+1))
			return gcn3.VReg(pair), nil
		}
		bLo := e.operand32(in.Addr.Base, isa.TypeU64, 0)
		bHi := e.operand32(in.Addr.Base, isa.TypeU64, 1)
		if off == 0 {
			return bLo, nil
		}
		t := e.vtmp(2)
		hi := uint32(0)
		if off < 0 {
			hi = 0xFFFFFFFF
		}
		e.add64(gcn3.VReg(t), gcn3.VReg(t+1),
			constOperand(isa.TypeU32, uint32(off)), constOperand(isa.TypeB32, hi), bLo, bHi)
		return gcn3.VReg(t), nil
	}
}

// dataToVGPRs materializes a store's data operand into VGPRs.
func (f *finalizer) dataToVGPRs(e *emitter, o hsail.Operand, t isa.DataType) gcn3.Operand {
	if o.Kind == hsail.OperReg && !f.isScalarSlot(int(o.Reg)) {
		return f.slotOperand(int(o.Reg))
	}
	if t.Regs() == 2 {
		lo := e.operand32(o, t, 0)
		hi := e.operand32(o, t, 1)
		return gcn3.VReg(e.movToVGPRPair(lo, hi))
	}
	return e.toVGPR(e.operand32(o, t, 0))
}

// lowerMemory lowers ld/st/atomic for every segment.
func (f *finalizer) lowerMemory(e *emitter, in *hsail.Inst) error {
	t := in.Type
	w := t.Regs()

	// Kernarg loads scalarize to s_load when the destination is
	// scalar-homed (the common case); Options.UseFlatKernarg forces the
	// paper's Table 2 vector sequence for demonstration.
	if in.Op == hsail.OpLd && in.Seg == hsail.SegKernarg &&
		f.isScalarSlot(int(in.Dst.Reg)) && !f.opts.UseFlatKernarg {
		off := int32(in.Addr.Offset)
		if in.Addr.Base.Kind == hsail.OperArgSym {
			off += int32(f.k.Args[in.Addr.Base.Reg].Offset)
		}
		op := gcn3.OpSLoadDword
		if w == 2 {
			op = gcn3.OpSLoadDwordx2
		}
		e.emit(gcn3.Inst{Op: op, Dst: f.slotOperand(int(in.Dst.Reg)),
			Srcs: [3]gcn3.Operand{gcn3.SReg(gcn3.SGPRKernargPtr)}, Offset: off})
		return nil
	}

	if in.Seg == hsail.SegGroup {
		return f.lowerLDS(e, in)
	}

	addr, err := f.flatAddress(e, in)
	if err != nil {
		return err
	}
	switch in.Op {
	case hsail.OpLd:
		op := gcn3.OpFlatLoadDword
		if w == 2 {
			op = gcn3.OpFlatLoadDwordx2
		}
		dst := f.slotOperand(int(in.Dst.Reg))
		if f.isScalarSlot(int(in.Dst.Reg)) {
			return fmt.Errorf("flat load into scalar-homed slot %d", in.Dst.Reg)
		}
		e.emit(gcn3.Inst{Op: op, Dst: dst, Srcs: [3]gcn3.Operand{addr}})
	case hsail.OpSt:
		op := gcn3.OpFlatStoreDword
		if w == 2 {
			op = gcn3.OpFlatStoreDwordx2
		}
		data := f.dataToVGPRs(e, in.Srcs[0], t)
		e.emit(gcn3.Inst{Op: op, Srcs: [3]gcn3.Operand{addr, data}})
	case hsail.OpAtomicAdd:
		if w != 1 {
			return fmt.Errorf("atomic add supported for 32-bit types only")
		}
		data := f.dataToVGPRs(e, in.Srcs[0], t)
		e.emit(gcn3.Inst{Op: gcn3.OpFlatAtomicAdd, Type: isa.TypeU32,
			Dst: f.slotOperand(int(in.Dst.Reg)), Srcs: [3]gcn3.Operand{addr, data}})
	}
	return nil
}

// lowerLDS lowers group-segment accesses to DS operations. The DS offset
// field absorbs the displacement; the base register supplies the per-lane
// LDS byte address (low dword).
func (f *finalizer) lowerLDS(e *emitter, in *hsail.Inst) error {
	t := in.Type
	w := t.Regs()
	if in.Addr.Offset < 0 || in.Addr.Offset >= 1<<16 {
		return fmt.Errorf("LDS offset %d out of the 16-bit DS range", in.Addr.Offset)
	}
	var addr gcn3.Operand
	if in.Addr.Base.Kind == hsail.OperReg {
		addr = e.toVGPR(e.operand32(in.Addr.Base, isa.TypeU64, 0))
	} else {
		addr = e.toVGPR(gcn3.Inline(0))
	}
	switch in.Op {
	case hsail.OpLd:
		op := gcn3.OpDSReadB32
		if w == 2 {
			op = gcn3.OpDSReadB64
		}
		e.emit(gcn3.Inst{Op: op, Dst: f.slotOperand(int(in.Dst.Reg)),
			Srcs: [3]gcn3.Operand{addr}, Offset: in.Addr.Offset})
	case hsail.OpSt:
		op := gcn3.OpDSWriteB32
		if w == 2 {
			op = gcn3.OpDSWriteB64
		}
		data := f.dataToVGPRs(e, in.Srcs[0], t)
		e.emit(gcn3.Inst{Op: op, Srcs: [3]gcn3.Operand{addr, data}, Offset: in.Addr.Offset})
	case hsail.OpAtomicAdd:
		if w != 1 {
			return fmt.Errorf("LDS atomic add supported for 32-bit types only")
		}
		data := f.dataToVGPRs(e, in.Srcs[0], t)
		e.emit(gcn3.Inst{Op: gcn3.OpDSAddU32, Type: isa.TypeU32,
			Dst: f.slotOperand(int(in.Dst.Reg)), Srcs: [3]gcn3.Operand{addr, data},
			Offset: in.Addr.Offset})
	default:
		return fmt.Errorf("unsupported LDS operation %s", in.Op)
	}
	return nil
}

// lowerLda materializes a segment address into the destination VGPR pair.
func (f *finalizer) lowerLda(e *emitter, in *hsail.Inst) error {
	if f.isScalarSlot(int(in.Dst.Reg)) {
		return fmt.Errorf("lda into scalar-homed slot %d", in.Dst.Reg)
	}
	dstLo := f.slotOperand(int(in.Dst.Reg))
	dstHi := f.slotOperand(int(in.Dst.Reg) + 1)
	if in.Seg == hsail.SegGroup {
		off := uint32(in.Addr.Offset)
		e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dstLo,
			Srcs: [3]gcn3.Operand{constOperand(isa.TypeU32, off)}})
		e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dstHi,
			Srcs: [3]gcn3.Operand{gcn3.Inline(0)}})
		return nil
	}
	addr, err := f.flatAddress(e, in)
	if err != nil {
		return err
	}
	if addr.Kind != gcn3.OperVGPR {
		return fmt.Errorf("lda address did not land in VGPRs")
	}
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dstLo,
		Srcs: [3]gcn3.Operand{gcn3.VReg(int(addr.Index))}})
	e.emit(gcn3.Inst{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: dstHi,
		Srcs: [3]gcn3.Operand{gcn3.VReg(int(addr.Index) + 1)}})
	return nil
}
