package finalizer

import (
	"fmt"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// Control-flow lowering (paper §III.C.1, Figure 3c).
//
// Because the EXEC mask is architecturally visible, structured control flow
// linearizes into mask manipulation. Branch instructions survive only as
// "bypass" jumps over regions with no active lanes and as loop back-edges;
// the front end otherwise runs straight-line code with no reconvergence
// stack and no simulator-initiated jumps.
//
//	if-then (guard at B, then-region, join J):
//	    s_mov_b64  s[save], exec
//	    s_andn2_b64 exec, exec, s[skip-mask]
//	    s_cbranch_execz J          ; bypass an empty then
//	    <then>
//	  J: s_mov_b64 exec, s[save]   ; (join prefix)
//
//	if-then-else adds a flip at the else boundary (else prefix):
//	    s_andn2_b64 exec, s[save], exec
//	    s_cbranch_execz J          ; bypass an empty else
//
//	do-while latch (header H, join J):
//	    s_mov_b64 s[save], exec    ; (pre-header suffix)
//	  H: <body>
//	    s_and_b64 exec, exec, s[continue-mask]
//	    s_cbranch_execnz H
//	  J: s_mov_b64 exec, s[save]   ; (join prefix)
//
// Branches with UNIFORM conditions (fused compare) skip all mask work and
// lower to s_cmp + s_cbranch_scc — the scalar pipeline handling control flow.
func (f *finalizer) lowerTerminator(e *emitter, in *hsail.Inst, block int, pendingCmp *hsail.Inst) error {
	if in.Op == hsail.OpBr {
		if f.dropBr[block] {
			// The then-exit falls through into the else flip prefix.
			return nil
		}
		e.emit(gcn3.Inst{Op: gcn3.OpSBranch, Target: blockTarget(int(in.Target))})
		return nil
	}

	sh, ok := f.cfg.Shapes[block]
	if !ok {
		return fmt.Errorf("BB%d: conditional branch without a structured shape", block)
	}
	c := int(in.Srcs[0].Reg)
	if f.cregs[c].fused {
		if pendingCmp == nil {
			return fmt.Errorf("BB%d: fused condition without a pending compare", block)
		}
		t := pendingCmp.SrcType
		if t == isa.TypeB32 {
			t = isa.TypeU32
		}
		e.emit(gcn3.Inst{Op: gcn3.OpSCmp, Type: t, Cmp: pendingCmp.Cmp,
			Srcs: [3]gcn3.Operand{
				e.operand32(pendingCmp.Srcs[0], t, 0),
				e.operand32(pendingCmp.Srcs[1], t, 0),
			}})
		e.emit(gcn3.Inst{Op: gcn3.OpSCbranchSCC1, Target: blockTarget(int(in.Target))})
		return nil
	}

	mask := gcn3.SReg(f.cregs[c].sreg)
	switch sh.Kind {
	case kernel.ShapeIfThen, kernel.ShapeIfThenElse:
		save := f.condSave[block]
		e.emit(gcn3.Inst{Op: gcn3.OpSMov, Type: isa.TypeB64, Dst: gcn3.SReg(save),
			Srcs: [3]gcn3.Operand{gcn3.EXEC()}})
		e.emit(gcn3.Inst{Op: gcn3.OpSAndN2, Type: isa.TypeB64, Dst: gcn3.EXEC(),
			Srcs: [3]gcn3.Operand{gcn3.EXEC(), mask}})
		e.emit(gcn3.Inst{Op: gcn3.OpSCbranchExecZ, Target: blockTarget(int(in.Target))})
	case kernel.ShapeLoopLatch:
		e.emit(gcn3.Inst{Op: gcn3.OpSAnd, Type: isa.TypeB64, Dst: gcn3.EXEC(),
			Srcs: [3]gcn3.Operand{gcn3.EXEC(), mask}})
		e.emit(gcn3.Inst{Op: gcn3.OpSCbranchExecNZ, Target: blockTarget(sh.Header)})
	}
	return nil
}
