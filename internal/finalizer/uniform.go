package finalizer

import (
	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// analyzeUniformity decides, for every HSAIL register slot, whether its value
// is wavefront-uniform AND profitably scalar-homed (the GCN3 scalar unit has
// no floating-point datapath, so uniform float values stay in the VRF — one
// of the paper's §V.D observations: "the scalar unit in GCN3 is not generally
// used for computation").
//
// The analysis is an optimistic fixpoint: slots start uniform and are demoted
// when any definition is divergent — an inherently per-lane source (work-item
// IDs, vector loads), a non-scalarizable operation, a divergent operand, or a
// definition under divergent control flow.
func (f *finalizer) analyzeUniformity() {
	if f.opts.DisableScalarization {
		f.uniform = make([]bool, f.k.NumRegSlots)
		f.cregUniform = make([]bool, f.k.NumCRegs)
		f.blockUniform = make([]bool, len(f.k.Blocks))
		for i := range f.blockUniform {
			f.blockUniform[i] = true
		}
		return
	}
	u := kernel.AnalyzeUniformityOpt(f.k, f.cfg, !f.opts.UseFlatKernarg)
	f.uniform = u.Slots
	f.cregUniform = u.CRegs
	f.blockUniform = u.Blocks
}

func lastInst(b *hsail.Block) *hsail.Inst {
	return &b.Insts[len(b.Insts)-1]
}

// allocate maps HSAIL register slots and control registers onto the GCN3
// register files, reserves structured-control-flow save registers, and
// reserves ABI/prologue registers.
func (f *finalizer) allocate() error {
	k := f.k
	f.slots = make([]slotInfo, k.NumRegSlots)
	f.cregs = make([]cregInfo, k.NumCRegs)
	f.loopSave = make(map[int]int)
	f.condSave = make(map[int]int)

	// Discover pair structure and usage from operand types.
	mark := func(o hsail.Operand, t isa.DataType) {
		if o.Kind != hsail.OperReg {
			return
		}
		f.slots[o.Reg].used = true
		if t.Regs() == 2 {
			f.slots[o.Reg].pairStart = true
			f.slots[o.Reg+1].pairSecond = true
			f.slots[o.Reg+1].used = true
		}
	}
	cregOnlyCbr := make([]bool, k.NumCRegs)
	cregFusable := make([]bool, k.NumCRegs)
	cregSrcSlots := make([][]int, k.NumCRegs)
	for i := range cregOnlyCbr {
		cregOnlyCbr[i] = true
	}
	for _, b := range k.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			srcT := in.Type
			if in.SrcType != isa.TypeNone {
				srcT = in.SrcType
			}
			for i, s := range in.SrcSlice() {
				t := srcT
				if in.Op == hsail.OpCmov && i == 0 {
					t = isa.TypeNone
				}
				mark(s, t)
				if s.Kind == hsail.OperCReg && in.Op != hsail.OpCBr {
					cregOnlyCbr[s.Reg] = false
				}
			}
			if in.Op.IsMemory() || in.Op == hsail.OpLda {
				mark(in.Addr.Base, isa.TypeU64)
			}
			dt := in.Type
			if in.Op == hsail.OpLda {
				dt = isa.TypeU64
			}
			if in.Dst.Kind == hsail.OperReg {
				mark(in.Dst, dt)
			}
			// Fusable: cmp as the penultimate instruction of a block
			// whose terminator is a cbr consuming its creg.
			if in.Op == hsail.OpCmp && ii == len(b.Insts)-2 {
				term := &b.Insts[len(b.Insts)-1]
				if term.Op == hsail.OpCBr && term.Srcs[0].Reg == in.Dst.Reg {
					cregFusable[in.Dst.Reg] = true
					for _, s := range in.SrcSlice() {
						if s.Kind == hsail.OperReg {
							cregSrcSlots[in.Dst.Reg] = append(cregSrcSlots[in.Dst.Reg], int(s.Reg))
						}
					}
				}
			}
		}
	}

	// Segment usage and work-item ID dimensionality.
	f.spillOffset = k.PrivateSize
	f.idDims = 1
	for _, b := range k.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if in.Op == hsail.OpWorkItemAbsId {
				f.useAbsID = true
			}
			if in.Op == hsail.OpWorkItemId && int(in.Dim)+1 > f.idDims {
				f.idDims = int(in.Dim) + 1
			}
			if (in.Op.IsMemory() || in.Op == hsail.OpLda) && in.Seg.IsWorkItemPrivate() {
				f.usePrivate = true
			}
		}
	}
	if f.usePrivate {
		f.useAbsID = true
	}

	// Pre-pass: does the vector live set overflow the VGPR budget? If so,
	// the overflow spills to scratch, which needs the private-segment base
	// (and therefore the absolute-ID prologue) plus staging registers.
	vectorDemand := 0
	for i := range f.slots {
		s := &f.slots[i]
		if s.used && !s.pairSecond && !f.uniform[i] {
			if s.pairStart {
				vectorDemand += 2
			} else {
				vectorDemand++
			}
		}
	}
	abiRegs := f.idDims
	if f.useAbsID {
		abiRegs++
	}
	if f.usePrivate {
		abiRegs += 2
	}
	vBudget := f.opts.MaxVGPRs - vTempWindow
	if abiRegs+vectorDemand > vBudget {
		if !f.usePrivate {
			f.usePrivate = true
			abiRegs += 2
		}
		if !f.useAbsID {
			f.useAbsID = true
			abiRegs++
		}
		vBudget -= spillStageRegs
	}

	// Vector registers: the ABI's work-item ID block (v0..v2), then the
	// cached absolute-ID and scratch base, then mapped slots in slot order
	// (keeping pairs consecutive).
	nextV := f.idDims
	if f.useAbsID {
		f.vAbsID = nextV
		nextV++
	}
	if f.usePrivate {
		f.vPrivBase = nextV
		nextV += 2
	}
	// Scalar registers: after the ABI block.
	nextS := gcn3.FirstAllocSGPR
	alignS := func() {
		if nextS%2 != 0 {
			nextS++
		}
	}
	spillBase := f.k.PrivateSize + f.k.SpillSize
	for i := range f.slots {
		s := &f.slots[i]
		if !s.used || s.pairSecond {
			continue
		}
		width := 1
		if s.pairStart {
			width = 2
		}
		switch {
		case f.uniform[i]:
			s.home = homeScalar
			if width == 2 {
				alignS()
			}
			s.reg = nextS
			nextS += width
		case nextV+width > vBudget:
			// Register-pressure overflow: home the value in scratch.
			s.home = homeSpill
			s.spillOff = spillBase + f.spillBytes
			f.spillBytes += width * 4
		default:
			s.home = homeVector
			s.reg = nextV
			nextV += width
		}
		if s.pairStart {
			f.slots[i+1].home = s.home
			f.slots[i+1].reg = s.reg + 1
			f.slots[i+1].spillOff = s.spillOff + 4
			f.slots[i+1].pairSecond = true
		}
	}
	// Control registers: fused ones need no storage; others get SGPR pairs.
	// Fusion additionally requires every compare operand to have landed in
	// the scalar file (spilled operands would feed s_cmp from VGPRs).
	for i := range f.cregs {
		scalarSrcs := true
		for _, slot := range cregSrcSlots[i] {
			if f.slots[slot].home != homeScalar {
				scalarSrcs = false
			}
		}
		if cregFusable[i] && cregOnlyCbr[i] && f.cregUniform[i] && scalarSrcs {
			f.cregs[i].fused = true
			continue
		}
		alignS()
		f.cregs[i].sreg = nextS
		nextS += 2
	}
	// Structured-control-flow save registers.
	for bi, sh := range f.cfg.Shapes {
		alignS()
		switch sh.Kind {
		case kernel.ShapeLoopLatch:
			f.loopSave[bi] = nextS
		default:
			f.condSave[bi] = nextS
		}
		nextS += 2
	}

	// Layout: [ABI + mapped][spill staging][rotating temps].
	f.vSpillBase = nextV
	if f.spillBytes > 0 {
		nextV += spillStageRegs
	}
	f.numVGPRs = nextV
	f.numSGPRs = nextS
	f.vTempBase = nextV
	f.sTempBase = nextS
	if f.sTempBase%2 != 0 {
		f.sTempBase++
		f.numSGPRs++
	}
	return nil
}
