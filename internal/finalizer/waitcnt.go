package finalizer

import (
	"ilsim/internal/gcn3"
	"ilsim/internal/isa"
)

// insertWaitcnts adds the software dependency management GCN3 relies on
// instead of a hardware scoreboard (paper §III.B.2): an s_waitcnt before the
// first consumer of every outstanding memory result.
//
// Vector memory (vmcnt) completes in order, so a consumer of the k-th oldest
// outstanding operation waits with vmcnt(outstanding-1-k). Scalar memory and
// LDS (lgkmcnt) may complete out of order, so consumers wait with lgkmcnt(0),
// matching production compiler behavior. Counts are conservatively drained
// to zero at block boundaries, before barriers, and at kernel end.
func (f *finalizer) insertWaitcnts() {
	for bi, insts := range f.out {
		f.out[bi] = insertWaitcntsBlock(insts)
	}
}

type pendingOp struct {
	// writes are the register resources the operation will write on
	// completion (nil for stores).
	writes []int
}

func overlap(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func insertWaitcntsBlock(insts []gcn3.Inst) []gcn3.Inst {
	out := make([]gcn3.Inst, 0, len(insts)+4)
	var vmem []pendingOp // issue order; completes in order
	var lgkm []pendingOp // may complete out of order

	emitWait := func(vm, lg int8) {
		if n := len(out); n > 0 && out[n-1].Op == gcn3.OpSWaitcnt {
			w := &out[n-1]
			if vm >= 0 && (w.VMCnt < 0 || w.VMCnt > vm) {
				w.VMCnt = vm
			}
			if lg >= 0 && (w.LGKMCnt < 0 || w.LGKMCnt > lg) {
				w.LGKMCnt = lg
			}
			return
		}
		out = append(out, gcn3.Inst{Op: gcn3.OpSWaitcnt, VMCnt: vm, LGKMCnt: lg})
	}
	drainVM := func(upto int) {
		if len(vmem) > upto {
			emitWait(int8(upto), -1)
			vmem = vmem[len(vmem)-upto:]
		}
	}
	drainLGKM := func() {
		if len(lgkm) > 0 {
			emitWait(-1, 0)
			lgkm = nil
		}
	}

	for i := range insts {
		in := insts[i]
		reads, writes := regUse(&in)
		touches := func(p pendingOp) bool {
			return overlap(p.writes, reads) || overlap(p.writes, writes)
		}

		// Wait for any outstanding result this instruction depends on.
		need := -1
		for k := range vmem {
			if touches(vmem[k]) {
				need = k
			}
		}
		if need >= 0 {
			drainVM(len(vmem) - 1 - need)
		}
		for k := range lgkm {
			if touches(lgkm[k]) {
				drainLGKM()
				break
			}
		}

		// Full drains at synchronization and block-exit points.
		if in.Op == gcn3.OpSBarrier || in.Op == gcn3.OpSEndpgm ||
			isBranchOp(in.Op) || i == len(insts)-1 {
			drainVM(0)
			drainLGKM()
		}

		out = append(out, in)

		// Record newly outstanding operations.
		switch in.Op.Category() {
		case isa.CatVMem:
			var w []int
			if !in.Op.IsStore() {
				_, w = regUse(&in)
			}
			vmem = append(vmem, pendingOp{writes: w})
			if len(vmem) > 15 {
				drainVM(14)
			}
		case isa.CatSMem, isa.CatLDS:
			var w []int
			if !in.Op.IsStore() {
				_, w = regUse(&in)
			}
			lgkm = append(lgkm, pendingOp{writes: w})
			if len(lgkm) > 31 {
				drainLGKM()
			}
		}
	}
	return out
}
