// Package finalizer compiles HSAIL kernels to GCN3 machine code — the role
// amdhsafin plays in the paper's toolchain (Figure 4). It is where every
// IL-vs-ISA difference the paper studies is introduced mechanically:
//
//   - ABI expansion: work-item IDs and kernarg addresses become real
//     instruction sequences reading registers and dispatch memory (Tables 1
//     and 2).
//   - Scalarization: uniform values move to the scalar register file and
//     scalar pipeline (§III.B.1).
//   - Control-flow linearization: structured branches become EXEC-mask
//     manipulation with bypass branches only for fully-inactive regions
//     (Figure 3c).
//   - Instruction-set lowering: floating-point division expands into the
//     Newton-Raphson sequence (Table 3); integer division expands into a
//     reciprocal-based sequence; 64-bit address arithmetic becomes explicit
//     add/addc chains (GCN3 FLAT has no immediate offset).
//   - Software dependency management: a list scheduler separates dependent
//     ALU pairs (inserting s_nop when nothing independent exists) and a
//     waitcnt pass inserts s_waitcnt before first uses of loaded values
//     (§III.B.2).
package finalizer

import (
	"fmt"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// Options tune finalization.
type Options struct {
	// MaxVGPRs caps the vector registers available to this kernel
	// (default isa.MaxVGPRs). Demands beyond the cap are an error.
	MaxVGPRs int
	// MaxSGPRs caps scalar registers (default isa.MaxSGPRs).
	MaxSGPRs int
	// UseFlatKernarg lowers kernarg loads through vector moves and a flat
	// load (the paper's Table 2 sequence) instead of a scalar load.
	UseFlatKernarg bool
	// DisableScheduling skips the list scheduler (ablation: dependent
	// instructions stay adjacent and cost s_nop padding instead).
	DisableScheduling bool
	// DisableScalarization homes every value in the VRF (ablation).
	DisableScalarization bool
}

func (o Options) withDefaults() Options {
	if o.MaxVGPRs <= 0 {
		o.MaxVGPRs = isa.MaxVGPRs
	}
	if o.MaxSGPRs <= 0 {
		o.MaxSGPRs = isa.MaxSGPRs
	}
	return o
}

// Finalize compiles k into a GCN3 code object.
func Finalize(k *hsail.Kernel, opts Options) (*gcn3.CodeObject, error) {
	cfg, err := kernel.AnalyzeCFG(k)
	if err != nil {
		return nil, fmt.Errorf("finalizer: %w", err)
	}
	return FinalizeWithCFG(k, cfg, opts)
}

// FinalizeWithCFG compiles k using a pre-computed CFG analysis.
func FinalizeWithCFG(k *hsail.Kernel, cfg *kernel.CFG, opts Options) (*gcn3.CodeObject, error) {
	opts = opts.withDefaults()
	if !cfg.Reducible {
		return nil, fmt.Errorf("finalizer: kernel %q has irreducible control flow", k.Name)
	}
	f := &finalizer{k: k, cfg: cfg, opts: opts}
	if err := f.run(); err != nil {
		return nil, fmt.Errorf("finalizer: kernel %q: %w", k.Name, err)
	}
	return f.object(), nil
}

// valueHome says where an HSAIL register slot lives after finalization.
type valueHome uint8

const (
	homeVector valueHome = iota // VGPR
	homeScalar                  // SGPR
	homeSpill                   // scratch memory (register-pressure overflow)
)

// slotInfo is the allocation record for one HSAIL 32-bit register slot.
type slotInfo struct {
	home valueHome
	// pairStart marks the first slot of a 64-bit value.
	pairStart bool
	// pairSecond marks the second slot of a 64-bit value.
	pairSecond bool
	// reg is the assigned VGPR or SGPR index.
	reg int
	// spillOff is the slot's scratch offset when home == homeSpill.
	spillOff int
	// used marks slots referenced by any instruction.
	used bool
}

// cregInfo is the allocation record for one HSAIL control register.
type cregInfo struct {
	// fused marks conditions computed by cmp whose only consumer is the
	// block-ending cbr AND whose operands are scalar-homed: these lower to
	// s_cmp + s_cbranch_scc with no stored mask.
	fused bool
	// sreg is the SGPR pair holding the lane mask (when not fused).
	sreg int
}

type finalizer struct {
	k    *hsail.Kernel
	cfg  *kernel.CFG
	opts Options

	uniform      []bool // per slot: value is wavefront-uniform and scalar-homed
	blockUniform []bool // per block: control reaching it is uniform
	cregUniform  []bool

	slots []slotInfo
	cregs []cregInfo

	numVGPRs int
	numSGPRs int

	// Temp registers for lowering sequences, reserved above the mapped set.
	vTempBase int
	sTempBase int
	vTempMax  int
	sTempMax  int

	// Spilling state: staging registers, per-instruction overlay, and
	// scratch bytes consumed by spilled slots.
	vSpillBase   int
	spillOverlay map[int]int
	spillBytes   int

	// Loop save registers, keyed by latch block.
	loopSave map[int]int
	// If/else save registers, keyed by branch block.
	condSave map[int]int
	// dropBr marks blocks whose unconditional terminator is replaced by
	// fall-through into an else flip prefix.
	dropBr map[int]bool

	// Cached ABI-derived values.
	idDims     int  // work-item ID VGPRs the ABI must initialize (1-3)
	useAbsID   bool // kernel needs the flat absolute work-item ID
	vAbsID     int  // VGPR holding it
	usePrivate bool // kernel accesses private/spill segments
	vPrivBase  int  // VGPR pair: per-lane scratch base address

	// Output: per HSAIL block, the lowered instruction list.
	out [][]gcn3.Inst

	// spillOffset is where the HSAIL spill segment starts within the
	// finalized per-work-item scratch allocation.
	spillOffset int
}

func (f *finalizer) run() error {
	f.analyzeUniformity()
	if err := f.allocate(); err != nil {
		return err
	}
	if err := f.lowerAll(); err != nil {
		return err
	}
	if !f.opts.DisableScheduling {
		f.scheduleAll()
	}
	f.insertWaitcnts()
	f.insertNops()
	return f.checkLimits()
}

func (f *finalizer) checkLimits() error {
	if f.numVGPRs+f.vTempMax > f.opts.MaxVGPRs {
		return fmt.Errorf("VGPR demand %d exceeds budget %d even after spilling",
			f.numVGPRs+f.vTempMax, f.opts.MaxVGPRs)
	}
	if f.numSGPRs+f.sTempMax > f.opts.MaxSGPRs {
		return fmt.Errorf("SGPR demand %d exceeds budget %d", f.numSGPRs+f.sTempMax, f.opts.MaxSGPRs)
	}
	return nil
}

// object assembles the final code object: block lists are concatenated,
// block-id branch targets resolved to instruction indexes, and the program
// laid out at its true encoded sizes.
func (f *finalizer) object() *gcn3.CodeObject {
	var prog gcn3.Program
	blockStart := make([]int, len(f.out)+1)
	for bi, insts := range f.out {
		blockStart[bi] = len(prog.Insts)
		prog.Insts = append(prog.Insts, insts...)
	}
	blockStart[len(f.out)] = len(prog.Insts)
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if isBranchOp(in.Op) && in.Target < 0 {
			in.Target = int32(blockStart[-in.Target-1])
		}
	}
	prog.Layout()
	return &gcn3.CodeObject{
		Name:           f.k.Name,
		NumVGPRs:       f.numVGPRs + f.vTempMax,
		NumSGPRs:       f.numSGPRs + f.sTempMax,
		KernargSize:    f.k.KernargSize,
		GroupSize:      f.k.GroupSize,
		PrivateSize:    f.k.PrivateSize + f.k.SpillSize + f.spillBytes,
		WorkItemIDDims: f.idDims,
		Program:        &prog,
	}
}

func isBranchOp(op gcn3.Op) bool {
	switch op {
	case gcn3.OpSBranch, gcn3.OpSCbranchSCC0, gcn3.OpSCbranchSCC1,
		gcn3.OpSCbranchVCCZ, gcn3.OpSCbranchVCCNZ,
		gcn3.OpSCbranchExecZ, gcn3.OpSCbranchExecNZ:
		return true
	}
	return false
}

// blockTarget encodes a block-id branch target as a negative placeholder,
// resolved by object().
func blockTarget(block int) int32 { return int32(-(block + 1)) }
