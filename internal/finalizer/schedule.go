package finalizer

import (
	"ilsim/internal/gcn3"
	"ilsim/internal/isa"
)

// Resource numbering for dependence analysis: VGPRs, then SGPRs, then the
// special registers and a single memory token.
const (
	resSGPRBase = 1000
	resVCC      = 2000
	resEXEC     = 2001
	resSCC      = 2002
	resMEM      = 2003
)

// regUse extracts the resources an instruction reads and writes.
func regUse(in *gcn3.Inst) (reads, writes []int) {
	addOper := func(list *[]int, o gcn3.Operand, width int) {
		switch o.Kind {
		case gcn3.OperVGPR:
			for i := 0; i < width; i++ {
				*list = append(*list, int(o.Index)+i)
			}
		case gcn3.OperSGPR:
			for i := 0; i < width; i++ {
				*list = append(*list, resSGPRBase+int(o.Index)+i)
			}
		case gcn3.OperVCC:
			*list = append(*list, resVCC)
		case gcn3.OperEXEC:
			*list = append(*list, resEXEC)
		case gcn3.OperSCC:
			*list = append(*list, resSCC)
		}
	}
	for i := 0; i < in.Op.NSrc(); i++ {
		addOper(&reads, in.Srcs[i], in.SrcRegs(i))
	}
	addOper(&writes, in.Dst, in.DstRegs())
	addOper(&writes, in.SDst, 2)

	cat := in.Op.Category()
	switch {
	case cat == isa.CatVALU || cat == isa.CatVMem || cat == isa.CatLDS:
		// Vector operations execute under the mask.
		reads = append(reads, resEXEC)
	}
	switch in.Op {
	case gcn3.OpVAddc:
		reads = append(reads, resVCC)
	case gcn3.OpVDivFmas:
		reads = append(reads, resVCC)
	case gcn3.OpSAddc, gcn3.OpSCbranchSCC0, gcn3.OpSCbranchSCC1:
		reads = append(reads, resSCC)
	case gcn3.OpSCbranchVCCZ, gcn3.OpSCbranchVCCNZ:
		reads = append(reads, resVCC)
	case gcn3.OpSCbranchExecZ, gcn3.OpSCbranchExecNZ:
		reads = append(reads, resEXEC)
	case gcn3.OpSCmp:
		writes = append(writes, resSCC)
	case gcn3.OpSAndSaveexec, gcn3.OpSOrSaveexec:
		reads = append(reads, resEXEC)
		writes = append(writes, resEXEC, resSCC)
	}
	// Scalar ALU ops set SCC in this ISA model.
	if cat == isa.CatSALU && in.Op != gcn3.OpSMov {
		writes = append(writes, resSCC)
	}
	// Memory ordering: loads read the memory token, stores/atomics write it.
	switch cat {
	case isa.CatVMem, isa.CatSMem, isa.CatLDS:
		if in.Op.IsStore() || in.Op == gcn3.OpFlatAtomicAdd {
			writes = append(writes, resMEM)
		} else {
			reads = append(reads, resMEM)
		}
	}
	return reads, writes
}

// isSchedBarrier reports instructions that must not move.
func isSchedBarrier(op gcn3.Op) bool {
	return op == gcn3.OpSBarrier || op == gcn3.OpSWaitcnt || isBranchOp(op) || op == gcn3.OpSEndpgm
}

// scheduleAll list-schedules every block: dependence-legal reordering that
// prefers NOT issuing an instruction directly dependent on its predecessor,
// the finalizer behavior the paper credits for GCN3's lower VRF contention
// and longer register reuse distance (§V.B).
func (f *finalizer) scheduleAll() {
	for bi := range f.out {
		f.out[bi] = scheduleBlock(f.out[bi])
	}
}

func scheduleBlock(insts []gcn3.Inst) []gcn3.Inst {
	n := len(insts)
	if n < 3 {
		return insts
	}
	// Build the dependence graph.
	succs := make([][]int, n)
	npreds := make([]int, n)
	lastWriter := map[int]int{}
	readersSince := map[int][]int{}
	var barrier = -1 // last scheduling-barrier instruction
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		succs[from] = append(succs[from], to)
		npreds[to]++
	}
	for i := 0; i < n; i++ {
		in := &insts[i]
		reads, writes := regUse(in)
		if barrier >= 0 {
			addEdge(barrier, i)
		}
		if isSchedBarrier(in.Op) {
			// Order against everything before it.
			for j := 0; j < i; j++ {
				addEdge(j, i)
			}
			barrier = i
		}
		for _, r := range reads {
			if w, ok := lastWriter[r]; ok {
				addEdge(w, i) // RAW
			}
			readersSince[r] = append(readersSince[r], i)
		}
		for _, r := range writes {
			if w, ok := lastWriter[r]; ok {
				addEdge(w, i) // WAW
			}
			for _, rd := range readersSince[r] {
				addEdge(rd, i) // WAR
			}
			lastWriter[r] = i
			readersSince[r] = nil
		}
	}
	// Deduplicate edge counts.
	for i := range succs {
		seen := map[int]bool{}
		var uniq []int
		for _, s := range succs[i] {
			if !seen[s] {
				seen[s] = true
				uniq = append(uniq, s)
			} else {
				npreds[s]--
			}
		}
		succs[i] = uniq
	}

	// Greedy list scheduling: among ready instructions, prefer the lowest
	// original index that does NOT depend on the just-issued instruction.
	ready := make([]bool, n)
	done := make([]bool, n)
	for i := 0; i < n; i++ {
		ready[i] = npreds[i] == 0
	}
	dependsOnPrev := func(prev, i int) bool {
		if prev < 0 {
			return false
		}
		for _, s := range succs[prev] {
			if s == i {
				return true
			}
		}
		return false
	}
	out := make([]gcn3.Inst, 0, n)
	prev := -1
	for len(out) < n {
		pick := -1
		fallback := -1
		for i := 0; i < n; i++ {
			if !ready[i] || done[i] {
				continue
			}
			if fallback < 0 {
				fallback = i
			}
			if !dependsOnPrev(prev, i) {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = fallback
		}
		done[pick] = true
		out = append(out, insts[pick])
		for _, s := range succs[pick] {
			npreds[s]--
			if npreds[s] == 0 {
				ready[s] = true
			}
		}
		prev = pick
	}
	return out
}

// valuWrites returns the vector registers (and VCC) written by a VALU op.
func valuWrites(in *gcn3.Inst) []int {
	if in.Op.Category() != isa.CatVALU {
		return nil
	}
	_, writes := regUse(in)
	return writes
}

// insertNops pads the remaining adjacent VALU register dependences with
// s_nop — "for deterministic latencies, the finalizer will insert
// independent or NOP instructions between dependent instructions" (§III.B.2).
// The shared timing model gives VALU results a one-issue-slot shadow; GCN3
// code must therefore never issue a dependent VALU back-to-back.
func (f *finalizer) insertNops() {
	for bi, insts := range f.out {
		var out []gcn3.Inst
		for i := 0; i < len(insts); i++ {
			if i > 0 && needsGap(&insts[i-1], &insts[i]) {
				out = append(out, gcn3.Inst{Op: gcn3.OpSNop, VMCnt: -1, LGKMCnt: -1})
			}
			out = append(out, insts[i])
		}
		f.out[bi] = out
	}
}

// needsGap reports a VALU→VALU register dependence between adjacent
// instructions.
func needsGap(prev, cur *gcn3.Inst) bool {
	if prev.Op.Category() != isa.CatVALU || cur.Op.Category() != isa.CatVALU {
		return false
	}
	writes := valuWrites(prev)
	reads, curWrites := regUse(cur)
	for _, w := range writes {
		if w == resEXEC {
			continue
		}
		for _, r := range reads {
			if r == w {
				return true
			}
		}
		for _, r := range curWrites {
			if r == w {
				return true
			}
		}
	}
	return false
}
