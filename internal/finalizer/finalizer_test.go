package finalizer

import (
	"fmt"
	"strings"
	"testing"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// buildVecAdd is the canonical test kernel.
func buildVecAdd(t *testing.T) *hsail.Kernel {
	t.Helper()
	b := kernel.NewBuilder("vec_add")
	aArg := b.ArgPtr("a")
	oArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	av := b.Load(hsail.SegGlobal, isa.TypeU32, b.Add(isa.TypeU64, b.LoadArg(aArg), off), 0)
	sum := b.Add(isa.TypeU32, av, b.Int(isa.TypeU32, 5))
	b.Store(hsail.SegGlobal, sum, b.Add(isa.TypeU64, b.LoadArg(oArg), off), 0)
	b.Ret()
	return b.MustFinish()
}

// buildUniformLoop has a latch whose condition is wavefront-uniform.
func buildUniformLoop(t *testing.T) *hsail.Kernel {
	t.Helper()
	b := kernel.NewBuilder("uniform_loop")
	nArg := b.ArgU32("n")
	outArg := b.ArgPtr("out")
	n := b.LoadArg(nArg)
	gid := b.WorkItemAbsID(isa.DimX)
	acc := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	i := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.WhileCmp(isa.CmpLt, isa.TypeU32, i, n, func() {
		b.BinaryTo(hsail.OpAdd, acc, acc, gid)
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(isa.TypeU32, 1))
	})
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, acc, addr, 0)
	b.Ret()
	return b.MustFinish()
}

// buildDivergentIf has a lane-dependent branch.
func buildDivergentIf(t *testing.T) *hsail.Kernel {
	t.Helper()
	b := kernel.NewBuilder("divergent_if")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	res := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 1))
	b.IfCmp(isa.CmpLt, isa.TypeU32, gid, b.Int(isa.TypeU32, 7), func() {
		b.MovTo(res, b.Int(isa.TypeU32, 2))
	}, nil)
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, res, addr, 0)
	b.Ret()
	return b.MustFinish()
}

func finalize(t *testing.T, k *hsail.Kernel, opts Options) *gcn3.CodeObject {
	t.Helper()
	co, err := Finalize(k, opts)
	if err != nil {
		t.Fatalf("finalize %s: %v", k.Name, err)
	}
	return co
}

func disasm(co *gcn3.CodeObject) string { return co.Program.Disassemble() }

// checkWaitcnts statically verifies software dependency management: no
// instruction may touch the destination registers of an outstanding memory
// operation, and counts must be drained at branches, barriers, and program
// end. Outstanding sets reset at branch targets, which the conservative
// insertion policy guarantees are drained.
func checkWaitcnts(t *testing.T, co *gcn3.CodeObject) {
	t.Helper()
	type pend struct{ writes []int }
	var vmem, lgkm []pend
	for i := range co.Program.Insts {
		in := &co.Program.Insts[i]
		if in.Op == gcn3.OpSWaitcnt {
			if in.VMCnt >= 0 && int(in.VMCnt) < len(vmem) {
				vmem = vmem[len(vmem)-int(in.VMCnt):]
			}
			if in.LGKMCnt >= 0 && int(in.LGKMCnt) < len(lgkm) {
				lgkm = lgkm[len(lgkm)-int(in.LGKMCnt):]
			}
			continue
		}
		reads, writes := regUse(in)
		touched := func(p pend) bool {
			return overlap(p.writes, reads) || overlap(p.writes, writes)
		}
		for _, p := range vmem {
			if touched(p) {
				t.Fatalf("inst %d (%s) touches an outstanding vmem destination", i, in.String())
			}
		}
		for _, p := range lgkm {
			if touched(p) {
				t.Fatalf("inst %d (%s) touches an outstanding lgkm destination", i, in.String())
			}
		}
		if isBranchOp(in.Op) || in.Op == gcn3.OpSEndpgm || in.Op == gcn3.OpSBarrier {
			if len(vmem)+len(lgkm) > 0 {
				t.Fatalf("inst %d (%s) reached with %d/%d outstanding memory ops",
					i, in.String(), len(vmem), len(lgkm))
			}
		}
		switch in.Op.Category() {
		case isa.CatVMem:
			var w []int
			if !in.Op.IsStore() {
				_, w = regUse(in)
			}
			vmem = append(vmem, pend{w})
		case isa.CatSMem, isa.CatLDS:
			var w []int
			if !in.Op.IsStore() {
				_, w = regUse(in)
			}
			lgkm = append(lgkm, pend{w})
		}
	}
	if len(vmem)+len(lgkm) > 0 {
		t.Fatal("program ends with outstanding memory operations")
	}
}

// checkNoAdjacentDependentVALU verifies the s_nop / scheduling guarantee.
func checkNoAdjacentDependentVALU(t *testing.T, co *gcn3.CodeObject) {
	t.Helper()
	insts := co.Program.Insts
	for i := 1; i < len(insts); i++ {
		if needsGap(&insts[i-1], &insts[i]) {
			t.Fatalf("adjacent dependent VALU pair at %d:\n  %s\n  %s",
				i, insts[i-1].String(), insts[i].String())
		}
	}
}

func TestFinalizedKernelsSatisfyInvariants(t *testing.T) {
	kernels := []*hsail.Kernel{buildVecAdd(t), buildUniformLoop(t), buildDivergentIf(t)}
	for _, k := range kernels {
		for _, opts := range []Options{{}, {DisableScheduling: true}, {DisableScalarization: true}} {
			co := finalize(t, k, opts)
			checkWaitcnts(t, co)
			checkNoAdjacentDependentVALU(t, co)
			if co.NumVGPRs > isa.MaxVGPRs || co.NumSGPRs > isa.MaxSGPRs {
				t.Fatalf("%s: register demand %d/%d exceeds limits", k.Name, co.NumVGPRs, co.NumSGPRs)
			}
		}
	}
}

func TestTable1SequenceEmitted(t *testing.T) {
	co := finalize(t, buildVecAdd(t), Options{})
	asm := disasm(co)
	for _, frag := range []string{
		"s_load_dword s", // workgroup size from the dispatch packet
		"0x100000",       // the Table 1 s_bfe operand
		"s_mul_s32",      // size * workgroup ID
		"s_waitcnt",      // dependency management
		"v_add_u32",      // + v0
		"flat_load_dword",
		"flat_store_dword",
		"s_endpgm",
	} {
		if !strings.Contains(asm, frag) {
			t.Errorf("missing %q in:\n%s", frag, asm)
		}
	}
}

func TestUniformLoopUsesScalarBranch(t *testing.T) {
	co := finalize(t, buildUniformLoop(t), Options{})
	asm := disasm(co)
	if !strings.Contains(asm, "s_cmp_lt_u32") {
		t.Errorf("uniform latch did not fuse to s_cmp:\n%s", asm)
	}
	if !strings.Contains(asm, "s_cbranch_scc1") {
		t.Errorf("uniform latch did not use s_cbranch_scc1:\n%s", asm)
	}
	if strings.Contains(asm, "saveexec") || strings.Contains(asm, "s_andn2") {
		t.Errorf("uniform loop should not manipulate EXEC:\n%s", asm)
	}
}

func TestDivergentIfUsesExecMask(t *testing.T) {
	co := finalize(t, buildDivergentIf(t), Options{})
	asm := disasm(co)
	for _, frag := range []string{"v_cmp_ge_u32", "s_andn2_b64 exec", "s_cbranch_execz", "s_mov_b64 exec"} {
		if !strings.Contains(asm, frag) {
			t.Errorf("missing %q in divergent-if lowering:\n%s", frag, asm)
		}
	}
}

func TestScalarizationMovesUniformWork(t *testing.T) {
	co := finalize(t, buildUniformLoop(t), Options{})
	scalar, vector := 0, 0
	for i := range co.Program.Insts {
		switch co.Program.Insts[i].Op.Category() {
		case isa.CatSALU, isa.CatSMem:
			scalar++
		case isa.CatVALU:
			vector++
		}
	}
	if scalar == 0 {
		t.Fatal("no scalar instructions emitted for a kernel full of uniform work")
	}
	// The ablation moves that work to the vector pipeline: scalar memory
	// (kernarg s_loads) drops to the ABI-prologue minimum and vector-ALU
	// count rises.
	co2 := finalize(t, buildUniformLoop(t), Options{DisableScalarization: true})
	smem, smem2, vector2 := 0, 0, 0
	for i := range co.Program.Insts {
		if co.Program.Insts[i].Op.Category() == isa.CatSMem {
			smem++
		}
	}
	for i := range co2.Program.Insts {
		switch co2.Program.Insts[i].Op.Category() {
		case isa.CatSMem:
			smem2++
		case isa.CatVALU:
			vector2++
		}
	}
	if smem2 >= smem {
		t.Fatalf("DisableScalarization did not reduce scalar memory: %d -> %d", smem, smem2)
	}
	if vector2 <= vector {
		t.Fatalf("DisableScalarization did not increase vector work: %d -> %d", vector, vector2)
	}
}

func TestFloatDivExpansion(t *testing.T) {
	b := kernel.NewBuilder("fdiv")
	aArg := b.ArgPtr("a")
	gid := b.WorkItemAbsID(isa.DimX)
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 3))
	addr := b.Add(isa.TypeU64, b.LoadArg(aArg), off)
	x := b.Load(hsail.SegGlobal, isa.TypeF64, addr, 0)
	y := b.Load(hsail.SegGlobal, isa.TypeF64, addr, 8)
	q := b.Div(isa.TypeF64, x, y)
	b.Store(hsail.SegGlobal, q, addr, 16)
	b.Ret()
	co := finalize(t, b.MustFinish(), Options{})
	asm := disasm(co)
	for _, frag := range []string{"v_div_scale_f64", "v_rcp_f64", "v_fma_f64", "v_div_fmas_f64", "v_div_fixup_f64"} {
		if !strings.Contains(asm, frag) {
			t.Errorf("Table 3 sequence missing %q:\n%s", frag, asm)
		}
	}
	// The single IL div must expand into at least 11 machine instructions.
	hsailCount := 0
	for _, blk := range b.MustFinish().Blocks {
		hsailCount += len(blk.Insts)
	}
	if len(co.Program.Insts) < hsailCount+10 {
		t.Errorf("divide expansion too small: %d HSAIL -> %d GCN3", hsailCount, len(co.Program.Insts))
	}
}

func TestIrreducibleControlFlowRejected(t *testing.T) {
	// Hand-build a CFG with a branch into the middle of a loop.
	k := &hsail.Kernel{Name: "irreducible", NumRegSlots: 4, NumCRegs: 2}
	k.Blocks = []*hsail.Block{
		{ID: 0, Insts: []hsail.Inst{
			{Op: hsail.OpCmp, SrcType: isa.TypeU32, Cmp: isa.CmpLt, Dst: hsail.CReg(0),
				Srcs: [3]hsail.Operand{hsail.Reg(0), hsail.Reg(1)}, NSrc: 2},
			{Op: hsail.OpCBr, Srcs: [3]hsail.Operand{hsail.CReg(0)}, NSrc: 1, Target: 2},
		}},
		{ID: 1, Insts: []hsail.Inst{{Op: hsail.OpNop}}},
		{ID: 2, Insts: []hsail.Inst{
			{Op: hsail.OpCmp, SrcType: isa.TypeU32, Cmp: isa.CmpLt, Dst: hsail.CReg(1),
				Srcs: [3]hsail.Operand{hsail.Reg(2), hsail.Reg(3)}, NSrc: 2},
			{Op: hsail.OpCBr, Srcs: [3]hsail.Operand{hsail.CReg(1)}, NSrc: 1, Target: 1},
		}},
		{ID: 3, Insts: []hsail.Inst{{Op: hsail.OpRet}}},
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("construction: %v", err)
	}
	if _, err := Finalize(k, Options{}); err == nil {
		t.Fatal("irreducible CFG accepted by the finalizer")
	}
}

func TestSchedulerPreservesDependences(t *testing.T) {
	// A block with a long dependent chain plus independent work: after
	// scheduling, every RAW/WAR/WAW pair must stay ordered.
	co := finalize(t, buildVecAdd(t), Options{})
	insts := co.Program.Insts
	lastWriter := map[int]int{}
	lastReaders := map[int][]int{}
	for i := range insts {
		reads, writes := regUse(&insts[i])
		for _, r := range reads {
			if w, ok := lastWriter[r]; ok && w > i {
				t.Fatalf("RAW violated: inst %d reads r%d written later at %d", i, r, w)
			}
			lastReaders[r] = append(lastReaders[r], i)
		}
		for _, r := range writes {
			lastWriter[r] = i
		}
	}
	_ = lastReaders // order is linear scan; RAW check above suffices here
	_ = fmt.Sprint
}

func TestRegisterBudgetEnforced(t *testing.T) {
	// A kernel with enormous live-range pressure must be rejected when the
	// VGPR budget is tiny.
	b := kernel.NewBuilder("pressure")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	vals := []kernel.Val{gid}
	for i := 0; i < 40; i++ {
		vals = append(vals, b.Add(isa.TypeU32, vals[len(vals)-1], b.Int(isa.TypeU32, int64(i))))
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = b.Xor(isa.TypeU32, acc, v)
	}
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, acc, addr, 0)
	b.Ret()
	k, err := b.FinishRaw() // raw: keep all 40 values live
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Finalize(k, Options{MaxVGPRs: 8}); err == nil {
		t.Fatal("tiny VGPR budget accepted a high-pressure kernel")
	}
	if _, err := Finalize(k, Options{}); err != nil {
		t.Fatalf("default budget rejected: %v", err)
	}
}

func TestBlockTargetsResolved(t *testing.T) {
	co := finalize(t, buildUniformLoop(t), Options{})
	for i := range co.Program.Insts {
		in := &co.Program.Insts[i]
		if isBranchOp(in.Op) && (in.Target < 0 || int(in.Target) >= len(co.Program.Insts)) {
			t.Fatalf("unresolved branch target %d at inst %d", in.Target, i)
		}
	}
}
