package gcn3

// The GCN3 ABI register conventions modeled by this project (paper §III.A).
//
// Before a wavefront launches, the command processor initializes scalar and
// vector registers according to the ABI; the finalized code KNOWS these
// semantics and reads dispatch state from registers rather than from
// simulator-internal tables. This is precisely the machinery HSAIL lacks:
// under the IL, work-item IDs and kernarg addresses appear by fiat.
//
// Layout (a simplified but faithful subset of the amdhsa convention):
//
//	s[0:1]  private (scratch) segment base address for this dispatch
//	s2      private segment size per work-item (stride), bytes
//	s[4:5]  address of the AQL dispatch packet in memory
//	s[6:7]  kernarg segment base address
//	s8      workgroup ID X
//	s9      workgroup ID Y
//	s10     workgroup ID Z
//	v0      work-item flat ID within the workgroup
//
// SGPR allocation starts at FirstAllocSGPR and VGPR allocation at
// FirstAllocVGPR so ABI-initialized registers stay live.
const (
	// SGPRPrivateBase is the first SGPR of the private-segment base pair.
	SGPRPrivateBase = 0
	// SGPRPrivateStride holds the per-work-item private segment size.
	SGPRPrivateStride = 2
	// SGPRDispatchPtr is the first SGPR of the dispatch-packet address pair.
	SGPRDispatchPtr = 4
	// SGPRKernargPtr is the first SGPR of the kernarg base address pair.
	SGPRKernargPtr = 6
	// SGPRWorkGroupIDX holds the workgroup ID in X.
	SGPRWorkGroupIDX = 8
	// SGPRWorkGroupIDY holds the workgroup ID in Y.
	SGPRWorkGroupIDY = 9
	// SGPRWorkGroupIDZ holds the workgroup ID in Z.
	SGPRWorkGroupIDZ = 10
	// FirstAllocSGPR is the first SGPR available to the register allocator.
	FirstAllocSGPR = 12
	// VGPRWorkItemID holds each lane's work-item ID X within its
	// workgroup (for 1-D workgroups this equals the flat ID).
	VGPRWorkItemID = 0
	// VGPRWorkItemIDY / VGPRWorkItemIDZ hold the Y and Z work-item IDs
	// when the code object requests them (WorkItemIDDims >= 2 / 3).
	VGPRWorkItemIDY = 1
	VGPRWorkItemIDZ = 2
	// FirstAllocVGPR is the first VGPR available to the register
	// allocator for a 1-D kernel; multi-dimensional kernels start at
	// WorkItemIDDims.
	FirstAllocVGPR = 1
)

// AQL dispatch packet field offsets (bytes). The command processor writes
// the packet into simulated memory and the finalized prologue reads geometry
// from it with scalar loads, as in the paper's Table 1 sequence.
const (
	// PktWorkgroupSizeX is the offset of the packed 16-bit workgroup sizes
	// (X at [15:0], Y at [31:16], read as one dword at offset 4).
	PktWorkgroupSizeX = 4
	// PktWorkgroupSizeZ is the offset of the 16-bit Z workgroup size.
	PktWorkgroupSizeZ = 8
	// PktGridSizeX is the offset of the 32-bit grid size in X.
	PktGridSizeX = 12
	// PktGridSizeY is the offset of the 32-bit grid size in Y.
	PktGridSizeY = 16
	// PktGridSizeZ is the offset of the 32-bit grid size in Z.
	PktGridSizeZ = 20
)
