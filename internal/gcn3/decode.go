package gcn3

import (
	"encoding/binary"
	"fmt"
	"io"

	"ilsim/internal/isa"
)

// formatOf recognizes the encoding format from the first word's prefix bits.
func formatOf(w0 uint32) Format {
	switch {
	case w0>>31 == 0b0:
		switch w0 >> 25 {
		case 0x3F:
			return FmtVOP1
		case 0x3E:
			return FmtVOPC
		default:
			return FmtVOP2
		}
	case w0>>30 == 0b10:
		switch w0 >> 23 {
		case 0b101111101:
			return FmtSOP1
		case 0b101111110:
			return FmtSOPC
		case 0b101111111:
			return FmtSOPP
		default:
			return FmtSOP2
		}
	default:
		switch w0 >> 26 {
		case 0b110000:
			return FmtSMEM
		case 0b110100:
			return FmtVOP3
		case 0b110110:
			return FmtDS
		case 0b110111:
			return FmtFLAT
		}
	}
	return Format(0xFF)
}

// DecodeInst decodes one instruction from the front of data, returning the
// instruction and its encoded size. SOPP branch targets are left as word
// offsets in SImm; DecodeProgram resolves them to instruction indexes.
func DecodeInst(data []byte) (*Inst, int, error) {
	if len(data) < 4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	w0 := binary.LittleEndian.Uint32(data)
	f := formatOf(w0)
	if f == Format(0xFF) {
		return nil, 0, fmt.Errorf("gcn3: unrecognized encoding %#08x", w0)
	}
	size := f.BaseBytes()
	if len(data) < size {
		return nil, 0, io.ErrUnexpectedEOF
	}
	var w1 uint32
	if size == 8 {
		w1 = binary.LittleEndian.Uint32(data[4:])
	}
	litOff := size
	nextLit := func() (uint32, error) {
		if len(data) < litOff+4 {
			return 0, io.ErrUnexpectedEOF
		}
		v := binary.LittleEndian.Uint32(data[litOff:])
		litOff += 4
		return v, nil
	}

	in := &Inst{VMCnt: -1, LGKMCnt: -1}
	var code uint16
	var err error
	fill := func(k comboKey) {
		in.Op = k.op &^ 0x80
		in.Type = k.typ
		in.SrcType = k.srcType
		in.Cmp = k.cmp
	}
	combo := func(f Format, code uint16) (comboKey, error) {
		if int(code) >= len(codeToCombo[f]) {
			return comboKey{}, fmt.Errorf("gcn3: bad %s opcode %d", f, code)
		}
		return codeToCombo[f][code], nil
	}

	switch f {
	case FmtVOP2:
		code = uint16(w0 >> 25 & 0x3F)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Dst = Operand{Kind: OperVGPR, Index: uint16(w0 >> 17 & 0xFF)}
		in.Srcs[1] = Operand{Kind: OperVGPR, Index: uint16(w0 >> 9 & 0xFF)}
		in.Srcs[0], err = decodeSrc(uint16(w0&0x1FF), nextLit)
		if err != nil {
			return nil, 0, err
		}
		if (in.Op == OpVAdd || in.Op == OpVSub || in.Op == OpVAddc) && in.Type == isa.TypeU32 {
			in.SDst = Operand{Kind: OperVCC}
		}
		if in.Op == OpVCndmask {
			in.Srcs[2] = Operand{Kind: OperVCC}
		}
	case FmtVOP1:
		code = uint16(w0 >> 9 & 0xFF)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Dst = Operand{Kind: OperVGPR, Index: uint16(w0 >> 17 & 0xFF)}
		in.Srcs[0], err = decodeSrc(uint16(w0&0x1FF), nextLit)
		if err != nil {
			return nil, 0, err
		}
	case FmtVOPC:
		code = uint16(w0 >> 17 & 0xFF)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Dst = Operand{Kind: OperVCC}
		in.Srcs[1] = Operand{Kind: OperVGPR, Index: uint16(w0 >> 9 & 0xFF)}
		in.Srcs[0], err = decodeSrc(uint16(w0&0x1FF), nextLit)
		if err != nil {
			return nil, 0, err
		}
	case FmtSOP2:
		code = uint16(w0 >> 23 & 0x7F)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Dst, err = decodeSDst(uint16(w0 >> 16 & 0x7F))
		if err != nil {
			return nil, 0, err
		}
		if in.Srcs[1], err = decodeSrc(uint16(w0>>8&0xFF), nextLit); err != nil {
			return nil, 0, err
		}
		if in.Srcs[0], err = decodeSrc(uint16(w0&0xFF), nextLit); err != nil {
			return nil, 0, err
		}
	case FmtSOP1:
		code = uint16(w0 >> 8 & 0xFF)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Dst, err = decodeSDst(uint16(w0 >> 16 & 0x7F))
		if err != nil {
			return nil, 0, err
		}
		if in.Srcs[0], err = decodeSrc(uint16(w0&0xFF), nextLit); err != nil {
			return nil, 0, err
		}
	case FmtSOPC:
		code = uint16(w0 >> 16 & 0x7F)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		if in.Srcs[1], err = decodeSrc(uint16(w0>>8&0xFF), nextLit); err != nil {
			return nil, 0, err
		}
		if in.Srcs[0], err = decodeSrc(uint16(w0&0xFF), nextLit); err != nil {
			return nil, 0, err
		}
	case FmtSOPP:
		code = uint16(w0 >> 16 & 0x7F)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.SImm = uint16(w0 & 0xFFFF)
		if in.Op == OpSWaitcnt {
			in.VMCnt, in.LGKMCnt = waitcntFields(in.SImm)
			in.SImm = 0
		}
	case FmtSMEM:
		code = uint16(w0 >> 18 & 0xFF)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Dst, err = decodeSDst(uint16(w0 >> 11 & 0x7F))
		if err != nil {
			return nil, 0, err
		}
		in.Srcs[0] = Operand{Kind: OperSGPR, Index: uint16(w0 >> 4 & 0x7F)}
		in.Offset = int32(w1 & 0xFFFFF)
	case FmtVOP3:
		code = uint16(w0 >> 16 & 0x3FF)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		vdst := uint16(w0 >> 8 & 0xFF)
		if in.SDst, err = decodeSDst(uint16(w0 >> 1 & 0x7F)); err != nil {
			return nil, 0, err
		}
		switch {
		case in.Op == OpVCmp && w0&1 != 0:
			in.Dst = Operand{Kind: OperSGPR, Index: vdst}
		case in.Op == OpVCmp:
			in.Dst = Operand{Kind: OperVCC}
		default:
			in.Dst = Operand{Kind: OperVGPR, Index: vdst}
		}
		for i := 0; i < in.Op.NSrc(); i++ {
			c := uint16(w1 >> uint(9*i) & 0x1FF)
			if in.Srcs[i], err = decodeSrc(c, nextLit); err != nil {
				return nil, 0, err
			}
		}
	case FmtFLAT:
		code = uint16(w0 >> 18 & 0xFF)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Srcs[0] = Operand{Kind: OperVGPR, Index: uint16(w1 & 0xFF)}
		if in.Op.IsStore() || in.Op == OpFlatAtomicAdd {
			in.Srcs[1] = Operand{Kind: OperVGPR, Index: uint16(w1 >> 8 & 0xFF)}
		}
		if !in.Op.IsStore() {
			in.Dst = Operand{Kind: OperVGPR, Index: uint16(w1 >> 16 & 0xFF)}
		}
	case FmtDS:
		code = uint16(w0 >> 18 & 0xFF)
		k, e := combo(f, code)
		if e != nil {
			return nil, 0, e
		}
		fill(k)
		in.Offset = int32(w0 & 0xFFFF)
		in.Srcs[0] = Operand{Kind: OperVGPR, Index: uint16(w1 & 0xFF)}
		if in.Op.IsStore() || in.Op == OpDSAddU32 {
			in.Srcs[1] = Operand{Kind: OperVGPR, Index: uint16(w1 >> 8 & 0xFF)}
		}
		if !in.Op.IsStore() {
			in.Dst = Operand{Kind: OperVGPR, Index: uint16(w1 >> 16 & 0xFF)}
		}
	}
	return in, litOff, nil
}

// isBranchWithTarget reports whether the SOPP op's SImm is a branch offset.
func isBranchWithTarget(op Op) bool {
	switch op {
	case OpSBranch, OpSCbranchSCC0, OpSCbranchSCC1, OpSCbranchVCCZ,
		OpSCbranchVCCNZ, OpSCbranchExecZ, OpSCbranchExecNZ:
		return true
	}
	return false
}

// EncodeProgram lays out and encodes a whole program. Branch targets in
// Inst.Target (instruction indexes) become GCN3-style signed word offsets
// relative to the next instruction.
func EncodeProgram(p *Program) ([]byte, error) {
	p.Layout()
	var out []byte
	for i := range p.Insts {
		in := p.Insts[i] // copy: Target→SImm translation is encode-local
		if isBranchWithTarget(in.Op) {
			t := int(in.Target)
			if t < 0 || t >= len(p.Insts) {
				return nil, fmt.Errorf("gcn3: inst %d: branch target %d out of range", i, t)
			}
			next := p.PCs[i] + 4 // offset is from the end of the 4-byte SOPP
			delta := (int64(p.PCs[t]) - int64(next)) / 4
			if delta < -32768 || delta > 32767 {
				return nil, fmt.Errorf("gcn3: inst %d: branch offset %d overflows simm16", i, delta)
			}
			in.SImm = uint16(int16(delta))
		}
		b, err := EncodeInst(&in)
		if err != nil {
			return nil, fmt.Errorf("gcn3: inst %d (%s): %w", i, in.String(), err)
		}
		out = append(out, b...)
	}
	return out, nil
}

// DecodeProgram parses an encoded program and resolves branch targets back
// to instruction indexes.
func DecodeProgram(data []byte) (*Program, error) {
	p := &Program{}
	var pcs []uint64
	off := 0
	for off < len(data) {
		in, n, err := DecodeInst(data[off:])
		if err != nil {
			return nil, fmt.Errorf("gcn3: at offset %#x: %w", off, err)
		}
		pcs = append(pcs, uint64(off))
		p.Insts = append(p.Insts, *in)
		off += n
	}
	p.Layout()
	for i := range p.Insts {
		in := &p.Insts[i]
		if !isBranchWithTarget(in.Op) {
			continue
		}
		delta := int64(int16(in.SImm))
		target := int64(pcs[i]) + 4 + delta*4
		idx := p.IndexAt(uint64(target))
		if idx < 0 {
			return nil, fmt.Errorf("gcn3: inst %d: branch to unaligned offset %#x", i, target)
		}
		in.Target = int32(idx)
		in.SImm = 0
	}
	return p, nil
}
