package gcn3

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ilsim/internal/isa"
)

// sampleInsts covers every format and the tricky encodings.
func sampleInsts() []Inst {
	return []Inst{
		// SOP1
		{Op: OpSMov, Type: isa.TypeB32, Dst: SReg(6), Srcs: [3]Operand{Lit(0xDEADBEEF)}},
		{Op: OpSMov, Type: isa.TypeB64, Dst: SReg(12), Srcs: [3]Operand{{Kind: OperEXEC}}},
		{Op: OpSAndSaveexec, Type: isa.TypeB64, Dst: SReg(14), Srcs: [3]Operand{{Kind: OperVCC}}},
		{Op: OpSNot, Type: isa.TypeB64, Dst: SReg(20), Srcs: [3]Operand{SReg(22)}},
		// SOP2
		{Op: OpSAdd, Type: isa.TypeU32, Dst: SReg(4), Srcs: [3]Operand{SReg(5), Inline(7)}},
		{Op: OpSMul, Type: isa.TypeS32, Dst: SReg(4), Srcs: [3]Operand{SReg(4), SReg(8)}},
		{Op: OpSBfe, Type: isa.TypeU32, Dst: SReg(4), Srcs: [3]Operand{SReg(10), Lit(0x100000)}},
		{Op: OpSAndN2, Type: isa.TypeB64, Dst: Operand{Kind: OperEXEC}, Srcs: [3]Operand{SReg(14), {Kind: OperVCC}}},
		// SOPC
		{Op: OpSCmp, Type: isa.TypeU32, Cmp: isa.CmpLt, Srcs: [3]Operand{SReg(3), Inline(64)}},
		// SOPP
		{Op: OpSEndpgm},
		{Op: OpSBarrier},
		{Op: OpSNop, SImm: 3},
		{Op: OpSWaitcnt, VMCnt: 0, LGKMCnt: -1},
		{Op: OpSWaitcnt, VMCnt: -1, LGKMCnt: 0},
		{Op: OpSWaitcnt, VMCnt: 2, LGKMCnt: 1},
		// SMEM
		{Op: OpSLoadDword, Dst: SReg(10), Srcs: [3]Operand{SReg(4)}, Offset: 0x04},
		{Op: OpSLoadDwordx2, Dst: SReg(16), Srcs: [3]Operand{SReg(6)}, Offset: 0x10},
		{Op: OpSLoadDwordx4, Dst: SReg(24), Srcs: [3]Operand{SReg(4)}, Offset: 0x30},
		// VOP1
		{Op: OpVMov, Type: isa.TypeB32, Dst: VReg(1), Srcs: [3]Operand{SReg(6)}},
		{Op: OpVMov, Type: isa.TypeB32, Dst: VReg(2), Srcs: [3]Operand{Lit(12345)}},
		{Op: OpVRcp, Type: isa.TypeF64, Dst: VReg(7), Srcs: [3]Operand{VReg(3)}},
		{Op: OpVCvt, Type: isa.TypeF32, SrcType: isa.TypeU32, Dst: VReg(9), Srcs: [3]Operand{VReg(4)}},
		{Op: OpVCvt, Type: isa.TypeF64, SrcType: isa.TypeF32, Dst: VReg(10), Srcs: [3]Operand{VReg(9)}},
		// VOP2
		{Op: OpVAdd, Type: isa.TypeU32, Dst: VReg(117), SDst: VCC(), Srcs: [3]Operand{SReg(4), VReg(0)}},
		{Op: OpVSub, Type: isa.TypeF32, Dst: VReg(5), Srcs: [3]Operand{VReg(6), VReg(7)}},
		{Op: OpVMul, Type: isa.TypeF32, Dst: VReg(5), Srcs: [3]Operand{Inline(math.Float32bits(2.0)), VReg(7)}},
		{Op: OpVAnd, Type: isa.TypeB32, Dst: VReg(1), Srcs: [3]Operand{Lit(0xFF), VReg(2)}},
		{Op: OpVLshl, Type: isa.TypeB32, Dst: VReg(3), Srcs: [3]Operand{Inline(2), VReg(3)}},
		{Op: OpVCndmask, Type: isa.TypeB32, Dst: VReg(8), Srcs: [3]Operand{VReg(1), VReg(2), VCC()}},
		// VOPC
		{Op: OpVCmp, Type: isa.TypeU32, Cmp: isa.CmpGe, Dst: VCC(), Srcs: [3]Operand{SReg(9), VReg(3)}},
		// VOP3 (native)
		{Op: OpVMulLo, Type: isa.TypeU32, Dst: VReg(4), Srcs: [3]Operand{VReg(5), VReg(6)}},
		{Op: OpVMad, Type: isa.TypeU32, Dst: VReg(4), Srcs: [3]Operand{VReg(5), SReg(8), VReg(0)}},
		{Op: OpVFma, Type: isa.TypeF64, Dst: VReg(10), Srcs: [3]Operand{VReg(12), VReg(14), Inline(math.Float32bits(1.0))}},
		{Op: OpVDivScale, Type: isa.TypeF64, Dst: VReg(3), SDst: VCC(), Srcs: [3]Operand{VReg(1), VReg(1), SReg(4)}},
		{Op: OpVDivFmas, Type: isa.TypeF64, Dst: VReg(3), Srcs: [3]Operand{VReg(3), VReg(7), VReg(9)}},
		{Op: OpVDivFixup, Type: isa.TypeF64, Dst: VReg(1), Srcs: [3]Operand{VReg(3), VReg(1), SReg(4)}},
		// VOP3 promotions
		{Op: OpVCmp, Type: isa.TypeF64, Cmp: isa.CmpLt, Dst: SReg(20), Srcs: [3]Operand{VReg(2), VReg(4)}},
		{Op: OpVCndmask, Type: isa.TypeB32, Dst: VReg(8), Srcs: [3]Operand{VReg(1), VReg(2), SReg(30)}},
		{Op: OpVAdd, Type: isa.TypeF64, Dst: VReg(20), Srcs: [3]Operand{VReg(22), VReg(24)}},
		// FLAT
		{Op: OpFlatLoadDword, Dst: VReg(3), Srcs: [3]Operand{VReg(1)}},
		{Op: OpFlatLoadDwordx2, Dst: VReg(4), Srcs: [3]Operand{VReg(1)}},
		{Op: OpFlatStoreDword, Srcs: [3]Operand{VReg(1), VReg(3)}},
		{Op: OpFlatStoreDwordx2, Srcs: [3]Operand{VReg(1), VReg(4)}},
		{Op: OpFlatAtomicAdd, Type: isa.TypeU32, Dst: VReg(9), Srcs: [3]Operand{VReg(1), VReg(2)}},
		// DS
		{Op: OpDSReadB32, Dst: VReg(5), Srcs: [3]Operand{VReg(2)}, Offset: 64},
		{Op: OpDSWriteB32, Srcs: [3]Operand{VReg(2), VReg(5)}, Offset: 128},
		{Op: OpDSReadB64, Dst: VReg(6), Srcs: [3]Operand{VReg(2)}, Offset: 8},
		{Op: OpDSWriteB64, Srcs: [3]Operand{VReg(2), VReg(6)}, Offset: 16},
	}
}

func normalize(in *Inst) {
	if in.VMCnt == 0 && in.LGKMCnt == 0 && in.Op != OpSWaitcnt {
		in.VMCnt, in.LGKMCnt = -1, -1
	}
}

func TestInstRoundTrip(t *testing.T) {
	for _, in := range sampleInsts() {
		in := in
		normalize(&in)
		b, err := EncodeInst(&in)
		if err != nil {
			t.Fatalf("%s: encode: %v", in.String(), err)
		}
		if len(b) != in.SizeBytes() {
			t.Errorf("%s: encoded %d bytes, SizeBytes()=%d", in.String(), len(b), in.SizeBytes())
		}
		got, n, err := DecodeInst(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", in.String(), err)
		}
		if n != len(b) {
			t.Errorf("%s: decoded %d of %d bytes", in.String(), n, len(b))
		}
		if !reflect.DeepEqual(*got, in) {
			t.Errorf("round-trip mismatch:\n in: %#v\nout: %#v\n(disasm in:  %s)\n(disasm out: %s)",
				in, *got, in.String(), got.String())
		}
	}
}

func TestSizeClasses(t *testing.T) {
	cases := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: OpVAdd, Type: isa.TypeU32, Dst: VReg(0), SDst: VCC(), Srcs: [3]Operand{VReg(1), VReg(2)}}, 4},
		{Inst{Op: OpVAdd, Type: isa.TypeU32, Dst: VReg(0), SDst: VCC(), Srcs: [3]Operand{Lit(1000), VReg(2)}}, 8},
		{Inst{Op: OpVAdd, Type: isa.TypeF64, Dst: VReg(0), Srcs: [3]Operand{VReg(2), VReg(4)}}, 8},
		{Inst{Op: OpVFma, Type: isa.TypeF32, Dst: VReg(0), Srcs: [3]Operand{VReg(1), VReg(2), VReg(3)}}, 8},
		{Inst{Op: OpSEndpgm}, 4},
		{Inst{Op: OpFlatLoadDword, Dst: VReg(0), Srcs: [3]Operand{VReg(2)}}, 8},
		{Inst{Op: OpSLoadDwordx4, Dst: SReg(8), Srcs: [3]Operand{SReg(4)}}, 8},
	}
	for _, c := range cases {
		if got := c.in.SizeBytes(); got != c.want {
			t.Errorf("%s: SizeBytes()=%d, want %d", c.in.String(), got, c.want)
		}
	}
}

func TestVOP3CannotCarryLiteral(t *testing.T) {
	in := Inst{Op: OpVFma, Type: isa.TypeF32, Dst: VReg(0), Srcs: [3]Operand{Lit(0x3F800000), VReg(1), VReg(2)}}
	if _, err := EncodeInst(&in); err == nil {
		t.Fatal("expected error encoding literal in VOP3")
	}
}

func TestProgramRoundTripWithBranches(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: OpSMov, Type: isa.TypeB32, Dst: SReg(0), Srcs: [3]Operand{Inline(0)}, VMCnt: -1, LGKMCnt: -1},
		{Op: OpSCbranchExecZ, Target: 4, VMCnt: -1, LGKMCnt: -1},
		{Op: OpVMov, Type: isa.TypeB32, Dst: VReg(1), Srcs: [3]Operand{Lit(42)}, VMCnt: -1, LGKMCnt: -1},
		{Op: OpSBranch, Target: 0, VMCnt: -1, LGKMCnt: -1},
		{Op: OpSEndpgm, VMCnt: -1, LGKMCnt: -1},
	}}
	data, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeProgram(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Insts) != len(p.Insts) {
		t.Fatalf("decoded %d insts, want %d", len(got.Insts), len(p.Insts))
	}
	if got.Insts[1].Target != 4 {
		t.Errorf("branch 1 target = %d, want 4", got.Insts[1].Target)
	}
	if got.Insts[3].Target != 0 {
		t.Errorf("branch 3 target = %d, want 0", got.Insts[3].Target)
	}
	if got.Size != p.Size {
		t.Errorf("size %d != %d", got.Size, p.Size)
	}
}

func TestCodeObjectRoundTrip(t *testing.T) {
	co := &CodeObject{
		Name: "vec_add", NumVGPRs: 12, NumSGPRs: 20,
		KernargSize: 24, GroupSize: 2048, PrivateSize: 64,
		Program: &Program{Insts: []Inst{
			{Op: OpSLoadDwordx2, Dst: SReg(12), Srcs: [3]Operand{SReg(6)}, Offset: 0, VMCnt: -1, LGKMCnt: -1},
			{Op: OpSWaitcnt, VMCnt: -1, LGKMCnt: 0},
			{Op: OpSEndpgm, VMCnt: -1, LGKMCnt: -1},
		}},
	}
	data, err := co.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCodeObject(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != co.Name || got.NumVGPRs != 12 || got.NumSGPRs != 20 ||
		got.KernargSize != 24 || got.GroupSize != 2048 || got.PrivateSize != 64 {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if len(got.Program.Insts) != 3 {
		t.Fatalf("program length %d, want 3", len(got.Program.Insts))
	}
}

// TestRandomInstRoundTrip fuzzes register fields of each sample instruction.
func TestRandomInstRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := sampleInsts()
	for iter := 0; iter < 2000; iter++ {
		in := samples[rng.Intn(len(samples))]
		normalize(&in)
		mutate := func(o *Operand) {
			switch o.Kind {
			case OperVGPR:
				o.Index = uint16(rng.Intn(isa.MaxVGPRs))
			case OperSGPR:
				o.Index = uint16(rng.Intn(isa.MaxSGPRs))
			case OperLit:
				o.Val = rng.Uint32()
			}
		}
		mutate(&in.Dst)
		for i := range in.Srcs {
			mutate(&in.Srcs[i])
		}
		b, err := EncodeInst(&in)
		if err != nil {
			t.Fatalf("iter %d: encode %s: %v", iter, in.String(), err)
		}
		got, _, err := DecodeInst(b)
		if err != nil {
			t.Fatalf("iter %d: decode %s: %v", iter, in.String(), err)
		}
		if !reflect.DeepEqual(*got, in) {
			t.Fatalf("iter %d: mismatch\n in: %#v\nout: %#v", iter, in, *got)
		}
	}
}
