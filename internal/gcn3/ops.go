// Package gcn3 defines the GCN3-like machine ISA under study.
//
// The ISA mirrors the structural properties of AMD's Graphics Core Next 3
// instruction set that the paper identifies as consequential:
//
//   - It is a vector ISA: the 64-bit execution mask (EXEC) is architecturally
//     visible and manipulable, so the compiler lays out reducible control
//     flow serially and predicates it instead of relying on a simulator
//     reconvergence stack (paper §III.C.1).
//   - It has a scalar pipeline: scalar ALU and scalar memory instructions are
//     interleaved with vector instructions by the finalizer for control flow
//     and address generation (paper §III.B.1).
//   - Dependency management is software's job: s_waitcnt and s_nop
//     instructions inserted by the finalizer replace hardware scoreboards
//     (paper §III.B.2).
//   - Instructions use variable-length hardware encodings: 32-bit or 64-bit,
//     optionally followed by a 32-bit literal constant (paper §III.C.3).
//   - Per-wavefront register files are architecturally bounded: 256 VGPRs and
//     102 SGPRs (paper §V.B).
//
// The opcode inventory and bit-level field packing are this project's own
// (the real encodings are only partially relevant to the study), but every
// instruction's *size class* follows the GCN3 rules exactly, since code
// footprint is one of the reproduced results (Figure 8).
package gcn3

import (
	"fmt"

	"ilsim/internal/isa"
)

// Format is a GCN3 encoding format. It determines the instruction's size:
// 4-byte formats may be followed by one 4-byte literal; 8-byte formats may
// not carry literals (as on real GCN3, where VOP3/SMEM/FLAT/DS encode no
// literal constants).
type Format uint8

// Encoding formats.
const (
	FmtSOP1 Format = iota // scalar, 1 source, 4 bytes
	FmtSOP2               // scalar, 2 sources, 4 bytes
	FmtSOPC               // scalar compare, 4 bytes
	FmtSOPP               // scalar program control, 4 bytes
	FmtSMEM               // scalar memory, 8 bytes
	FmtVOP1               // vector, 1 source, 4 bytes
	FmtVOP2               // vector, 2 sources, 4 bytes
	FmtVOPC               // vector compare to VCC, 4 bytes
	FmtVOP3               // vector, 3 sources / SGPR destinations, 8 bytes
	FmtFLAT               // flat memory, 8 bytes
	FmtDS                 // local data share, 8 bytes

	// NumFormats is the number of encoding formats.
	NumFormats = int(FmtDS) + 1
)

// String names the format.
func (f Format) String() string {
	names := [...]string{"SOP1", "SOP2", "SOPC", "SOPP", "SMEM", "VOP1", "VOP2", "VOPC", "VOP3", "FLAT", "DS"}
	if int(f) < len(names) {
		return names[f]
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// BaseBytes returns the format's base encoding size.
func (f Format) BaseBytes() int {
	switch f {
	case FmtVOP3, FmtSMEM, FmtFLAT, FmtDS:
		return 8
	default:
		return 4
	}
}

// AllowsLiteral reports whether the format may carry a trailing 32-bit
// literal constant.
func (f Format) AllowsLiteral() bool { return f.BaseBytes() == 4 && f != FmtSOPP }

// Op is a GCN3 opcode. Operation width/type is carried in Inst.Type (and
// Inst.SrcType for conversions), mirroring how real GCN3 enumerates one
// opcode per type; the encoder folds (Op, Type, SrcType, Cmp) into the
// format's opcode field through a deterministic registry.
type Op uint8

// Scalar ALU (SOP1/SOP2/SOPC).
const (
	OpSMov         Op = iota // s_mov_b32/b64
	OpSNot                   // s_not_b64
	OpSAndSaveexec           // s_and_saveexec_b64: sdst = EXEC; EXEC &= src0
	OpSOrSaveexec            // s_or_saveexec_b64: sdst = EXEC; EXEC |= src0
	OpSAdd                   // s_add_u32
	OpSSub                   // s_sub_u32
	OpSMul                   // s_mul_i32
	OpSLshl                  // s_lshl_b32
	OpSLshr                  // s_lshr_b32
	OpSAshr                  // s_ashr_i32
	OpSAnd                   // s_and_b32/b64
	OpSOr                    // s_or_b32/b64
	OpSXor                   // s_xor_b32/b64
	OpSAndN2                 // s_andn2_b64: dst = src0 & ~src1
	OpSBfe                   // s_bfe_u32: bit-field extract, src1 = {offset[4:0], width[22:16]}
	OpSAddc                  // s_addc_u32: dst = src0 + src1 + SCC
	OpSCmp                   // s_cmp_<cmp>_<type>: sets SCC

	// Scalar program control (SOPP).
	OpSEndpgm
	OpSBranch
	OpSCbranchSCC0
	OpSCbranchSCC1
	OpSCbranchVCCZ
	OpSCbranchVCCNZ
	OpSCbranchExecZ
	OpSCbranchExecNZ
	OpSBarrier
	OpSNop
	OpSWaitcnt

	// Scalar memory (SMEM).
	OpSLoadDword
	OpSLoadDwordx2
	OpSLoadDwordx4

	// Vector ALU.
	OpVMov     // v_mov_b32
	OpVNot     // v_not_b32
	OpVCvt     // v_cvt_<type>_<srctype>
	OpVRcp     // v_rcp_f32/f64
	OpVSqrt    // v_sqrt_f32/f64
	OpVRsq     // v_rsq_f32/f64
	OpVAdd     // v_add_<type> (u32 writes VCC carry)
	OpVAddc    // v_addc_u32: dst = src0 + src1 + VCC, writes VCC carry
	OpVSub     // v_sub_<type> (u32 writes VCC borrow)
	OpVMul     // v_mul_<type> (float; integer multiplies are VMulLo/VMulHi)
	OpVMulLo   // v_mul_lo_u32 (VOP3)
	OpVMulHi   // v_mul_hi_u32 (VOP3)
	OpVMad     // v_mad_u32 (VOP3, 3 sources)
	OpVFma     // v_fma_f32/f64 (VOP3, 3 sources)
	OpVMin     // v_min_<type>
	OpVMax     // v_max_<type>
	OpVAnd     // v_and_b32
	OpVOr      // v_or_b32
	OpVXor     // v_xor_b32
	OpVLshl    // v_lshlrev_b32/b64
	OpVLshr    // v_lshrrev_b32
	OpVAshr    // v_ashrrev_i32
	OpVCmp     // v_cmp_<cmp>_<type>: per-lane compare to VCC (VOPC) or SGPR pair (VOP3)
	OpVCndmask // v_cndmask_b32: dst = sel ? src1 : src0 (sel = VCC in VOP2, SGPR pair in VOP3)

	// Newton-Raphson division support (paper Table 3).
	OpVDivScale // v_div_scale_f32/f64 (VOP3, also writes VCC)
	OpVDivFmas  // v_div_fmas_f32/f64 (VOP3, reads VCC)
	OpVDivFixup // v_div_fixup_f32/f64 (VOP3)

	// Flat memory (FLAT). GCN3 flat instructions carry NO immediate offset
	// (that arrived in later generations), so address arithmetic is always
	// explicit — one of the sources of code expansion.
	OpFlatLoadDword
	OpFlatLoadDwordx2
	OpFlatStoreDword
	OpFlatStoreDwordx2
	OpFlatAtomicAdd // u32 fetch-add, returns prior value when GLC

	// Local data share (DS).
	OpDSReadB32
	OpDSWriteB32
	OpDSReadB64
	OpDSWriteB64
	OpDSAddU32 // LDS atomic fetch-add (returns the prior value)

	// NumOps is the number of defined opcodes.
	NumOps = int(OpDSAddU32) + 1
)

// opInfo is static opcode metadata.
type opInfo struct {
	name   string
	format Format
	nSrc   int
}

var opTable = [NumOps]opInfo{
	OpSMov:             {"s_mov", FmtSOP1, 1},
	OpSNot:             {"s_not", FmtSOP1, 1},
	OpSAndSaveexec:     {"s_and_saveexec", FmtSOP1, 1},
	OpSOrSaveexec:      {"s_or_saveexec", FmtSOP1, 1},
	OpSAdd:             {"s_add", FmtSOP2, 2},
	OpSSub:             {"s_sub", FmtSOP2, 2},
	OpSMul:             {"s_mul", FmtSOP2, 2},
	OpSLshl:            {"s_lshl", FmtSOP2, 2},
	OpSLshr:            {"s_lshr", FmtSOP2, 2},
	OpSAshr:            {"s_ashr", FmtSOP2, 2},
	OpSAnd:             {"s_and", FmtSOP2, 2},
	OpSOr:              {"s_or", FmtSOP2, 2},
	OpSXor:             {"s_xor", FmtSOP2, 2},
	OpSAndN2:           {"s_andn2", FmtSOP2, 2},
	OpSBfe:             {"s_bfe", FmtSOP2, 2},
	OpSAddc:            {"s_addc", FmtSOP2, 2},
	OpSCmp:             {"s_cmp", FmtSOPC, 2},
	OpSEndpgm:          {"s_endpgm", FmtSOPP, 0},
	OpSBranch:          {"s_branch", FmtSOPP, 0},
	OpSCbranchSCC0:     {"s_cbranch_scc0", FmtSOPP, 0},
	OpSCbranchSCC1:     {"s_cbranch_scc1", FmtSOPP, 0},
	OpSCbranchVCCZ:     {"s_cbranch_vccz", FmtSOPP, 0},
	OpSCbranchVCCNZ:    {"s_cbranch_vccnz", FmtSOPP, 0},
	OpSCbranchExecZ:    {"s_cbranch_execz", FmtSOPP, 0},
	OpSCbranchExecNZ:   {"s_cbranch_execnz", FmtSOPP, 0},
	OpSBarrier:         {"s_barrier", FmtSOPP, 0},
	OpSNop:             {"s_nop", FmtSOPP, 0},
	OpSWaitcnt:         {"s_waitcnt", FmtSOPP, 0},
	OpSLoadDword:       {"s_load_dword", FmtSMEM, 1},
	OpSLoadDwordx2:     {"s_load_dwordx2", FmtSMEM, 1},
	OpSLoadDwordx4:     {"s_load_dwordx4", FmtSMEM, 1},
	OpVMov:             {"v_mov", FmtVOP1, 1},
	OpVNot:             {"v_not", FmtVOP1, 1},
	OpVCvt:             {"v_cvt", FmtVOP1, 1},
	OpVRcp:             {"v_rcp", FmtVOP1, 1},
	OpVSqrt:            {"v_sqrt", FmtVOP1, 1},
	OpVRsq:             {"v_rsq", FmtVOP1, 1},
	OpVAdd:             {"v_add", FmtVOP2, 2},
	OpVAddc:            {"v_addc", FmtVOP2, 2},
	OpVSub:             {"v_sub", FmtVOP2, 2},
	OpVMul:             {"v_mul", FmtVOP2, 2},
	OpVMulLo:           {"v_mul_lo", FmtVOP3, 2},
	OpVMulHi:           {"v_mul_hi", FmtVOP3, 2},
	OpVMad:             {"v_mad", FmtVOP3, 3},
	OpVFma:             {"v_fma", FmtVOP3, 3},
	OpVMin:             {"v_min", FmtVOP2, 2},
	OpVMax:             {"v_max", FmtVOP2, 2},
	OpVAnd:             {"v_and", FmtVOP2, 2},
	OpVOr:              {"v_or", FmtVOP2, 2},
	OpVXor:             {"v_xor", FmtVOP2, 2},
	OpVLshl:            {"v_lshlrev", FmtVOP2, 2},
	OpVLshr:            {"v_lshrrev", FmtVOP2, 2},
	OpVAshr:            {"v_ashrrev", FmtVOP2, 2},
	OpVCmp:             {"v_cmp", FmtVOPC, 2},
	OpVCndmask:         {"v_cndmask", FmtVOP2, 3},
	OpVDivScale:        {"v_div_scale", FmtVOP3, 3},
	OpVDivFmas:         {"v_div_fmas", FmtVOP3, 3},
	OpVDivFixup:        {"v_div_fixup", FmtVOP3, 3},
	OpFlatLoadDword:    {"flat_load_dword", FmtFLAT, 1},
	OpFlatLoadDwordx2:  {"flat_load_dwordx2", FmtFLAT, 1},
	OpFlatStoreDword:   {"flat_store_dword", FmtFLAT, 2},
	OpFlatStoreDwordx2: {"flat_store_dwordx2", FmtFLAT, 2},
	OpFlatAtomicAdd:    {"flat_atomic_add", FmtFLAT, 2},
	OpDSReadB32:        {"ds_read_b32", FmtDS, 1},
	OpDSWriteB32:       {"ds_write_b32", FmtDS, 2},
	OpDSReadB64:        {"ds_read_b64", FmtDS, 1},
	OpDSWriteB64:       {"ds_write_b64", FmtDS, 2},
	OpDSAddU32:         {"ds_add_rtn_u32", FmtDS, 2},
}

// String returns the base mnemonic without type suffixes.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// NSrc returns the number of source operands.
func (op Op) NSrc() int { return opTable[op].nSrc }

// baseFormat returns the opcode's default format; Inst.Format refines it
// (v_cmp to an SGPR destination and v_cndmask with an explicit SGPR selector
// promote to VOP3, as on real hardware).
func (op Op) baseFormat() Format { return opTable[op].format }

// Category returns the execution-resource category (Figure 5 breakdown).
func (op Op) Category() isa.Category {
	switch {
	case op == OpSWaitcnt:
		return isa.CatWaitcnt
	case op == OpSBranch || (op >= OpSCbranchSCC0 && op <= OpSCbranchExecNZ):
		return isa.CatBranch
	case op == OpSEndpgm || op == OpSBarrier || op == OpSNop:
		return isa.CatMisc
	case op >= OpSLoadDword && op <= OpSLoadDwordx4:
		return isa.CatSMem
	case op <= OpSCmp:
		return isa.CatSALU
	case op >= OpFlatLoadDword && op <= OpFlatAtomicAdd:
		return isa.CatVMem
	case op >= OpDSReadB32:
		return isa.CatLDS
	default:
		return isa.CatVALU
	}
}

// IsVMem reports whether the op is counted by vmcnt.
func (op Op) IsVMem() bool { return op.Category() == isa.CatVMem }

// IsLGKM reports whether the op is counted by lgkmcnt (scalar memory + LDS).
func (op Op) IsLGKM() bool {
	c := op.Category()
	return c == isa.CatSMem || c == isa.CatLDS
}

// IsBranch reports whether the op redirects the PC when taken.
func (op Op) IsBranch() bool { return op.Category() == isa.CatBranch }

// IsStore reports whether the op writes memory without a register result.
func (op Op) IsStore() bool {
	return op == OpFlatStoreDword || op == OpFlatStoreDwordx2 ||
		op == OpDSWriteB32 || op == OpDSWriteB64
}
