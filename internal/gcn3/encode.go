package gcn3

import (
	"encoding/binary"
	"fmt"
	"math"

	"ilsim/internal/isa"
)

// This file implements the binary codec for GCN3-like programs.
//
// The bit-level field packing is this project's own, but the encoding obeys
// the GCN3 size rules exactly — 32-bit base encodings for SOP1/SOP2/SOPC/
// SOPP/VOP1/VOP2/VOPC, 64-bit for VOP3/SMEM/FLAT/DS, at most one trailing
// 32-bit literal and only on 32-bit formats — because encoded size is what
// the instruction-footprint and fetch experiments measure. Like real GCN3,
// the operation's data type is folded into the format's opcode field: a
// deterministic registry enumerates every legal (op, type, srcType, cmp)
// combination per format.

// comboKey identifies an encodable operation variant.
type comboKey struct {
	op      Op
	typ     isa.DataType
	srcType isa.DataType
	cmp     isa.CmpOp
}

var (
	comboToCode map[comboKey]uint16
	codeToCombo [NumFormats][]comboKey
)

// legalCombos returns the encodable variants of op in deterministic order.
func legalCombos(op Op) []comboKey {
	types := func(ts ...isa.DataType) []comboKey {
		ks := make([]comboKey, len(ts))
		for i, t := range ts {
			ks[i] = comboKey{op: op, typ: t}
		}
		return ks
	}
	cmps := func(ts ...isa.DataType) []comboKey {
		var ks []comboKey
		for _, t := range ts {
			for c := isa.CmpEq; c <= isa.CmpGe; c++ {
				ks = append(ks, comboKey{op: op, typ: t, cmp: c})
			}
		}
		return ks
	}
	const (
		b32 = isa.TypeB32
		b64 = isa.TypeB64
		u32 = isa.TypeU32
		s32 = isa.TypeS32
		u64 = isa.TypeU64
		s64 = isa.TypeS64
		f32 = isa.TypeF32
		f64 = isa.TypeF64
	)
	switch op {
	case OpSMov, OpSNot, OpSAnd, OpSOr, OpSXor:
		return types(b32, b64)
	case OpSAndSaveexec, OpSOrSaveexec, OpSAndN2:
		return types(b64)
	case OpSAdd, OpSSub, OpSBfe, OpSAddc:
		return types(u32)
	case OpSMul, OpSAshr:
		return types(s32)
	case OpSLshl, OpSLshr:
		return types(b32)
	case OpSCmp:
		return cmps(u32, s32)
	case OpSEndpgm, OpSBranch, OpSCbranchSCC0, OpSCbranchSCC1,
		OpSCbranchVCCZ, OpSCbranchVCCNZ, OpSCbranchExecZ, OpSCbranchExecNZ,
		OpSBarrier, OpSNop, OpSWaitcnt,
		OpSLoadDword, OpSLoadDwordx2, OpSLoadDwordx4,
		OpFlatLoadDword, OpFlatLoadDwordx2, OpFlatStoreDword,
		OpFlatStoreDwordx2, OpDSReadB32, OpDSWriteB32, OpDSReadB64, OpDSWriteB64:
		return types(isa.TypeNone)
	case OpFlatAtomicAdd, OpVAddc, OpDSAddU32:
		return types(u32)
	case OpVMov, OpVNot, OpVAnd, OpVOr, OpVXor, OpVCndmask:
		return types(b32)
	case OpVLshl, OpVLshr:
		return types(b32, b64)
	case OpVAshr:
		return types(s32)
	case OpVCvt:
		pairs := [][2]isa.DataType{
			{f32, u32}, {f32, s32}, {u32, f32}, {s32, f32},
			{f64, f32}, {f32, f64}, {f64, u32}, {f64, s32},
			{u32, f64}, {s32, f64}, {u64, u32}, {u32, u64},
			{s64, s32},
		}
		ks := make([]comboKey, len(pairs))
		for i, p := range pairs {
			ks[i] = comboKey{op: op, typ: p[0], srcType: p[1]}
		}
		return ks
	case OpVRcp, OpVSqrt, OpVRsq, OpVMul, OpVFma, OpVDivScale, OpVDivFmas, OpVDivFixup:
		return types(f32, f64)
	case OpVAdd, OpVSub:
		return types(u32, f32, f64)
	case OpVMulLo, OpVMulHi, OpVMad:
		return types(u32)
	case OpVMin, OpVMax:
		return types(u32, s32, f32, f64)
	case OpVCmp:
		return cmps(u32, s32, u64, f32, f64)
	}
	return nil
}

func init() {
	comboToCode = make(map[comboKey]uint16)
	for op := Op(0); op < Op(NumOps); op++ {
		f := op.baseFormat()
		for _, k := range legalCombos(op) {
			comboToCode[k] = uint16(len(codeToCombo[f]))
			codeToCombo[f] = append(codeToCombo[f], k)
		}
	}
	// Register VOP3 promotions: VOPC compares with SGPR destinations,
	// VOP2 v_cndmask with SGPR selectors, and 64-bit VOP2 arithmetic all
	// re-encode in VOP3. Give every promotable combo a VOP3 code too.
	for op := Op(0); op < Op(NumOps); op++ {
		if op.baseFormat() == FmtVOP3 || !promotableToVOP3(op) {
			continue
		}
		for _, k := range legalCombos(op) {
			k3 := comboKey{op: k.op, typ: k.typ, srcType: k.srcType, cmp: k.cmp}
			key := vop3Key(k3)
			if _, dup := comboToCode[key]; dup {
				continue
			}
			comboToCode[key] = uint16(len(codeToCombo[FmtVOP3]))
			codeToCombo[FmtVOP3] = append(codeToCombo[FmtVOP3], k3)
		}
	}
	// Sanity: per-format code fields must hold every code.
	limits := map[Format]int{
		FmtSOP1: 256, FmtSOP2: 128, FmtSOPC: 128, FmtSOPP: 128,
		FmtSMEM: 256, FmtVOP1: 256, FmtVOP2: 62, FmtVOPC: 256,
		FmtVOP3: 1024, FmtFLAT: 256, FmtDS: 256,
	}
	for f, combos := range codeToCombo {
		if len(combos) > limits[Format(f)] {
			panic(fmt.Sprintf("gcn3: format %s opcode space overflow: %d", Format(f), len(combos)))
		}
	}
}

// promotableToVOP3 reports whether a 4-byte vector op has a VOP3 encoding.
func promotableToVOP3(op Op) bool {
	switch op {
	case OpVCmp, OpVCndmask, OpVAdd, OpVSub, OpVMul, OpVMin, OpVMax,
		OpVLshl, OpVLshr, OpVAshr:
		return true
	}
	return false
}

// vop3Key marks a combo as VOP3-encoded by flipping the top bit of op; the
// registry keeps promoted variants distinct from their base-format twins.
func vop3Key(k comboKey) comboKey {
	k.op |= 0x80
	return k
}

// lookupCode returns the format opcode for the instruction.
func lookupCode(in *Inst) (uint16, error) {
	k := comboKey{op: in.Op, typ: in.Type, srcType: in.SrcType}
	if in.Op == OpVCmp || in.Op == OpSCmp {
		k.cmp = in.Cmp
	}
	if in.Format() == FmtVOP3 && in.Op.baseFormat() != FmtVOP3 {
		k = vop3Key(k)
	}
	code, ok := comboToCode[k]
	if !ok {
		return 0, fmt.Errorf("gcn3: no encoding for %s (type %s, srcType %s)", in.Op, in.Type, in.SrcType)
	}
	return code, nil
}

// Source-operand encodings, following the GCN3 unified scheme.
const (
	srcVCC     = 106
	srcEXEC    = 126
	srcZero    = 128
	srcIntPos  = 129 // 129..192 = 1..64
	srcIntNeg  = 193 // 193..208 = -1..-16
	srcFloat05 = 240 // 240..247 = 0.5, -0.5, 1.0, -1.0, 2.0, -2.0, 4.0, -4.0
	srcSCC     = 251
	srcLiteral = 255
	srcVGPR0   = 256 // 256..511 = v0..v255 (9-bit encodings only)
)

var floatConsts = [8]float32{0.5, -0.5, 1.0, -1.0, 2.0, -2.0, 4.0, -4.0}

// encodeSrc maps an operand to its source code, emitting a literal if needed.
// wide selects the 9-bit space (vector formats); narrow formats get 8 bits.
func encodeSrc(o Operand, wide bool, lit *[]uint32) (uint16, error) {
	switch o.Kind {
	case OperSGPR:
		if o.Index >= isa.MaxSGPRs {
			return 0, fmt.Errorf("gcn3: SGPR s%d out of range", o.Index)
		}
		return o.Index, nil
	case OperVCC:
		return srcVCC, nil
	case OperEXEC:
		return srcEXEC, nil
	case OperSCC:
		return srcSCC, nil
	case OperVGPR:
		if !wide {
			return 0, fmt.Errorf("gcn3: VGPR source in scalar format")
		}
		if o.Index >= isa.MaxVGPRs {
			return 0, fmt.Errorf("gcn3: VGPR v%d out of range", o.Index)
		}
		return srcVGPR0 + o.Index, nil
	case OperInline:
		v := int32(o.Val)
		switch {
		case v == 0:
			return srcZero, nil
		case v >= 1 && v <= 64:
			return srcIntPos + uint16(v) - 1, nil
		case v >= -16 && v <= -1:
			return srcIntNeg + uint16(-v) - 1, nil
		}
		f := math.Float32frombits(o.Val)
		for i, fc := range floatConsts {
			if f == fc {
				return srcFloat05 + uint16(i), nil
			}
		}
		return 0, fmt.Errorf("gcn3: value %#x not inline-encodable", o.Val)
	case OperLit:
		*lit = append(*lit, o.Val)
		return srcLiteral, nil
	}
	return 0, fmt.Errorf("gcn3: unencodable source operand kind %d", o.Kind)
}

// decodeSrc inverts encodeSrc. nextLit fetches the trailing literal.
func decodeSrc(code uint16, nextLit func() (uint32, error)) (Operand, error) {
	switch {
	case code < isa.MaxSGPRs:
		return Operand{Kind: OperSGPR, Index: code}, nil
	case code == srcVCC:
		return Operand{Kind: OperVCC}, nil
	case code == srcEXEC:
		return Operand{Kind: OperEXEC}, nil
	case code == srcSCC:
		return Operand{Kind: OperSCC}, nil
	case code == srcZero:
		return Operand{Kind: OperInline, Val: 0}, nil
	case code >= srcIntPos && code < srcIntPos+64:
		return Operand{Kind: OperInline, Val: uint32(code - srcIntPos + 1)}, nil
	case code >= srcIntNeg && code < srcIntNeg+16:
		return Operand{Kind: OperInline, Val: uint32(int32(-(int(code) - srcIntNeg + 1)))}, nil
	case code >= srcFloat05 && code < srcFloat05+8:
		return Operand{Kind: OperInline, Val: math.Float32bits(floatConsts[code-srcFloat05])}, nil
	case code == srcLiteral:
		v, err := nextLit()
		return Operand{Kind: OperLit, Val: v}, err
	case code >= srcVGPR0 && code < srcVGPR0+isa.MaxVGPRs:
		return Operand{Kind: OperVGPR, Index: code - srcVGPR0}, nil
	}
	return Operand{}, fmt.Errorf("gcn3: bad source code %d", code)
}

// encodeSDst maps a scalar destination to its 7-bit code.
func encodeSDst(o Operand) (uint16, error) {
	switch o.Kind {
	case OperNone:
		return 127, nil // sentinel: no scalar destination
	case OperSGPR:
		if o.Index >= isa.MaxSGPRs {
			return 0, fmt.Errorf("gcn3: SGPR s%d out of range", o.Index)
		}
		return o.Index, nil
	case OperVCC:
		return srcVCC, nil
	case OperEXEC:
		return srcEXEC, nil
	}
	return 0, fmt.Errorf("gcn3: unencodable scalar destination kind %d", o.Kind)
}

func decodeSDst(code uint16) (Operand, error) {
	switch {
	case code == 127:
		return Operand{}, nil
	case code < isa.MaxSGPRs:
		return Operand{Kind: OperSGPR, Index: code}, nil
	case code == srcVCC:
		return Operand{Kind: OperVCC}, nil
	case code == srcEXEC:
		return Operand{Kind: OperEXEC}, nil
	}
	return Operand{}, fmt.Errorf("gcn3: bad scalar destination code %d", code)
}

// waitcntImm packs waitcnt fields GCN3-style: vmcnt in [3:0], lgkmcnt in
// [12:8]; 0xF / 0x1F mean unconstrained.
func waitcntImm(vm, lgkm int8) uint16 {
	v := uint16(0xF)
	if vm >= 0 {
		v = uint16(vm) & 0xF
	}
	l := uint16(0x1F)
	if lgkm >= 0 {
		l = uint16(lgkm) & 0x1F
	}
	return v | l<<8
}

func waitcntFields(imm uint16) (vm, lgkm int8) {
	vm, lgkm = -1, -1
	if v := imm & 0xF; v != 0xF {
		vm = int8(v)
	}
	if l := imm >> 8 & 0x1F; l != 0x1F {
		lgkm = int8(l)
	}
	return vm, lgkm
}

// EncodeInst encodes one instruction. Branch targets must already be
// expressed as a word offset in in.SImm (EncodeProgram handles this).
func EncodeInst(in *Inst) ([]byte, error) {
	f := in.Format()
	code, err := lookupCode(in)
	if err != nil {
		return nil, err
	}
	var lits []uint32
	var w0, w1 uint32
	fail := func(format string, args ...any) ([]byte, error) {
		return nil, fmt.Errorf("gcn3: encode %s: %s", in.Op, fmt.Sprintf(format, args...))
	}
	vgpr := func(o Operand) (uint32, error) {
		if o.Kind != OperVGPR {
			return 0, fmt.Errorf("gcn3: encode %s: operand must be a VGPR", in.Op)
		}
		return uint32(o.Index), nil
	}
	switch f {
	case FmtVOP2:
		if code >= 64 {
			return fail("opcode space overflow")
		}
		vdst, err := vgpr(in.Dst)
		if err != nil {
			return nil, err
		}
		if in.Srcs[1].Kind != OperVGPR {
			return fail("VOP2 src1 must be a VGPR (use VOP3 or commute)")
		}
		src0, err := encodeSrc(in.Srcs[0], true, &lits)
		if err != nil {
			return nil, err
		}
		w0 = uint32(code)<<25 | vdst<<17 | uint32(in.Srcs[1].Index)<<9 | uint32(src0)
	case FmtVOP1:
		vdst, err := vgpr(in.Dst)
		if err != nil {
			return nil, err
		}
		src0, err := encodeSrc(in.Srcs[0], true, &lits)
		if err != nil {
			return nil, err
		}
		w0 = 0x3F<<25 | vdst<<17 | uint32(code)<<9 | uint32(src0)
	case FmtVOPC:
		if in.Srcs[1].Kind != OperVGPR {
			return fail("VOPC src1 must be a VGPR")
		}
		src0, err := encodeSrc(in.Srcs[0], true, &lits)
		if err != nil {
			return nil, err
		}
		w0 = 0x3E<<25 | uint32(code)<<17 | uint32(in.Srcs[1].Index)<<9 | uint32(src0)
	case FmtSOP2:
		if code >= 128 {
			return fail("opcode space overflow")
		}
		sdst, err := encodeSDst(in.Dst)
		if err != nil {
			return nil, err
		}
		s0, err := encodeSrc(in.Srcs[0], false, &lits)
		if err != nil {
			return nil, err
		}
		s1, err := encodeSrc(in.Srcs[1], false, &lits)
		if err != nil {
			return nil, err
		}
		w0 = 0b10<<30 | uint32(code)<<23 | uint32(sdst)<<16 | uint32(s1)<<8 | uint32(s0)
	case FmtSOP1:
		sdst, err := encodeSDst(in.Dst)
		if err != nil {
			return nil, err
		}
		s0, err := encodeSrc(in.Srcs[0], false, &lits)
		if err != nil {
			return nil, err
		}
		w0 = 0b101111101<<23 | uint32(sdst)<<16 | uint32(code)<<8 | uint32(s0)
	case FmtSOPC:
		s0, err := encodeSrc(in.Srcs[0], false, &lits)
		if err != nil {
			return nil, err
		}
		s1, err := encodeSrc(in.Srcs[1], false, &lits)
		if err != nil {
			return nil, err
		}
		w0 = 0b101111110<<23 | uint32(code)<<16 | uint32(s1)<<8 | uint32(s0)
	case FmtSOPP:
		imm := in.SImm
		if in.Op == OpSWaitcnt {
			imm = waitcntImm(in.VMCnt, in.LGKMCnt)
		}
		w0 = 0b101111111<<23 | uint32(code)<<16 | uint32(imm)
	case FmtSMEM:
		if in.Srcs[0].Kind != OperSGPR {
			return fail("SMEM base must be an SGPR pair")
		}
		sdata, err := encodeSDst(in.Dst)
		if err != nil {
			return nil, err
		}
		if in.Offset < 0 || in.Offset >= 1<<20 {
			return fail("SMEM offset %#x out of range", in.Offset)
		}
		w0 = 0b110000<<26 | uint32(code)<<18 | uint32(sdata)<<11 | uint32(in.Srcs[0].Index)<<4
		w1 = uint32(in.Offset)
	case FmtVOP3:
		var vdst uint32
		switch in.Dst.Kind {
		case OperVGPR:
			vdst = uint32(in.Dst.Index)
		case OperSGPR: // v_cmp to SGPR pair: dst field reused
			vdst = uint32(in.Dst.Index)
		case OperVCC:
			vdst = srcVCC
		default:
			return fail("bad VOP3 destination")
		}
		sdst, err := encodeSDst(in.SDst)
		if err != nil {
			return nil, err
		}
		var srcCodes [3]uint32
		for i := 0; i < in.Op.NSrc(); i++ {
			if in.Srcs[i].Kind == OperLit {
				return fail("VOP3 cannot encode literals")
			}
			c, err := encodeSrc(in.Srcs[i], true, &lits)
			if err != nil {
				return nil, err
			}
			srcCodes[i] = uint32(c)
		}
		w0 = 0b110100<<26 | uint32(code)<<16 | vdst<<8 | uint32(sdst)<<1
		if in.Op == OpVCmp && in.Dst.Kind == OperSGPR {
			w0 |= 1 // flag: dst field names an SGPR pair
		}
		w1 = srcCodes[2]<<18 | srcCodes[1]<<9 | srcCodes[0]
	case FmtFLAT:
		var addr, data, vdst uint32
		a, err := vgpr(in.Srcs[0])
		if err != nil {
			return nil, err
		}
		addr = a
		if in.Op.IsStore() || in.Op == OpFlatAtomicAdd {
			d, err := vgpr(in.Srcs[1])
			if err != nil {
				return nil, err
			}
			data = d
		}
		if in.Dst.Kind == OperVGPR {
			vdst = uint32(in.Dst.Index)
		}
		w0 = 0b110111<<26 | uint32(code)<<18
		w1 = vdst<<16 | data<<8 | addr
	case FmtDS:
		a, err := vgpr(in.Srcs[0])
		if err != nil {
			return nil, err
		}
		var data, vdst uint32
		if in.Op.IsStore() || in.Op == OpDSAddU32 {
			d, err := vgpr(in.Srcs[1])
			if err != nil {
				return nil, err
			}
			data = d
		}
		if in.Dst.Kind == OperVGPR {
			vdst = uint32(in.Dst.Index)
		}
		if in.Offset < 0 || in.Offset >= 1<<16 {
			return fail("DS offset %#x out of range", in.Offset)
		}
		w0 = 0b110110<<26 | uint32(code)<<18 | uint32(in.Offset)
		w1 = vdst<<16 | data<<8 | a
	default:
		return fail("unhandled format %s", f)
	}
	if len(lits) > 1 {
		return fail("multiple literal constants")
	}
	if len(lits) == 1 && !f.AllowsLiteral() {
		return fail("literal constant in %s format", f)
	}
	buf := make([]byte, 0, 12)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], w0)
	buf = append(buf, b4[:]...)
	if f.BaseBytes() == 8 {
		binary.LittleEndian.PutUint32(b4[:], w1)
		buf = append(buf, b4[:]...)
	}
	for _, l := range lits {
		binary.LittleEndian.PutUint32(b4[:], l)
		buf = append(buf, b4[:]...)
	}
	if len(buf) != in.SizeBytes() {
		return fail("size mismatch: encoded %d, SizeBytes %d", len(buf), in.SizeBytes())
	}
	return buf, nil
}
