package gcn3

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// CodeObject is the finalized kernel container: machine code plus the
// metadata the loader and packet processor need (the role the amdhsa code
// object's ELF notes play in the real ROCm stack). Unlike BRIG, the text
// section holds real hardware encodings that the timing model fetches from
// simulated memory at their true variable sizes.
type CodeObject struct {
	Name string
	// NumVGPRs / NumSGPRs are the per-wavefront register demands the
	// allocator settled on; dispatch uses them for occupancy limits.
	NumVGPRs int
	NumSGPRs int
	// KernargSize is the kernarg segment size in bytes.
	KernargSize int
	// GroupSize is the static LDS demand in bytes.
	GroupSize int
	// PrivateSize is the per-work-item scratch demand in bytes (private
	// and spill segments combined, as finalized).
	PrivateSize int
	// WorkItemIDDims is how many work-item ID VGPRs the ABI initializes
	// (v0=X always; v1=Y and v2=Z on request), per the kernel descriptor's
	// enable_vgpr_workitem_id field in the real amdhsa ABI.
	WorkItemIDDims int
	// Program is the laid-out instruction stream.
	Program *Program
}

var codeObjectMagic = [8]byte{'G', 'C', 'N', '3', '-', 'G', 'O', '1'}

// Encode serializes the code object (header + encoded text section).
func (co *CodeObject) Encode() ([]byte, error) {
	text, err := EncodeProgram(co.Program)
	if err != nil {
		return nil, fmt.Errorf("gcn3: code object %q: %w", co.Name, err)
	}
	var buf bytes.Buffer
	buf.Write(codeObjectMagic[:])
	w := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck // bytes.Buffer cannot fail
	w(uint32(len(co.Name)))
	buf.WriteString(co.Name)
	w(uint32(co.NumVGPRs))
	w(uint32(co.NumSGPRs))
	w(uint32(co.KernargSize))
	w(uint32(co.GroupSize))
	w(uint32(co.PrivateSize))
	w(uint32(co.WorkItemIDDims))
	w(uint32(len(text)))
	buf.Write(text)
	return buf.Bytes(), nil
}

// DecodeCodeObject parses an encoded code object.
func DecodeCodeObject(data []byte) (*CodeObject, error) {
	if len(data) < 8 || !bytes.Equal(data[:8], codeObjectMagic[:]) {
		return nil, fmt.Errorf("gcn3: bad code object magic")
	}
	off := 8
	u32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, io.ErrUnexpectedEOF
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	nameLen, err := u32()
	if err != nil {
		return nil, err
	}
	if off+int(nameLen) > len(data) {
		return nil, io.ErrUnexpectedEOF
	}
	co := &CodeObject{Name: string(data[off : off+int(nameLen)])}
	off += int(nameLen)
	fields := []*int{&co.NumVGPRs, &co.NumSGPRs, &co.KernargSize, &co.GroupSize,
		&co.PrivateSize, &co.WorkItemIDDims}
	for _, f := range fields {
		v, err := u32()
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	textLen, err := u32()
	if err != nil {
		return nil, err
	}
	if off+int(textLen) > len(data) {
		return nil, io.ErrUnexpectedEOF
	}
	prog, err := DecodeProgram(data[off : off+int(textLen)])
	if err != nil {
		return nil, err
	}
	co.Program = prog
	return co, nil
}
