package gcn3

import (
	"fmt"
	"strings"

	"ilsim/internal/isa"
)

// OperKind distinguishes GCN3 operand kinds.
type OperKind uint8

// Operand kinds.
const (
	// OperNone marks an absent operand.
	OperNone OperKind = iota
	// OperVGPR is a vector register (per-lane 32-bit; wide values use
	// consecutive registers starting at Index).
	OperVGPR
	// OperSGPR is a scalar register (64-bit values use an aligned pair).
	OperSGPR
	// OperVCC is the vector condition code, a 64-bit per-lane mask.
	OperVCC
	// OperEXEC is the 64-bit execution mask.
	OperEXEC
	// OperSCC is the scalar condition code bit.
	OperSCC
	// OperInline is an inline constant representable in the 9-bit source
	// encoding: integers -16..64 or the eight special float constants.
	OperInline
	// OperLit is a 32-bit literal constant appended to the encoding.
	OperLit
)

// Operand is a GCN3 operand.
type Operand struct {
	Kind  OperKind
	Index uint16 // register index for VGPR/SGPR
	Val   uint32 // constant bits for OperInline/OperLit
}

// VReg returns a VGPR operand.
func VReg(i int) Operand { return Operand{Kind: OperVGPR, Index: uint16(i)} }

// SReg returns an SGPR operand.
func SReg(i int) Operand { return Operand{Kind: OperSGPR, Index: uint16(i)} }

// VCC returns the VCC operand.
func VCC() Operand { return Operand{Kind: OperVCC} }

// EXEC returns the EXEC operand.
func EXEC() Operand { return Operand{Kind: OperEXEC} }

// Lit returns a literal-constant operand.
func Lit(v uint32) Operand { return Operand{Kind: OperLit, Val: v} }

// Inline returns an inline-constant operand. The encoder verifies the value
// is actually representable inline for the instruction's type.
func Inline(v uint32) Operand { return Operand{Kind: OperInline, Val: v} }

// IsReg reports whether the operand names architectural register state.
func (o Operand) IsReg() bool {
	return o.Kind == OperVGPR || o.Kind == OperSGPR || o.Kind == OperVCC || o.Kind == OperEXEC || o.Kind == OperSCC
}

// IsConst reports whether the operand is a constant.
func (o Operand) IsConst() bool { return o.Kind == OperInline || o.Kind == OperLit }

// Inst is one GCN3 machine instruction.
type Inst struct {
	Op      Op
	Type    isa.DataType // operation type (selects the _u32/_f64/... variant)
	SrcType isa.DataType // source type for v_cvt
	Cmp     isa.CmpOp    // comparison for v_cmp / s_cmp
	Dst     Operand      // primary destination
	SDst    Operand      // scalar co-destination (VCC for v_add_u32 carry, v_div_scale)
	Srcs    [3]Operand
	Target  int32  // branch target: program instruction index
	Offset  int32  // SMEM/DS immediate byte offset
	SImm    uint16 // SOPP immediate payload (s_nop count)
	VMCnt   int8   // s_waitcnt vector-memory count; -1 = unconstrained
	LGKMCnt int8   // s_waitcnt LDS/GDS/konstant/message count; -1 = unconstrained
}

// Format returns the encoding format, accounting for VOP3 promotions: v_cmp
// writing an SGPR pair and v_cndmask with an explicit SGPR selector use the
// 8-byte VOP3 encoding, as on real hardware.
func (in *Inst) Format() Format {
	f := in.Op.baseFormat()
	switch in.Op {
	case OpVCmp:
		if in.Dst.Kind == OperSGPR {
			return FmtVOP3
		}
	case OpVCndmask:
		if in.Srcs[2].Kind == OperSGPR {
			return FmtVOP3
		}
	case OpVAdd, OpVSub, OpVMul, OpVMin, OpVMax, OpVLshl, OpVLshr, OpVAshr:
		// 64-bit VALU forms are VOP3-encoded.
		if in.Type.Regs() == 2 {
			return FmtVOP3
		}
	case OpSMov, OpSNot, OpSAnd, OpSOr, OpSXor:
		// Scalar ops keep their 4-byte formats regardless of width.
	}
	return f
}

// NumLiterals counts literal operands (the encoder permits at most one, and
// only in 4-byte formats, per the GCN3 rule).
func (in *Inst) NumLiterals() int {
	n := 0
	for _, s := range in.Srcs[:in.Op.NSrc()] {
		if s.Kind == OperLit {
			n++
		}
	}
	return n
}

// SizeBytes returns the encoded size: the format's base size plus 4 for a
// literal constant.
func (in *Inst) SizeBytes() int {
	return in.Format().BaseBytes() + 4*in.NumLiterals()
}

// Category returns the execution-resource category.
func (in *Inst) Category() isa.Category { return in.Op.Category() }

// DstRegs returns the number of 32-bit registers written by Dst.
func (in *Inst) DstRegs() int {
	switch in.Op {
	case OpSLoadDwordx2, OpFlatLoadDwordx2, OpDSReadB64:
		return 2
	case OpSLoadDwordx4:
		return 4
	case OpSAndSaveexec, OpSOrSaveexec:
		return 2
	case OpVCmp:
		if in.Dst.Kind == OperSGPR {
			return 2
		}
		return 2 // VCC is a 64-bit mask
	case OpSMov, OpSNot, OpSAnd, OpSOr, OpSXor, OpSAndN2:
		return in.Type.Regs()
	case OpVCvt:
		return in.Type.Regs()
	case OpFlatStoreDword, OpFlatStoreDwordx2, OpDSWriteB32, OpDSWriteB64,
		OpSEndpgm, OpSBranch, OpSBarrier, OpSNop, OpSWaitcnt, OpSCmp,
		OpSCbranchSCC0, OpSCbranchSCC1, OpSCbranchVCCZ, OpSCbranchVCCNZ,
		OpSCbranchExecZ, OpSCbranchExecNZ:
		return 0
	default:
		if r := in.Type.Regs(); r > 0 {
			return r
		}
		return 1
	}
}

// SrcRegs returns the number of 32-bit registers read by source i when it is
// a register operand.
func (in *Inst) SrcRegs(i int) int {
	switch in.Op {
	case OpSLoadDword, OpSLoadDwordx2, OpSLoadDwordx4:
		return 2 // sbase is an SGPR pair holding a 64-bit address
	case OpFlatLoadDword, OpFlatLoadDwordx2:
		return 2 // 64-bit flat address VGPR pair
	case OpFlatStoreDword, OpFlatStoreDwordx2, OpFlatAtomicAdd:
		if i == 0 {
			return 2 // address pair
		}
		if in.Op == OpFlatStoreDwordx2 {
			return 2
		}
		return 1
	case OpDSReadB32, OpDSReadB64, OpDSWriteB32, OpDSWriteB64, OpDSAddU32:
		if i == 0 {
			return 1 // 32-bit LDS byte address
		}
		if in.Op == OpDSWriteB64 {
			return 2
		}
		return 1
	case OpSAndSaveexec, OpSOrSaveexec:
		return 2
	case OpVCndmask:
		if i == 2 {
			return 2 // mask selector
		}
		return in.Type.Regs()
	case OpVCvt:
		if in.SrcType != isa.TypeNone {
			return in.SrcType.Regs()
		}
		return 1
	case OpVLshl, OpVLshr, OpVAshr:
		if i == 0 {
			return 1 // shift amount is 32-bit (rev operand order)
		}
		return in.Type.Regs()
	case OpVDivFmas, OpVDivFixup, OpVDivScale:
		return in.Type.Regs()
	case OpSCmp, OpVCmp:
		t := in.Type
		if in.SrcType != isa.TypeNone {
			t = in.SrcType
		}
		if r := t.Regs(); r > 0 {
			return r
		}
		return 1
	default:
		if r := in.Type.Regs(); r > 0 {
			return r
		}
		return 1
	}
}

// Mnemonic renders the full mnemonic including type suffixes.
func (in *Inst) Mnemonic() string {
	base := in.Op.String()
	switch in.Op {
	case OpSEndpgm, OpSBranch, OpSBarrier, OpSNop, OpSWaitcnt,
		OpSCbranchSCC0, OpSCbranchSCC1, OpSCbranchVCCZ, OpSCbranchVCCNZ,
		OpSCbranchExecZ, OpSCbranchExecNZ,
		OpSLoadDword, OpSLoadDwordx2, OpSLoadDwordx4,
		OpFlatLoadDword, OpFlatLoadDwordx2, OpFlatStoreDword,
		OpFlatStoreDwordx2, OpDSReadB32, OpDSWriteB32, OpDSReadB64, OpDSWriteB64:
		return base
	case OpFlatAtomicAdd:
		return base + "_u32"
	case OpVCmp, OpSCmp:
		t := in.Type
		if in.SrcType != isa.TypeNone {
			t = in.SrcType
		}
		return fmt.Sprintf("%s_%s_%s", base, in.Cmp, t)
	case OpVCvt:
		return fmt.Sprintf("%s_%s_%s", base, in.Type, in.SrcType)
	case OpSAndSaveexec, OpSOrSaveexec, OpSAndN2:
		return base + "_b64"
	case OpVCndmask:
		return base + "_b32"
	}
	if in.Type == isa.TypeNone {
		return base
	}
	return fmt.Sprintf("%s_%s", base, in.Type)
}

// operandString renders an operand spanning n registers.
func operandString(o Operand, n int) string {
	switch o.Kind {
	case OperVGPR:
		if n > 1 {
			return fmt.Sprintf("v[%d:%d]", o.Index, int(o.Index)+n-1)
		}
		return fmt.Sprintf("v%d", o.Index)
	case OperSGPR:
		if n > 1 {
			return fmt.Sprintf("s[%d:%d]", o.Index, int(o.Index)+n-1)
		}
		return fmt.Sprintf("s%d", o.Index)
	case OperVCC:
		return "vcc"
	case OperEXEC:
		return "exec"
	case OperSCC:
		return "scc"
	case OperInline:
		return fmt.Sprintf("%d", int32(o.Val))
	case OperLit:
		return fmt.Sprintf("0x%x", o.Val)
	}
	return "?"
}

// String disassembles the instruction.
func (in *Inst) String() string {
	switch in.Op {
	case OpSEndpgm, OpSBarrier:
		return in.Mnemonic()
	case OpSNop:
		return fmt.Sprintf("s_nop %d", in.SImm)
	case OpSWaitcnt:
		var parts []string
		if in.VMCnt >= 0 {
			parts = append(parts, fmt.Sprintf("vmcnt(%d)", in.VMCnt))
		}
		if in.LGKMCnt >= 0 {
			parts = append(parts, fmt.Sprintf("lgkmcnt(%d)", in.LGKMCnt))
		}
		if len(parts) == 0 {
			parts = append(parts, "0")
		}
		return "s_waitcnt " + strings.Join(parts, " ")
	case OpSBranch, OpSCbranchSCC0, OpSCbranchSCC1, OpSCbranchVCCZ,
		OpSCbranchVCCNZ, OpSCbranchExecZ, OpSCbranchExecNZ:
		return fmt.Sprintf("%s label_%d", in.Mnemonic(), in.Target)
	case OpSLoadDword, OpSLoadDwordx2, OpSLoadDwordx4:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Mnemonic(),
			operandString(in.Dst, in.DstRegs()), operandString(in.Srcs[0], 2), in.Offset)
	case OpSCmp:
		return fmt.Sprintf("%s %s, %s", in.Mnemonic(),
			operandString(in.Srcs[0], in.SrcRegs(0)), operandString(in.Srcs[1], in.SrcRegs(1)))
	case OpDSReadB32, OpDSReadB64:
		return fmt.Sprintf("%s %s, %s offset:%d", in.Mnemonic(),
			operandString(in.Dst, in.DstRegs()), operandString(in.Srcs[0], 1), in.Offset)
	case OpDSWriteB32, OpDSWriteB64:
		return fmt.Sprintf("%s %s, %s offset:%d", in.Mnemonic(),
			operandString(in.Srcs[0], 1), operandString(in.Srcs[1], in.SrcRegs(1)), in.Offset)
	case OpDSAddU32:
		return fmt.Sprintf("%s %s, %s, %s offset:%d", in.Mnemonic(),
			operandString(in.Dst, 1), operandString(in.Srcs[0], 1),
			operandString(in.Srcs[1], 1), in.Offset)
	case OpFlatLoadDword, OpFlatLoadDwordx2:
		return fmt.Sprintf("%s %s, %s", in.Mnemonic(),
			operandString(in.Dst, in.DstRegs()), operandString(in.Srcs[0], 2))
	case OpFlatStoreDword, OpFlatStoreDwordx2:
		return fmt.Sprintf("%s %s, %s", in.Mnemonic(),
			operandString(in.Srcs[0], 2), operandString(in.Srcs[1], in.SrcRegs(1)))
	case OpFlatAtomicAdd:
		return fmt.Sprintf("%s %s, %s, %s glc", in.Mnemonic(),
			operandString(in.Dst, 1), operandString(in.Srcs[0], 2), operandString(in.Srcs[1], 1))
	}
	s := in.Mnemonic() + " " + operandString(in.Dst, in.DstRegs())
	if in.SDst.Kind != OperNone {
		s += ", " + operandString(in.SDst, 2)
	}
	for i := 0; i < in.Op.NSrc(); i++ {
		s += ", " + operandString(in.Srcs[i], in.SrcRegs(i))
	}
	// v_add_u32 carries through VCC implicitly; v_cndmask VOP2 selects on VCC.
	if in.Op == OpVCndmask && in.Srcs[2].Kind == OperVCC {
		// already printed as src
		_ = s
	}
	return s
}

// Program is a laid-out GCN3 instruction sequence.
type Program struct {
	Insts []Inst
	// PCs[i] is the byte address of instruction i relative to the kernel
	// entry (computed by Layout).
	PCs []uint64
	// byPC[pc/4] is the index of the instruction starting at byte offset
	// pc, or -1 for mid-instruction words (computed by Layout; encodings
	// are 4-byte words, so the table is dense and IndexAt is O(1)).
	byPC []int32
	// Size is the total encoded size in bytes.
	Size int
}

// Layout assigns byte addresses using each instruction's encoded size.
func (p *Program) Layout() {
	p.PCs = make([]uint64, len(p.Insts))
	off := uint64(0)
	for i := range p.Insts {
		p.PCs[i] = off
		off += uint64(p.Insts[i].SizeBytes())
	}
	p.Size = int(off)
	p.byPC = make([]int32, off/4)
	for i := range p.byPC {
		p.byPC[i] = -1
	}
	for i, pc := range p.PCs {
		p.byPC[pc/4] = int32(i)
	}
}

// ByPCStale reports whether the layout tables need recomputing.
func (p *Program) ByPCStale() bool {
	return len(p.PCs) != len(p.Insts) || p.byPC == nil
}

// IndexAt returns the instruction index at byte offset pc, or -1.
func (p *Program) IndexAt(pc uint64) int {
	if p.byPC != nil {
		if pc%4 == 0 && pc/4 < uint64(len(p.byPC)) {
			return int(p.byPC[pc/4])
		}
		return -1
	}
	lo, hi := 0, len(p.PCs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if p.PCs[mid] == pc {
			return mid
		}
		if p.PCs[mid] < pc {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return -1
}

// Disassemble renders the program with byte offsets.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	for i := range p.Insts {
		pc := uint64(0)
		if i < len(p.PCs) {
			pc = p.PCs[i]
		}
		fmt.Fprintf(&sb, "  0x%04x: %s\n", pc, p.Insts[i].String())
	}
	return sb.String()
}
