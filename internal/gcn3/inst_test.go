package gcn3

import (
	"strings"
	"testing"

	"ilsim/internal/isa"
)

func TestFormatPromotions(t *testing.T) {
	cases := []struct {
		in   Inst
		want Format
	}{
		// v_cmp to VCC stays VOPC; to an SGPR pair promotes to VOP3.
		{Inst{Op: OpVCmp, Type: isa.TypeU32, Dst: VCC()}, FmtVOPC},
		{Inst{Op: OpVCmp, Type: isa.TypeU32, Dst: SReg(10)}, FmtVOP3},
		// v_cndmask with VCC selector is VOP2; SGPR selector promotes.
		{Inst{Op: OpVCndmask, Type: isa.TypeB32, Srcs: [3]Operand{VReg(0), VReg(1), VCC()}}, FmtVOP2},
		{Inst{Op: OpVCndmask, Type: isa.TypeB32, Srcs: [3]Operand{VReg(0), VReg(1), SReg(4)}}, FmtVOP3},
		// 64-bit arithmetic promotes.
		{Inst{Op: OpVAdd, Type: isa.TypeU32}, FmtVOP2},
		{Inst{Op: OpVAdd, Type: isa.TypeF64}, FmtVOP3},
		{Inst{Op: OpVMin, Type: isa.TypeF64}, FmtVOP3},
		// Scalar widths do not change format.
		{Inst{Op: OpSMov, Type: isa.TypeB64}, FmtSOP1},
		{Inst{Op: OpSAnd, Type: isa.TypeB64}, FmtSOP2},
	}
	for _, c := range cases {
		if got := c.in.Format(); got != c.want {
			t.Errorf("%s (%s): format %s, want %s", c.in.Op, c.in.Type, got, c.want)
		}
	}
}

func TestDisassemblyForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want []string
	}{
		{Inst{Op: OpVAdd, Type: isa.TypeU32, Dst: VReg(117), SDst: VCC(),
			Srcs: [3]Operand{SReg(4), VReg(0)}},
			[]string{"v_add_u32 v117, vcc, s4, v0"}}, // paper Table 1's final line
		{Inst{Op: OpSLoadDword, Dst: SReg(10), Srcs: [3]Operand{SReg(4)}, Offset: 4},
			[]string{"s_load_dword s10, s[4:5], 0x4"}},
		{Inst{Op: OpSBfe, Type: isa.TypeU32, Dst: SReg(4), Srcs: [3]Operand{SReg(10), Lit(0x100000)}},
			[]string{"s_bfe_u32 s4, s10, 0x100000"}},
		{Inst{Op: OpSWaitcnt, VMCnt: -1, LGKMCnt: 0}, []string{"s_waitcnt lgkmcnt(0)"}},
		{Inst{Op: OpSWaitcnt, VMCnt: 3, LGKMCnt: -1}, []string{"s_waitcnt vmcnt(3)"}},
		{Inst{Op: OpVDivScale, Type: isa.TypeF64, Dst: VReg(3), SDst: VCC(),
			Srcs: [3]Operand{VReg(1), VReg(1), SReg(4)}},
			[]string{"v_div_scale_f64", "v[3:4]", "vcc", "v[1:2]", "s[4:5]"}},
		{Inst{Op: OpFlatLoadDwordx2, Dst: VReg(2), Srcs: [3]Operand{VReg(10)}},
			[]string{"flat_load_dwordx2 v[2:3], v[10:11]"}},
		{Inst{Op: OpDSWriteB32, Srcs: [3]Operand{VReg(2), VReg(5)}, Offset: 128},
			[]string{"ds_write_b32 v2, v5 offset:128"}},
		{Inst{Op: OpSAndSaveexec, Type: isa.TypeB64, Dst: SReg(14), Srcs: [3]Operand{VCC()}},
			[]string{"s_and_saveexec_b64 s[14:15], vcc"}},
		{Inst{Op: OpVCmp, Type: isa.TypeF64, Cmp: isa.CmpLt, Dst: SReg(20),
			Srcs: [3]Operand{VReg(2), VReg(4)}},
			[]string{"v_cmp_lt_f64 s[20:21], v[2:3], v[4:5]"}},
	}
	for _, c := range cases {
		got := c.in.String()
		for _, frag := range c.want {
			if !strings.Contains(got, frag) {
				t.Errorf("disasm %q missing %q", got, frag)
			}
		}
	}
}

func TestSizeRulesMatchGCN3(t *testing.T) {
	// Every 4-byte format with a literal becomes 8; VOP3-class stays 8 and
	// refuses literals at encode time (covered in encode_test).
	narrow := Inst{Op: OpVMov, Type: isa.TypeB32, Dst: VReg(0), Srcs: [3]Operand{Inline(1)}}
	if narrow.SizeBytes() != 4 {
		t.Fatalf("VOP1 inline: %d bytes", narrow.SizeBytes())
	}
	lit := Inst{Op: OpVMov, Type: isa.TypeB32, Dst: VReg(0), Srcs: [3]Operand{Lit(12345)}}
	if lit.SizeBytes() != 8 {
		t.Fatalf("VOP1 + literal: %d bytes", lit.SizeBytes())
	}
	wide := Inst{Op: OpFlatLoadDword, Dst: VReg(0), Srcs: [3]Operand{VReg(2)}}
	if wide.SizeBytes() != 8 {
		t.Fatalf("FLAT: %d bytes", wide.SizeBytes())
	}
}

func TestProgramIndexAt(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: OpSMov, Type: isa.TypeB32, Dst: SReg(0), Srcs: [3]Operand{Inline(0)}}, // 4B
		{Op: OpFlatLoadDword, Dst: VReg(1), Srcs: [3]Operand{VReg(2)}},             // 8B
		{Op: OpSEndpgm}, // 4B
	}}
	p.Layout()
	if p.Size != 16 {
		t.Fatalf("size %d", p.Size)
	}
	for i, pc := range p.PCs {
		if got := p.IndexAt(pc); got != i {
			t.Errorf("IndexAt(%#x) = %d, want %d", pc, got, i)
		}
	}
	if p.IndexAt(2) != -1 || p.IndexAt(100) != -1 {
		t.Error("IndexAt accepted bad offsets")
	}
}

func TestCategoryMapping(t *testing.T) {
	checks := map[Op]isa.Category{
		OpVAdd:          isa.CatVALU,
		OpVCmp:          isa.CatVALU,
		OpSAdd:          isa.CatSALU,
		OpSAndSaveexec:  isa.CatSALU,
		OpSLoadDword:    isa.CatSMem,
		OpFlatLoadDword: isa.CatVMem,
		OpFlatAtomicAdd: isa.CatVMem,
		OpDSReadB32:     isa.CatLDS,
		OpSBranch:       isa.CatBranch,
		OpSCbranchExecZ: isa.CatBranch,
		OpSWaitcnt:      isa.CatWaitcnt,
		OpSNop:          isa.CatMisc,
		OpSBarrier:      isa.CatMisc,
		OpSEndpgm:       isa.CatMisc,
	}
	for op, want := range checks {
		if got := op.Category(); got != want {
			t.Errorf("%s: category %s, want %s", op, got, want)
		}
	}
}

func TestRegWidthMetadata(t *testing.T) {
	ld2 := Inst{Op: OpFlatLoadDwordx2, Dst: VReg(4), Srcs: [3]Operand{VReg(8)}}
	if ld2.DstRegs() != 2 || ld2.SrcRegs(0) != 2 {
		t.Errorf("flat_load_dwordx2 widths: dst %d src %d", ld2.DstRegs(), ld2.SrcRegs(0))
	}
	s4 := Inst{Op: OpSLoadDwordx4, Dst: SReg(8), Srcs: [3]Operand{SReg(4)}}
	if s4.DstRegs() != 4 || s4.SrcRegs(0) != 2 {
		t.Errorf("s_load_dwordx4 widths: dst %d src %d", s4.DstRegs(), s4.SrcRegs(0))
	}
	st := Inst{Op: OpFlatStoreDwordx2, Srcs: [3]Operand{VReg(0), VReg(2)}}
	if st.DstRegs() != 0 || st.SrcRegs(0) != 2 || st.SrcRegs(1) != 2 {
		t.Errorf("flat_store_dwordx2 widths wrong")
	}
	cmask := Inst{Op: OpVCndmask, Type: isa.TypeB32, Srcs: [3]Operand{VReg(0), VReg(1), SReg(2)}}
	if cmask.SrcRegs(2) != 2 {
		t.Error("cndmask selector must be a 64-bit mask")
	}
	shift := Inst{Op: OpVLshl, Type: isa.TypeB64, Dst: VReg(0), Srcs: [3]Operand{VReg(4), VReg(6)}}
	if shift.SrcRegs(0) != 1 || shift.SrcRegs(1) != 2 {
		t.Error("64-bit shift operand widths wrong")
	}
}
