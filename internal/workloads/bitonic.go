package workloads

import (
	"fmt"
	"sort"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// BitonicSort is a parallel merge sort built from compare-exchange stages.
// Both kernels are completely BRANCH-FREE except for one uniform loop: pair
// indexing is pure shift/mask arithmetic and exchanges are conditional moves
// — the paper notes Bitonic-Sort "does not contain branches, and instead
// uses predication to manage conditionals" (Figure 9 discussion).
//
// Like production GPU implementations, the stages split in two:
//
//   - bitonic_global: one compare-exchange per launch, for spans that cross
//     workgroups (j > 64);
//   - bitonic_local: all spans within a 128-element block run in ONE launch,
//     staged through the LDS with workgroup barriers between stages.
func BitonicSort() *Workload {
	return &Workload{
		Name:        "BitonicSort",
		Description: "Parallel merge sort",
		Prepare:     prepareBitonic,
	}
}

// buildBitonicGlobal is the single compare-exchange stage for (k, j): thread
// t handles the pair
//
//	i  = (t &^ (j-1))*2 + (t & (j-1)),  ix = i | j
//
// sorted ascending when (i & k) == 0.
func buildBitonicGlobal() (*core.KernelSource, error) {
	b := kernel.NewBuilder("bitonic_global")
	dataArg := b.ArgPtr("data")
	jArg := b.ArgU32("j")
	kArg := b.ArgU32("k")
	t := b.WorkItemAbsID(isa.DimX)
	j := b.LoadArg(jArg)
	k := b.LoadArg(kArg)
	jm1 := b.Sub(u32T, j, b.Int(u32T, 1))
	hi := b.And(u32T, t, b.Not(u32T, jm1))
	lo := b.And(u32T, t, jm1)
	i := b.Add(u32T, b.Shl(u32T, hi, b.Int(u32T, 1)), lo)
	ix := b.Or(u32T, i, j)
	base := b.LoadArg(dataArg)
	ai := b.Add(u64T, base, b.Shl(u64T, b.Cvt(u64T, i), b.Int(u64T, 2)))
	aix := b.Add(u64T, base, b.Shl(u64T, b.Cvt(u64T, ix), b.Int(u64T, 2)))
	va := b.Load(hsail.SegGlobal, u32T, ai, 0)
	vb := b.Load(hsail.SegGlobal, u32T, aix, 0)
	asc := b.Cmp(isa.CmpEq, u32T, b.And(u32T, i, k), b.Int(u32T, 0))
	lt := b.Cmp(isa.CmpLe, u32T, va, vb)
	mn := b.Cmov(u32T, lt, va, vb)
	mx := b.Cmov(u32T, lt, vb, va)
	first := b.Cmov(u32T, asc, mn, mx)
	second := b.Cmov(u32T, asc, mx, mn)
	b.Store(hsail.SegGlobal, first, ai, 0)
	b.Store(hsail.SegGlobal, second, aix, 0)
	b.Ret()
	return core.PrepareKernel(b.MustFinish(), finalizer.Options{})
}

// buildBitonicLocal runs every stage with span <= 64 inside a 128-element
// block: load the block into LDS, loop j = jStart, jStart/2, ..., 1 with a
// barrier per stage (a UNIFORM loop — the finalizer emits a scalar branch),
// and store the block back.
func buildBitonicLocal() (*core.KernelSource, error) {
	b := kernel.NewBuilder("bitonic_local")
	dataArg := b.ArgPtr("data")
	jStartArg := b.ArgU32("jstart")
	kArg := b.ArgU32("k")
	b.SetGroupSize(128 * 4)
	lid := b.WorkItemID(isa.DimX)
	wgid := b.WorkGroupID(isa.DimX)
	base := b.LoadArg(dataArg)
	blockBase := b.Shl(u32T, wgid, b.Int(u32T, 7)) // wg * 128 elements
	// Load two elements per thread into LDS.
	g0 := b.Add(u32T, blockBase, lid)
	g1 := b.Add(u32T, g0, b.Int(u32T, 64))
	gAddr := func(g kernel.Val) kernel.Val {
		return b.Add(u64T, base, b.Shl(u64T, b.Cvt(u64T, g), b.Int(u64T, 2)))
	}
	lOff := func(l kernel.Val) kernel.Val {
		return b.Shl(u64T, b.Cvt(u64T, l), b.Int(u64T, 2))
	}
	v0 := b.Load(hsail.SegGlobal, u32T, gAddr(g0), 0)
	v1 := b.Load(hsail.SegGlobal, u32T, gAddr(g1), 0)
	b.Store(hsail.SegGroup, v0, lOff(lid), 0)
	b.Store(hsail.SegGroup, v1, lOff(b.Add(u32T, lid, b.Int(u32T, 64))), 0)
	b.Barrier()

	kv := b.LoadArg(kArg)
	j := b.Mov(u32T, b.LoadArg(jStartArg))
	b.WhileCmp(isa.CmpGt, u32T, j, b.Int(u32T, 0), func() {
		jm1 := b.Sub(u32T, j, b.Int(u32T, 1))
		hi := b.And(u32T, lid, b.Not(u32T, jm1))
		lo := b.And(u32T, lid, jm1)
		i := b.Add(u32T, b.Shl(u32T, hi, b.Int(u32T, 1)), lo)
		ix := b.Or(u32T, i, j)
		va := b.Load(hsail.SegGroup, u32T, lOff(i), 0)
		vb := b.Load(hsail.SegGroup, u32T, lOff(ix), 0)
		// Direction from the GLOBAL index.
		asc := b.Cmp(isa.CmpEq, u32T, b.And(u32T, b.Add(u32T, blockBase, i), kv), b.Int(u32T, 0))
		lt := b.Cmp(isa.CmpLe, u32T, va, vb)
		mn := b.Cmov(u32T, lt, va, vb)
		mx := b.Cmov(u32T, lt, vb, va)
		b.Store(hsail.SegGroup, b.Cmov(u32T, asc, mn, mx), lOff(i), 0)
		b.Store(hsail.SegGroup, b.Cmov(u32T, asc, mx, mn), lOff(ix), 0)
		b.Barrier()
		b.BinaryTo(hsail.OpShr, j, j, b.Int(u32T, 1))
	})

	r0 := b.Load(hsail.SegGroup, u32T, lOff(lid), 0)
	r1 := b.Load(hsail.SegGroup, u32T, lOff(b.Add(u32T, lid, b.Int(u32T, 64))), 0)
	b.Store(hsail.SegGlobal, r0, gAddr(g0), 0)
	b.Store(hsail.SegGlobal, r1, gAddr(g1), 0)
	b.Ret()
	return core.PrepareKernel(b.MustFinish(), finalizer.Options{})
}

func prepareBitonic(scale int) (*Instance, error) {
	n := 1024 * scale
	for n&(n-1) != 0 {
		n++
	}

	global, err := buildBitonicGlobal()
	if err != nil {
		return nil, err
	}
	local, err := buildBitonicLocal()
	if err != nil {
		return nil, err
	}

	r := rng("BitonicSort", scale)
	input := make([]uint32, n)
	for i := range input {
		input[i] = r.Uint32() >> 8
	}

	type bufs struct{ data buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{global, local}}
	inst.Setup = func(m *core.Machine) error {
		data := allocU32(m, input)
		state.put(m, bufs{data: data})
		for k := 2; k <= n; k *= 2 {
			j := k / 2
			// Cross-workgroup spans: one global compare-exchange each.
			for ; j > 64; j /= 2 {
				if err := m.Submit(launch1D(global, n/2, 64, data.addr, uint64(j), uint64(k))); err != nil {
					return err
				}
			}
			// All remaining spans fit a 128-element block: one LDS-staged
			// launch (64 threads per block).
			if err := m.Submit(launch1D(local, n/2, 64, data.addr, uint64(j), uint64(k))); err != nil {
				return err
			}
		}
		return nil
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		want := append([]uint32(nil), input...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := 0; i < n; i++ {
			if got := s.data.u32(m, i); got != want[i] {
				return fmt.Errorf("BitonicSort: data[%d] = %d, want %d", i, got, want[i])
			}
		}
		return nil
	}
	return inst, nil
}
