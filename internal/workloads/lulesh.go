package workloads

import (
	"fmt"
	"math"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// LULESH models the hydrodynamics proxy app the paper leans on most: it is
// "composed of 27 unique kernels", dispatches dynamically MANY times, uses
// the PRIVATE segment for register spilling, and its combined GCN3
// instruction footprint exceeds the 16KB L1 instruction cache while the
// HSAIL approximation does not (paper §V.C) — producing the 10x L1I miss
// increase and the runtime inversion of Figure 12.
func LULESH() *Workload {
	return &Workload{
		Name:        "LULESH",
		Description: "Hydrodynamic simulation",
		Prepare:     prepareLULESH,
	}
}

// luleshKernels is the number of unique kernels, per the paper.
const luleshKernels = 27

// luleshCoef derives kernel k's coefficient set deterministically.
func luleshCoef(k int) (c1, c2, c3, c4, c5 float64, extra int, private bool) {
	c1 = 1.0 + float64(k)*0.125
	c2 = 2.0 + float64(k%5)*0.25
	c3 = 1.5 + float64(k%7)*0.5
	c4 = 0.875 - float64(k%3)*0.125
	c5 = 3.0 + float64(k%4)
	extra = 14 + k%6
	private = k%3 == 0
	return
}

// buildLuleshKernel constructs unique kernel k: f64 element algebra with
// three divides, a square root, an FMA chain, and (for a third of the
// kernels) private-segment spill/fill traffic.
func buildLuleshKernel(k int) (*core.KernelSource, error) {
	c1, c2, c3, c4, c5, extra, private := luleshCoef(k)
	b := kernel.NewBuilder(fmt.Sprintf("lulesh_k%02d", k))
	aArg := b.ArgPtr("a")
	bArg := b.ArgPtr("b")
	oArg := b.ArgPtr("out")
	if private {
		b.SetPrivateSize(16)
	}
	gid := b.WorkItemAbsID(isa.DimX)
	aAddr := gidByteOffset(b, gid, b.LoadArg(aArg), 3)
	bAddr := gidByteOffset(b, gid, b.LoadArg(bArg), 3)
	oAddr := gidByteOffset(b, gid, b.LoadArg(oArg), 3)
	va := b.Load(hsail.SegGlobal, f64T, aAddr, 0)
	vb := b.Load(hsail.SegGlobal, f64T, bAddr, 0)
	t1 := b.Fma(f64T, va, b.F64(c1), vb)
	t2 := b.Div(f64T, b.Add(f64T, va, b.F64(c2)), b.Fma(f64T, vb, vb, b.F64(c3)))
	t3 := b.Sqrt(f64T, b.Add(f64T, b.Abs(f64T, t2), b.F64(1)))
	if private {
		b.Store(hsail.SegPrivate, t1, kernel.NoBase, 0)
		b.Store(hsail.SegPrivate, t3, kernel.NoBase, 8)
	}
	t4 := b.Div(f64T, t1, t3)
	for e := 0; e < extra; e++ {
		t4 = b.Fma(f64T, t4, b.F64(c4), t2)
	}
	// Artificial-viscosity-style secondary term: another divide + sqrt.
	q1 := b.Div(f64T, b.Fma(f64T, t4, t4, b.F64(1)), b.Add(f64T, t3, b.F64(c2)))
	t4 = b.Add(f64T, t4, b.Sqrt(f64T, b.Abs(f64T, q1)))
	if private {
		p1 := b.Load(hsail.SegPrivate, f64T, kernel.NoBase, 0)
		t4 = b.Add(f64T, t4, p1)
	}
	t5 := b.Div(f64T, b.Add(f64T, t4, vb), b.Add(f64T, b.Abs(f64T, va), b.F64(c5)))
	b.Store(hsail.SegGlobal, t5, oAddr, 0)
	b.Ret()
	return core.PrepareKernel(b.MustFinish(), finalizer.Options{})
}

// luleshHost mirrors kernel k on the host.
func luleshHost(k int, va, vb float64) float64 {
	c1, c2, c3, c4, c5, extra, private := luleshCoef(k)
	t1 := math.FMA(va, c1, vb)
	t2 := (va + c2) / math.FMA(vb, vb, c3)
	t3 := math.Sqrt(math.Abs(t2) + 1)
	t4 := t1 / t3
	for e := 0; e < extra; e++ {
		t4 = math.FMA(t4, c4, t2)
	}
	q1 := math.FMA(t4, t4, 1) / (t3 + c2)
	t4 += math.Sqrt(math.Abs(q1))
	if private {
		t4 += t1
	}
	return (t4 + vb) / (math.Abs(va) + c5)
}

func prepareLULESH(scale int) (*Instance, error) {
	grid := 512 * scale
	timesteps := 3 * scale

	kernels := make([]*core.KernelSource, luleshKernels)
	for k := range kernels {
		ks, err := buildLuleshKernel(k)
		if err != nil {
			return nil, fmt.Errorf("lulesh kernel %d: %w", k, err)
		}
		kernels[k] = ks
	}

	r := rng("LULESH", scale)
	a := make([]float64, grid)
	bv := make([]float64, grid)
	// Field data is smooth and quantized (repeated node values), which is
	// what makes the GCN3-exposed address/divide intermediates dominate
	// the paper's LULESH uniqueness result.
	for i := range a {
		a[i] = float64(r.Intn(24))/4 - 3
		bv[i] = float64(r.Intn(24))/4 - 3
	}

	type bufs struct{ outs []buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: kernels}
	inst.Setup = func(m *core.Machine) error {
		aB := allocF64(m, a)
		bB := allocF64(m, bv)
		outs := make([]buf, luleshKernels)
		for k := range outs {
			outs[k] = allocF64(m, make([]float64, grid))
		}
		state.put(m, bufs{outs: outs})
		// Many dynamic launches: every timestep dispatches all 27 kernels.
		for t := 0; t < timesteps; t++ {
			for k, ks := range kernels {
				if err := m.Submit(launch1D(ks, grid, 64, aB.addr, bB.addr, outs[k].addr)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		for k := 0; k < luleshKernels; k++ {
			for i := 0; i < grid; i += 7 {
				want := luleshHost(k, a[i], bv[i])
				if err := checkClose(fmt.Sprintf("LULESH.k%d", k), i, s.outs[k].f64(m, i), want, 1e-10); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return inst, nil
}
