package workloads

import (
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
)

// instMix runs a workload functionally under HSAIL and returns its dynamic
// category counts — the inputs to every per-workload claim in §V.
func instMix(t *testing.T, name string) *stats.Run {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	run := &stats.Run{Workload: name}
	m := core.NewMachine(core.AbsHSAIL, run)
	if err := inst.Setup(m); err != nil {
		t.Fatal(err)
	}
	if err := m.RunFunctional(); err != nil {
		t.Fatal(err)
	}
	return run
}

// staticOps scans a workload's HSAIL kernels for opcode presence.
func staticOps(t *testing.T, name string) map[hsail.Op]int {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[hsail.Op]int{}
	for _, ks := range inst.Kernels {
		for _, b := range ks.HSAIL.Blocks {
			for ii := range b.Insts {
				ops[b.Insts[ii].Op]++
			}
		}
	}
	return ops
}

// TestBitonicSortIsBranchFree: "Bitonic-Sort and HPGMG do not contain
// branches, and instead use predication" (paper §V.C). Element-level
// conditionals must all be conditional moves; the only branches permitted
// are provably UNIFORM loop bounds (BitonicSort's per-stage LDS loop), which
// never engage the reconvergence stack.
func TestBitonicSortIsBranchFree(t *testing.T) {
	for _, name := range []string{"BitonicSort", "HPGMG"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := w.Prepare(1)
		if err != nil {
			t.Fatal(err)
		}
		sawCmov := false
		for _, ks := range inst.Kernels {
			uni := kernel.AnalyzeUniformity(ks.HSAIL, ks.CFG)
			for _, blk := range ks.HSAIL.Blocks {
				for ii := range blk.Insts {
					in := &blk.Insts[ii]
					if in.Op == hsail.OpCmov {
						sawCmov = true
					}
					if in.Op == hsail.OpCBr && !uni.CRegs[in.Srcs[0].Reg] {
						t.Errorf("%s kernel %s has a DIVERGENT branch", name, ks.HSAIL.Name)
					}
				}
			}
		}
		if !sawCmov {
			t.Errorf("%s uses no conditional moves", name)
		}
	}
}

// TestFFTIsComputeBound: "FFT is the most compute-bound application in our
// suite with around 95% of instructions being ALU instructions and very few
// branches... FFT executes no divide instructions" (paper §V.A).
func TestFFTCharacteristics(t *testing.T) {
	ops := staticOps(t, "FFT")
	if ops[hsail.OpDiv] != 0 {
		t.Error("FFT must not contain divide instructions")
	}
	if ops[hsail.OpCmov] == 0 {
		t.Error("FFT should use conditional moves")
	}
	run := instMix(t, "FFT")
	alu := float64(run.InstsByCategory[isa.CatVALU]) / float64(run.TotalInsts())
	if alu < 0.75 {
		t.Errorf("FFT ALU fraction %.2f — should be the suite's most compute-bound", alu)
	}
	br := float64(run.InstsByCategory[isa.CatBranch]) / float64(run.TotalInsts())
	if br > 0.01 {
		t.Errorf("FFT branch fraction %.3f — should be near zero", br)
	}
}

// TestCoMDIsBranchHeavy: "CoMD has one of the highest percentages of HSAIL
// branch instructions" (paper §V.A).
func TestCoMDIsBranchHeavy(t *testing.T) {
	comd := instMix(t, "CoMD")
	comdBr := float64(comd.InstsByCategory[isa.CatBranch]) / float64(comd.TotalInsts())
	if comdBr < 0.05 {
		t.Errorf("CoMD branch fraction %.3f too low", comdBr)
	}
	for _, other := range []string{"FFT", "BitonicSort", "HPGMG", "SNAP", "MD"} {
		o := instMix(t, other)
		oBr := float64(o.InstsByCategory[isa.CatBranch]) / float64(o.TotalInsts())
		if oBr >= comdBr {
			t.Errorf("%s branch fraction %.3f >= CoMD's %.3f", other, oBr, comdBr)
		}
	}
}

// TestLULESHHasManyKernelsAndLaunches: "LULESH is composed of 27 unique
// kernels" with many dynamic launches and private-segment use (§V.C, §VI.A).
func TestLULESHHasManyKernelsAndLaunches(t *testing.T) {
	w, err := ByName("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Kernels) != 27 {
		t.Fatalf("LULESH has %d kernels, want 27", len(inst.Kernels))
	}
	names := map[string]bool{}
	private := 0
	for _, ks := range inst.Kernels {
		if names[ks.HSAIL.Name] {
			t.Errorf("duplicate kernel name %q", ks.HSAIL.Name)
		}
		names[ks.HSAIL.Name] = true
		if ks.HSAIL.PrivateSize > 0 {
			private++
		}
	}
	if private == 0 {
		t.Error("no LULESH kernel uses the private segment")
	}
	run := instMix(t, "LULESH")
	if run.KernelLaunches < 50 {
		t.Errorf("LULESH launched only %d times — the paper's point is MANY dynamic launches", run.KernelLaunches)
	}
}

// TestSpecialSegmentUsers: FFT and LULESH are "the only applications in our
// suite that use special memory segments (spill and private, respectively)"
// (paper §VI.A).
func TestSpecialSegmentUsers(t *testing.T) {
	for _, w := range All() {
		inst, err := w.Prepare(1)
		if err != nil {
			t.Fatal(err)
		}
		usesSpill, usesPrivate := false, false
		for _, ks := range inst.Kernels {
			if ks.HSAIL.SpillSize > 0 {
				usesSpill = true
			}
			if ks.HSAIL.PrivateSize > 0 {
				usesPrivate = true
			}
		}
		switch w.Name {
		case "FFT":
			if !usesSpill {
				t.Error("FFT must use the spill segment")
			}
		case "LULESH":
			if !usesPrivate {
				t.Error("LULESH must use the private segment")
			}
		default:
			if usesSpill || usesPrivate {
				t.Errorf("%s unexpectedly uses special segments", w.Name)
			}
		}
	}
}

// TestUtilizationOrdering: Table 6's utilization bands — CoMD lowest,
// XSBench ~50%, SpMV in the middle, regular workloads ~100%.
func TestUtilizationOrdering(t *testing.T) {
	util := func(name string) float64 { return instMix(t, name).SIMDUtilization() }
	comd, xs, spmv := util("CoMD"), util("XSBench"), util("SpMV")
	md, snap := util("MD"), util("SNAP")
	if !(comd < xs && xs < spmv) {
		t.Errorf("utilization ordering broken: CoMD %.2f, XSBench %.2f, SpMV %.2f", comd, xs, spmv)
	}
	if comd > 0.35 {
		t.Errorf("CoMD utilization %.2f too high (paper ~21-23%%)", comd)
	}
	if xs < 0.35 || xs > 0.75 {
		t.Errorf("XSBench utilization %.2f outside the paper's ~53%% band", xs)
	}
	if md < 0.97 || snap < 0.97 {
		t.Errorf("regular workloads should run ~100%%: MD %.2f SNAP %.2f", md, snap)
	}
}

// TestHSAILNeverUsesMachineCategories: Figure 5's caption — all HSAIL ALU
// instructions are vector instructions; no scalar or waitcnt work exists.
func TestHSAILNeverUsesMachineCategories(t *testing.T) {
	for _, w := range All() {
		run := instMix(t, w.Name)
		if run.InstsByCategory[isa.CatSALU] != 0 ||
			run.InstsByCategory[isa.CatSMem] != 0 ||
			run.InstsByCategory[isa.CatWaitcnt] != 0 {
			t.Errorf("%s: HSAIL produced machine-only categories", w.Name)
		}
	}
}
