package workloads

import (
	"math"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// CoMD models the DOE molecular-dynamics proxy app's force kernel: per-atom
// loops over a neighbor list with a DIVERGENT cutoff branch inside a
// DATA-DEPENDENT loop. CoMD has "one of the highest percentages of HSAIL
// branch instructions, which are then expanded to many GCN3 scalar ALU and
// branch instructions" (paper §V.A).
func CoMD() *Workload {
	return &Workload{
		Name:        "CoMD",
		Description: "DOE molecular-dynamics algorithms",
		Prepare:     prepareCoMD,
	}
}

func prepareCoMD(scale int) (*Instance, error) {
	atoms := 512 * scale
	maxNbr := 16
	const cutoff = float32(6.25)
	const c1 = float32(0.5)

	b := kernel.NewBuilder("comd_force")
	posArg := b.ArgPtr("pos") // x,y,z interleaved (3 f32 per atom)
	nbrPtrArg := b.ArgPtr("nbrptr")
	nbrArg := b.ArgPtr("nbr")
	forceArg := b.ArgPtr("force")
	i := b.WorkItemAbsID(isa.DimX)
	posBase := b.LoadArg(posArg)
	load3 := func(idx kernel.Val) (x, y, z kernel.Val) {
		off := b.Mul(u64T, b.Cvt(u64T, idx), b.Int(u64T, 12))
		a := b.Add(u64T, posBase, off)
		return b.Load(hsail.SegGlobal, f32T, a, 0),
			b.Load(hsail.SegGlobal, f32T, a, 4),
			b.Load(hsail.SegGlobal, f32T, a, 8)
	}
	xi, yi, zi := load3(i)
	npAddr := gidByteOffset(b, i, b.LoadArg(nbrPtrArg), 2)
	start := b.Load(hsail.SegGlobal, u32T, npAddr, 0)
	end := b.Load(hsail.SegGlobal, u32T, npAddr, 4)
	nbrBase := b.LoadArg(nbrArg)
	fx := b.Mov(f32T, b.F32(0))
	fy := b.Mov(f32T, b.F32(0))
	fz := b.Mov(f32T, b.F32(0))
	k := b.Mov(u32T, start)
	b.WhileCmp(isa.CmpLt, u32T, k, end, func() {
		jAddr := b.Add(u64T, nbrBase, b.Shl(u64T, b.Cvt(u64T, k), b.Int(u64T, 2)))
		j := b.Load(hsail.SegGlobal, u32T, jAddr, 0)
		xj, yj, zj := load3(j)
		dx := b.Sub(f32T, xi, xj)
		dy := b.Sub(f32T, yi, yj)
		dz := b.Sub(f32T, zi, zj)
		// Softened squared distance (keeps coincident atoms finite).
		r2 := b.Fma(f32T, dx, dx, b.Fma(f32T, dy, dy, b.Fma(f32T, dz, dz, b.F32(0.01))))
		// Divergent cutoff branch: only close pairs contribute.
		b.IfCmp(isa.CmpLt, f32T, r2, b.F32(cutoff), func() {
			inv := b.Div(f32T, b.F32(1), r2)
			s := b.Fma(f32T, inv, inv, b.Neg(f32T, b.Mul(f32T, b.F32(c1), inv)))
			b.MovTo(fx, b.Fma(f32T, s, dx, fx))
			b.MovTo(fy, b.Fma(f32T, s, dy, fy))
			b.MovTo(fz, b.Fma(f32T, s, dz, fz))
		}, nil)
		b.BinaryTo(hsail.OpAdd, k, k, b.Int(u32T, 1))
	})
	fAddr := b.Add(u64T, b.LoadArg(forceArg), b.Mul(u64T, b.Cvt(u64T, i), b.Int(u64T, 12)))
	b.Store(hsail.SegGlobal, fx, fAddr, 0)
	b.Store(hsail.SegGlobal, fy, fAddr, 4)
	b.Store(hsail.SegGlobal, fz, fAddr, 8)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		return nil, err
	}

	r := rng("CoMD", scale)
	pos := make([]float32, 3*atoms)
	for i := range pos {
		pos[i] = float32(r.Intn(512)) / 32 // grid-snapped positions
	}
	nbrPtr := make([]uint32, atoms+1)
	var nbrs []uint32
	for i := 0; i < atoms; i++ {
		nbrPtr[i] = uint32(len(nbrs))
		// Highly skewed neighbor counts: most atoms sit in sparse cells,
		// a few in dense ones. Lanes with short lists idle while long
		// lists run — CoMD's ~21-23% SIMD utilization (Table 6).
		n := 2 + r.Intn(4)
		if r.Intn(12) == 0 {
			n = maxNbr + r.Intn(2*maxNbr)
		}
		for k := 0; k < n; k++ {
			j := r.Intn(atoms)
			if j == i {
				j = (j + 1) % atoms
			}
			nbrs = append(nbrs, uint32(j))
		}
	}
	nbrPtr[atoms] = uint32(len(nbrs))

	type bufs struct{ force buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{ks}}
	inst.Setup = func(m *core.Machine) error {
		posB := allocF32(m, pos)
		npB := allocU32(m, nbrPtr)
		nbB := allocU32(m, nbrs)
		fB := allocF32(m, make([]float32, 3*atoms))
		state.put(m, bufs{force: fB})
		return m.Submit(launch1D(ks, atoms, 64, posB.addr, npB.addr, nbB.addr, fB.addr))
	}
	fma32 := func(a, b, c float32) float32 {
		return float32(math.FMA(float64(a), float64(b), float64(c)))
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		for i := 0; i < atoms; i++ {
			var fx, fy, fz float32
			for k := nbrPtr[i]; k < nbrPtr[i+1]; k++ {
				j := nbrs[k]
				dx := pos[3*i] - pos[3*j]
				dy := pos[3*i+1] - pos[3*j+1]
				dz := pos[3*i+2] - pos[3*j+2]
				r2 := fma32(dx, dx, fma32(dy, dy, fma32(dz, dz, 0.01)))
				if r2 < cutoff {
					inv := 1 / r2
					s := fma32(inv, inv, -(c1 * inv))
					fx = fma32(s, dx, fx)
					fy = fma32(s, dy, fy)
					fz = fma32(s, dz, fz)
				}
			}
			for c, want := range []float32{fx, fy, fz} {
				if err := checkClose("CoMD", 3*i+c, float64(s.force.f32(m, 3*i+c)), float64(want), 2e-4); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return inst, nil
}
