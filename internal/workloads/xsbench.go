package workloads

import (
	"sort"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// XSBench models the Monte Carlo cross-section lookup benchmark: each
// work-item draws pseudo-random energies (an in-kernel LCG), binary-searches
// a sorted energy grid with conditional moves (uniform trip count — "simple
// control flow amenable to HSAIL", Figure 9), then takes a DIVERGENT
// material branch gathering from an uneven number of nuclide tables, which
// pulls SIMD utilization down to the paper's ~53% (Table 6).
func XSBench() *Workload {
	return &Workload{
		Name:        "XSBench",
		Description: "Monte Carlo particle transport simulation",
		Prepare:     prepareXSBench,
	}
}

const (
	xsLCGMul = 1664525
	xsLCGAdd = 1013904223
)

func prepareXSBench(scale int) (*Instance, error) {
	grid := 1024 * scale
	gridPts := 2048 // energy grid entries (power of two)

	b := kernel.NewBuilder("xs_lookup")
	egridArg := b.ArgPtr("egrid")
	xs0Arg := b.ArgPtr("xs0")
	xs1Arg := b.ArgPtr("xs1")
	xs2Arg := b.ArgPtr("xs2")
	xs3Arg := b.ArgPtr("xs3")
	outArg := b.ArgPtr("out")
	mArg := b.ArgU32("m")
	gid := b.WorkItemAbsID(isa.DimX)
	egrid := b.LoadArg(egridArg)
	xs0 := b.LoadArg(xs0Arg)
	xs1 := b.LoadArg(xs1Arg)
	xs2 := b.LoadArg(xs2Arg)
	xs3 := b.LoadArg(xs3Arg)
	mV := b.LoadArg(mArg)
	seed := b.Mul(u32T, gid, b.Int(u32T, 2654435761))
	seed = b.Add(u32T, seed, b.Int(u32T, 12345))
	seedReg := b.Mov(u32T, seed)
	// Particles sample a DATA-DEPENDENT number of energies (2-9): lanes
	// retire from the lookup loop at different trip counts, the main
	// source of XSBench's ~53% SIMD utilization (Table 6).
	nl := b.Add(u32T, b.And(u32T, b.Shr(u32T, seedReg, b.Int(u32T, 4)), b.Int(u32T, 7)), b.Int(u32T, 2))
	acc := b.Mov(f32T, b.F32(0))
	gather := func(base kernel.Val, idx kernel.Val) kernel.Val {
		return b.Load(hsail.SegReadonly, f32T, b.Add(u64T, base, b.Shl(u64T, b.Cvt(u64T, idx), b.Int(u64T, 2))), 0)
	}
	l := b.Mov(u32T, b.Int(u32T, 0))
	b.WhileCmp(isa.CmpLt, u32T, l, nl, func() {
		// LCG step and energy draw in [0, 1).
		b.MovTo(seedReg, b.Add(u32T, b.Mul(u32T, seedReg, b.Int(u32T, xsLCGMul)), b.Int(u32T, xsLCGAdd)))
		eBits := b.Shr(u32T, seedReg, b.Int(u32T, 8))
		e := b.Mul(f32T, b.Cvt(f32T, eBits), b.F32(1.0/16777216.0))
		// Branch-free binary search: lo tracks the last grid point <= e.
		lo := b.Mov(u32T, b.Int(u32T, 0))
		step := b.Mov(u32T, b.Shr(u32T, mV, b.Int(u32T, 1)))
		b.WhileCmp(isa.CmpGt, u32T, step, b.Int(u32T, 0), func() {
			mid := b.Add(u32T, lo, step)
			ev := gather(egrid, mid)
			c := b.Cmp(isa.CmpLe, f32T, ev, e)
			b.CmovTo(lo, c, mid, lo)
			b.BinaryTo(hsail.OpShr, step, step, b.Int(u32T, 1))
		})
		// Divergent material branch: "fissionable" materials gather from
		// all four nuclide tables, others from one.
		mat := b.And(u32T, seedReg, b.Int(u32T, 7))
		b.IfCmp(isa.CmpLt, u32T, mat, b.Int(u32T, 3), func() {
			s := b.Add(f32T, gather(xs0, lo), gather(xs1, lo))
			s = b.Add(f32T, s, gather(xs2, lo))
			s = b.Add(f32T, s, gather(xs3, lo))
			b.MovTo(acc, b.Add(f32T, acc, s))
		}, func() {
			b.MovTo(acc, b.Add(f32T, acc, gather(xs0, lo)))
		})
		b.BinaryTo(hsail.OpAdd, l, l, b.Int(u32T, 1))
	})
	outAddr := gidByteOffset(b, gid, b.LoadArg(outArg), 2)
	b.Store(hsail.SegGlobal, acc, outAddr, 0)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		return nil, err
	}

	r := rng("XSBench", scale)
	eg := make([]float32, gridPts)
	for i := range eg {
		eg[i] = float32(r.Float64())
	}
	sort.Slice(eg, func(i, j int) bool { return eg[i] < eg[j] })
	eg[0] = 0
	tables := make([][]float32, 4)
	for t := range tables {
		tables[t] = make([]float32, gridPts)
		for i := range tables[t] {
			tables[t][i] = float32(r.Intn(1024)) / 64
		}
	}

	type bufs struct{ out buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{ks}}
	inst.Setup = func(m *core.Machine) error {
		egB := allocF32(m, eg)
		var xsB [4]buf
		for t := range tables {
			xsB[t] = allocF32(m, tables[t])
		}
		outB := allocF32(m, make([]float32, grid))
		state.put(m, bufs{out: outB})
		return m.Submit(launch1D(ks, grid, 64,
			egB.addr, xsB[0].addr, xsB[1].addr, xsB[2].addr, xsB[3].addr, outB.addr, uint64(gridPts)))
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		for g := 0; g < grid; g++ {
			seed := uint32(g)*2654435761 + 12345
			nl := int(seed>>4&7) + 2
			var acc float32
			for l := 0; l < nl; l++ {
				seed = seed*xsLCGMul + xsLCGAdd
				e := float32(seed>>8) * float32(1.0/16777216.0)
				lo := uint32(0)
				for step := uint32(gridPts / 2); step > 0; step >>= 1 {
					mid := lo + step
					if eg[mid] <= e {
						lo = mid
					}
				}
				if seed&7 < 3 {
					acc += tables[0][lo] + tables[1][lo] + tables[2][lo] + tables[3][lo]
				} else {
					acc += tables[0][lo]
				}
			}
			if err := checkClose("XSBench", g, float64(s.out.f32(m, g)), float64(acc), 1e-5); err != nil {
				return err
			}
		}
		return nil
	}
	return inst, nil
}
