package workloads

import (
	"fmt"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// ArrayBW is the memory-streaming microbenchmark: every work-item strides
// through a large global buffer in a tight loop with a UNIFORM trip count —
// the "simple control flow amenable to HSAIL execution" case the paper uses
// to show loop-dominated front ends behave similarly under both ISAs
// (Figure 9) while memory behavior dominates runtime (Figure 12).
func ArrayBW() *Workload {
	return &Workload{
		Name:        "ArrayBW",
		Description: "Memory streaming",
		Prepare:     prepareArrayBW,
	}
}

func prepareArrayBW(scale int) (*Instance, error) {
	grid := 1024 * scale
	iters := 16
	n := grid * iters

	b := kernel.NewBuilder("array_bw")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	itersArg := b.ArgU32("iters")
	gid := b.WorkItemAbsID(isa.DimX)
	inAddr := gidByteOffset(b, gid, b.LoadArg(inArg), 2)
	outAddr := gidByteOffset(b, gid, b.LoadArg(outArg), 2)
	iterV := b.LoadArg(itersArg)
	stride := b.Shl(u64T, b.Cvt(u64T, b.GridSize(isa.DimX)), b.Int(u64T, 2))
	sum := b.Mov(u32T, b.Int(u32T, 0))
	cur := b.Mov(u64T, inAddr)
	i := b.Mov(u32T, b.Int(u32T, 0))
	b.WhileCmp(isa.CmpLt, u32T, i, iterV, func() {
		v := b.Load(hsail.SegGlobal, u32T, cur, 0)
		b.BinaryTo(hsail.OpAdd, sum, sum, v)
		b.BinaryTo(hsail.OpAdd, cur, cur, stride)
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(u32T, 1))
	})
	b.Store(hsail.SegGlobal, sum, outAddr, 0)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		return nil, err
	}

	r := rng("ArrayBW", scale)
	// Streaming data is highly value-redundant (the paper's ArrayBW shows
	// ~12% lane uniqueness under HSAIL): draw from a small value set.
	input := make([]uint32, n)
	for i := range input {
		input[i] = uint32(r.Intn(48))
	}

	type bufs struct{ in, out buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{ks}}
	inst.Setup = func(m *core.Machine) error {
		s := bufs{in: allocU32(m, input), out: allocU32(m, make([]uint32, grid))}
		state.put(m, s)
		return m.Submit(launch1D(ks, grid, 64, s.in.addr, s.out.addr, uint64(iters)))
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		for i := 0; i < grid; i++ {
			want := uint32(0)
			for k := 0; k < iters; k++ {
				want += input[i+k*grid]
			}
			if got := s.out.u32(m, i); got != want {
				return fmt.Errorf("ArrayBW: out[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	}
	return inst, nil
}
