package workloads

import (
	"math"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// FFT performs an independent 8-point complex FFT per work-item, fully
// unrolled — the suite's compute-bound extreme: ~95% ALU instructions, no
// divides, very few branches, and many data-dependent CONDITIONAL MOVES
// (a running magnitude-maximum tracked for scaling). The kernel also spills
// intermediates through the SPILL segment, reproducing the paper's note that
// FFT "uses special segments to spill and fill because of its large register
// demands" (Table 6: the only footprint divergence besides LULESH).
func FFT() *Workload {
	return &Workload{
		Name:        "FFT",
		Description: "Digital signal processing",
		Prepare:     prepareFFT,
	}
}

const (
	fftPoints       = 8
	fftRotateRounds = 3
	fftRotate       = 0.1 // radians per rotation round
)

// fftPasses is the number of dynamic launches; the per-launch spill-segment
// remapping of HSAIL's emulated ABI only shows across repeated dispatches.
const fftPasses = 3

func prepareFFT(scale int) (*Instance, error) {
	grid := 512 * scale
	n := grid * fftPoints * fftPasses

	b := kernel.NewBuilder("fft8")
	inArg := b.ArgPtr("in")   // interleaved re,im
	outArg := b.ArgPtr("out") // interleaved re,im
	maxArg := b.ArgPtr("mag") // per-work-item running max magnitude
	b.SetSpillSize(8 * 4)     // spilled butterfly intermediates
	gid := b.WorkItemAbsID(isa.DimX)
	base := b.Mul(u64T, b.Cvt(u64T, gid), b.Int(u64T, fftPoints*8))
	inBase := b.Add(u64T, b.LoadArg(inArg), base)
	outBase := b.Add(u64T, b.LoadArg(outArg), base)

	// Load 8 complex points in bit-reversed order (DIT).
	rev := [fftPoints]int32{0, 4, 2, 6, 1, 5, 3, 7}
	var re, im [fftPoints]kernel.Val
	for i := 0; i < fftPoints; i++ {
		re[i] = b.Load(hsail.SegGlobal, f32T, inBase, rev[i]*8)
		im[i] = b.Load(hsail.SegGlobal, f32T, inBase, rev[i]*8+4)
	}
	mx := b.Mov(f32T, b.F32(0))
	trackMax := func(r, i kernel.Val) {
		m2 := b.Fma(f32T, r, r, b.Mul(f32T, i, i))
		c := b.Cmp(isa.CmpGt, f32T, m2, mx)
		b.CmovTo(mx, c, m2, mx)
	}
	butterfly := func(a, bIdx int, wr, wi float64) {
		// (t = w * x[b]; x[b] = x[a] - t; x[a] += t)
		tr := b.Sub(f32T, b.Mul(f32T, b.F32(float32(wr)), re[bIdx]), b.Mul(f32T, b.F32(float32(wi)), im[bIdx]))
		ti := b.Add(f32T, b.Mul(f32T, b.F32(float32(wr)), im[bIdx]), b.Mul(f32T, b.F32(float32(wi)), re[bIdx]))
		nr := b.Sub(f32T, re[a], tr)
		ni := b.Sub(f32T, im[a], ti)
		re[bIdx], im[bIdx] = nr, ni
		re[a] = b.Add(f32T, re[a], tr)
		im[a] = b.Add(f32T, im[a], ti)
	}
	stage := func(half int) {
		for k := 0; k < fftPoints; k += 2 * half {
			for j := 0; j < half; j++ {
				ang := -2 * math.Pi * float64(j) / float64(2*half)
				butterfly(k+j, k+j+half, math.Cos(ang), math.Sin(ang))
			}
		}
		// Track the running maximum once per stage (scaling guard).
		trackMax(re[0], im[0])
		trackMax(re[fftPoints/2], im[fftPoints/2])
	}
	stage(1)
	// Spill half the live values between stages and fill them back into
	// fresh virtual registers — the spill/fill traffic of a
	// register-pressured kernel.
	for i := 0; i < 4; i++ {
		b.Store(hsail.SegSpill, re[i], kernel.NoBase, int32(8*i))
		b.Store(hsail.SegSpill, im[i], kernel.NoBase, int32(8*i+4))
	}
	for i := 0; i < 4; i++ {
		re[i] = b.Load(hsail.SegSpill, f32T, kernel.NoBase, int32(8*i))
		im[i] = b.Load(hsail.SegSpill, f32T, kernel.NoBase, int32(8*i+4))
	}
	stage(2)
	stage(4)
	// Spectral-rotation rounds: pure register-resident ALU work (phase
	// correction), which is what makes FFT the suite's most compute-bound
	// member (~95% ALU, paper §V.A) and keeps its GCN3 expansion minimal.
	cr := float32(math.Cos(fftRotate))
	sr := float32(math.Sin(fftRotate))
	for round := 0; round < fftRotateRounds; round++ {
		for i := 0; i < fftPoints; i++ {
			nr := b.Sub(f32T, b.Mul(f32T, re[i], b.F32(cr)), b.Mul(f32T, im[i], b.F32(sr)))
			ni := b.Add(f32T, b.Mul(f32T, re[i], b.F32(sr)), b.Mul(f32T, im[i], b.F32(cr)))
			re[i], im[i] = nr, ni
		}
		trackMax(re[0], im[0])
	}
	for i := 0; i < fftPoints; i++ {
		b.Store(hsail.SegGlobal, re[i], outBase, int32(i*8))
		b.Store(hsail.SegGlobal, im[i], outBase, int32(i*8+4))
	}
	magAddr := gidByteOffset(b, gid, b.LoadArg(maxArg), 2)
	b.Store(hsail.SegGlobal, mx, magAddr, 0)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		return nil, err
	}

	r := rng("FFT", scale)
	input := make([]float32, 2*n)
	for i := range input {
		input[i] = float32(r.Intn(256))/16 - 8
	}

	type bufs struct{ out buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{ks}}
	inst.Setup = func(m *core.Machine) error {
		inB := allocF32(m, input)
		outB := allocF32(m, make([]float32, 2*n))
		magB := allocF32(m, make([]float32, grid*fftPasses))
		state.put(m, bufs{out: outB})
		for p := 0; p < fftPasses; p++ {
			byteOff := uint64(p * grid * fftPoints * 8)
			if err := m.Submit(launch1D(ks, grid, 64,
				inB.addr+byteOff, outB.addr+byteOff, magB.addr+uint64(p*grid*4))); err != nil {
				return err
			}
		}
		return nil
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		// Verify against a direct DFT with loose tolerance (different
		// summation order).
		for w := 0; w < grid*fftPasses; w += 37 { // sample work-items
			for k := 0; k < fftPoints; k++ {
				var wr, wi float64
				for t := 0; t < fftPoints; t++ {
					ang := -2 * math.Pi * float64(k*t) / fftPoints
					xr := float64(input[w*2*fftPoints+2*t])
					xi := float64(input[w*2*fftPoints+2*t+1])
					wr += xr*math.Cos(ang) - xi*math.Sin(ang)
					wi += xr*math.Sin(ang) + xi*math.Cos(ang)
				}
				// Apply the kernel's spectral rotation to the reference.
				theta := fftRotate * fftRotateRounds
				rr := wr*math.Cos(theta) - wi*math.Sin(theta)
				ri := wr*math.Sin(theta) + wi*math.Cos(theta)
				gotR := float64(s.out.f32(m, w*2*fftPoints+2*k))
				gotI := float64(s.out.f32(m, w*2*fftPoints+2*k+1))
				if err := checkClose("FFT.re", w*fftPoints+k, gotR, rr, 1e-3); err != nil {
					return err
				}
				if err := checkClose("FFT.im", w*fftPoints+k, gotI, ri, 1e-3); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return inst, nil
}
