package workloads

import (
	"sync"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/stats"
)

// TestAllWorkloadsFunctional runs every workload at unit scale under BOTH
// abstractions with the untimed reference executor and verifies outputs:
// the end-to-end semantic-equivalence gate for the whole toolchain.
func TestAllWorkloadsFunctional(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, err := w.Prepare(1)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
				run := &stats.Run{Workload: w.Name}
				m := core.NewMachine(abs, run)
				if err := inst.Setup(m); err != nil {
					t.Fatalf("%s: Setup: %v", abs, err)
				}
				if err := m.RunFunctional(); err != nil {
					t.Fatalf("%s: run: %v", abs, err)
				}
				if err := inst.Check(m); err != nil {
					t.Fatalf("%s: check: %v", abs, err)
				}
				if run.TotalInsts() == 0 {
					t.Fatalf("%s: no instructions executed", abs)
				}
			}
		})
	}
}

// TestInstanceConcurrentReuse proves the Instance contract the experiment
// engine's cache depends on: one prepared instance's Setup and Check can
// drive several Machines in parallel (here one per abstraction) without
// cross-talk. Run under -race this is the reuse-safety gate for every
// registered workload.
func TestInstanceConcurrentReuse(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, err := w.Prepare(1)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			abss := []core.Abstraction{core.AbsHSAIL, core.AbsGCN3}
			errs := make([]error, len(abss))
			var wg sync.WaitGroup
			for i, abs := range abss {
				i, abs := i, abs
				wg.Add(1)
				go func() {
					defer wg.Done()
					run := &stats.Run{Workload: w.Name}
					m := core.NewMachine(abs, run)
					if err := inst.Setup(m); err != nil {
						errs[i] = err
						return
					}
					if err := m.RunFunctional(); err != nil {
						errs[i] = err
						return
					}
					errs[i] = inst.Check(m)
				}()
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("%s: %v", abss[i], err)
				}
			}
		})
	}
}

// TestWorkloadsTimed runs the suite on the timed model at unit scale and
// sanity-checks the headline cross-abstraction shapes per workload.
func TestWorkloadsTimed(t *testing.T) {
	if testing.Short() {
		t.Skip("timed suite is slow")
	}
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, err := w.Prepare(1)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			var runs [2]*stats.Run
			for i, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
				run, m, err := sim.Run(abs, w.Name, inst.Setup, core.RunOptions{})
				if err != nil {
					t.Fatalf("%s: %v", abs, err)
				}
				if err := inst.Check(m); err != nil {
					t.Fatalf("%s: check: %v", abs, err)
				}
				runs[i] = run
			}
			h, g := runs[0], runs[1]
			ratio := float64(g.TotalInsts()) / float64(h.TotalInsts())
			if ratio <= 1.0 {
				t.Errorf("dynamic instruction ratio %.2f: GCN3 should exceed HSAIL", ratio)
			}
			su := h.SIMDUtilization() - g.SIMDUtilization()
			if su < -0.1 || su > 0.1 {
				t.Errorf("SIMD utilization diverges: HSAIL %.2f vs GCN3 %.2f",
					h.SIMDUtilization(), g.SIMDUtilization())
			}
			t.Logf("%s: insts %.2fx, cycles H=%d G=%d, IPC H=%.3f G=%.3f, util H=%.2f G=%.2f",
				w.Name, ratio, h.Cycles, g.Cycles, h.IPC(), g.IPC(),
				h.SIMDUtilization(), g.SIMDUtilization())
		})
	}
}
