package workloads

import (
	"math"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// SNAP models the discrete-ordinates neutral-particle transport proxy: each
// work-item sweeps one angular ordinate across a row of cells, carrying the
// angular flux through a chain of f64 fma + divide recurrences. Control flow
// is a regular uniform loop (100% SIMD utilization, Table 6) while the f64
// divide-per-cell drives GCN3 code expansion.
func SNAP() *Workload {
	return &Workload{
		Name:        "SNAP",
		Description: "Discrete ordinates neutral particle transport",
		Prepare:     prepareSNAP,
	}
}

func prepareSNAP(scale int) (*Instance, error) {
	angles := 512 * scale
	ncells := 24

	b := kernel.NewBuilder("snap_sweep")
	muArg := b.ArgPtr("mu")
	wArg := b.ArgPtr("wt")
	qArg := b.ArgPtr("qext")
	sArg := b.ArgPtr("sigt")
	fluxArg := b.ArgPtr("flux")
	ncArg := b.ArgU32("ncells")
	a := b.WorkItemAbsID(isa.DimX)
	mu := b.Load(hsail.SegGlobal, f64T, gidByteOffset(b, a, b.LoadArg(muArg), 3), 0)
	w := b.Load(hsail.SegGlobal, f64T, gidByteOffset(b, a, b.LoadArg(wArg), 3), 0)
	qBase := b.LoadArg(qArg)
	sBase := b.LoadArg(sArg)
	fluxBase := b.LoadArg(fluxArg)
	nc := b.LoadArg(ncArg)
	// flux row base for this angle: flux + a*ncells*8.
	rowOff := b.Mul(u64T, b.Cvt(u64T, b.Mul(u32T, a, nc)), b.Int(u64T, 8))
	rowBase := b.Add(u64T, fluxBase, rowOff)
	psi := b.Mov(f64T, b.F64(1))
	c := b.Mov(u32T, b.Int(u32T, 0))
	b.WhileCmp(isa.CmpLt, u32T, c, nc, func() {
		cOff := b.Shl(u64T, b.Cvt(u64T, c), b.Int(u64T, 3))
		q := b.Load(hsail.SegGlobal, f64T, b.Add(u64T, qBase, cOff), 0)
		st := b.Load(hsail.SegGlobal, f64T, b.Add(u64T, sBase, cOff), 0)
		num := b.Fma(f64T, mu, psi, q)
		den := b.Add(f64T, st, b.F64(1))
		b.MovTo(psi, b.Div(f64T, num, den))
		out := b.Mul(f64T, w, psi)
		b.Store(hsail.SegGlobal, out, b.Add(u64T, rowBase, cOff), 0)
		b.BinaryTo(hsail.OpAdd, c, c, b.Int(u32T, 1))
	})
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		return nil, err
	}

	r := rng("SNAP", scale)
	mus := make([]float64, angles)
	wts := make([]float64, angles)
	for i := range mus {
		mus[i] = float64(r.Intn(128))/256 + 0.25
		wts[i] = float64(r.Intn(64))/64 + 0.5
	}
	qext := make([]float64, ncells)
	sigt := make([]float64, ncells)
	for i := range qext {
		qext[i] = float64(r.Intn(512)) / 32
		sigt[i] = float64(r.Intn(256)) / 64
	}

	type bufs struct{ flux buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{ks}}
	inst.Setup = func(m *core.Machine) error {
		muB, wB := allocF64(m, mus), allocF64(m, wts)
		qB, sB := allocF64(m, qext), allocF64(m, sigt)
		fB := allocF64(m, make([]float64, angles*ncells))
		state.put(m, bufs{flux: fB})
		return m.Submit(launch1D(ks, angles, 64, muB.addr, wB.addr, qB.addr, sB.addr, fB.addr, uint64(ncells)))
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		for a := 0; a < angles; a += 9 {
			psi := 1.0
			for c := 0; c < ncells; c++ {
				psi = math.FMA(mus[a], psi, qext[c]) / (sigt[c] + 1)
				want := wts[a] * psi
				if err := checkClose("SNAP", a*ncells+c, s.flux.f64(m, a*ncells+c), want, 1e-10); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return inst, nil
}
