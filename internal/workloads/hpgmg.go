package workloads

import (
	"math"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// HPGMG models the multigrid benchmark's smoother and restriction kernels:
// vector-memory-heavy f64 stencils over a TWO-DIMENSIONAL grid (2-D
// workgroups exercise the multi-dimensional work-item ABI) whose boundary
// handling is pure PREDICATION — conditional moves clamp the stencil
// indexes, so the kernels contain no branches at all, as the paper's
// Figure 9 discussion notes for HPGMG.
func HPGMG() *Workload {
	return &Workload{
		Name:        "HPGMG",
		Description: "Ranks HPC systems (multigrid)",
		Prepare:     prepareHPGMG,
	}
}

// buildSmooth2D is a 5-point weighted-Jacobi smoother on an n×n grid.
func buildSmooth2D() (*core.KernelSource, error) {
	b := kernel.NewBuilder("hpgmg_smooth2d")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	nArg := b.ArgU32("n")
	n := b.LoadArg(nArg)
	nm1 := b.Sub(u32T, n, b.Int(u32T, 1))
	x := b.Mad(u32T, b.WorkGroupID(isa.DimX), b.WorkGroupSize(isa.DimX), b.WorkItemID(isa.DimX))
	y := b.Mad(u32T, b.WorkGroupID(isa.DimY), b.WorkGroupSize(isa.DimY), b.WorkItemID(isa.DimY))
	// Clamped neighbor coordinates via conditional moves (no branches).
	clampDec := func(v kernel.Val) kernel.Val {
		at0 := b.Cmp(isa.CmpEq, u32T, v, b.Int(u32T, 0))
		return b.Cmov(u32T, at0, v, b.Sub(u32T, v, b.Int(u32T, 1)))
	}
	clampInc := func(v kernel.Val) kernel.Val {
		atMax := b.Cmp(isa.CmpGe, u32T, v, nm1)
		return b.Cmov(u32T, atMax, v, b.Add(u32T, v, b.Int(u32T, 1)))
	}
	xl, xr := clampDec(x), clampInc(x)
	yu, yd := clampDec(y), clampInc(y)
	inBase := b.LoadArg(inArg)
	at := func(yy, xx kernel.Val) kernel.Val {
		idx := b.Mad(u32T, yy, n, xx)
		return b.Load(hsail.SegGlobal, f64T,
			b.Add(u64T, inBase, b.Shl(u64T, b.Cvt(u64T, idx), b.Int(u64T, 3))), 0)
	}
	c := at(y, x)
	sum := b.Add(f64T, b.Add(f64T, at(y, xl), at(y, xr)), b.Add(f64T, at(yu, x), at(yd, x)))
	res := b.Mul(f64T, b.Fma(f64T, c, b.F64(4), sum), b.F64(0.125))
	outIdx := b.Mad(u32T, y, n, x)
	outAddr := b.Add(u64T, b.LoadArg(outArg),
		b.Shl(u64T, b.Cvt(u64T, outIdx), b.Int(u64T, 3)))
	b.Store(hsail.SegGlobal, res, outAddr, 0)
	b.Ret()
	return core.PrepareKernel(b.MustFinish(), finalizer.Options{})
}

// buildRestrict2D averages 2×2 fine cells into each coarse cell.
func buildRestrict2D() (*core.KernelSource, error) {
	b := kernel.NewBuilder("hpgmg_restrict2d")
	fineArg := b.ArgPtr("fine")
	coarseArg := b.ArgPtr("coarse")
	nArg := b.ArgU32("nFine")
	nFine := b.LoadArg(nArg)
	x := b.Mad(u32T, b.WorkGroupID(isa.DimX), b.WorkGroupSize(isa.DimX), b.WorkItemID(isa.DimX))
	y := b.Mad(u32T, b.WorkGroupID(isa.DimY), b.WorkGroupSize(isa.DimY), b.WorkItemID(isa.DimY))
	fx := b.Shl(u32T, x, b.Int(u32T, 1))
	fy := b.Shl(u32T, y, b.Int(u32T, 1))
	fineBase := b.LoadArg(fineArg)
	at := func(yy, xx kernel.Val, off int32) kernel.Val {
		idx := b.Mad(u32T, yy, nFine, xx)
		return b.Load(hsail.SegGlobal, f64T,
			b.Add(u64T, fineBase, b.Shl(u64T, b.Cvt(u64T, idx), b.Int(u64T, 3))), off)
	}
	fy1 := b.Add(u32T, fy, b.Int(u32T, 1))
	s := b.Add(f64T, b.Add(f64T, at(fy, fx, 0), at(fy, fx, 8)),
		b.Add(f64T, at(fy1, fx, 0), at(fy1, fx, 8)))
	avg := b.Mul(f64T, s, b.F64(0.25))
	nCoarse := b.Shr(u32T, nFine, b.Int(u32T, 1))
	outIdx := b.Mad(u32T, y, nCoarse, x)
	outAddr := b.Add(u64T, b.LoadArg(coarseArg),
		b.Shl(u64T, b.Cvt(u64T, outIdx), b.Int(u64T, 3)))
	b.Store(hsail.SegGlobal, avg, outAddr, 0)
	b.Ret()
	return core.PrepareKernel(b.MustFinish(), finalizer.Options{})
}

func prepareHPGMG(scale int) (*Instance, error) {
	n := 64 * scale // n×n fine grid
	smooth, err := buildSmooth2D()
	if err != nil {
		return nil, err
	}
	restr, err := buildRestrict2D()
	if err != nil {
		return nil, err
	}

	r := rng("HPGMG", scale)
	input := make([]float64, n*n)
	for i := range input {
		input[i] = float64(r.Intn(1024)) / 64
	}

	launch2D := func(ks *core.KernelSource, dim int, args ...uint64) core.Launch {
		return core.Launch{
			Kernel: ks,
			Grid:   [3]uint32{uint32(dim), uint32(dim), 1},
			WG:     [3]uint16{16, 4, 1},
			Args:   args,
		}
	}

	type bufs struct{ tmp buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{smooth, restr}}
	inst.Setup = func(m *core.Machine) error {
		fine := allocF64(m, input)
		tmp := allocF64(m, make([]float64, n*n))
		coarse := allocF64(m, make([]float64, n*n/4))
		state.put(m, bufs{tmp: tmp})
		// V-cycle fragment: smooth, smooth, restrict, smooth (coarse).
		if err := m.Submit(launch2D(smooth, n, fine.addr, tmp.addr, uint64(n))); err != nil {
			return err
		}
		if err := m.Submit(launch2D(smooth, n, tmp.addr, fine.addr, uint64(n))); err != nil {
			return err
		}
		if err := m.Submit(launch2D(restr, n/2, fine.addr, coarse.addr, uint64(n))); err != nil {
			return err
		}
		return m.Submit(launch2D(smooth, n/2, coarse.addr, tmp.addr, uint64(n/2)))
	}
	inst.Check = func(m *core.Machine) error {
		st, err := state.take(m)
		if err != nil {
			return err
		}
		smoothHost := func(in []float64, n int) []float64 {
			out := make([]float64, n*n)
			cl := func(v, max int) int {
				if v < 0 {
					return 0
				}
				if v > max {
					return max
				}
				return v
			}
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					sum := in[y*n+cl(x-1, n-1)] + in[y*n+cl(x+1, n-1)] +
						in[cl(y-1, n-1)*n+x] + in[cl(y+1, n-1)*n+x]
					out[y*n+x] = math.FMA(in[y*n+x], 4, sum) * 0.125
				}
			}
			return out
		}
		s1 := smoothHost(input, n)
		s2 := smoothHost(s1, n)
		nc := n / 2
		co := make([]float64, nc*nc)
		for y := 0; y < nc; y++ {
			for x := 0; x < nc; x++ {
				co[y*nc+x] = (s2[(2*y)*n+2*x] + s2[(2*y)*n+2*x+1] +
					s2[(2*y+1)*n+2*x] + s2[(2*y+1)*n+2*x+1]) * 0.25
			}
		}
		s3 := smoothHost(co, nc)
		for i := 0; i < nc*nc; i += 3 {
			if err := checkClose("HPGMG", i, st.tmp.f64(m, i), s3[i], 1e-12); err != nil {
				return err
			}
		}
		return nil
	}
	return inst, nil
}
