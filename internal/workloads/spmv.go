package workloads

import (
	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// SpMV is CSR sparse matrix-vector multiplication with one row per
// work-item. Row lengths vary, so the accumulation loop has DATA-DEPENDENT
// trip counts: lanes whose rows finish early idle while long rows continue —
// the source of the paper's ~67-72% SIMD utilization for SpMV (Table 6).
func SpMV() *Workload {
	return &Workload{
		Name:        "SpMV",
		Description: "Sparse matrix-vector multiplication",
		Prepare:     prepareSpMV,
	}
}

func prepareSpMV(scale int) (*Instance, error) {
	rows := 1024 * scale
	maxRow := 24

	b := kernel.NewBuilder("spmv_csr")
	rowPtrArg := b.ArgPtr("rowptr")
	colArg := b.ArgPtr("col")
	valArg := b.ArgPtr("val")
	xArg := b.ArgPtr("x")
	yArg := b.ArgPtr("y")
	row := b.WorkItemAbsID(isa.DimX)
	rpAddr := gidByteOffset(b, row, b.LoadArg(rowPtrArg), 2)
	start := b.Load(hsail.SegGlobal, u32T, rpAddr, 0)
	end := b.Load(hsail.SegGlobal, u32T, rpAddr, 4)
	colBase := b.LoadArg(colArg)
	valBase := b.LoadArg(valArg)
	xBase := b.LoadArg(xArg)
	sum := b.Mov(f32T, b.F32(0))
	idx := b.Mov(u32T, start)
	b.WhileCmp(isa.CmpLt, u32T, idx, end, func() {
		off4 := b.Shl(u64T, b.Cvt(u64T, idx), b.Int(u64T, 2))
		col := b.Load(hsail.SegGlobal, u32T, b.Add(u64T, colBase, off4), 0)
		v := b.Load(hsail.SegGlobal, f32T, b.Add(u64T, valBase, off4), 0)
		xOff := b.Shl(u64T, b.Cvt(u64T, col), b.Int(u64T, 2))
		xv := b.Load(hsail.SegGlobal, f32T, b.Add(u64T, xBase, xOff), 0)
		b.MovTo(sum, b.Fma(f32T, v, xv, sum))
		b.BinaryTo(hsail.OpAdd, idx, idx, b.Int(u32T, 1))
	})
	yAddr := gidByteOffset(b, row, b.LoadArg(yArg), 2)
	b.Store(hsail.SegGlobal, sum, yAddr, 0)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		return nil, err
	}

	// Build a CSR matrix with skewed row lengths (1..maxRow).
	r := rng("SpMV", scale)
	rowPtr := make([]uint32, rows+1)
	var cols []uint32
	var vals []float32
	for i := 0; i < rows; i++ {
		rowPtr[i] = uint32(len(cols))
		// Moderately variable row lengths: enough divergence for the
		// paper's ~67-72% SIMD utilization, not CoMD-grade skew.
		nnz := 10 + r.Intn(maxRow-10)
		if r.Intn(5) == 0 {
			nnz = 1 + r.Intn(6) // a fifth of the rows are short
		}
		for k := 0; k < nnz; k++ {
			cols = append(cols, uint32(r.Intn(rows)))
			vals = append(vals, float32(r.Intn(64))/8)
		}
	}
	rowPtr[rows] = uint32(len(cols))
	x := make([]float32, rows)
	for i := range x {
		x[i] = float32(r.Intn(128)) / 16
	}

	type bufs struct{ y buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{ks}}
	inst.Setup = func(m *core.Machine) error {
		rp := allocU32(m, rowPtr)
		cl := allocU32(m, cols)
		vl := allocF32(m, vals)
		xb := allocF32(m, x)
		yb := allocF32(m, make([]float32, rows))
		state.put(m, bufs{y: yb})
		return m.Submit(launch1D(ks, rows, 64, rp.addr, cl.addr, vl.addr, xb.addr, yb.addr))
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			want := float32(0)
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				want += vals[k] * x[cols[k]]
			}
			if err := checkClose("SpMV", i, float64(s.y.f32(m, i)), float64(want), 1e-4); err != nil {
				return err
			}
		}
		return nil
	}
	return inst, nil
}
