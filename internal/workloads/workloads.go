// Package workloads implements the paper's Table 5 application suite against
// the kernel-builder API. Each workload reproduces the characteristics the
// paper's evaluation attributes to its namesake — the properties that drive
// every per-workload result in Figures 5-12 and Table 6:
//
//	ArrayBW     memory streaming in a tight uniform loop
//	BitonicSort branch-free compare-exchange networks (pure predication)
//	CoMD        branch-heavy neighbor-list force loops
//	FFT         compute-bound, cmov-heavy, divide-free, spill-segment use
//	HPGMG       stencil smoothing with boundary predication, no branches
//	LULESH      27 unique kernels, many dynamic launches, private-segment use
//	MD          all-pairs forces: f64 divides and rsqrt, full SIMD utilization
//	SNAP        transport sweeps: regular f64 fma/divide chains
//	SpMV        CSR row loops with data-dependent (divergent) trip counts
//	XSBench     randomized binary-search table lookups with divergent gathers
//
// Inputs are deterministic per scale so both abstractions execute identical
// data, and every workload carries a host-side output checker.
package workloads

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"ilsim/internal/core"
)

// Instance is a prepared workload run: Setup allocates and initializes
// buffers on a machine and submits every launch; Check verifies outputs
// after the run.
//
// One prepared Instance may drive any number of Machines CONCURRENTLY:
// Setup and Check only read the shared input data and keep all per-run
// state (buffer addresses) keyed by the Machine. This is the contract the
// experiment engine's instance cache relies on to prepare each (workload,
// scale) once per sweep. Check consumes the per-machine state, so call it
// at most once per Setup on a given machine.
type Instance struct {
	Setup func(m *core.Machine) error
	Check func(m *core.Machine) error
	// Kernels lists the prepared kernels (for footprint reports).
	Kernels []*core.KernelSource
}

// Workload is one Table 5 application.
type Workload struct {
	Name        string
	Description string
	// Prepare builds kernels and input generators at the given scale
	// (1 = unit-test size; DefaultScale = evaluation size).
	Prepare func(scale int) (*Instance, error)
}

// DefaultScale is the evaluation input scale used by the report harness.
const DefaultScale = 4

// All returns the suite in the paper's Table 5 order.
func All() []*Workload {
	return []*Workload{
		ArrayBW(), BitonicSort(), CoMD(), FFT(), HPGMG(),
		LULESH(), MD(), SNAP(), SpMV(), XSBench(),
	}
}

// ByName finds a workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// rng returns the deterministic generator for a workload/scale pair. The
// seed is FNV-1a over the name mixed with the scale: the earlier ad-hoc
// `len*K + scale` + base-31 scheme could collide for short names (two
// colliding workloads would silently share input data across the whole
// suite), while FNV-1a keeps distinct (name, scale) pairs on distinct
// streams.
func rng(name string, scale int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := h.Sum64()*0x100000001b3 + uint64(scale)
	return rand.New(rand.NewSource(int64(seed)))
}

// f32Bits truncates a float64 to float32 storage bits.
func f32Bits(v float64) uint32 {
	return mathFloat32bits(float32(v))
}
