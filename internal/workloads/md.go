package workloads

import (
	"math"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// MD is a generic all-pairs molecular-dynamics force kernel: f64 arithmetic
// with a divide and reciprocal square root per pair, in a loop with a
// UNIFORM trip count — every lane iterates identically, giving the 100% SIMD
// utilization of the paper's Table 6 while exercising heavy GCN3 instruction
// expansion (divide sequences, 64-bit operands).
func MD() *Workload {
	return &Workload{
		Name:        "MD",
		Description: "Generic molecular-dynamics algorithms",
		Prepare:     prepareMD,
	}
}

func prepareMD(scale int) (*Instance, error) {
	atoms := 192 * scale

	b := kernel.NewBuilder("md_force")
	xArg := b.ArgPtr("x")
	yArg := b.ArgPtr("y")
	zArg := b.ArgPtr("z")
	qArg := b.ArgPtr("q")
	fArg := b.ArgPtr("f")
	nArg := b.ArgU32("n")
	i := b.WorkItemAbsID(isa.DimX)
	xBase := b.LoadArg(xArg)
	yBase := b.LoadArg(yArg)
	zBase := b.LoadArg(zArg)
	qBase := b.LoadArg(qArg)
	loadAt := func(base, idx kernel.Val) kernel.Val {
		return b.Load(hsail.SegGlobal, f64T, b.Add(u64T, base, b.Shl(u64T, b.Cvt(u64T, idx), b.Int(u64T, 3))), 0)
	}
	xi := loadAt(xBase, i)
	yi := loadAt(yBase, i)
	zi := loadAt(zBase, i)
	n := b.LoadArg(nArg)
	fx := b.Mov(f64T, b.F64(0))
	fy := b.Mov(f64T, b.F64(0))
	fz := b.Mov(f64T, b.F64(0))
	j := b.Mov(u32T, b.Int(u32T, 0))
	b.WhileCmp(isa.CmpLt, u32T, j, n, func() {
		dx := b.Sub(f64T, xi, loadAt(xBase, j))
		dy := b.Sub(f64T, yi, loadAt(yBase, j))
		dz := b.Sub(f64T, zi, loadAt(zBase, j))
		// Softened squared distance (finite self-interaction).
		r2 := b.Fma(f64T, dx, dx, b.Fma(f64T, dy, dy, b.Fma(f64T, dz, dz, b.F64(0.5))))
		inv := b.Div(f64T, b.F64(1), r2)
		invr := b.Rsqrt(f64T, r2)
		s := b.Mul(f64T, b.Mul(f64T, loadAt(qBase, j), inv), invr)
		b.MovTo(fx, b.Fma(f64T, s, dx, fx))
		b.MovTo(fy, b.Fma(f64T, s, dy, fy))
		b.MovTo(fz, b.Fma(f64T, s, dz, fz))
		b.BinaryTo(hsail.OpAdd, j, j, b.Int(u32T, 1))
	})
	fAddr := b.Add(u64T, b.LoadArg(fArg), b.Mul(u64T, b.Cvt(u64T, i), b.Int(u64T, 24)))
	b.Store(hsail.SegGlobal, fx, fAddr, 0)
	b.Store(hsail.SegGlobal, fy, fAddr, 8)
	b.Store(hsail.SegGlobal, fz, fAddr, 16)
	b.Ret()
	ks, err := core.PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		return nil, err
	}

	r := rng("MD", scale)
	x := make([]float64, atoms)
	y := make([]float64, atoms)
	z := make([]float64, atoms)
	q := make([]float64, atoms)
	for i := range x {
		x[i] = float64(r.Intn(2048)) / 64
		y[i] = float64(r.Intn(2048)) / 64
		z[i] = float64(r.Intn(2048)) / 64
		q[i] = float64(r.Intn(64))/32 - 1
	}

	type bufs struct{ force buf }
	var state perMachine[bufs]
	inst := &Instance{Kernels: []*core.KernelSource{ks}}
	inst.Setup = func(m *core.Machine) error {
		xB, yB, zB, qB := allocF64(m, x), allocF64(m, y), allocF64(m, z), allocF64(m, q)
		fB := allocF64(m, make([]float64, 3*atoms))
		state.put(m, bufs{force: fB})
		return m.Submit(launch1D(ks, atoms, 64, xB.addr, yB.addr, zB.addr, qB.addr, fB.addr, uint64(atoms)))
	}
	inst.Check = func(m *core.Machine) error {
		s, err := state.take(m)
		if err != nil {
			return err
		}
		for i := 0; i < atoms; i += 5 {
			var fx, fy, fz float64
			for j := 0; j < atoms; j++ {
				dx, dy, dz := x[i]-x[j], y[i]-y[j], z[i]-z[j]
				r2 := math.FMA(dx, dx, math.FMA(dy, dy, math.FMA(dz, dz, 0.5)))
				s := q[j] * (1 / r2) * (1 / math.Sqrt(r2))
				fx = math.FMA(s, dx, fx)
				fy = math.FMA(s, dy, fy)
				fz = math.FMA(s, dz, fz)
			}
			got := []float64{s.force.f64(m, 3*i), s.force.f64(m, 3*i+1), s.force.f64(m, 3*i+2)}
			for c, want := range []float64{fx, fy, fz} {
				if err := checkClose("MD", 3*i+c, got[c], want, 1e-9); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return inst, nil
}
