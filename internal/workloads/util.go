package workloads

import (
	"fmt"
	"math"
	"sync"

	"ilsim/internal/core"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// perMachine associates the buffers an Instance allocated during Setup with
// the Machine they live on, so one prepared Instance can Setup and Check
// any number of Machines concurrently (the contract the experiment engine's
// instance cache depends on). Check consumes the entry so finished Machines
// can be garbage-collected; call Check at most once per Setup.
type perMachine[T any] struct{ m sync.Map }

func (p *perMachine[T]) put(m *core.Machine, v T) { p.m.Store(m, v) }

func (p *perMachine[T]) take(m *core.Machine) (T, error) {
	v, ok := p.m.LoadAndDelete(m)
	if !ok {
		var zero T
		return zero, fmt.Errorf("workloads: Check on a machine this instance did not Setup (or Check ran twice)")
	}
	return v.(T), nil
}

func mathFloat32bits(f float32) uint32 { return math.Float32bits(f) }

// Short type names for kernel construction.
const (
	u32T = isa.TypeU32
	s32T = isa.TypeS32
	u64T = isa.TypeU64
	f32T = isa.TypeF32
	f64T = isa.TypeF64
	b32T = isa.TypeB32
)

// buf is a typed simulated-memory buffer handle.
type buf struct {
	addr uint64
	n    int // element count
}

// allocU32 reserves and fills a u32 buffer.
func allocU32(m *core.Machine, vals []uint32) buf {
	b := buf{addr: m.Ctx.AllocBuffer(uint64(4 * len(vals))), n: len(vals)}
	for i, v := range vals {
		m.Ctx.Mem.WriteU32(b.addr+uint64(4*i), v)
	}
	return b
}

// allocF32 reserves and fills an f32 buffer.
func allocF32(m *core.Machine, vals []float32) buf {
	b := buf{addr: m.Ctx.AllocBuffer(uint64(4 * len(vals))), n: len(vals)}
	for i, v := range vals {
		m.Ctx.Mem.WriteU32(b.addr+uint64(4*i), math.Float32bits(v))
	}
	return b
}

// allocF64 reserves and fills an f64 buffer.
func allocF64(m *core.Machine, vals []float64) buf {
	b := buf{addr: m.Ctx.AllocBuffer(uint64(8 * len(vals))), n: len(vals)}
	for i, v := range vals {
		m.Ctx.Mem.WriteU64(b.addr+uint64(8*i), math.Float64bits(v))
	}
	return b
}

func (b buf) u32(m *core.Machine, i int) uint32 {
	return m.Ctx.Mem.ReadU32(b.addr + uint64(4*i))
}

func (b buf) f32(m *core.Machine, i int) float32 {
	return math.Float32frombits(m.Ctx.Mem.ReadU32(b.addr + uint64(4*i)))
}

func (b buf) f64(m *core.Machine, i int) float64 {
	return math.Float64frombits(m.Ctx.Mem.ReadU64(b.addr + uint64(8*i)))
}

// checkClose verifies a float with relative tolerance.
func checkClose(name string, i int, got, want, tol float64) error {
	diff := math.Abs(got - want)
	if diff <= tol*math.Max(1, math.Abs(want)) {
		return nil
	}
	return fmt.Errorf("%s[%d]: got %g, want %g", name, i, got, want)
}

// launch1D builds a 1-D launch descriptor.
func launch1D(ks *core.KernelSource, grid, wg int, args ...uint64) core.Launch {
	return core.Launch{
		Kernel: ks,
		Grid:   [3]uint32{uint32(grid), 1, 1},
		WG:     [3]uint16{uint16(wg), 1, 1},
		Args:   args,
	}
}

// gidByteOffset emits the common prologue computing &base[gid*elemSize] for
// a kernel: the global work-item ID scaled to a byte offset and added to a
// kernarg pointer.
func gidByteOffset(b *kernel.Builder, gid kernel.Val, base kernel.Val, logSize int64) kernel.Val {
	off := b.Shl(u64T, b.Cvt(u64T, gid), b.Int(u64T, logSize))
	return b.Add(u64T, base, off)
}
