package chaos

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer answers every request with a fixed JSON body and counts hits.
func echoServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"answer":42,"payload":"abcdefghijklmnopqrstuvwxyz"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// get issues one GET through the transport.
func get(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	return client.Get(url)
}

func TestEveryIsExactlyPeriodic(t *testing.T) {
	srv := echoServer(t, nil)
	plan := Plan{Seed: 1, Rules: []Rule{{Every: 3, Fault: Fault{Drop: true}}}}
	tr := plan.Transport(nil)
	var drops []int
	for i := 1; i <= 12; i++ {
		resp, err := get(t, tr, srv.URL)
		if err != nil {
			drops = append(drops, i)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	want := []int{3, 6, 9, 12}
	if len(drops) != len(want) {
		t.Fatalf("drops at %v, want %v", drops, want)
	}
	for i := range want {
		if drops[i] != want[i] {
			t.Fatalf("drops at %v, want %v", drops, want)
		}
	}
	if st := tr.Stats(); st.Drops != 4 || st.Requests != 12 {
		t.Fatalf("stats = %+v, want 4 drops / 12 requests", st)
	}
}

func TestSeededScheduleReplays(t *testing.T) {
	srv := echoServer(t, nil)
	outcomes := func() string {
		plan := Plan{Seed: 99, Rules: []Rule{{Prob: 0.4, Fault: Fault{Drop: true}}}}
		tr := plan.Transport(nil)
		var b strings.Builder
		for i := 0; i < 40; i++ {
			resp, err := get(t, tr, srv.URL)
			if err != nil {
				b.WriteByte('x')
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			b.WriteByte('.')
		}
		return b.String()
	}
	first, second := outcomes(), outcomes()
	if first != second {
		t.Fatalf("same seed, different schedules:\n%s\n%s", first, second)
	}
	if !strings.Contains(first, "x") || !strings.Contains(first, ".") {
		t.Fatalf("p=0.4 over 40 requests produced a degenerate schedule %q", first)
	}
}

func TestCorruptBreaksJSONDecode(t *testing.T) {
	srv := echoServer(t, nil)
	plan := Plan{Seed: 5, Rules: []Rule{{Every: 1, Fault: Fault{Corrupt: true}}}}
	tr := plan.Transport(nil)
	for i := 0; i < 20; i++ {
		resp, err := get(t, tr, srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("request %d read: %v", i, err)
		}
		var v struct {
			Answer int `json:"answer"`
		}
		if err := json.Unmarshal(body, &v); err == nil {
			t.Fatalf("request %d: corrupted body still decodes: %q", i, body)
		}
		if !bytes.Contains(body, []byte{0x01}) {
			t.Fatalf("request %d: no control byte in %q", i, body)
		}
	}
	if st := tr.Stats(); st.Corrupts != 20 {
		t.Fatalf("stats = %+v, want 20 corrupts", st)
	}
}

func TestTruncateHalvesBody(t *testing.T) {
	srv := echoServer(t, nil)
	plan := Plan{Seed: 1, Rules: []Rule{{Every: 1, Fault: Fault{Truncate: true}}}}
	resp, err := get(t, plan.Transport(nil), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	full := len(`{"answer":42,"payload":"abcdefghijklmnopqrstuvwxyz"}`)
	if len(body) != full/2 {
		t.Fatalf("truncated body is %d bytes, want %d", len(body), full/2)
	}
	if resp.ContentLength != int64(full/2) {
		t.Fatalf("ContentLength %d, want %d", resp.ContentLength, full/2)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	plan := Plan{Seed: 1, Rules: []Rule{{Every: 2, Fault: Fault{Dup: true}}}}
	tr := plan.Transport(nil)
	client := &http.Client{Transport: tr}
	for i := 0; i < 4; i++ {
		resp, err := client.Post(srv.URL+"/result", "application/json",
			strings.NewReader(`{"worker":"w1"}`))
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// 4 posts, 2 of them duplicated -> 6 server-side deliveries.
	if got := hits.Load(); got != 6 {
		t.Fatalf("server saw %d deliveries, want 6", got)
	}
	if st := tr.Stats(); st.Dups != 2 {
		t.Fatalf("stats = %+v, want 2 dups", st)
	}
}

func TestPartitionWindow(t *testing.T) {
	srv := echoServer(t, nil)
	plan := Plan{Partitions: []Partition{{After: 60 * time.Millisecond, For: 80 * time.Millisecond}}}
	tr := plan.Transport(nil)
	probe := func() error {
		resp, err := get(t, tr, srv.URL)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	if err := probe(); err != nil { // t=0: before the window
		t.Fatalf("pre-partition request failed: %v", err)
	}
	time.Sleep(90 * time.Millisecond) // t≈90ms: inside [60ms, 140ms)
	if err := probe(); err == nil {
		t.Fatal("request inside the partition window succeeded")
	} else if !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("partition error = %v, want mention of partitioned", err)
	}
	time.Sleep(120 * time.Millisecond) // t≈210ms: after the window
	if err := probe(); err != nil {
		t.Fatalf("post-partition request failed: %v", err)
	}
	if st := tr.Stats(); st.Partitioned != 1 {
		t.Fatalf("stats = %+v, want 1 partitioned", st)
	}
}

func TestPathScoping(t *testing.T) {
	srv := echoServer(t, nil)
	plan := Plan{Seed: 1, Rules: []Rule{{Path: "/lease", Every: 1, Fault: Fault{Drop: true}}}}
	tr := plan.Transport(nil)
	if _, err := get(t, tr, srv.URL+"/lease"); err == nil {
		t.Fatal("/lease should have been dropped")
	}
	resp, err := get(t, tr, srv.URL+"/status")
	if err != nil {
		t.Fatalf("/status should be untouched: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestDelayIsApplied(t *testing.T) {
	srv := echoServer(t, nil)
	plan := Plan{Seed: 1, Rules: []Rule{{Every: 1, Fault: Fault{Delay: 50 * time.Millisecond}}}}
	tr := plan.Transport(nil)
	start := time.Now()
	resp, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request took %v, want >= 50ms delay", elapsed)
	}
	if st := tr.Stats(); st.Delays != 1 {
		t.Fatalf("stats = %+v, want 1 delay", st)
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("seed=7,drop=0.1,dup=0.05,corrupt=0.2,truncate=0.1,delay=50ms:0.3,partition=2s+1s,partition=5s+500ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 {
		t.Fatalf("seed = %d, want 7", plan.Seed)
	}
	if len(plan.Rules) != 5 {
		t.Fatalf("got %d rules, want 5", len(plan.Rules))
	}
	if !plan.Rules[0].Drop || plan.Rules[0].Prob != 0.1 {
		t.Fatalf("rule 0 = %+v, want drop@0.1", plan.Rules[0])
	}
	if plan.Rules[4].Delay != 50*time.Millisecond || plan.Rules[4].Prob != 0.3 {
		t.Fatalf("rule 4 = %+v, want 50ms delay@0.3", plan.Rules[4])
	}
	if len(plan.Partitions) != 2 {
		t.Fatalf("got %d partitions, want 2", len(plan.Partitions))
	}
	if plan.Partitions[1].After != 5*time.Second || plan.Partitions[1].For != 500*time.Millisecond {
		t.Fatalf("partition 1 = %+v", plan.Partitions[1])
	}

	for _, bad := range []string{
		"", "bogus", "drop=2", "drop=-0.5", "delay=50ms", "delay=x:0.5",
		"partition=2s", "partition=-1s+1s", "wat=1", "seed=abc",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}
