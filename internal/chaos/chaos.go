// Package chaos injects deterministic, seed-driven network faults into an
// http.RoundTripper — the distributed-sweep counterpart of exp.FaultPlan.
// Where FaultPlan misbehaves inside a job's execution, a chaos.Plan
// misbehaves on the wire between worker and coordinator: dropped and
// duplicated requests, delays, truncated and corrupted response bodies,
// and timed partitions. Schedules are reproducible (a Seed drives every
// probabilistic choice; Every-based rules are exactly periodic), so a
// campaign run under a given plan either survives byte-identically or
// fails the same way every time — which is what makes the recovery paths
// testable at all.
//
// Faults are asymmetric by design: Drop, Delay and Dup act on requests,
// but Truncate and Corrupt act only on RESPONSE bodies. Corrupting a
// request body would make the coordinator reply 400, which workers
// rightly treat as fatal (a malformed request is a bug, not weather);
// corrupting a response exercises the client-side decode-and-retry path
// without convicting an honest worker.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault is the set of misbehaviors one Rule can inject. Multiple fields
// may be set; they apply in order: Delay, then Drop (which wins over the
// rest), then Dup, then the response mutations.
type Fault struct {
	// Drop fails the request before it is sent, as a connection error.
	Drop bool
	// Delay sleeps before sending; the request context cuts it short.
	Delay time.Duration
	// Dup sends the request twice (the duplicate first, its response
	// drained and discarded) — the at-least-once delivery hazard every
	// idempotent endpoint must survive.
	Dup bool
	// Truncate cuts the response body in half.
	Truncate bool
	// Corrupt overwrites one response-body byte with a control character,
	// guaranteeing any JSON payload fails to decode.
	Corrupt bool
}

// Rule schedules a Fault on matching requests. Either Every (exactly
// periodic: fires on the Every-th, 2·Every-th, … matching request) or
// Prob (seeded coin flip per matching request) selects when it fires.
// The first firing rule wins for a given request.
type Rule struct {
	// Path matches the request URL path exactly; empty matches all.
	Path string
	// Every fires deterministically on every Every-th matching request
	// (1 = every request). Takes precedence over Prob when > 0.
	Every int
	// Prob fires with this probability per matching request, driven by
	// the plan's seeded RNG.
	Prob float64
	Fault
}

// Partition blackholes matching requests during a time window, measured
// from the transport's first use — the scheduled network split.
type Partition struct {
	// Path matches the request URL path exactly; empty matches all.
	Path string
	// After is when the partition starts, relative to transport start;
	// For is how long it lasts.
	After, For time.Duration
}

// Plan is a reproducible fault schedule. Build one (or ParsePlan a spec
// string), then wrap a transport with Transport.
type Plan struct {
	// Seed drives every probabilistic choice (Prob rules, Corrupt byte
	// positions). Same seed + same request sequence = same faults.
	Seed int64
	// Rules are checked in order per request; the first that fires wins.
	Rules []Rule
	// Partitions are timed blackhole windows, all checked per request.
	Partitions []Partition
}

// Stats counts what a Transport actually injected — assert on these in
// tests to prove the chaos happened rather than silently matching nothing.
type Stats struct {
	Requests    int
	Drops       int
	Delays      int
	Dups        int
	Truncates   int
	Corrupts    int
	Partitioned int
}

// Transport is the fault-injecting http.RoundTripper a Plan produces.
// Safe for concurrent use; fault selection is serialized so the schedule
// stays deterministic for a deterministic request order.
type Transport struct {
	inner http.RoundTripper
	plan  Plan

	mu      sync.Mutex
	rng     *rand.Rand
	counts  []int // per-rule matching-request counters (Every)
	started time.Time
	stats   Stats
}

// Transport wraps inner (nil = http.DefaultTransport) with the plan's
// fault schedule. Each call makes an independent transport with its own
// RNG and counters, so two workers sharing a Plan value but not a
// Transport get independent (but individually reproducible) schedules.
func (p Plan) Transport(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:  inner,
		plan:   p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		counts: make([]int, len(p.Rules)),
	}
}

// Stats returns a snapshot of injected-fault counts.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// errDropped is the connection-style error an injected Drop produces.
type errDropped struct{ path string }

func (e errDropped) Error() string { return "chaos: request to " + e.path + " dropped" }

// RoundTrip applies the schedule to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	t.mu.Lock()
	if t.started.IsZero() {
		t.started = time.Now()
	}
	elapsed := time.Since(t.started)
	t.stats.Requests++
	for _, pt := range t.plan.Partitions {
		if pt.Path != "" && pt.Path != path {
			continue
		}
		if elapsed >= pt.After && elapsed < pt.After+pt.For {
			t.stats.Partitioned++
			t.mu.Unlock()
			return nil, fmt.Errorf("chaos: %s partitioned (window %s+%s)", path, pt.After, pt.For)
		}
	}
	var fault Fault
	var fired bool
	for i, r := range t.plan.Rules {
		if r.Path != "" && r.Path != path {
			continue
		}
		t.counts[i]++
		if r.Every > 0 {
			fired = t.counts[i]%r.Every == 0
		} else if r.Prob > 0 {
			fired = t.rng.Float64() < r.Prob
		}
		if fired {
			fault = r.Fault
			break
		}
	}
	// Corrupt's target byte is drawn now, under the lock, so the schedule
	// does not depend on response-arrival order.
	corruptDraw := 0.0
	if fired && fault.Corrupt {
		corruptDraw = t.rng.Float64()
	}
	if fired {
		if fault.Delay > 0 {
			t.stats.Delays++
		}
		if fault.Drop {
			t.stats.Drops++
		}
		if fault.Dup {
			t.stats.Dups++
		}
	}
	t.mu.Unlock()

	if !fired {
		return t.inner.RoundTrip(req)
	}
	if fault.Delay > 0 {
		if !sleepContext(req.Context(), fault.Delay) {
			return nil, req.Context().Err()
		}
	}
	if fault.Drop {
		return nil, errDropped{path: path}
	}
	if fault.Dup {
		if clone, err := cloneRequest(req); err == nil {
			if resp, err := t.inner.RoundTrip(clone); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if fault.Truncate || fault.Corrupt {
		if err := t.mangleResponse(resp, fault, corruptDraw); err != nil {
			resp.Body.Close()
			return nil, err
		}
	}
	return resp, nil
}

// mangleResponse rewrites the response body in place: truncation keeps the
// first half; corruption overwrites one byte in the first three quarters
// with 0x01 — a control character, illegal anywhere inside a JSON
// document, so a corrupted JSON response is guaranteed to fail decoding
// rather than sometimes slipping through as a different valid value.
func (t *Transport) mangleResponse(resp *http.Response, fault Fault, draw float64) error {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("chaos: reading response to mangle: %w", err)
	}
	if fault.Truncate && len(body) > 0 {
		body = body[:len(body)/2]
		t.mu.Lock()
		t.stats.Truncates++
		t.mu.Unlock()
	}
	if fault.Corrupt && len(body) > 0 {
		span := len(body) * 3 / 4
		if span == 0 {
			span = len(body)
		}
		body[int(draw*float64(span))%span] = 0x01
		t.mu.Lock()
		t.stats.Corrupts++
		t.mu.Unlock()
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return nil
}

// cloneRequest copies req with a fresh body for duplicate delivery.
// Requests without GetBody (streaming bodies) cannot be duplicated.
func cloneRequest(req *http.Request) (*http.Request, error) {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return clone, nil
	}
	if req.GetBody == nil {
		return nil, fmt.Errorf("chaos: request body not replayable")
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	clone.Body = body
	return clone, nil
}

// sleepContext sleeps for d or until ctx ends, reporting whether the full
// sleep completed.
func sleepContext(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ParsePlan builds a Plan from a compact comma-separated spec — the
// `-chaos` flag syntax:
//
//	seed=N            RNG seed (default 1)
//	drop=P            drop each request with probability P
//	dup=P             duplicate each request with probability P
//	corrupt=P         corrupt each response body with probability P
//	truncate=P        truncate each response body with probability P
//	delay=DUR:P       delay each request by DUR with probability P
//	partition=AFTER+FOR  blackhole window (repeatable)
//
// Example: "seed=7,drop=0.1,delay=50ms:0.2,partition=2s+1s".
func ParsePlan(spec string) (Plan, error) {
	plan := Plan{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return plan, fmt.Errorf("chaos: empty plan spec")
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return plan, fmt.Errorf("chaos: bad spec field %q (want key=value)", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return plan, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			plan.Seed = n
		case "drop", "dup", "corrupt", "truncate":
			p, err := parseProb(val)
			if err != nil {
				return plan, fmt.Errorf("chaos: bad %s probability %q: %v", key, val, err)
			}
			f := Fault{Drop: key == "drop", Dup: key == "dup",
				Corrupt: key == "corrupt", Truncate: key == "truncate"}
			plan.Rules = append(plan.Rules, Rule{Prob: p, Fault: f})
		case "delay":
			durStr, probStr, ok := strings.Cut(val, ":")
			if !ok {
				return plan, fmt.Errorf("chaos: bad delay %q (want DUR:PROB)", val)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return plan, fmt.Errorf("chaos: bad delay duration %q", durStr)
			}
			p, err := parseProb(probStr)
			if err != nil {
				return plan, fmt.Errorf("chaos: bad delay probability %q: %v", probStr, err)
			}
			plan.Rules = append(plan.Rules, Rule{Prob: p, Fault: Fault{Delay: d}})
		case "partition":
			afterStr, forStr, ok := strings.Cut(val, "+")
			if !ok {
				return plan, fmt.Errorf("chaos: bad partition %q (want AFTER+FOR)", val)
			}
			after, err := time.ParseDuration(afterStr)
			if err != nil || after < 0 {
				return plan, fmt.Errorf("chaos: bad partition start %q", afterStr)
			}
			dur, err := time.ParseDuration(forStr)
			if err != nil || dur <= 0 {
				return plan, fmt.Errorf("chaos: bad partition duration %q", forStr)
			}
			plan.Partitions = append(plan.Partitions, Partition{After: after, For: dur})
		default:
			return plan, fmt.Errorf("chaos: unknown spec key %q", key)
		}
	}
	return plan, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}
