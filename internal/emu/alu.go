// Package emu implements the functional execution engines for both ISA
// abstractions: the HSAIL engine executes SIMT instructions per work-item
// with a simulator-managed reconvergence stack, and the GCN3 engine executes
// whole-wavefront vector and scalar instructions against the architected
// EXEC mask and ABI-initialized register state.
//
// The engines are value-accurate: they really compute, load and store every
// lane value, because the paper's Figure 10 (VRF value uniqueness) and the
// workload output checkers depend on real data. Timing is not modeled here;
// package timing drives an Engine and charges cycles around it.
package emu

import (
	"math"

	"ilsim/internal/isa"
)

// Typed arithmetic on raw 64-bit bit patterns. 32-bit types use the low half.

func f32(v uint64) float32  { return math.Float32frombits(uint32(v)) }
func f64v(v uint64) float64 { return math.Float64frombits(v) }
func fromF32(f float32) uint64 {
	return uint64(math.Float32bits(f))
}
func fromF64(f float64) uint64 { return math.Float64bits(f) }

// binOpKind enumerates the shared binary operations.
type binOpKind uint8

// Binary operation kinds shared by the HSAIL and GCN3 engines.
const (
	binAdd binOpKind = iota
	binSub
	binMul
	binMulHi
	binDiv
	binRem
	binMin
	binMax
	binAnd
	binOr
	binXor
	binShl
	binShr
)

// binOp applies a typed binary operation to raw bit patterns.
func binOp(kind binOpKind, t isa.DataType, a, b uint64) uint64 {
	switch t {
	case isa.TypeF32:
		x, y := f32(a), f32(b)
		switch kind {
		case binAdd:
			return fromF32(x + y)
		case binSub:
			return fromF32(x - y)
		case binMul:
			return fromF32(x * y)
		case binDiv:
			return fromF32(x / y)
		case binMin:
			return fromF32(float32(math.Min(float64(x), float64(y))))
		case binMax:
			return fromF32(float32(math.Max(float64(x), float64(y))))
		}
	case isa.TypeF64:
		x, y := f64v(a), f64v(b)
		switch kind {
		case binAdd:
			return fromF64(x + y)
		case binSub:
			return fromF64(x - y)
		case binMul:
			return fromF64(x * y)
		case binDiv:
			return fromF64(x / y)
		case binMin:
			return fromF64(math.Min(x, y))
		case binMax:
			return fromF64(math.Max(x, y))
		}
	case isa.TypeU32, isa.TypeB32:
		x, y := uint32(a), uint32(b)
		switch kind {
		case binAdd:
			return uint64(x + y)
		case binSub:
			return uint64(x - y)
		case binMul:
			return uint64(x * y)
		case binMulHi:
			return uint64(uint32(uint64(x) * uint64(y) >> 32))
		case binDiv:
			if y == 0 {
				return uint64(^uint32(0))
			}
			return uint64(x / y)
		case binRem:
			if y == 0 {
				return uint64(x)
			}
			return uint64(x % y)
		case binMin:
			if x < y {
				return uint64(x)
			}
			return uint64(y)
		case binMax:
			if x > y {
				return uint64(x)
			}
			return uint64(y)
		case binAnd:
			return uint64(x & y)
		case binOr:
			return uint64(x | y)
		case binXor:
			return uint64(x ^ y)
		case binShl:
			return uint64(x << (y & 31))
		case binShr:
			return uint64(x >> (y & 31))
		}
	case isa.TypeS32:
		x, y := int32(a), int32(b)
		switch kind {
		case binAdd:
			return uint64(uint32(x + y))
		case binSub:
			return uint64(uint32(x - y))
		case binMul:
			return uint64(uint32(x * y))
		case binMulHi:
			return uint64(uint32(int64(x) * int64(y) >> 32))
		case binDiv:
			if y == 0 {
				return uint64(^uint32(0))
			}
			return uint64(uint32(x / y))
		case binRem:
			if y == 0 {
				return uint64(uint32(x))
			}
			return uint64(uint32(x % y))
		case binMin:
			if x < y {
				return uint64(uint32(x))
			}
			return uint64(uint32(y))
		case binMax:
			if x > y {
				return uint64(uint32(x))
			}
			return uint64(uint32(y))
		case binAnd:
			return uint64(uint32(x & y))
		case binOr:
			return uint64(uint32(x | y))
		case binXor:
			return uint64(uint32(x ^ y))
		case binShl:
			return uint64(uint32(x << (uint32(y) & 31)))
		case binShr:
			return uint64(uint32(x >> (uint32(y) & 31)))
		}
	case isa.TypeU64, isa.TypeB64:
		switch kind {
		case binAdd:
			return a + b
		case binSub:
			return a - b
		case binMul:
			return a * b
		case binDiv:
			if b == 0 {
				return ^uint64(0)
			}
			return a / b
		case binRem:
			if b == 0 {
				return a
			}
			return a % b
		case binMin:
			if a < b {
				return a
			}
			return b
		case binMax:
			if a > b {
				return a
			}
			return b
		case binAnd:
			return a & b
		case binOr:
			return a | b
		case binXor:
			return a ^ b
		case binShl:
			return a << (b & 63)
		case binShr:
			return a >> (b & 63)
		}
	case isa.TypeS64:
		x, y := int64(a), int64(b)
		switch kind {
		case binAdd:
			return uint64(x + y)
		case binSub:
			return uint64(x - y)
		case binMul:
			return uint64(x * y)
		case binDiv:
			if y == 0 {
				return ^uint64(0)
			}
			return uint64(x / y)
		case binRem:
			if y == 0 {
				return uint64(x)
			}
			return uint64(x % y)
		case binMin:
			if x < y {
				return uint64(x)
			}
			return uint64(y)
		case binMax:
			if x > y {
				return uint64(x)
			}
			return uint64(y)
		case binShl:
			return uint64(x << (uint64(y) & 63))
		case binShr:
			return uint64(x >> (uint64(y) & 63))
		}
	}
	return 0
}

// fma applies a fused multiply-add of type t.
func fma(t isa.DataType, a, b, c uint64) uint64 {
	switch t {
	case isa.TypeF32:
		return fromF32(float32(math.FMA(float64(f32(a)), float64(f32(b)), float64(f32(c)))))
	case isa.TypeF64:
		return fromF64(math.FMA(f64v(a), f64v(b), f64v(c)))
	default:
		// Integer mad.
		return binOp(binAdd, t, binOp(binMul, t, a, b), c)
	}
}

// unOpKind enumerates unary operations.
type unOpKind uint8

// Unary operation kinds.
const (
	unAbs unOpKind = iota
	unNeg
	unNot
	unSqrt
	unRsqrt
	unRcp
)

// unOp applies a typed unary operation.
func unOp(kind unOpKind, t isa.DataType, a uint64) uint64 {
	switch t {
	case isa.TypeF32:
		x := f32(a)
		switch kind {
		case unAbs:
			return fromF32(float32(math.Abs(float64(x))))
		case unNeg:
			return fromF32(-x)
		case unSqrt:
			return fromF32(float32(math.Sqrt(float64(x))))
		case unRsqrt:
			return fromF32(float32(1 / math.Sqrt(float64(x))))
		case unRcp:
			return fromF32(1 / x)
		}
	case isa.TypeF64:
		x := f64v(a)
		switch kind {
		case unAbs:
			return fromF64(math.Abs(x))
		case unNeg:
			return fromF64(-x)
		case unSqrt:
			return fromF64(math.Sqrt(x))
		case unRsqrt:
			return fromF64(1 / math.Sqrt(x))
		case unRcp:
			return fromF64(1 / x)
		}
	case isa.TypeS32:
		x := int32(a)
		switch kind {
		case unAbs:
			if x < 0 {
				x = -x
			}
			return uint64(uint32(x))
		case unNeg:
			return uint64(uint32(-x))
		case unNot:
			return uint64(uint32(^x))
		}
	case isa.TypeU32, isa.TypeB32:
		switch kind {
		case unNot:
			return uint64(^uint32(a))
		case unNeg:
			return uint64(uint32(-int32(a)))
		case unAbs:
			return uint64(uint32(a))
		}
	case isa.TypeU64, isa.TypeB64:
		switch kind {
		case unNot:
			return ^a
		case unNeg:
			return uint64(-int64(a))
		case unAbs:
			return a
		}
	case isa.TypeS64:
		x := int64(a)
		switch kind {
		case unAbs:
			if x < 0 {
				x = -x
			}
			return uint64(x)
		case unNeg:
			return uint64(-x)
		case unNot:
			return uint64(^x)
		}
	}
	return 0
}

// compare evaluates a typed comparison.
func compare(op isa.CmpOp, t isa.DataType, a, b uint64) bool {
	cmp := 0
	switch t {
	case isa.TypeF32:
		x, y := f32(a), f32(b)
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		case x != y: // NaN: only eq/ne meaningful
			return op == isa.CmpNe
		}
	case isa.TypeF64:
		x, y := f64v(a), f64v(b)
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		case x != y:
			return op == isa.CmpNe
		}
	case isa.TypeS32:
		x, y := int32(a), int32(b)
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		}
	case isa.TypeS64:
		x, y := int64(a), int64(b)
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		}
	case isa.TypeU64, isa.TypeB64:
		switch {
		case a < b:
			cmp = -1
		case a > b:
			cmp = 1
		}
	default: // U32, B32
		x, y := uint32(a), uint32(b)
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		}
	}
	return op.Evaluate(cmp)
}

// convert performs a typed conversion from st to dt.
func convert(dt, st isa.DataType, v uint64) uint64 {
	// Normalize the source to a canonical value.
	var asF float64
	var asI int64
	var asU uint64
	switch st {
	case isa.TypeF32:
		asF = float64(f32(v))
		asI = int64(asF)
		asU = uint64(asF)
	case isa.TypeF64:
		asF = f64v(v)
		asI = int64(asF)
		asU = uint64(asF)
	case isa.TypeS32:
		asI = int64(int32(v))
		asF = float64(asI)
		asU = uint64(asI)
	case isa.TypeS64:
		asI = int64(v)
		asF = float64(asI)
		asU = uint64(asI)
	case isa.TypeU32, isa.TypeB32:
		asU = uint64(uint32(v))
		asI = int64(asU)
		asF = float64(asU)
	default:
		asU = v
		asI = int64(v)
		asF = float64(v)
	}
	switch dt {
	case isa.TypeF32:
		return fromF32(float32(asF))
	case isa.TypeF64:
		return fromF64(asF)
	case isa.TypeS32:
		return uint64(uint32(int32(asI)))
	case isa.TypeS64:
		return uint64(asI)
	case isa.TypeU32, isa.TypeB32:
		return uint64(uint32(asU))
	default:
		return asU
	}
}
