package emu

import (
	"testing"

	"ilsim/internal/hsa"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// hsailEngineFor builds a single-wave HSAIL engine for a builder-produced
// kernel.
func hsailEngineFor(t *testing.T, k *hsail.Kernel) (*HSAILEngine, *Wave) {
	t.Helper()
	cfg, err := kernel.AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	ctx := hsa.NewContext()
	pkt := &hsa.AQLPacket{WorkgroupSize: [3]uint16{64, 1, 1}, GridSize: [3]uint32{64, 1, 1}}
	pktAddr := ctx.AllocQueueSlot(hsa.PacketSize)
	b := pkt.Encode()
	ctx.Mem.Write(pktAddr, b[:])
	d, err := hsa.ExpandDispatch(pkt, pktAddr)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewHSAILEngine(ctx, k, cfg, d, 0x1000, &Collector{})
	wg := NewWGState(d, &d.Workgroups[0], k.GroupSize)
	return eng, eng.NewWave(wg, 0)
}

// runWave executes to completion, returning redirect count and max RS depth.
func runWave(t *testing.T, eng *HSAILEngine, w *Wave) (int, int) {
	t.Helper()
	redirects, maxDepth := 0, 0
	for !w.Done {
		r, err := eng.Execute(w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Redirected {
			redirects++
		}
		if len(w.RS) > maxDepth {
			maxDepth = len(w.RS)
		}
	}
	return redirects, maxDepth
}

// TestRSNestedDivergenceDepth: nested divergent ifs grow the reconvergence
// stack and drain it fully by kernel end.
func TestRSNestedDivergenceDepth(t *testing.T) {
	b := kernel.NewBuilder("nested_rs")
	gid := b.WorkItemAbsID(isa.DimX)
	x := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	// Each level does work AFTER its inner join so the join blocks have
	// distinct PCs (empty adjacent joins would collapse to one
	// reconvergence point and share a single restore entry).
	b.IfCmp(isa.CmpLt, isa.TypeU32, gid, b.Int(isa.TypeU32, 48), func() {
		b.IfCmp(isa.CmpLt, isa.TypeU32, gid, b.Int(isa.TypeU32, 32), func() {
			b.IfCmp(isa.CmpLt, isa.TypeU32, gid, b.Int(isa.TypeU32, 16), func() {
				b.MovTo(x, b.Int(isa.TypeU32, 3))
			}, nil)
			b.BinaryTo(hsail.OpAdd, x, x, b.Int(isa.TypeU32, 10))
		}, nil)
		b.BinaryTo(hsail.OpAdd, x, x, b.Int(isa.TypeU32, 100))
	}, nil)
	b.Ret()
	eng, w := hsailEngineFor(t, b.MustFinish())
	_, maxDepth := runWave(t, eng, w)
	if maxDepth < 3 {
		t.Errorf("nested divergence reached RS depth %d, want >= 3", maxDepth)
	}
	if len(w.RS) != 0 {
		t.Errorf("RS not drained: %d entries left", len(w.RS))
	}
	if w.Exec != isa.FullMask(64) {
		t.Errorf("exec not restored: %#x", w.Exec)
	}
}

// TestRSUniformPathsNoStack: when every lane agrees, the RS must stay empty.
func TestRSUniformPathsNoStack(t *testing.T) {
	b := kernel.NewBuilder("uniform_rs")
	gid := b.WorkItemAbsID(isa.DimX)
	zero := b.And(isa.TypeU32, gid, b.Int(isa.TypeU32, 0))
	x := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.IfCmp(isa.CmpEq, isa.TypeU32, zero, b.Int(isa.TypeU32, 0), func() {
		b.MovTo(x, b.Int(isa.TypeU32, 1))
	}, func() {
		b.MovTo(x, b.Int(isa.TypeU32, 2))
	})
	b.Ret()
	eng, w := hsailEngineFor(t, b.MustFinish())
	_, maxDepth := runWave(t, eng, w)
	if maxDepth != 0 {
		t.Errorf("uniform branch engaged the RS (depth %d)", maxDepth)
	}
}

// TestRSDivergentLoopBounded: a loop with per-lane trip counts must keep the
// RS bounded (one restore entry) regardless of iteration count.
func TestRSDivergentLoopBounded(t *testing.T) {
	b := kernel.NewBuilder("div_loop_rs")
	gid := b.WorkItemAbsID(isa.DimX)
	limit := b.And(isa.TypeU32, gid, b.Int(isa.TypeU32, 15))
	i := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.WhileCmp(isa.CmpLt, isa.TypeU32, i, limit, func() {
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(isa.TypeU32, 1))
	})
	b.Ret()
	eng, w := hsailEngineFor(t, b.MustFinish())
	_, maxDepth := runWave(t, eng, w)
	// Guard restore + latch restore: depth must NOT grow with iterations.
	if maxDepth > 2 {
		t.Errorf("divergent loop grew the RS to depth %d", maxDepth)
	}
	if w.Exec != isa.FullMask(64) {
		t.Errorf("exec not restored after loop: %#x", w.Exec)
	}
}

// TestHSAILGeometryQueries: all dispatch-geometry ops are serviced from
// simulator state.
func TestHSAILGeometryQueries(t *testing.T) {
	b := kernel.NewBuilder("geom")
	g0 := b.WorkItemAbsID(isa.DimX)
	g1 := b.WorkItemID(isa.DimX)
	g2 := b.WorkGroupID(isa.DimX)
	g3 := b.WorkGroupSize(isa.DimX)
	g4 := b.GridSize(isa.DimX)
	_ = b.Add(isa.TypeU32, b.Add(isa.TypeU32, g0, g1),
		b.Add(isa.TypeU32, g2, b.Add(isa.TypeU32, g3, g4)))
	b.Ret()
	eng, w := hsailEngineFor(t, b.MustFinish())
	// Step the five geometry queries and verify lane values.
	checks := []func(lane int) uint32{
		func(l int) uint32 { return uint32(l) }, // absid (wg 0)
		func(l int) uint32 { return uint32(l) }, // workitemid
		func(l int) uint32 { return 0 },         // workgroupid
		func(l int) uint32 { return 64 },        // workgroupsize
		func(l int) uint32 { return 64 },        // gridsize
	}
	for qi, want := range checks {
		in := eng.flat[(w.PC-eng.Base)/hsail.InstBytes]
		if _, err := eng.Execute(w); err != nil {
			t.Fatal(err)
		}
		slot := int(in.Dst.Reg)
		for lane := 0; lane < 64; lane += 17 {
			if got := w.VRegs[slot][lane]; got != want(lane) {
				t.Fatalf("query %d lane %d: got %d want %d", qi, lane, got, want(lane))
			}
		}
	}
}

// TestHSAILKernargNoMemoryTraffic: kernarg loads are serviced from the
// simulator's dispatch state and must not produce memory-system requests
// (paper Table 2 discussion).
func TestHSAILKernargNoMemoryTraffic(t *testing.T) {
	b := kernel.NewBuilder("kernarg_traffic")
	p := b.ArgPtr("p")
	v := b.LoadArg(p)
	_ = b.Add(isa.TypeU64, v, b.Int(isa.TypeU64, 1))
	b.Ret()
	k := b.MustFinish()
	eng, w := hsailEngineFor(t, k)
	for !w.Done {
		r, err := eng.Execute(w)
		if err != nil {
			t.Fatal(err)
		}
		if r.MemKind != MemNone && len(r.Lines) > 0 {
			t.Fatalf("kernarg kernel produced memory traffic: %v", r.Lines)
		}
	}
}
