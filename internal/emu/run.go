package emu

import (
	"fmt"

	"ilsim/internal/hsa"
)

// RunFunctional executes a dispatch to completion with no timing model:
// wavefronts within a workgroup are stepped round-robin (one instruction per
// turn) and workgroup barriers release when every unfinished wavefront of the
// group has reached one. It is the reference executor used by tests and by
// the finalizer-equivalence property suite; package timing replicates its
// semantics with cycle accounting.
func RunFunctional(eng Engine, d *hsa.Dispatch) error {
	for wi := range d.Workgroups {
		info := &d.Workgroups[wi]
		wg := NewWGState(d, info, eng.LDSBytes())
		waves := make([]*Wave, info.NumWaves)
		for i := range waves {
			waves[i] = eng.NewWave(wg, i)
		}
		atBarrier := make([]bool, len(waves))
		for {
			allDone := true
			progressed := false
			for i, w := range waves {
				if w.Done {
					continue
				}
				allDone = false
				if atBarrier[i] {
					continue
				}
				res, err := eng.Execute(w)
				if err != nil {
					return fmt.Errorf("emu: %s wg %d wave %d: %w", eng.Abstraction(), wi, i, err)
				}
				progressed = true
				if res.IsBarrier {
					atBarrier[i] = true
				}
			}
			if allDone {
				break
			}
			if !progressed {
				// Everyone left is waiting at a barrier: release.
				stuck := true
				for i, w := range waves {
					if w.Done {
						continue
					}
					if atBarrier[i] {
						atBarrier[i] = false
						stuck = false
					}
				}
				if stuck {
					return fmt.Errorf("emu: %s wg %d: no runnable wavefront (deadlock)", eng.Abstraction(), wi)
				}
			}
		}
	}
	return nil
}
