package emu

import (
	"fmt"

	"ilsim/internal/hsa"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/mem"
	"ilsim/internal/stats"
)

// HSAILEngine executes HSAIL kernels the way IL-level simulators do:
// one SIMT instruction at a time per wavefront, with control-flow divergence
// managed by a simulator reconvergence stack using immediate post-dominator
// reconvergence points, a simulator-defined ABI (geometry and kernarg state
// serviced from dispatch structures rather than registers/memory), and every
// operand residing in the virtual vector register file.
type HSAILEngine struct {
	Ctx *hsa.Context
	K   *hsail.Kernel
	CFG *kernel.CFG
	D   *hsa.Dispatch
	Col *Collector

	// Base is the simulated-memory address where the decoded kernel's
	// fixed 8-byte instruction handles live.
	Base uint64

	flat       []hsail.Inst
	blockStart []int
	instBlock  []int
	// infos is the per-PC decode cache: scheduling metadata is static per
	// instruction, so Peek is a table lookup on the hot path.
	infos []InstInfo

	// vs0..vdst are Execute's lane scratch buffers, hoisted to the engine
	// so the hot path does not zero 2KB of stack per instruction. Reuse is
	// safe because sources are filled for all lanes (readSrc) and dst is
	// both written and consumed under EXEC (perLane / writeDst), so stale
	// lanes are never observable. They also make Execute non-reentrant:
	// concurrent compute units need per-CU clones (Fork).
	vs0, vs1, vs2, vdst [isa.WavefrontSize]uint64

	// sharedAtomics records whether the kernel touches shared memory with
	// read-modify-write operations (computed once at load).
	sharedAtomics bool
}

var _ Forker = (*HSAILEngine)(nil)

// NewHSAILEngine loads a kernel for a dispatch. base is the code address the
// loader assigned (each instruction occupies hsail.InstBytes there).
func NewHSAILEngine(ctx *hsa.Context, k *hsail.Kernel, cfg *kernel.CFG, d *hsa.Dispatch, base uint64, col *Collector) *HSAILEngine {
	e := &HSAILEngine{Ctx: ctx, K: k, CFG: cfg, D: d, Col: col, Base: base}
	for _, b := range k.Blocks {
		e.blockStart = append(e.blockStart, len(e.flat))
		for _, in := range b.Insts {
			e.flat = append(e.flat, in)
			e.instBlock = append(e.instBlock, b.ID)
		}
	}
	e.infos = make([]InstInfo, len(e.flat))
	for i := range e.infos {
		e.infos[i] = e.decodeInfo(i)
	}
	for _, in := range e.flat {
		if in.Op == hsail.OpAtomicAdd && in.Seg != hsail.SegGroup {
			e.sharedAtomics = true
			break
		}
	}
	return e
}

// Fork returns an execution clone for one compute unit: shared decode
// state, private lane scratch (the struct copy), a private collector
// targeting run, and a private memory view when mv is non-nil.
func (e *HSAILEngine) Fork(run *stats.Run, mv *mem.Memory) Engine {
	f := *e
	f.Col = e.Col.Fork(run)
	if mv != nil {
		ctx := *e.Ctx
		ctx.Mem = mv
		f.Ctx = &ctx
	}
	return &f
}

// SharedAtomics reports read-modify-write use of shared (non-LDS) memory.
func (e *HSAILEngine) SharedAtomics() bool { return e.sharedAtomics }

// Abstraction identifies the engine.
func (e *HSAILEngine) Abstraction() string { return "HSAIL" }

// CodeBytes returns the 8-byte-per-instruction loaded footprint.
func (e *HSAILEngine) CodeBytes() uint64 { return uint64(len(e.flat)) * hsail.InstBytes }

// LDSBytes returns the workgroup LDS demand.
func (e *HSAILEngine) LDSBytes() int { return e.K.GroupSize }

// RegDemand returns the register demand: all registers are vector slots.
func (e *HSAILEngine) RegDemand() (int, int) { return e.K.NumRegSlots, 0 }

func (e *HSAILEngine) pcOf(idx int) uint64 { return e.Base + uint64(idx)*hsail.InstBytes }

func (e *HSAILEngine) idxOf(pc uint64) (int, error) {
	if pc < e.Base || (pc-e.Base)%hsail.InstBytes != 0 {
		return 0, fmt.Errorf("emu: bad HSAIL PC %#x", pc)
	}
	idx := int((pc - e.Base) / hsail.InstBytes)
	if idx >= len(e.flat) {
		return 0, fmt.Errorf("emu: HSAIL PC %#x past end of kernel", pc)
	}
	return idx, nil
}

// InstString disassembles the instruction at pc.
func (e *HSAILEngine) InstString(pc uint64) string {
	idx, err := e.idxOf(pc)
	if err != nil {
		return err.Error()
	}
	return e.flat[idx].String()
}

// NewWave initializes wavefront state: the simulator-defined ABI needs no
// register initialization at all — dispatch state is serviced directly.
func (e *HSAILEngine) NewWave(wg *WGState, waveID int) *Wave {
	first := waveID * isa.WavefrontSize
	lanes := wg.Info.Size - first
	if lanes > isa.WavefrontSize {
		lanes = isa.WavefrontSize
	}
	w := &Wave{
		WG: wg, WaveID: waveID, FirstWI: first, NumLanes: lanes,
		PC:    e.Base,
		Exec:  isa.FullMask(lanes),
		VRegs: make([][isa.WavefrontSize]uint32, e.K.NumRegSlots),
		CRegs: make([]uint64, e.K.NumCRegs),
	}
	if e.Col != nil && e.Col.TrackReuse {
		w.Reuse = stats.NewReuseTracker(e.K.NumRegSlots)
	}
	return w
}

// Peek returns the decode-cache entry for the instruction at w.PC.
func (e *HSAILEngine) Peek(w *Wave) (*InstInfo, error) {
	idx, err := e.idxOf(w.PC)
	if err != nil {
		return nil, err
	}
	return &e.infos[idx], nil
}

// decodeInfo builds the scheduling metadata of instruction idx.
func (e *HSAILEngine) decodeInfo(idx int) InstInfo {
	in := &e.flat[idx]
	info := InstInfo{
		PC:        e.pcOf(idx),
		SizeBytes: hsail.InstBytes,
		Category:  in.Category(),
	}
	addReg := func(l *RegList, o hsail.Operand, t isa.DataType) {
		if o.Kind == hsail.OperReg {
			l.Add(int(o.Reg), t.Regs())
		}
	}
	srcT := in.Type
	if in.SrcType != isa.TypeNone {
		srcT = in.SrcType
	}
	for i, s := range in.SrcSlice() {
		t := srcT
		if in.Op == hsail.OpCmov && i == 0 {
			t = isa.TypeNone
		}
		addReg(&info.VRFReads, s, t)
	}
	if in.Op.IsMemory() || in.Op == hsail.OpLda {
		addReg(&info.VRFReads, in.Addr.Base, isa.TypeU64)
	}
	dt := in.Type
	if in.Op == hsail.OpLda {
		dt = isa.TypeU64
	}
	if in.Dst.Kind == hsail.OperReg {
		addReg(&info.VRFWrites, in.Dst, dt)
	}
	switch in.Op {
	case hsail.OpDiv, hsail.OpRem, hsail.OpSqrt, hsail.OpRsqrt:
		info.LatClass = LatTrans
	case hsail.OpLd, hsail.OpSt, hsail.OpAtomicAdd:
		switch in.Seg {
		case hsail.SegGroup:
			info.LatClass = LatLDS
			info.IsLGKM = true
		case hsail.SegKernarg:
			// Serviced from simulator dispatch state (no memory access).
			info.LatClass = LatALU
		default:
			info.LatClass = LatMem
			info.IsVMem = true
		}
	case hsail.OpBr, hsail.OpCBr:
		info.LatClass = LatBranch
		info.IsBranch = true
	case hsail.OpBarrier:
		info.LatClass = LatNop
		info.IsBarrier = true
	case hsail.OpRet:
		info.LatClass = LatNop
		info.IsEndPgm = true
	case hsail.OpNop:
		info.LatClass = LatNop
	default:
		if in.Type.Regs() == 2 {
			info.LatClass = LatALU64
		} else {
			info.LatClass = LatALU
		}
	}
	info.WaitVM, info.WaitLGKM = -1, -1
	return info
}

// readSrc gathers a source operand's per-lane raw values.
func (e *HSAILEngine) readSrc(w *Wave, o hsail.Operand, t isa.DataType, vals *[isa.WavefrontSize]uint64) {
	switch o.Kind {
	case hsail.OperImm:
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			vals[lane] = o.Imm
		}
	case hsail.OperReg:
		slot := int(o.Reg)
		lo := &w.VRegs[slot]
		e.Col.OnVRFValue(false, lo, w.Exec)
		e.Col.OnVRFSlot(w, slot)
		if t.Regs() == 2 {
			hi := &w.VRegs[slot+1]
			e.Col.OnVRFValue(false, hi, w.Exec)
			e.Col.OnVRFSlot(w, slot+1)
			for lane := 0; lane < isa.WavefrontSize; lane++ {
				vals[lane] = uint64(lo[lane]) | uint64(hi[lane])<<32
			}
		} else {
			for lane := 0; lane < isa.WavefrontSize; lane++ {
				vals[lane] = uint64(lo[lane])
			}
		}
	case hsail.OperCReg:
		m := w.CRegs[o.Reg]
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			vals[lane] = m >> uint(lane) & 1
		}
	}
}

// writeDst stores per-lane results into a destination register under the
// current execution mask.
func (e *HSAILEngine) writeDst(w *Wave, o hsail.Operand, t isa.DataType, vals *[isa.WavefrontSize]uint64) {
	slot := int(o.Reg)
	lo := &w.VRegs[slot]
	for lane := 0; lane < isa.WavefrontSize; lane++ {
		if w.Exec.Bit(lane) {
			lo[lane] = uint32(vals[lane])
		}
	}
	e.Col.OnVRFValue(true, lo, w.Exec)
	e.Col.OnVRFSlot(w, slot)
	if t.Regs() == 2 {
		hi := &w.VRegs[slot+1]
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if w.Exec.Bit(lane) {
				hi[lane] = uint32(vals[lane] >> 32)
			}
		}
		e.Col.OnVRFValue(true, hi, w.Exec)
		e.Col.OnVRFSlot(w, slot+1)
	}
}

// laneAbsFlatID returns the absolute flat work-item ID for a lane.
func (w *Wave) laneAbsFlatID(lane int) uint64 {
	return w.WG.Info.FirstAbsFlatID + uint64(w.FirstWI+lane)
}

// hsailBinKind and hsailUnKind map ALU opcodes to evaluator kinds (hoisted
// to package scope so Execute does not rebuild them per instruction).
var hsailBinKind = map[hsail.Op]binOpKind{
	hsail.OpAdd: binAdd, hsail.OpSub: binSub, hsail.OpMul: binMul,
	hsail.OpMulHi: binMulHi, hsail.OpDiv: binDiv, hsail.OpRem: binRem,
	hsail.OpMin: binMin, hsail.OpMax: binMax, hsail.OpAnd: binAnd,
	hsail.OpOr: binOr, hsail.OpXor: binXor, hsail.OpShl: binShl,
	hsail.OpShr: binShr,
}

var hsailUnKind = map[hsail.Op]unOpKind{
	hsail.OpAbs: unAbs, hsail.OpNeg: unNeg, hsail.OpNot: unNot,
	hsail.OpSqrt: unSqrt, hsail.OpRsqrt: unRsqrt,
}

// Execute commits the instruction at w.PC.
func (e *HSAILEngine) Execute(w *Wave) (ExecResult, error) {
	idx, err := e.idxOf(w.PC)
	if err != nil {
		return ExecResult{}, err
	}
	in := &e.flat[idx]
	info := &e.infos[idx]
	res := ExecResult{ActiveLanes: w.Exec.PopCount()}
	e.Col.TickReuse(w)
	seqPC := w.PC + hsail.InstBytes

	s0, s1, s2, dst := &e.vs0, &e.vs1, &e.vs2, &e.vdst
	srcT := in.Type
	if in.SrcType != isa.TypeNone {
		srcT = in.SrcType
	}
	readSrcs := func() {
		srcs := in.SrcSlice()
		if len(srcs) > 0 {
			t := srcT
			if in.Op == hsail.OpCmov {
				t = isa.TypeNone
			}
			e.readSrc(w, srcs[0], t, s0)
		}
		if len(srcs) > 1 {
			e.readSrc(w, srcs[1], srcT, s1)
		}
		if len(srcs) > 2 {
			e.readSrc(w, srcs[2], srcT, s2)
		}
	}

	perLane := func(f func(lane int)) {
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if w.Exec.Bit(lane) {
				f(lane)
			}
		}
	}

	switch in.Op {
	case hsail.OpNop:
		// nothing
	case hsail.OpMov:
		readSrcs()
		perLane(func(l int) { dst[l] = s0[l] })
		e.writeDst(w, in.Dst, in.Type, dst)
	case hsail.OpCvt:
		readSrcs()
		perLane(func(l int) { dst[l] = convert(in.Type, in.SrcType, s0[l]) })
		e.writeDst(w, in.Dst, in.Type, dst)
	case hsail.OpAdd, hsail.OpSub, hsail.OpMul, hsail.OpMulHi, hsail.OpDiv,
		hsail.OpRem, hsail.OpMin, hsail.OpMax, hsail.OpAnd, hsail.OpOr,
		hsail.OpXor, hsail.OpShl, hsail.OpShr:
		readSrcs()
		kind := hsailBinKind[in.Op]
		perLane(func(l int) { dst[l] = binOp(kind, in.Type, s0[l], s1[l]) })
		e.writeDst(w, in.Dst, in.Type, dst)
	case hsail.OpMad, hsail.OpFma:
		readSrcs()
		perLane(func(l int) { dst[l] = fma(in.Type, s0[l], s1[l], s2[l]) })
		e.writeDst(w, in.Dst, in.Type, dst)
	case hsail.OpAbs, hsail.OpNeg, hsail.OpNot, hsail.OpSqrt, hsail.OpRsqrt:
		readSrcs()
		kind := hsailUnKind[in.Op]
		perLane(func(l int) { dst[l] = unOp(kind, in.Type, s0[l]) })
		e.writeDst(w, in.Dst, in.Type, dst)
	case hsail.OpCmp:
		readSrcs()
		var m uint64
		perLane(func(l int) {
			if compare(in.Cmp, in.SrcType, s0[l], s1[l]) {
				m |= 1 << uint(l)
			}
		})
		// Merge under mask: inactive lanes keep their old bit.
		old := w.CRegs[in.Dst.Reg]
		w.CRegs[in.Dst.Reg] = old&^uint64(w.Exec) | m
	case hsail.OpCmov:
		readSrcs()
		perLane(func(l int) {
			if s0[l] != 0 {
				dst[l] = s1[l]
			} else {
				dst[l] = s2[l]
			}
		})
		e.writeDst(w, in.Dst, in.Type, dst)
	case hsail.OpWorkItemAbsId, hsail.OpWorkItemId, hsail.OpWorkGroupId,
		hsail.OpWorkGroupSize, hsail.OpGridSize:
		e.geometry(w, in, dst)
		e.writeDst(w, in.Dst, in.Type, dst)
	case hsail.OpLda:
		readSrcs()
		perLane(func(l int) {
			base := e.segmentBase(w, in.Seg, l)
			var regOff uint64
			if in.Addr.Base.Kind == hsail.OperReg {
				lo := w.VRegs[in.Addr.Base.Reg][l]
				hi := w.VRegs[in.Addr.Base.Reg+1][l]
				regOff = uint64(lo) | uint64(hi)<<32
			}
			dst[l] = base + regOff + uint64(int64(in.Addr.Offset))
		})
		if in.Addr.Base.Kind == hsail.OperReg {
			e.Col.OnVRFSlot(w, int(in.Addr.Base.Reg))
			e.Col.OnVRFSlot(w, int(in.Addr.Base.Reg)+1)
		}
		e.writeDst(w, in.Dst, isa.TypeU64, dst)
	case hsail.OpLd, hsail.OpSt, hsail.OpAtomicAdd:
		if err := e.memory(w, in, &res); err != nil {
			return res, err
		}
	case hsail.OpBarrier:
		res.IsBarrier = true
	case hsail.OpRet:
		w.Done = true
		res.IsEndPgm = true
		e.Col.OnCommit(info.Category, res.ActiveLanes)
		return res, nil
	case hsail.OpBr, hsail.OpCBr:
		e.branch(w, in, idx, seqPC, &res)
		e.Col.OnCommit(info.Category, res.ActiveLanes)
		return res, nil
	default:
		return res, fmt.Errorf("emu: unimplemented HSAIL op %s", in.Op)
	}

	w.PC = seqPC
	e.rsArrival(w, &res)
	e.Col.OnCommit(info.Category, res.ActiveLanes)
	return res, nil
}

// geometry services the dispatch-geometry query ops from simulator state —
// the "simulator-defined ABI" of IL execution (paper §III.A.1).
func (e *HSAILEngine) geometry(w *Wave, in *hsail.Inst, dst *[isa.WavefrontSize]uint64) {
	d := w.WG.Dispatch
	p := d.Packet
	dim := int(in.Dim)
	for lane := 0; lane < isa.WavefrontSize; lane++ {
		if !w.Exec.Bit(lane) {
			continue
		}
		wiFlat := w.FirstWI + lane
		switch in.Op {
		case hsail.OpWorkItemAbsId:
			dst[lane] = uint64(d.AbsID(w.WG.Info, wiFlat)[dim])
		case hsail.OpWorkItemId:
			dst[lane] = uint64(d.LocalID(wiFlat)[dim])
		case hsail.OpWorkGroupId:
			dst[lane] = uint64(w.WG.Info.ID[dim])
		case hsail.OpWorkGroupSize:
			dst[lane] = uint64(p.WorkgroupSize[dim])
		case hsail.OpGridSize:
			dst[lane] = uint64(p.GridSize[dim])
		}
	}
}

// segmentBase resolves the implicit base address of a segment for a lane,
// state the IL never sees in registers.
func (e *HSAILEngine) segmentBase(w *Wave, seg hsail.Segment, lane int) uint64 {
	d := w.WG.Dispatch
	switch seg {
	case hsail.SegKernarg:
		return d.Packet.KernargAddress
	case hsail.SegPrivate:
		return d.PrivateBase + w.laneAbsFlatID(lane)*uint64(d.PrivateStride)
	case hsail.SegSpill:
		return d.SpillBase + w.laneAbsFlatID(lane)*uint64(d.SpillStride)
	default:
		return 0
	}
}

// memory executes ld/st/atomic for every active lane and coalesces the
// generated addresses into line requests for the timing model.
func (e *HSAILEngine) memory(w *Wave, in *hsail.Inst, res *ExecResult) error {
	t := in.Type
	size := t.Regs() * 4
	var addrs [isa.WavefrontSize]uint64
	var regOff [isa.WavefrontSize]uint64
	if in.Addr.Base.Kind == hsail.OperReg {
		e.readSrc(w, hsail.Operand{Kind: hsail.OperReg, Reg: in.Addr.Base.Reg}, isa.TypeU64, &regOff)
	}
	var argOff uint64
	if in.Addr.Base.Kind == hsail.OperArgSym {
		argOff = uint64(e.K.Args[in.Addr.Base.Reg].Offset)
	}
	for lane := 0; lane < isa.WavefrontSize; lane++ {
		if !w.Exec.Bit(lane) {
			continue
		}
		addrs[lane] = e.segmentBase(w, in.Seg, lane) + regOff[lane] + argOff + uint64(int64(in.Addr.Offset))
	}

	var data [isa.WavefrontSize]uint64
	mmem := e.Ctx.Mem
	isLDS := in.Seg == hsail.SegGroup
	switch in.Op {
	case hsail.OpLd:
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if !w.Exec.Bit(lane) {
				continue
			}
			if isLDS {
				data[lane] = e.ldsRead(w, addrs[lane], size)
			} else if size == 8 {
				data[lane] = mmem.ReadU64(addrs[lane])
			} else {
				data[lane] = uint64(mmem.ReadU32(addrs[lane]))
			}
		}
		e.writeDst(w, in.Dst, t, &data)
	case hsail.OpSt:
		e.readSrc(w, in.Srcs[0], t, &data)
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if !w.Exec.Bit(lane) {
				continue
			}
			if isLDS {
				e.ldsWrite(w, addrs[lane], size, data[lane])
			} else if size == 8 {
				mmem.WriteU64(addrs[lane], data[lane])
			} else {
				mmem.WriteU32(addrs[lane], uint32(data[lane]))
			}
		}
		res.MemWrite = true
	case hsail.OpAtomicAdd:
		e.readSrc(w, in.Srcs[0], t, &data)
		var ret [isa.WavefrontSize]uint64
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if !w.Exec.Bit(lane) {
				continue
			}
			if isLDS {
				old := e.ldsRead(w, addrs[lane], size)
				e.ldsWrite(w, addrs[lane], size, old+data[lane])
				ret[lane] = old
			} else {
				ret[lane] = uint64(mmem.AtomicAddU32(addrs[lane], uint32(data[lane])))
			}
		}
		e.writeDst(w, in.Dst, t, &ret)
		res.MemWrite = true
	}
	switch in.Seg {
	case hsail.SegGroup:
		res.MemKind = MemLDS
		res.LDSBankConflicts = ldsBankConflicts(&addrs, w.Exec)
	case hsail.SegKernarg:
		// Kernarg loads are serviced from the emulated runtime's own
		// state: under HSAIL they never reach the memory system.
		res.MemKind = MemNone
	default:
		res.MemKind = MemGlobal
		w.linesBuf = mem.CoalesceInto(w.linesBuf[:0], &addrs, size, w.Exec)
		res.Lines = w.linesBuf
	}
	return nil
}

func (e *HSAILEngine) ldsRead(w *Wave, addr uint64, size int) uint64 {
	lds := w.WG.LDS
	if int(addr)+size > len(lds) {
		return 0
	}
	v := uint64(0)
	for i := 0; i < size; i++ {
		v |= uint64(lds[int(addr)+i]) << uint(8*i)
	}
	return v
}

func (e *HSAILEngine) ldsWrite(w *Wave, addr uint64, size int, v uint64) {
	lds := w.WG.LDS
	if int(addr)+size > len(lds) {
		return
	}
	for i := 0; i < size; i++ {
		lds[int(addr)+i] = byte(v >> uint(8*i))
	}
}

// branch implements the reconvergence-stack discipline of IL simulation
// (paper §III.C.1 and Figure 3b).
func (e *HSAILEngine) branch(w *Wave, in *hsail.Inst, idx int, seqPC uint64, res *ExecResult) {
	curBlock := e.instBlock[idx]
	targetPC := e.pcOf(e.blockStart[in.Target])

	if in.Op == hsail.OpBr {
		w.PC = targetPC
		res.Redirected = targetPC != seqPC
		e.rsArrival(w, res)
		return
	}

	// Conditional branch: evaluate per-lane condition.
	cond := w.CRegs[in.Srcs[0].Reg]
	taken := isa.ExecMask(cond) & w.Exec
	fall := w.Exec &^ taken

	switch {
	case taken == w.Exec: // uniformly taken
		w.PC = targetPC
		res.Redirected = targetPC != seqPC
	case taken == 0: // uniformly not taken
		w.PC = seqPC
	default: // divergent
		rpcBlock := e.CFG.IPDom[curBlock]
		if rpcBlock < 0 {
			// No reconvergence point: treat as taken-first with exit.
			rpcBlock = len(e.CFG.Succs) - 1
		}
		rpc := e.pcOf(e.blockStart[rpcBlock])
		switch {
		case targetPC == rpc:
			// Forward skip to the reconvergence point (if-then guard):
			// taken lanes wait at the RPC; no jump, no IB flush — the
			// case Figure 3's step ② highlights.
			e.ensureRestore(w, rpc)
			w.Exec = fall
			w.PC = seqPC
		case seqPC == rpc:
			// Backward latch (do-while): exiting lanes wait at the
			// join; remaining lanes jump back to the loop header.
			e.ensureRestore(w, rpc)
			w.Exec = taken
			w.PC = targetPC
			res.Redirected = true
		default:
			// If-then-else: execute the taken path first; push the
			// fall-through path and the restore entry.
			w.RS = append(w.RS,
				RSEntry{RPC: rpc, PC: rpc, Mask: w.Exec},
				RSEntry{RPC: rpc, PC: seqPC, Mask: fall},
			)
			w.Exec = taken
			w.PC = targetPC
			res.Redirected = true
		}
	}
	e.rsArrival(w, res)
}

// ensureRestore pushes a restore entry for rpc unless one already exists
// anywhere on the stack: lanes branching to an rpc that an enclosing
// construct will restore simply wait there (the paper's Figure 3 step 2 —
// "the RS detects that the branch in BB2 goes to the RPC").
func (e *HSAILEngine) ensureRestore(w *Wave, rpc uint64) {
	for i := len(w.RS) - 1; i >= 0; i-- {
		if w.RS[i].RPC == rpc && w.RS[i].PC == rpc {
			return
		}
	}
	w.RS = append(w.RS, RSEntry{RPC: rpc, PC: rpc, Mask: w.Exec})
}

// rsArrival pops reconvergence-stack entries whose RPC the wavefront has
// reached. Every pop redirects the front end — the simulator-initiated jumps
// that flush the instruction buffer (paper §III.C.1).
func (e *HSAILEngine) rsArrival(w *Wave, res *ExecResult) {
	for n := len(w.RS); n > 0 && w.PC == w.RS[n-1].RPC; n = len(w.RS) {
		entry := w.RS[n-1]
		w.RS = w.RS[:n-1]
		w.Exec = entry.Mask
		w.PC = entry.PC
		res.Redirected = true
	}
}
