package emu

import (
	"math"
	"testing"
	"testing/quick"

	"ilsim/internal/isa"
)

func TestBinOpU32AgainstGo(t *testing.T) {
	f := func(a, b uint32) bool {
		av, bv := uint64(a), uint64(b)
		shiftB := uint64(b & 31)
		checks := []struct {
			kind binOpKind
			x    uint64
			want uint32
		}{
			{binAdd, binOp(binAdd, isa.TypeU32, av, bv), a + b},
			{binSub, binOp(binSub, isa.TypeU32, av, bv), a - b},
			{binMul, binOp(binMul, isa.TypeU32, av, bv), a * b},
			{binMulHi, binOp(binMulHi, isa.TypeU32, av, bv), uint32(uint64(a) * uint64(b) >> 32)},
			{binAnd, binOp(binAnd, isa.TypeU32, av, bv), a & b},
			{binOr, binOp(binOr, isa.TypeU32, av, bv), a | b},
			{binXor, binOp(binXor, isa.TypeU32, av, bv), a ^ b},
			{binShl, binOp(binShl, isa.TypeU32, av, shiftB), a << (b & 31)},
			{binShr, binOp(binShr, isa.TypeU32, av, shiftB), a >> (b & 31)},
		}
		for _, c := range checks {
			if uint32(c.x) != c.want {
				return false
			}
		}
		if b != 0 {
			if uint32(binOp(binDiv, isa.TypeU32, av, bv)) != a/b {
				return false
			}
			if uint32(binOp(binRem, isa.TypeU32, av, bv)) != a%b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBinOpS32AgainstGo(t *testing.T) {
	f := func(a, b int32) bool {
		av, bv := uint64(uint32(a)), uint64(uint32(b))
		if int32(binOp(binAdd, isa.TypeS32, av, bv)) != a+b {
			return false
		}
		if int32(binOp(binMin, isa.TypeS32, av, bv)) != min32(a, b) {
			return false
		}
		if int32(binOp(binMax, isa.TypeS32, av, bv)) != max32(a, b) {
			return false
		}
		if int32(binOp(binShr, isa.TypeS32, av, uint64(uint32(b)&31))) != a>>(uint32(b)&31) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func TestBinOpF64AgainstGo(t *testing.T) {
	f := func(a, b float64) bool {
		av, bv := fromF64(a), fromF64(b)
		cases := []struct {
			got  uint64
			want float64
		}{
			{binOp(binAdd, isa.TypeF64, av, bv), a + b},
			{binOp(binSub, isa.TypeF64, av, bv), a - b},
			{binOp(binMul, isa.TypeF64, av, bv), a * b},
			{binOp(binDiv, isa.TypeF64, av, bv), a / b},
			{fma(isa.TypeF64, av, bv, fromF64(1.5)), math.FMA(a, b, 1.5)},
		}
		for _, c := range cases {
			want := fromF64(c.want)
			if c.got != want && !(math.IsNaN(f64v(c.got)) && math.IsNaN(c.want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnOpSemantics(t *testing.T) {
	if f64v(unOp(unSqrt, isa.TypeF64, fromF64(9))) != 3 {
		t.Error("sqrt")
	}
	if f64v(unOp(unRcp, isa.TypeF64, fromF64(4))) != 0.25 {
		t.Error("rcp")
	}
	if f64v(unOp(unRsqrt, isa.TypeF64, fromF64(4))) != 0.5 {
		t.Error("rsqrt")
	}
	if f64v(unOp(unNeg, isa.TypeF64, fromF64(2.5))) != -2.5 {
		t.Error("neg f64")
	}
	if int32(unOp(unAbs, isa.TypeS32, negU32(7))) != 7 {
		t.Error("abs s32")
	}
	if uint32(unOp(unNot, isa.TypeB32, 0xF0F0F0F0)) != 0x0F0F0F0F {
		t.Error("not b32")
	}
}

func TestCompareSemantics(t *testing.T) {
	// NaN handling: only Ne is true.
	nan := fromF64(math.NaN())
	one := fromF64(1.0)
	if compare(isa.CmpEq, isa.TypeF64, nan, one) || !compare(isa.CmpNe, isa.TypeF64, nan, one) {
		t.Error("NaN compare")
	}
	if compare(isa.CmpLt, isa.TypeF64, nan, one) || compare(isa.CmpGe, isa.TypeF64, nan, one) {
		t.Error("NaN ordering should be false")
	}
	// Signed vs unsigned.
	neg1 := uint64(uint32(0xFFFFFFFF))
	if !compare(isa.CmpLt, isa.TypeS32, neg1, 1) {
		t.Error("-1 < 1 signed")
	}
	if compare(isa.CmpLt, isa.TypeU32, neg1, 1) {
		t.Error("0xFFFFFFFF < 1 unsigned")
	}
}

func TestConvertSemantics(t *testing.T) {
	cases := []struct {
		dt, st isa.DataType
		in     uint64
		want   uint64
	}{
		{isa.TypeF32, isa.TypeU32, 7, fromF32(7)},
		{isa.TypeU32, isa.TypeF32, fromF32(7.9), 7}, // truncation
		{isa.TypeF64, isa.TypeF32, fromF32(1.5), fromF64(1.5)},
		{isa.TypeF32, isa.TypeF64, fromF64(2.25), fromF32(2.25)},
		{isa.TypeS64, isa.TypeS32, negU32(5), negI64(5)},
		{isa.TypeU64, isa.TypeU32, 0xFFFFFFFF, 0xFFFFFFFF},
		{isa.TypeU32, isa.TypeU64, 0x1_0000_0005, 5},
		{isa.TypeS32, isa.TypeF64, fromF64(-3.7), negU32(3)},
	}
	for _, c := range cases {
		if got := convert(c.dt, c.st, c.in); got != c.want {
			t.Errorf("convert(%s←%s, %#x) = %#x, want %#x", c.dt, c.st, c.in, got, c.want)
		}
	}
}

func negI64(v int64) uint64 { return uint64(-v) }
func negU32(v int32) uint64 { return uint64(uint32(-v)) }

func TestDivFixupSpecials(t *testing.T) {
	q := fromF64(42)
	if !math.IsNaN(f64v(divFixup(isa.TypeF64, q, fromF64(0), fromF64(0)))) {
		t.Error("0/0 should be NaN")
	}
	if !math.IsInf(f64v(divFixup(isa.TypeF64, q, fromF64(0), fromF64(3))), 1) {
		t.Error("3/0 should be +Inf")
	}
	if f64v(divFixup(isa.TypeF64, q, fromF64(3), fromF64(0))) != 0 {
		t.Error("0/3 should be 0")
	}
	if f64v(divFixup(isa.TypeF64, q, fromF64(3), fromF64(6))) != 42 {
		t.Error("normal case should pass the quotient through")
	}
}
