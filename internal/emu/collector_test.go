package emu

import (
	"testing"

	"ilsim/internal/isa"
	"ilsim/internal/stats"
)

func TestCollectorNilSafety(t *testing.T) {
	// A nil collector and a collector without a Run must be no-ops.
	var c *Collector
	c.OnCommit(isa.CatVALU, 64)
	c.TickReuse(&Wave{})
	c2 := &Collector{}
	c2.OnCommit(isa.CatVALU, 64)
	var vals [isa.WavefrontSize]uint32
	c2.OnVRFValue(false, &vals, isa.FullMask(64))
}

func TestCollectorCommitCounts(t *testing.T) {
	run := &stats.Run{}
	c := &Collector{Run: run}
	c.OnCommit(isa.CatVALU, 32)
	c.OnCommit(isa.CatVALU, 64)
	c.OnCommit(isa.CatSALU, 64)
	if run.InstsByCategory[isa.CatVALU] != 2 || run.InstsByCategory[isa.CatSALU] != 1 {
		t.Fatalf("category counts wrong: %v", run.InstsByCategory)
	}
	if run.VALUInsts != 2 || run.VALUActiveLanes != 96 {
		t.Fatalf("VALU accounting wrong: %d insts, %d lanes", run.VALUInsts, run.VALUActiveLanes)
	}
	if run.SIMDUtilization() != 96.0/128.0 {
		t.Fatalf("utilization %v", run.SIMDUtilization())
	}
}

func TestCollectorValueSampling(t *testing.T) {
	run := &stats.Run{}
	c := &Collector{Run: run, TrackValues: true, ValueSampleEvery: 4}
	var vals [isa.WavefrontSize]uint32
	for i := range vals {
		vals[i] = uint32(i % 4)
	}
	for i := 0; i < 16; i++ {
		c.OnVRFValue(false, &vals, isa.FullMask(64))
	}
	// Sampling 1-in-4 over 16 accesses records 4 observations of 64 lanes.
	if run.ReadLanes != 4*64 {
		t.Fatalf("sampled lanes %d, want %d", run.ReadLanes, 4*64)
	}
	if run.ReadUnique != 4*4 {
		t.Fatalf("sampled unique %d, want %d", run.ReadUnique, 4*4)
	}
	// Every-access sampling.
	run2 := &stats.Run{}
	c2 := &Collector{Run: run2, TrackValues: true, ValueSampleEvery: 1}
	c2.OnVRFValue(true, &vals, isa.FullMask(32))
	if run2.WriteLanes != 32 || run2.WriteUnique != 4 {
		t.Fatalf("write sampling: %d lanes %d unique", run2.WriteLanes, run2.WriteUnique)
	}
}

func TestRegListCapacity(t *testing.T) {
	var l RegList
	l.Add(0, 100) // over capacity: must clamp, not panic
	if int(l.N) != len(l.Idx) {
		t.Fatalf("N = %d, want %d", l.N, len(l.Idx))
	}
	got := l.Slice()
	for i, r := range got {
		if int(r) != i {
			t.Fatalf("Idx[%d] = %d", i, r)
		}
	}
}

func TestWGStateLDSIsolation(t *testing.T) {
	// Each workgroup gets its own LDS array.
	a := NewWGState(nil, nil, 256)
	b := NewWGState(nil, nil, 256)
	a.LDS[0] = 7
	if b.LDS[0] != 0 {
		t.Fatal("LDS shared between workgroups")
	}
}
