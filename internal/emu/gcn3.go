package emu

import (
	"fmt"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsa"
	"ilsim/internal/isa"
	"ilsim/internal/mem"
	"ilsim/internal/stats"
)

// GCN3Engine executes finalized machine code: whole-wavefront vector
// instructions against the architected EXEC mask, scalar instructions on
// SGPR state, real ABI register initialization, scalar memory loads that
// read the actual dispatch packet, and waitcnt-based dependency semantics.
type GCN3Engine struct {
	Ctx *hsa.Context
	CO  *gcn3.CodeObject
	D   *hsa.Dispatch
	Col *Collector

	// Base is the code object's load address; instruction PCs are
	// Base-relative per Program.PCs.
	Base uint64

	prog *gcn3.Program
	// infos is the per-PC decode cache: scheduling metadata is static per
	// instruction, so Peek is a table lookup on the hot path.
	infos []InstInfo

	// vs0..vdst are vector's lane scratch buffers, hoisted to the engine
	// so the hot path does not zero 2KB of stack per instruction. Reuse is
	// safe because sources are filled for all lanes (readVecSrc) and dst
	// is both written and consumed under EXEC (perLane / writeVecDst), so
	// stale lanes are never observable. They also make Execute
	// non-reentrant: concurrent compute units need per-CU clones (Fork).
	vs0, vs1, vs2, vdst [isa.WavefrontSize]uint64

	// sharedAtomics records whether the kernel touches shared memory with
	// read-modify-write operations (computed once at load).
	sharedAtomics bool
}

var _ Forker = (*GCN3Engine)(nil)

// NewGCN3Engine prepares a loaded code object for execution.
func NewGCN3Engine(ctx *hsa.Context, co *gcn3.CodeObject, d *hsa.Dispatch, base uint64, col *Collector) *GCN3Engine {
	if co.Program.PCs == nil || co.Program.ByPCStale() {
		co.Program.Layout()
	}
	e := &GCN3Engine{Ctx: ctx, CO: co, D: d, Col: col, Base: base, prog: co.Program}
	e.infos = make([]InstInfo, len(e.prog.Insts))
	for i := range e.infos {
		e.infos[i] = e.decodeInfo(i)
	}
	for i := range e.prog.Insts {
		if e.prog.Insts[i].Op == gcn3.OpFlatAtomicAdd {
			e.sharedAtomics = true
			break
		}
	}
	return e
}

// Fork returns an execution clone for one compute unit: shared decode
// state, private lane scratch (the struct copy), a private collector
// targeting run, and a private memory view when mv is non-nil.
func (e *GCN3Engine) Fork(run *stats.Run, mv *mem.Memory) Engine {
	f := *e
	f.Col = e.Col.Fork(run)
	if mv != nil {
		ctx := *e.Ctx
		ctx.Mem = mv
		f.Ctx = &ctx
	}
	return &f
}

// SharedAtomics reports read-modify-write use of shared (non-LDS) memory.
func (e *GCN3Engine) SharedAtomics() bool { return e.sharedAtomics }

// Abstraction identifies the engine.
func (e *GCN3Engine) Abstraction() string { return "GCN3" }

// CodeBytes returns the true encoded instruction footprint.
func (e *GCN3Engine) CodeBytes() uint64 { return uint64(e.prog.Size) }

// LDSBytes returns the workgroup LDS demand.
func (e *GCN3Engine) LDSBytes() int { return e.CO.GroupSize }

// RegDemand returns (VGPRs, SGPRs) per wavefront.
func (e *GCN3Engine) RegDemand() (int, int) { return e.CO.NumVGPRs, e.CO.NumSGPRs }

func (e *GCN3Engine) idxOf(pc uint64) (int, error) {
	idx := e.prog.IndexAt(pc - e.Base)
	if idx < 0 {
		return 0, fmt.Errorf("emu: bad GCN3 PC %#x", pc)
	}
	return idx, nil
}

// InstString disassembles the instruction at pc.
func (e *GCN3Engine) InstString(pc uint64) string {
	idx, err := e.idxOf(pc)
	if err != nil {
		return err.Error()
	}
	return e.prog.Insts[idx].String()
}

// NewWave initializes wavefront state per the GCN3 ABI: the command
// processor has placed the dispatch-packet address, kernarg base, scratch
// base/stride and workgroup IDs in SGPRs and each lane's flat work-item ID
// in v0 (paper §III.A.1).
func (e *GCN3Engine) NewWave(wg *WGState, waveID int) *Wave {
	first := waveID * isa.WavefrontSize
	lanes := wg.Info.Size - first
	if lanes > isa.WavefrontSize {
		lanes = isa.WavefrontSize
	}
	nv := e.CO.NumVGPRs
	if nv < 1 {
		nv = 1
	}
	w := &Wave{
		WG: wg, WaveID: waveID, FirstWI: first, NumLanes: lanes,
		PC:   e.Base,
		Exec: isa.FullMask(lanes),
		VGPR: make([][isa.WavefrontSize]uint32, nv),
	}
	d := wg.Dispatch
	w.SGPR[gcn3.SGPRPrivateBase] = uint32(d.PrivateBase)
	w.SGPR[gcn3.SGPRPrivateBase+1] = uint32(d.PrivateBase >> 32)
	w.SGPR[gcn3.SGPRPrivateStride] = d.PrivateStride
	w.SGPR[gcn3.SGPRDispatchPtr] = uint32(d.PacketAddr)
	w.SGPR[gcn3.SGPRDispatchPtr+1] = uint32(d.PacketAddr >> 32)
	w.SGPR[gcn3.SGPRKernargPtr] = uint32(d.Packet.KernargAddress)
	w.SGPR[gcn3.SGPRKernargPtr+1] = uint32(d.Packet.KernargAddress >> 32)
	w.SGPR[gcn3.SGPRWorkGroupIDX] = wg.Info.ID[0]
	w.SGPR[gcn3.SGPRWorkGroupIDY] = wg.Info.ID[1]
	w.SGPR[gcn3.SGPRWorkGroupIDZ] = wg.Info.ID[2]
	dims := e.CO.WorkItemIDDims
	if dims < 1 {
		dims = 1
	}
	for lane := 0; lane < lanes; lane++ {
		lid := d.LocalID(first + lane)
		w.VGPR[gcn3.VGPRWorkItemID][lane] = lid[0]
		if dims >= 2 {
			w.VGPR[gcn3.VGPRWorkItemIDY][lane] = lid[1]
		}
		if dims >= 3 {
			w.VGPR[gcn3.VGPRWorkItemIDZ][lane] = lid[2]
		}
	}
	if e.Col != nil && e.Col.TrackReuse {
		w.Reuse = stats.NewReuseTracker(nv)
	}
	return w
}

// Peek returns the decode-cache entry for the instruction at w.PC.
func (e *GCN3Engine) Peek(w *Wave) (*InstInfo, error) {
	idx, err := e.idxOf(w.PC)
	if err != nil {
		return nil, err
	}
	return &e.infos[idx], nil
}

// decodeInfo builds the scheduling metadata of instruction idx.
func (e *GCN3Engine) decodeInfo(idx int) InstInfo {
	in := &e.prog.Insts[idx]
	info := InstInfo{
		PC:        e.Base + e.prog.PCs[idx],
		SizeBytes: in.SizeBytes(),
		Category:  in.Category(),
		WaitVM:    -1,
		WaitLGKM:  -1,
	}
	addOper := func(o gcn3.Operand, width int, write bool) {
		switch o.Kind {
		case gcn3.OperVGPR:
			if write {
				info.VRFWrites.Add(int(o.Index), width)
			} else {
				info.VRFReads.Add(int(o.Index), width)
			}
		case gcn3.OperSGPR:
			if write {
				info.SRFWrites.Add(int(o.Index), width)
			} else {
				info.SRFReads.Add(int(o.Index), width)
			}
		}
	}
	for i := 0; i < in.Op.NSrc(); i++ {
		addOper(in.Srcs[i], in.SrcRegs(i), false)
	}
	addOper(in.Dst, in.DstRegs(), true)
	addOper(in.SDst, 2, true)

	switch {
	case in.Op == gcn3.OpSWaitcnt:
		info.LatClass = LatNop
		info.WaitVM, info.WaitLGKM = in.VMCnt, in.LGKMCnt
	case in.Op == gcn3.OpSBarrier:
		info.LatClass = LatNop
		info.IsBarrier = true
	case in.Op == gcn3.OpSEndpgm:
		info.LatClass = LatNop
		info.IsEndPgm = true
	case in.Op == gcn3.OpSNop:
		info.LatClass = LatNop
	case in.Op.IsBranch():
		info.LatClass = LatBranch
		info.IsBranch = true
	case in.Op.Category() == isa.CatSALU:
		info.LatClass = LatScalar
	case in.Op.Category() == isa.CatSMem:
		info.LatClass = LatMem
		info.IsLGKM = true
	case in.Op.Category() == isa.CatLDS:
		info.LatClass = LatLDS
		info.IsLGKM = true
	case in.Op.Category() == isa.CatVMem:
		info.LatClass = LatMem
		info.IsVMem = true
	case in.Op == gcn3.OpVRcp || in.Op == gcn3.OpVSqrt || in.Op == gcn3.OpVRsq ||
		in.Op == gcn3.OpVDivScale || in.Op == gcn3.OpVDivFmas || in.Op == gcn3.OpVDivFixup:
		info.LatClass = LatTrans
	default:
		if in.Type.Regs() == 2 {
			info.LatClass = LatALU64
		} else {
			info.LatClass = LatALU
		}
	}
	return info
}

// readScalar reads a scalar operand of the given register width.
func (e *GCN3Engine) readScalar(w *Wave, o gcn3.Operand, width int) uint64 {
	switch o.Kind {
	case gcn3.OperSGPR:
		v := uint64(w.SGPR[o.Index])
		if width == 2 {
			v |= uint64(w.SGPR[o.Index+1]) << 32
		}
		return v
	case gcn3.OperVCC:
		return w.VCC
	case gcn3.OperEXEC:
		return uint64(w.Exec)
	case gcn3.OperSCC:
		if w.SCC {
			return 1
		}
		return 0
	case gcn3.OperInline, gcn3.OperLit:
		return uint64(o.Val)
	}
	return 0
}

// writeScalar writes a scalar destination of the given register width.
func (e *GCN3Engine) writeScalar(w *Wave, o gcn3.Operand, width int, v uint64) {
	switch o.Kind {
	case gcn3.OperSGPR:
		w.SGPR[o.Index] = uint32(v)
		if width == 2 {
			w.SGPR[o.Index+1] = uint32(v >> 32)
		}
	case gcn3.OperVCC:
		w.VCC = v
	case gcn3.OperEXEC:
		w.Exec = isa.ExecMask(v)
	}
}

// expandConst widens a 32-bit constant for a 64-bit operation. Float
// constants expand f32→f64 (the GCN3 literal rule); integers zero-extend.
func expandConst(t isa.DataType, v uint32) uint64 {
	if t == isa.TypeF64 {
		return fromF64(float64(f32(uint64(v))))
	}
	if t.IsSigned() {
		return uint64(int64(int32(v)))
	}
	return uint64(v)
}

// readVecSrc gathers a vector-instruction source: per-lane for VGPRs,
// broadcast for scalars and constants.
func (e *GCN3Engine) readVecSrc(w *Wave, o gcn3.Operand, width int, t isa.DataType, vals *[isa.WavefrontSize]uint64) {
	switch o.Kind {
	case gcn3.OperVGPR:
		lo := &w.VGPR[o.Index]
		e.Col.OnVRFValue(false, lo, w.Exec)
		e.Col.OnVRFSlot(w, int(o.Index))
		if width == 2 {
			hi := &w.VGPR[o.Index+1]
			e.Col.OnVRFValue(false, hi, w.Exec)
			e.Col.OnVRFSlot(w, int(o.Index)+1)
			for lane := 0; lane < isa.WavefrontSize; lane++ {
				vals[lane] = uint64(lo[lane]) | uint64(hi[lane])<<32
			}
		} else {
			for lane := 0; lane < isa.WavefrontSize; lane++ {
				vals[lane] = uint64(lo[lane])
			}
		}
	case gcn3.OperInline, gcn3.OperLit:
		v := uint64(o.Val)
		if width == 2 {
			v = expandConst(t, o.Val)
		}
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			vals[lane] = v
		}
	default:
		v := e.readScalar(w, o, width)
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			vals[lane] = v
		}
	}
}

// writeVecDst stores per-lane results into a VGPR destination under EXEC.
func (e *GCN3Engine) writeVecDst(w *Wave, o gcn3.Operand, width int, vals *[isa.WavefrontSize]uint64) {
	if o.Kind != gcn3.OperVGPR {
		return
	}
	lo := &w.VGPR[o.Index]
	for lane := 0; lane < isa.WavefrontSize; lane++ {
		if w.Exec.Bit(lane) {
			lo[lane] = uint32(vals[lane])
		}
	}
	e.Col.OnVRFValue(true, lo, w.Exec)
	e.Col.OnVRFSlot(w, int(o.Index))
	if width == 2 {
		hi := &w.VGPR[o.Index+1]
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if w.Exec.Bit(lane) {
				hi[lane] = uint32(vals[lane] >> 32)
			}
		}
		e.Col.OnVRFValue(true, hi, w.Exec)
		e.Col.OnVRFSlot(w, int(o.Index)+1)
	}
}

// gcn3UnKind and gcn3BinKind map vector ALU opcodes to evaluator kinds
// (hoisted to package scope so execution does not rebuild them per
// instruction).
var gcn3UnKind = map[gcn3.Op]unOpKind{
	gcn3.OpVRcp: unRcp, gcn3.OpVSqrt: unSqrt, gcn3.OpVRsq: unRsqrt,
}

var gcn3BinKind = map[gcn3.Op]binOpKind{
	gcn3.OpVAdd: binAdd, gcn3.OpVSub: binSub, gcn3.OpVMul: binMul,
	gcn3.OpVMulLo: binMul, gcn3.OpVMulHi: binMulHi,
	gcn3.OpVMin: binMin, gcn3.OpVMax: binMax, gcn3.OpVAnd: binAnd,
	gcn3.OpVOr: binOr, gcn3.OpVXor: binXor,
}

// Execute commits the instruction at w.PC.
func (e *GCN3Engine) Execute(w *Wave) (ExecResult, error) {
	idx, err := e.idxOf(w.PC)
	if err != nil {
		return ExecResult{}, err
	}
	in := &e.prog.Insts[idx]
	info := &e.infos[idx]
	res := ExecResult{ActiveLanes: w.Exec.PopCount()}
	e.Col.TickReuse(w)
	seqPC := w.PC + uint64(info.SizeBytes)
	nextPC := seqPC

	switch in.Op {
	// ---- Scalar ALU ----
	case gcn3.OpSMov:
		wd := in.Type.Regs()
		e.writeScalar(w, in.Dst, wd, e.readScalar(w, in.Srcs[0], wd))
	case gcn3.OpSNot:
		wd := in.Type.Regs()
		v := ^e.readScalar(w, in.Srcs[0], wd)
		if wd == 1 {
			v = uint64(uint32(v))
		}
		e.writeScalar(w, in.Dst, wd, v)
		w.SCC = v != 0
	case gcn3.OpSAndSaveexec, gcn3.OpSOrSaveexec:
		old := uint64(w.Exec)
		src := e.readScalar(w, in.Srcs[0], 2)
		e.writeScalar(w, in.Dst, 2, old)
		if in.Op == gcn3.OpSAndSaveexec {
			w.Exec = isa.ExecMask(old & src)
		} else {
			w.Exec = isa.ExecMask(old | src)
		}
		w.SCC = w.Exec != 0
	case gcn3.OpSAdd, gcn3.OpSSub, gcn3.OpSMul, gcn3.OpSLshl, gcn3.OpSLshr,
		gcn3.OpSAshr, gcn3.OpSAnd, gcn3.OpSOr, gcn3.OpSXor, gcn3.OpSAndN2:
		wd := in.Type.Regs()
		if wd == 0 {
			wd = 1
		}
		a := e.readScalar(w, in.Srcs[0], wd)
		b := e.readScalar(w, in.Srcs[1], wd)
		var v uint64
		switch in.Op {
		case gcn3.OpSAdd:
			v = binOp(binAdd, in.Type, a, b)
			w.SCC = uint64(uint32(a))+uint64(uint32(b)) > 0xFFFFFFFF
		case gcn3.OpSSub:
			v = binOp(binSub, in.Type, a, b)
			w.SCC = uint32(b) > uint32(a)
		case gcn3.OpSMul:
			v = binOp(binMul, in.Type, a, b)
		case gcn3.OpSLshl:
			v = binOp(binShl, in.Type, a, b)
			w.SCC = v != 0
		case gcn3.OpSLshr:
			v = binOp(binShr, in.Type, a, b)
			w.SCC = v != 0
		case gcn3.OpSAshr:
			v = binOp(binShr, isa.TypeS32, a, b)
			w.SCC = v != 0
		case gcn3.OpSAnd:
			v = binOp(binAnd, in.Type, a, b)
			w.SCC = v != 0
		case gcn3.OpSOr:
			v = binOp(binOr, in.Type, a, b)
			w.SCC = v != 0
		case gcn3.OpSXor:
			v = binOp(binXor, in.Type, a, b)
			w.SCC = v != 0
		case gcn3.OpSAndN2:
			v = a &^ b
			w.SCC = v != 0
		}
		e.writeScalar(w, in.Dst, wd, v)
	case gcn3.OpSAddc:
		a := e.readScalar(w, in.Srcs[0], 1)
		b := e.readScalar(w, in.Srcs[1], 1)
		cin := uint64(0)
		if w.SCC {
			cin = 1
		}
		sum := uint64(uint32(a)) + uint64(uint32(b)) + cin
		e.writeScalar(w, in.Dst, 1, uint64(uint32(sum)))
		w.SCC = sum > 0xFFFFFFFF
	case gcn3.OpSBfe:
		a := e.readScalar(w, in.Srcs[0], 1)
		spec := e.readScalar(w, in.Srcs[1], 1)
		off := spec & 0x1F
		width := spec >> 16 & 0x7F
		v := uint64(0)
		if width > 0 {
			v = a >> off & (1<<width - 1)
		}
		e.writeScalar(w, in.Dst, 1, v)
		w.SCC = v != 0
	case gcn3.OpSCmp:
		a := e.readScalar(w, in.Srcs[0], 1)
		b := e.readScalar(w, in.Srcs[1], 1)
		w.SCC = compare(in.Cmp, in.Type, a, b)

	// ---- Scalar program control ----
	case gcn3.OpSEndpgm:
		w.Done = true
		res.IsEndPgm = true
		e.Col.OnCommit(info.Category, res.ActiveLanes)
		return res, nil
	case gcn3.OpSBarrier:
		res.IsBarrier = true
	case gcn3.OpSNop, gcn3.OpSWaitcnt:
		// Timing-only effects.
	case gcn3.OpSBranch, gcn3.OpSCbranchSCC0, gcn3.OpSCbranchSCC1,
		gcn3.OpSCbranchVCCZ, gcn3.OpSCbranchVCCNZ,
		gcn3.OpSCbranchExecZ, gcn3.OpSCbranchExecNZ:
		taken := false
		switch in.Op {
		case gcn3.OpSBranch:
			taken = true
		case gcn3.OpSCbranchSCC0:
			taken = !w.SCC
		case gcn3.OpSCbranchSCC1:
			taken = w.SCC
		case gcn3.OpSCbranchVCCZ:
			taken = w.VCC == 0
		case gcn3.OpSCbranchVCCNZ:
			taken = w.VCC != 0
		case gcn3.OpSCbranchExecZ:
			taken = w.Exec == 0
		case gcn3.OpSCbranchExecNZ:
			taken = w.Exec != 0
		}
		if taken {
			nextPC = e.Base + e.prog.PCs[in.Target]
			res.Redirected = nextPC != seqPC
		}

	// ---- Scalar memory ----
	case gcn3.OpSLoadDword, gcn3.OpSLoadDwordx2, gcn3.OpSLoadDwordx4:
		base := e.readScalar(w, in.Srcs[0], 2)
		addr := base + uint64(in.Offset)
		n := in.DstRegs()
		for i := 0; i < n; i++ {
			w.SGPR[int(in.Dst.Index)+i] = e.Ctx.Mem.ReadU32(addr + uint64(4*i))
		}
		res.MemKind = MemScalar
		first := addr &^ (mem.LineSize - 1)
		last := (addr + uint64(4*n) - 1) &^ (mem.LineSize - 1)
		w.linesBuf = w.linesBuf[:0]
		for l := first; l <= last; l += mem.LineSize {
			w.linesBuf = append(w.linesBuf, l)
		}
		res.Lines = w.linesBuf

	// ---- Vector ALU ----
	default:
		if err := e.vector(w, in, &res); err != nil {
			return res, err
		}
	}

	w.PC = nextPC
	e.Col.OnCommit(info.Category, res.ActiveLanes)
	return res, nil
}

// vector executes VALU, FLAT and DS operations.
func (e *GCN3Engine) vector(w *Wave, in *gcn3.Inst, res *ExecResult) error {
	s0, s1, s2, dst := &e.vs0, &e.vs1, &e.vs2, &e.vdst
	t := in.Type
	read := func(i int, buf *[isa.WavefrontSize]uint64) {
		st := t
		if in.Op == gcn3.OpVCvt {
			st = in.SrcType
		}
		e.readVecSrc(w, in.Srcs[i], in.SrcRegs(i), st, buf)
	}
	perLane := func(f func(lane int)) {
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if w.Exec.Bit(lane) {
				f(lane)
			}
		}
	}

	switch in.Op {
	case gcn3.OpVMov:
		read(0, s0)
		perLane(func(l int) { dst[l] = s0[l] })
		e.writeVecDst(w, in.Dst, in.DstRegs(), dst)
	case gcn3.OpVNot:
		read(0, s0)
		perLane(func(l int) { dst[l] = uint64(^uint32(s0[l])) })
		e.writeVecDst(w, in.Dst, 1, dst)
	case gcn3.OpVCvt:
		read(0, s0)
		perLane(func(l int) { dst[l] = convert(in.Type, in.SrcType, s0[l]) })
		e.writeVecDst(w, in.Dst, in.Type.Regs(), dst)
	case gcn3.OpVRcp, gcn3.OpVSqrt, gcn3.OpVRsq:
		read(0, s0)
		kind := gcn3UnKind[in.Op]
		perLane(func(l int) { dst[l] = unOp(kind, t, s0[l]) })
		e.writeVecDst(w, in.Dst, t.Regs(), dst)
	case gcn3.OpVAdd, gcn3.OpVSub, gcn3.OpVMul, gcn3.OpVMulLo, gcn3.OpVMulHi,
		gcn3.OpVMin, gcn3.OpVMax, gcn3.OpVAnd, gcn3.OpVOr, gcn3.OpVXor:
		read(0, s0)
		read(1, s1)
		kind := gcn3BinKind[in.Op]
		bt := t
		if in.Op == gcn3.OpVMulLo || in.Op == gcn3.OpVMulHi {
			bt = isa.TypeU32
		}
		var carry uint64
		perLane(func(l int) {
			dst[l] = binOp(kind, bt, s0[l], s1[l])
			if in.Op == gcn3.OpVAdd && t == isa.TypeU32 {
				if s0[l]+s1[l] > 0xFFFFFFFF {
					carry |= 1 << uint(l)
				}
			}
			if in.Op == gcn3.OpVSub && t == isa.TypeU32 {
				if uint32(s1[l]) > uint32(s0[l]) {
					carry |= 1 << uint(l)
				}
			}
		})
		e.writeVecDst(w, in.Dst, bt.Regs(), dst)
		if in.SDst.Kind == gcn3.OperVCC {
			w.VCC = carry
		} else if in.SDst.Kind == gcn3.OperSGPR {
			e.writeScalar(w, in.SDst, 2, carry)
		}
	case gcn3.OpVAddc:
		read(0, s0)
		read(1, s1)
		oldVCC := w.VCC
		var carry uint64
		perLane(func(l int) {
			cin := oldVCC >> uint(l) & 1
			sum := uint64(uint32(s0[l])) + uint64(uint32(s1[l])) + cin
			dst[l] = uint64(uint32(sum))
			if sum > 0xFFFFFFFF {
				carry |= 1 << uint(l)
			}
		})
		e.writeVecDst(w, in.Dst, 1, dst)
		w.VCC = carry
	case gcn3.OpVLshl, gcn3.OpVLshr, gcn3.OpVAshr:
		// rev operand order: src0 is the shift amount.
		read(0, s0)
		read(1, s1)
		kind := binShl
		bt := t
		switch in.Op {
		case gcn3.OpVLshr:
			kind = binShr
		case gcn3.OpVAshr:
			kind = binShr
			bt = isa.TypeS32
		}
		perLane(func(l int) { dst[l] = binOp(kind, bt, s1[l], s0[l]) })
		e.writeVecDst(w, in.Dst, t.Regs(), dst)
	case gcn3.OpVMad, gcn3.OpVFma:
		read(0, s0)
		read(1, s1)
		read(2, s2)
		perLane(func(l int) { dst[l] = fma(t, s0[l], s1[l], s2[l]) })
		e.writeVecDst(w, in.Dst, t.Regs(), dst)
	case gcn3.OpVCmp:
		read(0, s0)
		read(1, s1)
		var m uint64
		perLane(func(l int) {
			if compare(in.Cmp, t, s0[l], s1[l]) {
				m |= 1 << uint(l)
			}
		})
		if in.Dst.Kind == gcn3.OperSGPR {
			e.writeScalar(w, in.Dst, 2, m)
		} else {
			w.VCC = m
		}
	case gcn3.OpVCndmask:
		read(0, s0)
		read(1, s1)
		sel := e.readScalar(w, in.Srcs[2], 2)
		perLane(func(l int) {
			if sel>>uint(l)&1 != 0 {
				dst[l] = s1[l]
			} else {
				dst[l] = s0[l]
			}
		})
		e.writeVecDst(w, in.Dst, 1, dst)
	case gcn3.OpVDivScale:
		// Simplified semantics: pass the scaled operand through and clear
		// VCC; the Newton-Raphson chain does the real work (Table 3).
		read(0, s0)
		perLane(func(l int) { dst[l] = s0[l] })
		e.writeVecDst(w, in.Dst, t.Regs(), dst)
		w.VCC = 0
	case gcn3.OpVDivFmas:
		read(0, s0)
		read(1, s1)
		read(2, s2)
		perLane(func(l int) { dst[l] = fma(t, s0[l], s1[l], s2[l]) })
		e.writeVecDst(w, in.Dst, t.Regs(), dst)
	case gcn3.OpVDivFixup:
		// src0 = quotient estimate, src1 = denominator, src2 = numerator.
		read(0, s0)
		read(1, s1)
		read(2, s2)
		perLane(func(l int) { dst[l] = divFixup(t, s0[l], s1[l], s2[l]) })
		e.writeVecDst(w, in.Dst, t.Regs(), dst)

	// ---- Flat memory ----
	case gcn3.OpFlatLoadDword, gcn3.OpFlatLoadDwordx2,
		gcn3.OpFlatStoreDword, gcn3.OpFlatStoreDwordx2, gcn3.OpFlatAtomicAdd:
		return e.flat(w, in, res)

	// ---- LDS ----
	case gcn3.OpDSReadB32, gcn3.OpDSReadB64, gcn3.OpDSWriteB32,
		gcn3.OpDSWriteB64, gcn3.OpDSAddU32:
		return e.ds(w, in, res)

	default:
		return fmt.Errorf("emu: unimplemented GCN3 op %s", in.Op)
	}
	return nil
}

// divFixup applies the special-case handling of v_div_fixup.
func divFixup(t isa.DataType, q, den, num uint64) uint64 {
	if t == isa.TypeF32 {
		d, n := f32(den), f32(num)
		switch {
		case d == 0 && n == 0:
			return fromF32(float32(nan32()))
		case d == 0:
			return fromF32(n / d) // ±Inf with correct sign
		case n == 0:
			return fromF32(n / d) // ±0
		}
		return q
	}
	d, n := f64v(den), f64v(num)
	switch {
	case d == 0 && n == 0:
		return fromF64(nan64())
	case d == 0:
		return fromF64(n / d)
	case n == 0:
		return fromF64(n / d)
	}
	return q
}

func nan32() float32 { return float32(nan64()) }
func nan64() float64 {
	var z float64
	return z / z * 0 // quiet NaN via 0/0 — computed to avoid constant-folding error
}

// flat executes FLAT memory operations.
func (e *GCN3Engine) flat(w *Wave, in *gcn3.Inst, res *ExecResult) error {
	var addrs64 [isa.WavefrontSize]uint64
	e.readVecSrc(w, in.Srcs[0], 2, isa.TypeU64, &addrs64)
	size := 4
	if in.Op == gcn3.OpFlatLoadDwordx2 || in.Op == gcn3.OpFlatStoreDwordx2 {
		size = 8
	}
	m := e.Ctx.Mem
	switch in.Op {
	case gcn3.OpFlatLoadDword, gcn3.OpFlatLoadDwordx2:
		var data [isa.WavefrontSize]uint64
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if !w.Exec.Bit(lane) {
				continue
			}
			if size == 8 {
				data[lane] = m.ReadU64(addrs64[lane])
			} else {
				data[lane] = uint64(m.ReadU32(addrs64[lane]))
			}
		}
		e.writeVecDst(w, in.Dst, size/4, &data)
	case gcn3.OpFlatStoreDword, gcn3.OpFlatStoreDwordx2:
		var data [isa.WavefrontSize]uint64
		e.readVecSrc(w, in.Srcs[1], size/4, isa.TypeB64, &data)
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if !w.Exec.Bit(lane) {
				continue
			}
			if size == 8 {
				m.WriteU64(addrs64[lane], data[lane])
			} else {
				m.WriteU32(addrs64[lane], uint32(data[lane]))
			}
		}
		res.MemWrite = true
	case gcn3.OpFlatAtomicAdd:
		var data, ret [isa.WavefrontSize]uint64
		e.readVecSrc(w, in.Srcs[1], 1, isa.TypeU32, &data)
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if !w.Exec.Bit(lane) {
				continue
			}
			ret[lane] = uint64(m.AtomicAddU32(addrs64[lane], uint32(data[lane])))
		}
		e.writeVecDst(w, in.Dst, 1, &ret)
		res.MemWrite = true
	}
	res.MemKind = MemGlobal
	w.linesBuf = mem.CoalesceInto(w.linesBuf[:0], &addrs64, size, w.Exec)
	res.Lines = w.linesBuf
	return nil
}

// ldsBankConflicts returns the extra serialization cycles for per-lane LDS
// word addresses: the LDS has 32 banks of 4-byte words, and simultaneous
// accesses to different words in one bank serialize.
func ldsBankConflicts(addrs *[isa.WavefrontSize]uint64, mask isa.ExecMask) int {
	var count [32]int8
	var word [32]uint32
	maxC := 0
	for lane := 0; lane < isa.WavefrontSize; lane++ {
		if !mask.Bit(lane) {
			continue
		}
		w := uint32(addrs[lane] >> 2)
		b := w % 32
		if count[b] == 0 || word[b] == w {
			// Same-word accesses broadcast without conflict.
			if count[b] == 0 {
				count[b] = 1
				word[b] = w
			}
		} else {
			count[b]++
		}
		if int(count[b]) > maxC {
			maxC = int(count[b])
		}
	}
	if maxC <= 1 {
		return 0
	}
	return maxC - 1
}

// ds executes LDS operations.
func (e *GCN3Engine) ds(w *Wave, in *gcn3.Inst, res *ExecResult) error {
	var addrs [isa.WavefrontSize]uint64
	e.readVecSrc(w, in.Srcs[0], 1, isa.TypeU32, &addrs)
	size := 4
	if in.Op == gcn3.OpDSReadB64 || in.Op == gcn3.OpDSWriteB64 {
		size = 8
	}
	lds := w.WG.LDS
	rd := func(a uint64) uint64 {
		off := int(a) + int(in.Offset)
		if off+size > len(lds) {
			return 0
		}
		v := uint64(0)
		for i := 0; i < size; i++ {
			v |= uint64(lds[off+i]) << uint(8*i)
		}
		return v
	}
	wr := func(a uint64, v uint64) {
		off := int(a) + int(in.Offset)
		if off+size > len(lds) {
			return
		}
		for i := 0; i < size; i++ {
			lds[off+i] = byte(v >> uint(8*i))
		}
	}
	res.LDSBankConflicts = ldsBankConflicts(&addrs, w.Exec)
	switch in.Op {
	case gcn3.OpDSReadB32, gcn3.OpDSReadB64:
		var data [isa.WavefrontSize]uint64
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if w.Exec.Bit(lane) {
				data[lane] = rd(addrs[lane])
			}
		}
		e.writeVecDst(w, in.Dst, size/4, &data)
	case gcn3.OpDSWriteB32, gcn3.OpDSWriteB64:
		var data [isa.WavefrontSize]uint64
		e.readVecSrc(w, in.Srcs[1], size/4, isa.TypeB64, &data)
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if w.Exec.Bit(lane) {
				wr(addrs[lane], data[lane])
			}
		}
		res.MemWrite = true
	case gcn3.OpDSAddU32:
		// Per-lane sequential read-modify-write: same-address lanes
		// serialize, as the hardware's LDS atomic unit guarantees.
		var data, ret [isa.WavefrontSize]uint64
		e.readVecSrc(w, in.Srcs[1], 1, isa.TypeU32, &data)
		for lane := 0; lane < isa.WavefrontSize; lane++ {
			if w.Exec.Bit(lane) {
				old := rd(addrs[lane])
				wr(addrs[lane], uint64(uint32(old)+uint32(data[lane])))
				ret[lane] = old
			}
		}
		e.writeVecDst(w, in.Dst, 1, &ret)
		res.MemWrite = true
	}
	res.MemKind = MemLDS
	return nil
}
