package emu

import (
	"ilsim/internal/hsa"
	"ilsim/internal/isa"
	"ilsim/internal/mem"
	"ilsim/internal/stats"
)

// LatencyClass groups instructions by execution latency; package timing maps
// classes to cycle counts.
type LatencyClass uint8

// Latency classes.
const (
	LatALU    LatencyClass = iota // 32-bit vector ALU
	LatALU64                      // 64-bit vector ALU
	LatTrans                      // transcendental (rcp/sqrt/rsq, div steps)
	LatScalar                     // scalar ALU
	LatBranch                     // branch resolution
	LatMem                        // memory (actual latency from the hierarchy)
	LatLDS                        // local data share
	LatNop                        // nop/waitcnt/barrier bookkeeping
)

// RegList is a small fixed-capacity list of register indexes, used to report
// operand usage without allocating per instruction.
type RegList struct {
	N   uint8
	Idx [12]uint16
}

// Add appends a run of `width` consecutive register indexes starting at r.
func (l *RegList) Add(r int, width int) {
	for i := 0; i < width && int(l.N) < len(l.Idx); i++ {
		l.Idx[l.N] = uint16(r + i)
		l.N++
	}
}

// Slice returns the populated indexes.
func (l *RegList) Slice() []uint16 { return l.Idx[:l.N] }

// InstInfo is the pre-execution metadata the timing model needs to schedule
// an instruction: its category, size, operand usage and latency class.
type InstInfo struct {
	PC        uint64
	SizeBytes int
	Category  isa.Category
	LatClass  LatencyClass

	// Vector (VRF) and scalar (SRF) operand usage in 32-bit granules.
	// Under HSAIL every operand is vector (there is no SRF).
	VRFReads, VRFWrites RegList
	SRFReads, SRFWrites RegList

	// GCN3 waitcnt semantics.
	IsVMem   bool // increments vmcnt when issued
	IsLGKM   bool // increments lgkmcnt when issued
	WaitVM   int8 // s_waitcnt bound (-1 = unconstrained)
	WaitLGKM int8

	IsBarrier bool
	IsEndPgm  bool
	IsBranch  bool
}

// MemKind classifies a memory access for latency purposes.
type MemKind uint8

// Memory access kinds.
const (
	MemNone MemKind = iota
	MemGlobal
	MemScalar
	MemLDS
)

// ExecResult reports what an executed instruction did.
type ExecResult struct {
	// Mem access produced by the instruction.
	MemKind  MemKind
	MemWrite bool
	// Lines are the coalesced cache-line addresses.
	Lines []uint64

	// ActiveLanes is the number of lanes the instruction executed on.
	ActiveLanes int

	// LDSBankConflicts is the number of extra bank-serialized cycles an
	// LDS access costs: max accesses to any one of the 32 banks minus one.
	LDSBankConflicts int

	// Redirected reports a non-sequential PC change (taken branch, RS pop),
	// which flushes the instruction buffer when it holds prefetched
	// entries.
	Redirected bool

	IsBarrier bool
	IsEndPgm  bool
}

// WGState is the shared state of one workgroup: its geometry, LDS storage,
// and barrier bookkeeping (owned by the timing model).
type WGState struct {
	Dispatch *hsa.Dispatch
	Info     *hsa.WorkgroupInfo
	LDS      []byte
}

// NewWGState creates workgroup state with ldsBytes of local data share.
func NewWGState(d *hsa.Dispatch, info *hsa.WorkgroupInfo, ldsBytes int) *WGState {
	return &WGState{Dispatch: d, Info: info, LDS: make([]byte, ldsBytes)}
}

// Wave is the architectural state of one wavefront under either abstraction.
// Engines use the fields belonging to their ISA.
type Wave struct {
	WG     *WGState
	WaveID int // index within the workgroup
	// FirstWI is the intra-workgroup flat ID of lane 0.
	FirstWI int
	// NumLanes is the count of valid lanes (the last wave may be partial).
	NumLanes int

	PC   uint64
	Exec isa.ExecMask
	Done bool

	// HSAIL state: virtual vector registers (slot-indexed) and control
	// registers, plus the simulator's reconvergence stack.
	VRegs [][isa.WavefrontSize]uint32
	CRegs []uint64 // each control register is a 64-bit lane mask
	RS    []RSEntry

	// GCN3 state.
	SGPR [isa.MaxSGPRs]uint32
	VGPR [][isa.WavefrontSize]uint32
	VCC  uint64
	SCC  bool

	// Reuse tracks vector-register reuse distances when enabled.
	Reuse *stats.ReuseTracker

	// linesBuf is the wave's reusable coalescing scratch. Execute
	// overwrites it on every memory instruction and hands it out as
	// ExecResult.Lines; the timing model consumes the lines before the
	// wave executes again, so reuse is safe and the steady state
	// allocates nothing.
	linesBuf []uint64
}

// RSEntry is one reconvergence-stack entry: when the wavefront's PC reaches
// RPC, execution switches to PC' with Mask.
type RSEntry struct {
	RPC  uint64
	PC   uint64
	Mask isa.ExecMask
}

// LaneActive reports whether a lane executes under the current mask.
func (w *Wave) LaneActive(lane int) bool { return w.Exec.Bit(lane) }

// Collector receives statistics callbacks from engines. All fields are
// optional; nil Run disables collection.
type Collector struct {
	Run *stats.Run
	// TrackValues enables lane-value uniqueness sampling (Fig 10).
	TrackValues bool
	// ValueSampleEvery samples one in N VRF accesses (1 = all).
	ValueSampleEvery int
	valueCounter     int
	// TrackReuse enables reuse-distance tracking (Fig 7).
	TrackReuse bool
}

// Fork returns a collector with the same tracking settings but targeting
// run. The parallel timing core forks one collector per compute unit so
// the sampling counter (order-dependent state) advances per-CU: sampling
// decisions then depend only on that CU's own access sequence, which is
// identical at every host parallelism level.
func (c *Collector) Fork(run *stats.Run) *Collector {
	f := &Collector{Run: run}
	if c != nil {
		f.TrackValues = c.TrackValues
		f.ValueSampleEvery = c.ValueSampleEvery
		f.TrackReuse = c.TrackReuse
	}
	return f
}

// OnCommit counts one committed instruction.
func (c *Collector) OnCommit(cat isa.Category, activeLanes int) {
	if c == nil || c.Run == nil {
		return
	}
	c.Run.InstsByCategory[cat]++
	if cat == isa.CatVALU {
		c.Run.VALUInsts++
		c.Run.VALUActiveLanes += uint64(activeLanes)
	}
}

// sampleValue reports whether this VRF access should be value-sampled.
func (c *Collector) sampleValue() bool {
	if c == nil || c.Run == nil || !c.TrackValues {
		return false
	}
	n := c.ValueSampleEvery
	if n <= 1 {
		return true
	}
	c.valueCounter++
	if c.valueCounter >= n {
		c.valueCounter = 0
		return true
	}
	return false
}

// OnVRFValue records a lane-value uniqueness observation for one vector
// operand access.
func (c *Collector) OnVRFValue(write bool, vals *[isa.WavefrontSize]uint32, mask isa.ExecMask) {
	if !c.sampleValue() {
		return
	}
	unique, lanes := stats.UniqueCount(vals, mask)
	if write {
		c.Run.WriteUnique += uint64(unique)
		c.Run.WriteLanes += uint64(lanes)
	} else {
		c.Run.ReadUnique += uint64(unique)
		c.Run.ReadLanes += uint64(lanes)
	}
}

// OnVRFSlot records a reuse-distance access to a vector register slot.
func (c *Collector) OnVRFSlot(w *Wave, slot int) {
	if c == nil || c.Run == nil || !c.TrackReuse || w.Reuse == nil {
		return
	}
	w.Reuse.Access(slot, &c.Run.Reuse)
}

// TickReuse advances a wavefront's dynamic instruction counter.
func (c *Collector) TickReuse(w *Wave) {
	if c == nil || c.Run == nil || !c.TrackReuse || w.Reuse == nil {
		return
	}
	w.Reuse.Tick()
}

// Engine is one ISA abstraction's functional execution engine. The timing
// model owns wavefront scheduling; the engine owns semantics.
type Engine interface {
	// Abstraction returns "HSAIL" or "GCN3".
	Abstraction() string
	// NewWave creates wavefront state for wave waveID of workgroup wg,
	// applying the abstraction's launch/ABI initialization.
	NewWave(wg *WGState, waveID int) *Wave
	// Peek returns the scheduling metadata of the instruction at w.PC.
	// The result points into the engine's per-PC decode cache and is
	// shared by every wave at that PC: callers must treat it as
	// read-only.
	Peek(w *Wave) (*InstInfo, error)
	// InstString disassembles the instruction at pc (for tracing tools).
	InstString(pc uint64) string
	// Execute commits the instruction at w.PC and advances the wavefront.
	Execute(w *Wave) (ExecResult, error)
	// CodeBytes returns the loaded kernel's instruction footprint.
	CodeBytes() uint64
	// LDSBytes returns the kernel's workgroup LDS demand.
	LDSBytes() int
	// RegDemand returns (vector slots, scalar regs) per wavefront, used by
	// the dispatcher for occupancy accounting.
	RegDemand() (int, int)
}

// Forker is implemented by engines whose Execute can be sharded across
// compute units: Fork produces an execution clone that shares the
// immutable decode state (flattened program, per-PC scheduling metadata)
// but owns every piece of mutable per-execution state — the lane scratch
// buffers, a private statistics collector targeting run, and (when mv is
// non-nil) a private functional-memory view. Clones may then Execute
// concurrently, one per goroutine, as long as their waves do not write the
// same bytes within one timing epoch.
type Forker interface {
	Engine
	// Fork returns the clone. run receives the clone's statistics
	// (merge shards back with stats.Run.Merge); mv, when non-nil,
	// replaces the clone's memory view (obtain one with mem.Memory.Fork).
	Fork(run *stats.Run, mv *mem.Memory) Engine
	// SharedAtomics reports whether the kernel performs read-modify-write
	// accesses against shared (non-LDS) memory. Such kernels are only
	// correct under the serial interleaving: the timing core must not run
	// their compute units concurrently.
	SharedAtomics() bool
}
