package emu

import (
	"testing"

	"ilsim/internal/gcn3"
	"ilsim/internal/hsa"
	"ilsim/internal/isa"
)

// engineFor builds a single-wave GCN3 engine around a program.
func engineFor(t *testing.T, insts []gcn3.Inst) (*GCN3Engine, *Wave) {
	t.Helper()
	prog := &gcn3.Program{Insts: insts}
	prog.Layout()
	co := &gcn3.CodeObject{Name: "t", NumVGPRs: 16, NumSGPRs: 32, Program: prog}
	ctx := hsa.NewContext()
	pkt := &hsa.AQLPacket{WorkgroupSize: [3]uint16{64, 1, 1}, GridSize: [3]uint32{64, 1, 1}}
	pktAddr := ctx.AllocQueueSlot(hsa.PacketSize)
	b := pkt.Encode()
	ctx.Mem.Write(pktAddr, b[:])
	d, err := hsa.ExpandDispatch(pkt, pktAddr)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewGCN3Engine(ctx, co, d, 0x1000, &Collector{})
	wg := NewWGState(d, &d.Workgroups[0], 0)
	return eng, eng.NewWave(wg, 0)
}

func step(t *testing.T, e *GCN3Engine, w *Wave) ExecResult {
	t.Helper()
	r, err := e.Execute(w)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestABIInitialization(t *testing.T) {
	e, w := engineFor(t, []gcn3.Inst{{Op: gcn3.OpSEndpgm}})
	_ = e
	if w.SGPR[gcn3.SGPRDispatchPtr] == 0 && w.SGPR[gcn3.SGPRDispatchPtr+1] == 0 {
		t.Error("dispatch pointer not initialized")
	}
	for lane := 0; lane < 64; lane++ {
		if w.VGPR[gcn3.VGPRWorkItemID][lane] != uint32(lane) {
			t.Fatalf("v0[%d] = %d", lane, w.VGPR[gcn3.VGPRWorkItemID][lane])
		}
	}
	if w.Exec != isa.FullMask(64) {
		t.Error("EXEC not full")
	}
}

func TestSaveexecSemantics(t *testing.T) {
	e, w := engineFor(t, []gcn3.Inst{
		// vcc = lanes 0..31; s[20:21] = exec; exec &= vcc
		{Op: gcn3.OpVCmp, Type: isa.TypeU32, Cmp: isa.CmpLt, Dst: gcn3.VCC(),
			Srcs: [3]gcn3.Operand{gcn3.VReg(0), gcn3.VReg(1)}},
		{Op: gcn3.OpSAndSaveexec, Type: isa.TypeB64, Dst: gcn3.SReg(20),
			Srcs: [3]gcn3.Operand{{Kind: gcn3.OperVCC}}},
		{Op: gcn3.OpSEndpgm},
	})
	// v1 = 32 in all lanes: lanes with v0 < 32 set VCC.
	for lane := 0; lane < 64; lane++ {
		w.VGPR[1][lane] = 32
	}
	step(t, e, w)
	if w.VCC != 0x00000000FFFFFFFF {
		t.Fatalf("VCC = %#x", w.VCC)
	}
	step(t, e, w)
	if w.Exec != 0x00000000FFFFFFFF {
		t.Fatalf("EXEC = %#x", w.Exec)
	}
	saved := uint64(w.SGPR[20]) | uint64(w.SGPR[21])<<32
	if saved != 0xFFFFFFFFFFFFFFFF {
		t.Fatalf("saved exec = %#x", saved)
	}
	if !w.SCC {
		t.Error("SCC should be set (exec != 0)")
	}
}

func TestExecMaskGatesWrites(t *testing.T) {
	e, w := engineFor(t, []gcn3.Inst{
		{Op: gcn3.OpVMov, Type: isa.TypeB32, Dst: gcn3.VReg(2), Srcs: [3]gcn3.Operand{gcn3.Inline(7)}},
		{Op: gcn3.OpSEndpgm},
	})
	w.Exec = 0xF // only lanes 0..3
	step(t, e, w)
	for lane := 0; lane < 64; lane++ {
		want := uint32(0)
		if lane < 4 {
			want = 7
		}
		if w.VGPR[2][lane] != want {
			t.Fatalf("lane %d: v2 = %d, want %d", lane, w.VGPR[2][lane], want)
		}
	}
}

func TestCndmaskSelector(t *testing.T) {
	e, w := engineFor(t, []gcn3.Inst{
		{Op: gcn3.OpVCndmask, Type: isa.TypeB32, Dst: gcn3.VReg(3),
			Srcs: [3]gcn3.Operand{gcn3.Inline(10), gcn3.Inline(20), gcn3.SReg(8)}},
		{Op: gcn3.OpSEndpgm},
	})
	w.SGPR[8] = 0xF0 // lanes 4..7 pick src1
	w.SGPR[9] = 0
	step(t, e, w)
	for lane := 0; lane < 10; lane++ {
		want := uint32(10)
		if lane >= 4 && lane < 8 {
			want = 20
		}
		if w.VGPR[3][lane] != want {
			t.Fatalf("lane %d: %d, want %d", lane, w.VGPR[3][lane], want)
		}
	}
}

func TestScalarLoadReadsDispatchPacket(t *testing.T) {
	e, w := engineFor(t, []gcn3.Inst{
		{Op: gcn3.OpSLoadDword, Dst: gcn3.SReg(12),
			Srcs: [3]gcn3.Operand{gcn3.SReg(gcn3.SGPRDispatchPtr)}, Offset: gcn3.PktWorkgroupSizeX},
		{Op: gcn3.OpSBfe, Type: isa.TypeU32, Dst: gcn3.SReg(12),
			Srcs: [3]gcn3.Operand{gcn3.SReg(12), gcn3.Lit(0x100000)}},
		{Op: gcn3.OpSEndpgm},
	})
	r := step(t, e, w)
	if r.MemKind != MemScalar || len(r.Lines) == 0 {
		t.Fatal("scalar load did not access memory")
	}
	step(t, e, w)
	if w.SGPR[12] != 64 {
		t.Fatalf("workgroup size from packet = %d, want 64", w.SGPR[12])
	}
}

func TestBranchRedirects(t *testing.T) {
	e, w := engineFor(t, []gcn3.Inst{
		{Op: gcn3.OpSCmp, Type: isa.TypeU32, Cmp: isa.CmpEq,
			Srcs: [3]gcn3.Operand{gcn3.Inline(1), gcn3.Inline(1)}},
		{Op: gcn3.OpSCbranchSCC1, Target: 3},
		{Op: gcn3.OpSNop},
		{Op: gcn3.OpSEndpgm},
	})
	step(t, e, w) // s_cmp
	if !w.SCC {
		t.Fatal("SCC not set")
	}
	r := step(t, e, w) // taken branch
	if !r.Redirected {
		t.Fatal("taken branch did not redirect")
	}
	r = step(t, e, w) // endpgm
	if !r.IsEndPgm || !w.Done {
		t.Fatal("did not reach endpgm")
	}
}

func TestLDSBankConflictCounting(t *testing.T) {
	var addrs [isa.WavefrontSize]uint64
	// All lanes hit DIFFERENT words of bank 0 → worst case 63 extra cycles.
	for lane := range addrs {
		addrs[lane] = uint64(lane) * 32 * 4
	}
	if got := ldsBankConflicts(&addrs, isa.FullMask(64)); got != 63 {
		t.Fatalf("same-bank different-word: %d, want 63", got)
	}
	// All lanes hit the SAME word → broadcast, no conflict.
	for lane := range addrs {
		addrs[lane] = 128
	}
	if got := ldsBankConflicts(&addrs, isa.FullMask(64)); got != 0 {
		t.Fatalf("broadcast: %d, want 0", got)
	}
	// Sequential words spread across banks → no conflicts for 32 lanes.
	for lane := range addrs {
		addrs[lane] = uint64(lane) * 4
	}
	if got := ldsBankConflicts(&addrs, isa.FullMask(32)); got != 0 {
		t.Fatalf("sequential 32: %d, want 0", got)
	}
	// 64 sequential words: two words per bank → 1 conflict cycle.
	if got := ldsBankConflicts(&addrs, isa.FullMask(64)); got != 1 {
		t.Fatalf("sequential 64: %d, want 1", got)
	}
	// Inactive lanes are ignored.
	if got := ldsBankConflicts(&addrs, 0); got != 0 {
		t.Fatalf("empty mask: %d, want 0", got)
	}
}

func TestWaitcntFieldsExposed(t *testing.T) {
	e, w := engineFor(t, []gcn3.Inst{
		{Op: gcn3.OpSWaitcnt, VMCnt: 2, LGKMCnt: -1},
		{Op: gcn3.OpSEndpgm},
	})
	info, err := e.Peek(w)
	if err != nil {
		t.Fatal(err)
	}
	if info.WaitVM != 2 || info.WaitLGKM != -1 {
		t.Fatalf("waitcnt fields: vm %d lgkm %d", info.WaitVM, info.WaitLGKM)
	}
	if info.Category != isa.CatWaitcnt {
		t.Fatalf("category %s", info.Category)
	}
}
