package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
)

// This file is the toolchain's adversarial property suite: it generates
// random structured kernels (arithmetic, predication, data-dependent control
// flow, memory gathers) and requires THREE independent executions to agree
// bit-for-bit:
//
//	1. HSAIL before register allocation (the semantic reference),
//	2. HSAIL after register allocation (checks the allocator's liveness),
//	3. finalized GCN3 machine code (checks the whole finalizer).
//
// Floating-point ops in the generator are restricted to add/mul/fma, whose
// semantics are identical under both ISAs, so comparison stays exact;
// division's Newton-Raphson expansion is covered by dedicated tolerance
// tests elsewhere.

const randKernelBufWords = 256

// genRandomKernel builds a random kernel deterministically from seed.
// When raw is true, register allocation is skipped.
func genRandomKernel(seed int64, raw bool) (*hsail.Kernel, error) {
	rng := rand.New(rand.NewSource(seed))
	b := kernel.NewBuilder(fmt.Sprintf("rand_%d", seed))
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	inBase := b.LoadArg(inArg)
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))

	x0 := b.Load(hsail.SegGlobal, isa.TypeU32,
		b.Add(isa.TypeU64, inBase, b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))), 0)
	pool := []kernel.Val{gid, x0, b.Mov(isa.TypeU32, b.Int(isa.TypeU32, int64(rng.Intn(1000))))}
	fpool := []kernel.Val{b.Cvt(isa.TypeF32, gid), b.Cvt(isa.TypeF32, x0)}

	pick := func() kernel.Val { return pool[rng.Intn(len(pool))] }
	pickF := func() kernel.Val { return fpool[rng.Intn(len(fpool))] }
	intOps := []hsail.Op{hsail.OpAdd, hsail.OpSub, hsail.OpMul, hsail.OpAnd,
		hsail.OpOr, hsail.OpXor, hsail.OpMin, hsail.OpMax}

	var body func(depth, nOps int)
	body = func(depth, nOps int) {
		for i := 0; i < nOps; i++ {
			switch c := rng.Intn(12); {
			case c < 4: // integer binary op
				op := intOps[rng.Intn(len(intOps))]
				pool = append(pool, b.Binary(op, isa.TypeU32, pick(), pick()))
			case c == 4: // in-place update of an existing value: the
				// well-defined way data crosses divergent regions
				// (inactive lanes keep the old value).
				dst := pool[rng.Intn(len(pool))]
				b.BinaryTo(intOps[rng.Intn(len(intOps))], dst, pick(), pick())
			case c == 5: // shift with a safe amount
				amt := b.And(isa.TypeU32, pick(), b.Int(isa.TypeU32, 31))
				op := hsail.OpShl
				if rng.Intn(2) == 0 {
					op = hsail.OpShr
				}
				pool = append(pool, b.Binary(op, isa.TypeU32, pick(), amt))
			case c == 6: // mad, or an exact u32 divide/remainder
				switch rng.Intn(3) {
				case 0:
					pool = append(pool, b.Mad(isa.TypeU32, pick(), pick(), pick()))
				case 1:
					den := b.Or(isa.TypeU32, pick(), b.Int(isa.TypeU32, 1)) // nonzero
					pool = append(pool, b.Div(isa.TypeU32, pick(), den))
				default:
					den := b.Or(isa.TypeU32, pick(), b.Int(isa.TypeU32, 1))
					pool = append(pool, b.Rem(isa.TypeU32, pick(), den))
				}
			case c == 7: // predication
				cnd := b.Cmp(isa.CmpOp(rng.Intn(6)), isa.TypeU32, pick(), pick())
				pool = append(pool, b.Cmov(isa.TypeU32, cnd, pick(), pick()))
			case c == 8: // f32 arithmetic (exact under both ISAs)
				switch rng.Intn(3) {
				case 0:
					fpool = append(fpool, b.Add(isa.TypeF32, pickF(), pickF()))
				case 1:
					fpool = append(fpool, b.Mul(isa.TypeF32, pickF(), pickF()))
				default:
					fpool = append(fpool, b.Fma(isa.TypeF32, pickF(), pickF(), pickF()))
				}
			case c == 9: // data-dependent gather within the input buffer
				idx := b.And(isa.TypeU32, pick(), b.Int(isa.TypeU32, randKernelBufWords-1))
				addr := b.Add(isa.TypeU64, inBase,
					b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, idx), b.Int(isa.TypeU64, 2)))
				pool = append(pool, b.Load(hsail.SegGlobal, isa.TypeU32, addr, 0))
			case c == 10 && depth < 2: // divergent if / if-else
				// Values defined inside a divergent region are
				// undefined for lanes that skipped it, so they must
				// not escape: scope the pools to the construct.
				np, nf := len(pool), len(fpool)
				var els func()
				if rng.Intn(2) == 0 {
					els = func() { body(depth+1, 1+rng.Intn(3)) }
				}
				b.IfCmp(isa.CmpOp(rng.Intn(6)), isa.TypeU32, pick(), pick(), func() {
					body(depth+1, 1+rng.Intn(3))
				}, els)
				pool, fpool = pool[:np], fpool[:nf]
			case c == 11 && depth < 2: // bounded data-dependent loop
				np, nf := len(pool), len(fpool)
				limit := b.Add(isa.TypeU32, b.And(isa.TypeU32, pick(), b.Int(isa.TypeU32, 3)), b.Int(isa.TypeU32, 1))
				ctr := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
				inner := 1 + rng.Intn(2)
				b.DoWhile(func() {
					body(depth+1, inner)
					b.BinaryTo(hsail.OpAdd, ctr, ctr, b.Int(isa.TypeU32, 1))
				}, isa.CmpLt, isa.TypeU32, ctr, limit)
				pool, fpool = pool[:np], fpool[:nf]
			default:
				pool = append(pool, b.Binary(hsail.OpXor, isa.TypeU32, pick(), pick()))
			}
		}
	}
	body(0, 4+rng.Intn(10))

	// Fold the live pools into one result and store it.
	acc := pool[0]
	for _, v := range pool[1:] {
		acc = b.Xor(isa.TypeU32, acc, v)
	}
	for _, f := range fpool {
		acc = b.Xor(isa.TypeU32, acc, b.Cvt(isa.TypeU32, b.Abs(isa.TypeF32, f)))
	}
	b.Store(hsail.SegGlobal, acc, outAddr, 0)
	b.Ret()
	if raw {
		return b.FinishRaw()
	}
	return b.Finish()
}

// runRandom executes a kernel functionally under one abstraction, returning
// its output buffer.
func runRandom(t *testing.T, k *hsail.Kernel, abs Abstraction, seed int64, grid int) []uint32 {
	t.Helper()
	ks, err := PrepareKernel(k, finalizer.Options{})
	if err != nil {
		t.Fatalf("seed %d: PrepareKernel: %v", seed, err)
	}
	m := NewMachine(abs, &stats.Run{})
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	in := m.Ctx.AllocBuffer(4 * randKernelBufWords)
	out := m.Ctx.AllocBuffer(uint64(4 * grid))
	for i := 0; i < randKernelBufWords; i++ {
		m.Ctx.Mem.WriteU32(in+uint64(4*i), rng.Uint32())
	}
	err = m.Submit(Launch{Kernel: ks, Grid: [3]uint32{uint32(grid), 1, 1},
		WG: [3]uint16{64, 1, 1}, Args: []uint64{in, out}})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := m.RunFunctional(); err != nil {
		t.Fatalf("seed %d (%s): %v", seed, abs, err)
	}
	got := make([]uint32, grid)
	for i := range got {
		got[i] = m.Ctx.Mem.ReadU32(out + uint64(4*i))
	}
	return got
}

// TestRandomKernelTripleEquivalence is the toolchain's main property test.
func TestRandomKernelTripleEquivalence(t *testing.T) {
	const grid = 128
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		raw, err := genRandomKernel(seed, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		alloc, err := genRandomKernel(seed, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if alloc.NumRegSlots > raw.NumRegSlots {
			t.Fatalf("seed %d: allocation grew registers: %d > %d", seed, alloc.NumRegSlots, raw.NumRegSlots)
		}
		ref := runRandom(t, raw, AbsHSAIL, seed, grid)
		hsailAlloc := runRandom(t, alloc, AbsHSAIL, seed, grid)
		gcn3Alloc := runRandom(t, alloc, AbsGCN3, seed, grid)
		for i := 0; i < grid; i++ {
			if hsailAlloc[i] != ref[i] {
				t.Fatalf("seed %d: register allocation changed semantics at lane %d: %#x != %#x\n%s",
					seed, i, hsailAlloc[i], ref[i], alloc.Disassemble())
			}
			if gcn3Alloc[i] != ref[i] {
				t.Fatalf("seed %d: finalization changed semantics at lane %d: %#x != %#x\n%s",
					seed, i, gcn3Alloc[i], ref[i], alloc.Disassemble())
			}
		}
	}
}

// TestRandomKernelsUnderAblations re-runs a subset of seeds through the
// finalizer's ablation modes, which must also preserve semantics.
func TestRandomKernelsUnderAblations(t *testing.T) {
	const grid = 64
	for seed := int64(0); seed < 12; seed++ {
		k, err := genRandomKernel(seed, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := runRandomOpts(t, k, seed, grid, finalizer.Options{})
		for name, opts := range map[string]finalizer.Options{
			"no-sched":    {DisableScheduling: true},
			"no-scalar":   {DisableScalarization: true},
			"flatkernarg": {UseFlatKernarg: true},
		} {
			got := runRandomOpts(t, k, seed, grid, opts)
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("seed %d: ablation %s changed semantics at %d", seed, name, i)
				}
			}
		}
	}
}

func runRandomOpts(t *testing.T, k *hsail.Kernel, seed int64, grid int, opts finalizer.Options) []uint32 {
	t.Helper()
	ks, err := PrepareKernel(k, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	m := NewMachine(AbsGCN3, &stats.Run{})
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	in := m.Ctx.AllocBuffer(4 * randKernelBufWords)
	out := m.Ctx.AllocBuffer(uint64(4 * grid))
	for i := 0; i < randKernelBufWords; i++ {
		m.Ctx.Mem.WriteU32(in+uint64(4*i), rng.Uint32())
	}
	if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{uint32(grid), 1, 1},
		WG: [3]uint16{64, 1, 1}, Args: []uint64{in, out}}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunFunctional(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	got := make([]uint32, grid)
	for i := range got {
		got[i] = m.Ctx.Mem.ReadU32(out + uint64(4*i))
	}
	return got
}
