package core

import (
	"testing"

	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
)

// buildStreamKernel is a small ArrayBW-style streaming kernel used by the
// timing smoke tests.
func buildStreamKernel(t *testing.T) *KernelSource {
	t.Helper()
	b := kernel.NewBuilder("stream")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	nArg := b.ArgU32("iters")
	gid := b.WorkItemAbsID(isa.DimX)
	off4 := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	inAddr := b.Add(isa.TypeU64, b.LoadArg(inArg), off4)
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg), off4)
	iters := b.LoadArg(nArg)
	sum := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	i := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	stride := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, b.GridSize(isa.DimX)), b.Int(isa.TypeU64, 2))
	cur := b.Mov(isa.TypeU64, inAddr)
	b.WhileCmp(isa.CmpLt, isa.TypeU32, i, iters, func() {
		v := b.Load(hsail.SegGlobal, isa.TypeU32, cur, 0)
		b.BinaryTo(hsail.OpAdd, sum, sum, v)
		b.BinaryTo(hsail.OpAdd, cur, cur, stride)
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(isa.TypeU32, 1))
	})
	b.Store(hsail.SegGlobal, sum, outAddr, 0)
	b.Ret()
	ks, err := PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatalf("PrepareKernel: %v", err)
	}
	return ks
}

func TestTimedRunBothAbstractions(t *testing.T) {
	const n, iters = 1024, 8
	ks := buildStreamKernel(t)
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var inAddr, outAddr uint64
	setup := func(m *Machine) error {
		inAddr = m.Ctx.AllocBuffer(4 * n * iters)
		outAddr = m.Ctx.AllocBuffer(4 * n)
		for i := 0; i < n*iters; i++ {
			m.Ctx.Mem.WriteU32(inAddr+uint64(4*i), uint32(i%97))
		}
		return m.Submit(Launch{
			Kernel: ks,
			Grid:   [3]uint32{n, 1, 1},
			WG:     [3]uint16{64, 1, 1},
			Args:   []uint64{inAddr, outAddr, iters},
		})
	}
	h, _, err := sim.Run(AbsHSAIL, "stream", setup, RunOptions{})
	if err != nil {
		t.Fatalf("HSAIL run: %v", err)
	}
	g, gm, err := sim.Run(AbsGCN3, "stream", setup, RunOptions{})
	if err != nil {
		t.Fatalf("GCN3 run: %v", err)
	}

	// Output correctness on the timed path.
	for i := 0; i < n; i++ {
		want := uint32(0)
		for k := 0; k < iters; k++ {
			want += uint32((i + k*n) % 97)
		}
		if got := gm.Ctx.Mem.ReadU32(outAddr + uint64(4*i)); got != want {
			t.Fatalf("timed GCN3 output[%d] = %d, want %d", i, got, want)
		}
	}

	if h.Cycles == 0 || g.Cycles == 0 {
		t.Fatalf("zero cycle counts: HSAIL %d, GCN3 %d", h.Cycles, g.Cycles)
	}
	if h.TotalInsts() == 0 || g.TotalInsts() == 0 {
		t.Fatal("zero instruction counts")
	}
	// The machine ISA must execute more instructions (code expansion).
	ratio := float64(g.TotalInsts()) / float64(h.TotalInsts())
	if ratio < 1.2 || ratio > 4.0 {
		t.Errorf("GCN3/HSAIL dynamic instruction ratio %.2f outside the paper's 1.5-3x band", ratio)
	}
	// HSAIL must never execute scalar instructions.
	if h.InstsByCategory[isa.CatSALU] != 0 || h.InstsByCategory[isa.CatSMem] != 0 ||
		h.InstsByCategory[isa.CatWaitcnt] != 0 {
		t.Error("HSAIL produced scalar/waitcnt instructions")
	}
	// GCN3 must use the scalar pipeline.
	if g.InstsByCategory[isa.CatSALU] == 0 || g.InstsByCategory[isa.CatSMem] == 0 {
		t.Error("GCN3 did not use the scalar pipeline")
	}
	// Code footprint: GCN3's true encoding is larger than HSAIL's 8B/inst.
	if g.CodeFootprintBytes <= h.CodeFootprintBytes {
		t.Errorf("code footprint: GCN3 %d <= HSAIL %d", g.CodeFootprintBytes, h.CodeFootprintBytes)
	}
	t.Logf("HSAIL: %v", h)
	t.Logf("GCN3:  %v", g)
	t.Logf("insts ratio %.2f, footprint ratio %.2f, conflicts H=%d G=%d, flushes H=%d G=%d",
		ratio, float64(g.CodeFootprintBytes)/float64(h.CodeFootprintBytes),
		h.VRFBankConflicts, g.VRFBankConflicts, h.IBFlushes, g.IBFlushes)
}
