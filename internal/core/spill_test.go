package core

import (
	"testing"

	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
)

// TestFinalizerSpillingPreservesSemantics squeezes random kernels through a
// tight VGPR budget so the finalizer's spill-everywhere path engages, and
// checks outputs still match the unconstrained build.
func TestFinalizerSpillingPreservesSemantics(t *testing.T) {
	const grid = 64
	for seed := int64(0); seed < 20; seed++ {
		k, err := genRandomKernel(seed, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := runRandomOpts(t, k, seed, grid, finalizer.Options{})
		tight := runRandomOpts(t, k, seed, grid, finalizer.Options{MaxVGPRs: 64})
		for i := range base {
			if tight[i] != base[i] {
				t.Fatalf("seed %d: spilling changed semantics at lane %d: %#x != %#x",
					seed, i, tight[i], base[i])
			}
		}
	}
}

// TestSpillingGeneratesScratchTraffic verifies a high-pressure kernel under
// a tight budget spills: its code object demands scratch memory and executes
// extra flat memory operations.
func TestSpillingGeneratesScratchTraffic(t *testing.T) {
	build := func() *kernel.Builder {
		b := kernel.NewBuilder("pressure")
		inArg := b.ArgPtr("in")
		outArg := b.ArgPtr("out")
		gid := b.WorkItemAbsID(isa.DimX)
		off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
		x := b.Load(hsail.SegGlobal, isa.TypeU32, b.Add(isa.TypeU64, b.LoadArg(inArg), off), 0)
		// 80 simultaneously-live values.
		var vals []kernel.Val
		for i := 0; i < 80; i++ {
			vals = append(vals, b.Add(isa.TypeU32, x, b.Int(isa.TypeU32, int64(i*7))))
		}
		acc := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
		for _, v := range vals {
			acc = b.Xor(isa.TypeU32, acc, v)
		}
		b.Store(hsail.SegGlobal, acc, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
		b.Ret()
		return b
	}
	kRaw, err := build().FinishRaw()
	if err != nil {
		t.Fatal(err)
	}
	loose, err := finalizer.Finalize(kRaw, finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := finalizer.Finalize(kRaw, finalizer.Options{MaxVGPRs: 72})
	if err != nil {
		t.Fatalf("tight budget failed to spill: %v", err)
	}
	if loose.PrivateSize != 0 {
		t.Fatalf("unconstrained build should not spill, scratch=%d", loose.PrivateSize)
	}
	if tight.PrivateSize == 0 {
		t.Fatal("tight build did not allocate spill scratch")
	}
	if tight.NumVGPRs > 72 {
		t.Fatalf("tight build exceeds its budget: %d VGPRs", tight.NumVGPRs)
	}
	if len(tight.Program.Insts) <= len(loose.Program.Insts) {
		t.Fatal("spill code did not grow the program")
	}

	// And the spilled binary must still compute the right answer.
	ksLoose, err := PrepareKernel(kRaw, finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ksTight, err := PrepareKernel(kRaw, finalizer.Options{MaxVGPRs: 72})
	if err != nil {
		t.Fatal(err)
	}
	outputs := func(ks *KernelSource) []uint32 {
		m := NewMachine(AbsGCN3, &stats.Run{})
		in := m.Ctx.AllocBuffer(4 * 64)
		out := m.Ctx.AllocBuffer(4 * 64)
		for i := 0; i < 64; i++ {
			m.Ctx.Mem.WriteU32(in+uint64(4*i), uint32(i*2654435761))
		}
		if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
			WG: [3]uint16{64, 1, 1}, Args: []uint64{in, out}}); err != nil {
			t.Fatal(err)
		}
		if err := m.RunFunctional(); err != nil {
			t.Fatal(err)
		}
		got := make([]uint32, 64)
		for i := range got {
			got[i] = m.Ctx.Mem.ReadU32(out + uint64(4*i))
		}
		return got
	}
	a, b := outputs(ksLoose), outputs(ksTight)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spilled build wrong at %d: %#x != %#x", i, b[i], a[i])
		}
	}
}
