// Package core is the public face of the simulator: it prepares kernels for
// both abstractions (compiling HSAIL through the finalizer and loading both
// binaries), drives kernel launches through the HSA runtime substrate, runs
// them on the shared timing model, and assembles the statistics the paper's
// figures report.
package core

import "fmt"

// Config is the simulated system configuration. Defaults reproduce the
// paper's Table 4.
type Config struct {
	// NumCUs is the number of compute units.
	NumCUs int
	// SIMDsPerCU is the number of 16-lane SIMD engines per CU.
	SIMDsPerCU int
	// WFSlots is the number of wavefront slots per CU.
	WFSlots int
	// VRFBanks is the number of vector-register-file banks per CU, used
	// by the operand-collector conflict model.
	VRFBanks int
	// IBEntries is the per-wavefront instruction buffer capacity.
	IBEntries int
	// FetchWidth is the number of wavefronts the fetch stage may service
	// per cycle per CU.
	FetchWidth int

	// L1DSize / L1DWays: per-CU data cache (fully associative when
	// L1DWays <= 0, per Table 4).
	L1DSize int
	L1DWays int
	// L1ISize / L1IWays: instruction cache shared per 4 CUs.
	L1ISize int
	L1IWays int
	// ScalarL1Size / ScalarL1Ways: scalar data cache shared per 4 CUs.
	ScalarL1Size int
	ScalarL1Ways int
	// L2Size / L2Ways: shared L2, write-through per Table 4 (write-back
	// for read-write data is approximated as write-back).
	L2Size int
	L2Ways int
	// L2Banks set-interleaves the L2 into independent banks, each with its
	// own request port; with DRAM channels they are the units the phase-2
	// drain can service in parallel (-mem-par).
	L2Banks int
	// DRAMChannels / DRAMLatency / DRAMOccupancy: memory channels and
	// per-access timing in GPU cycles.
	DRAMChannels  int
	DRAMLatency   int64
	DRAMOccupancy int64

	// Latencies in GPU cycles.
	L1HitLatency     int64
	L2HitLatency     int64
	ScalarHitLatency int64
	LDSLatency       int64

	// GPUClockMHz scales cycle counts to time for reports.
	GPUClockMHz int
}

// DefaultConfig returns the paper's Table 4 system.
func DefaultConfig() Config {
	return Config{
		NumCUs:     8,
		SIMDsPerCU: 4,
		WFSlots:    40,
		VRFBanks:   16,
		IBEntries:  8,
		FetchWidth: 1,

		L1DSize: 16 << 10, L1DWays: 0, // fully associative
		// §V.C: "the GCN3 instruction footprint significantly exceeds the
		// L1 instruction cache size of 16KB" — the text's 16KB governs.
		L1ISize: 16 << 10, L1IWays: 8,
		ScalarL1Size: 32 << 10, ScalarL1Ways: 8,
		L2Size: 512 << 10, L2Ways: 16, L2Banks: 8,
		DRAMChannels: 32, DRAMLatency: 160, DRAMOccupancy: 4,

		L1HitLatency: 16, L2HitLatency: 64, ScalarHitLatency: 16,
		LDSLatency: 8,

		GPUClockMHz: 800,
	}
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.NumCUs <= 0 || c.SIMDsPerCU <= 0 || c.WFSlots <= 0 {
		return fmt.Errorf("core: non-positive CU geometry")
	}
	if c.VRFBanks <= 0 || c.IBEntries <= 0 || c.FetchWidth <= 0 {
		return fmt.Errorf("core: non-positive front-end geometry")
	}
	if c.DRAMChannels <= 0 {
		return fmt.Errorf("core: need at least one DRAM channel")
	}
	if c.L2Banks < 0 {
		return fmt.Errorf("core: negative L2 bank count")
	}
	return nil
}

// DrainWidth returns the widest phase-2 drain wave this configuration
// produces — level-1 cache banks (per-CU L1Ds plus the per-4-CU I- and
// scalar caches), L2 banks, or DRAM channels — which is the useful upper
// bound on -mem-par.
func (c Config) DrainWidth() int {
	nShared := (c.NumCUs + 3) / 4
	w := c.NumCUs + 2*nShared
	if c.L2Banks > w {
		w = c.L2Banks
	}
	if c.DRAMChannels > w {
		w = c.DRAMChannels
	}
	return w
}

// String summarizes the configuration in a Table 4-like block.
func (c Config) String() string {
	return fmt.Sprintf(
		"%d CUs @ %d MHz, %d SIMDs/CU, %d WF slots, %d VRF banks\n"+
			"L1D %dKB, I$ %dKB/4CUs, sL1 %dKB/4CUs, L2 %dKB x%d banks, DRAM %d ch",
		c.NumCUs, c.GPUClockMHz, c.SIMDsPerCU, c.WFSlots, c.VRFBanks,
		c.L1DSize>>10, c.L1ISize>>10, c.ScalarL1Size>>10, c.L2Size>>10, c.L2Banks, c.DRAMChannels)
}
