package core

import (
	"math"
	"testing"

	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
)

// runBoth prepares a kernel, runs the same launch functionally under both
// abstractions (with identical input initialization), and returns both
// machines for output comparison.
func runBoth(t *testing.T, k *hsail.Kernel, grid, wg int, args func(m *Machine) []uint64, init func(m *Machine)) (*Machine, *Machine) {
	t.Helper()
	ks, err := PrepareKernel(k, finalizer.Options{})
	if err != nil {
		t.Fatalf("PrepareKernel: %v", err)
	}
	var machines []*Machine
	for _, abs := range []Abstraction{AbsHSAIL, AbsGCN3} {
		run := &stats.Run{Workload: k.Name}
		m := NewMachine(abs, run)
		if init != nil {
			init(m)
		}
		l := Launch{Kernel: ks, Grid: [3]uint32{uint32(grid), 1, 1}, WG: [3]uint16{uint16(wg), 1, 1}, Args: args(m)}
		if err := m.Submit(l); err != nil {
			t.Fatalf("%s: Submit: %v", abs, err)
		}
		if err := m.RunFunctional(); err != nil {
			t.Fatalf("%s: RunFunctional: %v", abs, err)
		}
		machines = append(machines, m)
	}
	return machines[0], machines[1]
}

// alloc reserves identical buffers on a machine and fills them via fill.
func fillU32(m *Machine, addr uint64, vals []uint32) {
	for i, v := range vals {
		m.Ctx.Mem.WriteU32(addr+uint64(4*i), v)
	}
}

func readU32s(m *Machine, addr uint64, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = m.Ctx.Mem.ReadU32(addr + uint64(4*i))
	}
	return out
}

func compareU32(t *testing.T, name string, h, g *Machine, addr uint64, n int) {
	t.Helper()
	hv := readU32s(h, addr, n)
	gv := readU32s(g, addr, n)
	for i := range hv {
		if hv[i] != gv[i] {
			t.Fatalf("%s: output[%d]: HSAIL %#x != GCN3 %#x", name, i, hv[i], gv[i])
		}
	}
}

// TestVecAddEquivalence: out[i] = a[i] + b[i], the canonical kernel: kernarg
// loads, absolute work-item IDs, address arithmetic, flat loads and stores.
func TestVecAddEquivalence(t *testing.T) {
	const n = 256
	b := kernel.NewBuilder("vec_add")
	aArg := b.ArgPtr("a")
	bArg := b.ArgPtr("b")
	oArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	off := b.Cvt(isa.TypeU64, gid)
	off4 := b.Shl(isa.TypeU64, off, b.Int(isa.TypeU64, 2))
	aBase := b.LoadArg(aArg)
	bBase := b.LoadArg(bArg)
	oBase := b.LoadArg(oArg)
	aAddr := b.Add(isa.TypeU64, aBase, off4)
	bAddr := b.Add(isa.TypeU64, bBase, off4)
	oAddr := b.Add(isa.TypeU64, oBase, off4)
	av := b.Load(hsail.SegGlobal, isa.TypeU32, aAddr, 0)
	bv := b.Load(hsail.SegGlobal, isa.TypeU32, bAddr, 0)
	sum := b.Add(isa.TypeU32, av, bv)
	b.Store(hsail.SegGlobal, sum, oAddr, 0)
	b.Ret()
	k := b.MustFinish()

	var aAddrM, bAddrM, oAddrM uint64
	h, g := runBoth(t, k, n, 64, func(m *Machine) []uint64 {
		return []uint64{aAddrM, bAddrM, oAddrM}
	}, func(m *Machine) {
		aAddrM = m.Ctx.AllocBuffer(4 * n)
		bAddrM = m.Ctx.AllocBuffer(4 * n)
		oAddrM = m.Ctx.AllocBuffer(4 * n)
		av := make([]uint32, n)
		bv := make([]uint32, n)
		for i := 0; i < n; i++ {
			av[i] = uint32(i * 3)
			bv[i] = uint32(1000 - i)
		}
		fillU32(m, aAddrM, av)
		fillU32(m, bAddrM, bv)
	})
	compareU32(t, "vec_add", h, g, oAddrM, n)
	want := readU32s(g, oAddrM, n)
	for i := range want {
		if want[i] != uint32(i*3)+uint32(1000-i) {
			t.Fatalf("vec_add wrong result at %d: %d", i, want[i])
		}
	}
}

// TestDivergenceEquivalence reproduces the paper's Figure 3 example: an
// if-else-if writing 84 or 90 per lane depending on data-dependent
// conditions.
func TestDivergenceEquivalence(t *testing.T) {
	const n = 128
	b := kernel.NewBuilder("diverge")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	off4 := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	inAddr := b.Add(isa.TypeU64, b.LoadArg(inArg), off4)
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg), off4)
	x := b.Load(hsail.SegGlobal, isa.TypeU32, inAddr, 0)
	res := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.IfCmp(isa.CmpLt, isa.TypeU32, x, b.Int(isa.TypeU32, 10), func() {
		b.MovTo(res, b.Int(isa.TypeU32, 84))
	}, func() {
		b.IfCmp(isa.CmpGe, isa.TypeU32, x, b.Int(isa.TypeU32, 20), func() {
			b.MovTo(res, b.Int(isa.TypeU32, 90))
		}, func() {
			b.MovTo(res, b.Int(isa.TypeU32, 84))
		})
	})
	b.Store(hsail.SegGlobal, res, outAddr, 0)
	b.Ret()
	k := b.MustFinish()

	var inAddrM, outAddrM uint64
	h, g := runBoth(t, k, n, 64, func(m *Machine) []uint64 {
		return []uint64{inAddrM, outAddrM}
	}, func(m *Machine) {
		inAddrM = m.Ctx.AllocBuffer(4 * n)
		outAddrM = m.Ctx.AllocBuffer(4 * n)
		vals := make([]uint32, n)
		for i := 0; i < n; i++ {
			vals[i] = uint32(i * 7 % 30)
		}
		fillU32(m, inAddrM, vals)
	})
	compareU32(t, "diverge", h, g, outAddrM, n)
	got := readU32s(g, outAddrM, n)
	for i := range got {
		x := uint32(i * 7 % 30)
		want := uint32(84)
		if x >= 10 && x >= 20 {
			want = 90
		}
		if got[i] != want {
			t.Fatalf("diverge[%d]: got %d want %d (x=%d)", i, got[i], want, x)
		}
	}
}

// TestLoopEquivalence: data-dependent trip counts exercise the divergent
// do-while latch under both abstractions.
func TestLoopEquivalence(t *testing.T) {
	const n = 128
	b := kernel.NewBuilder("looper")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	off4 := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	inAddr := b.Add(isa.TypeU64, b.LoadArg(inArg), off4)
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg), off4)
	limit := b.Load(hsail.SegGlobal, isa.TypeU32, inAddr, 0)
	sum := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	i := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.WhileCmp(isa.CmpLt, isa.TypeU32, i, limit, func() {
		b.BinaryTo(hsail.OpAdd, sum, sum, i)
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(isa.TypeU32, 1))
	})
	b.Store(hsail.SegGlobal, sum, outAddr, 0)
	b.Ret()
	k := b.MustFinish()

	var inAddrM, outAddrM uint64
	h, g := runBoth(t, k, n, 64, func(m *Machine) []uint64 {
		return []uint64{inAddrM, outAddrM}
	}, func(m *Machine) {
		inAddrM = m.Ctx.AllocBuffer(4 * n)
		outAddrM = m.Ctx.AllocBuffer(4 * n)
		vals := make([]uint32, n)
		for i := 0; i < n; i++ {
			vals[i] = uint32(i % 17)
		}
		fillU32(m, inAddrM, vals)
	})
	compareU32(t, "looper", h, g, outAddrM, n)
	got := readU32s(g, outAddrM, n)
	for idx := range got {
		lim := uint32(idx % 17)
		want := lim * (lim - 1) / 2
		if lim == 0 {
			want = 0
		}
		if got[idx] != want {
			t.Fatalf("looper[%d]: got %d want %d", idx, got[idx], want)
		}
	}
}

// TestFloatDivEquivalence checks the Table 3 Newton-Raphson expansion
// produces accurate f64 quotients.
func TestFloatDivEquivalence(t *testing.T) {
	const n = 64
	b := kernel.NewBuilder("fdiv")
	aArg := b.ArgPtr("a")
	bArg := b.ArgPtr("b")
	oArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	off8 := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 3))
	aAddr := b.Add(isa.TypeU64, b.LoadArg(aArg), off8)
	bAddr := b.Add(isa.TypeU64, b.LoadArg(bArg), off8)
	oAddr := b.Add(isa.TypeU64, b.LoadArg(oArg), off8)
	num := b.Load(hsail.SegGlobal, isa.TypeF64, aAddr, 0)
	den := b.Load(hsail.SegGlobal, isa.TypeF64, bAddr, 0)
	q := b.Div(isa.TypeF64, num, den)
	b.Store(hsail.SegGlobal, q, oAddr, 0)
	b.Ret()
	k := b.MustFinish()

	var aAddrM, bAddrM, oAddrM uint64
	h, g := runBoth(t, k, n, 64, func(m *Machine) []uint64 {
		return []uint64{aAddrM, bAddrM, oAddrM}
	}, func(m *Machine) {
		aAddrM = m.Ctx.AllocBuffer(8 * n)
		bAddrM = m.Ctx.AllocBuffer(8 * n)
		oAddrM = m.Ctx.AllocBuffer(8 * n)
		for i := 0; i < n; i++ {
			m.Ctx.Mem.WriteU64(aAddrM+uint64(8*i), math.Float64bits(float64(i+1)*1.5))
			m.Ctx.Mem.WriteU64(bAddrM+uint64(8*i), math.Float64bits(float64(i%7)+0.25))
		}
	})
	for i := 0; i < n; i++ {
		want := (float64(i+1) * 1.5) / (float64(i%7) + 0.25)
		hg := math.Float64frombits(h.Ctx.Mem.ReadU64(oAddrM + uint64(8*i)))
		gg := math.Float64frombits(g.Ctx.Mem.ReadU64(oAddrM + uint64(8*i)))
		if math.Abs(hg-want)/want > 1e-12 {
			t.Fatalf("fdiv HSAIL[%d]: got %g want %g", i, hg, want)
		}
		if math.Abs(gg-want)/want > 1e-9 {
			t.Fatalf("fdiv GCN3[%d]: got %g want %g", i, gg, want)
		}
	}
}

// TestPrivateSegmentEquivalence: per-work-item private memory (spill/fill),
// where the two ABIs differ most (paper §VI.A).
func TestPrivateSegmentEquivalence(t *testing.T) {
	const n = 128
	b := kernel.NewBuilder("private_seg")
	outArg := b.ArgPtr("out")
	b.SetPrivateSize(16)
	gid := b.WorkItemAbsID(isa.DimX)
	off4 := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg), off4)
	// Spill two values to private memory, reload in reverse order.
	v1 := b.Mul(isa.TypeU32, gid, b.Int(isa.TypeU32, 3))
	v2 := b.Add(isa.TypeU32, gid, b.Int(isa.TypeU32, 100))
	b.Store(hsail.SegPrivate, v1, kernel.NoBase, 0)
	b.Store(hsail.SegPrivate, v2, kernel.NoBase, 4)
	r2 := b.Load(hsail.SegPrivate, isa.TypeU32, kernel.NoBase, 4)
	r1 := b.Load(hsail.SegPrivate, isa.TypeU32, kernel.NoBase, 0)
	sum := b.Add(isa.TypeU32, r1, r2)
	b.Store(hsail.SegGlobal, sum, outAddr, 0)
	b.Ret()
	k := b.MustFinish()

	var outAddrM uint64
	h, g := runBoth(t, k, n, 64, func(m *Machine) []uint64 {
		return []uint64{outAddrM}
	}, func(m *Machine) {
		outAddrM = m.Ctx.AllocBuffer(4 * n)
	})
	compareU32(t, "private_seg", h, g, outAddrM, n)
	got := readU32s(g, outAddrM, n)
	for i := range got {
		want := uint32(i*3) + uint32(i+100)
		if got[i] != want {
			t.Fatalf("private_seg[%d]: got %d want %d", i, got[i], want)
		}
	}
}

// TestLDSEquivalence: group-segment staging with a workgroup barrier.
func TestLDSEquivalence(t *testing.T) {
	const n = 128
	b := kernel.NewBuilder("lds_reverse")
	inArg := b.ArgPtr("in")
	outArg := b.ArgPtr("out")
	b.SetGroupSize(64 * 4)
	lid := b.WorkItemID(isa.DimX)
	gid := b.WorkItemAbsID(isa.DimX)
	off4 := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	inAddr := b.Add(isa.TypeU64, b.LoadArg(inArg), off4)
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg), off4)
	x := b.Load(hsail.SegGlobal, isa.TypeU32, inAddr, 0)
	ldsOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, lid), b.Int(isa.TypeU64, 2))
	b.Store(hsail.SegGroup, x, ldsOff, 0)
	b.Barrier()
	// Read the mirrored element: lds[63 - lid].
	rev := b.Sub(isa.TypeU32, b.Int(isa.TypeU32, 63), lid)
	revOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, rev), b.Int(isa.TypeU64, 2))
	y := b.Load(hsail.SegGroup, isa.TypeU32, revOff, 0)
	b.Store(hsail.SegGlobal, y, outAddr, 0)
	b.Ret()
	k := b.MustFinish()

	var inAddrM, outAddrM uint64
	h, g := runBoth(t, k, n, 64, func(m *Machine) []uint64 {
		return []uint64{inAddrM, outAddrM}
	}, func(m *Machine) {
		inAddrM = m.Ctx.AllocBuffer(4 * n)
		outAddrM = m.Ctx.AllocBuffer(4 * n)
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(i * 11)
		}
		fillU32(m, inAddrM, vals)
	})
	compareU32(t, "lds_reverse", h, g, outAddrM, n)
	got := readU32s(g, outAddrM, n)
	for i := range got {
		wg, lane := i/64, i%64
		want := uint32((wg*64 + (63 - lane)) * 11)
		if got[i] != want {
			t.Fatalf("lds_reverse[%d]: got %d want %d", i, got[i], want)
		}
	}
}
