package core_test

import (
	"bytes"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/workloads"
)

// TestCycleSkippingDeterminism proves the event-driven fast path is a pure
// speedup: running with cycle skipping disabled (every cycle ticked) and
// enabled (inert spans jumped) must produce byte-identical statistics. MD
// and LULESH cover the two scheduling regimes that stress the skip logic —
// MD is long-latency-bound (deep waitcnt/scoreboard waits, the spans the
// skipper elides), LULESH is launch-bound (many small kernels, so dispatch
// and drain edges repeat often).
func TestCycleSkippingDeterminism(t *testing.T) {
	opts := core.RunOptions{TrackValues: true, ValueSampleEvery: 4, TrackReuse: true}
	for _, name := range []string{"MD", "LULESH"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
			t.Run(name+"/"+abs.String(), func(t *testing.T) {
				var fps [2][]byte
				for i, noskip := range []bool{true, false} {
					inst, err := w.Prepare(1)
					if err != nil {
						t.Fatal(err)
					}
					sim, err := core.NewSimulator(core.DefaultConfig())
					if err != nil {
						t.Fatal(err)
					}
					o := opts
					o.DisableCycleSkipping = noskip
					run, m, err := sim.Run(abs, name, inst.Setup, o)
					if err != nil {
						t.Fatal(err)
					}
					if err := inst.Check(m); err != nil {
						t.Fatal(err)
					}
					fps[i] = run.Fingerprint()
				}
				if !bytes.Equal(fps[0], fps[1]) {
					t.Errorf("fingerprint differs between ticked and skipped runs:\n-- noskip --\n%s\n-- skip --\n%s",
						fps[0], fps[1])
				}
			})
		}
	}
}
