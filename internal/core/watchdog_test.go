// External-package test: exercises the watchdog through the public
// simulator API with a real workload, which package core's own tests
// cannot do without an import cycle on the workload registry.
package core_test

import (
	"context"
	"errors"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/workloads"
)

func arrayBW(t *testing.T) *workloads.Instance {
	t.Helper()
	w, err := workloads.ByName("ArrayBW")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunContextPreCanceled(t *testing.T) {
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = sim.RunContext(ctx, core.AbsHSAIL, "ArrayBW", arrayBW(t).Setup, core.RunOptions{})
	if err == nil {
		t.Fatal("pre-canceled context ran to completion")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
}

func TestWatchdogCycleBudget(t *testing.T) {
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := arrayBW(t)
	for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		_, _, err := sim.Run(abs, "ArrayBW", inst.Setup,
			core.RunOptions{MaxCycles: 100, CheckEvery: 16})
		if !errors.Is(err, core.ErrBudgetExceeded) {
			t.Fatalf("%s: err = %v, want ErrBudgetExceeded", abs, err)
		}
	}
}

func TestWatchdogInstructionBudget(t *testing.T) {
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sim.Run(core.AbsHSAIL, "ArrayBW", arrayBW(t).Setup,
		core.RunOptions{MaxInsts: 5, CheckEvery: 16})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestWatchdogBudgetAboveRunIsHarmless: a budget the run never reaches
// must not perturb the simulation — same cycles as an unwatched run.
func TestWatchdogBudgetAboveRunIsHarmless(t *testing.T) {
	sim, err := core.NewSimulator(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := arrayBW(t)
	free, _, err := sim.Run(core.AbsHSAIL, "ArrayBW", inst.Setup, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	watched, _, err := sim.Run(core.AbsHSAIL, "ArrayBW", inst.Setup,
		core.RunOptions{MaxCycles: 1 << 40, CheckEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if free.Cycles != watched.Cycles {
		t.Fatalf("watchdog perturbed the run: %d vs %d cycles", watched.Cycles, free.Cycles)
	}
}
