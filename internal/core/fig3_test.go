package core

import (
	"testing"

	"ilsim/internal/emu"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
)

// TestFigure3RedirectCounts reproduces the paper's Figure 3 walkthrough: an
// if-else where some lanes take each path. The HSAIL reconvergence stack
// must initiate exactly THREE front-end redirects (jump to the taken path,
// pop to the divergent path, final pop to the reconvergence point), while
// the predicated GCN3 code executes the whole construct with NO redirects
// (the bypass branches fall through because both paths have active lanes).
func TestFigure3RedirectCounts(t *testing.T) {
	b := kernel.NewBuilder("fig3")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	res := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	// Lanes 0..31 take the else path, 32..63 the then path.
	b.IfCmp(isa.CmpLt, isa.TypeU32, gid, b.Int(isa.TypeU32, 32), func() {
		b.MovTo(res, b.Int(isa.TypeU32, 84))
	}, func() {
		b.MovTo(res, b.Int(isa.TypeU32, 90))
	})
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, res, outAddr, 0)
	b.Ret()
	ks, err := PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}

	countRedirects := func(abs Abstraction) (int, *Machine) {
		m := NewMachine(abs, &stats.Run{})
		out := m.Ctx.AllocBuffer(4 * 64)
		if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
			WG: [3]uint16{64, 1, 1}, Args: []uint64{out}}); err != nil {
			t.Fatal(err)
		}
		d, eng, err := m.NextDispatch()
		if err != nil {
			t.Fatal(err)
		}
		wg := emu.NewWGState(d, &d.Workgroups[0], eng.LDSBytes())
		w := eng.NewWave(wg, 0)
		redirects := 0
		for !w.Done {
			r, err := eng.Execute(w)
			if err != nil {
				t.Fatalf("%s: %v", abs, err)
			}
			if r.Redirected {
				redirects++
			}
		}
		// Verify results while we are here.
		for i := 0; i < 64; i++ {
			want := uint32(90)
			if i < 32 {
				want = 84
			}
			if got := m.Ctx.Mem.ReadU32(out + uint64(4*i)); got != want {
				t.Fatalf("%s: out[%d] = %d, want %d", abs, i, got, want)
			}
		}
		return redirects, m
	}

	hsailRedirects, _ := countRedirects(AbsHSAIL)
	gcn3Redirects, _ := countRedirects(AbsGCN3)
	if hsailRedirects != 3 {
		t.Errorf("HSAIL redirects = %d, want exactly 3 (paper Figure 3b)", hsailRedirects)
	}
	if gcn3Redirects != 0 {
		t.Errorf("GCN3 redirects = %d, want 0 (paper Figure 3c)", gcn3Redirects)
	}
}

// TestFigure3UniformBranch: when ALL lanes agree, both abstractions take a
// single redirect (HSAIL jumps to the taken path; GCN3's uniform branch is a
// real s_cbranch) or none — no reconvergence machinery engages.
func TestFigure3UniformBranch(t *testing.T) {
	b := kernel.NewBuilder("uniform_branch")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	res := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	// Condition is uniform: every lane compares gid&0 (=0) against 1.
	z := b.And(isa.TypeU32, gid, b.Int(isa.TypeU32, 0))
	b.IfCmp(isa.CmpLt, isa.TypeU32, z, b.Int(isa.TypeU32, 1), func() {
		b.MovTo(res, b.Int(isa.TypeU32, 84))
	}, func() {
		b.MovTo(res, b.Int(isa.TypeU32, 90))
	})
	outAddr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, res, outAddr, 0)
	b.Ret()
	ks, err := PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, abs := range []Abstraction{AbsHSAIL, AbsGCN3} {
		m := NewMachine(abs, &stats.Run{})
		out := m.Ctx.AllocBuffer(4 * 64)
		if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
			WG: [3]uint16{64, 1, 1}, Args: []uint64{out}}); err != nil {
			t.Fatal(err)
		}
		d, eng, err := m.NextDispatch()
		if err != nil {
			t.Fatal(err)
		}
		wg := emu.NewWGState(d, &d.Workgroups[0], eng.LDSBytes())
		w := eng.NewWave(wg, 0)
		redirects := 0
		for !w.Done {
			r, err := eng.Execute(w)
			if err != nil {
				t.Fatal(err)
			}
			if r.Redirected {
				redirects++
			}
		}
		if redirects > 1 {
			t.Errorf("%s: uniform branch caused %d redirects, want <= 1", abs, redirects)
		}
		for i := 0; i < 64; i++ {
			if got := m.Ctx.Mem.ReadU32(out + uint64(4*i)); got != 84 {
				t.Fatalf("%s: out[%d] = %d, want 84", abs, i, got)
			}
		}
	}
}
