package core

import (
	"ilsim/internal/emu"
	"testing"

	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
)

// runKernelBoth builds, runs under both abstractions with the given setup,
// and compares a u32 output buffer, returning the GCN3 machine.
func runKernelBoth(t *testing.T, k *hsail.Kernel, grid, wg, outWords int,
	args func(out uint64, m *Machine) []uint64, init func(m *Machine)) ([]uint32, []uint32) {
	t.Helper()
	ks, err := PrepareKernel(k, finalizer.Options{})
	if err != nil {
		t.Fatalf("PrepareKernel: %v", err)
	}
	var results [2][]uint32
	for i, abs := range []Abstraction{AbsHSAIL, AbsGCN3} {
		m := NewMachine(abs, &stats.Run{})
		if init != nil {
			init(m)
		}
		out := m.Ctx.AllocBuffer(uint64(4 * outWords))
		if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{uint32(grid), 1, 1},
			WG: [3]uint16{uint16(wg), 1, 1}, Args: args(out, m)}); err != nil {
			t.Fatal(err)
		}
		if err := m.RunFunctional(); err != nil {
			t.Fatalf("%s: %v", abs, err)
		}
		results[i] = make([]uint32, outWords)
		for j := range results[i] {
			results[i][j] = m.Ctx.Mem.ReadU32(out + uint64(4*j))
		}
	}
	return results[0], results[1]
}

// TestU32DivRemLowering: the reciprocal-based integer divide sequence must
// be exact for every tested dividend/divisor pair.
func TestU32DivRemLowering(t *testing.T) {
	b := kernel.NewBuilder("u32divrem")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	// Exercise interesting pairs derived from the lane ID.
	a := b.Mad(isa.TypeU32, gid, b.Int(isa.TypeU32, 2654435761), b.Int(isa.TypeU32, 977))
	d := b.Add(isa.TypeU32, b.And(isa.TypeU32, gid, b.Int(isa.TypeU32, 31)), b.Int(isa.TypeU32, 1))
	q := b.Div(isa.TypeU32, a, d)
	r := b.Rem(isa.TypeU32, a, d)
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 3))
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg), off)
	b.Store(hsail.SegGlobal, q, addr, 0)
	b.Store(hsail.SegGlobal, r, addr, 4)
	b.Ret()
	k := b.MustFinish()
	const n = 256
	h, g := runKernelBoth(t, k, n, 64, 2*n,
		func(out uint64, m *Machine) []uint64 { return []uint64{out} }, nil)
	for i := 0; i < n; i++ {
		av := uint32(i)*2654435761 + 977
		dv := uint32(i)&31 + 1
		wantQ, wantR := av/dv, av%dv
		if h[2*i] != wantQ || h[2*i+1] != wantR {
			t.Fatalf("HSAIL[%d]: %d/%d = (%d,%d), want (%d,%d)", i, av, dv, h[2*i], h[2*i+1], wantQ, wantR)
		}
		if g[2*i] != wantQ || g[2*i+1] != wantR {
			t.Fatalf("GCN3[%d]: %d/%d = (%d,%d), want (%d,%d)", i, av, dv, g[2*i], g[2*i+1], wantQ, wantR)
		}
	}
}

// TestCmov64AndIntUnaryLowering: 64-bit conditional moves and integer
// abs/neg sequences.
func TestCmov64AndIntUnaryLowering(t *testing.T) {
	b := kernel.NewBuilder("misc_lowering")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	big := b.Mul(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 0x100000001))
	c := b.Cmp(isa.CmpLt, isa.TypeU32, gid, b.Int(isa.TypeU32, 16))
	sel := b.Cmov(isa.TypeU64, c, big, b.Int(isa.TypeU64, 0x1234567890))
	folded := b.Xor(isa.TypeU32, b.Cvt(isa.TypeU32, sel),
		b.Cvt(isa.TypeU32, b.Shr(isa.TypeU64, sel, b.Int(isa.TypeU64, 32))))
	sgid := b.Cvt(isa.TypeS32, gid)
	neg := b.Neg(isa.TypeS32, sgid)
	abs := b.Abs(isa.TypeS32, neg)
	out := b.Add(isa.TypeU32, folded, b.Add(isa.TypeU32, neg, abs))
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	b.Store(hsail.SegGlobal, out, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
	b.Ret()
	k := b.MustFinish()
	const n = 64
	h, g := runKernelBoth(t, k, n, 64, n,
		func(out uint64, m *Machine) []uint64 { return []uint64{out} }, nil)
	for i := 0; i < n; i++ {
		var sel uint64
		if i < 16 {
			sel = uint64(i) * 0x100000001
		} else {
			sel = 0x1234567890
		}
		folded := uint32(sel) ^ uint32(sel>>32)
		neg := uint32(-int32(i))
		abs := uint32(i)
		want := folded + neg + abs
		if h[i] != want || g[i] != want {
			t.Fatalf("[%d]: HSAIL %#x GCN3 %#x want %#x", i, h[i], g[i], want)
		}
	}
}

// TestLdaLowering: materialized segment addresses must be loadable.
func TestLdaLowering(t *testing.T) {
	b := kernel.NewBuilder("lda")
	outArg := b.ArgPtr("out")
	b.SetPrivateSize(8)
	gid := b.WorkItemAbsID(isa.DimX)
	// Store through the private segment, reload through a materialized
	// address (lda + flat load).
	v := b.Mul(isa.TypeU32, gid, b.Int(isa.TypeU32, 5))
	b.Store(hsail.SegPrivate, v, kernel.NoBase, 0)
	pa := b.Lda(hsail.SegPrivate, kernel.NoBase, 0)
	got := b.Load(hsail.SegGlobal, isa.TypeU32, pa, 0) // flat access to private memory
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	b.Store(hsail.SegGlobal, got, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
	b.Ret()
	k := b.MustFinish()
	const n = 128
	h, g := runKernelBoth(t, k, n, 64, n,
		func(out uint64, m *Machine) []uint64 { return []uint64{out} }, nil)
	for i := 0; i < n; i++ {
		want := uint32(i * 5)
		if h[i] != want || g[i] != want {
			t.Fatalf("[%d]: HSAIL %d GCN3 %d want %d", i, h[i], g[i], want)
		}
	}
}

// TestLDSAtomicLowering: ds_add must serialize same-address lanes under
// both abstractions.
func TestLDSAtomicLowering(t *testing.T) {
	b := kernel.NewBuilder("lds_atomic")
	outArg := b.ArgPtr("out")
	b.SetGroupSize(16 * 4)
	lid := b.WorkItemID(isa.DimX)
	// All 64 lanes of a workgroup bump bin (lid & 3): 16 increments per bin.
	bin := b.And(isa.TypeU32, lid, b.Int(isa.TypeU32, 3))
	binOff := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, bin), b.Int(isa.TypeU64, 2))
	old := b.AtomicAdd(hsail.SegGroup, isa.TypeU32, b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 1)), binOff, 0)
	_ = old
	b.Barrier()
	// Lane 0..3 publish the bins.
	gid := b.WorkItemAbsID(isa.DimX)
	b.IfCmp(isa.CmpLt, isa.TypeU32, lid, b.Int(isa.TypeU32, 4), func() {
		v := b.Load(hsail.SegGroup, isa.TypeU32, binOff, 0)
		off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
		b.Store(hsail.SegGlobal, v, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
	}, nil)
	b.Ret()
	k := b.MustFinish()
	const wgs = 2
	h, g := runKernelBoth(t, k, 64*wgs, 64, 64*wgs,
		func(out uint64, m *Machine) []uint64 { return []uint64{out} }, nil)
	for wg := 0; wg < wgs; wg++ {
		for bin := 0; bin < 4; bin++ {
			i := wg*64 + bin
			if h[i] != 16 || g[i] != 16 {
				t.Fatalf("wg %d bin %d: HSAIL %d GCN3 %d, want 16", wg, bin, h[i], g[i])
			}
		}
	}
}

// TestMachinePlumbing: Submit validation and kernel-load deduplication.
func TestMachinePlumbing(t *testing.T) {
	b := kernel.NewBuilder("plumb")
	_ = b.ArgPtr("p")
	b.Ret()
	ks, err := PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(AbsGCN3, &stats.Run{})
	// Wrong arg count.
	if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1}, WG: [3]uint16{64, 1, 1}}); err == nil {
		t.Fatal("wrong arg count accepted")
	}
	// Loading the same kernel twice must not duplicate code.
	b1 := m.Load(ks)
	b2 := m.Load(ks)
	if b1 != b2 {
		t.Fatal("kernel loaded twice")
	}
	// Two valid submits, both dispatchable.
	for i := 0; i < 2; i++ {
		if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
			WG: [3]uint16{64, 1, 1}, Args: []uint64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Pending() != 2 {
		t.Fatalf("pending %d, want 2", m.Pending())
	}
	if err := m.RunFunctional(); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}

// TestCompletionSignals: every dispatch's completion signal must reach zero
// after the queue drains, under both the functional and timed paths.
func TestCompletionSignals(t *testing.T) {
	b := kernel.NewBuilder("signals")
	_ = b.ArgPtr("unused")
	b.Ret()
	ks, err := PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(AbsGCN3, &stats.Run{})
	for i := 0; i < 3; i++ {
		if err := m.Submit(Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
			WG: [3]uint16{64, 1, 1}, Args: []uint64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	var sigs []uint64
	for {
		d, eng, err := m.NextDispatch()
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			break
		}
		if d.Packet.CompletionSignal == 0 {
			t.Fatal("dispatch has no completion signal")
		}
		if m.SignalValue(d.Packet.CompletionSignal) != 1 {
			t.Fatal("signal not initialized to 1")
		}
		sigs = append(sigs, d.Packet.CompletionSignal)
		if err := emu.RunFunctional(eng, d); err != nil {
			t.Fatal(err)
		}
		m.CompleteDispatch(d)
	}
	if len(sigs) != 3 {
		t.Fatalf("dispatched %d, want 3", len(sigs))
	}
	for i, s := range sigs {
		if m.SignalValue(s) != 0 {
			t.Fatalf("signal %d not completed: %d", i, m.SignalValue(s))
		}
	}
}

// TestPartialWaveEquivalence: workgroups that do not fill the last wavefront
// must mask the tail lanes identically under both abstractions.
func TestPartialWaveEquivalence(t *testing.T) {
	b := kernel.NewBuilder("partial")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	v := b.Mad(isa.TypeU32, gid, gid, b.Int(isa.TypeU32, 3))
	off := b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2))
	b.Store(hsail.SegGlobal, v, b.Add(isa.TypeU64, b.LoadArg(outArg), off), 0)
	b.Ret()
	k := b.MustFinish()
	const wg, grid = 80, 160 // 2 waves per workgroup, second has 16 lanes
	h, g := runKernelBoth(t, k, grid, wg, grid+8,
		func(out uint64, m *Machine) []uint64 { return []uint64{out} }, nil)
	for i := 0; i < grid; i++ {
		want := uint32(i*i + 3)
		if h[i] != want || g[i] != want {
			t.Fatalf("[%d]: HSAIL %d GCN3 %d want %d", i, h[i], g[i], want)
		}
	}
	// Lanes beyond the grid must never have stored.
	for i := grid; i < grid+8; i++ {
		if h[i] != 0 || g[i] != 0 {
			t.Fatalf("tail lane %d stored: HSAIL %d GCN3 %d", i, h[i], g[i])
		}
	}
}
