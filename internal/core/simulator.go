package core

import (
	"context"
	"fmt"
	"runtime"

	"ilsim/internal/stats"
	"ilsim/internal/timing"
)

// ErrBudgetExceeded marks a run killed by its cycle or instruction budget
// (RunOptions.MaxCycles / MaxInsts); errors.Is-compatible with the timing
// layer's sentinel.
var ErrBudgetExceeded = timing.ErrBudgetExceeded

// RunOptions control optional (more expensive) statistics and the run's
// safety bounds.
type RunOptions struct {
	// TrackValues enables VRF lane-value uniqueness sampling (Fig 10).
	TrackValues bool
	// ValueSampleEvery samples one in N VRF accesses (0/1 = every access).
	ValueSampleEvery int
	// TrackReuse enables register reuse-distance tracking (Fig 7).
	TrackReuse bool

	// CUParallelism shards each cycle's compute-unit ticks across this
	// many goroutines (the paper-visible statistics are byte-identical at
	// every setting). 0 resolves via ResolveCUParallelism — min(NumCUs,
	// GOMAXPROCS) for a lone simulation; 1 forces the serial loop.
	CUParallelism int

	// MemParallelism shards the phase-2 memory drain's bank waves — L1
	// banks, then L2 banks, then DRAM channels — across this many pool
	// goroutines (statistics stay byte-identical at every setting; the
	// determinism suite pins it). 0 resolves via ResolveMemParallelism
	// against Config.DrainWidth(); 1 forces the serial drain. The pool is
	// shared with CU ticking and the phases never overlap, so a
	// simulation's peak concurrency is max(CUParallelism, MemParallelism),
	// not their sum.
	MemParallelism int

	// MaxCycles bounds the run's total simulated cycles (0 = unlimited);
	// exceeding it aborts with ErrBudgetExceeded. This is the defense
	// against livelocked or runaway simulations: the budget is enforced
	// inside the timing loop, not just between kernels.
	MaxCycles uint64
	// MaxInsts bounds committed wavefront instructions (0 = unlimited).
	MaxInsts uint64
	// CheckEvery is the watchdog poll period in simulated cycles
	// (0 = timing.DefaultCheckEvery).
	CheckEvery int

	// DisableCycleSkipping forces the timing core to tick every cycle
	// instead of skipping provably-inert spans. Statistics are
	// byte-identical either way; this is a debugging/verification knob
	// (the determinism regression test runs both and compares
	// fingerprints).
	DisableCycleSkipping bool
}

// ResolveCUParallelism turns a requested per-simulation CU-parallelism
// setting into an effective worker count. An explicit request (>0) is
// honored up to the CU count — even if it oversubscribes the host; CLIs
// warn about that but defer to the user. Auto (<=0) divides the host's
// GOMAXPROCS across activeJobs concurrent simulations (a sweep's -j) so the
// two levels of parallelism multiply to roughly the core budget instead of
// fighting each other.
func ResolveCUParallelism(requested, numCUs, activeJobs int) int {
	if numCUs < 1 {
		numCUs = 1
	}
	if requested > 0 {
		if requested > numCUs {
			return numCUs
		}
		return requested
	}
	if activeJobs < 1 {
		activeJobs = 1
	}
	per := runtime.GOMAXPROCS(0) / activeJobs
	if per > numCUs {
		per = numCUs
	}
	if per < 1 {
		per = 1
	}
	return per
}

// ResolveMemParallelism turns a requested drain-parallelism setting into an
// effective worker count, mirroring ResolveCUParallelism: an explicit request
// (>0) is honored up to width (the configuration's DrainWidth — the widest
// bank wave, beyond which extra workers can never find a task); auto (<=0)
// divides GOMAXPROCS across activeJobs concurrent simulations.
func ResolveMemParallelism(requested, width, activeJobs int) int {
	if width < 1 {
		width = 1
	}
	if requested > 0 {
		if requested > width {
			return width
		}
		return requested
	}
	if activeJobs < 1 {
		activeJobs = 1
	}
	per := runtime.GOMAXPROCS(0) / activeJobs
	if per > width {
		per = width
	}
	if per < 1 {
		per = 1
	}
	return per
}

// OversubscriptionWarning returns a human-readable warning when an explicit
// intra-simulation parallelism request multiplied by the job-level worker
// pool exceeds the host's cores, or "" when the combination is fine (or
// auto-resolved). A simulation's peak concurrency is max(cuPar, memPar) —
// the phase-1 tick and phase-2 drain share one pool and never overlap.
// jobWorkers <= 0 means GOMAXPROCS, matching the sweep engines' -j default.
func OversubscriptionWarning(jobWorkers, cuPar, memPar int) string {
	intra := cuPar
	if memPar > intra {
		intra = memPar
	}
	if intra <= 1 {
		return ""
	}
	if jobWorkers <= 0 {
		jobWorkers = runtime.GOMAXPROCS(0)
	}
	cores := runtime.GOMAXPROCS(0)
	if total := jobWorkers * intra; total > cores {
		return fmt.Sprintf("-j %d x max(-cu-par %d, -mem-par %d) = %d goroutines oversubscribes %d cores; results are identical but wall-clock may suffer (use -cu-par 0 / -mem-par 0 to auto-budget)",
			jobWorkers, cuPar, memPar, total, cores)
	}
	return ""
}

// Simulator runs workloads on the timed GPU model under either abstraction.
type Simulator struct {
	Cfg Config
}

// NewSimulator creates a simulator with the given configuration.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{Cfg: cfg}, nil
}

// params maps the public configuration onto the timing model.
func (s *Simulator) params() timing.Params {
	p := timing.DefaultParams()
	c := s.Cfg
	p.NumCUs, p.SIMDsPerCU, p.WFSlots = c.NumCUs, c.SIMDsPerCU, c.WFSlots
	p.VRFBanks = c.VRFBanks
	p.IBBytes = c.IBEntries * 8
	p.FetchWidth = c.FetchWidth
	p.L1DSize, p.L1DWays = c.L1DSize, c.L1DWays
	p.L1ISize, p.L1IWays = c.L1ISize, c.L1IWays
	p.ScalarL1Size, p.ScalarL1Ways = c.ScalarL1Size, c.ScalarL1Ways
	p.L2Size, p.L2Ways, p.L2Banks = c.L2Size, c.L2Ways, c.L2Banks
	p.L1HitLatency, p.L2HitLatency = c.L1HitLatency, c.L2HitLatency
	p.ScalarHitLatency = c.ScalarHitLatency
	p.LDSLatency = c.LDSLatency
	p.DRAMChannels = c.DRAMChannels
	p.DRAMLatency, p.DRAMOccupancy = c.DRAMLatency, c.DRAMOccupancy
	return p
}

// Run executes a workload setup under one abstraction on the timed model.
// setup prepares kernels and buffers on the machine and submits every
// launch; Run then drains the queue through the packet processor and GPU.
func (s *Simulator) Run(abs Abstraction, workload string, setup func(m *Machine) error, opts RunOptions) (*stats.Run, *Machine, error) {
	return s.RunContext(context.Background(), abs, workload, setup, opts)
}

// RunContext is Run with cooperative cancellation: the timing loop polls
// ctx (and the opts budgets) every opts.CheckEvery cycles, so canceling the
// context — a per-job timeout, a ctrl-C, a fail-fast sweep — stops a
// simulation mid-kernel instead of only between jobs.
func (s *Simulator) RunContext(ctx context.Context, abs Abstraction, workload string, setup func(m *Machine) error, opts RunOptions) (*stats.Run, *Machine, error) {
	run := &stats.Run{Workload: workload, Abstraction: abs.String()}
	m := NewMachine(abs, run)
	m.Col.TrackValues = opts.TrackValues
	m.Col.ValueSampleEvery = opts.ValueSampleEvery
	m.Col.TrackReuse = opts.TrackReuse
	if err := setup(m); err != nil {
		return nil, nil, fmt.Errorf("core: %s/%s setup: %w", workload, abs, err)
	}
	gpu := timing.NewGPU(s.params(), run)
	gpu.Mem = m.Ctx.Mem
	gpu.Parallelism = ResolveCUParallelism(opts.CUParallelism, s.Cfg.NumCUs, 1)
	gpu.MemParallelism = ResolveMemParallelism(opts.MemParallelism, s.Cfg.DrainWidth(), 1)
	defer gpu.Stop()
	wd := timing.Watchdog{
		MaxCycles:  int64(opts.MaxCycles),
		MaxInsts:   opts.MaxInsts,
		CheckEvery: int64(opts.CheckEvery),
	}
	if ctx != nil && ctx.Done() != nil {
		wd.Ctx = ctx
	}
	gpu.WD = wd
	gpu.NoSkip = opts.DisableCycleSkipping
	for {
		if ctx != nil && ctx.Err() != nil {
			return nil, nil, fmt.Errorf("core: %s/%s: run canceled: %w", workload, abs, context.Cause(ctx))
		}
		d, eng, err := m.NextDispatch()
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s/%s dispatch: %w", workload, abs, err)
		}
		if d == nil {
			break
		}
		cycles, err := gpu.RunDispatch(eng, d)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s/%s (kernel %s): %w", workload, abs, d.KernelName, err)
		}
		run.KernelCycles = append(run.KernelCycles, uint64(cycles))
		m.CompleteDispatch(d)
	}
	gpu.Finalize()
	run.DataFootprintBytes = m.Ctx.Mem.FootprintBytes()
	return run, m, nil
}

// RunBoth executes the same workload under both abstractions with identical
// inputs and returns (HSAIL run, GCN3 run).
func (s *Simulator) RunBoth(workload string, setup func(m *Machine) error, opts RunOptions) (*stats.Run, *stats.Run, error) {
	h, _, err := s.Run(AbsHSAIL, workload, setup, opts)
	if err != nil {
		return nil, nil, err
	}
	g, _, err := s.Run(AbsGCN3, workload, setup, opts)
	if err != nil {
		return nil, nil, err
	}
	return h, g, nil
}
