package core

import (
	"fmt"
	"sync"

	"ilsim/internal/finalizer"
	"ilsim/internal/gcn3"
	"ilsim/internal/hsail"
	"ilsim/internal/kernel"
)

// KernelSource is one kernel prepared for dual-abstraction execution: the
// HSAIL form (as shipped in the BRIG-like container) and the finalized GCN3
// code object, plus the CFG analysis both consumers share.
//
// A prepared KernelSource is immutable and safe to load on any number of
// Machines concurrently; the experiment engine's instance cache relies on
// this to finalize each kernel once per sweep instead of once per point.
type KernelSource struct {
	HSAIL *hsail.Kernel
	CFG   *kernel.CFG
	GCN3  *gcn3.CodeObject
	// BRIGBytes is the encoded IL container size (the "several kilobytes"
	// representation, reported for context alongside Figure 8).
	BRIGBytes int

	// encOnce memoizes EncodedGCN3: CodeObject.Encode re-runs program
	// layout, which mutates the shared Program, so concurrent Machines
	// must share one encode.
	encOnce  sync.Once
	encBytes []byte
	encErr   error
}

// EncodedGCN3 returns the serialized GCN3 code object, encoding it at most
// once per KernelSource (concurrent loaders share the result).
func (ks *KernelSource) EncodedGCN3() ([]byte, error) {
	ks.encOnce.Do(func() {
		ks.encBytes, ks.encErr = ks.GCN3.Encode()
	})
	return ks.encBytes, ks.encErr
}

// PrepareKernel runs the full toolchain on an HSAIL kernel: validation,
// BRIG container round-trip (the compiler→finalizer handoff), CFG analysis,
// and finalization to GCN3.
func PrepareKernel(k *hsail.Kernel, fopts finalizer.Options) (*KernelSource, error) {
	brig, err := hsail.EncodeBRIG(k)
	if err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	decoded, err := hsail.DecodeBRIG(brig)
	if err != nil {
		return nil, fmt.Errorf("core: kernel %q: BRIG round-trip: %w", k.Name, err)
	}
	cfg, err := kernel.AnalyzeCFG(decoded)
	if err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	co, err := finalizer.FinalizeWithCFG(decoded, cfg, fopts)
	if err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	// Exercise the machine-code container exactly as a loader would.
	coBytes, err := co.Encode()
	if err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	co2, err := gcn3.DecodeCodeObject(coBytes)
	if err != nil {
		return nil, fmt.Errorf("core: kernel %q: code object round-trip: %w", k.Name, err)
	}
	return &KernelSource{
		HSAIL:     decoded,
		CFG:       cfg,
		GCN3:      co2,
		BRIGBytes: len(brig),
	}, nil
}

// CodeBytesHSAIL returns the loaded HSAIL footprint (8 B/instruction).
func (ks *KernelSource) CodeBytesHSAIL() int { return ks.HSAIL.CodeBytes() }

// CodeBytesGCN3 returns the true encoded GCN3 footprint.
func (ks *KernelSource) CodeBytesGCN3() int { return ks.GCN3.Program.Size }
