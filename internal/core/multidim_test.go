package core

import (
	"testing"

	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/kernel"
	"ilsim/internal/stats"
)

// TestTwoDimensionalDispatch checks 2-D work-item geometry under both
// abstractions: the GCN3 ABI fills v0/v1 with per-dimension IDs (the real
// amdhsa enable_vgpr_workitem_id mechanism) while HSAIL queries simulator
// state.
func TestTwoDimensionalDispatch(t *testing.T) {
	const (
		w, h   = 64, 32 // grid
		wgX    = 16
		wgY    = 8
		stride = w
	)
	b := kernel.NewBuilder("grid2d")
	outArg := b.ArgPtr("out")
	lx := b.WorkItemID(isa.DimX)
	ly := b.WorkItemID(isa.DimY)
	gx := b.WorkGroupID(isa.DimX)
	gy := b.WorkGroupID(isa.DimY)
	sx := b.WorkGroupSize(isa.DimX)
	sy := b.WorkGroupSize(isa.DimY)
	// Global coordinates from the ABI pieces.
	x := b.Mad(isa.TypeU32, gx, sx, lx)
	y := b.Mad(isa.TypeU32, gy, sy, ly)
	// out[y*stride + x] = y<<16 | x
	idx := b.Mad(isa.TypeU32, y, b.Int(isa.TypeU32, stride), x)
	val := b.Or(isa.TypeU32, b.Shl(isa.TypeU32, y, b.Int(isa.TypeU32, 16)), x)
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, idx), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, val, addr, 0)
	b.Ret()
	ks, err := PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ks.GCN3.WorkItemIDDims != 2 {
		t.Fatalf("WorkItemIDDims = %d, want 2", ks.GCN3.WorkItemIDDims)
	}

	for _, abs := range []Abstraction{AbsHSAIL, AbsGCN3} {
		m := NewMachine(abs, &stats.Run{})
		out := m.Ctx.AllocBuffer(4 * w * h)
		err := m.Submit(Launch{Kernel: ks,
			Grid: [3]uint32{w, h, 1}, WG: [3]uint16{wgX, wgY, 1},
			Args: []uint64{out}})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RunFunctional(); err != nil {
			t.Fatalf("%s: %v", abs, err)
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				want := uint32(y<<16 | x)
				got := m.Ctx.Mem.ReadU32(out + uint64(4*(y*stride+x)))
				if got != want {
					t.Fatalf("%s: out[%d][%d] = %#x, want %#x", abs, y, x, got, want)
				}
			}
		}
	}
}

// TestThreeDimensionalDispatch extends the check to z.
func TestThreeDimensionalDispatch(t *testing.T) {
	const (
		nx, ny, nz = 16, 8, 4
	)
	b := kernel.NewBuilder("grid3d")
	outArg := b.ArgPtr("out")
	lx := b.WorkItemID(isa.DimX)
	ly := b.WorkItemID(isa.DimY)
	lz := b.WorkItemID(isa.DimZ)
	gx := b.Mad(isa.TypeU32, b.WorkGroupID(isa.DimX), b.WorkGroupSize(isa.DimX), lx)
	gy := b.Mad(isa.TypeU32, b.WorkGroupID(isa.DimY), b.WorkGroupSize(isa.DimY), ly)
	gz := b.Mad(isa.TypeU32, b.WorkGroupID(isa.DimZ), b.WorkGroupSize(isa.DimZ), lz)
	idx := b.Mad(isa.TypeU32, b.Mad(isa.TypeU32, gz, b.Int(isa.TypeU32, ny), gy),
		b.Int(isa.TypeU32, nx), gx)
	val := b.Add(isa.TypeU32, b.Mul(isa.TypeU32, gz, b.Int(isa.TypeU32, 1000)),
		b.Mad(isa.TypeU32, gy, b.Int(isa.TypeU32, 100), gx))
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, idx), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, val, addr, 0)
	b.Ret()
	ks, err := PrepareKernel(b.MustFinish(), finalizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ks.GCN3.WorkItemIDDims != 3 {
		t.Fatalf("WorkItemIDDims = %d, want 3", ks.GCN3.WorkItemIDDims)
	}
	for _, abs := range []Abstraction{AbsHSAIL, AbsGCN3} {
		m := NewMachine(abs, &stats.Run{})
		out := m.Ctx.AllocBuffer(4 * nx * ny * nz)
		err := m.Submit(Launch{Kernel: ks,
			Grid: [3]uint32{nx, ny, nz}, WG: [3]uint16{8, 4, 2},
			Args: []uint64{out}})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RunFunctional(); err != nil {
			t.Fatalf("%s: %v", abs, err)
		}
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					want := uint32(z*1000 + y*100 + x)
					got := m.Ctx.Mem.ReadU32(out + uint64(4*((z*ny+y)*nx+x)))
					if got != want {
						t.Fatalf("%s: (%d,%d,%d) = %d, want %d", abs, x, y, z, got, want)
					}
				}
			}
		}
	}
}
