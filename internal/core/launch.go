package core

import (
	"fmt"

	"ilsim/internal/emu"
	"ilsim/internal/hsa"
	"ilsim/internal/stats"
)

// Abstraction selects the ISA level a machine executes.
type Abstraction int

// The two abstractions under study.
const (
	AbsHSAIL Abstraction = iota
	AbsGCN3
)

// String names the abstraction as the paper does.
func (a Abstraction) String() string {
	if a == AbsHSAIL {
		return "HSAIL"
	}
	return "GCN3"
}

// Launch describes one kernel dispatch: geometry plus kernel arguments
// (one 32- or 64-bit value per declared argument).
type Launch struct {
	Kernel *KernelSource
	Grid   [3]uint32
	WG     [3]uint16
	Args   []uint64
}

// Machine is one simulated process executing under one abstraction: its own
// functional memory image, loaded kernels, AQL queue and statistics.
type Machine struct {
	Abs Abstraction
	Ctx *hsa.Context
	Col *emu.Collector

	queue     *hsa.Queue
	codeBase  map[*KernelSource]uint64
	kernelFor map[uint64]*KernelSource
	launches  []Launch
}

// NewMachine creates a machine collecting into run.
func NewMachine(abs Abstraction, run *stats.Run) *Machine {
	const queueSlots = 4096
	ctx := hsa.NewContext()
	qBase := ctx.AllocQueueSlot(queueSlots * hsa.PacketSize)
	m := &Machine{
		Abs:       abs,
		Ctx:       ctx,
		Col:       &emu.Collector{Run: run},
		queue:     hsa.NewQueue(ctx.Mem, qBase, queueSlots),
		codeBase:  make(map[*KernelSource]uint64),
		kernelFor: make(map[uint64]*KernelSource),
	}
	// AQL packets and signals are runtime-internal: the GCN3 prologue
	// reads dispatch packets from memory (the ABI), but that is not
	// application data footprint.
	ctx.Mem.ExcludeFromFootprint(hsa.QueueBase, hsa.QueueBase+hsa.QueueSize)
	if run != nil {
		run.Abstraction = abs.String()
	}
	return m
}

// Load places a kernel's code in the machine's code region and returns its
// base address. HSAIL loads as fixed 8-byte instruction handles (the gem5
// approximation); GCN3 loads its true encoded bytes.
func (m *Machine) Load(ks *KernelSource) uint64 {
	if base, ok := m.codeBase[ks]; ok {
		return base
	}
	m.Ctx.Mem.SetFootprintTracking(false)
	var base uint64
	if m.Abs == AbsHSAIL {
		base = m.Ctx.AllocCode(uint64(ks.CodeBytesHSAIL()))
		// The handles are opaque; write indexes so the image is concrete.
		for i := 0; i < ks.HSAIL.NumInsts(); i++ {
			m.Ctx.Mem.WriteU64(base+uint64(i*8), uint64(i))
		}
	} else {
		encoded, err := ks.EncodedGCN3()
		if err != nil {
			panic(fmt.Sprintf("core: encoding validated code object: %v", err))
		}
		base = m.Ctx.AllocCode(uint64(len(encoded)))
		m.Ctx.Mem.Write(base, encoded)
	}
	m.Ctx.Mem.SetFootprintTracking(true)
	m.codeBase[ks] = base
	m.kernelFor[base] = ks
	if m.Col != nil && m.Col.Run != nil {
		if m.Abs == AbsHSAIL {
			m.Col.Run.CodeFootprintBytes += uint64(ks.CodeBytesHSAIL())
		} else {
			m.Col.Run.CodeFootprintBytes += uint64(ks.CodeBytesGCN3())
		}
	}
	return base
}

// Submit enqueues a launch on the machine's AQL queue.
func (m *Machine) Submit(l Launch) error {
	k := l.Kernel.HSAIL
	if len(l.Args) != len(k.Args) {
		return fmt.Errorf("core: kernel %q: %d arguments supplied, %d declared",
			k.Name, len(l.Args), len(k.Args))
	}
	base := m.Load(l.Kernel)

	// Write kernel arguments into a fresh kernarg block.
	m.Ctx.Mem.SetFootprintTracking(false)
	kernarg := m.Ctx.AllocKernarg(uint64(k.KernargSize))
	for i, a := range k.Args {
		if a.Size == 8 {
			m.Ctx.Mem.WriteU64(kernarg+uint64(a.Offset), l.Args[i])
		} else {
			m.Ctx.Mem.WriteU32(kernarg+uint64(a.Offset), uint32(l.Args[i]))
		}
	}
	m.Ctx.Mem.SetFootprintTracking(true)

	priv := l.Kernel.GCN3.PrivateSize
	if m.Abs == AbsHSAIL {
		priv = k.PrivateSize + k.SpillSize
	}
	// Every dispatch carries a completion signal, decremented by the
	// packet processor when the grid drains (the hsa_signal_t protocol).
	m.Ctx.Mem.SetFootprintTracking(false)
	sigAddr := m.Ctx.AllocQueueSlot(8)
	hsa.NewSignal(m.Ctx.Mem, sigAddr, 1)
	m.Ctx.Mem.SetFootprintTracking(true)
	pkt := &hsa.AQLPacket{
		Header:             hsa.PacketTypeKernelDispatch,
		Setup:              3,
		WorkgroupSize:      [3]uint16{l.WG[0], l.WG[1], l.WG[2]},
		GridSize:           l.Grid,
		PrivateSegmentSize: uint32(priv),
		GroupSegmentSize:   uint32(k.GroupSize),
		KernelObject:       base,
		KernargAddress:     kernarg,
		CompletionSignal:   sigAddr,
	}
	m.Ctx.Mem.SetFootprintTracking(false)
	err := m.queue.Enqueue(pkt)
	m.Ctx.Mem.SetFootprintTracking(true)
	if err != nil {
		return err
	}
	m.launches = append(m.launches, l)
	return nil
}

// NextDispatch plays the packet processor: it dequeues the next AQL packet,
// expands the dispatch, and performs the abstraction's segment setup —
// per-process scratch reuse for GCN3, fresh per-launch mappings for HSAIL
// (paper §VI.A).
func (m *Machine) NextDispatch() (*hsa.Dispatch, emu.Engine, error) {
	m.Ctx.Mem.SetFootprintTracking(false)
	pkt, addr, err := m.queue.Dequeue()
	m.Ctx.Mem.SetFootprintTracking(true)
	if err != nil || pkt == nil {
		return nil, nil, err
	}
	d, err := hsa.ExpandDispatch(pkt, addr)
	if err != nil {
		return nil, nil, err
	}
	ks := m.kernelFor[pkt.KernelObject]
	if ks == nil {
		return nil, nil, fmt.Errorf("core: no kernel loaded at %#x", pkt.KernelObject)
	}
	d.KernelName = ks.HSAIL.Name
	total := d.GridTotal()

	var eng emu.Engine
	if m.Abs == AbsHSAIL {
		k := ks.HSAIL
		if k.PrivateSize > 0 {
			d.PrivateStride = uint32(k.PrivateSize)
			d.PrivateBase = m.Ctx.ScratchForHSAIL(total * uint64(k.PrivateSize))
		}
		if k.SpillSize > 0 {
			d.SpillStride = uint32(k.SpillSize)
			d.SpillBase = m.Ctx.ScratchForHSAIL(total * uint64(k.SpillSize))
		}
		eng = emu.NewHSAILEngine(m.Ctx, k, ks.CFG, d, m.codeBase[ks], m.Col)
	} else {
		if ks.GCN3.PrivateSize > 0 {
			d.PrivateStride = uint32(ks.GCN3.PrivateSize)
			d.PrivateBase = m.Ctx.ScratchForGCN3(total * uint64(ks.GCN3.PrivateSize))
		}
		eng = emu.NewGCN3Engine(m.Ctx, ks.GCN3, d, m.codeBase[ks], m.Col)
	}
	if m.Col != nil && m.Col.Run != nil {
		m.Col.Run.KernelLaunches++
	}
	return d, eng, nil
}

// CompleteDispatch performs the packet processor's completion work:
// decrementing the dispatch's completion signal.
func (m *Machine) CompleteDispatch(d *hsa.Dispatch) {
	if d.Packet.CompletionSignal == 0 {
		return
	}
	m.Ctx.Mem.SetFootprintTracking(false)
	v := m.Ctx.Mem.ReadU64(d.Packet.CompletionSignal)
	m.Ctx.Mem.WriteU64(d.Packet.CompletionSignal, v-1)
	m.Ctx.Mem.SetFootprintTracking(true)
}

// SignalValue reads a completion signal's current value.
func (m *Machine) SignalValue(addr uint64) int64 {
	return int64(m.Ctx.Mem.ReadU64(addr))
}

// Pending returns the number of submitted, undispatched launches.
func (m *Machine) Pending() uint64 { return m.queue.Pending() }

// RunFunctional drains the queue with the reference (untimed) executor.
func (m *Machine) RunFunctional() error {
	for {
		d, eng, err := m.NextDispatch()
		if err != nil {
			return err
		}
		if d == nil {
			return nil
		}
		if err := emu.RunFunctional(eng, d); err != nil {
			return err
		}
		m.CompleteDispatch(d)
	}
}
