// Package kernel provides the "high-level compiler" frontend of the modeled
// toolchain: a programmatic builder that constructs HSAIL kernels (the role
// HCC plays in the paper's Figure 4 flow), plus the control-flow-graph
// analyses that both the IL simulator (immediate post-dominator reconvergence
// points, paper §III.C.1) and the finalizer (reducibility, structured-region
// discovery for if-conversion) require.
package kernel

import (
	"fmt"
	"math"

	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// Val is a typed value reference: a virtual register, immediate, or control
// register, together with its data type. Builder methods accept and return
// Vals so kernels read like three-address code.
type Val struct {
	Op hsail.Operand
	T  isa.DataType
}

// IsReg reports whether the value is a virtual register.
func (v Val) IsReg() bool { return v.Op.Kind == hsail.OperReg }

// BlockRef names a basic block under construction.
type BlockRef struct{ id int }

// ID returns the referenced block's ID.
func (b BlockRef) ID() int { return b.id }

// Builder incrementally constructs an HSAIL kernel.
type Builder struct {
	k        *hsail.Kernel
	cur      *hsail.Block
	nextSlot int
	nextCReg int
	err      error
}

// NewBuilder starts a kernel named name. The entry block is current.
func NewBuilder(name string) *Builder {
	b := &Builder{k: &hsail.Kernel{Name: name}}
	entry := &hsail.Block{ID: 0}
	b.k.Blocks = append(b.k.Blocks, entry)
	b.cur = entry
	return b
}

// fail records the first construction error; Finish reports it.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kernel %q: %s", b.k.Name, fmt.Sprintf(format, args...))
	}
}

// Arg declares a kernel argument of the given size (4 or 8 bytes) and returns
// its argument index for kernarg loads.
func (b *Builder) Arg(name string, size int) int {
	if size != 4 && size != 8 {
		b.fail("argument %q has unsupported size %d", name, size)
		size = 8
	}
	off := b.k.KernargSize
	// HSA kernarg layout: natural alignment.
	if rem := off % size; rem != 0 {
		off += size - rem
	}
	b.k.Args = append(b.k.Args, hsail.ArgInfo{Name: name, Size: size, Offset: off})
	b.k.KernargSize = off + size
	return len(b.k.Args) - 1
}

// ArgPtr declares an 8-byte pointer argument.
func (b *Builder) ArgPtr(name string) int { return b.Arg(name, 8) }

// ArgU32 declares a 4-byte argument.
func (b *Builder) ArgU32(name string) int { return b.Arg(name, 4) }

// SetGroupSize declares the static group (LDS) segment demand in bytes.
func (b *Builder) SetGroupSize(n int) { b.k.GroupSize = n }

// SetPrivateSize declares the per-work-item private segment demand in bytes.
func (b *Builder) SetPrivateSize(n int) { b.k.PrivateSize = n }

// SetSpillSize declares the per-work-item spill segment demand in bytes.
func (b *Builder) SetSpillSize(n int) { b.k.SpillSize = n }

// Reg allocates a fresh virtual register of type t.
func (b *Builder) Reg(t isa.DataType) Val {
	n := t.Regs()
	if n == 0 {
		b.fail("cannot allocate register of type %s", t)
		n = 1
	}
	v := Val{Op: hsail.Reg(b.nextSlot), T: t}
	b.nextSlot += n
	if b.nextSlot > b.k.NumRegSlots {
		b.k.NumRegSlots = b.nextSlot
	}
	return v
}

// CRegVal allocates a fresh control register.
func (b *Builder) CRegVal() Val {
	v := Val{Op: hsail.CReg(b.nextCReg), T: isa.TypeNone}
	b.nextCReg++
	if b.nextCReg > b.k.NumCRegs {
		b.k.NumCRegs = b.nextCReg
	}
	return v
}

// Int returns an integer immediate of type t.
func (b *Builder) Int(t isa.DataType, v int64) Val {
	return Val{Op: hsail.Imm(uint64(v)), T: t}
}

// F32 returns a float32 immediate.
func (b *Builder) F32(v float32) Val {
	return Val{Op: hsail.Imm(uint64(math.Float32bits(v))), T: isa.TypeF32}
}

// F64 returns a float64 immediate.
func (b *Builder) F64(v float64) Val {
	return Val{Op: hsail.Imm(math.Float64bits(v)), T: isa.TypeF64}
}

// Block creates a new, initially empty basic block (does not switch to it).
func (b *Builder) Block() BlockRef {
	blk := &hsail.Block{ID: len(b.k.Blocks)}
	b.k.Blocks = append(b.k.Blocks, blk)
	return BlockRef{id: blk.ID}
}

// StartBlock switches emission to the referenced block.
func (b *Builder) StartBlock(r BlockRef) {
	if r.id < 0 || r.id >= len(b.k.Blocks) {
		b.fail("StartBlock: bad block %d", r.id)
		return
	}
	b.cur = b.k.Blocks[r.id]
}

// emit appends an instruction to the current block.
func (b *Builder) emit(in hsail.Inst) {
	b.cur.Insts = append(b.cur.Insts, in)
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(hsail.Inst{Op: hsail.OpNop}) }

// Mov emits dst = src and returns dst.
func (b *Builder) Mov(t isa.DataType, src Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpMov, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{src.Op}, NSrc: 1})
	return dst
}

// MovTo emits dst = src into an existing register (for loop-carried values).
func (b *Builder) MovTo(dst, src Val) {
	if !dst.IsReg() {
		b.fail("MovTo: destination is not a register")
		return
	}
	b.emit(hsail.Inst{Op: hsail.OpMov, Type: dst.T, Dst: dst.Op, Srcs: [3]hsail.Operand{src.Op}, NSrc: 1})
}

// Cvt emits dst = convert(src) to type t.
func (b *Builder) Cvt(t isa.DataType, src Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpCvt, Type: t, SrcType: src.T, Dst: dst.Op, Srcs: [3]hsail.Operand{src.Op}, NSrc: 1})
	return dst
}

// Binary emits dst = src0 <op> src1 of type t and returns dst.
func (b *Builder) Binary(op hsail.Op, t isa.DataType, s0, s1 Val) Val {
	dst := b.Reg(t)
	b.BinaryTo(op, dst, s0, s1)
	return dst
}

// BinaryTo emits dst = src0 <op> src1 into an existing register.
func (b *Builder) BinaryTo(op hsail.Op, dst, s0, s1 Val) {
	b.emit(hsail.Inst{Op: op, Type: dst.T, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op, s1.Op}, NSrc: 2})
}

// Add emits dst = s0 + s1.
func (b *Builder) Add(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpAdd, t, s0, s1) }

// Sub emits dst = s0 - s1.
func (b *Builder) Sub(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpSub, t, s0, s1) }

// Mul emits dst = s0 * s1.
func (b *Builder) Mul(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpMul, t, s0, s1) }

// Div emits dst = s0 / s1 (a single IL instruction; paper Table 3).
func (b *Builder) Div(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpDiv, t, s0, s1) }

// Rem emits dst = s0 % s1.
func (b *Builder) Rem(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpRem, t, s0, s1) }

// Min emits dst = min(s0, s1).
func (b *Builder) Min(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpMin, t, s0, s1) }

// Max emits dst = max(s0, s1).
func (b *Builder) Max(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpMax, t, s0, s1) }

// And emits dst = s0 & s1.
func (b *Builder) And(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpAnd, t, s0, s1) }

// Or emits dst = s0 | s1.
func (b *Builder) Or(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpOr, t, s0, s1) }

// Xor emits dst = s0 ^ s1.
func (b *Builder) Xor(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpXor, t, s0, s1) }

// Shl emits dst = s0 << s1.
func (b *Builder) Shl(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpShl, t, s0, s1) }

// Shr emits dst = s0 >> s1.
func (b *Builder) Shr(t isa.DataType, s0, s1 Val) Val { return b.Binary(hsail.OpShr, t, s0, s1) }

// Mad emits dst = s0*s1 + s2.
func (b *Builder) Mad(t isa.DataType, s0, s1, s2 Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpMad, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op, s1.Op, s2.Op}, NSrc: 3})
	return dst
}

// Fma emits dst = fma(s0, s1, s2).
func (b *Builder) Fma(t isa.DataType, s0, s1, s2 Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpFma, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op, s1.Op, s2.Op}, NSrc: 3})
	return dst
}

// Sqrt emits dst = sqrt(s0).
func (b *Builder) Sqrt(t isa.DataType, s0 Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpSqrt, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op}, NSrc: 1})
	return dst
}

// Rsqrt emits dst = 1/sqrt(s0).
func (b *Builder) Rsqrt(t isa.DataType, s0 Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpRsqrt, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op}, NSrc: 1})
	return dst
}

// Abs emits dst = |s0|.
func (b *Builder) Abs(t isa.DataType, s0 Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpAbs, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op}, NSrc: 1})
	return dst
}

// Not emits dst = ^s0.
func (b *Builder) Not(t isa.DataType, s0 Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpNot, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op}, NSrc: 1})
	return dst
}

// Neg emits dst = -s0.
func (b *Builder) Neg(t isa.DataType, s0 Val) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpNeg, Type: t, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op}, NSrc: 1})
	return dst
}

// Cmp emits a comparison producing a control register.
func (b *Builder) Cmp(op isa.CmpOp, t isa.DataType, s0, s1 Val) Val {
	dst := b.CRegVal()
	b.emit(hsail.Inst{Op: hsail.OpCmp, SrcType: t, Cmp: op, Dst: dst.Op, Srcs: [3]hsail.Operand{s0.Op, s1.Op}, NSrc: 2})
	return dst
}

// Cmov emits dst = c ? s0 : s1 (predication without branching).
func (b *Builder) Cmov(t isa.DataType, c, s0, s1 Val) Val {
	dst := b.Reg(t)
	b.CmovTo(dst, c, s0, s1)
	return dst
}

// CmovTo emits dst = c ? s0 : s1 into an existing register.
func (b *Builder) CmovTo(dst, c, s0, s1 Val) {
	b.emit(hsail.Inst{Op: hsail.OpCmov, Type: dst.T, Dst: dst.Op,
		Srcs: [3]hsail.Operand{c.Op, s0.Op, s1.Op}, NSrc: 3})
}

// LoadArg emits ld_kernarg dst, [%argN]. The address is an abstract symbol:
// under HSAIL no register ever holds the kernarg base (paper Table 2).
func (b *Builder) LoadArg(arg int) Val {
	if arg < 0 || arg >= len(b.k.Args) {
		b.fail("LoadArg: bad argument index %d", arg)
		return Val{}
	}
	t := isa.TypeU64
	if b.k.Args[arg].Size == 4 {
		t = isa.TypeU32
	}
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpLd, Type: t, Seg: hsail.SegKernarg, Dst: dst.Op,
		Addr: hsail.MemAddr{Base: hsail.ArgSym(arg)}})
	return dst
}

// Load emits ld_<seg> dst, [base+off].
func (b *Builder) Load(seg hsail.Segment, t isa.DataType, base Val, off int32) Val {
	dst := b.Reg(t)
	b.LoadTo(dst, seg, base, off)
	return dst
}

// LoadTo emits ld_<seg> into an existing register.
func (b *Builder) LoadTo(dst Val, seg hsail.Segment, base Val, off int32) {
	b.emit(hsail.Inst{Op: hsail.OpLd, Type: dst.T, Seg: seg, Dst: dst.Op,
		Addr: hsail.MemAddr{Base: base.Op, Offset: off}})
}

// Store emits st_<seg> src, [base+off].
func (b *Builder) Store(seg hsail.Segment, src, base Val, off int32) {
	b.emit(hsail.Inst{Op: hsail.OpSt, Type: src.T, Seg: seg,
		Srcs: [3]hsail.Operand{src.Op}, NSrc: 1,
		Addr: hsail.MemAddr{Base: base.Op, Offset: off}})
}

// AtomicAdd emits dst = atomic fetch-add on [base+off].
func (b *Builder) AtomicAdd(seg hsail.Segment, t isa.DataType, src, base Val, off int32) Val {
	dst := b.Reg(t)
	b.emit(hsail.Inst{Op: hsail.OpAtomicAdd, Type: t, Seg: seg, Dst: dst.Op,
		Srcs: [3]hsail.Operand{src.Op}, NSrc: 1,
		Addr: hsail.MemAddr{Base: base.Op, Offset: off}})
	return dst
}

// Lda emits dst = address of [base+off] within seg (materializes a flat
// address from a segment-relative one).
func (b *Builder) Lda(seg hsail.Segment, base Val, off int32) Val {
	dst := b.Reg(isa.TypeU64)
	b.emit(hsail.Inst{Op: hsail.OpLda, Type: isa.TypeU64, Seg: seg, Dst: dst.Op,
		Addr: hsail.MemAddr{Base: base.Op, Offset: off}})
	return dst
}

// NoBase is the zero Val, used for memory operations with no register base.
var NoBase = Val{}

// Br emits an unconditional branch to blk.
func (b *Builder) Br(blk BlockRef) {
	b.emit(hsail.Inst{Op: hsail.OpBr, Target: int32(blk.id)})
}

// CBr emits a conditional branch to blk if control register c is set;
// execution falls through to the next block otherwise.
func (b *Builder) CBr(c Val, blk BlockRef) {
	if c.Op.Kind != hsail.OperCReg {
		b.fail("CBr: condition is not a control register")
		return
	}
	b.emit(hsail.Inst{Op: hsail.OpCBr, Srcs: [3]hsail.Operand{c.Op}, NSrc: 1, Target: int32(blk.id)})
}

// Ret emits the end-of-kernel instruction.
func (b *Builder) Ret() { b.emit(hsail.Inst{Op: hsail.OpRet}) }

// Barrier emits a workgroup barrier.
func (b *Builder) Barrier() { b.emit(hsail.Inst{Op: hsail.OpBarrier}) }

// Geometry queries.

// WorkItemAbsID emits dst = absolute (global) work-item ID in dim.
func (b *Builder) WorkItemAbsID(dim isa.Dim) Val { return b.geometry(hsail.OpWorkItemAbsId, dim) }

// WorkItemID emits dst = work-item ID within the workgroup in dim.
func (b *Builder) WorkItemID(dim isa.Dim) Val { return b.geometry(hsail.OpWorkItemId, dim) }

// WorkGroupID emits dst = workgroup ID in dim.
func (b *Builder) WorkGroupID(dim isa.Dim) Val { return b.geometry(hsail.OpWorkGroupId, dim) }

// WorkGroupSize emits dst = workgroup size in dim.
func (b *Builder) WorkGroupSize(dim isa.Dim) Val { return b.geometry(hsail.OpWorkGroupSize, dim) }

// GridSize emits dst = grid size in dim.
func (b *Builder) GridSize(dim isa.Dim) Val { return b.geometry(hsail.OpGridSize, dim) }

func (b *Builder) geometry(op hsail.Op, dim isa.Dim) Val {
	dst := b.Reg(isa.TypeU32)
	b.emit(hsail.Inst{Op: op, Type: isa.TypeU32, Dim: dim, Dst: dst.Op})
	return dst
}

// Finish validates the constructed kernel, register-allocates it onto a
// compact register file (the HLC's job — HSAIL ships register-allocated),
// and returns it.
func (b *Builder) Finish() (*hsail.Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.k.Validate(); err != nil {
		return nil, err
	}
	if _, err := AnalyzeCFG(b.k); err != nil {
		return nil, err
	}
	if err := AllocateRegisters(b.k); err != nil {
		return nil, err
	}
	return b.k, nil
}

// FinishRaw validates and returns the kernel WITHOUT register allocation,
// leaving the builder's SSA-like virtual registers in place. It exists for
// testing (the unallocated kernel is the semantic reference the allocator is
// checked against) and for the register-allocation ablation study.
func (b *Builder) FinishRaw() (*hsail.Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.k.Validate(); err != nil {
		return nil, err
	}
	if _, err := AnalyzeCFG(b.k); err != nil {
		return nil, err
	}
	return b.k, nil
}

// MustFinish is Finish for statically known-good kernels (workload suite).
func (b *Builder) MustFinish() *hsail.Kernel {
	k, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return k
}
