package kernel

import (
	"fmt"

	"ilsim/internal/hsail"
)

// CFG is the analyzed control-flow graph of a kernel.
//
// Two consumers need it: the HSAIL simulator uses IPDom as the reconvergence
// point of each divergent branch (the immediate-post-dominator reconvergence
// stack of paper §III.C.1), and the finalizer uses the structural
// classification (Shapes) to linearize control flow with exec-mask
// predication instead of a reconvergence stack.
type CFG struct {
	Kernel *hsail.Kernel
	// Succs[b] lists successor block IDs. For conditional branches the
	// fall-through successor is listed first, then the taken target.
	Succs [][]int
	// Preds[b] lists predecessor block IDs.
	Preds [][]int
	// IDom[b] is the immediate dominator of block b (-1 for the entry).
	IDom []int
	// IPDom[b] is the immediate post-dominator of block b (-1 when the
	// block post-dominates every path to exit, i.e. exits directly).
	IPDom []int
	// BackEdge[b] is true when block b ends in a branch to itself or an
	// earlier dominator (a natural-loop latch).
	BackEdge []bool
	// Reducible reports whether every retreating edge is a back edge to a
	// dominator. The paper notes irreducible control flow "was not
	// encountered in our benchmarks"; the finalizer rejects it.
	Reducible bool
	// Shapes classifies every block that ends in a conditional branch.
	Shapes map[int]Shape
}

// ShapeKind is the structured-control-flow classification of a conditional
// branch, used by the finalizer's if-conversion.
type ShapeKind uint8

// Shape kinds.
const (
	// ShapeIfThen is `cbr c, join` guarding a then-region: lanes where c
	// is TRUE skip the region [b+1, join).
	ShapeIfThen ShapeKind = iota
	// ShapeIfThenElse is `cbr c, else` where the then-region ends in an
	// unconditional branch to the join: lanes where c is TRUE take the
	// else-region.
	ShapeIfThenElse
	// ShapeLoopLatch is a backward `cbr c, header`: lanes where c is TRUE
	// iterate again (do-while latch).
	ShapeLoopLatch
)

// String names the shape kind.
func (k ShapeKind) String() string {
	switch k {
	case ShapeIfThen:
		return "if-then"
	case ShapeIfThenElse:
		return "if-then-else"
	case ShapeLoopLatch:
		return "loop-latch"
	}
	return fmt.Sprintf("ShapeKind(%d)", uint8(k))
}

// Shape describes one structured conditional branch.
type Shape struct {
	Kind ShapeKind
	// Branch is the block whose terminator is the classified cbr.
	Branch int
	// ThenStart/ThenEnd delimit the region executed by lanes NOT taking
	// the branch (half-open block range). Empty for loop latches.
	ThenStart, ThenEnd int
	// ElseStart/ElseEnd delimit the taken-lane region for if-then-else.
	ElseStart, ElseEnd int
	// Join is the block where both paths reconverge. For loop latches it
	// is the loop exit (fall-through of the latch).
	Join int
	// Header is the loop header for loop latches.
	Header int
}

// AnalyzeCFG validates the kernel's control flow and computes the analyses.
func AnalyzeCFG(k *hsail.Kernel) (*CFG, error) {
	n := len(k.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("kernel %q: empty CFG", k.Name)
	}
	g := &CFG{
		Kernel: k,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		Shapes: make(map[int]Shape),
	}
	for bi, b := range k.Blocks {
		// Control transfers may appear only as terminators.
		for ii := range b.Insts {
			op := b.Insts[ii].Op
			isXfer := op == hsail.OpBr || op == hsail.OpCBr || op == hsail.OpRet
			if isXfer && ii != len(b.Insts)-1 {
				return nil, fmt.Errorf("kernel %q: BB%d: %s not at block end", k.Name, bi, op)
			}
		}
		term := terminator(b)
		switch {
		case term != nil && term.Op == hsail.OpRet:
			// no successors
		case term != nil && term.Op == hsail.OpBr:
			g.Succs[bi] = []int{int(term.Target)}
		case term != nil && term.Op == hsail.OpCBr:
			if bi+1 >= n {
				return nil, fmt.Errorf("kernel %q: BB%d: conditional branch with no fall-through block", k.Name, bi)
			}
			g.Succs[bi] = []int{bi + 1, int(term.Target)}
		default:
			if bi+1 >= n {
				return nil, fmt.Errorf("kernel %q: BB%d: final block does not end in ret", k.Name, bi)
			}
			g.Succs[bi] = []int{bi + 1}
		}
		for _, s := range g.Succs[bi] {
			g.Preds[s] = append(g.Preds[s], bi)
		}
	}
	if err := g.checkReachable(); err != nil {
		return nil, err
	}
	g.computeDominators()
	g.computePostDominators()
	g.classifyEdges()
	if err := g.classifyShapes(); err != nil {
		return nil, err
	}
	return g, nil
}

func terminator(b *hsail.Block) *hsail.Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	return &b.Insts[len(b.Insts)-1]
}

func (g *CFG) checkReachable() error {
	seen := make([]bool, len(g.Succs))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for bi, ok := range seen {
		if !ok {
			return fmt.Errorf("kernel %q: BB%d is unreachable", g.Kernel.Name, bi)
		}
	}
	return nil
}

// postOrder returns a post-order numbering of the forward CFG from entry.
func (g *CFG) postOrder() []int {
	n := len(g.Succs)
	order := make([]int, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct{ b, i int }
	stack := []frame{{0, 0}}
	state[0] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(g.Succs[f.b]) {
			s := g.Succs[f.b][f.i]
			f.i++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.b] = 2
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	return order
}

// computeDominators runs the Cooper-Harvey-Kennedy iterative algorithm.
func (g *CFG) computeDominators() {
	n := len(g.Succs)
	po := g.postOrder()
	poNum := make([]int, n)
	for i, b := range po {
		poNum[b] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for poNum[a] < poNum[b] {
				a = idom[a]
			}
			for poNum[b] < poNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for i := len(po) - 1; i >= 0; i-- { // reverse post-order
			b := po[i]
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[0] = -1
	g.IDom = idom
}

// computePostDominators runs the same algorithm on the reverse CFG with a
// virtual exit joining every ret block.
func (g *CFG) computePostDominators() {
	n := len(g.Succs)
	exit := n // virtual exit node
	succs := make([][]int, n+1)
	preds := make([][]int, n+1)
	for b := 0; b < n; b++ {
		if len(g.Succs[b]) == 0 {
			succs[b] = []int{exit}
			preds[exit] = append(preds[exit], b)
		} else {
			succs[b] = g.Succs[b]
		}
		for _, s := range g.Succs[b] {
			preds[s] = append(preds[s], b)
		}
	}
	// Post-order of the REVERSE graph starting from exit.
	order := make([]int, 0, n+1)
	state := make([]uint8, n+1)
	type frame struct{ b, i int }
	stack := []frame{{exit, 0}}
	state[exit] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(preds[f.b]) {
			s := preds[f.b][f.i]
			f.i++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.b] = 2
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	poNum := make([]int, n+1)
	for i := range poNum {
		poNum[i] = -1
	}
	for i, b := range order {
		poNum[b] = i
	}
	ipdom := make([]int, n+1)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[exit] = exit
	intersect := func(a, b int) int {
		for a != b {
			for poNum[a] < poNum[b] {
				a = ipdom[a]
			}
			for poNum[b] < poNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == exit {
				continue
			}
			newIdom := -1
			for _, s := range succs[b] {
				if ipdom[s] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != -1 && ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	g.IPDom = make([]int, n)
	for b := 0; b < n; b++ {
		if ipdom[b] == exit || ipdom[b] == -1 {
			g.IPDom[b] = -1
		} else {
			g.IPDom[b] = ipdom[b]
		}
	}
}

// dominates reports whether a dominates b in the forward CFG.
func (g *CFG) dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = g.IDom[b]
	}
	return false
}

// classifyEdges marks back edges and determines reducibility.
func (g *CFG) classifyEdges() {
	n := len(g.Succs)
	g.BackEdge = make([]bool, n)
	g.Reducible = true
	for b := 0; b < n; b++ {
		for _, s := range g.Succs[b] {
			if s <= b { // retreating in layout order
				if g.dominates(s, b) {
					g.BackEdge[b] = true
				} else {
					g.Reducible = false
				}
			}
		}
	}
}

// classifyShapes pattern-matches each conditional branch against the
// structured shapes the finalizer can if-convert. The builder's structured
// helpers emit exactly these shapes; hand-written CFGs must match them too.
func (g *CFG) classifyShapes() error {
	for bi, b := range g.Kernel.Blocks {
		term := terminator(b)
		if term == nil || term.Op != hsail.OpCBr {
			continue
		}
		t := int(term.Target)
		if t <= bi {
			// Backward conditional branch: do-while loop latch.
			if !g.dominates(t, bi) {
				return fmt.Errorf("kernel %q: BB%d: irreducible backward branch to BB%d", g.Kernel.Name, bi, t)
			}
			g.Shapes[bi] = Shape{
				Kind: ShapeLoopLatch, Branch: bi, Header: t, Join: bi + 1,
			}
			continue
		}
		// Forward conditional branch: if-then or if-then-else. The region
		// skipped by taken lanes is [bi+1, t).
		if t == bi+1 {
			return fmt.Errorf("kernel %q: BB%d: conditional branch to fall-through", g.Kernel.Name, bi)
		}
		lastThen := g.Kernel.Blocks[t-1]
		thenTerm := terminator(lastThen)
		if thenTerm != nil && thenTerm.Op == hsail.OpBr && int(thenTerm.Target) > t {
			// then-region ends by jumping over an else-region.
			join := int(thenTerm.Target)
			g.Shapes[bi] = Shape{
				Kind: ShapeIfThenElse, Branch: bi,
				ThenStart: bi + 1, ThenEnd: t,
				ElseStart: t, ElseEnd: join,
				Join: join,
			}
			continue
		}
		g.Shapes[bi] = Shape{
			Kind: ShapeIfThen, Branch: bi,
			ThenStart: bi + 1, ThenEnd: t,
			Join: t,
		}
	}
	return nil
}
