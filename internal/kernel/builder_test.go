package kernel

import (
	"testing"

	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

func TestBuilderErrorPaths(t *testing.T) {
	// Bad argument size.
	b := NewBuilder("bad_arg")
	b.Arg("x", 3)
	b.Ret()
	if _, err := b.Finish(); err == nil {
		t.Error("3-byte argument accepted")
	}
	// CBr on a non-control register.
	b2 := NewBuilder("bad_cbr")
	v := b2.Mov(isa.TypeU32, b2.Int(isa.TypeU32, 1))
	b2.CBr(v, BlockRef{})
	b2.Ret()
	if _, err := b2.Finish(); err == nil {
		t.Error("cbr on a data register accepted")
	}
	// LoadArg out of range.
	b3 := NewBuilder("bad_loadarg")
	b3.LoadArg(2)
	b3.Ret()
	if _, err := b3.Finish(); err == nil {
		t.Error("out-of-range LoadArg accepted")
	}
	// MovTo into a non-register.
	b4 := NewBuilder("bad_movto")
	b4.MovTo(b4.Int(isa.TypeU32, 1), b4.Int(isa.TypeU32, 2))
	b4.Ret()
	if _, err := b4.Finish(); err == nil {
		t.Error("MovTo into an immediate accepted")
	}
}

func TestBuilderArgLayout(t *testing.T) {
	b := NewBuilder("args")
	a0 := b.ArgU32("n") // offset 0, size 4
	a1 := b.ArgPtr("p") // aligns to 8
	a2 := b.ArgU32("m") // offset 16
	a3 := b.ArgPtr("q") // aligns to 24
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := []int{0, 8, 16, 24}
	for i, want := range wantOffsets {
		if k.Args[i].Offset != want {
			t.Errorf("arg %d offset %d, want %d", i, k.Args[i].Offset, want)
		}
	}
	if k.KernargSize != 32 {
		t.Errorf("kernarg size %d, want 32", k.KernargSize)
	}
	_, _, _, _ = a0, a1, a2, a3
}

func TestBuilderEmitsStructuredShapes(t *testing.T) {
	// Every structured helper must produce a shape-classifiable CFG even
	// when deeply nested.
	b := NewBuilder("nested_deep")
	x := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.IfCmp(isa.CmpLt, isa.TypeU32, x, b.Int(isa.TypeU32, 5), func() {
		b.DoWhile(func() {
			b.IfCmp(isa.CmpEq, isa.TypeU32, x, b.Int(isa.TypeU32, 2), func() {
				b.MovTo(x, b.Int(isa.TypeU32, 7))
			}, func() {
				b.BinaryTo(hsail.OpAdd, x, x, b.Int(isa.TypeU32, 1))
			})
		}, isa.CmpLt, isa.TypeU32, x, b.Int(isa.TypeU32, 5))
	}, func() {
		b.MovTo(x, b.Int(isa.TypeU32, 9))
	})
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[ShapeKind]int{}
	for _, sh := range cfg.Shapes {
		kinds[sh.Kind]++
	}
	if kinds[ShapeIfThenElse] != 2 || kinds[ShapeLoopLatch] != 1 {
		t.Fatalf("shape census %v, want 2 if-then-else + 1 latch", kinds)
	}
	if !cfg.Reducible {
		t.Fatal("nested structure classified irreducible")
	}
}

func TestForHelper(t *testing.T) {
	b := NewBuilder("for_loop")
	sum := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.For(isa.TypeU32, b.Int(isa.TypeU32, 0), b.Int(isa.TypeU32, 10), b.Int(isa.TypeU32, 1), func(i Val) {
		b.BinaryTo(hsail.OpAdd, sum, sum, i)
	})
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	latches := 0
	for _, sh := range cfg.Shapes {
		if sh.Kind == ShapeLoopLatch {
			latches++
		}
	}
	if latches != 1 {
		t.Fatalf("For emitted %d latches, want 1 (rotation)", latches)
	}
}

func TestRegisterLimitEnforced(t *testing.T) {
	b := NewBuilder("too_many_regs")
	vals := []Val{b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 1))}
	// 1100 64-bit values = 2200 slots, exceeding the 2048 HSAIL limit,
	// all simultaneously live at the fold.
	for i := 0; i < 1100; i++ {
		vals = append(vals, b.Cvt(isa.TypeU64, vals[0]))
	}
	acc := b.Mov(isa.TypeU64, b.Int(isa.TypeU64, 0))
	for _, v := range vals[1:] {
		acc = b.Add(isa.TypeU64, acc, v)
	}
	b.Ret()
	if _, err := b.Finish(); err == nil {
		t.Fatal("register demand beyond the 2048-slot HSAIL limit accepted")
	}
}
