package kernel

import (
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// Uniformity is the scalar-homing analysis shared by the finalizer (which
// uses it to place values in the scalar register file) and the HSAIL
// register allocator (which must not pool scalar-homed and vector-homed
// values into one architectural register).
//
// A slot is "uniform" here when its value is wavefront-invariant AND every
// definition is executable on the scalar unit — the GCN3 scalar pipeline has
// no floating-point datapath, so uniform float values still live in the VRF
// (paper §V.D: "the scalar unit in GCN3 is not generally used for
// computation").
type Uniformity struct {
	Slots  []bool
	CRegs  []bool
	Blocks []bool
}

// ScalarizableOp reports whether the operation can execute on the scalar
// unit for the given data/source types.
func ScalarizableOp(op hsail.Op, t, st isa.DataType) bool {
	intType := func(t isa.DataType) bool {
		switch t {
		case isa.TypeB32, isa.TypeU32, isa.TypeS32, isa.TypeB64, isa.TypeU64, isa.TypeS64:
			return true
		}
		return false
	}
	switch op {
	case hsail.OpMov:
		return intType(t)
	case hsail.OpCvt:
		return intType(t) && intType(st)
	case hsail.OpAdd, hsail.OpSub:
		return intType(t)
	case hsail.OpMul:
		return t == isa.TypeU32 || t == isa.TypeS32 || t == isa.TypeB32
	case hsail.OpAnd, hsail.OpOr, hsail.OpXor, hsail.OpNot:
		return intType(t)
	case hsail.OpShl, hsail.OpShr:
		return t == isa.TypeB32 || t == isa.TypeU32 || t == isa.TypeS32
	case hsail.OpLd:
		return true // only kernarg loads reach this (checked by caller)
	case hsail.OpWorkGroupId, hsail.OpWorkGroupSize, hsail.OpGridSize:
		return true
	}
	return false
}

// AnalyzeUniformity runs the optimistic demotion fixpoint described in the
// finalizer package documentation.
func AnalyzeUniformity(k *hsail.Kernel, cfg *CFG) *Uniformity {
	return AnalyzeUniformityOpt(k, cfg, true)
}

// AnalyzeUniformityOpt additionally controls whether kernarg loads may
// scalarize (they may not when the finalizer lowers them through flat loads,
// the paper's Table 2 path).
func AnalyzeUniformityOpt(k *hsail.Kernel, cfg *CFG, scalarKernarg bool) *Uniformity {
	u := &Uniformity{
		Slots:  make([]bool, k.NumRegSlots),
		CRegs:  make([]bool, k.NumCRegs),
		Blocks: make([]bool, len(k.Blocks)),
	}
	for i := range u.Slots {
		u.Slots[i] = true
	}
	for i := range u.CRegs {
		u.CRegs[i] = true
	}
	for i := range u.Blocks {
		u.Blocks[i] = true
	}

	srcsUniform := func(in *hsail.Inst) bool {
		for _, s := range in.SrcSlice() {
			switch s.Kind {
			case hsail.OperReg:
				if !u.Slots[s.Reg] {
					return false
				}
			case hsail.OperCReg:
				if !u.CRegs[s.Reg] {
					return false
				}
			}
		}
		if in.Op.IsMemory() || in.Op == hsail.OpLda {
			if in.Addr.Base.Kind == hsail.OperReg && !u.Slots[in.Addr.Base.Reg] {
				return false
			}
		}
		return true
	}
	defUniform := func(in *hsail.Inst, block int) bool {
		if !u.Blocks[block] {
			return false
		}
		switch in.Op {
		case hsail.OpWorkItemAbsId, hsail.OpWorkItemId:
			return false
		case hsail.OpLd:
			if in.Seg != hsail.SegKernarg || !scalarKernarg {
				return false
			}
		case hsail.OpAtomicAdd, hsail.OpLda:
			return false
		}
		if !ScalarizableOp(in.Op, in.Type, in.SrcType) {
			return false
		}
		return srcsUniform(in)
	}

	for changed := true; changed; {
		changed = false
		for _, sh := range cfg.Shapes {
			term := &k.Blocks[sh.Branch].Insts[len(k.Blocks[sh.Branch].Insts)-1]
			cidx := int(term.Srcs[0].Reg)
			if u.CRegs[cidx] && u.Blocks[sh.Branch] {
				continue
			}
			demote := func(from, to int) {
				for b := from; b < to; b++ {
					if u.Blocks[b] {
						u.Blocks[b] = false
						changed = true
					}
				}
			}
			switch sh.Kind {
			case ShapeIfThen:
				demote(sh.ThenStart, sh.ThenEnd)
			case ShapeIfThenElse:
				demote(sh.ThenStart, sh.ThenEnd)
				demote(sh.ElseStart, sh.ElseEnd)
			case ShapeLoopLatch:
				demote(sh.Header, sh.Branch+1)
			}
		}
		for bi, b := range k.Blocks {
			for ii := range b.Insts {
				in := &b.Insts[ii]
				if in.Dst.Kind == hsail.OperReg {
					if !defUniform(in, bi) && u.Slots[in.Dst.Reg] {
						u.Slots[in.Dst.Reg] = false
						changed = true
					}
				}
				if in.Op == hsail.OpCmp {
					if !(u.Blocks[bi] && srcsUniform(in)) && u.CRegs[in.Dst.Reg] {
						u.CRegs[in.Dst.Reg] = false
						changed = true
					}
				}
			}
		}
	}
	return u
}
