package kernel

import (
	"testing"

	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// TestAllocatorCompactsRegisters: an SSA-style straight-line kernel with many
// short-lived values must compact dramatically.
func TestAllocatorCompactsRegisters(t *testing.T) {
	b := NewBuilder("compact")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	v := b.Mov(isa.TypeU32, gid)
	for i := 0; i < 50; i++ {
		// Each value is dead as soon as the next is computed.
		v = b.Add(isa.TypeU32, v, b.Int(isa.TypeU32, 1))
	}
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, v, addr, 0)
	b.Ret()
	raw, err := b.FinishRaw()
	if err != nil {
		t.Fatal(err)
	}
	rawSlots := raw.NumRegSlots
	if err := AllocateRegisters(raw); err != nil {
		t.Fatal(err)
	}
	if raw.NumRegSlots >= rawSlots/2 {
		t.Errorf("allocation barely compacted: %d -> %d slots", rawSlots, raw.NumRegSlots)
	}
	if err := raw.Validate(); err != nil {
		t.Fatalf("allocated kernel invalid: %v", err)
	}
}

// TestAllocatorKeepsLoopCarriedValuesApart: a value live across a loop must
// not share a register with a per-iteration temporary inside the loop.
func TestAllocatorKeepsLoopCarriedValuesApart(t *testing.T) {
	b := NewBuilder("loopcarried")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	carried := b.Mul(isa.TypeU32, gid, b.Int(isa.TypeU32, 3)) // live across the loop
	i := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	acc := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.DoWhile(func() {
		tmp := b.Add(isa.TypeU32, i, b.Int(isa.TypeU32, 7)) // per-iteration temp
		b.BinaryTo(hsail.OpAdd, acc, acc, tmp)
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(isa.TypeU32, 1))
	}, isa.CmpLt, isa.TypeU32, i, b.Int(isa.TypeU32, 4))
	sum := b.Add(isa.TypeU32, acc, carried) // carried used AFTER the loop
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, sum, addr, 0)
	b.Ret()
	k, err := b.FinishRaw()
	if err != nil {
		t.Fatal(err)
	}
	// Identify the virtual slots before allocation.
	carriedSlot := carried.Op.Reg
	if err := AllocateRegisters(k); err != nil {
		t.Fatal(err)
	}
	// After allocation, find where `carried`'s defining instruction (the
	// only mul) writes, and ensure no in-loop definition writes there.
	var carriedPhys uint16
	found := false
	for _, blk := range k.Blocks {
		for ii := range blk.Insts {
			in := &blk.Insts[ii]
			if in.Op == hsail.OpMul {
				carriedPhys = in.Dst.Reg
				found = true
			}
		}
	}
	if !found {
		t.Fatal("mul not found")
	}
	_ = carriedSlot
	// The loop body is every block between the header and the latch.
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	for bi, sh := range cfg.Shapes {
		if sh.Kind != ShapeLoopLatch {
			continue
		}
		for blk := sh.Header; blk <= bi; blk++ {
			for ii := range k.Blocks[blk].Insts {
				in := &k.Blocks[blk].Insts[ii]
				if in.Dst.Kind == hsail.OperReg && in.Dst.Reg == carriedPhys {
					t.Fatalf("loop body instruction %s overwrites the loop-carried register $s%d",
						in.String(), carriedPhys)
				}
			}
		}
	}
}

// TestAllocatorPoolsStayPure: uniform and divergent values never share a
// physical slot (the finalizer's slot-granular analysis depends on it).
func TestAllocatorPoolsStayPure(t *testing.T) {
	b := NewBuilder("pools")
	nArg := b.ArgU32("n")
	outArg := b.ArgPtr("out")
	n := b.LoadArg(nArg) // uniform
	gid := b.WorkItemAbsID(isa.DimX)
	// Alternate dead uniform and divergent values.
	for i := 0; i < 10; i++ {
		_ = b.Add(isa.TypeU32, n, b.Int(isa.TypeU32, int64(i)))   // uniform, dead
		_ = b.Add(isa.TypeU32, gid, b.Int(isa.TypeU32, int64(i))) // divergent, dead
	}
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, gid, addr, 0)
	b.Ret()
	k := b.MustFinish() // allocated
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	uni := AnalyzeUniformity(k, cfg)
	// Re-derive per-slot uniformity from definitions; a slot whose defs
	// disagree would have been demoted, shrinking scalarization. Verify
	// at least one uniform slot survived pooling.
	hasUniform := false
	for _, u := range uni.Slots {
		if u {
			hasUniform = true
		}
	}
	if !hasUniform {
		t.Fatal("pooling destroyed all uniformity")
	}
}

// TestAllocatorWidthSeparation: 32- and 64-bit values may not share slots.
func TestAllocatorWidthSeparation(t *testing.T) {
	b := NewBuilder("widths")
	outArg := b.ArgPtr("out")
	gid := b.WorkItemAbsID(isa.DimX)
	for i := 0; i < 6; i++ {
		_ = b.Add(isa.TypeU32, gid, b.Int(isa.TypeU32, 1))
		_ = b.Cvt(isa.TypeU64, gid)
	}
	addr := b.Add(isa.TypeU64, b.LoadArg(outArg),
		b.Shl(isa.TypeU64, b.Cvt(isa.TypeU64, gid), b.Int(isa.TypeU64, 2)))
	b.Store(hsail.SegGlobal, gid, addr, 0)
	b.Ret()
	k := b.MustFinish()
	// Validation-level check: every operand width observed per slot must
	// be consistent (this would fail in Validate or downstream if mixed).
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeCFG(k); err != nil {
		t.Fatal(err)
	}
}
