package kernel

import (
	"fmt"
	"sort"

	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// AllocateRegisters rewrites a (builder-produced, SSA-like) kernel onto a
// compact architectural register file, the way the high-level compiler's
// register allocator produces the HSAIL the paper studies — "HSAIL (which is
// register-allocated) allows up to 2,048 32-bit architectural vector
// registers" (§V.B). Compacting matters for fidelity: reuse of hot
// architectural registers is what gives IL execution its short register
// reuse distances (Figure 7) and dense VRF bank contention (Figure 6).
//
// The allocator is a linear scan over live intervals in layout order, with
// intervals extended across loop bodies for values that live across a back
// edge. Values are pooled by (scalar-homed, width) so the finalizer's
// slot-granular uniformity analysis still sees pure slots.
func AllocateRegisters(k *hsail.Kernel) error {
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		return err
	}
	uni := AnalyzeUniformity(k, cfg)

	// Flatten instruction positions and record block extents.
	blockStart := make([]int, len(k.Blocks))
	blockEnd := make([]int, len(k.Blocks))
	pos := 0
	for bi, b := range k.Blocks {
		blockStart[bi] = pos
		pos += len(b.Insts)
		blockEnd[bi] = pos - 1
	}
	total := pos

	// Discover value units (a unit is one virtual value: 1 or 2 slots).
	type unit struct {
		start, width int
		lo, hi       int
		firstIsDef   bool
		uniform      bool
		phys         int
	}
	unitOf := map[int]*unit{} // start slot → unit
	var units []*unit
	touch := func(slot, width, p int, isDef bool) error {
		u, ok := unitOf[slot]
		if !ok {
			u = &unit{start: slot, width: width, lo: p, hi: p, firstIsDef: isDef,
				uniform: uni.Slots[slot]}
			unitOf[slot] = u
			units = append(units, u)
			return nil
		}
		if u.width != width {
			return fmt.Errorf("kernel: register slot %d used with widths %d and %d", slot, u.width, width)
		}
		if p < u.lo {
			u.lo = p
			u.firstIsDef = isDef
		}
		if p > u.hi {
			u.hi = p
		}
		return nil
	}
	forEachRef := func(fn func(slot, width, p int, isDef bool) error) error {
		p := 0
		for _, b := range k.Blocks {
			for ii := range b.Insts {
				in := &b.Insts[ii]
				srcT := in.Type
				if in.SrcType != isa.TypeNone {
					srcT = in.SrcType
				}
				for i, s := range in.SrcSlice() {
					if s.Kind != hsail.OperReg {
						continue
					}
					t := srcT
					if in.Op == hsail.OpCmov && i == 0 {
						continue // control register
					}
					if err := fn(int(s.Reg), t.Regs(), p, false); err != nil {
						return err
					}
				}
				if (in.Op.IsMemory() || in.Op == hsail.OpLda) && in.Addr.Base.Kind == hsail.OperReg {
					if err := fn(int(in.Addr.Base.Reg), 2, p, false); err != nil {
						return err
					}
				}
				if in.Dst.Kind == hsail.OperReg {
					dt := in.Type
					if in.Op == hsail.OpLda {
						dt = isa.TypeU64
					}
					if err := fn(int(in.Dst.Reg), dt.Regs(), p, true); err != nil {
						return err
					}
				}
				p++
			}
		}
		return nil
	}
	if err := forEachRef(touch); err != nil {
		return err
	}

	// Loop regions in flattened positions.
	type region struct{ lo, hi int }
	var loops []region
	for _, sh := range cfg.Shapes {
		if sh.Kind == ShapeLoopLatch {
			loops = append(loops, region{blockStart[sh.Header], blockEnd[sh.Branch]})
		}
	}
	// Extend intervals across loops for values live around a back edge:
	// only a value wholly inside the loop whose first reference is its
	// definition is a per-iteration temporary; everything else that
	// touches the loop must survive the whole loop body.
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			for _, L := range loops {
				if u.hi < L.lo || u.lo > L.hi {
					continue
				}
				inside := u.lo >= L.lo && u.hi <= L.hi
				if inside && u.firstIsDef {
					continue
				}
				if u.lo > L.lo {
					u.lo = L.lo
					changed = true
				}
				if u.hi < L.hi {
					u.hi = L.hi
					changed = true
				}
			}
		}
	}

	// Linear scan per (uniform, width) pool.
	sort.Slice(units, func(i, j int) bool {
		if units[i].lo != units[j].lo {
			return units[i].lo < units[j].lo
		}
		return units[i].start < units[j].start
	})
	type poolKey struct {
		uniform bool
		width   int
	}
	free := map[poolKey][]int{}
	type activeRec struct {
		hi   int
		phys int
		key  poolKey
	}
	var active []activeRec
	next := 0
	for _, u := range units {
		// Expire finished intervals.
		keep := active[:0]
		for _, a := range active {
			if a.hi < u.lo {
				free[a.key] = append(free[a.key], a.phys)
			} else {
				keep = append(keep, a)
			}
		}
		active = keep
		key := poolKey{u.uniform, u.width}
		if fl := free[key]; len(fl) > 0 {
			u.phys = fl[len(fl)-1]
			free[key] = fl[:len(fl)-1]
		} else {
			u.phys = next
			next += u.width
		}
		active = append(active, activeRec{hi: u.hi, phys: u.phys, key: key})
	}
	if next > isa.MaxHSAILRegs {
		return fmt.Errorf("kernel: register demand %d exceeds the HSAIL limit %d", next, isa.MaxHSAILRegs)
	}
	_ = total

	// Rewrite operands.
	remap := func(o *hsail.Operand) {
		u := unitOf[int(o.Reg)]
		o.Reg = uint16(u.phys)
	}
	for _, b := range k.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			for i := range in.SrcSlice() {
				if in.Srcs[i].Kind == hsail.OperReg && !(in.Op == hsail.OpCmov && i == 0) {
					remap(&in.Srcs[i])
				}
			}
			if (in.Op.IsMemory() || in.Op == hsail.OpLda) && in.Addr.Base.Kind == hsail.OperReg {
				remap(&in.Addr.Base)
			}
			if in.Dst.Kind == hsail.OperReg {
				remap(&in.Dst)
			}
		}
	}
	k.NumRegSlots = next
	return k.Validate()
}
