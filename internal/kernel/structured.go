package kernel

import (
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// Structured control-flow helpers. These emit exactly the block shapes that
// CFG.classifyShapes recognizes, mirroring how a high-level compiler emits
// structured source: if-then, if-then-else, and rotated (guarded do-while)
// loops. Hand-written CFGs may use Block/Br/CBr directly as long as they
// match the same shapes.

// negate returns the complementary comparison.
func negate(op isa.CmpOp) isa.CmpOp {
	switch op {
	case isa.CmpEq:
		return isa.CmpNe
	case isa.CmpNe:
		return isa.CmpEq
	case isa.CmpLt:
		return isa.CmpGe
	case isa.CmpGe:
		return isa.CmpLt
	case isa.CmpLe:
		return isa.CmpGt
	case isa.CmpGt:
		return isa.CmpLe
	}
	return op
}

// patchRef remembers a branch instruction for later target patching.
type patchRef struct {
	block int
	inst  int
}

func (b *Builder) lastInstRef() patchRef {
	return patchRef{block: b.cur.ID, inst: len(b.cur.Insts) - 1}
}

func (b *Builder) patchTarget(r patchRef, target BlockRef) {
	b.k.Blocks[r.block].Insts[r.inst].Target = int32(target.id)
}

// IfCmp emits `if (s0 op s1) { then() } else { els() }` using the structured
// shape the finalizer if-converts. els may be nil.
//
// The emitted HSAIL follows compiler convention: the guard compares with the
// NEGATED condition and branches over the then-region when it holds.
func (b *Builder) IfCmp(op isa.CmpOp, t isa.DataType, s0, s1 Val, then func(), els func()) {
	skip := b.Cmp(negate(op), t, s0, s1)
	b.If(skip, then, els)
}

// If emits a structured conditional from an already-computed SKIP condition:
// lanes where skipCond is true bypass then() (and run els(), if provided).
func (b *Builder) If(skipCond Val, then func(), els func()) {
	b.CBr(skipCond, BlockRef{id: -1}) // target patched below
	guard := b.lastInstRef()

	thenBlk := b.Block()
	b.StartBlock(thenBlk)
	then()

	if els == nil {
		join := b.Block()
		b.patchTarget(guard, join)
		b.StartBlock(join)
		return
	}

	b.Br(BlockRef{id: -1}) // jump over the else-region; patched below
	thenExit := b.lastInstRef()

	elseBlk := b.Block()
	b.patchTarget(guard, elseBlk)
	b.StartBlock(elseBlk)
	els()

	join := b.Block()
	b.patchTarget(thenExit, join)
	b.StartBlock(join)
}

// DoWhileCmp emits `do { body() } while (s0() op s1())`. The operand
// callbacks are evaluated at the latch each iteration so loop-carried
// registers are re-read.
func (b *Builder) DoWhileCmp(body func(), op isa.CmpOp, t isa.DataType, s0, s1 func() Val) {
	header := b.Block()
	b.StartBlock(header)
	body()
	c := b.Cmp(op, t, s0(), s1())
	b.CBr(c, header)
	join := b.Block()
	b.StartBlock(join)
}

// DoWhile emits `do { body() } while (s0 op s1)` for loop-carried register
// operands that body updates in place.
func (b *Builder) DoWhile(body func(), op isa.CmpOp, t isa.DataType, s0, s1 Val) {
	b.DoWhileCmp(body, op, t, func() Val { return s0 }, func() Val { return s1 })
}

// WhileCmp emits `while (s0 op s1) { body() }` using loop rotation — the form
// real GPU compilers emit: a guard conditional wrapping a do-while. Rotation
// keeps every backward branch a do-while latch, the only loop shape the
// finalizer needs to predicate.
func (b *Builder) WhileCmp(op isa.CmpOp, t isa.DataType, s0, s1 Val, body func()) {
	b.IfCmp(op, t, s0, s1, func() {
		b.DoWhile(body, op, t, s0, s1)
	}, nil)
}

// For emits a canonical counted loop: `for (i = start; i < end; i += step)`,
// passing the induction register to body. i, start, end, step share type t.
func (b *Builder) For(t isa.DataType, start, end, step Val, body func(i Val)) {
	i := b.Mov(t, start)
	b.WhileCmp(isa.CmpLt, t, i, end, func() {
		body(i)
		b.BinaryTo(hsail.OpAdd, i, i, step)
	})
}
