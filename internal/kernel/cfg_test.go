package kernel

import (
	"testing"

	"ilsim/internal/hsail"
	"ilsim/internal/isa"
)

// buildDiamond constructs the Figure 3 if-else-if CFG via the structured
// helpers and returns the kernel.
func buildDiamond(t *testing.T) *hsail.Kernel {
	t.Helper()
	b := NewBuilder("diamond")
	x := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 5))
	res := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.IfCmp(isa.CmpLt, isa.TypeU32, x, b.Int(isa.TypeU32, 10), func() {
		b.MovTo(res, b.Int(isa.TypeU32, 84))
	}, func() {
		b.MovTo(res, b.Int(isa.TypeU32, 90))
	})
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCFGIfThenElseShape(t *testing.T) {
	k := buildDiamond(t)
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Reducible {
		t.Fatal("diamond classified irreducible")
	}
	var shape *Shape
	for _, sh := range cfg.Shapes {
		sh := sh
		shape = &sh
	}
	if shape == nil || shape.Kind != ShapeIfThenElse {
		t.Fatalf("shape = %+v, want if-then-else", shape)
	}
	// Reconvergence point: the branch block's immediate post-dominator is
	// the join.
	if cfg.IPDom[shape.Branch] != shape.Join {
		t.Fatalf("IPDom[%d] = %d, want join %d", shape.Branch, cfg.IPDom[shape.Branch], shape.Join)
	}
}

func TestCFGIfThenShape(t *testing.T) {
	b := NewBuilder("ifthen")
	x := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 5))
	b.IfCmp(isa.CmpLt, isa.TypeU32, x, b.Int(isa.TypeU32, 10), func() {
		b.MovTo(x, b.Int(isa.TypeU32, 1))
	}, nil)
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range cfg.Shapes {
		if sh.Kind != ShapeIfThen {
			t.Fatalf("shape %v, want if-then", sh.Kind)
		}
		if sh.Join != int(lastInstOf(k, sh.Branch).Target) {
			t.Fatalf("join %d != branch target %d", sh.Join, lastInstOf(k, sh.Branch).Target)
		}
	}
}

func lastInstOf(k *hsail.Kernel, block int) *hsail.Inst {
	b := k.Blocks[block]
	return &b.Insts[len(b.Insts)-1]
}

func TestCFGLoopShape(t *testing.T) {
	b := NewBuilder("loop")
	i := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.DoWhile(func() {
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(isa.TypeU32, 1))
	}, isa.CmpLt, isa.TypeU32, i, b.Int(isa.TypeU32, 10))
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for bi, sh := range cfg.Shapes {
		if sh.Kind == ShapeLoopLatch {
			found = true
			if !cfg.BackEdge[bi] {
				t.Error("latch not marked as back edge")
			}
			if sh.Header > bi {
				t.Error("header after latch")
			}
			if cfg.IPDom[bi] != sh.Join {
				t.Errorf("latch IPDom %d != join %d", cfg.IPDom[bi], sh.Join)
			}
		}
	}
	if !found {
		t.Fatal("no loop latch shape found")
	}
}

func TestCFGRejectsMalformed(t *testing.T) {
	// Conditional branch not at block end.
	k := &hsail.Kernel{Name: "bad", NumRegSlots: 2, NumCRegs: 1}
	k.Blocks = []*hsail.Block{
		{ID: 0, Insts: []hsail.Inst{
			{Op: hsail.OpCBr, Srcs: [3]hsail.Operand{hsail.CReg(0)}, NSrc: 1, Target: 1},
			{Op: hsail.OpNop},
		}},
		{ID: 1, Insts: []hsail.Inst{{Op: hsail.OpRet}}},
	}
	if _, err := AnalyzeCFG(k); err == nil {
		t.Fatal("mid-block branch accepted")
	}
	// Final block without ret.
	k2 := &hsail.Kernel{Name: "bad2", NumRegSlots: 1}
	k2.Blocks = []*hsail.Block{{ID: 0, Insts: []hsail.Inst{{Op: hsail.OpNop}}}}
	if _, err := AnalyzeCFG(k2); err == nil {
		t.Fatal("fall-off-the-end accepted")
	}
	// Unreachable block.
	k3 := &hsail.Kernel{Name: "bad3", NumRegSlots: 1}
	k3.Blocks = []*hsail.Block{
		{ID: 0, Insts: []hsail.Inst{{Op: hsail.OpRet}}},
		{ID: 1, Insts: []hsail.Inst{{Op: hsail.OpRet}}},
	}
	if _, err := AnalyzeCFG(k3); err == nil {
		t.Fatal("unreachable block accepted")
	}
}

func TestDominatorsOnNestedStructure(t *testing.T) {
	// while (c1) { if (c2) {...} } — nested shapes.
	b := NewBuilder("nested")
	i := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	x := b.Mov(isa.TypeU32, b.Int(isa.TypeU32, 0))
	b.WhileCmp(isa.CmpLt, isa.TypeU32, i, b.Int(isa.TypeU32, 4), func() {
		b.IfCmp(isa.CmpEq, isa.TypeU32, x, b.Int(isa.TypeU32, 0), func() {
			b.MovTo(x, b.Int(isa.TypeU32, 1))
		}, nil)
		b.BinaryTo(hsail.OpAdd, i, i, b.Int(isa.TypeU32, 1))
	})
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	// Entry dominates everything.
	for bi := range k.Blocks {
		if !cfg.dominates(0, bi) {
			t.Errorf("entry does not dominate BB%d", bi)
		}
	}
	// IDom of entry is -1; all others have a dominator.
	if cfg.IDom[0] != -1 {
		t.Error("entry has an IDom")
	}
	for bi := 1; bi < len(k.Blocks); bi++ {
		if cfg.IDom[bi] < 0 {
			t.Errorf("BB%d has no IDom", bi)
		}
	}
	kinds := map[ShapeKind]int{}
	for _, sh := range cfg.Shapes {
		kinds[sh.Kind]++
	}
	if kinds[ShapeLoopLatch] != 1 || kinds[ShapeIfThen] < 2 {
		t.Fatalf("shape census %v: want 1 latch and >=2 if-thens (guard + body)", kinds)
	}
}

func TestUniformityAnalysis(t *testing.T) {
	b := NewBuilder("uniformity")
	n := b.ArgU32("n")
	nv := b.LoadArg(n)                                 // kernarg: uniform
	gid := b.WorkItemAbsID(isa.DimX)                   // divergent
	u := b.Add(isa.TypeU32, nv, b.Int(isa.TypeU32, 4)) // uniform + const: uniform
	d := b.Add(isa.TypeU32, gid, nv)                   // mixes divergent: divergent
	fsum := b.Cvt(isa.TypeF32, nv)                     // float: never scalar-homed
	_ = fsum
	b.IfCmp(isa.CmpLt, isa.TypeU32, gid, nv, func() {
		// Defined under divergent control: divergent even though the
		// operands are uniform.
		dd := b.Add(isa.TypeU32, nv, b.Int(isa.TypeU32, 1))
		_ = dd
	}, nil)
	_, _ = u, d
	b.Ret()
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AnalyzeCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	uni := AnalyzeUniformity(k, cfg)
	// Spot-check by scanning definitions.
	for _, blk := range k.Blocks {
		for ii := range blk.Insts {
			in := &blk.Insts[ii]
			if in.Dst.Kind != hsail.OperReg {
				continue
			}
			got := uni.Slots[in.Dst.Reg]
			switch in.Op {
			case hsail.OpLd: // kernarg
				if !got {
					t.Errorf("kernarg load not uniform")
				}
			case hsail.OpWorkItemAbsId:
				if got {
					t.Errorf("work-item ID marked uniform")
				}
			case hsail.OpCvt: // float cvt
				if got {
					t.Errorf("float conversion marked scalar-homed")
				}
			}
		}
	}
	// The divergent-block definition must be demoted.
	divBlockUniform := false
	for bi, ok := range uni.Blocks {
		if !ok && len(k.Blocks[bi].Insts) > 0 {
			divBlockUniform = true
		}
	}
	if !divBlockUniform {
		t.Error("no block was demoted despite a divergent branch")
	}
}
