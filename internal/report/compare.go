package report

import (
	"fmt"

	"ilsim/internal/stats"
)

// PaperComparison renders the headline paper-vs-measured table: for every
// quantitative claim in the paper's abstract and evaluation, the value this
// reproduction measures, with the deviations discussed.
func (r *Results) PaperComparison() string {
	gm := func(metric func(*stats.Run) float64) float64 {
		return stats.Geomean(r.ratios(metric))
	}
	insts := gm(func(s *stats.Run) float64 { return float64(s.TotalInsts()) })
	reuse := gm(func(s *stats.Run) float64 { return float64(s.Reuse.Median()) })
	foot := gm(func(s *stats.Run) float64 { return float64(s.CodeFootprintBytes) })
	util := gm(func(s *stats.Run) float64 { return s.SIMDUtilization() })

	var conflictRatios, flushRatios []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		if g := p.GCN3.ConflictsPerKiloInst(); g > 0 {
			conflictRatios = append(conflictRatios, p.HSAIL.ConflictsPerKiloInst()/g)
		}
		h := float64(p.HSAIL.IBFlushes) / float64(p.HSAIL.TotalInsts())
		g := float64(p.GCN3.IBFlushes) / float64(p.GCN3.TotalInsts())
		if g > 0 {
			flushRatios = append(flushRatios, h/g)
		}
	}
	conflicts := stats.Geomean(conflictRatios)
	flushes := stats.Geomean(flushRatios)

	// Runtime extremes (Fig 12's featured pair).
	var slowHSAIL, slowGCN3 float64 = 1, 1
	var slowHSAILName, slowGCN3Name string
	for _, name := range r.Order {
		p := r.Runs[name]
		hg := float64(p.HSAIL.Cycles) / float64(p.GCN3.Cycles)
		if hg > slowHSAIL {
			slowHSAIL, slowHSAILName = hg, name
		}
		if 1/hg > slowGCN3 {
			slowGCN3, slowGCN3Name = 1/hg, name
		}
	}

	// Hardware-correlation summary.
	var hs, gs, hw []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		w := r.HW[name]
		for i := 0; i < len(w) && i < len(p.HSAIL.KernelCycles); i++ {
			hs = append(hs, float64(p.HSAIL.KernelCycles[i]))
			gs = append(gs, float64(p.GCN3.KernelCycles[i]))
			hw = append(hw, w[i])
		}
	}

	t := &table{}
	t.title("Paper vs measured — every headline claim")
	t.row("Claim (paper §)", "Paper", "Measured", "Notes")
	t.sep(4)
	t.row("Dynamic instructions, GCN3/HSAIL (abstract, Fig 5)", "≈2× (1.5-3×)", f2(insts)+"×",
		"per-workload spread in Fig 5 below")
	t.row("VRF bank conflicts, HSAIL/GCN3 (abstract, Fig 6)", "≈3×", f2(conflicts)+"×",
		"direction and first-order magnitude hold; our operand-collector model is coarser than gem5's")
	t.row("Median register reuse distance, GCN3/HSAIL (Fig 7)", "≈2×", f2(reuse)+"×", "")
	t.row("Instruction footprint, GCN3/HSAIL (Fig 8)", "≈2.4×", f2(foot)+"×",
		"our finalizer emits a higher share of 32-bit encodings than AMD's production codegen; LULESH still breaks the 16KB L1I (see Fig 8)")
	t.row("IB flushes, HSAIL/GCN3 (Fig 9)", ">2×", f2(flushes)+"×", "")
	t.row("SIMD utilization, GCN3/HSAIL (Table 6)", "≈1.0 (within a few %)", f2(util), "")
	t.row("Runtime: worst HSAIL-pessimistic workload (Fig 12)", "ArrayBW 1.6×",
		fmt.Sprintf("%s %.2f×", slowHSAILName, slowHSAIL), "which workload tops the list depends on contention details")
	t.row("Runtime: worst HSAIL-optimistic workload (Fig 12)", "LULESH 1.85× (GCN3 slower)",
		fmt.Sprintf("%s %.2f×", slowGCN3Name, slowGCN3), "driven by the L1I-thrashing + kernarg-register mechanisms the paper describes")
	if len(hw) > 0 {
		t.row("HW correlation (Table 7)", "0.972 / 0.973",
			fmt.Sprintf("%.3f / %.3f", stats.Pearson(hs, hw), stats.Pearson(gs, hw)),
			"vs the silicon oracle (see internal/hwmodel for the substitution)")
		t.row("HW absolute error, HSAIL vs GCN3 (Table 7)", "75% vs 42%",
			fmt.Sprintf("%s vs %s", pct(stats.MeanAbsError(hs, hw)), pct(stats.MeanAbsError(gs, hw))),
			"the IL adds substantial, erratic error on top of modeling error")
	}
	t.note("")
	return t.String()
}
