package report

import (
	"os"
	"strings"
	"testing"

	"ilsim/internal/core"
	"ilsim/internal/finalizer"
)

func finalizerOptionsNone() finalizer.Options { return finalizer.Options{} }

// TestReportEndToEnd runs the full collection once (with the hardware
// oracle) and checks every section renders with the expected structure and
// the headline shapes the paper claims.
func TestReportEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite collection is slow")
	}
	cfg := core.DefaultConfig()
	res, err := Collect(cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 10 {
		t.Fatalf("expected 10 workloads, got %d", len(res.Order))
	}
	md := res.Markdown(cfg)
	for _, section := range []string{
		"Paper vs measured", "Figure 1", "Figure 5", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12",
		"Table 6", "Table 7", "Ablation",
	} {
		if !strings.Contains(md, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	for _, name := range res.Order {
		if !strings.Contains(md, name) {
			t.Errorf("report missing workload %q", name)
		}
	}

	// Headline shape assertions (the paper's qualitative claims).
	for _, name := range res.Order {
		p := res.Runs[name]
		if p.GCN3.TotalInsts() <= p.HSAIL.TotalInsts() {
			t.Errorf("%s: GCN3 executed fewer instructions than HSAIL", name)
		}
		if p.HSAIL.InstsByCategory[4] != 0 { // CatBranch sanity is workload-dependent; check scalar cats instead
			_ = p
		}
		hu, gu := p.HSAIL.SIMDUtilization(), p.GCN3.SIMDUtilization()
		if hu-gu > 0.1 || gu-hu > 0.1 {
			t.Errorf("%s: SIMD utilization diverges: %.2f vs %.2f", name, hu, gu)
		}
		if p.HSAIL.CodeFootprintBytes >= p.GCN3.CodeFootprintBytes {
			t.Errorf("%s: HSAIL code footprint >= GCN3", name)
		}
	}

	// LULESH's GCN3 code must exceed the 16KB L1I while HSAIL's fits.
	lu := res.Runs["LULESH"]
	if lu.GCN3.CodeFootprintBytes <= 16<<10 {
		t.Errorf("LULESH GCN3 footprint %d does not exceed the 16KB L1I", lu.GCN3.CodeFootprintBytes)
	}
	if lu.HSAIL.CodeFootprintBytes >= 16<<10 {
		t.Errorf("LULESH HSAIL footprint %d does not fit the 16KB L1I", lu.HSAIL.CodeFootprintBytes)
	}
	// And its L1I misses must multiply under GCN3 (the paper's "10x
	// increase in L1 instruction fetch misses").
	if lu.GCN3.L1IMisses < 5*lu.HSAIL.L1IMisses {
		t.Errorf("LULESH L1I misses: GCN3 %d vs HSAIL %d — expected a ~10x increase",
			lu.GCN3.L1IMisses, lu.HSAIL.L1IMisses)
	}

	// Table 6: footprints equal except FFT and LULESH.
	for _, name := range res.Order {
		p := res.Runs[name]
		ratio := float64(p.HSAIL.DataFootprintBytes) / float64(p.GCN3.DataFootprintBytes)
		switch name {
		case "FFT", "LULESH":
			if ratio <= 1.05 {
				t.Errorf("%s: expected inflated HSAIL data footprint, ratio %.2f", name, ratio)
			}
		default:
			if ratio < 0.98 || ratio > 1.02 {
				t.Errorf("%s: data footprints should match, ratio %.2f", name, ratio)
			}
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := RunAblations(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 ablation rows, got %d", len(rows))
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if r.Cycles == 0 || r.Insts == 0 {
			t.Fatalf("%s: empty run", r.Name)
		}
	}
	// The spill configuration must show scratch traffic.
	spill := rows[len(rows)-1]
	if spill.DataFootprint <= base.DataFootprint {
		t.Error("spill ablation shows no scratch footprint growth")
	}
	if spill.Insts <= base.Insts {
		t.Error("spill ablation shows no instruction growth")
	}
	table := AblationTable(rows)
	if !strings.Contains(table, "baseline") || !strings.Contains(table, "spill") {
		t.Error("ablation table missing rows")
	}
}

// TestFig3ExactRedirectCounts pins the paper's Figure 3 walkthrough: the
// flat if-else-if costs HSAIL exactly three front-end redirects and GCN3
// exactly zero — and both compute the right answers.
func TestFig3ExactRedirectCounts(t *testing.T) {
	text, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "**HSAIL 3**") {
		t.Errorf("expected exactly 3 HSAIL redirects:\n%s", text[:300])
	}
	if !strings.Contains(text, "**GCN3 0**") {
		t.Errorf("expected exactly 0 GCN3 redirects:\n%s", text[:300])
	}
	for _, frag := range []string{"s_cbranch_execz", "cbr", "@BB4", "s_andn2_b64 exec"} {
		if !strings.Contains(text, frag) {
			t.Errorf("Fig3 rendering missing %q", frag)
		}
	}
}

// TestFig3KernelCorrectness verifies the hand-built Figure 3 kernel computes
// 84/90 correctly under both abstractions.
func TestFig3KernelCorrectness(t *testing.T) {
	ks, err := core.PrepareKernel(fig3Kernel(), finalizerOptionsNone())
	if err != nil {
		t.Fatal(err)
	}
	for _, abs := range []core.Abstraction{core.AbsHSAIL, core.AbsGCN3} {
		m := core.NewMachine(abs, nil)
		in := m.Ctx.AllocBuffer(4 * 64)
		out := m.Ctx.AllocBuffer(4 * 64)
		for i := 0; i < 64; i++ {
			m.Ctx.Mem.WriteU32(in+uint64(4*i), uint32(i%30))
		}
		if err := m.Submit(core.Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
			WG: [3]uint16{64, 1, 1}, Args: []uint64{in, out}}); err != nil {
			t.Fatal(err)
		}
		if err := m.RunFunctional(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			x := uint32(i % 30)
			want := uint32(84)
			if x >= 20 {
				want = 90
			}
			if got := m.Ctx.Mem.ReadU32(out + uint64(4*i)); got != want {
				t.Fatalf("%s: lane %d (x=%d): got %d want %d", abs, i, x, got, want)
			}
		}
	}
}

// TestCSVExport verifies the plotting-pipeline export writes every file with
// one row per workload (plus the per-kernel Table 7 data).
func TestCSVExport(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Collect(core.DefaultConfig(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5.csv", "fig6.csv", "fig7.csv", "fig8.csv",
		"fig9.csv", "fig10.csv", "fig11.csv", "fig12.csv", "table6.csv", "table7.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		switch name {
		case "fig5.csv":
			if lines != 1+2*len(res.Order) {
				t.Errorf("%s: %d lines", name, lines)
			}
		case "table7.csv":
			if lines < 1+len(res.Order) {
				t.Errorf("%s: %d lines", name, lines)
			}
		default:
			if lines != 1+len(res.Order) {
				t.Errorf("%s: %d lines", name, lines)
			}
		}
	}
}
