// Package report regenerates every table and figure of the paper's
// evaluation: it runs the Table 5 suite under both abstractions on the
// Table 4 machine, collects the statistics each figure plots, and renders
// them as markdown for EXPERIMENTS.md and the ilsim-report tool.
package report

import (
	"errors"
	"fmt"
	"strings"

	"ilsim/internal/core"
	"ilsim/internal/exp"
	"ilsim/internal/hwmodel"
	"ilsim/internal/isa"
	"ilsim/internal/stats"
	"ilsim/internal/workloads"
)

// Pair holds one workload's runs under both abstractions.
type Pair struct {
	HSAIL *stats.Run
	GCN3  *stats.Run
}

// Results carries everything the figures need.
type Results struct {
	Order []string
	Runs  map[string]*Pair
	// HW maps workload → per-kernel oracle runtimes (Table 7).
	HW map[string][]float64
	// Scale is the input scale the suite ran at.
	Scale int
}

// Collect runs the whole suite under both abstractions, verifying outputs.
// When withHW is set it also measures the hardware oracle. Jobs execute on
// a default experiment engine (GOMAXPROCS workers).
func Collect(cfg core.Config, scale int, withHW bool) (*Results, error) {
	return CollectParallel(exp.New(0), cfg, scale, withHW)
}

// SuiteJobs builds the report's flat job set: per workload, HSAIL and GCN3
// runs on cfg plus (optionally) the hardware oracle's silicon-configured
// run. It is exported so callers can bind a checkpoint journal
// (exp.OpenJournal) to exactly the set CollectParallel will run.
func SuiteJobs(cfg core.Config, scale int, withHW bool) []exp.Job {
	opts := core.RunOptions{TrackValues: true, ValueSampleEvery: 4, TrackReuse: true}
	all := workloads.All()
	perWL := 2
	if withHW {
		perWL = 3
	}
	jobs := make([]exp.Job, 0, perWL*len(all))
	for _, w := range all {
		jobs = append(jobs,
			exp.Job{Workload: w.Name, Scale: scale, Abs: core.AbsHSAIL, Config: cfg, Opts: opts},
			exp.Job{Workload: w.Name, Scale: scale, Abs: core.AbsGCN3, Config: cfg, Opts: opts})
		if withHW {
			jobs = append(jobs, exp.Job{Label: "hw-oracle", Workload: w.Name,
				Scale: scale, Abs: core.AbsGCN3, Config: hwmodel.SiliconConfig()})
		}
	}
	return jobs
}

// CollectParallel runs the whole suite through the given runner — a local
// engine that spreads one flat job set over its worker pool, or a
// dist.Coordinator that leases the same set to remote workers. Results
// are assembled in Table 5 order. Every figure needs every run, so ANY
// failed job fails the collection; the returned error enumerates all
// failures with their classes so one rerun can address them together.
func CollectParallel(eng exp.Runner, cfg core.Config, scale int, withHW bool) (*Results, error) {
	results, _, err := eng.Run(SuiteJobs(cfg, scale, withHW))
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return Assemble(results, scale, withHW)
}

// Assemble builds the figure-ready Results from the SuiteJobs result set.
func Assemble(results []exp.Result, scale int, withHW bool) (*Results, error) {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s [%s]: %w", r.Job, exp.Classify(r.Err), r.Err))
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("report: %d of %d jobs failed:\n%w",
			len(errs), len(results), errors.Join(errs...))
	}
	all := workloads.All()
	perWL := 2
	if withHW {
		perWL = 3
	}
	if len(results) != perWL*len(all) {
		return nil, fmt.Errorf("report: %d results for a %d-job suite", len(results), perWL*len(all))
	}
	res := &Results{Runs: make(map[string]*Pair), HW: make(map[string][]float64), Scale: scale}
	for i, w := range all {
		base := i * perWL
		res.Order = append(res.Order, w.Name)
		res.Runs[w.Name] = &Pair{HSAIL: results[base].Run, GCN3: results[base+1].Run}
		if withHW {
			res.HW[w.Name] = hwmodel.PerturbedRuntimes(w.Name, results[base+2].Run.KernelCycles)
		}
	}
	return res, nil
}

type table struct {
	b strings.Builder
}

func (t *table) title(s string) { fmt.Fprintf(&t.b, "\n### %s\n\n", s) }
func (t *table) note(s string)  { fmt.Fprintf(&t.b, "%s\n\n", s) }
func (t *table) row(cells ...string) {
	t.b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
}
func (t *table) sep(n int) {
	t.b.WriteString("|" + strings.Repeat("---|", n) + "\n")
}
func (t *table) String() string { return t.b.String() }

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
func kb(v uint64) string   { return fmt.Sprintf("%.1fKB", float64(v)/1024) }

// ratios computes GCN3/HSAIL for a metric over the suite.
func (r *Results) ratios(metric func(*stats.Run) float64) []float64 {
	var out []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		h, g := metric(p.HSAIL), metric(p.GCN3)
		if h > 0 {
			out = append(out, g/h)
		}
	}
	return out
}

// Fig5 renders the dynamic instruction count breakdown, GCN3 normalized to
// HSAIL per workload.
func (r *Results) Fig5() string {
	t := &table{}
	t.title("Figure 5 — Dynamic instruction count and breakdown (normalized to HSAIL)")
	t.note("Each GCN3 column is that category's dynamic count divided by the workload's TOTAL HSAIL count; Total is the paper's headline expansion factor.")
	hdr := []string{"Workload"}
	for c := 0; c < isa.NumCategories; c++ {
		hdr = append(hdr, isa.Category(c).String())
	}
	hdr = append(hdr, "GCN3 Total", "HSAIL VMem%", "HSAIL Branch%")
	t.row(hdr...)
	t.sep(len(hdr))
	var totals []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		hTot := float64(p.HSAIL.TotalInsts())
		cells := []string{name}
		for c := 0; c < isa.NumCategories; c++ {
			cells = append(cells, f2(float64(p.GCN3.InstsByCategory[c])/hTot))
		}
		tot := float64(p.GCN3.TotalInsts()) / hTot
		totals = append(totals, tot)
		cells = append(cells, f2(tot),
			pct(float64(p.HSAIL.InstsByCategory[isa.CatVMem])/hTot),
			pct(float64(p.HSAIL.InstsByCategory[isa.CatBranch])/hTot))
		t.row(cells...)
	}
	t.row("**geomean**", "", "", "", "", "", "", "", "", f2(stats.Geomean(totals)), "", "")
	return t.String()
}

// Fig6 renders VRF bank conflicts.
func (r *Results) Fig6() string {
	t := &table{}
	t.title("Figure 6 — VRF bank conflicts")
	t.note("Conflicts per 1K dynamic instructions; the paper reports GCN3 at roughly one third of HSAIL on average.")
	t.row("Workload", "HSAIL", "GCN3", "HSAIL/GCN3")
	t.sep(4)
	var ratios []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		h, g := p.HSAIL.ConflictsPerKiloInst(), p.GCN3.ConflictsPerKiloInst()
		ratio := 0.0
		if g > 0 {
			ratio = h / g
			ratios = append(ratios, ratio)
		}
		t.row(name, f2(h), f2(g), f2(ratio))
	}
	t.row("**geomean**", "", "", f2(stats.Geomean(ratios)))
	return t.String()
}

// Fig7 renders median vector-register reuse distance.
func (r *Results) Fig7() string {
	t := &table{}
	t.title("Figure 7 — Median vector register reuse distance")
	t.note("Dynamic instructions between consecutive accesses to the same vector register; finalizer scheduling should roughly double it.")
	t.row("Workload", "HSAIL", "GCN3", "GCN3/HSAIL")
	t.sep(4)
	var ratios []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		h, g := float64(p.HSAIL.Reuse.Median()), float64(p.GCN3.Reuse.Median())
		ratio := 0.0
		if h > 0 {
			ratio = g / h
			ratios = append(ratios, ratio)
		}
		t.row(name, fmt.Sprintf("%.0f", h), fmt.Sprintf("%.0f", g), f2(ratio))
	}
	t.row("**geomean**", "", "", f2(stats.Geomean(ratios)))
	return t.String()
}

// Fig8 renders static instruction footprints.
func (r *Results) Fig8() string {
	t := &table{}
	t.title("Figure 8 — Instruction footprint")
	t.note("HSAIL uses the loader's 8-byte-per-instruction approximation; GCN3 is the true encoded size. LULESH's GCN3 footprint exceeding the 16KB L1I is the paper's highlighted case.")
	t.row("Workload", "HSAIL", "GCN3", "GCN3/HSAIL", "GCN3 L1I miss rate", "HSAIL L1I miss rate")
	t.sep(6)
	var ratios []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		h, g := p.HSAIL.CodeFootprintBytes, p.GCN3.CodeFootprintBytes
		ratio := float64(g) / float64(h)
		ratios = append(ratios, ratio)
		hm := float64(p.HSAIL.L1IMisses) / float64(max64(p.HSAIL.L1IAccesses, 1))
		gm := float64(p.GCN3.L1IMisses) / float64(max64(p.GCN3.L1IAccesses, 1))
		t.row(name, kb(h), kb(g), f2(ratio), f3(gm), f3(hm))
	}
	t.row("**geomean**", "", "", f2(stats.Geomean(ratios)), "", "")
	return t.String()
}

// Fig9 renders instruction-buffer flushes.
func (r *Results) Fig9() string {
	t := &table{}
	t.title("Figure 9 — Instruction buffer flushes")
	t.note("Flushes per 1K dynamic instructions. Reconvergence-stack jumps inflate HSAIL; predicated GCN3 flushes mostly on loop back-edges.")
	t.row("Workload", "HSAIL", "GCN3", "HSAIL/GCN3")
	t.sep(4)
	var ratios []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		h := 1000 * float64(p.HSAIL.IBFlushes) / float64(p.HSAIL.TotalInsts())
		g := 1000 * float64(p.GCN3.IBFlushes) / float64(p.GCN3.TotalInsts())
		ratio := 0.0
		if g > 0 {
			ratio = h / g
			ratios = append(ratios, ratio)
		}
		t.row(name, f2(h), f2(g), f2(ratio))
	}
	t.row("**geomean**", "", "", f2(stats.Geomean(ratios)))
	return t.String()
}

// Fig10 renders VRF lane-value uniqueness.
func (r *Results) Fig10() string {
	t := &table{}
	t.title("Figure 10 — Uniqueness of VRF lane values")
	t.note("Unique values per active lane over sampled VRF accesses (reads and writes). Direction is workload-dependent, as in the paper.")
	t.row("Workload", "HSAIL read", "GCN3 read", "HSAIL write", "GCN3 write")
	t.sep(5)
	for _, name := range r.Order {
		p := r.Runs[name]
		t.row(name,
			pct(p.HSAIL.ReadUniqueness()), pct(p.GCN3.ReadUniqueness()),
			pct(p.HSAIL.WriteUniqueness()), pct(p.GCN3.WriteUniqueness()))
	}
	return t.String()
}

// Fig11 renders IPC.
func (r *Results) Fig11() string {
	t := &table{}
	t.title("Figure 11 — IPC (normalized to HSAIL)")
	t.row("Workload", "HSAIL IPC", "GCN3 IPC", "GCN3/HSAIL")
	t.sep(4)
	var ratios []float64
	for _, name := range r.Order {
		p := r.Runs[name]
		ratio := p.GCN3.IPC() / p.HSAIL.IPC()
		ratios = append(ratios, ratio)
		t.row(name, f3(p.HSAIL.IPC()), f3(p.GCN3.IPC()), f2(ratio))
	}
	t.row("**geomean**", "", "", f2(stats.Geomean(ratios)))
	return t.String()
}

// Fig12 renders runtimes.
func (r *Results) Fig12() string {
	t := &table{}
	t.title("Figure 12 — Runtime (GPU cycles, HSAIL normalized to GCN3)")
	t.note("Values above 1 mean the IL simulation is pessimistic; below 1, optimistic. The paper's point is that the sign is workload-dependent and unpredictable.")
	t.row("Workload", "HSAIL cycles", "GCN3 cycles", "HSAIL/GCN3")
	t.sep(4)
	for _, name := range r.Order {
		p := r.Runs[name]
		t.row(name, fmt.Sprintf("%d", p.HSAIL.Cycles), fmt.Sprintf("%d", p.GCN3.Cycles),
			f2(float64(p.HSAIL.Cycles)/float64(p.GCN3.Cycles)))
	}
	return t.String()
}

// Fig1 renders the summary of dissimilar and similar statistics.
func (r *Results) Fig1() string {
	t := &table{}
	t.title("Figure 1 — Average of dissimilar and similar statistics (GCN3/HSAIL)")
	rows := []struct {
		name string
		v    float64
	}{
		{"Dynamic instructions", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return float64(s.TotalInsts()) }))},
		{"Code footprint", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return float64(s.CodeFootprintBytes) }))},
		{"VRF bank conflicts", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return s.ConflictsPerKiloInst() }))},
		{"Register reuse distance", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return float64(s.Reuse.Median()) }))},
		{"IB flushes (per inst)", stats.Geomean(r.ratios(func(s *stats.Run) float64 {
			return float64(s.IBFlushes) / float64(s.TotalInsts())
		}))},
		{"GPU cycles", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return float64(s.Cycles) }))},
		{"IPC", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return s.IPC() }))},
		{"SIMD utilization (similar)", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return s.SIMDUtilization() }))},
		{"Data footprint (similar)", stats.Geomean(r.ratios(func(s *stats.Run) float64 { return float64(s.DataFootprintBytes) }))},
	}
	t.row("Statistic", "GCN3/HSAIL geomean")
	t.sep(2)
	for _, row := range rows {
		t.row(row.name, f2(row.v))
	}
	return t.String()
}

// Table6 renders the similarity table: data footprint and SIMD utilization.
func (r *Results) Table6() string {
	t := &table{}
	t.title("Table 6 — Similar statistics: data footprint and SIMD utilization")
	t.note("Footprints match except for workloads using per-launch special segments (FFT spill, LULESH private), which HSAIL's emulated ABI re-maps at every dynamic launch.")
	t.row("Workload", "HSAIL footprint", "GCN3 footprint", "ratio", "HSAIL SIMD util", "GCN3 SIMD util")
	t.sep(6)
	for _, name := range r.Order {
		p := r.Runs[name]
		t.row(name,
			kb(p.HSAIL.DataFootprintBytes), kb(p.GCN3.DataFootprintBytes),
			f2(float64(p.HSAIL.DataFootprintBytes)/float64(p.GCN3.DataFootprintBytes)),
			pct(p.HSAIL.SIMDUtilization()), pct(p.GCN3.SIMDUtilization()))
	}
	return t.String()
}

// Table7 renders the hardware correlation study.
func (r *Results) Table7() string {
	t := &table{}
	t.title("Table 7 — Hardware correlation and error")
	if len(r.HW) == 0 {
		t.note("(hardware oracle not run; use -hw)")
		return t.String()
	}
	t.note("Per-kernel runtimes compared against the silicon oracle (see internal/hwmodel), averaged across all dynamic kernel launches as in the paper. Correlation stays high for both; absolute error is larger and more erratic for HSAIL.")
	var hs, gs, hw []float64
	t.row("Workload", "kernels", "HSAIL err (mean±max)", "GCN3 err (mean±max)")
	t.sep(4)
	for _, name := range r.Order {
		p := r.Runs[name]
		w := r.HW[name]
		n := len(w)
		if len(p.HSAIL.KernelCycles) < n {
			n = len(p.HSAIL.KernelCycles)
		}
		var hErrW, gErrW []float64
		var hMax, gMax float64
		for i := 0; i < n; i++ {
			h := float64(p.HSAIL.KernelCycles[i])
			g := float64(p.GCN3.KernelCycles[i])
			hs, gs, hw = append(hs, h), append(gs, g), append(hw, w[i])
			he := abs(h-w[i]) / w[i]
			ge := abs(g-w[i]) / w[i]
			hErrW = append(hErrW, he)
			gErrW = append(gErrW, ge)
			if he > hMax {
				hMax = he
			}
			if ge > gMax {
				gMax = ge
			}
		}
		t.row(name, fmt.Sprintf("%d", n),
			fmt.Sprintf("%s / %s", pct(mean(hErrW)), pct(hMax)),
			fmt.Sprintf("%s / %s", pct(mean(gErrW)), pct(gMax)))
	}
	var hErr, gErr []float64
	for i := range hw {
		hErr = append(hErr, abs(hs[i]-hw[i])/hw[i])
		gErr = append(gErr, abs(gs[i]-hw[i])/hw[i])
	}
	t.row("**summary**",
		fmt.Sprintf("corr HSAIL %.3f / GCN3 %.3f", stats.Pearson(hs, hw), stats.Pearson(gs, hw)),
		pct(mean(hErr)), pct(mean(gErr)))
	return t.String()
}

// Markdown renders the complete experiment report.
func (r *Results) Markdown(cfg core.Config) string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs measured\n\n")
	b.WriteString("Regenerated by `go run ./cmd/ilsim-report` (or the benchmarks in bench_test.go).\n")
	b.WriteString("Every run verifies workload outputs against host-side mirrors before reporting.\n")
	b.WriteString("Absolute values depend on input scale; the RATIOS and orderings are the\n")
	b.WriteString("reproduction targets, per the brief's \"shape should hold\" standard. Deviations\n")
	b.WriteString("are annotated inline and discussed in DESIGN.md §8.\n\n")
	b.WriteString("The suite is the repository's longest campaign; `ilsim-report -journal\n")
	b.WriteString("report.jsonl` checkpoints every completed job (fsynced JSONL keyed by job\n")
	b.WriteString("fingerprint, result integrity-hashed) and `-resume` continues a killed\n")
	b.WriteString("regeneration, re-running only unfinished jobs. Failures classify as\n")
	b.WriteString("transient/permanent/canceled/timeout/budget-exceeded/panic (see README\n")
	b.WriteString("\"Robust campaigns\").\n\n")
	b.WriteString("The suite also distributes: `ilsim-report -serve :9666` leases the same\n")
	b.WriteString("job set to `ilsim-workerd` processes on other machines. The journal stays\n")
	b.WriteString("on the coordinator — workers are stateless and need no shared filesystem —\n")
	b.WriteString("and every accepted result is fsynced before it is acknowledged, so killing\n")
	b.WriteString("and resuming the coordinator re-leases only unfinished jobs, no matter\n")
	b.WriteString("which machine ran the rest. Results assemble in submission order, making\n")
	b.WriteString("the figures byte-identical to a single-machine run.\n\n")
	b.WriteString("Three levels of parallelism stack: `-j` runs whole jobs concurrently,\n")
	b.WriteString("`-cu-par` shards each simulation's compute-unit ticks across goroutines,\n")
	b.WriteString("and `-mem-par` shards its memory drain's bank waves (statistics are\n")
	b.WriteString("byte-identical at every setting — README \"Parallel timing\"). The\n")
	b.WriteString("defaults (`-cu-par 0` / `-mem-par 0`) auto-budget GOMAXPROCS/`-j` cores\n")
	b.WriteString("per job so the product lands at roughly one goroutine per core; the two\n")
	b.WriteString("intra-simulation knobs share one pool and never overlap, so a job's\n")
	b.WriteString("peak concurrency is their max, not their sum. Prefer raising `-j` while\n")
	b.WriteString("the queue is deeper than the host — job-level parallelism carries no\n")
	b.WriteString("barrier overhead — and spend `-cu-par`/`-mem-par` when jobs no longer\n")
	b.WriteString("outnumber cores: the tail of a campaign, or one big simulation. Asking\n")
	b.WriteString("for `-j x max(-cu-par, -mem-par)` beyond the core count is honored but\n")
	b.WriteString("warned about.\n\n")
	fmt.Fprintf(&b, "Input scale: %d. Simulated configuration (Table 4):\n\n```\n%s\n```\n", r.Scale, cfg.String())
	b.WriteString(r.PaperComparison())
	b.WriteString(r.Fig1())
	if fig3, err := Fig3(); err == nil {
		b.WriteString(fig3)
	}
	b.WriteString(r.Fig5())
	b.WriteString(r.Fig6())
	b.WriteString(r.Fig7())
	b.WriteString(r.Fig8())
	b.WriteString(r.Fig9())
	b.WriteString(r.Fig10())
	b.WriteString(r.Fig11())
	b.WriteString(r.Fig12())
	b.WriteString(r.Table6())
	b.WriteString(r.Table7())
	if rows, err := RunAblations(cfg); err == nil {
		b.WriteString(AblationTable(rows))
	}
	b.WriteString(throughputSection)
	return b.String()
}

// throughputSection records the simulator's own performance — the host-side
// cost of producing everything above. The numbers are a historical record
// from the event-driven-core optimization pass (Intel Xeon @ 2.70GHz dev
// box, MD scale 1, ±30% machine noise observed between runs); regenerate
// locally with `make bench`, which archives BENCH_PR4.json.
const throughputSection = `
### Simulator throughput (host-side cost of the suite)

` + "`BenchmarkSimulatorThroughput`" + ` measures end-to-end simulated
instructions per wall-second (MD, scale 1, full statistics). The
event-driven timing core — deterministic cycle skipping, per-PC decode
caches, O(1) PC lookup, allocation-free issue loop, engine-owned lane
scratch (DESIGN.md §4) — delivered these gains with byte-identical
statistics fingerprints across the whole suite:

| Abstraction | before (siminsts/s) | after (siminsts/s) | speedup | allocs/op |
|---|---|---|---|---|
| HSAIL | 379,916 | 1,173,159 | 3.1x | 262k -> 4.6k |
| GCN3 | 562,432 | 1,940,039 | 3.4x | 262k -> 4.7k |

Measured on a shared Intel Xeon @ 2.70GHz dev machine; run-to-run noise of
+-30% was observed under load, so treat the speedup, not the absolute
numbers, as the reproducible quantity.

` + "`BenchmarkSimulatorThroughputParallel`" + ` repeats the measurement with one
goroutine per compute unit (` + "`-cu-par`" + `, the two-phase parallel timing
loop), and ` + "`BenchmarkSimulatorThroughputMemParallel`" + ` stacks the banked
memory drain on top (` + "`-mem-par`" + ` at the full drain width);
` + "`BenchmarkSimulatorThroughputMemBound`" + `/` + "`...MemBoundParallel`" + ` repeat the
serial-vs-stacked pair on ArrayBW, the memory-bound streaming workload
the banked drain targets. Each parallel row's siminsts/s ratio to its
serial baseline is the intra-simulation speedup and needs a multi-core
host to exceed 1 — on a single core the pool costs a few percent of
overhead and the serial fallback is the right setting. ` + "`make bench`" + `
re-measures all rows and archives the result as BENCH_PR10.json; the CI
bench-smoke job does the same per commit and additionally gates on
TestCycleSkippingDeterminism (skip-on vs skip-off fingerprint identity),
TestParallelTimingDeterminism (every -cu-par setting must fingerprint
identically to serial), TestBankedMemoryDeterminism (every -cu-par x
-mem-par combination must fingerprint identically to the serial drain)
and TestIssueStageNoAllocs/TestDrainRoutingNoAllocs (zero allocations in
the steady-state two-phase cycle, bank routing included).
`

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
