package report

import (
	"fmt"

	"ilsim/internal/core"
	"ilsim/internal/emu"
	"ilsim/internal/finalizer"
	"ilsim/internal/hsail"
	"ilsim/internal/isa"
	"ilsim/internal/stats"
)

// fig3Kernel hand-builds the paper's exact Figure 3a/3b CFG — an if-else-if
// whose two branches share the reconvergence point BB4 (the builder's
// structured helpers would nest distinct joins, which costs extra redirects;
// the paper's compiler emits the flat five-block form):
//
//	BB0: x = in[gid]; res = 84; cbr (x >= 10) -> BB2
//	BB1: res = 84; br BB4          (then path)
//	BB2: cbr (x < 20) -> BB4       (branch straight to the RPC: no flush)
//	BB3: res = 90                  (else-if body)
//	BB4: out[gid] = res; ret
func fig3Kernel() *hsail.Kernel {
	k := &hsail.Kernel{
		Name:        "fig3_example",
		NumRegSlots: 16,
		NumCRegs:    2,
		Args: []hsail.ArgInfo{
			{Name: "in", Size: 8, Offset: 0},
			{Name: "out", Size: 8, Offset: 8},
		},
		KernargSize: 16,
	}
	const (
		rGid  = 0 // u32
		rOff  = 2 // u64 pair
		rAddr = 4 // u64 pair
		rX    = 6 // u32
		rRes  = 7 // u32
		rOut  = 8 // u64 pair
	)
	u32 := isa.TypeU32
	u64 := isa.TypeU64
	k.Blocks = []*hsail.Block{
		{ID: 0, Insts: []hsail.Inst{
			{Op: hsail.OpWorkItemAbsId, Type: u32, Dim: isa.DimX, Dst: hsail.Reg(rGid)},
			{Op: hsail.OpCvt, Type: u64, SrcType: u32, Dst: hsail.Reg(rOff), Srcs: [3]hsail.Operand{hsail.Reg(rGid)}, NSrc: 1},
			{Op: hsail.OpShl, Type: u64, Dst: hsail.Reg(rOff), Srcs: [3]hsail.Operand{hsail.Reg(rOff), hsail.Imm(2)}, NSrc: 2},
			{Op: hsail.OpLd, Type: u64, Seg: hsail.SegKernarg, Dst: hsail.Reg(rAddr), Addr: hsail.MemAddr{Base: hsail.ArgSym(0)}},
			{Op: hsail.OpAdd, Type: u64, Dst: hsail.Reg(rAddr), Srcs: [3]hsail.Operand{hsail.Reg(rAddr), hsail.Reg(rOff)}, NSrc: 2},
			{Op: hsail.OpLd, Type: u32, Seg: hsail.SegGlobal, Dst: hsail.Reg(rX), Addr: hsail.MemAddr{Base: hsail.Reg(rAddr)}},
			{Op: hsail.OpMov, Type: u32, Dst: hsail.Reg(rRes), Srcs: [3]hsail.Operand{hsail.Imm(84)}, NSrc: 1},
			{Op: hsail.OpLd, Type: u64, Seg: hsail.SegKernarg, Dst: hsail.Reg(rOut), Addr: hsail.MemAddr{Base: hsail.ArgSym(1)}},
			{Op: hsail.OpAdd, Type: u64, Dst: hsail.Reg(rOut), Srcs: [3]hsail.Operand{hsail.Reg(rOut), hsail.Reg(rOff)}, NSrc: 2},
			{Op: hsail.OpCmp, SrcType: u32, Cmp: isa.CmpGe, Dst: hsail.CReg(0), Srcs: [3]hsail.Operand{hsail.Reg(rX), hsail.Imm(10)}, NSrc: 2},
			{Op: hsail.OpCBr, Srcs: [3]hsail.Operand{hsail.CReg(0)}, NSrc: 1, Target: 2},
		}},
		{ID: 1, Insts: []hsail.Inst{
			{Op: hsail.OpMov, Type: u32, Dst: hsail.Reg(rRes), Srcs: [3]hsail.Operand{hsail.Imm(84)}, NSrc: 1},
			{Op: hsail.OpBr, Target: 4},
		}},
		{ID: 2, Insts: []hsail.Inst{
			{Op: hsail.OpCmp, SrcType: u32, Cmp: isa.CmpLt, Dst: hsail.CReg(1), Srcs: [3]hsail.Operand{hsail.Reg(rX), hsail.Imm(20)}, NSrc: 2},
			{Op: hsail.OpCBr, Srcs: [3]hsail.Operand{hsail.CReg(1)}, NSrc: 1, Target: 4},
		}},
		{ID: 3, Insts: []hsail.Inst{
			{Op: hsail.OpMov, Type: u32, Dst: hsail.Reg(rRes), Srcs: [3]hsail.Operand{hsail.Imm(90)}, NSrc: 1},
		}},
		{ID: 4, Insts: []hsail.Inst{
			{Op: hsail.OpSt, Type: u32, Seg: hsail.SegGlobal, Srcs: [3]hsail.Operand{hsail.Reg(rRes)}, NSrc: 1, Addr: hsail.MemAddr{Base: hsail.Reg(rOut)}},
			{Op: hsail.OpRet},
		}},
	}
	return k
}

// Fig3 reproduces the paper's Figure 3 walkthrough: the if-else-if kernel
// whose HSAIL execution needs exactly three reconvergence-stack redirects
// (IB flushes) while the predicated GCN3 code runs the whole construct with
// none. It renders both codes and the measured redirect counts.
func Fig3() (string, error) {
	ks, err := core.PrepareKernel(fig3Kernel(), finalizer.Options{})
	if err != nil {
		return "", err
	}

	redirects := func(abs core.Abstraction) (int, error) {
		m := core.NewMachine(abs, &stats.Run{})
		in := m.Ctx.AllocBuffer(4 * 64)
		out := m.Ctx.AllocBuffer(4 * 64)
		for i := 0; i < 64; i++ {
			// Mixed outcomes: some lanes take each of the three paths.
			m.Ctx.Mem.WriteU32(in+uint64(4*i), uint32(i%30))
		}
		if err := m.Submit(core.Launch{Kernel: ks, Grid: [3]uint32{64, 1, 1},
			WG: [3]uint16{64, 1, 1}, Args: []uint64{in, out}}); err != nil {
			return 0, err
		}
		d, eng, err := m.NextDispatch()
		if err != nil {
			return 0, err
		}
		wg := emu.NewWGState(d, &d.Workgroups[0], eng.LDSBytes())
		wv := eng.NewWave(wg, 0)
		n := 0
		for !wv.Done {
			r, err := eng.Execute(wv)
			if err != nil {
				return 0, err
			}
			if r.Redirected {
				n++
			}
		}
		return n, nil
	}
	hsailN, err := redirects(core.AbsHSAIL)
	if err != nil {
		return "", err
	}
	gcn3N, err := redirects(core.AbsGCN3)
	if err != nil {
		return "", err
	}

	var s string
	s += "\n### Figure 3 — Managing control flow (HSAIL vs GCN3)\n\n"
	s += "The paper's if-else-if example, with lanes split across all three paths.\n"
	s += fmt.Sprintf("Front-end redirects for one divergent wavefront: **HSAIL %d** "+
		"(the paper's three simulator-initiated jumps: the jump to the taken "+
		"path, the pop to the divergent path, and the final pop to the "+
		"reconvergence point; the branch straight to the RPC in BB2 costs "+
		"none), **GCN3 %d** (predication; both bypass branches fall "+
		"through).\n\n", hsailN, gcn3N)
	s += "HSAIL (reconvergence stack drives control flow):\n\n```\n" + ks.HSAIL.Disassemble() + "```\n"
	s += "\nGCN3 (EXEC-mask flips; branches only bypass empty paths):\n\n```\n" + ks.GCN3.Program.Disassemble() + "```\n"
	return s, nil
}
